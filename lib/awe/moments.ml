type factored = { lu : La.Lu.t; c_sparse : La.Sparse.t }

let factor lin =
  let g = La.Mat.copy lin.Mna.Linearize.g in
  let n = La.Mat.rows g in
  for k = 0 to n - 1 do
    La.Mat.add_to g k k 1e-12
  done;
  (* The susceptance matrix is a few entries per device: the moment loop
     multiplies by it once per moment, so keep it in CSR. *)
  { lu = La.Lu.factor g; c_sparse = La.Sparse.of_dense lin.Mna.Linearize.c }

(* The one recurrence, shared by every entry point so they stay
   bit-identical: r_0 = G^-1 b, r_(k+1) = -G^-1 C r_k, m_k = sel . r_k.
   [record] observes each r_k right after it is produced. *)
let compute_gen ?record ~solve_in_place ~c ~b ~sel ~count () =
  let moments = Array.make count 0.0 in
  let r = Array.copy b in
  solve_in_place r;
  moments.(0) <- La.Vec.dot sel r;
  (match record with Some f -> f 0 r | None -> ());
  let cur = ref r in
  let tmp = La.Vec.create (Array.length r) in
  for k = 1 to count - 1 do
    (* r_(k+1) = -G^-1 C r_k *)
    La.Sparse.mul_vec_into c !cur tmp;
    solve_in_place tmp;
    for i = 0 to Array.length tmp - 1 do
      tmp.(i) <- -.tmp.(i)
    done;
    moments.(k) <- La.Vec.dot sel tmp;
    (match record with Some f -> f k tmp | None -> ());
    Array.blit tmp 0 !cur 0 (Array.length tmp)
  done;
  moments

let compute_with f ~b ~sel ~count =
  compute_gen ~solve_in_place:(La.Lu.solve_in_place f.lu) ~c:f.c_sparse ~b ~sel ~count ()

let compute lin ~b ~sel ~count = compute_with (factor lin) ~b ~sel ~count

(* --- moment-vector cache: recorded on the exact path, served on probes --- *)

type cache = {
  mutable cache_b : La.Vec.t; (* excitation at record time, compared bitwise *)
  mutable vecs : La.Vec.t array; (* r_0 .. r_(valid-1) *)
  mutable valid : int;
}

let cache_create () = { cache_b = [||]; vecs = [||]; valid = 0 }
let cache_clear c = c.valid <- 0

let compute_record f cache ~b ~sel ~count =
  if Array.length cache.vecs < count then begin
    cache.vecs <- Array.init count (fun _ -> [||]);
    cache.valid <- 0
  end;
  let record k (r : La.Vec.t) =
    let dst =
      if Array.length cache.vecs.(k) = Array.length r then cache.vecs.(k)
      else begin
        let d = La.Vec.create (Array.length r) in
        cache.vecs.(k) <- d;
        d
      end
    in
    Array.blit r 0 dst 0 (Array.length r)
  in
  let m =
    compute_gen ~record ~solve_in_place:(La.Lu.solve_in_place f.lu) ~c:f.c_sparse ~b ~sel
      ~count ()
  in
  if Array.length cache.cache_b <> Array.length b then cache.cache_b <- Array.copy b
  else Array.blit b 0 cache.cache_b 0 (Array.length b);
  cache.valid <- count;
  m

(* --- low-rank probe updates --- *)

type solver = Base of La.Lu.t | Low of La.Lowrank.t
type update = { u_solver : solver; u_c : La.Sparse.t; u_c_changed : bool; u_rank : int }

let bits_eq (x : float) (y : float) = Int64.bits_of_float x = Int64.bits_of_float y

let mat_bits_eq a b =
  let m = La.Mat.rows a and n = La.Mat.cols a in
  m = La.Mat.rows b && n = La.Mat.cols b
  &&
  let ok = ref true in
  (try
     for i = 0 to m - 1 do
       for j = 0 to n - 1 do
         if not (bits_eq (La.Mat.get a i j) (La.Mat.get b i j)) then begin
           ok := false;
           raise Exit
         end
       done
     done
   with Exit -> ());
  !ok

let vec_bits_eq a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  (try
     Array.iteri
       (fun i x ->
         if not (bits_eq x b.(i)) then begin
           ok := false;
           raise Exit
         end)
       a
   with Exit -> ());
  !ok

let prepare_update ?rcond_min ?growth_max fac ~g_old ~g_new ~c_old ~c_new =
  let n = La.Mat.rows g_old in
  if La.Mat.rows g_new <> n then Error "moments: system size changed"
  else begin
    (* Column-wise bitwise diff of the conductance stamps. The 1e-12
       regularization diagonal cancels in the delta: fac.lu factors
       g_old + eI and the probe target is g_new + eI. *)
    let cols = ref [] in
    for j = n - 1 downto 0 do
      let dirty = ref false in
      for i = 0 to n - 1 do
        if not (bits_eq (La.Mat.get g_old i j) (La.Mat.get g_new i j)) then dirty := true
      done;
      if !dirty then cols := j :: !cols
    done;
    let cols = Array.of_list !cols in
    let c_changed = not (mat_bits_eq c_old c_new) in
    let c_sparse = if c_changed then La.Sparse.of_dense c_new else fac.c_sparse in
    if Array.length cols = 0 then
      Ok { u_solver = Base fac.lu; u_c = c_sparse; u_c_changed = c_changed; u_rank = 0 }
    else begin
      let delta = La.Mat.create n n in
      Array.iter
        (fun j ->
          for i = 0 to n - 1 do
            La.Mat.set delta i j (La.Mat.get g_new i j -. La.Mat.get g_old i j)
          done)
        cols;
      match La.Lowrank.update_cols ?rcond_min ?growth_max fac.lu ~cols ~delta with
      | Error e -> Error e
      | Ok lr ->
          Ok
            {
              u_solver = Low lr;
              u_c = c_sparse;
              u_c_changed = c_changed;
              u_rank = La.Lowrank.rank lr;
            }
    end
  end

let update_rank u = u.u_rank

let compute_probe u cache ~b ~sel ~count =
  let solve_in_place =
    match u.u_solver with
    | Base lu -> La.Lu.solve_in_place lu
    | Low lr -> La.Lowrank.solve_in_place lr
  in
  let b_cached = cache.valid > 0 && vec_bits_eq b cache.cache_b in
  if u.u_rank = 0 && (not u.u_c_changed) && b_cached && cache.valid >= count then begin
    (* G and C untouched, same excitation: every recorded vector serves. *)
    let moments = Array.make count 0.0 in
    for k = 0 to count - 1 do
      moments.(k) <- La.Vec.dot sel cache.vecs.(k)
    done;
    (moments, `Reused)
  end
  else if u.u_rank = 0 && b_cached then begin
    (* G untouched but C moved (a capacitance-only move): r_0 = G^-1 b still
       holds, so only the k >= 1 tail re-solves against the retained LU. *)
    let moments = Array.make count 0.0 in
    let n = Array.length b in
    let cur = La.Vec.create n in
    Array.blit cache.vecs.(0) 0 cur 0 n;
    moments.(0) <- La.Vec.dot sel cur;
    let tmp = La.Vec.create n in
    for k = 1 to count - 1 do
      La.Sparse.mul_vec_into u.u_c cur tmp;
      solve_in_place tmp;
      for i = 0 to n - 1 do
        tmp.(i) <- -.tmp.(i)
      done;
      moments.(k) <- La.Vec.dot sel tmp;
      Array.blit tmp 0 cur 0 n
    done;
    (moments, `Refreshed)
  end
  else
    (* G changed (SMW solves throughout) or the excitation moved: full
       recurrence against the updated solver. Never writes the cache. *)
    (compute_gen ~solve_in_place ~c:u.u_c ~b ~sel ~count (), `Updated)
