(** Reduced-order models with automatic order selection, and the
    small-signal measurements OBLX extracts from them.

    [build] escalates the Padé order from [qmax] downward until it finds a
    model that (a) fits, (b) is stable (or whose right-half-plane poles
    carry negligible residue), and (c) reproduces the circuit moments it
    was fitted to. This mirrors the order/stability management any
    practical AWE implementation needs. *)

type t = {
  rom : Pade.rom;
  moments : float array;  (** circuit moments the model was fitted against *)
}

val build :
  ?qmax:int -> Mna.Linearize.t -> b:La.Vec.t -> sel:La.Vec.t -> (t, string) result

(** [build_with f] shares a {!Moments.factored} G factorization across
    several transfer functions of the same jig. *)
val build_with :
  ?qmax:int -> Moments.factored -> b:La.Vec.t -> sel:La.Vec.t -> (t, string) result

(** [of_moments moments] runs the order-descent fit on already-computed
    moments — the entry point for the incremental path, which refreshes
    moment vectors cheaply and only then fits. [moments] must hold at
    least [2*qmax + 2] entries. [build_with] is exactly
    [of_moments (Moments.compute_with ...)], so the two stay bit-identical
    by construction. *)
val of_moments : ?qmax:int -> float array -> (t, string) result

val dc_gain : t -> float

(** [eval t ~f] is H at frequency [f] in hertz. *)
val eval : t -> f:float -> La.Cpx.t

val magnitude_at : t -> f:float -> float

(** [unity_gain_freq t] in hertz; [None] when |H| stays below 1. *)
val unity_gain_freq : t -> float option

(** [phase_margin t] in degrees, with phase unwrapping from DC. *)
val phase_margin : t -> float option

(** [gain_margin_db t] at the -180 degree crossing; [None] if no crossing. *)
val gain_margin_db : t -> float option

(** [bandwidth_3db t] in hertz. *)
val bandwidth_3db : t -> float option

(** [dominant_pole_hz t] is |p_min| / 2pi for the smallest-magnitude pole. *)
val dominant_pole_hz : t -> float option

val poles : t -> La.Cpx.t array

(** [zeros t] expands the numerator from the pole/residue form and returns
    its roots. *)
val zeros : t -> La.Cpx.t array

(** [step_response t ~time] is the unit-step response value at [time]. *)
val step_response : t -> time:float -> float

(** [settling_time t ~tol] is the earliest time after which the unit-step
    response stays within [tol] (fractional) of its final value, found on
    a geometric time grid spanning the model's pole time constants;
    [None] when the response never settles inside the searched window
    (e.g. underdamped beyond the horizon). *)
val settling_time : t -> tol:float -> float option
