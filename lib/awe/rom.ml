type t = { rom : Pade.rom; moments : float array }

(* A fit is numerically sound when the model actually reproduces the
   moments it was fitted to — at high orders the Hankel system can be so
   ill-conditioned that the "fit" fails its own inputs. *)
let reconstructs rom moments q =
  let rec check k =
    if k >= 2 * q then true
    else begin
      let want = moments.(k) and got = Pade.moment rom k in
      let scale = Float.abs want +. (1e-12 *. Float.abs moments.(0)) +. 1e-300 in
      if Float.abs (got -. want) /. scale > 1e-6 then false else check (k + 1)
    end
  in
  check 0

let stable_enough rom =
  let total = Array.fold_left (fun acc r -> acc +. La.Cpx.abs r) 0.0 rom.Pade.residues in
  let unstable = ref 0.0 in
  Array.iteri
    (fun i p ->
      if p.La.Cpx.re >= 0.0 then unstable := !unstable +. La.Cpx.abs rom.Pade.residues.(i))
    rom.Pade.poles;
  !unstable <= 1e-6 *. total

(* Drop poles whose residues are numerically irrelevant — overfitting
   artifacts that would otherwise pollute the pole list. *)
let prune rom =
  let total = Array.fold_left (fun acc r -> acc +. La.Cpx.abs r) 0.0 rom.Pade.residues in
  let keep = ref [] in
  Array.iteri
    (fun i p ->
      if La.Cpx.abs rom.Pade.residues.(i) > 1e-9 *. total then
        keep := (p, rom.Pade.residues.(i)) :: !keep)
    rom.Pade.poles;
  let kept = List.rev !keep in
  {
    rom with
    Pade.poles = Array.of_list (List.map fst kept);
    residues = Array.of_list (List.map snd kept);
    q = List.length kept;
  }

let of_moments ?(qmax = 6) moments =
  if Array.length moments < (2 * qmax) + 2 then
    invalid_arg "Rom.of_moments: need 2*qmax+2 moments";
  if Array.for_all (fun m -> Float.abs m < 1e-300) moments then
    Error "rom: all moments are zero (no coupling from source to output)"
  else if not (Array.for_all Float.is_finite moments) then Error "rom: non-finite moments"
  else begin
    (* Highest usable order wins: AWE accuracy away from dc improves with
       order, and pruning removes the negligible-residue artifacts that
       over-fitting introduces. The cheap series-division check filters
       ill-conditioned orders before any root finding happens. *)
    let rec descend q =
      if q < 1 then Error "rom: no stable Pade model up to qmax"
      else begin
        match Pade.fit_coeffs ~q moments with
        | Ok c
          when Pade.series_matches c moments ~q ~tol:1e-6 && Pade.routh_stable c.Pade.qpoly
          -> begin
            match Pade.rom_of_coeffs c ~q with
            | Ok rom when stable_enough rom && reconstructs rom moments q ->
                Ok { rom = prune rom; moments }
            | Ok _ | Error _ -> descend (q - 1)
          end
        | Ok _ | Error _ -> descend (q - 1)
      end
    in
    descend qmax
  end

let build_with ?(qmax = 6) f ~b ~sel =
  let count = (2 * qmax) + 2 in
  let moments = Moments.compute_with f ~b ~sel ~count in
  of_moments ~qmax moments

let build ?qmax lin ~b ~sel = build_with ?qmax (Moments.factor lin) ~b ~sel

let dc_gain t = t.moments.(0)
let eval t ~f = Pade.eval t.rom ~w:(2.0 *. Float.pi *. f)
let magnitude_at t ~f = La.Cpx.abs (eval t ~f)
let poles t = t.rom.Pade.poles

(* Log-grid scan and bisection, identical in spirit to Mna.Ac but against
   the reduced model, which is why it costs microseconds, not milliseconds. *)
let crossing t ~level =
  let fmin = 1e-2 and fmax = 1e12 in
  let points = 281 in
  let fk k = fmin *. ((fmax /. fmin) ** (float_of_int k /. float_of_int (points - 1))) in
  let rec scan k prev =
    if k >= points then None
    else begin
      let f = fk k in
      let m = magnitude_at t ~f in
      match prev with
      | Some (fp, mp) when (mp -. level) *. (m -. level) <= 0.0 && mp > m ->
          let rec bisect lo hi n =
            if n = 0 then Some (Float.sqrt (lo *. hi))
            else begin
              let mid = Float.sqrt (lo *. hi) in
              if magnitude_at t ~f:mid >= level then bisect mid hi (n - 1)
              else bisect lo mid (n - 1)
            end
          in
          bisect fp f 60
      | Some _ | None -> scan (k + 1) (Some (f, m))
    end
  in
  scan 0 None

let unity_gain_freq t = crossing t ~level:1.0

let bandwidth_3db t =
  let a0 = Float.abs (dc_gain t) in
  if a0 = 0.0 then None else crossing t ~level:(a0 /. Float.sqrt 2.0)

let unwrapped_phase_to t ~fu =
  let sgn = if dc_gain t >= 0.0 then 1.0 else -1.0 in
  let h f = La.Cpx.scale sgn (eval t ~f) in
  let steps = 160 in
  let f0 = Float.min 1.0 (fu /. 1e6) in
  let phase = ref (La.Cpx.arg (h f0)) in
  let prev = ref (h f0) in
  for k = 1 to steps do
    let f = f0 *. ((fu /. f0) ** (float_of_int k /. float_of_int steps)) in
    let cur = h f in
    phase := !phase +. La.Cpx.arg (La.Cpx.div cur !prev);
    prev := cur
  done;
  !phase *. 180.0 /. Float.pi

let phase_margin t =
  match unity_gain_freq t with
  | None -> None
  | Some fu -> Some (180.0 +. unwrapped_phase_to t ~fu)

let gain_margin_db t =
  (* Find the frequency where the unwrapped phase reaches -180 degrees. *)
  let fmin = 1.0 and fmax = 1e12 in
  let points = 301 in
  let phase_at f = unwrapped_phase_to t ~fu:f in
  let rec scan k prev =
    if k >= points then None
    else begin
      let f = fmin *. ((fmax /. fmin) ** (float_of_int k /. float_of_int (points - 1))) in
      let p = phase_at f in
      match prev with
      | Some (fp, pp) when (pp +. 180.0) *. (p +. 180.0) <= 0.0 ->
          let fc = Float.sqrt (fp *. f) in
          let m = magnitude_at t ~f:fc in
          if m > 0.0 then Some (-20.0 *. Float.log10 m) else None
      | Some _ | None -> scan (k + 1) (Some (f, p))
    end
  in
  scan 0 None

let dominant_pole_hz t =
  let ps = t.rom.Pade.poles in
  if Array.length ps = 0 then None
  else begin
    let best = Array.fold_left (fun acc p -> Float.min acc (La.Cpx.abs p)) infinity ps in
    Some (best /. (2.0 *. Float.pi))
  end

let zeros t =
  let q = t.rom.Pade.q in
  if q <= 1 then [||]
  else begin
    (* N(s) = sum_i k_i * prod_(j<>i) (s - p_j), expanded in complex
       arithmetic; conjugate symmetry makes the coefficients real. *)
    let num = Array.make q La.Cpx.zero in
    Array.iteri
      (fun i ki ->
        let prod = ref [| La.Cpx.one |] in
        Array.iteri
          (fun j pj ->
            if j <> i then begin
              let c = !prod in
              let out = Array.make (Array.length c + 1) La.Cpx.zero in
              Array.iteri
                (fun k ck ->
                  out.(k) <- La.Cpx.sub out.(k) (La.Cpx.mul pj ck);
                  out.(k + 1) <- La.Cpx.add out.(k + 1) ck)
                c;
              prod := out
            end)
          t.rom.Pade.poles;
        Array.iteri (fun k ck -> num.(k) <- La.Cpx.add num.(k) (La.Cpx.mul ki ck)) !prod)
      t.rom.Pade.residues;
    let real_coeffs = Array.map (fun z -> z.La.Cpx.re) num in
    if La.Poly.degree real_coeffs = 0 then [||]
    else try La.Roots.find real_coeffs with Failure _ -> [||]
  end

let step_response t ~time =
  (* y(t) = sum_i k_i/p_i * (exp(p_i t) - 1) for a unit step input. *)
  let acc = ref La.Cpx.zero in
  Array.iteri
    (fun i p ->
      let e = La.Cpx.exp (La.Cpx.scale time p) in
      let term = La.Cpx.mul (La.Cpx.div t.rom.Pade.residues.(i) p) (La.Cpx.sub e La.Cpx.one) in
      acc := La.Cpx.add !acc term)
    t.rom.Pade.poles;
  !acc.La.Cpx.re

let settling_time t ~tol =
  let final = dc_gain t in
  if final = 0.0 then None
  else begin
    (* Time scale from the slowest pole; search out to 50 of its periods. *)
    let slowest =
      Array.fold_left (fun acc p -> Float.min acc (La.Cpx.abs p)) infinity t.rom.Pade.poles
    in
    if not (Float.is_finite slowest) || slowest <= 0.0 then None
    else begin
      let tau = 1.0 /. slowest in
      let t_max = 50.0 *. tau in
      let points = 600 in
      let time k = t_max *. ((float_of_int k /. float_of_int points) ** 2.0) in
      (* Find the last sample outside the band; settle just after it. *)
      let last_outside = ref (-1) in
      for k = 0 to points do
        let y = step_response t ~time:(time k) in
        if Float.abs (y -. final) > tol *. Float.abs final then last_outside := k
      done;
      if !last_outside >= points then None
      else Some (time (!last_outside + 1))
    end
  end
