(** AWE moment generation.

    For the linearized system (G + sC) x(s) = b and output y = sel . x, the
    transfer function's Maclaurin coefficients ("moments") are
    m_k = sel . r_k with r_0 = G^-1 b and r_(k+1) = -G^-1 C r_k.

    G is LU-factored once; each further moment costs one matrix-vector
    product and one back-substitution — this is why AWE is orders of
    magnitude faster than frequency-by-frequency simulation. *)

(** [compute lin ~b ~sel ~count] returns the first [count] moments.
    A tiny diagonal regularization (1e-12 S) keeps G factorable when a node
    has no DC path (capacitor-only nodes).
    @raise Failure if G is singular beyond that. *)
val compute : Mna.Linearize.t -> b:La.Vec.t -> sel:La.Vec.t -> count:int -> float array

(** [factored lin] exposes the one-time factorization so callers evaluating
    many outputs against the same G can share it. *)
type factored

val factor : Mna.Linearize.t -> factored
val compute_with : factored -> b:La.Vec.t -> sel:La.Vec.t -> count:int -> float array

(** {2 Moment-vector cache}

    The incremental evaluator records the solution vectors r_k of the
    exact moment recurrence per transfer function, then serves probe
    evaluations from them: untouched systems reuse every vector,
    capacitance-only moves keep r_0 and re-solve the tail, and
    conductance moves solve through a Sherman-Morrison-Woodbury update
    of the retained factorization ({!La.Lowrank}). *)

type cache

val cache_create : unit -> cache

(** [cache_clear c] forgets the recorded vectors (e.g. after the exact
    path failed and the cached state no longer matches). *)
val cache_clear : cache -> unit

(** [compute_record f cache ~b ~sel ~count] is bit-identical to
    {!compute_with} (both run the same recurrence code) and additionally
    records each solution vector plus [b] into [cache]. *)
val compute_record :
  factored -> cache -> b:La.Vec.t -> sel:La.Vec.t -> count:int -> float array

(** {2 Low-rank probe updates} *)

type update

(** [prepare_update fac ~g_old ~g_new ~c_old ~c_new] diffs the stamped
    matrices bitwise and prepares a probe solver for the perturbed
    system: the retained factorization itself when no conductance column
    moved, otherwise an SMW update over the changed columns (the 1e-12
    regularization cancels in the delta). [Error] means the update is
    numerically unsafe (ill-conditioned capacitance matrix or growth
    bound) and the caller must factor fresh. *)
val prepare_update :
  ?rcond_min:float -> ?growth_max:float -> factored -> g_old:La.Mat.t ->
  g_new:La.Mat.t -> c_old:La.Mat.t -> c_new:La.Mat.t -> (update, string) result

(** [update_rank u] is the rank of the conductance delta (0 = G untouched). *)
val update_rank : update -> int

(** [compute_probe u cache ~b ~sel ~count] computes screening moments for
    the perturbed system, reading (never writing) [cache]:
    [`Reused] — rank 0, C unchanged, cached excitation matches: dot
    products against the recorded vectors only; [`Refreshed] — rank 0
    with C changed: r_0 reused, tail re-solved; [`Updated] — SMW (or
    excitation-changed) solves throughout. Probe moments are approximate
    by design; only the confirm path's exact recompute feeds accepted
    costs. *)
val compute_probe :
  update -> cache -> b:La.Vec.t -> sel:La.Vec.t -> count:int ->
  float array * [ `Reused | `Refreshed | `Updated ]
