(** Build the small-signal (linearized) system G, C, b of a circuit at a
    given operating point: nonlinear devices are replaced by their
    encapsulated-evaluator small-signal models (gm/gds/gmbs + capacitances
    for MOS; gm/gpi/go/gmu + cpi/cmu/ccs for BJT).

    The same structure feeds both the direct AC reference analysis
    ({!Ac}) and AWE moment generation. *)

type t = {
  idx : Sysmat.t;
  g : La.Mat.t;  (** conductance matrix *)
  c : La.Mat.t;  (** susceptance (capacitance/inductance) matrix *)
  b : La.Vec.t;  (** AC excitation vector *)
}

(** [build ~value ~ops circuit] stamps the linearized system. [ops] returns
    the operating point for a device element name; a device without an
    operating point is an error ([Failure]). *)
val build :
  value:(Netlist.Expr.t -> float) -> ops:(string -> Dc.op_info option) -> Netlist.Circuit.t -> t

(** [stamp_reuse ~idx ...] is [build] against a previously computed
    {!Sysmat.of_circuit} layout of the same circuit. The layout depends
    only on topology (element kinds, names, node connectivity), never on
    values or operating points, so it is reusable across every annealing
    move — the incremental probe path restamps thousands of times per
    layout. [only_src] keeps the AC excitation of that source alone. *)
val stamp_reuse :
  idx:Sysmat.t -> value:(Netlist.Expr.t -> float) ->
  ops:(string -> Dc.op_info option) -> ?only_src:string -> Netlist.Circuit.t -> t

(** [output_vector t ~pos ~neg] is the selector row picking
    v(pos) - v(neg); [neg = None] means ground. *)
val output_vector : t -> pos:int -> neg:int option -> La.Vec.t

(** [excitation_of t ~src] replaces the excitation with the one produced by
    unit AC magnitude on the named source only (used when a jig contains
    several AC sources and a .pz card names one). *)
val excitation_of : t -> src:string -> La.Vec.t
