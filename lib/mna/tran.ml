type t = { index : Sysmat.t; times : float array; states : float array array }

let node_waveform r node =
  let row = Sysmat.node_row r.index node in
  Array.map (fun st -> if row < 0 then 0.0 else st.(row)) r.states

let waveform_of r ~pos ~neg =
  let vp = node_waveform r pos in
  match neg with
  | None -> vp
  | Some n ->
      let vn = node_waveform r n in
      Array.mapi (fun k v -> v -. vn.(k)) vp

(* An interval [t0,t1] counts when it overlaps the open window
   (t_from, t_to) — not only when fully contained. The interval that
   straddles t_from is the step-onset one, where the true peak |dv/dt|
   usually lives when the stimulus edge falls between samples. *)
let peak_slew ~times v ~t_from ~t_to =
  let best = ref 0.0 in
  for k = 1 to Array.length v - 1 do
    let t0 = times.(k - 1) and t1 = times.(k) in
    if t1 > t_from && t0 < t_to && t1 > t0 then
      best := Float.max !best (Float.abs ((v.(k) -. v.(k - 1)) /. (t1 -. t0)))
  done;
  !best

let slew_rate r node ~t_from ~t_to =
  peak_slew ~times:r.times (node_waveform r node) ~t_from ~t_to

let settling_time ~times v ~t_from ~tol =
  let n = Array.length v in
  if n = 0 then 0.0
  else begin
    let v_final = v.(n - 1) in
    (* Value just before the step edge: the last sample at or before t_from. *)
    let onset = ref 0 in
    for k = 0 to n - 1 do
      if times.(k) <= t_from then onset := k
    done;
    let band = tol *. Float.max (Float.abs (v_final -. v.(!onset))) 1e-12 in
    (* Earliest sample after which every later sample stays in the band.
       The final sample always qualifies (it defines v_final). *)
    let settle = ref (n - 1) in
    (try
       for k = n - 1 downto !onset do
         if Float.abs (v.(k) -. v_final) > band then raise Exit else settle := k
       done
     with Exit -> ());
    Float.max 0.0 (times.(!settle) -. t_from)
  end

(* Replace the DC expression of stimulated sources with the value at [t]. *)
let circuit_at stimulus t (circuit : Netlist.Circuit.t) =
  let subst (e : Netlist.Circuit.element) =
    match e with
    | Netlist.Circuit.Vsource ({ name; _ } as r) -> begin
        match List.assoc_opt name stimulus with
        | Some f -> Netlist.Circuit.Vsource { r with dc = Netlist.Expr.const (f t) }
        | None -> e
      end
    | Netlist.Circuit.Isource ({ name; _ } as r) -> begin
        match List.assoc_opt name stimulus with
        | Some f -> Netlist.Circuit.Isource { r with dc = Netlist.Expr.const (f t) }
        | None -> e
      end
    | Netlist.Circuit.Resistor _ | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Inductor _
    | Netlist.Circuit.Vcvs _ | Netlist.Circuit.Vccs _ | Netlist.Circuit.Cccs _
    | Netlist.Circuit.Ccvs _ | Netlist.Circuit.Mosfet _ | Netlist.Circuit.Bjt _ ->
        e
  in
  { circuit with Netlist.Circuit.elements = Array.map subst circuit.Netlist.Circuit.elements }

(* Backward-Euler capacitor companions: conductance C/h plus history
   current. Device capacitances are frozen at the previous step's operating
   point, which is the standard charge-conserving-enough simplification for
   a slew-rate measurement. *)
let stamp_caps idx ~value ~ops ~h (xold : float array) j b =
  let vold node = if node = 0 then 0.0 else xold.(Sysmat.node_row idx node) in
  let companion n1 n2 cv =
    if cv > 0.0 then begin
      let geq = cv /. h in
      Sysmat.stamp_conductance idx j n1 n2 geq;
      let ihist = geq *. (vold n1 -. vold n2) in
      Sysmat.add_vec (Sysmat.node_row idx n1) ihist b;
      Sysmat.add_vec (Sysmat.node_row idx n2) (-.ihist) b
    end
  in
  Array.iter
    (fun (e : Netlist.Circuit.element) ->
      match e with
      | Netlist.Circuit.Capacitor { n1; n2; value = ve; _ } -> companion n1 n2 (value ve)
      | Netlist.Circuit.Mosfet { name; d; g; s; b = nb; _ } -> begin
          match List.assoc_opt name ops with
          | Some (Dc.Mos_op op) ->
              let open Devices.Sig in
              companion g s op.cgs;
              companion g d op.cgd;
              companion g nb op.cgb;
              companion nb d op.cbd;
              companion nb s op.cbs
          | Some (Dc.Bjt_op _) | None -> ()
        end
      | Netlist.Circuit.Bjt { name; c; b = nb; e = ne; _ } -> begin
          match List.assoc_opt name ops with
          | Some (Dc.Bjt_op op) ->
              let open Devices.Sig in
              companion nb ne op.cpi;
              companion nb c op.cmu;
              companion c 0 op.ccs
          | Some (Dc.Mos_op _) | None -> ()
        end
      | Netlist.Circuit.Resistor _ | Netlist.Circuit.Inductor _ | Netlist.Circuit.Vsource _
      | Netlist.Circuit.Isource _ | Netlist.Circuit.Vcvs _ | Netlist.Circuit.Vccs _
      | Netlist.Circuit.Cccs _ | Netlist.Circuit.Ccvs _ ->
          ())
    idx.Sysmat.circuit.Netlist.Circuit.elements

let step ~value ~registry ~h ~stimulus ~t circuit (xold : float array) ops_prev =
  let ckt_t = circuit_at stimulus t circuit in
  let idx = Sysmat.of_circuit ckt_t in
  let x = Array.copy xold in
  let rec newton it =
    if it > 60 then Error "tran: Newton failed in timestep"
    else begin
      let j, b = Dc.assemble idx ~value ~registry ~gmin:1e-12 ~srcscale:1.0 x in
      stamp_caps idx ~value ~ops:ops_prev ~h xold j b;
      match La.Lu.factor j with
      | exception La.Lu.Singular _ -> Error "tran: singular Jacobian"
      | lu ->
          let xnew = La.Lu.solve lu b in
          let maxdv = ref 0.0 in
          for k = 0 to Array.length x - 1 do
            let dv = xnew.(k) -. x.(k) in
            let lim = if k < idx.Sysmat.n_nodes - 1 then Float.max (-0.5) (Float.min 0.5 dv) else dv in
            if k < idx.Sysmat.n_nodes - 1 then maxdv := Float.max !maxdv (Float.abs dv);
            x.(k) <- x.(k) +. lim
          done;
          if !maxdv < 1e-6 then Ok x else newton (it + 1)
    end
  in
  Result.map (fun x -> (x, Dc.collect_ops idx ~value ~registry x)) (newton 0)

let simulate ~value ~registry ~tstop ~dt ~stimulus circuit =
  let ckt0 = circuit_at stimulus 0.0 circuit in
  match Dc.solve ~value ~registry ckt0 with
  | Error e -> Error ("tran: initial operating point: " ^ e)
  | Ok sol0 ->
      let idx = sol0.Dc.index in
      (* The relative epsilon keeps an exactly-dividing tstop/dt from
         rounding just above an integer and growing a degenerate h=0 final
         step (whose C/h companion stamp would be singular). *)
      let nsteps =
        Stdlib.max 1 (int_of_float (Float.ceil (tstop /. dt *. (1.0 -. 1e-12))))
      in
      (* The last grid point clamps to tstop so the stimulus is never
         sampled past the requested horizon; the final (shorter) step gets
         its own h below. *)
      let times = Array.init (nsteps + 1) (fun k -> Float.min (float_of_int k *. dt) tstop) in
      let states = Array.make (nsteps + 1) sol0.Dc.x in
      let rec run k x ops =
        if k > nsteps then Ok { index = idx; times; states }
        else begin
          let h = times.(k) -. times.(k - 1) in
          match step ~value ~registry ~h ~stimulus ~t:times.(k) circuit x ops with
          | Error e -> Error e
          | Ok (x', ops') ->
              states.(k) <- x';
              run (k + 1) x' ops'
        end
      in
      run 1 sol0.Dc.x sol0.Dc.ops
