(** Nonlinear transient analysis with fixed-step backward-Euler integration
    and a Newton solve per timestep. Used as the reference measurement for
    large-signal specifications (slew rate) that AWE cannot predict.

    Time-varying stimulus is supplied per source name; sources without an
    override keep their DC value. *)

type t = {
  index : Sysmat.t;
  times : float array;
  states : float array array;  (** [step][unknown] *)
}

(** [node_waveform r node] extracts one node's voltage trace. *)
val node_waveform : t -> int -> float array

(** [waveform_of r ~pos ~neg] is the single-ended or differential trace
    v(pos) - v(neg). *)
val waveform_of : t -> pos:int -> neg:int option -> float array

(** [peak_slew ~times v ~t_from ~t_to] is the peak |dv/dt| over every
    sample interval that overlaps the window (t_from, t_to) — including
    the interval straddling the window edge, which carries the step-onset
    transition when the stimulus edge falls between samples. *)
val peak_slew : times:float array -> float array -> t_from:float -> t_to:float -> float

(** [slew_rate r node ~t_from ~t_to] is [peak_slew] of the node voltage,
    V/s. *)
val slew_rate : t -> int -> t_from:float -> t_to:float -> float

(** [settling_time ~times v ~t_from ~tol] is the time after [t_from] at
    which the waveform last enters the band [tol] * |v_final - v(t_from)|
    around its final value and stays there, in seconds. 0 when already
    settled at the step edge; bounded by the simulated horizon. *)
val settling_time : times:float array -> float array -> t_from:float -> tol:float -> float

val simulate :
  value:(Netlist.Expr.t -> float) ->
  registry:Devices.Registry.t ->
  tstop:float ->
  dt:float ->
  stimulus:(string * (float -> float)) list ->
  Netlist.Circuit.t ->
  (t, string) result
