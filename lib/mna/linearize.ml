type t = { idx : Sysmat.t; g : La.Mat.t; c : La.Mat.t; b : La.Vec.t }

(* Stamp every element of [circuit]; when [only_src] is given, AC
   excitations are taken from that source alone with unit magnitude. *)
let stamp_into idx ~value ~ops ?only_src circuit =
  let n = idx.Sysmat.size in
  let g = La.Mat.create n n in
  let c = La.Mat.create n n in
  let b = La.Vec.create n in
  let nrow = Sysmat.node_row idx in
  let add_g = Sysmat.add_g idx g in
  let brow name =
    match Sysmat.branch_of_name idx name with
    | Some r -> r
    | None -> failwith ("linearize: unknown voltage-defined element " ^ name)
  in
  let cap_between n1 n2 cv =
    let i = nrow n1 and j = nrow n2 in
    if i >= 0 then La.Mat.add_to c i i cv;
    if j >= 0 then La.Mat.add_to c j j cv;
    if i >= 0 && j >= 0 then begin
      La.Mat.add_to c i j (-.cv);
      La.Mat.add_to c j i (-.cv)
    end
  in
  let ac_of name ac = match only_src with Some s when s <> name -> 0.0 | Some _ | None -> ac in
  let handle (e : Netlist.Circuit.element) =
    match e with
    | Netlist.Circuit.Resistor { name; n1; n2; value = ve } ->
        let r = value ve in
        if r <= 0.0 then failwith (name ^ ": non-positive resistance");
        Sysmat.stamp_conductance idx g n1 n2 (1.0 /. r)
    | Netlist.Circuit.Capacitor { n1; n2; value = ve; _ } -> cap_between n1 n2 (value ve)
    | Netlist.Circuit.Inductor { name; n1; n2; value = ve } ->
        let row = brow name in
        add_g row (nrow n1) 1.0;
        add_g row (nrow n2) (-1.0);
        add_g (nrow n1) row 1.0;
        add_g (nrow n2) row (-1.0);
        La.Mat.add_to c row row (-.value ve)
    | Netlist.Circuit.Vsource { name; np; nn; ac; _ } ->
        let row = brow name in
        add_g row (nrow np) 1.0;
        add_g row (nrow nn) (-1.0);
        add_g (nrow np) row 1.0;
        add_g (nrow nn) row (-1.0);
        Sysmat.add_vec row (ac_of name ac) b
    | Netlist.Circuit.Isource { name; np; nn; ac; _ } ->
        let i = ac_of name ac in
        Sysmat.add_vec (nrow np) (-.i) b;
        Sysmat.add_vec (nrow nn) i b
    | Netlist.Circuit.Vcvs { name; np; nn; ncp; ncn; gain } ->
        let row = brow name in
        let gv = value gain in
        add_g row (nrow np) 1.0;
        add_g row (nrow nn) (-1.0);
        add_g row (nrow ncp) (-.gv);
        add_g row (nrow ncn) gv;
        add_g (nrow np) row 1.0;
        add_g (nrow nn) row (-1.0)
    | Netlist.Circuit.Vccs { np; nn; ncp; ncn; gm; _ } ->
        Sysmat.stamp_vccs idx g np nn ncp ncn (value gm)
    | Netlist.Circuit.Cccs { np; nn; vsrc; gain; _ } ->
        let col = brow vsrc in
        add_g (nrow np) col (value gain);
        add_g (nrow nn) col (-.value gain)
    | Netlist.Circuit.Ccvs { name; np; nn; vsrc; r } ->
        let row = brow name in
        let col = brow vsrc in
        add_g row (nrow np) 1.0;
        add_g row (nrow nn) (-1.0);
        add_g row col (-.value r);
        add_g (nrow np) row 1.0;
        add_g (nrow nn) row (-1.0)
    | Netlist.Circuit.Mosfet { name; d; g = ng; s; b = nb; _ } -> begin
        match ops name with
        | Some (Dc.Mos_op op) ->
            let open Devices.Sig in
            Sysmat.stamp_vccs idx g d s ng s op.gm;
            Sysmat.stamp_conductance idx g d s op.gds;
            Sysmat.stamp_vccs idx g d s nb s op.gmbs;
            Sysmat.stamp_conductance idx g nb d op.gbd;
            Sysmat.stamp_conductance idx g nb s op.gbs;
            cap_between ng s op.cgs;
            cap_between ng d op.cgd;
            cap_between ng nb op.cgb;
            cap_between nb d op.cbd;
            cap_between nb s op.cbs
        | Some (Dc.Bjt_op _) | None ->
            failwith ("linearize: no MOS operating point for " ^ name)
      end
    | Netlist.Circuit.Bjt { name; c = nc; b = nb; e = ne; _ } -> begin
        match ops name with
        | Some (Dc.Bjt_op op) ->
            let open Devices.Sig in
            Sysmat.stamp_vccs idx g nc ne nb ne op.bjt_gm;
            Sysmat.stamp_conductance idx g nb ne op.gpi;
            Sysmat.stamp_conductance idx g nc ne op.go;
            Sysmat.stamp_conductance idx g nb nc (Float.max (-.op.gmu) 0.0);
            cap_between nb ne op.cpi;
            cap_between nb nc op.cmu;
            cap_between nc 0 op.ccs
        | Some (Dc.Mos_op _) | None ->
            failwith ("linearize: no BJT operating point for " ^ name)
      end
  in
  Array.iter handle circuit.Netlist.Circuit.elements;
  { idx; g; c; b }

let stamp ~value ~ops ?only_src circuit =
  stamp_into (Sysmat.of_circuit circuit) ~value ~ops ?only_src circuit

(* [Sysmat.of_circuit] depends only on element kinds, names and node
   connectivity — never on values or operating points — so the layout of a
   jig circuit is reusable across every annealing move: the incremental
   probe path restamps thousands of times per layout. *)
let stamp_reuse ~idx ~value ~ops ?only_src circuit =
  stamp_into idx ~value ~ops ?only_src circuit

let build ~value ~ops circuit = stamp ~value ~ops circuit

let output_vector t ~pos ~neg =
  let sel = La.Vec.create t.idx.Sysmat.size in
  let set node v =
    let r = Sysmat.node_row t.idx node in
    if r >= 0 then sel.(r) <- v
  in
  set pos 1.0;
  (match neg with Some nn -> set nn (-1.0) | None -> ());
  sel

let excitation_of t ~src =
  let b = La.Vec.create t.idx.Sysmat.size in
  let found = ref false in
  Array.iter
    (fun (e : Netlist.Circuit.element) ->
      match e with
      | Netlist.Circuit.Vsource { name; _ } when name = src -> begin
          found := true;
          match Sysmat.branch_of_name t.idx name with
          | Some row -> b.(row) <- 1.0
          | None -> ()
        end
      | Netlist.Circuit.Isource { name; np; nn; _ } when name = src ->
          found := true;
          Sysmat.add_vec (Sysmat.node_row t.idx np) (-1.0) b;
          Sysmat.add_vec (Sysmat.node_row t.idx nn) 1.0 b
      | Netlist.Circuit.Resistor _ | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Inductor _
      | Netlist.Circuit.Vsource _ | Netlist.Circuit.Isource _ | Netlist.Circuit.Vcvs _
      | Netlist.Circuit.Vccs _ | Netlist.Circuit.Cccs _ | Netlist.Circuit.Ccvs _
      | Netlist.Circuit.Mosfet _ | Netlist.Circuit.Bjt _ ->
          ())
    t.idx.Sysmat.circuit.Netlist.Circuit.elements;
  if not !found then failwith ("linearize: unknown excitation source " ^ src);
  b
