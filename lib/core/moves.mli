(** The OBLX move palette (paper Section V.A, "Move-Set").

    Classes:
    - ["user-disc"]: step one discrete user variable on its grid, window
      width controlled by a per-variable range limiter;
    - ["user-cont"]: Gaussian perturbation of a continuous user variable;
    - ["node-v"]: Gaussian perturbation of one relaxed-dc node voltage;
    - ["nr-partial"]: one damped Newton-Raphson step on all node voltages,
      using the bias network's nodal admittance Jacobian;
    - ["nr-full"]: Newton-Raphson iterated to (local) convergence;
    - ["multi"]: simultaneous perturbation of several variables.

    Hustin's move selection learns which class pays at each phase of the
    anneal; range limiters adapt per-variable step sizes. *)

type t

val classes : string array

(** Per class, whether batched candidate screening applies ({!Oblx}'s
    probe batches). The Newton-Raphson classes propose through exact
    residual/Jacobian solves and are excluded — screening them would
    re-run the expensive part per candidate to save one evaluation. *)
val screenable : bool array

(** [make ?session p] — with [session], the Newton-Raphson move classes
    read KCL residuals and device operating points out of the shared
    incremental-evaluation caches ({!Eval.Incr}) instead of re-sweeping
    the bias network; the values served are bitwise identical. *)
val make : ?session:Eval.Incr.session -> Problem.t -> t

(** [propose ctx st k rng] applies a move of class [k] to [st] in place and
    returns the undo thunk; [None] when inapplicable. *)
val propose : t -> State.t -> int -> Anneal.Rng.t -> (unit -> unit) option

(** [record_result ctx k ~accepted] feeds the range limiter of the variable
    touched by the last move of class [k]. *)
val record_result : t -> int -> accepted:bool -> unit

(** [ranges_converged ctx] — continuous step scales have collapsed,
    half of OBLX's freezing criterion. *)
val ranges_converged : t -> bool

(** [newton_step p st ~damping] performs one damped NR update of the node
    variables in place, returning the max absolute voltage change; exposed
    for tests. *)
val newton_step : Problem.t -> State.t -> damping:float -> float option

(** [newton_step_with ?session p st ~damping] is {!newton_step} with the
    residuals and Jacobian operating points served from an incremental
    session's caches (bitwise-identical values). *)
val newton_step_with :
  ?session:Eval.Incr.session -> Problem.t -> State.t -> damping:float -> float option

(** [debug_jacobian p st] is the analytic KCL Jacobian over the free node
    variables — exposed so tests can check it against finite differences. *)
val debug_jacobian : Problem.t -> State.t -> La.Mat.t

(** [newton_global p st] solves the bias network with the full reference
    DC engine (gmin/source stepping) and writes the node voltages back
    into the relaxed-dc state; false when the solve fails. *)
val newton_global : Problem.t -> State.t -> bool
