(** The cost-function evaluator ASTRX compiles: given a design state x it
    produces the bias point (device operating points + KCL residuals of the
    relaxed-dc formulation), the AWE reduced-order models of every test-jig
    transfer function, the measured specification values, and the scalar
    cost C(x) of paper eq. (5):

    C(x) = C_obj + C_perf + C_dev + C_dc *)

type bias_point = {
  node_v : float array;  (** absolute voltage per bias-circuit node *)
  ops : (string * Mna.Dc.op_info) list;
  residuals : float array;  (** KCL residual (A) per free variable *)
  res_scale : float array;  (** sum of |branch currents| per free variable *)
  node_leaving : float array;
      (** per node, total current leaving into non-source elements — used
          by the [supply_current] spec function *)
}

(** [value_env p st] evaluates element-value expressions: user variables,
    parameters, and built-in math. *)
val value_env : Problem.t -> State.t -> Netlist.Expr.env

(** [node_voltages p st] maps the tree-link assignment onto the state. *)
val node_voltages : Problem.t -> State.t -> float array

val bias_point : Problem.t -> State.t -> bias_point

(** [residuals_quick p st] recomputes only the KCL residual vector — the
    inner loop of Newton-Raphson moves. *)
val residuals_quick : Problem.t -> State.t -> float array

exception Measurement_failed of string

(** [op_field op name] reads one named quantity ([gm], [cd], [vdsat], ...)
    from a device operating point — the resolution of dotted references
    like [xamp.m1.cd] in specification expressions. *)
val op_field : Mna.Dc.op_info -> string -> float

(** [active_area_um2 p st] is the summed device area of the circuit under
    design, square microns. *)
val active_area_um2 : Problem.t -> State.t -> float

(** [tran_card_of p tf] is the [.tran] budget of the jig owning [tf].
    @raise Measurement_failed when the tf is unknown or its jig declares
    no transient card. *)
val tran_card_of : Problem.t -> string -> Netlist.Ast.tran_card

(** [transient_response p ~value ~tf ~vstep ~tstop ~dt] runs the shared
    step-stimulus transient over the jig owning [tf]: the source the tf
    names steps by [vstep] at [tstop/10]. Returns the simulation, the tf
    ports and the step onset time. Both the in-loop spec functions (at
    the coarse [dtloop] budget) and {!Verify} (at the exact [dt]) measure
    through this one helper, so they share stimulus and overlap-window
    semantics exactly.
    @raise Measurement_failed on an unknown tf or a failed simulation. *)
val transient_response :
  Problem.t ->
  value:(Netlist.Expr.t -> float) ->
  tf:string ->
  vstep:float ->
  tstop:float ->
  dt:float ->
  Mna.Tran.t * Problem.tf * float

(** [output_noise_v2_per_hz lin ~value ~ops ~sel] is the dc output noise
    density of the linearized jig in V^2/Hz, via one adjoint solve
    G^T y = sel: resistor thermal, MOS channel thermal and BJT shot
    sources. @raise Measurement_failed on a singular system. *)
val output_noise_v2_per_hz :
  Mna.Linearize.t ->
  value:(Netlist.Expr.t -> float) ->
  ops:(string -> Mna.Dc.op_info option) ->
  sel:La.Vec.t ->
  float

(** [corner_spec_values p st] measures every [spec_corner] row under its
    compile-resolved corner registry with the full evaluator, in
    [corner_regs] order — a deterministic function of (p, st) shared by
    the full and incremental cost paths. *)
val corner_spec_values : Problem.t -> State.t -> (string * float option) list

type measured = {
  bias : bias_point;
  roms : (string * (Awe.Rom.t, string) result) list;  (** per transfer function *)
  spec_values : (string * float option) list;  (** None = measurement failed *)
}

val measure : Problem.t -> State.t -> measured

type breakdown = {
  c_obj : float;
  c_perf : float;
  c_dev : float;
  c_dc : float;
  total : float;
  measured : measured;
}

(** [cost p w st] — the full evaluation, with [w] the current adaptive
    weights. *)
val cost : Problem.t -> Weights.t -> State.t -> breakdown

(** [cost_scalar] is [cost] without keeping the breakdown. *)
val cost_scalar : Problem.t -> Weights.t -> State.t -> float

(** Normalized spec terms, exposed for the adaptive-weight controller:
    objective contributions and penalty contributions before weighting. *)
val raw_terms : Problem.t -> State.t -> measured -> float * float * float * float

(** [cost_of_spec_values p vals] is the (objective, penalty) pair from the
    good/bad normalization alone — shared with the simulation-based
    baseline optimizer, which has no relaxed-dc or device-region terms. *)
val cost_of_spec_values :
  Problem.t -> (string * float option) list -> float * float

(** [breakdown_of p w st m] folds an already-measured point into the cost
    breakdown — the final stage [cost] runs, exposed so {!Incr} can share
    it bit for bit. *)
val breakdown_of : Problem.t -> Weights.t -> State.t -> measured -> breakdown

(** Incremental move-scoped evaluation (docs/PERFORMANCE.md).

    A session is a per-domain arena (docs/PARALLEL.md): all of its
    arrays are allocated once in {!Incr.create} and written in place on
    the hot path, so steady-state evaluation allocates almost nothing —
    the property the domain-parallel {!Core.Oblx.best_of} depends on to
    keep minor-GC stop-the-world barriers rare.

    A session owns caches for one annealing run: per-element KCL flow
    contributions and device operating points (with a small memo keyed on
    the exact geometry + terminal-voltage bits), per-jig AWE ROM lists,
    and per-spec measured values. After a move, only the slice of the
    cost function reachable from the changed variables through
    {!Problem.depgraph} is re-evaluated; the final fold reuses the full
    evaluator's own code (same element order, same addition order), so
    the returned breakdown is bit-identical to {!cost}. A periodic
    resync recomputes from scratch and verifies exactly that. *)
module Incr : sig
  type session

  (** Per-move-class cache behaviour, for telemetry. *)
  type class_row = {
    cr_class : string;
    cr_evals : int;
    cr_dirty_vars : int;
    cr_op_hits : int;
    cr_op_misses : int;
    cr_rom_builds : int;
    cr_rom_reuses : int;
  }

  type stats = {
    full_evals : int;  (** from-scratch evaluations (unprimed or resync) *)
    incr_evals : int;  (** evaluations served from a primed session *)
    dirty_vars : int;  (** total dirty variables across incremental evals *)
    op_hits : int;  (** device-op memo hits *)
    op_misses : int;  (** device-op model evaluations *)
    rom_builds : int;  (** jig ROM lists rebuilt *)
    rom_reuses : int;  (** jig ROM lists served from cache *)
    spec_evals : int;
    spec_reuses : int;
    resyncs : int;  (** periodic full-recompute verifications *)
    resync_mismatches : int;  (** resyncs that caught a divergence (bug) *)
    probes : int;  (** candidate screenings served by [probe_cost] *)
    probe_rom_builds : int;  (** touched jigs refit on the probe path *)
    probe_fallbacks : int;
        (** probe refits that factored fresh: no retained system, or the
            low-rank guard refused the update *)
    mom_reuses : int;  (** probe tfs served entirely from recorded vectors *)
    mom_refreshes : int;  (** probe tfs that re-solved only the C-moved tail *)
    dirty_hist : int array;
        (** histogram of dirty-variable counts per incremental eval;
            last bucket accumulates everything >= its index *)
    by_class : class_row list;
  }

  (** [create ?resync_every p] — a fresh, unprimed session. Every
      [resync_every] incremental evaluations (default 1024) the result is
      verified bitwise against a from-scratch {!Eval.cost}. *)
  val create : ?resync_every:int -> Problem.t -> session

  val problem : session -> Problem.t

  (** Tag subsequent evaluations with a move-class name for [stats]. *)
  val set_class : session -> string -> unit

  (** Drop all caches; the next evaluation runs from scratch. *)
  val invalidate : session -> unit

  (** [reset ss] returns the session to its just-created state — caches
      dropped AND counters zeroed — without reallocating any of its
      arrays. A reset session is observationally identical to a fresh
      [create]: {!Core.Oblx.best_of} resets one per-domain session
      between restarts instead of allocating a new arena each time. *)
  val reset : session -> unit

  (** Bit-identical to [Eval.cost p w st]. *)
  val cost : session -> Weights.t -> State.t -> breakdown

  val cost_scalar : session -> Weights.t -> State.t -> float

  (** [probe_cost ss w st] screens a candidate state: an approximate
      total cost computed against the session's retained caches — jig
      systems restamped on the retained layout and solved through
      low-rank (Sherman-Morrison-Woodbury) updates of the retained
      factorization at reduced moment order, recorded moment vectors
      served where the system is bitwise untouched, element flows and
      specs recomputed only where the candidate reaches through the
      depgraph. Probing never writes the exact caches: any number of
      probes may run between two exact evaluations without changing
      what [cost] returns. Accepted states must be confirmed through
      {!cost}, which is what the annealer's batched screening does. *)
  val probe_cost : session -> Weights.t -> State.t -> float

  (** Bit-identical to [Eval.residuals_quick p st], but served from the
      cached bias slice — the Newton-Raphson inner loop. *)
  val residuals_quick : session -> State.t -> float array

  (** [bias_view ss st] syncs and exposes the cached node voltages and
      operating points (element order) — shared with the NR Jacobian so
      the move generator evaluates each device model once per point. *)
  val bias_view :
    session -> State.t -> float array * (string * Mna.Dc.op_info) list

  (** Bit-identical to [Eval.measure p st]. *)
  val measure_with : session -> State.t -> measured

  val stats : session -> stats
end
