type trace_point = {
  tp_moves : int;
  tp_cost : float;
  tp_best : float;
  tp_max_kcl_rel : float;
  tp_max_kcl_abs : float;
  tp_temperature : float;
}

type result = {
  final : State.t;
  predicted : (string * float option) list;
  best_cost : float;
  moves : int;
  accepted : int;
  froze_early : bool;
  cut_short : bool;
  cut_reason : string option;
  evals : int;
  eval_time_ms : float;
  run_time_s : float;
  trace : trace_point list;
  eval_stats : Eval.Incr.stats option;
  probs : float array;
  warm : string option;
}

type warm_start = {
  ws_label : string;
  ws_values : float array;
  ws_grid : int array;
  ws_probs : float array option;
}

type control = {
  publish : float -> unit;
  cutoff : progress:float -> best:float -> string option;
}

let kcl_stats (bp : Eval.bias_point) =
  let rel = ref 0.0 and abs_ = ref 0.0 in
  Array.iteri
    (fun k r ->
      abs_ := Float.max !abs_ (Float.abs r);
      rel := Float.max !rel (Float.abs r /. (bp.Eval.res_scale.(k) +. 1e-9)))
    bp.Eval.residuals;
  (!rel, !abs_)

(* Default tournament size for batched candidate screening: large enough
   that the exact-confirmation cost amortizes over several screened
   candidates, small enough that the screen's ranking still tracks the
   exact landscape within a tournament. *)
let default_probe_batch = 8

let synthesize ?(seed = 1) ?rng ?moves ?(incremental = true)
    ?(probe_batch = default_probe_batch) ?session ?control ?warm ?(obs = Obs.Trace.none)
    (p : Problem.t) =
  let n_vars = State.n_vars p.Problem.state0 in
  (match warm with
  | Some w ->
      if Array.length w.ws_values <> n_vars || Array.length w.ws_grid <> n_vars then
        invalid_arg
          (Printf.sprintf "Oblx.synthesize: warm seed '%s' has %d variables, problem has %d"
             w.ws_label (Array.length w.ws_values) n_vars)
  | None -> ());
  let total_moves =
    match moves with Some m -> m | None -> Int.min 150_000 (Int.max 8_000 (2000 * n_vars))
  in
  let weights = Weights.create () in
  (* One incremental-evaluation session per annealing run: the session's
     caches follow this run's trajectory (including undo of rejected
     moves, which the value diff detects like any other move) and serve
     bit-identical costs, so the trajectory — and the winner — match the
     full evaluator exactly. A caller-supplied [session] (the per-domain
     arena of [best_of]) is reset, which makes it observationally a fresh
     one without reallocating its arrays. *)
  let session =
    match session with
    | Some ss ->
        Eval.Incr.reset ss;
        Some ss
    | None -> if incremental then Some (Eval.Incr.create p) else None
  in
  let ctx = Moves.make ?session p in
  let rng = match rng with Some r -> r | None -> Anneal.Rng.create seed in
  let evals = ref 0 in
  let eval_clock = ref 0.0 in
  let cost st =
    let t0 = Unix.gettimeofday () in
    let c =
      match session with
      | Some ss -> Eval.Incr.cost_scalar ss weights st
      | None -> Eval.cost_scalar p weights st
    in
    eval_clock := !eval_clock +. (Unix.gettimeofday () -. t0);
    incr evals;
    if Float.is_finite c then c else 1e12
  in
  let measure st =
    match session with Some ss -> Eval.Incr.measure_with ss st | None -> Eval.measure p st
  in
  Obs.Trace.emit obs ~moves:0 ~temperature:0.0 ~acceptance:1.0
    (Obs.Event.Restart { total_moves; classes = Moves.classes });
  let trace = ref [] in
  let last_discrete = ref [||] in
  let stable_stages = ref 0 in
  let on_stage st (info : Anneal.Annealer.stage_info) =
    (* Adaptive weights from the unweighted group penalties. *)
    let m = measure st in
    let obj, perf, dev, dc = Eval.raw_terms p st m in
    let progress = float_of_int info.moves_done /. float_of_int total_moves in
    Weights.update weights ~progress ~perf ~dev ~dc;
    (* The weights are part of the cost function, so replay tracks these
       events to re-evaluate later accepted states; eq. (2) term breakdown
       rides along for explainability. *)
    Obs.Trace.emit obs ~moves:info.moves_done ~temperature:info.temperature
      ~acceptance:info.acceptance
      (Obs.Event.Weight_update
         {
           w_perf = weights.Weights.w_perf;
           w_dev = weights.Weights.w_dev;
           w_dc = weights.Weights.w_dc;
           c_obj = obj;
           c_perf = perf;
           c_dev = dev;
           c_dc = dc;
         });
    (match session with
    | Some ss ->
        let es = Eval.Incr.stats ss in
        Obs.Trace.emit obs ~moves:info.moves_done ~temperature:info.temperature
          ~acceptance:info.acceptance
          (Obs.Event.Evals
             {
               full = es.Eval.Incr.full_evals;
               incr = es.Eval.Incr.incr_evals;
               dirty_vars = es.Eval.Incr.dirty_vars;
               op_hits = es.Eval.Incr.op_hits;
               op_misses = es.Eval.Incr.op_misses;
               rom_builds = es.Eval.Incr.rom_builds;
               rom_reuses = es.Eval.Incr.rom_reuses;
               spec_evals = es.Eval.Incr.spec_evals;
               spec_reuses = es.Eval.Incr.spec_reuses;
               resyncs = es.Eval.Incr.resyncs;
               resync_mismatches = es.Eval.Incr.resync_mismatches;
               probes = es.Eval.Incr.probes;
               probe_rom_builds = es.Eval.Incr.probe_rom_builds;
               probe_fallbacks = es.Eval.Incr.probe_fallbacks;
               mom_reuses = es.Eval.Incr.mom_reuses;
               mom_refreshes = es.Eval.Incr.mom_refreshes;
               per_class =
                 List.map
                   (fun (c : Eval.Incr.class_row) ->
                     {
                       Obs.Event.ec_name = c.Eval.Incr.cr_class;
                       ec_evals = c.Eval.Incr.cr_evals;
                       ec_dirty = c.Eval.Incr.cr_dirty_vars;
                       ec_op_hits = c.Eval.Incr.cr_op_hits;
                       ec_op_misses = c.Eval.Incr.cr_op_misses;
                       ec_rom_builds = c.Eval.Incr.cr_rom_builds;
                       ec_rom_reuses = c.Eval.Incr.cr_rom_reuses;
                     })
                   es.Eval.Incr.by_class;
             })
    | None -> ());
    let rel, abs_ = kcl_stats m.Eval.bias in
    trace :=
      {
        tp_moves = info.moves_done;
        tp_cost = info.current_cost;
        tp_best = info.best_cost;
        tp_max_kcl_rel = rel;
        tp_max_kcl_abs = abs_;
        tp_temperature = info.temperature;
      }
      :: !trace;
    (* Discrete-variable stability for the freezing criterion. *)
    let disc = Array.copy st.State.grid_index in
    if !last_discrete <> [||] && disc = !last_discrete then incr stable_stages
    else stable_stages := 0;
    last_discrete := disc
  in
  let frozen _st = !stable_stages >= 8 && Moves.ranges_converged ctx in
  (* The cutoff's verdict is kept, not just its boolean: an aborted restart
     must still account for why it stopped in its own result and in the
     trace's [Done] event, instead of the reason dying inside the poll. *)
  let cut_reason = ref None in
  let abort =
    Option.map
      (fun c (info : Anneal.Annealer.stage_info) ->
        c.publish info.best_cost;
        let progress = float_of_int info.moves_done /. float_of_int total_moves in
        match c.cutoff ~progress ~best:info.best_cost with
        | Some reason ->
            if !cut_reason = None then cut_reason := Some reason;
            true
        | None -> false)
      control
  in
  let problem =
    {
      Anneal.Annealer.classes = Moves.classes;
      propose =
        (fun st k rng ->
          (match session with
          | Some ss -> Eval.Incr.set_class ss Moves.classes.(k)
          | None -> ());
          Moves.propose ctx st k rng);
      cost;
      snapshot = State.snapshot;
      frozen = Some frozen;
      on_stage = Some on_stage;
      on_result = Some (fun k ~accepted -> Moves.record_result ctx k ~accepted);
      abort;
      (* Batched screening needs the retained caches of the incremental
         session — without one there is no cheap probe, so the full
         evaluator keeps its one-candidate-per-move behavior. Screens are
         not counted in [evals]/[eval_clock]: those meter exact
         evaluations, and the probe/refresh counters in [Eval.Incr.stats]
         meter the screening work. *)
      batch =
        (match session with
        | Some ss when probe_batch > 1 ->
            Some
              {
                Anneal.Annealer.batch_size = probe_batch;
                screenable = Moves.screenable;
                screen =
                  (fun st ->
                    let c = Eval.Incr.probe_cost ss weights st in
                    if Float.is_finite c then c else 1e12);
              }
        | Some _ | None -> None);
    }
  in
  let t_start = Unix.gettimeofday () in
  (* A warm seed replaces the description's initial point with a prior
     winner's design vector (copied — the caller's corpus entry must not
     be mutated by the anneal) and optionally restores the Hustin mix it
     converged to. Cold runs take the exact pre-warm-start path. *)
  let init =
    match warm with
    | None -> State.snapshot p.Problem.state0
    | Some w ->
        {
          State.info = p.Problem.state0.State.info;
          values = Array.copy w.ws_values;
          grid_index = Array.copy w.ws_grid;
        }
  in
  let priors = Option.bind warm (fun w -> w.ws_probs) in
  let view (st : State.t) = (Array.copy st.State.values, Array.copy st.State.grid_index) in
  let outcome = Anneal.Annealer.run ~trace:obs ~view ?priors ~rng ~total_moves ~init problem in
  (* Final polish: drive the relaxed-dc residuals to zero with full NR so
     the winning design is dc-correct like a simulated circuit. *)
  let best = outcome.Anneal.Annealer.best in
  let rec polish k =
    if k = 0 then ()
    else begin
      match Moves.newton_step_with ?session p best ~damping:1.0 with
      | Some change when change > 1e-12 -> polish (k - 1)
      | Some _ | None -> ()
    end
  in
  polish 25;
  (* If the iterated polish stalled short of dc-correctness, let the full
     simulator engine finish the job. *)
  (let bp = Eval.bias_point p best in
   let worst =
     Array.fold_left (fun a r -> Float.max a (Float.abs r)) 0.0 bp.Eval.residuals
   in
   if worst > 1e-9 then begin
     ignore (Moves.newton_global p best);
     polish 10
   end);
  let run_time_s = Unix.gettimeofday () -. t_start in
  let m = measure best in
  Obs.Trace.emit obs ~moves:outcome.Anneal.Annealer.moves ~temperature:0.0
    ~acceptance:
      (if outcome.Anneal.Annealer.moves > 0 then
         float_of_int outcome.Anneal.Annealer.accepted
         /. float_of_int outcome.Anneal.Annealer.moves
       else 0.0)
    (Obs.Event.Done
       {
         best_cost = outcome.Anneal.Annealer.best_cost;
         final_cost = outcome.Anneal.Annealer.final_cost;
         accepted = outcome.Anneal.Annealer.accepted;
         stages = outcome.Anneal.Annealer.stages;
         froze_early = outcome.Anneal.Annealer.froze_early;
         aborted = outcome.Anneal.Annealer.aborted;
         abort_reason = !cut_reason;
       });
  {
    final = best;
    predicted = m.Eval.spec_values;
    best_cost = outcome.Anneal.Annealer.best_cost;
    moves = outcome.Anneal.Annealer.moves;
    accepted = outcome.Anneal.Annealer.accepted;
    froze_early = outcome.Anneal.Annealer.froze_early;
    cut_short = outcome.Anneal.Annealer.aborted;
    cut_reason = !cut_reason;
    evals = !evals;
    eval_time_ms = (if !evals > 0 then 1000.0 *. !eval_clock /. float_of_int !evals else 0.0);
    run_time_s;
    trace = List.rev !trace;
    eval_stats = Option.map Eval.Incr.stats session;
    probs = outcome.Anneal.Annealer.probs;
    warm = Option.map (fun w -> w.ws_label) warm;
  }

let score (p : Problem.t) (r : result) =
  (* Rank runs by final cost, with failed measurements pushed last. *)
  let failed =
    List.exists (fun (_, v) -> v = None) r.predicted && p.Problem.specs <> []
  in
  if failed then r.best_cost +. 1e6 else r.best_cost

let default_jobs () = Int.max 1 (Domain.recommended_domain_count () - 1)

(* --- Per-domain perf accounting, surfaced by [best_of ?perf]. --- *)

type domain_report = {
  d_index : int;
  d_restarts : int;
  d_wall_s : float;
  d_minor_collections : int;
  d_major_collections : int;
  d_promoted_words : float;
  d_minor_words : float;
}

type parallel_report = {
  pr_jobs : int;
  pr_runs : int;
  pr_domains : domain_report list;
  pr_merge : Obs.Shard.stats option;
}

(* Minor-heap words per worker domain when [best_of] runs parallel. In
   OCaml 5 every minor collection is a stop-the-world barrier across ALL
   domains, so undersized per-domain minor heaps make domains spend their
   time synchronizing instead of annealing. The evaluator arenas keep the
   allocation rate low; the larger nursery makes the remaining minor
   collections rare. Spawned domains do not inherit the parent's Gc
   settings, so each worker sets its own. *)
let arena_minor_heap_words = 1 lsl 22

(* A laggard gives up only when its best is worse than the published global
   best by a slack that scales with the costs involved: close races are
   always allowed to finish, so early stopping rarely changes the winner. *)
let early_stop_slack best = Float.max 1.0 (0.25 *. Float.abs best)

let best_of ?(seed = 1) ?moves ?jobs ?(early_stop = false) ?(incremental = true)
    ?(probe_batch = default_probe_batch) ?restarts ?cutoff ?(warm_starts = [||])
    ?(obs = Obs.Trace.none) ?perf ~runs (p : Problem.t) =
  if runs < 1 then invalid_arg "Oblx.best_of: runs must be >= 1";
  (* Warm seeds attach to restart indices positionally: restart k < |seeds|
     anneals from seed k, the rest stay cold for exploration. The mapping
     is by index — not by scheduling order — so the winner stays
     bit-identical for every [jobs] value and every shard split, exactly
     like the RNG streams. *)
  if Array.length warm_starts > runs then
    invalid_arg
      (Printf.sprintf "Oblx.best_of: %d warm seeds for %d runs" (Array.length warm_starts) runs);
  (* A restart shard executes only indices [lo, hi) of the full restart set,
     still drawing stream k for restart k — so a fleet of shards covering
     [0, runs) reproduces exactly the runs one machine would perform. *)
  let lo, hi = match restarts with None -> (0, runs) | Some (lo, hi) -> (lo, hi) in
  if lo < 0 || hi > runs || lo >= hi then
    invalid_arg
      (Printf.sprintf "Oblx.best_of: restart shard [%d,%d) out of range for %d runs" lo hi runs);
  let jobs = Int.min (hi - lo) (match jobs with Some j -> Int.max 1 j | None -> default_jobs ()) in
  (* Restart k always anneals with the k-th split of the root generator, so
     the set of runs — and therefore the winner — is independent of how the
     runs are scheduled across domains. *)
  let root = Anneal.Rng.create seed in
  let streams = Array.make runs root in
  for k = 0 to runs - 1 do
    streams.(k) <- Anneal.Rng.split root
  done;
  let global_best = Atomic.make Float.infinity in
  let rec publish c =
    let cur = Atomic.get global_best in
    if c < cur && not (Atomic.compare_and_set global_best cur c) then publish c
  in
  (* The external cutoff (deadline / cancellation from the serve layer) is
     checked before the early-stop race logic: a deadline verdict must win
     even when the run is leading. A control that only carries an external
     cutoff never perturbs the annealing trajectory unless it fires, so the
     bit-for-bit determinism guarantee holds for un-cut runs. *)
  let external_cut () = match cutoff with Some f -> f () | None -> None in
  let control =
    if not early_stop && cutoff = None then None
    else
      Some
        {
          publish;
          cutoff =
            (fun ~progress ~best ->
              match external_cut () with
              | Some reason -> Some reason
              | None ->
                  if not early_stop then None
                  else begin
                    let global = Atomic.get global_best in
                    if progress > 0.5 && best > global +. early_stop_slack best then
                      Some
                        (Printf.sprintf
                           "early-stop: best %.6g trails global best %.6g beyond slack %.3g at \
                            progress %.2f"
                           best global (early_stop_slack best) progress)
                    else None
                  end);
        }
  in
  let results : result option array = Array.make runs None in
  let next = Atomic.make lo in
  (* Under parallel emission, events route through a shard: each restart
     buffers locally (no lock) and merges into the caller's sinks in
     batches at stage boundaries, instead of serializing every event of
     every domain through one mutex. The per-restart streams recovered by
     demultiplexing the merged output are unchanged. *)
  let shard =
    if jobs > 1 && Obs.Trace.sinks obs <> [] then Some (Obs.Shard.create (Obs.Trace.sinks obs))
    else None
  in
  let reports : domain_report option array = Array.make jobs None in
  (* Each worker owns the runs it claims: every slot of [results] is written
     by exactly one domain, and Domain.join publishes them to this one. *)
  let worker w =
    if jobs > 1 then Gc.set { (Gc.get ()) with Gc.minor_heap_size = arena_minor_heap_words };
    let t0 = Unix.gettimeofday () in
    let g0 = Gc.quick_stat () in
    let claimed = ref 0 in
    (* One evaluator arena per domain, reset between the restarts this
       worker claims — allocation stays domain-local across the whole
       worker lifetime. *)
    let session = if incremental then Some (Eval.Incr.create p) else None in
    let rec take () =
      let k = Atomic.fetch_and_add next 1 in
      if k < hi then begin
        incr claimed;
        (* Restart-tagged events let the shared sinks demultiplex the
           interleaved streams of concurrent domains. *)
        let obs_k =
          let t = Obs.Trace.with_restart obs k in
          match shard with
          | Some sh -> Obs.Trace.with_sinks t [ Obs.Shard.for_restart sh k ]
          | None -> t
        in
        let warm = if k < Array.length warm_starts then Some warm_starts.(k) else None in
        let r =
          synthesize ~rng:streams.(k) ?moves ~incremental ~probe_batch ?session ?control ?warm
            ~obs:obs_k p
        in
        publish r.best_cost;
        results.(k) <- Some r;
        take ()
      end
    in
    take ();
    let g1 = Gc.quick_stat () in
    reports.(w) <-
      Some
        {
          d_index = w;
          d_restarts = !claimed;
          d_wall_s = Unix.gettimeofday () -. t0;
          d_minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
          d_major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
          d_promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
          d_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
        }
  in
  (if jobs <= 1 then worker 0
   else begin
     (* The caller's domain is worker 0; restore its Gc parameters after
        the parallel section (spawned domains die with theirs). *)
     let saved = Gc.get () in
     let domains = List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
     worker 0;
     List.iter Domain.join domains;
     Gc.set saved
   end);
  Option.iter Obs.Shard.drain shard;
  (match perf with
  | Some f ->
      f
        {
          pr_jobs = jobs;
          pr_runs = runs;
          pr_domains = Array.to_list reports |> List.filter_map Fun.id;
          pr_merge = Option.map Obs.Shard.stats shard;
        }
  | None -> ());
  let results = Array.to_list results |> List.filter_map Fun.id in
  (* Strict < keeps the earliest run on ties, independent of scheduling. *)
  let best =
    List.fold_left
      (fun acc r -> match acc with None -> Some r | Some b -> if score p r < score p b then Some r else acc)
      None results
  in
  (Option.get best, results)

(* ------------------------------------------------------------------ *)
(* Job-facing synthesis: deadlines and cancellation                    *)
(* ------------------------------------------------------------------ *)

let deadline_reason = "deadline"

let run_job ?(seed = 1) ?moves ?(runs = 1) ?jobs ?(early_stop = false) ?(incremental = true)
    ?(probe_batch = default_probe_batch) ?restarts ?deadline_s ?poll ?warm_starts
    ?(obs = Obs.Trace.none) ?perf (p : Problem.t) =
  (* The deadline clock starts here — queue wait is the caller's budget to
     spend before calling — and is polled through the annealer's abort
     hook, so an already-expired deadline stops a run before its first
     move. The cancellation [poll] wins over the deadline: an operator's
     verdict is more informative than a timer's. *)
  let t0 = Unix.gettimeofday () in
  let cutoff () =
    match (match poll with Some f -> f () | None -> None) with
    | Some reason -> Some reason
    | None -> begin
        match deadline_s with
        | Some budget when Unix.gettimeofday () -. t0 > budget -> Some deadline_reason
        | Some _ | None -> None
      end
  in
  let cutoff = if poll = None && deadline_s = None then None else Some cutoff in
  best_of ~seed ?moves ?jobs ~early_stop ~incremental ~probe_batch ?restarts ?cutoff ?warm_starts
    ~obs ?perf ~runs p

(* ------------------------------------------------------------------ *)
(* Trace replay                                                        *)
(* ------------------------------------------------------------------ *)

let replay_cost (p : Problem.t) : Obs.Replay.cost_fn =
 fun ~w_perf ~w_dev ~w_dc ~values ~grid ->
  (* Rebuild a state over the problem's variable metadata from the recorded
     design point, and a weights record from the tracked trajectory; the
     non-finite clamp matches [synthesize]'s cost wrapper exactly. *)
  let n = State.n_vars p.Problem.state0 in
  if Array.length values <> n || Array.length grid <> n then
    invalid_arg
      (Printf.sprintf "Oblx.replay_cost: recorded state has %d variables, problem has %d"
         (Array.length values) n);
  let st = { State.info = p.Problem.state0.State.info; values; grid_index = grid } in
  let w = { Weights.w_perf; w_dev; w_dc } in
  let c = Eval.cost_scalar p w st in
  if Float.is_finite c then c else 1e12

let replay ?tol (p : Problem.t) events = Obs.Replay.check ~cost:(replay_cost p) ?tol events
