exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let math_call name args =
  try Builtin.math_call name args
  with Builtin.Unknown_function f -> err "unknown function %s in expression" f

(* Compile-time environment: user variables at their initial values plus
   .param definitions (evaluated recursively, cycle-guarded). *)
let initial_env vars params =
  let rec lookup seen path =
    match path with
    | [ name ] -> begin
        match List.assoc_opt name vars with
        | Some v -> v
        | None -> begin
            match List.assoc_opt name params with
            | Some e ->
                if List.mem name seen then err "parameter cycle involving %s" name
                else
                  Netlist.Expr.eval
                    { Netlist.Expr.lookup = lookup (name :: seen); call = math_call }
                    e
            | None -> raise Not_found
          end
      end
    | _ -> raise Not_found
  in
  { Netlist.Expr.lookup = lookup []; call = math_call }

let known_tf_functions = Depgraph.known_tf_functions
let spec_only_functions = Depgraph.spec_only_functions

let default_init (v : Netlist.Ast.var_decl) =
  match v.Netlist.Ast.init with
  | Some i -> i
  | None -> begin
      match v.grid with
      | Netlist.Ast.Grid_log -> Float.sqrt (v.vmin *. v.vmax)
      | Netlist.Ast.Grid_lin -> 0.5 *. (v.vmin +. v.vmax)
    end

let compile ?corner (ast : Netlist.Ast.problem) =
  try
    (* 1. Device model registry. *)
    let decls =
      List.map
        (fun (m : Netlist.Ast.model_decl) ->
          {
            Devices.Registry.decl_name = m.model_name;
            decl_kind = m.device_kind;
            decl_level = m.level;
            decl_params = m.mparams;
          })
        ast.models
    in
    let registry =
      match Devices.Registry.build ?process:ast.process ?corner decls with
      | Ok r -> r
      | Error e -> err "%s" e
    in
    (* 2. Elaborate and template-expand the bias network. *)
    if ast.bias = [] then err "no .bias block: the relaxed-dc formulation needs a bias network";
    let bias_raw = Netlist.Elab.flatten ~subckts:ast.subckts ast.bias in
    let bias = Template.expand ~registry bias_raw in
    (* Reject elements the bias formulation does not support. *)
    Array.iter
      (fun (e : Netlist.Circuit.element) ->
        match e with
        | Netlist.Circuit.Inductor { name; _ } -> err "bias network: inductor %s unsupported" name
        | Netlist.Circuit.Vcvs { name; _ }
        | Netlist.Circuit.Cccs { name; _ }
        | Netlist.Circuit.Ccvs { name; _ } ->
            err "bias network: controlled source %s unsupported" name
        | Netlist.Circuit.Resistor _ | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Vsource _
        | Netlist.Circuit.Isource _ | Netlist.Circuit.Vccs _ | Netlist.Circuit.Mosfet _
        | Netlist.Circuit.Bjt _ ->
            ())
      bias.Netlist.Circuit.elements;
    let tl = Treelink.analyze bias in
    (* 3. Elaborate and expand each jig; resolve .pz ports. *)
    let jigs =
      List.map
        (fun (j : Netlist.Ast.jig) ->
          let c = Template.expand ~registry (Netlist.Elab.flatten ~subckts:ast.subckts j.jig_body) in
          let tfs =
            List.map
              (fun (pz : Netlist.Ast.pz) ->
                let node name =
                  try Netlist.Circuit.find_node c name
                  with Not_found -> err "jig %s: unknown node %s in .pz" j.jig_name name
                in
                let src =
                  try Netlist.Circuit.element_name (Netlist.Circuit.find_element c pz.src)
                  with Not_found -> err "jig %s: unknown source %s in .pz" j.jig_name pz.src
                in
                ( pz.tf_name,
                  {
                    Problem.out_pos = node pz.out_pos;
                    out_neg = Option.map node pz.out_neg;
                    src;
                  } ))
              j.pzs
          in
          { Problem.jig_name = j.jig_name; jig_circuit = c; tfs; jig_tran = j.jig_tran })
        ast.jigs
    in
    (* 4. Cross-checks: every jig device must have a bias counterpart to
       take its operating point from. *)
    let bias_has name =
      match Netlist.Circuit.find_element bias name with
      | _ -> true
      | exception Not_found -> false
    in
    List.iter
      (fun (j : Problem.jig) ->
        Array.iter
          (fun (e : Netlist.Circuit.element) ->
            match e with
            | Netlist.Circuit.Mosfet { name; _ } | Netlist.Circuit.Bjt { name; _ } ->
                if not (bias_has name) then
                  err "jig %s: device %s has no counterpart in the bias network" j.jig_name name
            | Netlist.Circuit.Resistor _ | Netlist.Circuit.Capacitor _
            | Netlist.Circuit.Inductor _ | Netlist.Circuit.Vsource _ | Netlist.Circuit.Isource _
            | Netlist.Circuit.Vcvs _ | Netlist.Circuit.Vccs _ | Netlist.Circuit.Cccs _
            | Netlist.Circuit.Ccvs _ ->
                ())
          j.jig_circuit.Netlist.Circuit.elements)
      jigs;
    (* 5. Spec sanity: called functions exist; tf names resolve; transient
       measurements have a .tran budget; corner names resolve. *)
    let all_tfs = List.concat_map (fun (j : Problem.jig) -> List.map fst j.tfs) jigs in
    let jig_of_tf tfname =
      List.find_opt (fun (j : Problem.jig) -> List.mem_assoc tfname j.tfs) jigs
    in
    List.iter
      (fun (s : Netlist.Ast.spec) ->
        List.iter
          (fun (fname, args) ->
            let known =
              List.mem fname known_tf_functions
              || List.mem fname spec_only_functions
              || List.mem fname [ "min"; "max"; "abs"; "sqrt"; "log10"; "ln"; "exp"; "db" ]
            in
            if not known then err "spec %s: unknown function %s" s.spec_name fname;
            if List.mem fname known_tf_functions then begin
              match args with
              | Netlist.Expr.Ref [ tfname ] :: rest -> begin
                  if not (List.mem tfname all_tfs) then
                    err "spec %s: unknown transfer function %s" s.spec_name tfname;
                  (if List.mem fname Depgraph.transient_functions then
                     match jig_of_tf tfname with
                     | Some { Problem.jig_tran = None; jig_name; _ } ->
                         err "spec %s: %s(%s) needs a .tran card in jig %s" s.spec_name fname
                           tfname jig_name
                     | Some _ | None -> ());
                  if fname = "psrr_db" then begin
                    match rest with
                    | [ Netlist.Expr.Ref [ sup ] ] ->
                        if not (List.mem sup all_tfs) then
                          err "spec %s: unknown transfer function %s" s.spec_name sup
                    | _ ->
                        err "spec %s: psrr_db expects two transfer-function names" s.spec_name
                  end
                end
              | _ -> err "spec %s: %s expects a transfer-function name" s.spec_name fname
            end)
          (Netlist.Expr.calls s.expr);
        (match s.spec_corner with
        | Some cname when Devices.Registry.find_corner cname = None ->
            err "spec %s: unknown corner %s (known: %s)" s.spec_name cname
              (String.concat ", "
                 (List.map
                    (fun (c : Devices.Registry.corner) -> c.Devices.Registry.corner_name)
                    Devices.Registry.standard_corners))
        | Some _ | None -> ());
        if s.good = s.bad then err "spec %s: good and bad must differ" s.spec_name)
      ast.specs;
    if ast.specs = [] then err "no .obj/.spec cards";
    (* Registries for corner-named spec rows, resolved once here. A corner
       row is absolute — it names a standard corner regardless of any
       ?corner this whole compile was skewed to. *)
    let corner_regs =
      List.sort_uniq String.compare
        (List.filter_map (fun (s : Netlist.Ast.spec) -> s.spec_corner) ast.specs)
      |> List.map (fun cname ->
             let c = Option.get (Devices.Registry.find_corner cname) in
             match Devices.Registry.build ?process:ast.process ~corner:c decls with
             | Ok r -> (cname, r)
             | Error e -> err "corner %s: %s" cname e)
    in
    (* 6. Build the variable vector: user variables then node voltages. *)
    let init_vals = List.map (fun (v : Netlist.Ast.var_decl) -> (v.var_name, default_init v)) ast.vars in
    let env0 = initial_env init_vals ast.params in
    let supply_bounds =
      Array.fold_left
        (fun (lo, hi) (e : Netlist.Circuit.element) ->
          match e with
          | Netlist.Circuit.Vsource { dc; _ } -> begin
              match Netlist.Expr.eval env0 dc with
              | v -> (Float.min lo v, Float.max hi v)
              | exception Netlist.Expr.Eval_error _ -> (lo, hi)
            end
          | Netlist.Circuit.Resistor _ | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Inductor _
          | Netlist.Circuit.Isource _ | Netlist.Circuit.Vcvs _ | Netlist.Circuit.Vccs _
          | Netlist.Circuit.Cccs _ | Netlist.Circuit.Ccvs _ | Netlist.Circuit.Mosfet _
          | Netlist.Circuit.Bjt _ ->
              (lo, hi))
        (0.0, 0.0) bias.Netlist.Circuit.elements
    in
    let v_lo = fst supply_bounds -. 1.0 and v_hi = snd supply_bounds +. 1.0 in
    let user_infos =
      List.map
        (fun (v : Netlist.Ast.var_decl) ->
          if v.vmin <= 0.0 && v.grid = Netlist.Ast.Grid_log then
            err "var %s: log grid requires positive bounds" v.var_name;
          if v.vmin >= v.vmax then err "var %s: min >= max" v.var_name;
          State.User
            {
              name = v.var_name;
              vmin = v.vmin;
              vmax = v.vmax;
              grid =
                (match v.grid with
                | Netlist.Ast.Grid_log -> State.Log_grid
                | Netlist.Ast.Grid_lin -> State.Lin_grid);
              steps = v.steps;
            })
        ast.vars
    in
    let node_infos =
      List.init tl.Treelink.n_free (fun k ->
          State.Node_voltage
            {
              label = tl.Treelink.labels.(k);
              nodes = tl.Treelink.members.(k);
              vmin = v_lo;
              vmax = v_hi;
            })
    in
    let state0 = State.create (Array.of_list (user_infos @ node_infos)) in
    List.iteri
      (fun i (v : Netlist.Ast.var_decl) -> State.set_initial state0 i (default_init v))
      ast.vars;
    (* 7. Analysis metrics (the Table-1 row) including the size of the
       evaluator the original ASTRX would have emitted as C code. *)
    let n_devices_regioned =
      Array.fold_left
        (fun acc (e : Netlist.Circuit.element) ->
          match e with
          | Netlist.Circuit.Mosfet { name; _ } | Netlist.Circuit.Bjt { name; _ } ->
              if List.assoc_opt name ast.regions = Some Netlist.Ast.Region_any then acc
              else acc + 1
          | Netlist.Circuit.Resistor _ | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Inductor _
          | Netlist.Circuit.Vsource _ | Netlist.Circuit.Isource _ | Netlist.Circuit.Vcvs _
          | Netlist.Circuit.Vccs _ | Netlist.Circuit.Cccs _ | Netlist.Circuit.Ccvs _ ->
              acc)
        0 bias.Netlist.Circuit.elements
    in
    let spec_expr_size =
      List.fold_left (fun acc (s : Netlist.Ast.spec) -> acc + Netlist.Expr.size s.expr) 0 ast.specs
    in
    let n_tfs = List.fold_left (fun acc (j : Problem.jig) -> acc + List.length j.tfs) 0 jigs in
    let n_cost_terms =
      List.length ast.specs + tl.Treelink.n_free + n_devices_regioned
    in
    let bias_elems = Netlist.Circuit.element_count bias in
    let jig_sizes =
      List.map
        (fun (j : Problem.jig) ->
          ( j.jig_name,
            Netlist.Circuit.node_count j.jig_circuit,
            Netlist.Circuit.element_count j.jig_circuit ))
        jigs
    in
    let jig_elems = List.fold_left (fun acc (_, _, e) -> acc + e) 0 jig_sizes in
    let lines_of_c =
      38 + (3 * spec_expr_size) + (12 * tl.Treelink.n_free) + (9 * bias_elems)
      + (7 * jig_elems) + (20 * n_tfs) + (6 * n_devices_regioned)
    in
    let analysis =
      {
        Problem.input_netlist_lines = ast.counts.netlist_lines;
        input_synth_lines = ast.counts.synth_lines;
        n_user_vars = List.length ast.vars;
        n_node_vars = tl.Treelink.n_free;
        n_cost_terms;
        lines_of_c;
        bias_nodes = Netlist.Circuit.node_count bias;
        bias_elements = bias_elems;
        awe_circuits = jig_sizes;
      }
    in
    let specs =
      List.map
        (fun (s : Netlist.Ast.spec) ->
          {
            Problem.spec_name = s.spec_name;
            kind = s.kind;
            expr = s.expr;
            good = s.good;
            bad = s.bad;
            spec_corner = s.spec_corner;
          })
        ast.specs
    in
    (* 8. The static dependency graph the incremental evaluator walks
       (variable -> nodes -> elements -> jigs -> specs). *)
    let deps =
      Depgraph.analyze ~params:ast.params ~state0 ~bias ~tl ~jigs ~specs
    in
    Ok
      {
        Problem.title = ast.title;
        registry;
        params = ast.params;
        state0;
        bias;
        tl;
        jigs;
        specs;
        corner_regs;
        regions = ast.regions;
        analysis;
        deps;
      }
  with
  | Error msg -> Result.Error ("astrx: " ^ msg)
  | Netlist.Elab.Error msg -> Result.Error ("astrx: elaboration: " ^ msg)
  | Failure msg -> Result.Error ("astrx: " ^ msg)

let compile_source ?corner src =
  match Netlist.Parser.parse_problem src with
  | ast -> compile ?corner ast
  | exception Netlist.Parser.Error (ln, msg) ->
      Result.Error (Printf.sprintf "astrx: parse error at line %d: %s" ln msg)
