(** Static dependency analysis of a compiled problem (docs/PERFORMANCE.md):
    which bias nodes, elements, test jigs and specs can a change to one
    optimization variable reach? {!Eval.Incr} walks the resulting
    {!Problem.depgraph} to re-evaluate only the dirty slice of the cost
    function after a move.

    Every edge set is a conservative over-approximation: references that
    cannot be resolved statically map onto every variable, so a missing
    edge can never silently freeze a stale cached value. *)

(** Spec functions whose first argument names a transfer function of a
    jig ([dc_gain], [ugf], ...). Shared with {!Compile}'s spec checks. *)
val known_tf_functions : string list

(** Subset of {!known_tf_functions} measured by transient simulation
    ([slew_rate], [settle]); their owning jig must declare a [.tran]
    card, which {!Compile} enforces. *)
val transient_functions : string list

(** Spec functions that read the whole bias solution ([area], [power],
    [supply_current]) — the specs calling them are re-measured on every
    evaluation. *)
val spec_only_functions : string list

val analyze :
  params:(string * Netlist.Expr.t) list ->
  state0:State.t ->
  bias:Netlist.Circuit.t ->
  tl:Treelink.t ->
  jigs:Problem.jig list ->
  specs:Problem.spec list ->
  Problem.depgraph
