(* Reference-simulator evaluation of the specs. See verify.mli. *)

exception Sim_failed of string

let value_of p st =
  let env = Eval.value_env p st in
  fun e -> Netlist.Expr.eval env e

(* Solve every jig with full Newton-Raphson and wrap direct-AC measurement
   closures per transfer function. *)
type jig_sim = {
  lin : Mna.Linearize.t;
  sol : Mna.Dc.solution;
  tf_ports : (string * Problem.tf) list;
}

let solve_jigs p st =
  let value = value_of p st in
  List.map
    (fun (j : Problem.jig) ->
      match Mna.Dc.solve ~value ~registry:p.Problem.registry j.jig_circuit with
      | Error e -> raise (Sim_failed (j.jig_name ^ ": " ^ e))
      | Ok sol ->
          let ops name = List.assoc_opt name sol.Mna.Dc.ops in
          let lin = Mna.Linearize.build ~value ~ops j.jig_circuit in
          { lin; sol; tf_ports = j.tfs })
    p.Problem.jigs

let find_tf jigs name =
  List.find_map
    (fun js ->
      Option.map (fun tf -> (js, tf)) (List.assoc_opt name js.tf_ports))
    jigs

(* Full-NR measurement environment over [p] — parametrized so corner rows
   can rebuild it with the registry skewed to their corner. *)
let make_env (p : Problem.t) (st : State.t) =
  let value = value_of p st in
  let jigs = solve_jigs p st in
  (* Exact bias operating point for device refs and power. *)
  let bias_sol =
    match Mna.Dc.solve ~value ~registry:p.Problem.registry p.Problem.bias with
    | Ok s -> s
    | Error e -> raise (Sim_failed ("bias: " ^ e))
  in
  let tf_measure name =
      match find_tf jigs name with
      | None -> raise (Sim_failed ("unknown transfer function " ^ name))
      | Some (js, tf) ->
          let b = Mna.Linearize.excitation_of js.lin ~src:tf.Problem.src in
          let sel =
            Mna.Linearize.output_vector js.lin ~pos:tf.Problem.out_pos ~neg:tf.Problem.out_neg
          in
          (js, b, sel)
    in
    let lookup path =
      match path with
      | [ name ] -> (Eval.value_env p st).Netlist.Expr.lookup [ name ]
      | [] -> raise Not_found
      | parts ->
          let rec split_last acc = function
            | [ last ] -> (List.rev acc, last)
            | x :: rest -> split_last (x :: acc) rest
            | [] -> assert false
          in
          let devparts, field = split_last [] parts in
          let devname = String.concat "." devparts in
          let op =
            (* Prefer the jig operating point (it is what AC sees), fall
               back to the bias network. *)
            match
              List.find_map (fun js -> List.assoc_opt devname js.sol.Mna.Dc.ops) jigs
            with
            | Some op -> Some op
            | None -> List.assoc_opt devname bias_sol.Mna.Dc.ops
          in
          (match op with Some op -> Eval.op_field op field | None -> raise Not_found)
    in
    (* -3 dB point by direct scan of the exact AC response. *)
    let bw3db_of (js, b, sel) =
      let a0 = Float.abs (Mna.Ac.dc_gain js.lin ~b ~sel) in
      let target = a0 /. Float.sqrt 2.0 in
      let rec scan f =
        if f > 1e12 then 1e12
        else if La.Cpx.abs (Mna.Ac.transfer js.lin ~b ~sel ~w:(2.0 *. Float.pi *. f)) < target
        then f
        else scan (f *. 1.05)
      in
      scan 1.0
    in
    (* Exact-step transient of [tf] under the owning jig's .tran card,
       through the same shared stimulus helper the in-loop evaluator uses
       (Eval.transient_response) — the verification differs only in step
       size (tr_dt, never the coarse tr_dtloop). *)
    let tran_of tfn =
      match Eval.tran_card_of p tfn with
      | exception Eval.Measurement_failed m -> raise (Sim_failed m)
      | tc -> begin
          match
            Eval.transient_response p ~value ~tf:tfn ~vstep:tc.Netlist.Ast.tr_vstep
              ~tstop:tc.Netlist.Ast.tr_tstop ~dt:tc.Netlist.Ast.tr_dt
          with
          | exception Eval.Measurement_failed m -> raise (Sim_failed m)
          | r, ports, t_step ->
              let v =
                Mna.Tran.waveform_of r ~pos:ports.Problem.out_pos ~neg:ports.Problem.out_neg
              in
              (tc, r, v, t_step)
        end
    in
    let settle_of tfn tol =
      let _, r, v, t_step = tran_of tfn in
      Mna.Tran.settling_time ~times:r.Mna.Tran.times v ~t_from:t_step ~tol
    in
    let call name args =
      let tfarg = function
        | Netlist.Expr.Name n -> n
        | Netlist.Expr.Num _ -> raise (Sim_failed (name ^ ": expected transfer-function name"))
      in
      let numarg = function
        | Netlist.Expr.Num v -> v
        | Netlist.Expr.Name n -> raise (Sim_failed (name ^ ": unexpected name " ^ n))
      in
      match (name, args) with
      | "dc_gain", [ tf ] ->
          let js, b, sel = tf_measure (tfarg tf) in
          Mna.Ac.dc_gain js.lin ~b ~sel
      | "ugf", [ tf ] ->
          let js, b, sel = tf_measure (tfarg tf) in
          Option.value ~default:0.0 (Mna.Ac.unity_gain_freq js.lin ~b ~sel)
      | ("phase_margin" | "pm"), [ tf ] ->
          let js, b, sel = tf_measure (tfarg tf) in
          Option.value ~default:180.0 (Mna.Ac.phase_margin js.lin ~b ~sel)
      | "gain_at", [ tf; f ] ->
          let js, b, sel = tf_measure (tfarg tf) in
          La.Cpx.abs (Mna.Ac.transfer js.lin ~b ~sel ~w:(2.0 *. Float.pi *. numarg f))
      | "bw3db", [ tf ] -> bw3db_of (tf_measure (tfarg tf))
      | "pole1", [ tf ] ->
          (* The reference flow extracts poles with AWE at the simulator's
             exact operating point (HSPICE's .pz plays this role). *)
          let js, b, sel = tf_measure (tfarg tf) in
          (match Awe.Rom.build js.lin ~b ~sel with
          | Ok rom -> Option.value ~default:0.0 (Awe.Rom.dominant_pole_hz rom)
          | Error e -> raise (Sim_failed ("pole1: " ^ e)))
      | "gain_margin_db", [ tf ] ->
          let js, b, sel = tf_measure (tfarg tf) in
          (match Awe.Rom.build js.lin ~b ~sel with
          | Ok rom -> Option.value ~default:60.0 (Awe.Rom.gain_margin_db rom)
          | Error e -> raise (Sim_failed ("gain_margin_db: " ^ e)))
      | "slew_rate", [ tf ] ->
          let tc, r, v, t_step = tran_of (tfarg tf) in
          Mna.Tran.peak_slew ~times:r.Mna.Tran.times v ~t_from:t_step
            ~t_to:tc.Netlist.Ast.tr_tstop
      | "settle", [ tf ] -> settle_of (tfarg tf) 0.01
      | "settle", [ tf; tol ] -> settle_of (tfarg tf) (numarg tol)
      | "noise_out_uv", [ tf ] -> begin
          let tfn = tfarg tf in
          let ((js, _, sel) as m) = tf_measure tfn in
          let bw = bw3db_of m in
          if not (bw > 0.0) then raise (Sim_failed (tfn ^ ": noise bandwidth unavailable"))
          else begin
            let enbw = Float.pi /. 2.0 *. bw in
            let ops n = List.assoc_opt n js.sol.Mna.Dc.ops in
            match Eval.output_noise_v2_per_hz js.lin ~value ~ops ~sel with
            | exception Eval.Measurement_failed m -> raise (Sim_failed m)
            | s0 -> Float.sqrt (Float.max 0.0 (s0 *. enbw)) *. 1e6
          end
        end
      | "psrr_db", [ stf; suptf ] ->
          let js1, b1, sel1 = tf_measure (tfarg stf) in
          let js2, b2, sel2 = tf_measure (tfarg suptf) in
          let a_sig = Float.abs (Mna.Ac.dc_gain js1.lin ~b:b1 ~sel:sel1) in
          let a_sup = Float.abs (Mna.Ac.dc_gain js2.lin ~b:b2 ~sel:sel2) in
          if a_sup < 1e-30 then 300.0
          else 20.0 *. Float.log10 (Float.max a_sig 1e-30 /. a_sup)
      | "area", [] -> Eval.active_area_um2 p st
      | "power", [] -> Mna.Dc.supply_power bias_sol ~value
      | "supply_current", [ src ] -> begin
          let srcname =
            match src with
            | Netlist.Expr.Name n -> n
            | Netlist.Expr.Num _ -> raise (Sim_failed "supply_current: expected a source name")
          in
          match Mna.Dc.branch_current bias_sol srcname with
          | Some i -> Float.abs i
          | None -> raise (Sim_failed ("supply_current: unknown source " ^ srcname))
        end
      | _ -> begin
          try Builtin.math_call name args
          with Builtin.Unknown_function f -> raise (Sim_failed ("unknown function " ^ f))
        end
    in
    { Netlist.Expr.lookup; call }

let simulate_specs (p : Problem.t) (st : State.t) =
  try
    let env = make_env p st in
    (* Corner rows re-solve everything under the skewed registry; a corner
       that fails to solve reports per-spec errors instead of failing the
       whole verification. *)
    let corner_envs =
      List.map
        (fun (cname, reg) ->
          ( cname,
            try Ok (make_env { p with Problem.registry = reg } st) with
            | Sim_failed m -> Error m
            | Failure m -> Error m ))
        p.Problem.corner_regs
    in
    let eval_in envx (s : Problem.spec) =
      try Ok (Netlist.Expr.eval envx s.Problem.expr) with
      | Sim_failed m -> Error m
      | Netlist.Expr.Eval_error m -> Error m
    in
    let values =
      List.map
        (fun (s : Problem.spec) ->
          let v =
            match s.Problem.spec_corner with
            | None -> eval_in env s
            | Some c -> (
                match List.assoc_opt c corner_envs with
                | Some (Ok envc) -> eval_in envc s
                | Some (Error m) -> Error (Printf.sprintf "corner %s: %s" c m)
                | None -> Error ("unknown corner " ^ c))
          in
          (s.spec_name, v))
        p.Problem.specs
    in
    Ok values
  with
  | Sim_failed m -> Error m
  | Failure m -> Error m

let kcl_abs_error (p : Problem.t) (st : State.t) =
  match Eval.bias_point p st with
  | bp ->
      Ok (Array.fold_left (fun acc r -> Float.max acc (Float.abs r)) 0.0 bp.Eval.residuals)
  | exception Failure m -> Error m

let bias_voltage_error (p : Problem.t) (st : State.t) =
  let value = value_of p st in
  match Mna.Dc.solve ~value ~registry:p.Problem.registry p.Problem.bias with
  | Error e -> Error e
  | Ok sol ->
      let relaxed = Eval.node_voltages p st in
      let worst = ref 0.0 in
      Array.iteri
        (fun node v ->
          if node > 0 then
            worst := Float.max !worst (Float.abs (v -. Mna.Dc.node_voltage sol node)))
        relaxed;
      Ok !worst

(* Single-ended and differential outputs share one waveform extraction
   ([Tran.waveform_of]) and one overlap predicate ([Tran.peak_slew]): the
   interval straddling the step onset counts, so a stimulus edge that
   falls between samples is never dropped on either path. *)
let transient_slew (p : Problem.t) (st : State.t) ~tf ~vstep ~tstop ~dt =
  let value = value_of p st in
  match Eval.transient_response p ~value ~tf ~vstep ~tstop ~dt with
  | exception Eval.Measurement_failed m -> Error m
  | r, ports, t_step ->
      let v = Mna.Tran.waveform_of r ~pos:ports.Problem.out_pos ~neg:ports.Problem.out_neg in
      Ok (Mna.Tran.peak_slew ~times:r.Mna.Tran.times v ~t_from:t_step ~t_to:tstop)

let transient_settle (p : Problem.t) (st : State.t) ~tf ~tol ~vstep ~tstop ~dt =
  let value = value_of p st in
  match Eval.transient_response p ~value ~tf ~vstep ~tstop ~dt with
  | exception Eval.Measurement_failed m -> Error m
  | r, ports, t_step ->
      let v = Mna.Tran.waveform_of r ~pos:ports.Problem.out_pos ~neg:ports.Problem.out_neg in
      Ok (Mna.Tran.settling_time ~times:r.Mna.Tran.times v ~t_from:t_step ~tol)
