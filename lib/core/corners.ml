(* The table itself lives in Devices.Registry so the compiler can resolve
   `corner=` spec rows without a Core-internal cycle. *)
let standard = Devices.Registry.standard_corners

type spec_at_corner = {
  sc_corner : string;
  sc_values : (string * (float, string) result) list;
}

let apply_sizing (st : State.t) sizing =
  Array.iteri
    (fun i info ->
      match info with
      | State.User { name; _ } -> begin
          match List.assoc_opt name sizing with
          | Some v -> State.set_initial st i v
          | None -> ()
        end
      | State.Node_voltage _ -> ())
    st.State.info

let analyze ?(corners = standard) ?cache ~source ~sizing () =
  (* With a cache, each (canon, corner) key compiles once across every
     analyze/sweep sharing the cache; without one, compile per corner. *)
  let compile_at c =
    match cache with
    | None -> Compile.compile_source ~corner:c source
    | Some t -> begin
        match Compile_cache.compile t ~corner:c ~source () with
        | Ok (p, _) -> Ok p
        | Error (e, _) -> Error e
      end
  in
  let rec run acc = function
    | [] -> Ok (List.rev acc)
    | c :: rest -> begin
        match compile_at c with
        | Error e -> Error (c.Devices.Registry.corner_name ^ ": " ^ e)
        | Ok p -> begin
            let st = State.snapshot p.Problem.state0 in
            apply_sizing st sizing;
            match Verify.simulate_specs p st with
            | Error e ->
                (* A corner where the design does not even bias up is a
                   result, not an analysis failure. *)
                run
                  ({
                     sc_corner = c.Devices.Registry.corner_name;
                     sc_values =
                       List.map
                         (fun (s : Problem.spec) -> (s.Problem.spec_name, Error e))
                         p.Problem.specs;
                   }
                  :: acc)
                  rest
            | Ok values ->
                run
                  ({ sc_corner = c.Devices.Registry.corner_name; sc_values = values } :: acc)
                  rest
          end
      end
  in
  run [] corners

let worst_case (p : Problem.t) results =
  List.map
    (fun (s : Problem.spec) ->
      let name = s.Problem.spec_name in
      let fold acc r =
        match (acc, r) with
        | Error e, _ -> Error e
        | Ok _, Error e -> Error e
        | Ok a, Ok v -> begin
            (* pessimistic direction per goal kind *)
            match s.kind with
            | Netlist.Ast.Constraint_ge | Netlist.Ast.Objective_max -> Ok (Float.min a v)
            | Netlist.Ast.Constraint_le | Netlist.Ast.Objective_min -> Ok (Float.max a v)
          end
      in
      (* A corner result that lacks the spec row entirely (e.g. compiled
         from a different description revision) is a per-spec error, not a
         Not_found crash taking the whole table down. *)
      let per_corner =
        List.map
          (fun sc ->
            match List.assoc_opt name sc.sc_values with
            | Some r -> r
            | None -> Error (Printf.sprintf "corner %s reported no %s row" sc.sc_corner name))
          results
      in
      match per_corner with
      | [] -> (name, Error "no corners")
      | first :: rest -> (name, List.fold_left fold first rest))
    p.Problem.specs
