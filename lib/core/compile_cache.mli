(** Content-addressed compile cache: the ASTRX pipeline (parse, elaborate,
    derive constraints, generate the cost-function evaluator) is pure in
    the problem description, so its output can be keyed by the canonical
    hash of {!Netlist.Canon} and reused across submissions. This is what
    lets a synthesis service absorb the dominant re-submission workload —
    the same topology posted over and over with different seeds or budgets
    — at the cost of one compile.

    Safe to share between domains: lookups and insertions are
    mutex-serialized, and the cached {!Problem.t} itself is already shared
    across domains by {!Oblx.best_of}, so handing the same instance to
    concurrent jobs adds no new aliasing. Two workers racing to compile
    the same fresh key may both compile (the second insert wins); the work
    is merely duplicated, never wrong. *)

type t

type outcome = Hit | Miss

type stats = {
  hits : int;
  misses : int;
  entries : int;  (** currently cached (successes and failures) *)
  evictions : int;
  capacity : int;
}

(** [create ?capacity ()] — [capacity] (default 64) bounds the entry
    count; least-recently-used entries are evicted beyond it. *)
val create : ?capacity:int -> unit -> t

val stats : t -> stats

(** [key_of_source ?corner src] — the cache key:
    {!Netlist.Canon.problem_hash} of the parsed description, qualified by
    the device corner's name ([hash@corner]) when one is given. The
    nominal corner (and [None]) keep the bare hash, so keys replicated
    between fleet peers before corners entered the key stay valid.
    [Error] on a parse failure (formatted exactly like
    {!Compile.compile_source}'s). *)
val key_of_source : ?corner:Devices.Registry.corner -> string -> (string, string) result

(** [find t ~key] — the lookup half of {!compile}: the cached verdict for
    [key], bumping the hit/miss counters and LRU recency exactly as
    {!compile} would. A fleet-aware caller uses this (plus {!add}) so it
    can consult peer daemons between the miss and the compile. *)
val find : t -> key:string -> (Problem.t, string) result option

(** [add t ~key value] — the remember half of {!compile}: cache [value]
    under [key] (first insert wins, LRU eviction beyond capacity). Used to
    record a local compile, or a failure verdict learned from a peer so
    the next submission of that key fails fast without recompiling. *)
val add : t -> key:string -> (Problem.t, string) result -> unit

(** [peek t ~key] — the verdict for [key] without touching counters or LRU
    recency: [Some (Ok ())] compiled here, [Some (Error msg)] failed here,
    [None] unknown. This is what a daemon serves to a peer's
    [cache_lookup] — compiled problems hold closures and cannot cross the
    wire, so replication carries verdicts, not artifacts. *)
val peek : t -> key:string -> (unit, string) result option

(** [compile t ?corner ~source] — parse, hash, and return the cached
    compile for that [(canon, corner)] key, or compile at that corner and
    remember. Failed compiles are cached too (with their message), so a
    hammering client re-posting a broken description costs one compile,
    not one per submission. The [outcome] tells whether this call hit the
    cache — on both branches: a cached failure replays as
    [Error (msg, Hit)], so a job record can report the true hit/miss even
    when the compile failed. A parse error (no canonical key to cache
    under) is always [Error (msg, Miss)]. *)
val compile :
  t ->
  ?corner:Devices.Registry.corner ->
  source:string ->
  unit ->
  (Problem.t * outcome, string * outcome) result
