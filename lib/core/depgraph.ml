(* ASTRX's static dependency analysis: which parts of the compiled cost
   function can a change to one optimization variable actually reach?

   The graph is built once at compile time from the same structures the
   evaluator walks (tree-link assignment, bias elements, jig circuits,
   spec expressions), so membership is a property of the problem, not of
   any particular design point. Everything is an over-approximation:
   a reference that cannot be resolved statically (unknown name, dotted
   path with no matching element) makes the consumer depend on every
   variable, never on none. *)

module S = Set.Make (Int)

(* Spec functions that measure a transfer function of a jig (their first
   argument is the tf name), vs. functions that read the whole bias
   solution and are re-measured on every evaluation. *)
let known_tf_functions =
  [
    "dc_gain";
    "ugf";
    "phase_margin";
    "pm";
    "gain_at";
    "bw3db";
    "pole1";
    "gain_margin_db";
    "slew_rate";
    "settle";
    "noise_out_uv";
    "psrr_db";
  ]

(* Subset of the above measured by transient simulation — they need a
   .tran card on the owning jig (enforced at compile time). *)
let transient_functions = [ "slew_rate"; "settle" ]

let spec_only_functions = [ "area"; "power"; "supply_current" ]

let analyze ~(params : (string * Netlist.Expr.t) list) ~(state0 : State.t)
    ~(bias : Netlist.Circuit.t) ~(tl : Treelink.t) ~(jigs : Problem.jig list)
    ~(specs : Problem.spec list) : Problem.depgraph =
  let n_vars = State.n_vars state0 in
  let var_of_name = Hashtbl.create 16 in
  let n_user = ref 0 in
  Array.iteri
    (fun i info ->
      match info with
      | State.User { name; _ } ->
          Hashtbl.replace var_of_name name i;
          incr n_user
      | State.Node_voltage _ -> ())
    state0.State.info;
  let node_var_base = !n_user in
  (* Variable set an expression reads: [true] means "could be anything" —
     an unresolvable reference taints the whole expression. Parameters are
     chased recursively (cycle-guarded like the evaluator). *)
  let rec expr_vars seen (e : Netlist.Expr.t) =
    match e with
    | Netlist.Expr.Const _ -> (false, S.empty)
    | Netlist.Expr.Ref [ name ] -> ref_vars seen name
    | Netlist.Expr.Ref _ -> (true, S.empty)
    | Netlist.Expr.Neg a -> expr_vars seen a
    | Netlist.Expr.Add (a, b)
    | Netlist.Expr.Sub (a, b)
    | Netlist.Expr.Mul (a, b)
    | Netlist.Expr.Div (a, b)
    | Netlist.Expr.Pow (a, b) ->
        merge (expr_vars seen a) (expr_vars seen b)
    | Netlist.Expr.Call (_, args) ->
        List.fold_left (fun acc a -> merge acc (expr_vars seen a)) (false, S.empty) args
  and ref_vars seen name =
    match Hashtbl.find_opt var_of_name name with
    | Some i -> (false, S.singleton i)
    | None -> begin
        match List.assoc_opt name params with
        | Some e -> if List.mem name seen then (false, S.empty) else expr_vars (name :: seen) e
        | None -> (true, S.empty)
      end
  and merge (a_all, a_vars) (b_all, b_vars) = (a_all || b_all, S.union a_vars b_vars) in
  (* var -> nodes: through the tree-link assignment. A Free node reads its
     own variable plus whatever its source-chain offset reads; a Fixed node
     reads whatever its voltage expression reads. *)
  let n_nodes = Array.length tl.Treelink.of_node in
  let var_nodes = Array.make n_vars S.empty in
  let add_var_dep dest target (all, vars) =
    if all then
      for v = 0 to n_vars - 1 do
        dest.(v) <- S.add target dest.(v)
      done
    else S.iter (fun v -> dest.(v) <- S.add target dest.(v)) vars
  in
  Array.iteri
    (fun node a ->
      match a with
      | Treelink.Fixed e -> add_var_dep var_nodes node (expr_vars [] e)
      | Treelink.Free (k, off) ->
          add_var_dep var_nodes node (false, S.singleton (node_var_base + k));
          add_var_dep var_nodes node (expr_vars [] off))
    tl.Treelink.of_node;
  (* node -> elements (terminals the KCL sweep reads) and var -> elements
     (value expressions the sweep evaluates). Capacitors and voltage
     sources contribute no flow, so they have no edges of their own; a
     source's dc value reaches the cost only through node voltages, which
     the assignment expressions above already cover. *)
  let n_elems = Array.length bias.Netlist.Circuit.elements in
  let node_elems = Array.make n_nodes S.empty in
  let var_elems = Array.make n_vars S.empty in
  let elem_of_name = Hashtbl.create 16 in
  Array.iteri
    (fun i (e : Netlist.Circuit.element) ->
      Hashtbl.replace elem_of_name (Netlist.Circuit.element_name e) i;
      let touch nodes = List.iter (fun n -> node_elems.(n) <- S.add i node_elems.(n)) nodes in
      let reads exprs =
        List.iter (fun ex -> add_var_dep var_elems i (expr_vars [] ex)) exprs
      in
      match e with
      | Netlist.Circuit.Resistor { n1; n2; value; _ } ->
          touch [ n1; n2 ];
          reads [ value ]
      | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Vsource _ -> ()
      | Netlist.Circuit.Isource { np; nn; dc; _ } ->
          touch [ np; nn ];
          reads [ dc ]
      | Netlist.Circuit.Vccs { np; nn; ncp; ncn; gm; _ } ->
          touch [ np; nn; ncp; ncn ];
          reads [ gm ]
      | Netlist.Circuit.Mosfet { d; g; s; b; w; l; mult; _ } ->
          touch [ d; g; s; b ];
          reads [ w; l; mult ]
      | Netlist.Circuit.Bjt { c; b; e = ne; area; _ } ->
          touch [ c; b; ne ];
          reads [ area ]
      | Netlist.Circuit.Inductor _ | Netlist.Circuit.Vcvs _ | Netlist.Circuit.Cccs _
      | Netlist.Circuit.Ccvs _ ->
          (* rejected for bias networks at compile time *)
          ())
    bias.Netlist.Circuit.elements;
  (* element -> jigs: a jig depends on the operating point of every bias
     device that has a counterpart (same name) in the jig circuit.
     var -> jigs: the value expressions the jig's linearization evaluates
     (R/C/L values, controlled-source gains) — kept alongside so a dirty
     variable can be re-checked against the actual expression values. *)
  let n_jigs = List.length jigs in
  let elem_jigs = Array.make n_elems S.empty in
  let var_jigs = Array.make n_vars S.empty in
  let jig_exprs = Array.make n_jigs [] in
  let jig_of_tf = Hashtbl.create 8 in
  List.iteri
    (fun j (jig : Problem.jig) ->
      List.iter (fun (tfname, _) -> Hashtbl.replace jig_of_tf tfname j) jig.Problem.tfs;
      let exprs = ref [] in
      Array.iter
        (fun (e : Netlist.Circuit.element) ->
          let reads l = exprs := l @ !exprs in
          match e with
          | Netlist.Circuit.Mosfet { name; w; l; mult; _ } -> begin
              (match Hashtbl.find_opt elem_of_name name with
              | Some i -> elem_jigs.(i) <- S.add j elem_jigs.(i)
              | None -> ());
              (* Transient and noise measurements evaluate the jig's own
                 device geometry directly, not just the bias counterpart's
                 operating point. *)
              reads [ w; l; mult ]
            end
          | Netlist.Circuit.Bjt { name; area; _ } -> begin
              (match Hashtbl.find_opt elem_of_name name with
              | Some i -> elem_jigs.(i) <- S.add j elem_jigs.(i)
              | None -> ());
              reads [ area ]
            end
          | Netlist.Circuit.Resistor { value; _ }
          | Netlist.Circuit.Capacitor { value; _ }
          | Netlist.Circuit.Inductor { value; _ } ->
              reads [ value ]
          | Netlist.Circuit.Vcvs { gain; _ } | Netlist.Circuit.Cccs { gain; _ } ->
              reads [ gain ]
          | Netlist.Circuit.Vccs { gm; _ } -> reads [ gm ]
          | Netlist.Circuit.Ccvs { r; _ } -> reads [ r ]
          (* The transient's initial DC point reads source dc values. *)
          | Netlist.Circuit.Vsource { dc; _ } | Netlist.Circuit.Isource { dc; _ } ->
              reads [ dc ])
        jig.Problem.jig_circuit.Netlist.Circuit.elements;
      jig_exprs.(j) <- List.rev !exprs;
      List.iter (fun ex -> add_var_dep var_jigs j (expr_vars [] ex)) !exprs)
    jigs;
  (* Per-spec dependencies, by walking the spec expression: tf-measuring
     calls name a jig, dotted references name a device operating point,
     bare references name variables/parameters, and the whole-solution
     functions (area/power/supply_current) force re-measurement. *)
  let spec_deps (s : Problem.spec) =
    (* Corner rows rebuild bias + ROMs under a skewed registry; every
       variable reaches that solve, so they re-measure on every eval. *)
    let always = ref (s.Problem.spec_corner <> None) in
    let vars = ref S.empty in
    let elems = ref S.empty in
    let sjigs = ref S.empty in
    let add (all, vs) = if all then always := true else vars := S.union vs !vars in
    let rec walk (e : Netlist.Expr.t) =
      match e with
      | Netlist.Expr.Const _ -> ()
      | Netlist.Expr.Ref [ name ] -> add (ref_vars [] name)
      | Netlist.Expr.Ref parts -> begin
          let rec split_last acc = function
            | [ last ] -> (List.rev acc, last)
            | x :: rest -> split_last (x :: acc) rest
            | [] -> assert false
          in
          let devparts, _field = split_last [] parts in
          match Hashtbl.find_opt elem_of_name (String.concat "." devparts) with
          | Some i -> elems := S.add i !elems
          | None -> always := true
        end
      | Netlist.Expr.Neg a -> walk a
      | Netlist.Expr.Add (a, b)
      | Netlist.Expr.Sub (a, b)
      | Netlist.Expr.Mul (a, b)
      | Netlist.Expr.Div (a, b)
      | Netlist.Expr.Pow (a, b) ->
          walk a;
          walk b
      | Netlist.Expr.Call (f, args) when List.mem f known_tf_functions -> begin
          match args with
          | Netlist.Expr.Ref [ tf ] :: rest -> begin
              (match Hashtbl.find_opt jig_of_tf tf with
              | Some j -> sjigs := S.add j !sjigs
              | None -> always := true);
              (* A later argument naming another transfer function (e.g. the
                 supply tf of psrr_db) is a jig dependency, not a variable
                 reference. *)
              List.iter
                (fun a ->
                  match a with
                  | Netlist.Expr.Ref [ tf2 ] when Hashtbl.mem jig_of_tf tf2 ->
                      sjigs := S.add (Hashtbl.find jig_of_tf tf2) !sjigs
                  | _ -> walk a)
                rest
            end
          | _ -> always := true
        end
      | Netlist.Expr.Call (f, _) when List.mem f spec_only_functions -> always := true
      | Netlist.Expr.Call (_, args) -> List.iter walk args
    in
    walk s.Problem.expr;
    {
      Problem.sd_always = !always;
      sd_vars = S.elements !vars;
      sd_elems = S.elements !elems;
      sd_jigs = S.elements !sjigs;
    }
  in
  {
    Problem.dg_var_nodes = Array.map S.elements var_nodes;
    dg_node_elems = Array.map S.elements node_elems;
    dg_var_elems = Array.map S.elements var_elems;
    dg_elem_jigs = Array.map S.elements elem_jigs;
    dg_var_jigs = Array.map S.elements var_jigs;
    dg_jig_exprs = jig_exprs;
    dg_spec_deps = Array.of_list (List.map spec_deps specs);
  }
