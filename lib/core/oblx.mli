(** OBLX — the solution engine: simulated annealing over the compiled cost
    function, with adaptive weights, Hustin move selection, Lam cooling,
    range-limiter freezing and a final Newton-Raphson polish that makes the
    winning design dc-correct to simulator-like tolerances. *)

type trace_point = {
  tp_moves : int;
  tp_cost : float;
  tp_best : float;
  tp_max_kcl_rel : float;  (** worst relative KCL violation *)
  tp_max_kcl_abs : float;  (** worst absolute KCL current, A *)
  tp_temperature : float;
}

type result = {
  final : State.t;  (** best design found, NR-polished *)
  predicted : (string * float option) list;  (** OBLX's own spec predictions *)
  best_cost : float;
  moves : int;
  accepted : int;
  froze_early : bool;
  cut_short : bool;  (** abandoned early by multi-start early stopping *)
  cut_reason : string option;
      (** why the run was cut short — the cutoff's verdict, preserved
          rather than collapsed into the boolean; [None] unless
          [cut_short] *)
  evals : int;  (** cost-function evaluations performed *)
  eval_time_ms : float;  (** mean wall time per evaluation *)
  run_time_s : float;
  trace : trace_point list;  (** per-stage, oldest first (Fig. 2 data) *)
  eval_stats : Eval.Incr.stats option;
      (** incremental-evaluation cache counters, when enabled *)
  probs : float array;
      (** end-of-run Hustin move-class distribution — the learned prior a
          warm-started successor restores *)
  warm : string option;
      (** label of the warm seed this run started from; [None] = cold *)
}

(** A warm seed: a prior winner's design point (and optionally its
    converged Hustin distribution) used as the starting point of a restart
    instead of the description's initial values. The arrays are copied on
    use; the seed itself is never mutated. *)
type warm_start = {
  ws_label : string;  (** provenance, recorded in [result.warm] *)
  ws_values : float array;
  ws_grid : int array;
  ws_probs : float array option;  (** learned move-class prior, if recorded *)
}

(** Hooks a multi-start scheduler threads into a run. [publish] is called
    once per annealing stage with the run's best cost so far; [cutoff]
    decides, given the run's progress in [0,1] and its best cost, whether
    the run should cut its losses and stop — [Some reason] aborts and the
    reason is preserved in [result.cut_reason] and the trace's [Done]
    event. *)
type control = {
  publish : float -> unit;
  cutoff : progress:float -> best:float -> string option;
}

(** [synthesize ?seed ?rng ?moves ?control ?obs p] runs one annealing run.
    [moves] defaults to [2000 * n_vars] clamped to a practical budget.
    [rng] (a stream from {!Anneal.Rng.split}) overrides [seed]; [control]
    connects the run to a parallel multi-start scheduler.

    [session] supplies an existing incremental-evaluation arena (created
    for the same problem) instead of allocating one: it is
    {!Eval.Incr.reset} on entry, so results are bit-identical to a run
    with a fresh session. This is how {!best_of} keeps one arena per
    domain across all the restarts that domain claims.

    [probe_batch] (default {!default_probe_batch}) enables batched
    candidate screening when the incremental evaluator is on: for each
    screenable move class the annealer proposes up to [probe_batch]
    candidates, orders them with {!Eval.Incr.probe_cost} (a low-rank
    approximate screen that never writes the exact caches), then replays
    and confirms only the winner through the exact path — so every
    accepted state's cost is still bit-identical to {!Eval.cost}.
    [probe_batch <= 1], or [incremental:false], disables screening and
    reproduces the classic one-candidate trajectory.

    [warm] starts the anneal from a {!warm_start} seed instead of the
    description's initial point, and — when the seed carries [ws_probs] —
    initializes Hustin move selection from the recorded prior. A warm run
    draws from [rng] differently from the first probe on (the landscape
    around the seed differs), so warm and cold trajectories diverge by
    design; with [warm = None] the run is bit-identical to one before the
    parameter existed. Raises [Invalid_argument] when the seed's arity
    does not match [p].

    [obs] (default {!Obs.Trace.none}) receives the structured telemetry of
    docs/OBSERVABILITY.md: a [Restart] event, the annealer's [Move]/[Stage]
    stream (accepted moves carry the design point, making the trace
    replayable), a [Weight_update] per stage with the eq. (2) cost
    breakdown, and a final [Done] with the abort reason if any. Emission
    never touches the RNG, so a traced run is bit-identical to an untraced
    one. *)
val synthesize :
  ?seed:int ->
  ?rng:Anneal.Rng.t ->
  ?moves:int ->
  ?incremental:bool ->
  ?probe_batch:int ->
  ?session:Eval.Incr.session ->
  ?control:control ->
  ?warm:warm_start ->
  ?obs:Obs.Trace.t ->
  Problem.t ->
  result

(** Candidates screened per retained factorization when batched probing is
    on — the [probe_batch] default of {!synthesize}, {!best_of} and
    {!run_job}. *)
val default_probe_batch : int

(** [score p r] is the value the multi-start winner rule minimizes: the
    run's [best_cost], pushed last (+1e6) when any spec prediction failed
    and the problem has specs. Exposed so a fleet coordinator can merge
    per-shard winners with exactly the rule {!best_of} applies locally —
    fold with strict [<] in ascending restart order, keeping the earliest
    on ties. *)
val score : Problem.t -> result -> float

(** Default worker count for {!best_of}:
    [Domain.recommended_domain_count () - 1], at least 1 — keep one core
    for the caller. *)
val default_jobs : unit -> int

(** What one worker domain did during a {!best_of} parallel section —
    the raw material of [bench perf-parallel]'s GC/contention block. GC
    numbers are {!Gc.quick_stat} deltas over the worker's lifetime, on
    its own domain (per-domain minor heaps, shared major heap). *)
type domain_report = {
  d_index : int;  (** 0 is the calling domain *)
  d_restarts : int;  (** restarts this domain claimed *)
  d_wall_s : float;
  d_minor_collections : int;
      (** each one is a stop-the-world barrier across every domain *)
  d_major_collections : int;
  d_promoted_words : float;
  d_minor_words : float;  (** words allocated in this domain's nursery *)
}

type parallel_report = {
  pr_jobs : int;
  pr_runs : int;
  pr_domains : domain_report list;  (** by [d_index], one per worker *)
  pr_merge : Obs.Shard.stats option;
      (** telemetry merge counters; [None] when no shard ran (sequential,
          or no sinks attached) *)
}

(** Minor-heap size (words) each worker domain adopts during a parallel
    section. In OCaml 5 a minor collection is a stop-the-world barrier
    across every domain, so worker nurseries are sized large enough that
    the arena-based evaluator rarely fills them. Spawned domains do not
    inherit the parent's Gc settings — any long-lived worker domain (the
    serve pool's, for instance) should set this itself. *)
val arena_minor_heap_words : int

(** [best_of ?seed ?moves ?jobs ?early_stop ~runs p] performs [runs]
    independent annealing runs — the paper's "5-10 runs overnight",
    except spread across [jobs] OCaml domains so a modern multicore
    machine finishes them in one coffee — and returns the lowest-cost
    result plus every run's result, in run order.

    Restart [k] draws from the [k]-th {!Anneal.Rng.split} stream of the
    root generator, so for a fixed [seed] the winner is bit-identical for
    every [jobs] value, including the sequential [jobs:1] path. With
    [early_stop] (default off), runs publish their best cost through a
    shared atomic and a laggard past half its move budget gives up once it
    trails the global best by a wide margin; this trades the determinism
    guarantee for wall-clock (the winner is still the best completed run,
    but laggards report [cut_short], with the reason in [cut_reason], and
    spend fewer evaluations).

    [cutoff] is an external kill switch polled through the annealer's
    abort hook (before the first move, then once per stage): returning
    [Some reason] aborts every live restart with that reason preserved in
    [cut_reason]. It is how the serve layer implements deadlines and job
    cancellation. A [cutoff] that never fires does not perturb the
    annealing trajectory, so the determinism guarantee above still holds.

    [obs] is shared by every restart: run [k] emits into
    [Obs.Trace.with_restart obs k], so one JSONL file captures all runs
    and can be demultiplexed — or replayed — per restart afterwards.
    When [jobs > 1] the events flow through an {!Obs.Shard}: each restart
    buffers lock-free and merges into the caller's sinks in batches at
    stage boundaries, so concurrent domains stop serializing per event;
    the merged stream demultiplexes to exactly the same per-restart
    streams. Emission never touches the RNG either way.

    Each worker domain allocates one {!Eval.Incr} arena and reuses it
    (via {!Eval.Incr.reset}) for every restart it claims, and sizes its
    own minor heap so that minor collections — stop-the-world barriers
    across all domains in OCaml 5 — stay rare. [perf], when given,
    receives the per-domain wall/GC/claim accounting and the telemetry
    merge counters after the parallel section finishes.

    [restarts:(lo, hi)] executes only the restart indices in [[lo, hi)]
    of the full [runs] budget — a {e shard}. All [runs] split streams are
    still derived from the root generator, so restart [k] of a shard
    anneals bit-identically to restart [k] of an unsharded call; the
    returned list holds only the executed range (ascending index) and the
    winner is that range's minimum under {!score}. Shards covering
    [[0, runs)] merged by the same left-biased strict-[<] fold (ascending
    [lo]) therefore reproduce the unsharded winner byte for byte — the
    fleet coordinator's merge rule. Raises [Invalid_argument] when the
    range is empty or out of bounds.

    [warm_starts] seeds the first [Array.length warm_starts] restarts
    (which must not exceed [runs]) from prior winners: restart [k] anneals
    from [warm_starts.(k)], the remaining restarts stay cold for
    exploration, and each result records its seed's label in
    [result.warm]. The mapping is positional — like the RNG streams it is
    independent of scheduling and of shard splits, so determinism (same
    seeds array, same winner for any [jobs]/shard split) is preserved; the
    caller must hand the {e same} array to every shard. An empty array is
    bit-identical to the pre-warm-start behavior. *)
val best_of :
  ?seed:int ->
  ?moves:int ->
  ?jobs:int ->
  ?early_stop:bool ->
  ?incremental:bool ->
  ?probe_batch:int ->
  ?restarts:int * int ->
  ?cutoff:(unit -> string option) ->
  ?warm_starts:warm_start array ->
  ?obs:Obs.Trace.t ->
  ?perf:(parallel_report -> unit) ->
  runs:int ->
  Problem.t ->
  result * result list

(** The [cut_reason] recorded when {!run_job}'s deadline fires:
    ["deadline"]. *)
val deadline_reason : string

(** [run_job ?seed ?moves ?runs ?jobs ?early_stop ?deadline_s ?poll ?obs p]
    is the job-facing wrapper the synthesis service runs per queued job:
    {!best_of} with a wall-clock budget and a cancellation poll composed
    into an external [cutoff]. The deadline clock starts at the call (queue
    wait is the caller's business); when it expires, live restarts abort
    with [cut_reason = Some deadline_reason]. [poll] is checked first, so
    an explicit cancellation reason ("cancelled", "shutdown") wins over the
    timer. With neither [deadline_s] nor [poll], this is exactly
    [best_of] — bit-for-bit, including the trajectory. *)
val run_job :
  ?seed:int ->
  ?moves:int ->
  ?runs:int ->
  ?jobs:int ->
  ?early_stop:bool ->
  ?incremental:bool ->
  ?probe_batch:int ->
  ?restarts:int * int ->
  ?deadline_s:float ->
  ?poll:(unit -> string option) ->
  ?warm_starts:warm_start array ->
  ?obs:Obs.Trace.t ->
  ?perf:(parallel_report -> unit) ->
  Problem.t ->
  result * result list

(** [replay_cost p] re-evaluates a recorded design point under recorded
    adaptive weights with [p]'s compiled cost function, applying the same
    non-finite clamp as {!synthesize}. Raises [Invalid_argument] when the
    recorded state's arity does not match [p]. *)
val replay_cost : Problem.t -> Obs.Replay.cost_fn

(** [replay ?tol p events] runs {!Obs.Replay.check} against [p]'s compiled
    cost function: every accepted state in the trace must re-evaluate to
    its recorded cost within [tol]. *)
val replay :
  ?tol:float ->
  Problem.t ->
  Obs.Event.t list ->
  (Obs.Replay.stats, Obs.Replay.mismatch list * Obs.Replay.stats) Stdlib.result
