type outcome = Hit | Miss

type entry = {
  value : (Problem.t, string) result;
  mutable last_used : int;  (** tick of the most recent hit (LRU order) *)
}

type t = {
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  capacity : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; entries : int; evictions : int; capacity : int }

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Compile_cache.create: capacity must be >= 1";
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 32;
    capacity;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        entries = Hashtbl.length t.table;
        evictions = t.evictions;
        capacity = t.capacity;
      })

(* A corner-skewed compile is a different artifact: the same canon hash
   with the corner name appended. The nominal corner keeps the bare hash,
   so keys already replicated around a fleet stay valid. Corner names are
   assumed to identify their skews (the {!Devices.Registry.standard_corners}
   table); a caller inventing two different corners under one name would
   alias them. *)
let qualify_key ?corner hash =
  match corner with
  | Some c when c.Devices.Registry.corner_name <> "nominal" ->
      hash ^ "@" ^ c.Devices.Registry.corner_name
  | Some _ | None -> hash

let key_of_source ?corner src =
  match Netlist.Parser.parse_problem src with
  | ast -> Ok (qualify_key ?corner (Netlist.Canon.problem_hash ast))
  | exception Netlist.Parser.Error (ln, msg) ->
      Error (Printf.sprintf "astrx: parse error at line %d: %s" ln msg)

(* Caller holds the lock. Linear scan for the LRU victim: the capacity is
   tens of entries, and eviction is rarer than compilation. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, age) when age <= e.last_used -> ()
      | Some _ | None -> victim := Some (k, e.last_used))
    t.table;
  match !victim with
  | Some (k, _) ->
      Hashtbl.remove t.table k;
      t.evictions <- t.evictions + 1
  | None -> ()

let find t ~key =
  locked t (fun () ->
      t.tick <- t.tick + 1;
      match Hashtbl.find_opt t.table key with
      | Some e ->
          e.last_used <- t.tick;
          t.hits <- t.hits + 1;
          Some e.value
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t ~key value =
  locked t (fun () ->
      if not (Hashtbl.mem t.table key) then begin
        if Hashtbl.length t.table >= t.capacity then evict_lru t;
        Hashtbl.add t.table key { value; last_used = t.tick }
      end)

let peek t ~key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some { value = Ok _; _ } -> Some (Ok ())
      | Some { value = Error e; _ } -> Some (Error e)
      | None -> None)

let compile t ?corner ~source () =
  match key_of_source ?corner source with
  | Error e -> Error (e, Miss) (* unparseable: no key, so never cached *)
  | Ok key -> begin
      match find t ~key with
      | Some (Ok p) -> Ok (p, Hit)
      | Some (Error e) -> Error (e, Hit)
      | None -> begin
          (* Compile outside the lock: a big problem takes real time and
             must not stall lookups (or other compiles) behind it. *)
          let value = Compile.compile_source ?corner source in
          add t ~key value;
          match value with Ok p -> Ok (p, Miss) | Error e -> Error (e, Miss)
        end
    end
