(** Independent verification of a synthesized design — the "Simulation"
    columns of Tables 2 and 3.

    Where OBLX predicts performance from the relaxed-dc bias point and AWE
    reduced-order models, this module re-derives every specification value
    through the reference simulator: a full Newton-Raphson operating point
    of each test jig, direct frequency-by-frequency AC analysis, and the
    bias network solved exactly. Any gap between [Oblx.result.predicted]
    and these numbers is the tool's true prediction error. *)

(** [simulate_specs p st] evaluates every specification of [p] at the
    design point [st] using the reference simulator. [None] entries are
    measurements the simulator could not complete (with the reason). *)
val simulate_specs : Problem.t -> State.t -> ((string * (float, string) result) list, string) result

(** [kcl_abs_error p st] is the worst absolute KCL residual (A) of the
    relaxed-dc state versus a true operating point — used for Fig. 2. *)
val kcl_abs_error : Problem.t -> State.t -> (float, string) result

(** [bias_voltage_error p st] is the max |v_relaxed - v_newton| over bias
    nodes: how far the annealer's voltages are from the exact solve. *)
val bias_voltage_error : Problem.t -> State.t -> (float, string) result

(** [transient_slew p st ~tf ~vstep ~tstop ~dt] measures slew rate the way
    a bench (or HSPICE .tran) would: step the named transfer function's
    source by [vstep] volts at t = tstop/10 and record the peak |dv/dt| at
    the tf's output. This is the large-signal cross-check for the
    expression-based slew specification OBLX optimizes (the paper's SR
    rows show exactly this OBLX-expression vs transient-sim gap). *)
val transient_slew :
  Problem.t ->
  State.t ->
  tf:string ->
  vstep:float ->
  tstop:float ->
  dt:float ->
  (float, string) result

(** [transient_settle p st ~tf ~tol ~vstep ~tstop ~dt] measures settling
    time to the [tol] band the same way: shared step stimulus, exact
    fixed-step backward-Euler transient. *)
val transient_settle :
  Problem.t ->
  State.t ->
  tf:string ->
  tol:float ->
  vstep:float ->
  tstop:float ->
  dt:float ->
  (float, string) result
