(** Process-corner analysis — the paper's stated next step ("the manual
    designer was willing to trade nominal performance for better estimated
    yield and performance over varying operating conditions. Adding this
    ability to ASTRX/OBLX is one of our highest priorities").

    A corner skews every device model (slow/fast silicon, threshold
    shifts); [analyze] re-verifies a finished design at each corner with
    the reference simulator, and [worst_case] reduces the per-corner spec
    values to the pessimistic bound for each constraint direction. *)

(** The classic five: nominal, slow, fast, and the two skewed corners. *)
val standard : Devices.Registry.corner list

type spec_at_corner = {
  sc_corner : string;
  sc_values : (string * (float, string) result) list;
}

(** [analyze ~source ~sizing] recompiles the problem at every corner,
    applies the design point [sizing] (user-variable name/value pairs),
    and evaluates every specification with the reference simulator.
    [?cache] routes each corner's compile through a shared
    {!Compile_cache} under its corner-qualified key, so repeated analyses
    (and the daemon's sweep jobs) compile each [(canon, corner)] once. *)
val analyze :
  ?corners:Devices.Registry.corner list ->
  ?cache:Compile_cache.t ->
  source:string ->
  sizing:(string * float) list ->
  unit ->
  (spec_at_corner list, string) result

(** [worst_case p results] folds corner results into the worst value per
    spec (min for >= constraints and maximized objectives, max for <=). A
    spec that failed at any corner reports that corner's error. *)
val worst_case :
  Problem.t -> spec_at_corner list -> (string * (float, string) result) list
