type bias_point = {
  node_v : float array;
  ops : (string * Mna.Dc.op_info) list;
  residuals : float array;
  res_scale : float array;
  node_leaving : float array;
      (* per bias node: total current leaving into non-source elements *)
}

exception Measurement_failed of string

(* --- Element-value environment: state variables, parameters, math. --- *)

(* The environment closures read the state through [get_st], so one
   environment built once can serve a whole annealing run whose state
   record is swapped (or mutated) underneath it — the incremental session
   allocates its environments in [Incr.create] instead of once per
   evaluation. *)
let value_env_get (p : Problem.t) (get_st : unit -> State.t) =
  let rec lookup seen path =
    match path with
    | [ name ] -> begin
        match State.lookup_value (get_st ()) name with
        | v -> v
        | exception Not_found -> begin
            match List.assoc_opt name p.Problem.params with
            | Some e ->
                if List.mem name seen then
                  raise (Netlist.Expr.Eval_error ("parameter cycle at " ^ name))
                else
                  Netlist.Expr.eval
                    { Netlist.Expr.lookup = lookup (name :: seen); call = Builtin.math_call }
                    e
            | None -> raise Not_found
          end
      end
    | _ -> raise Not_found
  in
  { Netlist.Expr.lookup = lookup []; call = Builtin.math_call }

let value_env (p : Problem.t) (st : State.t) = value_env_get p (fun () -> st)

(* --- Node voltages from the tree-link assignment. --- *)

let node_voltages (p : Problem.t) (st : State.t) =
  let env = value_env p st in
  let base = Problem.node_var_base p in
  Array.map
    (fun a ->
      match a with
      | Treelink.Fixed e -> Netlist.Expr.eval env e
      | Treelink.Free (k, off) -> st.State.values.(base + k) +. Netlist.Expr.eval env off)
    p.Problem.tl.Treelink.of_node

(* --- KCL currents over the bias network. ---

   [currents] accumulates, per node, the sum of currents leaving the node
   into elements (voltage sources excluded: inside a supernode they cancel)
   and the sum of magnitudes (the normalization scale). Device operating
   points fall out of the same sweep. *)

let sweep_bias (p : Problem.t) (st : State.t) ~want_ops =
  let env = value_env p st in
  let value e = Netlist.Expr.eval env e in
  let nv = node_voltages p st in
  let n = Array.length nv in
  let cur = Array.make n 0.0 in
  let mag = Array.make n 0.0 in
  let ops = ref [] in
  let flow node i =
    cur.(node) <- cur.(node) +. i;
    mag.(node) <- mag.(node) +. Float.abs i
  in
  Array.iter
    (fun (e : Netlist.Circuit.element) ->
      match e with
      | Netlist.Circuit.Resistor { n1; n2; value = ve; _ } ->
          let i = (nv.(n1) -. nv.(n2)) /. value ve in
          flow n1 i;
          flow n2 (-.i)
      | Netlist.Circuit.Capacitor _ -> ()
      | Netlist.Circuit.Vsource _ -> ()
      | Netlist.Circuit.Isource { np; nn; dc; _ } ->
          let i = value dc in
          flow np i;
          flow nn (-.i)
      | Netlist.Circuit.Vccs { np; nn; ncp; ncn; gm; _ } ->
          let i = value gm *. (nv.(ncp) -. nv.(ncn)) in
          flow np i;
          flow nn (-.i)
      | Netlist.Circuit.Mosfet { name; d; g; s; b; model; w; l; mult } -> begin
          match Devices.Registry.find_exn p.Problem.registry model with
          | Devices.Sig.Mos { eval; _ } ->
              let op =
                eval ~w:(value w) ~l:(value l) ~m:(value mult) ~vd:nv.(d) ~vg:nv.(g)
                  ~vs:nv.(s) ~vb:nv.(b)
              in
              let open Devices.Sig in
              flow d op.id_;
              flow s (-.op.id_);
              flow b (op.ibd_ +. op.ibs_);
              flow d (-.op.ibd_);
              flow s (-.op.ibs_);
              if want_ops then ops := (name, Mna.Dc.Mos_op op) :: !ops
          | Devices.Sig.Bjt _ -> failwith (name ^ ": MOS element with BJT model")
        end
      | Netlist.Circuit.Bjt { name; c; b; e = ne; model; area } -> begin
          match Devices.Registry.find_exn p.Problem.registry model with
          | Devices.Sig.Bjt { eval; _ } ->
              let op = eval ~area:(value area) ~vc:nv.(c) ~vb:nv.(b) ~ve:nv.(ne) in
              let open Devices.Sig in
              flow c op.ic;
              flow b op.ib;
              flow ne (-.(op.ic +. op.ib));
              if want_ops then ops := (name, Mna.Dc.Bjt_op op) :: !ops
          | Devices.Sig.Mos _ -> failwith (name ^ ": BJT element with MOS model")
        end
      | Netlist.Circuit.Inductor { name; _ }
      | Netlist.Circuit.Vcvs { name; _ }
      | Netlist.Circuit.Cccs { name; _ }
      | Netlist.Circuit.Ccvs { name; _ } ->
          failwith (name ^ ": unsupported element in bias network"))
    p.Problem.bias.Netlist.Circuit.elements;
  (nv, cur, mag, List.rev !ops)

(* In-place variant shared with the incremental session, which folds into
   arrays preallocated in its arena instead of allocating per evaluation.
   Same accumulation order either way. *)
let group_residuals_into (p : Problem.t) cur mag residuals scale =
  let tl = p.Problem.tl in
  Array.fill residuals 0 (Array.length residuals) 0.0;
  Array.fill scale 0 (Array.length scale) 0.0;
  Array.iteri
    (fun k members ->
      List.iter
        (fun node ->
          residuals.(k) <- residuals.(k) +. cur.(node);
          scale.(k) <- scale.(k) +. mag.(node))
        members)
    tl.Treelink.members

let group_residuals (p : Problem.t) cur mag =
  let tl = p.Problem.tl in
  let residuals = Array.make tl.Treelink.n_free 0.0 in
  let scale = Array.make tl.Treelink.n_free 0.0 in
  group_residuals_into p cur mag residuals scale;
  (residuals, scale)

let bias_point p st =
  let nv, cur, mag, ops = sweep_bias p st ~want_ops:true in
  let residuals, res_scale = group_residuals p cur mag in
  { node_v = nv; ops; residuals; res_scale; node_leaving = cur }

let residuals_quick p st =
  let _, cur, mag, _ = sweep_bias p st ~want_ops:false in
  let residuals, _ = group_residuals p cur mag in
  residuals

(* --- Measurements over the AWE circuits. --- *)

type measured = {
  bias : bias_point;
  roms : (string * (Awe.Rom.t, string) result) list;
  spec_values : (string * float option) list;
}

(* Fields of a device operating point addressable from spec expressions. *)
let op_field (op : Mna.Dc.op_info) field =
  match (op, field) with
  | Mna.Dc.Mos_op o, "id" -> Float.abs o.Devices.Sig.id_
  | Mna.Dc.Mos_op o, "gm" -> o.Devices.Sig.gm
  | Mna.Dc.Mos_op o, "gds" -> o.Devices.Sig.gds
  | Mna.Dc.Mos_op o, "gmbs" -> o.Devices.Sig.gmbs
  | Mna.Dc.Mos_op o, "vth" -> o.Devices.Sig.vth
  | Mna.Dc.Mos_op o, "vdsat" -> o.Devices.Sig.vdsat
  | Mna.Dc.Mos_op o, "vgst" -> o.Devices.Sig.vgst
  | Mna.Dc.Mos_op o, "vds" -> o.Devices.Sig.vds_mag
  | Mna.Dc.Mos_op o, "cgs" -> o.Devices.Sig.cgs
  | Mna.Dc.Mos_op o, "cgd" -> o.Devices.Sig.cgd
  | Mna.Dc.Mos_op o, "cgb" -> o.Devices.Sig.cgb
  | Mna.Dc.Mos_op o, "cbd" -> o.Devices.Sig.cbd
  | Mna.Dc.Mos_op o, "cbs" -> o.Devices.Sig.cbs
  | Mna.Dc.Mos_op o, "cd" -> o.Devices.Sig.cgd +. o.Devices.Sig.cbd
  | Mna.Dc.Mos_op o, "cs" -> o.Devices.Sig.cgs +. o.Devices.Sig.cbs
  | Mna.Dc.Mos_op o, "cg" -> o.Devices.Sig.cgs +. o.Devices.Sig.cgd +. o.Devices.Sig.cgb
  | Mna.Dc.Bjt_op o, "ic" -> Float.abs o.Devices.Sig.ic
  | Mna.Dc.Bjt_op o, "ib" -> Float.abs o.Devices.Sig.ib
  | Mna.Dc.Bjt_op o, "gm" -> o.Devices.Sig.bjt_gm
  | Mna.Dc.Bjt_op o, "gpi" -> o.Devices.Sig.gpi
  | Mna.Dc.Bjt_op o, "go" -> o.Devices.Sig.go
  | Mna.Dc.Bjt_op o, "cpi" -> o.Devices.Sig.cpi
  | Mna.Dc.Bjt_op o, "cmu" -> o.Devices.Sig.cmu
  | Mna.Dc.Bjt_op o, "ccs" -> o.Devices.Sig.ccs
  | Mna.Dc.Bjt_op o, "vbe" -> o.Devices.Sig.vbe_f
  | (Mna.Dc.Mos_op _ | Mna.Dc.Bjt_op _), f -> raise (Measurement_failed ("unknown op field " ^ f))

(* Active area of the circuit under design, reported in square microns:
   W*L*m per MOS plus a nominal per-unit-area footprint for BJTs. *)
let bjt_unit_area_um2 = 400.0

let active_area_um2 (p : Problem.t) (st : State.t) =
  let env = value_env p st in
  let value e = Netlist.Expr.eval env e in
  Array.fold_left
    (fun acc (e : Netlist.Circuit.element) ->
      match e with
      | Netlist.Circuit.Mosfet { w; l; mult; _ } ->
          acc +. (value w *. value l *. value mult *. 1e12)
      | Netlist.Circuit.Bjt { area; _ } -> acc +. (value area *. bjt_unit_area_um2)
      | Netlist.Circuit.Resistor _ | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Inductor _
      | Netlist.Circuit.Vsource _ | Netlist.Circuit.Isource _ | Netlist.Circuit.Vcvs _
      | Netlist.Circuit.Vccs _ | Netlist.Circuit.Cccs _ | Netlist.Circuit.Ccvs _ ->
          acc)
    0.0 p.Problem.bias.Netlist.Circuit.elements

(* Static power: total dissipation over the bias network, which equals the
   supply-delivered power once KCL holds. [nv]/[ops] are taken apart from
   the bias point so the incremental session can pass its cached slices. *)
let static_power_parts (p : Problem.t) (st : State.t) ~(nv : float array)
    ~(ops : (string * Mna.Dc.op_info) list) =
  let env = value_env p st in
  let value e = Netlist.Expr.eval env e in
  Array.fold_left
    (fun acc (e : Netlist.Circuit.element) ->
      match e with
      | Netlist.Circuit.Resistor { n1; n2; value = ve; _ } ->
          let dv = nv.(n1) -. nv.(n2) in
          acc +. (dv *. dv /. value ve)
      | Netlist.Circuit.Mosfet { name; d; s; _ } -> begin
          match List.assoc_opt name ops with
          | Some (Mna.Dc.Mos_op o) -> acc +. Float.abs (o.Devices.Sig.id_ *. (nv.(d) -. nv.(s)))
          | Some (Mna.Dc.Bjt_op _) | None -> acc
        end
      | Netlist.Circuit.Bjt { name; c; b; e = ne; _ } -> begin
          match List.assoc_opt name ops with
          | Some (Mna.Dc.Bjt_op o) ->
              acc
              +. Float.abs (o.Devices.Sig.ic *. (nv.(c) -. nv.(ne)))
              +. Float.abs (o.Devices.Sig.ib *. (nv.(b) -. nv.(ne)))
          | Some (Mna.Dc.Mos_op _) | None -> acc
        end
      | Netlist.Circuit.Isource { np; nn; dc; _ } ->
          acc +. Float.abs (value dc *. (nv.(np) -. nv.(nn)))
      | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Inductor _ | Netlist.Circuit.Vsource _
      | Netlist.Circuit.Vcvs _ | Netlist.Circuit.Vccs _ | Netlist.Circuit.Cccs _
      | Netlist.Circuit.Ccvs _ ->
          acc)
    0.0 p.Problem.bias.Netlist.Circuit.elements

let roms_for_jig ~value ~ops (j : Problem.jig) =
  match Mna.Linearize.build ~value ~ops j.Problem.jig_circuit with
  | lin ->
      let fac = Awe.Moments.factor lin in
      List.map
        (fun (tfname, (tf : Problem.tf)) ->
          let rom =
            try
              let b = Mna.Linearize.excitation_of lin ~src:tf.src in
              let sel = Mna.Linearize.output_vector lin ~pos:tf.out_pos ~neg:tf.out_neg in
              Awe.Rom.build_with fac ~b ~sel
            with
            | Failure m -> Error m
            | La.Lu.Singular _ -> Error "singular AWE system"
          in
          (tfname, rom))
        j.Problem.tfs
  | exception Failure m -> List.map (fun (tfname, _) -> (tfname, Error m)) j.Problem.tfs

let build_roms (p : Problem.t) (st : State.t) (bp : bias_point) =
  let env = value_env p st in
  let value e = Netlist.Expr.eval env e in
  let ops name = List.assoc_opt name bp.ops in
  List.concat_map (roms_for_jig ~value ~ops) p.Problem.jigs

let rom_of roms tfname =
  match List.assoc_opt tfname roms with
  | Some (Ok r) -> r
  | Some (Error m) -> raise (Measurement_failed (tfname ^ ": " ^ m))
  | None -> raise (Measurement_failed ("unknown transfer function " ^ tfname))

(* --- Large-signal and noise measurements over a jig circuit. --- *)

let find_tf_jig (p : Problem.t) tfname =
  let found =
    List.find_map
      (fun (j : Problem.jig) ->
        Option.map (fun ports -> (j, ports)) (List.assoc_opt tfname j.Problem.tfs))
      p.Problem.jigs
  in
  match found with
  | Some jp -> jp
  | None -> raise (Measurement_failed ("unknown transfer function " ^ tfname))

let tran_card_of (p : Problem.t) tfname =
  let j, _ = find_tf_jig p tfname in
  match j.Problem.jig_tran with
  | Some tc -> tc
  | None -> raise (Measurement_failed (tfname ^ ": owning jig has no .tran card"))

(* Step-stimulus transient over the jig owning [tf]: the source the
   transfer function names steps by [vstep] at tstop/10, from whatever dc
   value the state assigns it. Shared by the in-loop spec functions
   (coarse [dtloop] budget) and by [Verify] (exact [dt]): both therefore
   agree on the stimulus shape and onset and differ only in step size. *)
let transient_response (p : Problem.t) ~value ~tf ~vstep ~tstop ~dt =
  let j, ports = find_tf_jig p tf in
  let src = ports.Problem.src in
  let v0 =
    match Netlist.Circuit.find_element j.Problem.jig_circuit src with
    | Netlist.Circuit.Vsource { dc; _ } | Netlist.Circuit.Isource { dc; _ } -> value dc
    | Netlist.Circuit.Resistor _ | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Inductor _
    | Netlist.Circuit.Vcvs _ | Netlist.Circuit.Vccs _ | Netlist.Circuit.Cccs _
    | Netlist.Circuit.Ccvs _ | Netlist.Circuit.Mosfet _ | Netlist.Circuit.Bjt _ ->
        0.0
    | exception Not_found -> 0.0
  in
  let t_step = tstop /. 10.0 in
  let stim = [ (src, fun t -> if t >= t_step then v0 +. vstep else v0) ] in
  match
    Mna.Tran.simulate ~value ~registry:p.Problem.registry ~tstop ~dt ~stimulus:stim
      j.Problem.jig_circuit
  with
  | Error e -> raise (Measurement_failed (tf ^ ": " ^ e))
  | Ok r -> (r, ports, t_step)

(* Output-referred noise: one adjoint solve G^T y = sel gives the dc
   transfer from every noise-current injection site to the output, and
   white sources then sum as i_n^2 (y+ - y-)^2. Sources modeled: resistor
   thermal 4kT/R, MOS channel thermal (8/3)kT*gm, BJT shot 2q|Ic| and
   2q|Ib|. The result is the output noise density in V^2/Hz at dc, which
   the [noise_out_uv] spec function integrates over the first-order
   equivalent noise bandwidth (pi/2 times the -3dB bandwidth). *)
let kt_300 = 1.380649e-23 *. 300.0
let q_electron = 1.602176634e-19

let output_noise_v2_per_hz (lin : Mna.Linearize.t) ~value ~ops ~sel =
  let idx = lin.Mna.Linearize.idx in
  let lu =
    try La.Lu.factor lin.Mna.Linearize.g
    with La.Lu.Singular _ -> raise (Measurement_failed "noise: singular system")
  in
  let y = La.Lu.solve_transposed lu sel in
  let yv node =
    if node = 0 then 0.0
    else
      let r = Mna.Sysmat.node_row idx node in
      if r < 0 then 0.0 else y.(r)
  in
  Array.fold_left
    (fun acc (e : Netlist.Circuit.element) ->
      match e with
      | Netlist.Circuit.Resistor { n1; n2; value = ve; _ } ->
          let r = value ve in
          if r > 0.0 then begin
            let g = yv n1 -. yv n2 in
            acc +. (4.0 *. kt_300 /. r *. (g *. g))
          end
          else acc
      | Netlist.Circuit.Mosfet { name; d; s; _ } -> begin
          match ops name with
          | Some (Mna.Dc.Mos_op o) ->
              let g = yv d -. yv s in
              acc +. (8.0 /. 3.0 *. kt_300 *. Float.max 0.0 o.Devices.Sig.gm *. (g *. g))
          | Some (Mna.Dc.Bjt_op _) | None -> acc
        end
      | Netlist.Circuit.Bjt { name; c; b; e = ne; _ } -> begin
          match ops name with
          | Some (Mna.Dc.Bjt_op o) ->
              let gc = yv c -. yv ne in
              let gb = yv b -. yv ne in
              acc
              +. (2.0 *. q_electron *. Float.abs o.Devices.Sig.ic *. (gc *. gc))
              +. (2.0 *. q_electron *. Float.abs o.Devices.Sig.ib *. (gb *. gb))
          | Some (Mna.Dc.Mos_op _) | None -> acc
        end
      | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Inductor _ | Netlist.Circuit.Vsource _
      | Netlist.Circuit.Isource _ | Netlist.Circuit.Vcvs _ | Netlist.Circuit.Vccs _
      | Netlist.Circuit.Cccs _ | Netlist.Circuit.Ccvs _ ->
          acc)
    0.0 idx.Mna.Sysmat.circuit.Netlist.Circuit.elements

(* Spec-expression environment: element values plus device operating-point
   references plus the AWE measurement functions.

   The environment is built over a mutable context instead of capturing a
   bias point directly: the closures read whichever state / operating
   points / ROM list the context currently holds. The full evaluator fills
   a fresh context per measurement; the incremental session allocates one
   context and one environment at [Incr.create] and repoints the fields —
   the arithmetic either way is identical. *)
type spec_ctx = {
  mutable cx_st : State.t;
  mutable cx_nv : float array;  (* bias node voltages *)
  mutable cx_ops : (string * Mna.Dc.op_info) list;
  mutable cx_node_leaving : float array;
  mutable cx_roms : (string * (Awe.Rom.t, string) result) list;
}

let spec_ctx_env (p : Problem.t) (cx : spec_ctx) =
  let base = value_env_get p (fun () -> cx.cx_st) in
  let lookup path =
    match path with
    | [ _ ] -> base.Netlist.Expr.lookup path
    | [] -> raise Not_found
    | parts -> begin
        (* device ref: all but the last segment name the element *)
        let rec split_last acc = function
          | [ last ] -> (List.rev acc, last)
          | x :: rest -> split_last (x :: acc) rest
          | [] -> assert false
        in
        let devparts, field = split_last [] parts in
        let devname = String.concat "." devparts in
        match List.assoc_opt devname cx.cx_ops with
        | Some op -> op_field op field
        | None -> raise Not_found
      end
  in
  let valuef e = Netlist.Expr.eval base e in
  (* Transient waveform of [tf] under the owning jig's .tran budget; the
     in-loop step size is the coarse [dtloop] when declared, else the
     exact [dt] (Verify always re-measures at the exact [dt]). *)
  let tran_of tfn =
    let tc = tran_card_of p tfn in
    let dt =
      match tc.Netlist.Ast.tr_dtloop with Some d -> d | None -> tc.Netlist.Ast.tr_dt
    in
    let r, ports, t_step =
      transient_response p ~value:valuef ~tf:tfn ~vstep:tc.Netlist.Ast.tr_vstep
        ~tstop:tc.Netlist.Ast.tr_tstop ~dt
    in
    let v = Mna.Tran.waveform_of r ~pos:ports.Problem.out_pos ~neg:ports.Problem.out_neg in
    (tc, r, v, t_step)
  in
  let settle_of tfn tol =
    let _, r, v, t_step = tran_of tfn in
    Mna.Tran.settling_time ~times:r.Mna.Tran.times v ~t_from:t_step ~tol
  in
  let call name args =
    let tfarg = function
      | Netlist.Expr.Name n -> n
      | Netlist.Expr.Num _ ->
          raise (Measurement_failed (name ^ ": expected a transfer-function name"))
    in
    let numarg = function
      | Netlist.Expr.Num v -> v
      | Netlist.Expr.Name n -> raise (Measurement_failed (name ^ ": unexpected name " ^ n))
    in
    match (name, args) with
    | "dc_gain", [ tf ] -> Awe.Rom.dc_gain (rom_of cx.cx_roms (tfarg tf))
    | "ugf", [ tf ] ->
        Option.value ~default:0.0 (Awe.Rom.unity_gain_freq (rom_of cx.cx_roms (tfarg tf)))
    | ("phase_margin" | "pm"), [ tf ] ->
        Option.value ~default:180.0 (Awe.Rom.phase_margin (rom_of cx.cx_roms (tfarg tf)))
    | "gain_at", [ tf; f ] -> Awe.Rom.magnitude_at (rom_of cx.cx_roms (tfarg tf)) ~f:(numarg f)
    | "bw3db", [ tf ] ->
        Option.value ~default:0.0 (Awe.Rom.bandwidth_3db (rom_of cx.cx_roms (tfarg tf)))
    | "pole1", [ tf ] ->
        Option.value ~default:0.0 (Awe.Rom.dominant_pole_hz (rom_of cx.cx_roms (tfarg tf)))
    | "gain_margin_db", [ tf ] ->
        Option.value ~default:60.0 (Awe.Rom.gain_margin_db (rom_of cx.cx_roms (tfarg tf)))
    | "slew_rate", [ tf ] ->
        let tc, r, v, t_step = tran_of (tfarg tf) in
        Mna.Tran.peak_slew ~times:r.Mna.Tran.times v ~t_from:t_step
          ~t_to:tc.Netlist.Ast.tr_tstop
    | "settle", [ tf ] -> settle_of (tfarg tf) 0.01
    | "settle", [ tf; tol ] -> settle_of (tfarg tf) (numarg tol)
    | "noise_out_uv", [ tf ] -> begin
        let tfn = tfarg tf in
        let enbw =
          match Awe.Rom.bandwidth_3db (rom_of cx.cx_roms tfn) with
          | Some bw when bw > 0.0 -> Float.pi /. 2.0 *. bw
          | Some _ | None ->
              raise (Measurement_failed (tfn ^ ": noise bandwidth unavailable"))
        in
        let j, ports = find_tf_jig p tfn in
        let ops n = List.assoc_opt n cx.cx_ops in
        match Mna.Linearize.build ~value:valuef ~ops j.Problem.jig_circuit with
        | exception Failure m -> raise (Measurement_failed (tfn ^ ": " ^ m))
        | lin ->
            let sel =
              Mna.Linearize.output_vector lin ~pos:ports.Problem.out_pos
                ~neg:ports.Problem.out_neg
            in
            let s0 = output_noise_v2_per_hz lin ~value:valuef ~ops ~sel in
            Float.sqrt (Float.max 0.0 (s0 *. enbw)) *. 1e6
      end
    | "psrr_db", [ stf; suptf ] ->
        let a_sig = Float.abs (Awe.Rom.dc_gain (rom_of cx.cx_roms (tfarg stf))) in
        let a_sup = Float.abs (Awe.Rom.dc_gain (rom_of cx.cx_roms (tfarg suptf))) in
        if a_sup < 1e-30 then 300.0
        else 20.0 *. Float.log10 (Float.max a_sig 1e-30 /. a_sup)
    | "area", [] -> active_area_um2 p cx.cx_st
    | "power", [] -> static_power_parts p cx.cx_st ~nv:cx.cx_nv ~ops:cx.cx_ops
    | "supply_current", [ src ] -> begin
        (* Current delivered by a bias-network voltage source: by KCL the
           source carries minus the sum of the other currents leaving its
           + node (approximate if several sources share the node). *)
        let srcname =
          match src with
          | Netlist.Expr.Name n -> n
          | Netlist.Expr.Num _ ->
              raise (Measurement_failed "supply_current: expected a source name")
        in
        match Netlist.Circuit.find_element p.Problem.bias srcname with
        | Netlist.Circuit.Vsource { np; _ } -> Float.abs cx.cx_node_leaving.(np)
        | Netlist.Circuit.Resistor _ | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Inductor _
        | Netlist.Circuit.Isource _ | Netlist.Circuit.Vcvs _ | Netlist.Circuit.Vccs _
        | Netlist.Circuit.Cccs _ | Netlist.Circuit.Ccvs _ | Netlist.Circuit.Mosfet _
        | Netlist.Circuit.Bjt _ ->
            raise (Measurement_failed ("supply_current: " ^ srcname ^ " is not a V source"))
        | exception Not_found ->
            raise (Measurement_failed ("supply_current: unknown source " ^ srcname))
      end
    | _ -> begin
        try Builtin.math_call name args
        with Builtin.Unknown_function f -> raise (Measurement_failed ("unknown function " ^ f))
      end
  in
  { Netlist.Expr.lookup; call }

let spec_env (p : Problem.t) (st : State.t) (bp : bias_point) roms =
  spec_ctx_env p
    {
      cx_st = st;
      cx_nv = bp.node_v;
      cx_ops = bp.ops;
      cx_node_leaving = bp.node_leaving;
      cx_roms = roms;
    }

(* One spec under an environment: failures and non-finite results both
   report as "unmeasurable". Shared verbatim with the incremental path. *)
let measure_spec env (s : Problem.spec) =
  let v =
    try Some (Netlist.Expr.eval env s.Problem.expr) with
    | Measurement_failed _ -> None
    | Netlist.Expr.Eval_error _ -> None
  in
  match v with Some x when not (Float.is_finite x) -> None | other -> other

(* Corner robustness rows: re-measure the named specs with the registry
   skewed to each compile-resolved corner. Corners evaluate sequentially
   in [corner_regs] order with the full (non-incremental) evaluator, so
   the values are a deterministic function of (p, st) alone — both the
   full and the incremental cost path call this identically, which is what
   keeps jobs=1 and jobs=N anneals bit-identical. *)
let corner_spec_values (p : Problem.t) (st : State.t) =
  List.concat_map
    (fun (cname, reg) ->
      let rows =
        List.filter (fun (s : Problem.spec) -> s.Problem.spec_corner = Some cname) p.Problem.specs
      in
      try
        let pc = { p with Problem.registry = reg } in
        let bp = bias_point pc st in
        let roms = build_roms pc st bp in
        let env = spec_env pc st bp roms in
        List.map (fun (s : Problem.spec) -> (s.Problem.spec_name, measure_spec env s)) rows
      with Failure _ | Not_found | Measurement_failed _ ->
        List.map (fun (s : Problem.spec) -> (s.Problem.spec_name, None)) rows)
    p.Problem.corner_regs

let measure (p : Problem.t) (st : State.t) =
  let bp = bias_point p st in
  let roms = build_roms p st bp in
  let env = spec_env p st bp roms in
  let corner_vals = corner_spec_values p st in
  let spec_values =
    List.map
      (fun (s : Problem.spec) ->
        let v =
          match s.Problem.spec_corner with
          | None -> measure_spec env s
          | Some _ -> (
              match List.assoc_opt s.Problem.spec_name corner_vals with
              | Some v -> v
              | None -> None)
        in
        (s.Problem.spec_name, v))
      p.Problem.specs
  in
  { bias = bp; roms; spec_values }

(* --- Cost assembly (paper eq. (5)). --- *)

(* Penalty charged for a failed measurement: several times worse than a
   "bad" outcome so the annealer backs away from degenerate regions. *)
let failed_measurement_penalty = 5.0

let cost_of_spec_values (p : Problem.t) spec_values =
  List.fold_left
    (fun (obj, perf) (s : Problem.spec) ->
      let v = match List.assoc_opt s.spec_name spec_values with Some v -> v | None -> None in
      let normalized =
        match v with
        | Some value -> (s.good -. value) /. (s.good -. s.bad)
        | None -> failed_measurement_penalty
      in
      match s.kind with
      | Netlist.Ast.Objective_max | Netlist.Ast.Objective_min ->
          (* Exceeding "good" keeps paying, but boundedly: without the
             clamp the annealer can ride a measurement artifact (e.g. a
             barely-valid ROM reporting absurd bandwidth) to a bottomless
             objective that drowns every penalty term. *)
          (obj +. Float.max normalized (-2.0), perf)
      | Netlist.Ast.Constraint_ge | Netlist.Ast.Constraint_le ->
          (obj, perf +. Float.max 0.0 normalized))
    (0.0, 0.0) p.Problem.specs

let spec_terms (p : Problem.t) (m : measured) = cost_of_spec_values p m.spec_values

(* Region-of-operation penalties (C_dev): saturation margin for MOS devices
   and forward-active margin for BJTs, unless overridden by .devregion. *)
let sat_margin = 0.03

let dev_terms (p : Problem.t) (m : measured) =
  List.fold_left
    (fun acc (name, op) ->
      let req =
        Option.value ~default:Netlist.Ast.Region_sat (List.assoc_opt name p.Problem.regions)
      in
      match (req, op) with
      | Netlist.Ast.Region_any, (Mna.Dc.Mos_op _ | Mna.Dc.Bjt_op _) -> acc
      | Netlist.Ast.Region_sat, Mna.Dc.Mos_op o ->
          (* "on" uses the raw overdrive so a hard-off device pays in
             proportion to how far below threshold its gate sits. *)
          let on = Float.max 0.0 (0.05 -. o.Devices.Sig.vgst_raw) in
          let sat =
            Float.max 0.0 (o.Devices.Sig.vdsat +. sat_margin -. o.Devices.Sig.vds_mag)
          in
          acc +. on +. sat
      | Netlist.Ast.Region_linear, Mna.Dc.Mos_op o ->
          let on = Float.max 0.0 (0.05 -. o.Devices.Sig.vgst_raw) in
          let lin =
            Float.max 0.0 (o.Devices.Sig.vds_mag -. o.Devices.Sig.vdsat +. sat_margin)
          in
          acc +. on +. lin
      | Netlist.Ast.Region_off, Mna.Dc.Mos_op o ->
          acc +. Float.max 0.0 (o.Devices.Sig.vgst_raw +. 0.05)
      | Netlist.Ast.Region_sat, Mna.Dc.Bjt_op o ->
          (* forward active: vbe >= ~0.55, vbc <= ~0.2 *)
          let on = Float.max 0.0 (0.55 -. o.Devices.Sig.vbe_f) in
          let fwd =
            match o.Devices.Sig.bjt_region with
            | Devices.Sig.Linear -> 0.5 (* saturated *)
            | Devices.Sig.Off | Devices.Sig.Subthreshold | Devices.Sig.Saturation -> 0.0
          in
          acc +. on +. fwd
      | (Netlist.Ast.Region_linear | Netlist.Ast.Region_off), Mna.Dc.Bjt_op o ->
          acc +. Float.max 0.0 (o.Devices.Sig.vbe_f -. 0.4))
    0.0 m.bias.ops

(* Relaxed-dc penalties (C_dc): relative KCL violation per free variable. *)
let dc_tau_rel = 1e-6

let dc_terms (m : measured) =
  let acc = ref 0.0 in
  Array.iteri
    (fun k r ->
      let scale = m.bias.res_scale.(k) +. 1e-9 in
      let rel = Float.abs r /. scale in
      acc := !acc +. Float.max 0.0 (rel -. dc_tau_rel))
    m.bias.residuals;
  !acc

let raw_terms p _st m =
  let obj, perf = spec_terms p m in
  let dev = dev_terms p m in
  let dc = dc_terms m in
  (obj, perf, dev, dc)

type breakdown = {
  c_obj : float;
  c_perf : float;
  c_dev : float;
  c_dc : float;
  total : float;
  measured : measured;
}

(* The final fold from a [measured] to the weighted breakdown — one code
   path, used identically by the full and the incremental evaluator, so
   that equal inputs give bit-equal totals. *)
let breakdown_of (p : Problem.t) (w : Weights.t) (st : State.t) (m : measured) =
  let obj, perf, dev, dc = raw_terms p st m in
  let c_obj = obj in
  let c_perf = w.Weights.w_perf *. perf in
  let c_dev = w.Weights.w_dev *. dev in
  let c_dc = w.Weights.w_dc *. dc in
  { c_obj; c_perf; c_dev; c_dc; total = c_obj +. c_perf +. c_dev +. c_dc; measured = m }

let cost (p : Problem.t) (w : Weights.t) (st : State.t) = breakdown_of p w st (measure p st)

let cost_scalar p w st = (cost p w st).total

(* ------------------------------------------------------------------ *)
(* Incremental move-scoped evaluation                                  *)
(* ------------------------------------------------------------------ *)

(* A session walks the compiled dependency graph (Problem.deps) to
   re-evaluate only the slice of the cost function a move touched, while
   guaranteeing bit-identical totals to the full [cost] above:

   - per-element KCL flow contributions are cached and the node-current
     accumulators are re-folded from zero over ALL elements in element
     order, so the floating-point addition order matches [sweep_bias]
     exactly;
   - device operating points are memoized on their exact inputs (bitwise
     geometry + terminal voltages), and "did this element change" is a
     physical-identity test on the operating-point record — a clean
     element keeps the very record the cached AWE models were built from;
   - per-jig AWE ROM lists are reused until a dependent operating point
     changes or a jig value expression evaluates to different bits;
   - per-spec measured values are reused unless the spec reads a rebuilt
     jig, a changed operating point, or a dirty variable; area/power/
     supply_current specs read the whole bias solution and are always
     re-measured;
   - the final fold to c_obj/c_perf/c_dev/c_dc runs [breakdown_of] on the
     reconstructed [measured] — the same code path as the full evaluator.

   A periodic resync (every [resync_every] incremental evaluations)
   recomputes the full cost and compares bitwise; a mismatch is counted
   and drops every cache. *)

module Incr = struct
  type class_row = {
    cr_class : string;
    cr_evals : int;
    cr_dirty_vars : int;
    cr_op_hits : int;
    cr_op_misses : int;
    cr_rom_builds : int;
    cr_rom_reuses : int;
  }

  type stats = {
    full_evals : int;
    incr_evals : int;
    dirty_vars : int;
    op_hits : int;
    op_misses : int;
    rom_builds : int;
    rom_reuses : int;
    spec_evals : int;
    spec_reuses : int;
    resyncs : int;
    resync_mismatches : int;
    probes : int;
    probe_rom_builds : int;
    probe_fallbacks : int;
    mom_reuses : int;
    mom_refreshes : int;
    dirty_hist : int array;
    by_class : class_row list;
  }

  type counters = {
    mutable k_evals : int;
    mutable k_dirty : int;
    mutable k_op_hits : int;
    mutable k_op_misses : int;
    mutable k_rom_builds : int;
    mutable k_rom_reuses : int;
  }

  type memo_slot = { key : float array; memo_op : Mna.Dc.op_info }

  (* Per-element arena slot. KCL contributions live in the flat [fn]/[fv]
     pair (node index / current), length [flen], capacity fixed at create
     time — recomputing an element writes in place instead of allocating a
     tuple array per move. [kscratch] is the operating-point memo probe
     key, likewise reused; it is copied only on a memo miss. *)
  type elem_cache = {
    ec_name : string;
    fn : int array;  (* flow nodes, emission order *)
    fv : float array;  (* flow currents *)
    mutable flen : int;
    mutable op : Mna.Dc.op_info option;
    memo : memo_slot option array;  (* tiny per-device operating-point memo *)
    mutable memo_next : int;
    kscratch : float array;  (* memo probe key: 7 for MOS, 4 for BJT *)
  }

  (* The session is the per-domain arena: every array below is allocated
     once in [create] and written in place on the hot path. The only
     steady-state allocations per evaluation are the [measured] record
     handed back across the API boundary (with defensive copies of the
     bias arrays) and whatever the device models themselves box. *)
  type session = {
    sp : Problem.t;
    dg : Problem.depgraph;
    resync_every : int;
    last_values : float array;
    mutable primed : bool;
    cur_st : State.t ref;  (* state the persistent environments read *)
    venv : Netlist.Expr.env;  (* element-value env, built once *)
    spec_cx : spec_ctx;  (* mutable context behind [spec_envv] *)
    spec_envv : Netlist.Expr.env;  (* spec env, built once *)
    nv : float array;  (* cached node voltages *)
    cur : float array;  (* cached per-node current sums *)
    mag : float array;  (* cached per-node |current| sums *)
    elems : elem_cache array;
    elem_changed : bool array;  (* scratch, per sync *)
    elem_dirty : bool array;  (* scratch, per sync *)
    node_seen : bool array;  (* scratch, per sync *)
    dirty_buf : int array;  (* scratch: dirty vars, ascending *)
    touched_buf : int array;  (* scratch: nodes visited this sync *)
    jig_valid : bool array;  (* persistent: cached ROM list is current *)
    jig_vals : float array array;  (* value-expression bits at last build *)
    jig_roms : (string * (Awe.Rom.t, string) result) list array;
    mutable roms_flat : (string * (Awe.Rom.t, string) result) list;
    mutable roms_flat_valid : bool;
    spec_valid : bool array;
    spec_cache : float option array;
    spec_screened : bool array;
        (* corner rows and transient-measured rows: the probe path serves
           these from the cache instead of re-simulating per candidate *)
    mutable spec_list : (string * float option) list;
    mutable spec_list_valid : bool;
    (* reverse maps derived from the per-spec dependency sets *)
    var_specs : int list array;
    elem_specs : int list array;
    jig_specs : int list array;
    residuals : float array;
    res_scale : float array;
    mutable ops_list : (string * Mna.Dc.op_info) list;  (* element order *)
    (* Probe-path retention: the stamped linear system, its factorization
       and the per-tf moment vectors of the last exact build of each jig,
       kept so candidate screening can restamp against the retained layout
       and solve through a low-rank update instead of factoring fresh. *)
    jig_lin : Mna.Linearize.t option array;
    jig_fac : Awe.Moments.factored option array;
    jig_mom : Awe.Moments.cache array array;  (* per jig, per tf *)
    (* Probe scratch: candidate screening writes here, never into the
       exact caches above, so an arbitrary number of probes can run
       between two exact evaluations without perturbing them. *)
    p_nv : float array;
    p_cur : float array;
    p_mag : float array;
    p_residuals : float array;
    p_res_scale : float array;
    p_elem_dirty : bool array;
    p_jig_dirty : bool array;
    p_spec_stale : bool array;
    p_ops : Mna.Dc.op_info option array;  (* probe op of dirty devices *)
    pf_n : int array;  (* one element's probe flow nodes *)
    pf_v : float array;  (* ... and currents *)
    mutable dirty_accum : int;  (* dirty vars since the last cost eval *)
    mutable since_resync : int;
    mutable cls : string;  (* move class currently charged, for stats *)
    (* counters *)
    mutable c_full : int;
    mutable c_incr : int;
    mutable c_dirty : int;
    mutable c_op_hits : int;
    mutable c_op_misses : int;
    mutable c_rom_builds : int;
    mutable c_rom_reuses : int;
    mutable c_spec_evals : int;
    mutable c_spec_reuses : int;
    mutable c_resyncs : int;
    mutable c_mismatches : int;
    mutable c_probes : int;
    mutable c_probe_rom_builds : int;
    mutable c_probe_fallbacks : int;
    mutable c_mom_reuses : int;
    mutable c_mom_refreshes : int;
    hist : int array;
    by_class : (string, counters) Hashtbl.t;
  }

  let default_resync = 1024

  let create ?(resync_every = default_resync) (p : Problem.t) =
    let dg = p.Problem.deps in
    let n_vars = State.n_vars p.Problem.state0 in
    let n_nodes = Array.length p.Problem.tl.Treelink.of_node in
    let n_elems = Array.length p.Problem.bias.Netlist.Circuit.elements in
    let n_jigs = List.length p.Problem.jigs in
    let n_specs = List.length p.Problem.specs in
    let elems =
      Array.map
        (fun (e : Netlist.Circuit.element) ->
          (* flow capacity / memo-key width by element kind *)
          let cap, kw =
            match e with
            | Netlist.Circuit.Mosfet _ -> (5, 7)
            | Netlist.Circuit.Bjt _ -> (3, 4)
            | Netlist.Circuit.Resistor _ | Netlist.Circuit.Isource _ | Netlist.Circuit.Vccs _ ->
                (2, 0)
            | _ -> (0, 0)
          in
          {
            ec_name = Netlist.Circuit.element_name e;
            fn = Array.make cap 0;
            fv = Array.make cap 0.0;
            flen = 0;
            op = None;
            (* 16 slots: batched probing evaluates up to a handful of
               candidate geometries per accepted move, and the confirm
               path then re-asks for the winner — a 4-slot memo thrashes
               under that access pattern where 16 keeps every candidate
               of a batch plus the accepted neighborhood resident. *)
            memo = Array.make (if kw > 0 then 16 else 0) None;
            memo_next = 0;
            kscratch = Array.make kw 0.0;
          })
        p.Problem.bias.Netlist.Circuit.elements
    in
    let var_specs = Array.make n_vars [] in
    let elem_specs = Array.make n_elems [] in
    let jig_specs = Array.make n_jigs [] in
    Array.iteri
      (fun si (sd : Problem.spec_deps) ->
        List.iter (fun v -> var_specs.(v) <- si :: var_specs.(v)) sd.Problem.sd_vars;
        List.iter (fun e -> elem_specs.(e) <- si :: elem_specs.(e)) sd.Problem.sd_elems;
        List.iter (fun j -> jig_specs.(j) <- si :: jig_specs.(j)) sd.Problem.sd_jigs)
      dg.Problem.dg_spec_deps;
    (* Persistent environments: built once here, they read the current
       state through [cur_st] — no closure rebuilt per evaluation. *)
    let cur_st = ref p.Problem.state0 in
    let venv = value_env_get p (fun () -> !cur_st) in
    let spec_cx =
      {
        cx_st = p.Problem.state0;
        cx_nv = [||];
        cx_ops = [];
        cx_node_leaving = [||];
        cx_roms = [];
      }
    in
    let spec_envv = spec_ctx_env p spec_cx in
    let rec uses_transient (e : Netlist.Expr.t) =
      match e with
      | Netlist.Expr.Const _ | Netlist.Expr.Ref _ -> false
      | Netlist.Expr.Neg a -> uses_transient a
      | Netlist.Expr.Add (a, b)
      | Netlist.Expr.Sub (a, b)
      | Netlist.Expr.Mul (a, b)
      | Netlist.Expr.Div (a, b)
      | Netlist.Expr.Pow (a, b) ->
          uses_transient a || uses_transient b
      | Netlist.Expr.Call (f, args) ->
          List.mem f Depgraph.transient_functions || List.exists uses_transient args
    in
    let spec_screened =
      Array.of_list
        (List.map
           (fun (s : Problem.spec) ->
             s.Problem.spec_corner <> None || uses_transient s.Problem.expr)
           p.Problem.specs)
    in
    {
      sp = p;
      dg;
      resync_every = Int.max 2 resync_every;
      last_values = Array.make n_vars Float.nan;
      primed = false;
      cur_st;
      venv;
      spec_cx;
      spec_envv;
      nv = Array.make n_nodes 0.0;
      cur = Array.make n_nodes 0.0;
      mag = Array.make n_nodes 0.0;
      elems;
      elem_changed = Array.make n_elems false;
      elem_dirty = Array.make n_elems false;
      node_seen = Array.make n_nodes false;
      dirty_buf = Array.make n_vars 0;
      touched_buf = Array.make n_nodes 0;
      jig_valid = Array.make n_jigs false;
      jig_vals = Array.make n_jigs [||];
      jig_roms = Array.make n_jigs [];
      roms_flat = [];
      roms_flat_valid = false;
      spec_valid = Array.make n_specs false;
      spec_cache = Array.make n_specs None;
      spec_screened;
      spec_list = [];
      spec_list_valid = false;
      var_specs;
      elem_specs;
      jig_specs;
      residuals = Array.make p.Problem.tl.Treelink.n_free 0.0;
      res_scale = Array.make p.Problem.tl.Treelink.n_free 0.0;
      ops_list = [];
      jig_lin = Array.make n_jigs None;
      jig_fac = Array.make n_jigs None;
      jig_mom =
        Array.of_list
          (List.map
             (fun (j : Problem.jig) ->
               Array.init (List.length j.Problem.tfs) (fun _ -> Awe.Moments.cache_create ()))
             p.Problem.jigs);
      p_nv = Array.make n_nodes 0.0;
      p_cur = Array.make n_nodes 0.0;
      p_mag = Array.make n_nodes 0.0;
      p_residuals = Array.make p.Problem.tl.Treelink.n_free 0.0;
      p_res_scale = Array.make p.Problem.tl.Treelink.n_free 0.0;
      p_elem_dirty = Array.make n_elems false;
      p_jig_dirty = Array.make n_jigs false;
      p_spec_stale = Array.make n_specs false;
      p_ops = Array.make n_elems None;
      pf_n = Array.make 5 0;
      pf_v = Array.make 5 0.0;
      dirty_accum = 0;
      since_resync = 0;
      cls = "";
      c_full = 0;
      c_incr = 0;
      c_dirty = 0;
      c_op_hits = 0;
      c_op_misses = 0;
      c_rom_builds = 0;
      c_rom_reuses = 0;
      c_spec_evals = 0;
      c_spec_reuses = 0;
      c_resyncs = 0;
      c_mismatches = 0;
      c_probes = 0;
      c_probe_rom_builds = 0;
      c_probe_fallbacks = 0;
      c_mom_reuses = 0;
      c_mom_refreshes = 0;
      hist = Array.make 9 0;
      by_class = Hashtbl.create 8;
    }

  let set_class ss cls = ss.cls <- cls

  let invalidate ss = ss.primed <- false

  (* Return the session to its just-created state so one arena can serve
     a fresh restart: every cache is dropped and every counter zeroed, but
     no array is reallocated. A reset session is observationally identical
     to a fresh [create] — the cross-restart reuse [Core.Oblx.best_of]
     relies on for bit-identical results. *)
  let reset ss =
    ss.primed <- false;
    Array.fill ss.last_values 0 (Array.length ss.last_values) Float.nan;
    ss.cur_st := ss.sp.Problem.state0;
    ss.spec_cx.cx_st <- ss.sp.Problem.state0;
    ss.spec_cx.cx_nv <- [||];
    ss.spec_cx.cx_ops <- [];
    ss.spec_cx.cx_node_leaving <- [||];
    ss.spec_cx.cx_roms <- [];
    Array.iter
      (fun ec ->
        ec.flen <- 0;
        ec.op <- None;
        Array.fill ec.memo 0 (Array.length ec.memo) None;
        ec.memo_next <- 0)
      ss.elems;
    Array.fill ss.jig_valid 0 (Array.length ss.jig_valid) false;
    Array.fill ss.jig_vals 0 (Array.length ss.jig_vals) [||];
    Array.fill ss.jig_roms 0 (Array.length ss.jig_roms) [];
    ss.roms_flat <- [];
    ss.roms_flat_valid <- false;
    Array.fill ss.spec_valid 0 (Array.length ss.spec_valid) false;
    Array.fill ss.spec_cache 0 (Array.length ss.spec_cache) None;
    ss.spec_list <- [];
    ss.spec_list_valid <- false;
    ss.ops_list <- [];
    ss.dirty_accum <- 0;
    ss.since_resync <- 0;
    ss.cls <- "";
    ss.c_full <- 0;
    ss.c_incr <- 0;
    ss.c_dirty <- 0;
    ss.c_op_hits <- 0;
    ss.c_op_misses <- 0;
    ss.c_rom_builds <- 0;
    ss.c_rom_reuses <- 0;
    ss.c_spec_evals <- 0;
    ss.c_spec_reuses <- 0;
    ss.c_resyncs <- 0;
    ss.c_mismatches <- 0;
    ss.c_probes <- 0;
    ss.c_probe_rom_builds <- 0;
    ss.c_probe_fallbacks <- 0;
    ss.c_mom_reuses <- 0;
    ss.c_mom_refreshes <- 0;
    Array.fill ss.jig_lin 0 (Array.length ss.jig_lin) None;
    Array.fill ss.jig_fac 0 (Array.length ss.jig_fac) None;
    Array.iter (Array.iter Awe.Moments.cache_clear) ss.jig_mom;
    Array.fill ss.hist 0 (Array.length ss.hist) 0;
    Hashtbl.reset ss.by_class

  let class_counters ss =
    match Hashtbl.find_opt ss.by_class ss.cls with
    | Some k -> k
    | None ->
        let k =
          {
            k_evals = 0;
            k_dirty = 0;
            k_op_hits = 0;
            k_op_misses = 0;
            k_rom_builds = 0;
            k_rom_reuses = 0;
          }
        in
        Hashtbl.add ss.by_class ss.cls k;
        k

  (* Bitwise float equality: the only change detector compatible with a
     bit-identity guarantee (0.0 vs -0.0 and NaN payloads matter). *)
  let feq_bits a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

  let key_eq a b =
    Array.length a = Array.length b
    &&
    let rec go i = i >= Array.length a || (feq_bits a.(i) b.(i) && go (i + 1)) in
    go 0

  let memo_find ss ec key =
    let n = Array.length ec.memo in
    let rec go i =
      if i >= n then None
      else
        match ec.memo.(i) with
        | Some slot when key_eq slot.key key -> Some slot.memo_op
        | Some _ | None -> go (i + 1)
    in
    match go 0 with
    | Some op ->
        ss.c_op_hits <- ss.c_op_hits + 1;
        (class_counters ss).k_op_hits <- (class_counters ss).k_op_hits + 1;
        Some op
    | None ->
        ss.c_op_misses <- ss.c_op_misses + 1;
        (class_counters ss).k_op_misses <- (class_counters ss).k_op_misses + 1;
        None

  let memo_add ec key memo_op =
    if Array.length ec.memo > 0 then begin
      ec.memo.(ec.memo_next) <- Some { key; memo_op };
      ec.memo_next <- (ec.memo_next + 1) mod Array.length ec.memo
    end

  (* Two-terminal flow update, in place: compare against the stored pair
     and only mark the element changed on genuinely new bits. *)
  let set_flow2 ss i ec n1 v1 n2 v2 =
    let changed =
      ec.flen <> 2
      || ec.fn.(0) <> n1
      || (not (feq_bits ec.fv.(0) v1))
      || ec.fn.(1) <> n2
      || not (feq_bits ec.fv.(1) v2)
    in
    if changed then begin
      ec.fn.(0) <- n1;
      ec.fv.(0) <- v1;
      ec.fn.(1) <- n2;
      ec.fv.(1) <- v2;
      ec.flen <- 2;
      ss.elem_changed.(i) <- true
    end

  (* Recompute one element's flow contributions (and operating point for a
     device) with the same arithmetic, in the same order, as [sweep_bias]. *)
  let recompute_elem ss ~force value i (e : Netlist.Circuit.element) =
    let p = ss.sp in
    let nv = ss.nv in
    let ec = ss.elems.(i) in
    match e with
    | Netlist.Circuit.Resistor { n1; n2; value = ve; _ } ->
        let iv = (nv.(n1) -. nv.(n2)) /. value ve in
        set_flow2 ss i ec n1 iv n2 (-.iv)
    | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Vsource _ -> ()
    | Netlist.Circuit.Isource { np; nn; dc; _ } ->
        let iv = value dc in
        set_flow2 ss i ec np iv nn (-.iv)
    | Netlist.Circuit.Vccs { np; nn; ncp; ncn; gm; _ } ->
        let iv = value gm *. (nv.(ncp) -. nv.(ncn)) in
        set_flow2 ss i ec np iv nn (-.iv)
    | Netlist.Circuit.Mosfet { name; d; g; s; b; model; w; l; mult } -> begin
        match Devices.Registry.find_exn p.Problem.registry model with
        | Devices.Sig.Mos { eval; _ } ->
            let key = ec.kscratch in
            key.(0) <- value w;
            key.(1) <- value l;
            key.(2) <- value mult;
            key.(3) <- nv.(d);
            key.(4) <- nv.(g);
            key.(5) <- nv.(s);
            key.(6) <- nv.(b);
            let op_info =
              match memo_find ss ec key with
              | Some op -> op
              | None ->
                  let op =
                    eval ~w:key.(0) ~l:key.(1) ~m:key.(2) ~vd:key.(3) ~vg:key.(4) ~vs:key.(5)
                      ~vb:key.(6)
                  in
                  let oi = Mna.Dc.Mos_op op in
                  memo_add ec (Array.copy key) oi;
                  oi
            in
            let unchanged = match ec.op with Some o -> o == op_info | None -> false in
            if force || not unchanged then begin
              (match op_info with
              | Mna.Dc.Mos_op op ->
                  let open Devices.Sig in
                  ec.fn.(0) <- d;
                  ec.fv.(0) <- op.id_;
                  ec.fn.(1) <- s;
                  ec.fv.(1) <- -.op.id_;
                  ec.fn.(2) <- b;
                  ec.fv.(2) <- op.ibd_ +. op.ibs_;
                  ec.fn.(3) <- d;
                  ec.fv.(3) <- -.op.ibd_;
                  ec.fn.(4) <- s;
                  ec.fv.(4) <- -.op.ibs_;
                  ec.flen <- 5
              | Mna.Dc.Bjt_op _ -> assert false);
              ec.op <- Some op_info;
              ss.elem_changed.(i) <- true
            end
        | Devices.Sig.Bjt _ -> failwith (name ^ ": MOS element with BJT model")
      end
    | Netlist.Circuit.Bjt { name; c; b; e = ne; model; area } -> begin
        match Devices.Registry.find_exn p.Problem.registry model with
        | Devices.Sig.Bjt { eval; _ } ->
            let key = ec.kscratch in
            key.(0) <- value area;
            key.(1) <- nv.(c);
            key.(2) <- nv.(b);
            key.(3) <- nv.(ne);
            let op_info =
              match memo_find ss ec key with
              | Some op -> op
              | None ->
                  let op = eval ~area:key.(0) ~vc:key.(1) ~vb:key.(2) ~ve:key.(3) in
                  let oi = Mna.Dc.Bjt_op op in
                  memo_add ec (Array.copy key) oi;
                  oi
            in
            let unchanged = match ec.op with Some o -> o == op_info | None -> false in
            if force || not unchanged then begin
              (match op_info with
              | Mna.Dc.Bjt_op op ->
                  let open Devices.Sig in
                  ec.fn.(0) <- c;
                  ec.fv.(0) <- op.ic;
                  ec.fn.(1) <- b;
                  ec.fv.(1) <- op.ib;
                  ec.fn.(2) <- ne;
                  ec.fv.(2) <- -.(op.ic +. op.ib);
                  ec.flen <- 3
              | Mna.Dc.Mos_op _ -> assert false);
              ec.op <- Some op_info;
              ss.elem_changed.(i) <- true
            end
        | Devices.Sig.Mos _ -> failwith (name ^ ": BJT element with MOS model")
      end
    | Netlist.Circuit.Inductor { name; _ }
    | Netlist.Circuit.Vcvs { name; _ }
    | Netlist.Circuit.Cccs { name; _ }
    | Netlist.Circuit.Ccvs { name; _ } ->
        failwith (name ^ ": unsupported element in bias network")

  (* Node voltage with the same arithmetic as [node_voltages]. *)
  let node_voltage_of p (st : State.t) env node =
    let base = Problem.node_var_base p in
    match p.Problem.tl.Treelink.of_node.(node) with
    | Treelink.Fixed e -> Netlist.Expr.eval env e
    | Treelink.Free (k, off) -> st.State.values.(base + k) +. Netlist.Expr.eval env off

  (* Re-check a jig's value expressions against the bits recorded when its
     ROM list was built; different bits drop the cached list. *)
  let check_jig_vals ss env j =
    if ss.jig_valid.(j) then begin
      let vals = ss.jig_vals.(j) in
      let same = ref (Array.length vals > 0 || ss.dg.Problem.dg_jig_exprs.(j) = []) in
      let k = ref 0 in
      List.iter
        (fun e ->
          let v = try Netlist.Expr.eval env e with _ -> Float.nan in
          if !k >= Array.length vals || not (feq_bits vals.(!k) v) then same := false;
          incr k)
        ss.dg.Problem.dg_jig_exprs.(j);
      if not !same then begin
        ss.jig_valid.(j) <- false;
        ss.roms_flat_valid <- false
      end
    end

  (* Exact rebuild of one jig's ROM list: the same arithmetic and error
     shape as [roms_for_jig] ([Rom.build_with] is [Moments.compute_with]
     followed by [Rom.of_moments], and [compute_record] shares the
     recurrence code with [compute_with] bit for bit) — but it retains
     the stamped system, its factorization and the per-tf moment vectors
     for the probe path. *)
  let exact_count = (2 * 6) + 2 (* matches [Rom.build_with]'s default qmax *)

  let rebuild_jig_exact ss j ~value ~ops (jig : Problem.jig) =
    let caches = ss.jig_mom.(j) in
    (* Recorded vectors belong to the system about to be replaced; a tf
       that fails below must not leave them to be served by a probe. *)
    Array.iter Awe.Moments.cache_clear caches;
    match Mna.Linearize.build ~value ~ops jig.Problem.jig_circuit with
    | exception Failure m ->
        ss.jig_lin.(j) <- None;
        ss.jig_fac.(j) <- None;
        List.map (fun (tfname, _) -> (tfname, Error m)) jig.Problem.tfs
    | lin ->
        let fac = Awe.Moments.factor lin in
        ss.jig_lin.(j) <- Some lin;
        ss.jig_fac.(j) <- Some fac;
        List.mapi
          (fun ti (tfname, (tf : Problem.tf)) ->
            let rom =
              try
                let b = Mna.Linearize.excitation_of lin ~src:tf.src in
                let sel = Mna.Linearize.output_vector lin ~pos:tf.out_pos ~neg:tf.out_neg in
                let m = Awe.Moments.compute_record fac caches.(ti) ~b ~sel ~count:exact_count in
                Awe.Rom.of_moments m
              with
              | Failure m -> Error m
              | La.Lu.Singular _ -> Error "singular AWE system"
            in
            (tfname, rom))
          jig.Problem.tfs

  (* Bring the bias slice (node voltages, element flows and operating
     points, KCL residuals) up to date with [st], marking dependent jigs
     and specs stale along the way. *)
  let sync ss (st : State.t) =
    let p = ss.sp in
    let n_vars = Array.length ss.last_values in
    let n_elems = Array.length ss.elems in
    try
      let force = not ss.primed in
      ss.cur_st := st;
      let env = ss.venv in
      let value e = Netlist.Expr.eval env e in
      Array.fill ss.elem_changed 0 n_elems false;
      Array.fill ss.elem_dirty 0 n_elems force;
      (* dirty variables collect in [dirty_buf], ascending *)
      let ndirty = ref 0 in
      if force then begin
        for v = 0 to n_vars - 1 do
          ss.dirty_buf.(v) <- v
        done;
        ndirty := n_vars;
        Array.iteri (fun node _ -> ss.nv.(node) <- node_voltage_of p st env node) ss.nv;
        Array.fill ss.jig_valid 0 (Array.length ss.jig_valid) false;
        ss.roms_flat_valid <- false;
        Array.fill ss.spec_valid 0 (Array.length ss.spec_valid) false
      end
      else begin
        for v = 0 to n_vars - 1 do
          if not (feq_bits ss.last_values.(v) st.State.values.(v)) then begin
            ss.dirty_buf.(!ndirty) <- v;
            incr ndirty
          end
        done;
        (* dirty vars -> nodes: recompute, and only a node whose voltage
           actually changed bits dirties the elements on it *)
        let ntouched = ref 0 in
        for di = 0 to !ndirty - 1 do
          let v = ss.dirty_buf.(di) in
          List.iter
            (fun node ->
              if not ss.node_seen.(node) then begin
                ss.node_seen.(node) <- true;
                ss.touched_buf.(!ntouched) <- node;
                incr ntouched;
                let fresh = node_voltage_of p st env node in
                if not (feq_bits fresh ss.nv.(node)) then begin
                  ss.nv.(node) <- fresh;
                  List.iter (fun e -> ss.elem_dirty.(e) <- true) ss.dg.Problem.dg_node_elems.(node)
                end
              end)
            ss.dg.Problem.dg_var_nodes.(v);
          List.iter (fun e -> ss.elem_dirty.(e) <- true) ss.dg.Problem.dg_var_elems.(v)
        done;
        for k = 0 to !ntouched - 1 do
          ss.node_seen.(ss.touched_buf.(k)) <- false
        done
      end;
      ss.dirty_accum <- ss.dirty_accum + !ndirty;
      (* Recompute dirty elements; [elem_changed] ends up true only where
         the contribution (or operating point) has genuinely new bits. *)
      Array.iteri
        (fun i e -> if ss.elem_dirty.(i) then recompute_elem ss ~force value i e)
        p.Problem.bias.Netlist.Circuit.elements;
      let any_changed = force || Array.exists Fun.id ss.elem_changed in
      if any_changed then begin
        (* Re-fold the node-current accumulators from zero over all
           elements in element order: the same addition sequence as
           [sweep_bias], so clean totals keep their exact bits. *)
        Array.fill ss.cur 0 (Array.length ss.cur) 0.0;
        Array.fill ss.mag 0 (Array.length ss.mag) 0.0;
        Array.iter
          (fun ec ->
            for k = 0 to ec.flen - 1 do
              let node = ec.fn.(k) and i = ec.fv.(k) in
              ss.cur.(node) <- ss.cur.(node) +. i;
              ss.mag.(node) <- ss.mag.(node) +. Float.abs i
            done)
          ss.elems;
        group_residuals_into p ss.cur ss.mag ss.residuals ss.res_scale;
        let ops = ref [] in
        for i = n_elems - 1 downto 0 do
          match ss.elems.(i).op with
          | Some op -> ops := (ss.elems.(i).ec_name, op) :: !ops
          | None -> ()
        done;
        ss.ops_list <- !ops;
        (* changed elements invalidate dependent jigs and specs *)
        Array.iteri
          (fun i changed ->
            if changed then begin
              List.iter
                (fun j ->
                  ss.jig_valid.(j) <- false;
                  ss.roms_flat_valid <- false)
                ss.dg.Problem.dg_elem_jigs.(i);
              List.iter (fun s -> ss.spec_valid.(s) <- false) ss.elem_specs.(i)
            end)
          ss.elem_changed
      end;
      if not force then
        for di = 0 to !ndirty - 1 do
          let v = ss.dirty_buf.(di) in
          List.iter (fun j -> check_jig_vals ss env j) ss.dg.Problem.dg_var_jigs.(v);
          List.iter (fun s -> ss.spec_valid.(s) <- false) ss.var_specs.(v)
        done;
      Array.blit st.State.values 0 ss.last_values 0 n_vars;
      ss.primed <- true
    with e ->
      ss.primed <- false;
      raise e

  let residuals_quick ss st =
    sync ss st;
    Array.copy ss.residuals

  let bias_view ss st =
    sync ss st;
    (ss.nv, ss.ops_list)

  let measure_with ss (st : State.t) =
    let p = ss.sp in
    sync ss st;
    let bp =
      {
        node_v = Array.copy ss.nv;
        ops = ss.ops_list;
        residuals = Array.copy ss.residuals;
        res_scale = Array.copy ss.res_scale;
        node_leaving = Array.copy ss.cur;
      }
    in
    (* Rebuild the ROM lists of stale jigs only; a rebuilt jig re-measures
       the specs that read it. *)
    let kk = class_counters ss in
    (if Array.exists (fun v -> not v) ss.jig_valid then begin
       let value e = Netlist.Expr.eval ss.venv e in
       let ops name = List.assoc_opt name bp.ops in
       List.iteri
         (fun j jig ->
           if not ss.jig_valid.(j) then begin
             ss.jig_roms.(j) <- rebuild_jig_exact ss j ~value ~ops jig;
             ss.jig_vals.(j) <-
               Array.of_list
                 (List.map
                    (fun e -> try value e with _ -> Float.nan)
                    ss.dg.Problem.dg_jig_exprs.(j));
             ss.jig_valid.(j) <- true;
             ss.roms_flat_valid <- false;
             List.iter (fun s -> ss.spec_valid.(s) <- false) ss.jig_specs.(j);
             ss.c_rom_builds <- ss.c_rom_builds + 1;
             kk.k_rom_builds <- kk.k_rom_builds + 1
           end
           else begin
             ss.c_rom_reuses <- ss.c_rom_reuses + 1;
             kk.k_rom_reuses <- kk.k_rom_reuses + 1
           end)
         p.Problem.jigs
     end
     else begin
       let n = Array.length ss.jig_valid in
       ss.c_rom_reuses <- ss.c_rom_reuses + n;
       kk.k_rom_reuses <- kk.k_rom_reuses + n
     end);
    if not ss.roms_flat_valid then begin
      ss.roms_flat <- List.concat (Array.to_list ss.jig_roms);
      ss.roms_flat_valid <- true
    end;
    let roms = ss.roms_flat in
    (* Re-measure stale specs with the session's persistent environment —
       the same arithmetic as the env the full evaluator builds, pointed
       at this evaluation's bias solution. *)
    let cx = ss.spec_cx in
    cx.cx_st <- st;
    cx.cx_nv <- bp.node_v;
    cx.cx_ops <- bp.ops;
    cx.cx_node_leaving <- bp.node_leaving;
    cx.cx_roms <- roms;
    let env = ss.spec_envv in
    (* Corner rows bypass the session caches entirely: the same full
       recompute the from-scratch evaluator does, so both paths agree bit
       for bit. (sd_always keeps them permanently stale below.) *)
    let corner_vals =
      if p.Problem.corner_regs = [] then [] else corner_spec_values p st
    in
    let spec_changed = ref (not ss.spec_list_valid) in
    List.iteri
      (fun i (s : Problem.spec) ->
        let sd = ss.dg.Problem.dg_spec_deps.(i) in
        if sd.Problem.sd_always || not ss.spec_valid.(i) then begin
          let v =
            match s.Problem.spec_corner with
            | None -> measure_spec env s
            | Some _ -> (
                match List.assoc_opt s.Problem.spec_name corner_vals with
                | Some v -> v
                | None -> None)
          in
          (match (ss.spec_cache.(i), v) with
          | Some a, Some b when feq_bits a b -> ()
          | None, None -> ()
          | _ -> spec_changed := true);
          ss.spec_cache.(i) <- v;
          ss.spec_valid.(i) <- true;
          ss.c_spec_evals <- ss.c_spec_evals + 1
        end
        else ss.c_spec_reuses <- ss.c_spec_reuses + 1)
      p.Problem.specs;
    (* The association list handed out is immutable, so it is shared
       across evaluations until some spec value changes bits. *)
    if !spec_changed then begin
      ss.spec_list <-
        List.mapi
          (fun i (s : Problem.spec) -> (s.Problem.spec_name, ss.spec_cache.(i)))
          p.Problem.specs;
      ss.spec_list_valid <- true
    end;
    { bias = bp; roms; spec_values = ss.spec_list }

  let cost ss (w : Weights.t) (st : State.t) =
    let was_primed = ss.primed in
    ss.dirty_accum <- 0;
    let m = measure_with ss st in
    let bd = breakdown_of ss.sp w st m in
    let kk = class_counters ss in
    kk.k_evals <- kk.k_evals + 1;
    kk.k_dirty <- kk.k_dirty + ss.dirty_accum;
    if was_primed then begin
      ss.c_incr <- ss.c_incr + 1;
      ss.c_dirty <- ss.c_dirty + ss.dirty_accum;
      ss.hist.(Int.min ss.dirty_accum (Array.length ss.hist - 1)) <-
        ss.hist.(Int.min ss.dirty_accum (Array.length ss.hist - 1)) + 1
    end
    else ss.c_full <- ss.c_full + 1;
    (* Periodic resync: recompute from scratch, compare bitwise, count
       and recover from any divergence. *)
    ss.since_resync <- ss.since_resync + 1;
    if was_primed && ss.since_resync >= ss.resync_every then begin
      ss.since_resync <- 0;
      ss.c_resyncs <- ss.c_resyncs + 1;
      let full = cost ss.sp w st in
      ss.c_full <- ss.c_full + 1;
      if
        not
          (feq_bits full.total bd.total && feq_bits full.c_obj bd.c_obj
          && feq_bits full.c_perf bd.c_perf && feq_bits full.c_dev bd.c_dev
          && feq_bits full.c_dc bd.c_dc)
      then begin
        ss.c_mismatches <- ss.c_mismatches + 1;
        ss.primed <- false;
        full
      end
      else bd
    end
    else bd

  let cost_scalar ss w st = (cost ss w st).total

  (* ---------------- candidate-move probe path ---------------- *)

  (* Probe-side element evaluation: the same device arithmetic as
     [recompute_elem], but reading the probe node voltages and writing
     the flow into the [pf_n]/[pf_v] scratch so the exact per-element
     caches stay untouched. The operating-point memo IS shared: a
     memoized op is a pure function of the exact key bits, so probe
     lookups and inserts cannot perturb the exact path — they only warm
     the memo for the confirm evaluation of whichever candidate wins.
     Returns the flow length; a device's probe op lands in [p_ops]. *)
  let probe_elem_flows ss value i (e : Netlist.Circuit.element) =
    let p = ss.sp in
    let nv = ss.p_nv in
    let ec = ss.elems.(i) in
    match e with
    | Netlist.Circuit.Resistor { n1; n2; value = ve; _ } ->
        let iv = (nv.(n1) -. nv.(n2)) /. value ve in
        ss.pf_n.(0) <- n1;
        ss.pf_v.(0) <- iv;
        ss.pf_n.(1) <- n2;
        ss.pf_v.(1) <- -.iv;
        2
    | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Vsource _ -> 0
    | Netlist.Circuit.Isource { np; nn; dc; _ } ->
        let iv = value dc in
        ss.pf_n.(0) <- np;
        ss.pf_v.(0) <- iv;
        ss.pf_n.(1) <- nn;
        ss.pf_v.(1) <- -.iv;
        2
    | Netlist.Circuit.Vccs { np; nn; ncp; ncn; gm; _ } ->
        let iv = value gm *. (nv.(ncp) -. nv.(ncn)) in
        ss.pf_n.(0) <- np;
        ss.pf_v.(0) <- iv;
        ss.pf_n.(1) <- nn;
        ss.pf_v.(1) <- -.iv;
        2
    | Netlist.Circuit.Mosfet { name; d; g; s; b; model; w; l; mult } -> begin
        match Devices.Registry.find_exn p.Problem.registry model with
        | Devices.Sig.Mos { eval; _ } ->
            let key = ec.kscratch in
            key.(0) <- value w;
            key.(1) <- value l;
            key.(2) <- value mult;
            key.(3) <- nv.(d);
            key.(4) <- nv.(g);
            key.(5) <- nv.(s);
            key.(6) <- nv.(b);
            let op_info =
              match memo_find ss ec key with
              | Some op -> op
              | None ->
                  let op =
                    eval ~w:key.(0) ~l:key.(1) ~m:key.(2) ~vd:key.(3) ~vg:key.(4) ~vs:key.(5)
                      ~vb:key.(6)
                  in
                  let oi = Mna.Dc.Mos_op op in
                  memo_add ec (Array.copy key) oi;
                  oi
            in
            ss.p_ops.(i) <- Some op_info;
            (match op_info with
            | Mna.Dc.Mos_op op ->
                let open Devices.Sig in
                ss.pf_n.(0) <- d;
                ss.pf_v.(0) <- op.id_;
                ss.pf_n.(1) <- s;
                ss.pf_v.(1) <- -.op.id_;
                ss.pf_n.(2) <- b;
                ss.pf_v.(2) <- op.ibd_ +. op.ibs_;
                ss.pf_n.(3) <- d;
                ss.pf_v.(3) <- -.op.ibd_;
                ss.pf_n.(4) <- s;
                ss.pf_v.(4) <- -.op.ibs_;
                5
            | Mna.Dc.Bjt_op _ -> assert false)
        | Devices.Sig.Bjt _ -> failwith (name ^ ": MOS element with BJT model")
      end
    | Netlist.Circuit.Bjt { name; c; b; e = ne; model; area } -> begin
        match Devices.Registry.find_exn p.Problem.registry model with
        | Devices.Sig.Bjt { eval; _ } ->
            let key = ec.kscratch in
            key.(0) <- value area;
            key.(1) <- nv.(c);
            key.(2) <- nv.(b);
            key.(3) <- nv.(ne);
            let op_info =
              match memo_find ss ec key with
              | Some op -> op
              | None ->
                  let op = eval ~area:key.(0) ~vc:key.(1) ~vb:key.(2) ~ve:key.(3) in
                  let oi = Mna.Dc.Bjt_op op in
                  memo_add ec (Array.copy key) oi;
                  oi
            in
            ss.p_ops.(i) <- Some op_info;
            (match op_info with
            | Mna.Dc.Bjt_op op ->
                let open Devices.Sig in
                ss.pf_n.(0) <- c;
                ss.pf_v.(0) <- op.ic;
                ss.pf_n.(1) <- b;
                ss.pf_v.(1) <- op.ib;
                ss.pf_n.(2) <- ne;
                ss.pf_v.(2) <- -.(op.ic +. op.ib);
                3
            | Mna.Dc.Mos_op _ -> assert false)
        | Devices.Sig.Mos _ -> failwith (name ^ ": BJT element with MOS model")
      end
    | Netlist.Circuit.Inductor { name; _ }
    | Netlist.Circuit.Vcvs { name; _ }
    | Netlist.Circuit.Cccs { name; _ }
    | Netlist.Circuit.Ccvs { name; _ } ->
        failwith (name ^ ": unsupported element in bias network")

  (* Probe ROMs fit at a reduced order: half the moments of the exact
     path is plenty to rank candidates, and the cost of the recurrence is
     linear in the moment count. *)
  let probe_qmax = 3
  let probe_count = (2 * probe_qmax) + 2

  (* Fresh probe-side fit when no retained factorization serves (the jig
     never built exactly, or the low-rank guard refused the update). *)
  let probe_jig_fresh (jig : Problem.jig) ~value ~ops =
    match Mna.Linearize.build ~value ~ops jig.Problem.jig_circuit with
    | exception Failure m -> List.map (fun (tfname, _) -> (tfname, Error m)) jig.Problem.tfs
    | lin -> begin
        match Awe.Moments.factor lin with
        | exception La.Lu.Singular _ ->
            List.map (fun (tfname, _) -> (tfname, Error "singular AWE system")) jig.Problem.tfs
        | fac ->
            List.map
              (fun (tfname, (tf : Problem.tf)) ->
                let rom =
                  try
                    let b = Mna.Linearize.excitation_of lin ~src:tf.src in
                    let sel = Mna.Linearize.output_vector lin ~pos:tf.out_pos ~neg:tf.out_neg in
                    Awe.Rom.build_with ~qmax:probe_qmax fac ~b ~sel
                  with
                  | Failure m -> Error m
                  | La.Lu.Singular _ -> Error "singular AWE system"
                in
                (tfname, rom))
              jig.Problem.tfs
      end

  (* Probe ROM list of one touched jig: restamp against the retained
     layout, diff the matrices bitwise, and solve the moment recurrence
     through the retained factorization plus a low-rank update — falling
     back to a fresh (still reduced-order) factorization when the guard
     refuses. *)
  let probe_jig_roms ss j (jig : Problem.jig) ~value ~ops =
    ss.c_probe_rom_builds <- ss.c_probe_rom_builds + 1;
    match (ss.jig_lin.(j), ss.jig_fac.(j)) with
    | Some lin_old, Some fac -> begin
        match
          Mna.Linearize.stamp_reuse ~idx:lin_old.Mna.Linearize.idx ~value ~ops
            jig.Problem.jig_circuit
        with
        | exception Failure m -> List.map (fun (tfname, _) -> (tfname, Error m)) jig.Problem.tfs
        | lin_new -> begin
            match
              Awe.Moments.prepare_update fac ~g_old:lin_old.Mna.Linearize.g
                ~g_new:lin_new.Mna.Linearize.g ~c_old:lin_old.Mna.Linearize.c
                ~c_new:lin_new.Mna.Linearize.c
            with
            | Ok u ->
                let caches = ss.jig_mom.(j) in
                List.mapi
                  (fun ti (tfname, (tf : Problem.tf)) ->
                    let rom =
                      try
                        let b = Mna.Linearize.excitation_of lin_new ~src:tf.src in
                        let sel =
                          Mna.Linearize.output_vector lin_new ~pos:tf.out_pos ~neg:tf.out_neg
                        in
                        let m, kind =
                          Awe.Moments.compute_probe u caches.(ti) ~b ~sel ~count:probe_count
                        in
                        (match kind with
                        | `Reused -> ss.c_mom_reuses <- ss.c_mom_reuses + 1
                        | `Refreshed -> ss.c_mom_refreshes <- ss.c_mom_refreshes + 1
                        | `Updated -> ());
                        Awe.Rom.of_moments ~qmax:probe_qmax m
                      with
                      | Failure m -> Error m
                      | La.Lu.Singular _ -> Error "singular AWE system"
                    in
                    (tfname, rom))
                  jig.Problem.tfs
            | Error _ ->
                ss.c_probe_fallbacks <- ss.c_probe_fallbacks + 1;
                probe_jig_fresh jig ~value ~ops
          end
      end
    | _ ->
        ss.c_probe_fallbacks <- ss.c_probe_fallbacks + 1;
        probe_jig_fresh jig ~value ~ops

  (* Screening cost of a candidate state: approximate by design (probe
     ROMs are reduced-order and solved through low-rank updates), cheap by
     construction (only the slice a candidate touches is recomputed, into
     the p_* scratch arrays). Nothing the probe writes is read by the
     exact path: the only shared mutable structures it touches are the
     operating-point memo (pure function of key bits) and the probe
     counters. The annealer uses this to rank candidates; the winner is
     confirmed through [cost], which alone feeds accepted state. *)
  let probe_cost ss (w : Weights.t) (st : State.t) =
    if not ss.primed then (cost ss w st).total
    else begin
      ss.c_probes <- ss.c_probes + 1;
      let p = ss.sp in
      let n_vars = Array.length ss.last_values in
      let n_nodes = Array.length ss.nv in
      let n_elems = Array.length ss.elems in
      ss.cur_st := st;
      let env = ss.venv in
      let value e = Netlist.Expr.eval env e in
      Array.fill ss.p_elem_dirty 0 n_elems false;
      Array.fill ss.p_jig_dirty 0 (Array.length ss.p_jig_dirty) false;
      Array.fill ss.p_spec_stale 0 (Array.length ss.p_spec_stale) false;
      Array.fill ss.p_ops 0 n_elems None;
      Array.blit ss.nv 0 ss.p_nv 0 n_nodes;
      (* candidate-dirty variables, and the nodes/elements/jigs/specs they
         reach — the same depgraph walk as [sync], on probe scratch *)
      let ndirty = ref 0 in
      for v = 0 to n_vars - 1 do
        if not (feq_bits ss.last_values.(v) st.State.values.(v)) then begin
          ss.dirty_buf.(!ndirty) <- v;
          incr ndirty
        end
      done;
      let ntouched = ref 0 in
      for di = 0 to !ndirty - 1 do
        let v = ss.dirty_buf.(di) in
        List.iter
          (fun node ->
            if not ss.node_seen.(node) then begin
              ss.node_seen.(node) <- true;
              ss.touched_buf.(!ntouched) <- node;
              incr ntouched;
              let fresh = node_voltage_of p st env node in
              if not (feq_bits fresh ss.p_nv.(node)) then begin
                ss.p_nv.(node) <- fresh;
                List.iter (fun e -> ss.p_elem_dirty.(e) <- true) ss.dg.Problem.dg_node_elems.(node)
              end
            end)
          ss.dg.Problem.dg_var_nodes.(v);
        List.iter (fun e -> ss.p_elem_dirty.(e) <- true) ss.dg.Problem.dg_var_elems.(v);
        List.iter (fun j -> ss.p_jig_dirty.(j) <- true) ss.dg.Problem.dg_var_jigs.(v);
        List.iter (fun s -> ss.p_spec_stale.(s) <- true) ss.var_specs.(v)
      done;
      for k = 0 to !ntouched - 1 do
        ss.node_seen.(ss.touched_buf.(k)) <- false
      done;
      (* Flows: start from the accepted accumulators and retract/re-add
         only the dirty elements. The fold order differs from the exact
         path's from-zero re-fold — screening tolerates the last-bit
         difference, confirmation does not go through here. *)
      Array.blit ss.cur 0 ss.p_cur 0 n_nodes;
      Array.blit ss.mag 0 ss.p_mag 0 n_nodes;
      let ops_changed = ref false in
      Array.iteri
        (fun i e ->
          if ss.p_elem_dirty.(i) then begin
            let ec = ss.elems.(i) in
            for k = 0 to ec.flen - 1 do
              let node = ec.fn.(k) and iv = ec.fv.(k) in
              ss.p_cur.(node) <- ss.p_cur.(node) -. iv;
              ss.p_mag.(node) <- ss.p_mag.(node) -. Float.abs iv
            done;
            let plen = probe_elem_flows ss value i e in
            for k = 0 to plen - 1 do
              let node = ss.pf_n.(k) and iv = ss.pf_v.(k) in
              ss.p_cur.(node) <- ss.p_cur.(node) +. iv;
              ss.p_mag.(node) <- ss.p_mag.(node) +. Float.abs iv
            done;
            (match ss.p_ops.(i) with
            | Some oi -> (
                match ec.op with Some o when o == oi -> () | Some _ | None -> ops_changed := true)
            | None -> ());
            List.iter (fun j -> ss.p_jig_dirty.(j) <- true) ss.dg.Problem.dg_elem_jigs.(i);
            List.iter (fun s -> ss.p_spec_stale.(s) <- true) ss.elem_specs.(i)
          end)
        p.Problem.bias.Netlist.Circuit.elements;
      group_residuals_into p ss.p_cur ss.p_mag ss.p_residuals ss.p_res_scale;
      (* ops list: shared with the accepted state unless some operating
         point actually moved *)
      let ops_list =
        if not !ops_changed then ss.ops_list
        else begin
          let ops = ref [] in
          for i = n_elems - 1 downto 0 do
            let ec = ss.elems.(i) in
            match ss.p_ops.(i) with
            | Some op -> ops := (ec.ec_name, op) :: !ops
            | None -> (
                match ec.op with Some op -> ops := (ec.ec_name, op) :: !ops | None -> ())
          done;
          !ops
        end
      in
      (* jig ROMs: cached exact list when untouched, probe fit otherwise *)
      let ops name = List.assoc_opt name ops_list in
      let roms =
        List.concat
          (List.mapi
             (fun j jig ->
               if ss.p_jig_dirty.(j) || not ss.jig_valid.(j) then probe_jig_roms ss j jig ~value ~ops
               else ss.jig_roms.(j))
             p.Problem.jigs)
      in
      Array.iteri
        (fun j dirty ->
          if dirty || not ss.jig_valid.(j) then
            List.iter (fun s -> ss.p_spec_stale.(s) <- true) ss.jig_specs.(j))
        ss.p_jig_dirty;
      (* specs: the persistent environment, repointed at the probe arrays;
         [measure_with] repoints every field again before any exact use *)
      let cx = ss.spec_cx in
      cx.cx_st <- st;
      cx.cx_nv <- ss.p_nv;
      cx.cx_ops <- ops_list;
      cx.cx_node_leaving <- ss.p_cur;
      cx.cx_roms <- roms;
      let senv = ss.spec_envv in
      let spec_values =
        List.mapi
          (fun i (s : Problem.spec) ->
            let sd = ss.dg.Problem.dg_spec_deps.(i) in
            let v =
              (* Corner and transient rows are served from the last exact
                 value: re-simulating them per candidate would dominate
                 the screen, and ranking tolerates the approximation —
                 every accepted state is confirmed through [cost]. *)
              if ss.spec_screened.(i) then ss.spec_cache.(i)
              else if sd.Problem.sd_always || ss.p_spec_stale.(i) || not ss.spec_valid.(i) then
                measure_spec senv s
              else ss.spec_cache.(i)
            in
            (s.Problem.spec_name, v))
          p.Problem.specs
      in
      let bp =
        {
          node_v = ss.p_nv;
          ops = ops_list;
          residuals = ss.p_residuals;
          res_scale = ss.p_res_scale;
          node_leaving = ss.p_cur;
        }
      in
      (breakdown_of p w st { bias = bp; roms; spec_values }).total
    end

  let stats ss =
    let by_class =
      Hashtbl.fold
        (fun cls (k : counters) acc ->
          {
            cr_class = (if cls = "" then "(none)" else cls);
            cr_evals = k.k_evals;
            cr_dirty_vars = k.k_dirty;
            cr_op_hits = k.k_op_hits;
            cr_op_misses = k.k_op_misses;
            cr_rom_builds = k.k_rom_builds;
            cr_rom_reuses = k.k_rom_reuses;
          }
          :: acc)
        ss.by_class []
      |> List.sort (fun a b -> String.compare a.cr_class b.cr_class)
    in
    {
      full_evals = ss.c_full;
      incr_evals = ss.c_incr;
      dirty_vars = ss.c_dirty;
      op_hits = ss.c_op_hits;
      op_misses = ss.c_op_misses;
      rom_builds = ss.c_rom_builds;
      rom_reuses = ss.c_rom_reuses;
      spec_evals = ss.c_spec_evals;
      spec_reuses = ss.c_spec_reuses;
      resyncs = ss.c_resyncs;
      resync_mismatches = ss.c_mismatches;
      probes = ss.c_probes;
      probe_rom_builds = ss.c_probe_rom_builds;
      probe_fallbacks = ss.c_probe_fallbacks;
      mom_reuses = ss.c_mom_reuses;
      mom_refreshes = ss.c_mom_refreshes;
      dirty_hist = Array.copy ss.hist;
      by_class;
    }

  let problem ss = ss.sp
end
