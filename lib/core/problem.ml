(* The compiled synthesis problem: everything ASTRX produces from the
   input description, ready for OBLX to solve. *)

type tf = { out_pos : int; out_neg : int option; src : string }

type jig = {
  jig_name : string;
  jig_circuit : Netlist.Circuit.t;  (** template-expanded *)
  tfs : (string * tf) list;  (** transfer-function name -> ports *)
  jig_tran : Netlist.Ast.tran_card option;
      (** fixed-step transient budget for slew/settling measurements *)
}

type spec = {
  spec_name : string;
  kind : Netlist.Ast.goal_kind;
  expr : Netlist.Expr.t;
  good : float;
  bad : float;
  spec_corner : string option;
      (** when set, measure this row with the registry skewed to the named
          process corner — a robustness penalty term in the cost *)
}

(* Static dependency graph over the compiled problem, emitted by ASTRX
   alongside the evaluator itself: optimization variable -> affected bias
   nodes -> affected elements (device operating points, KCL flows) ->
   affected test jigs (AWE models) and cost terms. [Eval.Incr] walks it to
   re-evaluate only the slice of the cost function a move touched.

   All edge lists are conservative over-approximations: an edge too many
   costs a redundant recompute, an edge too few would break the
   bit-identity guarantee — [Depgraph.analyze] therefore maps any
   unresolvable reference onto every variable. *)
type spec_deps = {
  sd_always : bool;
      (** re-measure on every evaluation (area/power/supply_current, or an
          unresolvable reference) *)
  sd_vars : int list;  (** variable indices the spec expression reads *)
  sd_elems : int list;  (** bias elements whose operating point it reads *)
  sd_jigs : int list;  (** jigs whose transfer functions it measures *)
}

type depgraph = {
  dg_var_nodes : int list array;
      (** variable index -> bias nodes whose voltage depends on it *)
  dg_node_elems : int list array;  (** bias node -> elements touching it *)
  dg_var_elems : int list array;
      (** variable -> elements whose value expressions read it *)
  dg_elem_jigs : int list array;
      (** bias element -> jigs that take its operating point *)
  dg_var_jigs : int list array;
      (** variable -> jigs whose own element values read it *)
  dg_jig_exprs : Netlist.Expr.t list array;
      (** jig -> value expressions its linearization evaluates *)
  dg_spec_deps : spec_deps array;  (** per spec, in spec order *)
}

(* The Table-1 row: what ASTRX's analysis of the problem produced. *)
type analysis = {
  input_netlist_lines : int;
  input_synth_lines : int;
  n_user_vars : int;
  n_node_vars : int;
  n_cost_terms : int;
  lines_of_c : int;  (** size of the generated evaluator, C-lines metric *)
  bias_nodes : int;
  bias_elements : int;
  awe_circuits : (string * int * int) list;  (** jig, nodes, elements *)
}

type t = {
  title : string;
  registry : Devices.Registry.t;
  params : (string * Netlist.Expr.t) list;
  state0 : State.t;
  bias : Netlist.Circuit.t;  (** template-expanded bias network *)
  tl : Treelink.t;
  jigs : jig list;
  specs : spec list;
  corner_regs : (string * Devices.Registry.t) list;
      (** registries for the corners named by [spec_corner] rows, resolved
          at compile time so corner rows never recompile in the loop *)
  regions : (string * Netlist.Ast.region_req) list;
  analysis : analysis;
  deps : depgraph;
}

let n_user_vars t = t.analysis.n_user_vars

(* Variable index of the first node-voltage variable. *)
let node_var_base t = t.analysis.n_user_vars

let find_spec t name = List.find_opt (fun s -> s.spec_name = name) t.specs
