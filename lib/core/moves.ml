type t = {
  p : Problem.t;
  session : Eval.Incr.session option;
      (* shared incremental-eval session: NR moves read residuals and
         device operating points from its caches *)
  range : Anneal.Range.t;
  max_step : float array;
  discrete : int array;  (** indices of discrete vars *)
  continuous : int array;  (** indices of continuous vars (user + node) *)
  user_cont : int array;  (** continuous user vars *)
  node_vars : int array;  (** indices of node-voltage vars *)
  mutable last_var : int;  (** variable touched by the last move, -1 = none *)
}

let classes = [| "user-disc"; "user-cont"; "node-v"; "nr-partial"; "nr-full"; "multi" |]

(* Classes eligible for batched candidate screening: the cheap state
   perturbations. The Newton-Raphson classes pay for exact residual and
   Jacobian solves while PROPOSING, so screening them would spend the
   expensive part k times to save one evaluation. *)
let screenable = [| true; true; true; false; false; true |]

let make ?session (p : Problem.t) =
  let st = p.Problem.state0 in
  let n = State.n_vars st in
  let initial = Array.make n 0.0 in
  let min_step = Array.make n 0.0 in
  let max_step = Array.make n 0.0 in
  let discrete = ref [] and continuous = ref [] and node_vars = ref [] in
  Array.iteri
    (fun i info ->
      match info with
      | State.User { steps = Some s; _ } ->
          discrete := i :: !discrete;
          initial.(i) <- Float.max 1.0 (float_of_int s /. 8.0);
          min_step.(i) <- 0.51;
          max_step.(i) <- Float.max 1.0 (float_of_int s /. 2.0)
      | State.User { vmin; vmax; steps = None; _ } ->
          continuous := i :: !continuous;
          let span = vmax -. vmin in
          initial.(i) <- span /. 10.0;
          min_step.(i) <- span *. 1e-8;
          max_step.(i) <- span /. 2.0
      | State.Node_voltage { vmin; vmax; _ } ->
          continuous := i :: !continuous;
          node_vars := i :: !node_vars;
          let span = vmax -. vmin in
          initial.(i) <- span /. 10.0;
          min_step.(i) <- 1e-7;
          max_step.(i) <- span /. 2.0)
    st.State.info;
  let continuous = Array.of_list (List.rev !continuous) in
  let node_vars = Array.of_list (List.rev !node_vars) in
  let user_cont =
    Array.of_seq
      (Seq.filter (fun i -> not (Array.mem i node_vars)) (Array.to_seq continuous))
  in
  {
    p;
    session;
    range = Anneal.Range.create ~n ~initial ~min_step ~max_step;
    max_step;
    discrete = Array.of_list (List.rev !discrete);
    continuous;
    user_cont;
    node_vars;
    last_var = -1;
  }

(* --- Newton-Raphson over the free node voltages. --- *)

(* Assemble the Jacobian d(residual_k)/d(x_l) of the grouped KCL residuals
   with respect to the node-voltage variables, at the current state. *)
let bias_jacobian_with (p : Problem.t) (st : State.t) ~nv ~op_of =
  let tl = p.Problem.tl in
  let nf = tl.Treelink.n_free in
  let j = La.Mat.create nf nf in
  let env = Eval.value_env p st in
  let value e = Netlist.Expr.eval env e in
  let var_of node =
    match tl.Treelink.of_node.(node) with
    | Treelink.Free (k, _) -> Some k
    | Treelink.Fixed _ -> None
  in
  (* d(current leaving [row_node])/d(v[col_node]) += g *)
  let add row_node col_node g =
    match (var_of row_node, var_of col_node) with
    | Some r, Some c -> La.Mat.add_to j r c g
    | Some _, None | None, Some _ | None, None -> ()
  in
  let pair n1 n2 g =
    (* conductance-like element between n1 and n2 *)
    add n1 n1 g;
    add n1 n2 (-.g);
    add n2 n1 (-.g);
    add n2 n2 g
  in
  Array.iter
    (fun (e : Netlist.Circuit.element) ->
      match e with
      | Netlist.Circuit.Resistor { n1; n2; value = ve; _ } -> pair n1 n2 (1.0 /. value ve)
      | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Vsource _ | Netlist.Circuit.Isource _ -> ()
      | Netlist.Circuit.Vccs { np; nn; ncp; ncn; gm; _ } ->
          let g = value gm in
          add np ncp g;
          add np ncn (-.g);
          add nn ncp (-.g);
          add nn ncn g
      | Netlist.Circuit.Mosfet { name; d; g = ng; s; b; model; w; l; mult } -> begin
          let op =
            match op_of name with
            | Some (Mna.Dc.Mos_op op) -> Some op
            | Some (Mna.Dc.Bjt_op _) -> None
            | None -> begin
                match Devices.Registry.find_exn p.Problem.registry model with
                | Devices.Sig.Mos { eval; _ } ->
                    Some
                      (eval ~w:(value w) ~l:(value l) ~m:(value mult) ~vd:nv.(d)
                         ~vg:nv.(ng) ~vs:nv.(s) ~vb:nv.(b))
                | Devices.Sig.Bjt _ -> None
              end
          in
          match op with
          | None -> ()
          | Some op ->
              let open Devices.Sig in
              let gsum = op.gm +. op.gds +. op.gmbs in
              add d ng op.gm;
              add d d op.gds;
              add d b op.gmbs;
              add d s (-.gsum);
              add s ng (-.op.gm);
              add s d (-.op.gds);
              add s b (-.op.gmbs);
              add s s gsum;
              pair b d op.gbd;
              pair b s op.gbs
        end
      | Netlist.Circuit.Bjt { name; c; b; e = ne; model; area } -> begin
          let op =
            match op_of name with
            | Some (Mna.Dc.Bjt_op op) -> Some op
            | Some (Mna.Dc.Mos_op _) -> None
            | None -> begin
                match Devices.Registry.find_exn p.Problem.registry model with
                | Devices.Sig.Bjt { eval; _ } ->
                    Some (eval ~area:(value area) ~vc:nv.(c) ~vb:nv.(b) ~ve:nv.(ne))
                | Devices.Sig.Mos _ -> None
              end
          in
          match op with
          | None -> ()
          | Some op ->
              let open Devices.Sig in
              let dic_dvc = op.go and dic_dvb = op.bjt_gm in
              let dic_dve = -.(dic_dvc +. dic_dvb) in
              let dib_dvc = op.gmu and dib_dvb = op.gpi in
              let dib_dve = -.(dib_dvc +. dib_dvb) in
              add c c dic_dvc;
              add c b dic_dvb;
              add c ne dic_dve;
              add b c dib_dvc;
              add b b dib_dvb;
              add b ne dib_dve;
              add ne c (-.(dic_dvc +. dib_dvc));
              add ne b (-.(dic_dvb +. dib_dvb));
              add ne ne (-.(dic_dve +. dib_dve))
        end
      | Netlist.Circuit.Inductor _ | Netlist.Circuit.Vcvs _ | Netlist.Circuit.Cccs _
      | Netlist.Circuit.Ccvs _ ->
          ())
    p.Problem.bias.Netlist.Circuit.elements;
  for k = 0 to nf - 1 do
    La.Mat.add_to j k k 1e-12
  done;
  j

let bias_jacobian (p : Problem.t) (st : State.t) =
  bias_jacobian_with p st ~nv:(Eval.node_voltages p st) ~op_of:(fun _ -> None)

let debug_jacobian = bias_jacobian

let residual_norm res = Array.fold_left (fun a r -> a +. Float.abs r) 0.0 res

(* With a session, the residual vector and the Jacobian's device operating
   points come out of the incremental caches: across the backtracking line
   search (and across NR iterations near convergence) most device models
   hit the memo instead of re-evaluating. The arithmetic is the same
   either way — the session serves bitwise-identical values. *)
let residuals_of ?session p st =
  match session with
  | Some ss -> Eval.Incr.residuals_quick ss st
  | None -> Eval.residuals_quick p st

let jacobian_of ?session p st =
  match session with
  | Some ss ->
      let nv, ops = Eval.Incr.bias_view ss st in
      bias_jacobian_with p st ~nv ~op_of:(fun name -> List.assoc_opt name ops)
  | None -> bias_jacobian p st

let newton_step_with ?session (p : Problem.t) (st : State.t) ~damping =
  let nf = p.Problem.tl.Treelink.n_free in
  if nf = 0 then None
  else begin
    let res = residuals_of ?session p st in
    let j = jacobian_of ?session p st in
    match La.Lu.factor j with
    | exception La.Lu.Singular _ -> None
    | lu ->
        let delta = La.Lu.solve lu res in
        let maxd = Array.fold_left (fun a d -> Float.max a (Float.abs d)) 0.0 delta in
        if not (Float.is_finite maxd) then None
        else begin
          let base = Problem.node_var_base p in
          let saved = Array.sub st.State.values base nf in
          let norm0 = residual_norm res in
          (* x <- x - scale*delta with a per-step voltage cap, then a
             backtracking line search on the residual norm: far from the
             solution a capped full step can overshoot and cycle. *)
          let apply scale =
            let changed = ref 0.0 in
            for k = 0 to nf - 1 do
              let i = base + k in
              let nvv = State.clamp st i (saved.(k) -. (scale *. delta.(k))) in
              changed := Float.max !changed (Float.abs (nvv -. saved.(k)));
              st.State.values.(i) <- nvv
            done;
            !changed
          in
          let cap = 0.5 in
          let scale0 = if maxd *. damping > cap then cap /. maxd else damping in
          let rec backtrack scale tries =
            let changed = apply scale in
            if tries = 0 then Some changed
            else begin
              let norm1 = residual_norm (residuals_of ?session p st) in
              if norm1 <= norm0 *. 0.999 || norm1 < 1e-15 then Some changed
              else backtrack (scale *. 0.35) (tries - 1)
            end
          in
          backtrack scale0 5
        end
  end

let newton_step (p : Problem.t) (st : State.t) ~damping = newton_step_with p st ~damping

(* Full Newton solve of the bias network through the reference DC engine
   (gmin stepping, source stepping): "a simulator performs a complete
   Newton-Raphson before it evaluates circuit performance" — this move
   gives the annealer exactly that, on demand. The solution's node
   voltages are mapped back onto the relaxed-dc variables. *)
let newton_global (p : Problem.t) (st : State.t) =
  let env = Eval.value_env p st in
  let value e = Netlist.Expr.eval env e in
  match Mna.Dc.solve ~value ~registry:p.Problem.registry p.Problem.bias with
  | Error _ -> false
  | Ok sol ->
      let base = Problem.node_var_base p in
      Array.iteri
        (fun k members ->
          match members with
          | node :: _ -> begin
              match p.Problem.tl.Treelink.of_node.(node) with
              | Treelink.Free (_, off) ->
                  let v = Mna.Dc.node_voltage sol node -. value off in
                  st.State.values.(base + k) <- State.clamp st (base + k) v
              | Treelink.Fixed _ -> ()
            end
          | [] -> ())
        p.Problem.tl.Treelink.members;
      true

let newton_solve ?session p st =
  let rec loop it last =
    if it >= 10 then last
    else begin
      match newton_step_with ?session p st ~damping:1.0 with
      | None -> last
      | Some change -> if change < 1e-9 then Some change else loop (it + 1) (Some change)
    end
  in
  loop 0 None

(* --- Move proposals. --- *)

let save_nodes (p : Problem.t) (st : State.t) =
  let base = Problem.node_var_base p in
  let nf = p.Problem.tl.Treelink.n_free in
  Array.sub st.State.values base nf

let restore_nodes (p : Problem.t) (st : State.t) saved =
  let base = Problem.node_var_base p in
  Array.blit saved 0 st.State.values base (Array.length saved)

let propose ctx (st : State.t) k rng =
  let p = ctx.p in
  ctx.last_var <- -1;
  let perturb_continuous i =
    let old = st.State.values.(i) in
    let step = Anneal.Range.step ctx.range i in
    st.State.values.(i) <- State.clamp st i (old +. (Anneal.Rng.gaussian rng *. step));
    ctx.last_var <- i;
    fun () -> st.State.values.(i) <- old
  in
  let perturb_discrete i =
    let window = Int.max 1 (int_of_float (Anneal.Range.step ctx.range i)) in
    let mag = 1 + Anneal.Rng.int rng window in
    let delta = if Anneal.Rng.bool rng then mag else -mag in
    let old = State.set_grid_slot st i (st.State.grid_index.(i) + delta) in
    ctx.last_var <- i;
    fun () -> ignore (State.set_grid_slot st i old)
  in
  match k with
  | 0 ->
      if Array.length ctx.discrete = 0 then None
      else Some (perturb_discrete (Anneal.Rng.pick rng ctx.discrete))
  | 1 ->
      if Array.length ctx.user_cont = 0 then None
      else Some (perturb_continuous (Anneal.Rng.pick rng ctx.user_cont))
  | 2 ->
      if Array.length ctx.node_vars = 0 then None
      else Some (perturb_continuous (Anneal.Rng.pick rng ctx.node_vars))
  | 3 ->
      if Array.length ctx.node_vars = 0 then None
      else begin
        let saved = save_nodes p st in
        match newton_step_with ?session:ctx.session p st ~damping:0.7 with
        | Some _ -> Some (fun () -> restore_nodes p st saved)
        | None ->
            restore_nodes p st saved;
            None
      end
  | 4 ->
      if Array.length ctx.node_vars = 0 then None
      else begin
        let saved = save_nodes p st in
        (* Try the cheap iterated step first; escalate to the full
           simulator solve when it stalls far from dc-correctness. *)
        let ok =
          match newton_solve ?session:ctx.session p st with
          | Some change when change < 1e-6 -> true
          | Some _ | None -> newton_global p st
        in
        if ok then Some (fun () -> restore_nodes p st saved)
        else begin
          restore_nodes p st saved;
          None
        end
      end
  | 5 ->
      let n = State.n_vars st in
      if n = 0 then None
      else begin
        let count = 2 + Anneal.Rng.int rng 2 in
        let undos = ref [] in
        for _ = 1 to count do
          let i = Anneal.Rng.int rng n in
          let undo =
            if State.is_discrete st.State.info.(i) then perturb_discrete i
            else perturb_continuous i
          in
          undos := undo :: !undos
        done;
        ctx.last_var <- -1;
        let undos = !undos in
        Some (fun () -> List.iter (fun u -> u ()) undos)
      end
  | _ -> None

let record_result ctx _k ~accepted =
  if ctx.last_var >= 0 then Anneal.Range.record ctx.range ctx.last_var ~accepted

let ranges_converged ctx =
  Array.for_all
    (fun i ->
      let rel = Anneal.Range.step ctx.range i /. Float.max ctx.max_step.(i) 1e-30 in
      rel < 1e-4)
    ctx.continuous
