(** Deterministic splittable PRNG (xoshiro256** seeded via splitmix64).

    Every stochastic component of OBLX draws from an explicit generator so
    synthesis runs, tests and benchmark tables are exactly reproducible. *)

type t

val create : int -> t

(** [split t] derives an independent generator (for parallel restarts). *)
val split : t -> t

(** [copy t] snapshots the generator; the copy and the original evolve
    independently from the shared state. *)
val copy : t -> t

(** [assign dst src] rewinds [dst] to [src]'s state in place. Together
    with [copy] this lets a caller replay a recorded draw sequence — the
    annealer's batched tournament re-proposes its winning candidate from
    the snapshot taken before that candidate was first drawn. *)
val assign : t -> t -> unit

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [uniform t lo hi] is uniform in [lo, hi). *)
val uniform : t -> float -> float -> float

(** [int t n] is uniform in [0, n). @raise Invalid_argument if [n <= 0]. *)
val int : t -> int -> int

(** [gaussian t] is standard normal (Box-Muller). *)
val gaussian : t -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [pick t arr] chooses a uniform element. *)
val pick : t -> 'a array -> 'a
