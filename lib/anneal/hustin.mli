(** Hustin's adaptive move-class selection (from the TIM placement tool,
    adopted by OBLX): each move class accumulates a quality statistic —
    the cost change it produces on accepted moves per attempt — and classes
    are then drawn with probability proportional to quality, with a floor
    probability so no class starves. Statistics decay periodically so the
    mix tracks the phase of the anneal (random moves early,
    gradient/Newton moves near convergence). *)

type t

val create : classes:string array -> t
val n_classes : t -> int
val class_name : t -> int -> string

(** [pick t rng] draws a class index. *)
val pick : t -> Rng.t -> int

(** [record t k ~accepted ~delta_cost] — call after each attempted move of
    class [k]. *)
val record : t -> int -> accepted:bool -> delta_cost:float -> unit

(** [probabilities t] is the current selection distribution (sums to 1). *)
val probabilities : t -> float array

(** [to_probs t] = {!probabilities} — the value to persist so a later run
    can warm-start its move selection from this one's converged mix. *)
val to_probs : t -> float array

(** [of_probs ~classes probs] restores a selector from a saved
    distribution. The restored distribution is served verbatim —
    [to_probs (of_probs ~classes p)] is exactly [p], bit for bit — until
    the first {!record}, after which seeded pseudo-count statistics (which
    the selection formula maps back to approximately [p]) take over and
    adapt normally. Raises [Invalid_argument] on an arity mismatch or a
    negative/non-finite probability. *)
val of_probs : classes:string array -> float array -> t
