type t = {
  names : string array;
  attempts : float array;
  gain : float array;  (** sum of |delta cost| over accepted moves *)
  mutable since_decay : int;
  mutable prior : float array option;
      (** restored distribution, served verbatim until the first [record] *)
}

let create ~classes =
  let n = Array.length classes in
  if n = 0 then invalid_arg "Hustin.create: no classes";
  {
    names = classes;
    attempts = Array.make n 0.0;
    gain = Array.make n 0.0;
    since_decay = 0;
    prior = None;
  }

let n_classes t = Array.length t.names
let class_name t k = t.names.(k)
let floor_prob = 0.02
let decay_every = 2000
let decay_factor = 0.5

let probabilities t =
  match t.prior with
  | Some p -> Array.copy p
  | None ->
      let n = n_classes t in
      let quality = Array.init n (fun k -> if t.attempts.(k) > 0.0 then t.gain.(k) /. t.attempts.(k) else 0.0) in
      let total = Array.fold_left ( +. ) 0.0 quality in
      if total <= 0.0 then Array.make n (1.0 /. float_of_int n)
      else begin
        let head = 1.0 -. (floor_prob *. float_of_int n) in
        Array.map (fun q -> floor_prob +. (head *. q /. total)) quality
      end

let to_probs = probabilities

(* Weight of the pseudo-counts a restored prior seeds the statistics with:
   heavy enough that the first real moves nudge rather than overwrite the
   prior, light enough that one decay period dominates it. *)
let prior_weight = 32.0

let of_probs ~classes probs =
  let t = create ~classes in
  let n = n_classes t in
  if Array.length probs <> n then
    invalid_arg
      (Printf.sprintf "Hustin.of_probs: %d probabilities for %d classes" (Array.length probs) n);
  Array.iter
    (fun p -> if not (Float.is_finite p) || p < 0.0 then invalid_arg "Hustin.of_probs: bad probability")
    probs;
  (* Seed quality statistics that the selection formula maps back to
     (approximately) the prior, so the distribution degrades smoothly once
     live statistics accumulate; the verbatim [prior] copy makes
     [to_probs (of_probs p) = p] exact until then. *)
  for k = 0 to n - 1 do
    t.attempts.(k) <- prior_weight;
    t.gain.(k) <- prior_weight *. Float.max 0.0 (probs.(k) -. floor_prob)
  done;
  t.prior <- Some (Array.copy probs);
  t

let pick t rng =
  let probs = probabilities t in
  let r = Rng.float rng in
  let rec scan k acc =
    if k >= Array.length probs - 1 then k
    else begin
      let acc = acc +. probs.(k) in
      if r < acc then k else scan (k + 1) acc
    end
  in
  scan 0 0.0

let record t k ~accepted ~delta_cost =
  t.prior <- None;
  t.attempts.(k) <- t.attempts.(k) +. 1.0;
  if accepted then t.gain.(k) <- t.gain.(k) +. Float.abs delta_cost;
  t.since_decay <- t.since_decay + 1;
  if t.since_decay >= decay_every then begin
    t.since_decay <- 0;
    for i = 0 to n_classes t - 1 do
      t.attempts.(i) <- t.attempts.(i) *. decay_factor;
      t.gain.(i) <- t.gain.(i) *. decay_factor
    done
  end
