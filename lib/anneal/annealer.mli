(** Generic simulated-annealing driver combining the Lam schedule, Hustin
    move selection, and Metropolis acceptance. Problems mutate their state
    in place and hand back an undo thunk, so no per-move allocation of
    state copies is needed.

    The driver owns no problem-specific constants: the initial temperature
    is probed from the cost landscape, the schedule is feedback-controlled,
    and move-class probabilities adapt. *)

type 'state problem = {
  classes : string array;  (** move-class names, length >= 1 *)
  propose : 'state -> int -> Rng.t -> (unit -> unit) option;
      (** [propose st k rng] applies a move of class [k] in place and
          returns the undo thunk; [None] when the class is inapplicable in
          the current state (counted as a rejection for its statistics). *)
  cost : 'state -> float;
  snapshot : 'state -> 'state;  (** deep copy, used to keep the best state *)
  frozen : ('state -> bool) option;
      (** extra convergence test, polled once per stage after 50% progress *)
  on_stage : ('state -> stage_info -> unit) option;
      (** periodic hook (adaptive weights, tracing); the current cost is
          re-evaluated after it runs, so the hook may reshape the cost *)
  on_result : (int -> accepted:bool -> unit) option;
      (** called after every decided move with its class index — feeds
          per-variable range limiters *)
  abort : (stage_info -> bool) option;
      (** external cancellation, polled once before the first move (with
          [stage = 0], so a run that is already past its deadline or was
          cancelled while queued stops before spending a stage of
          evaluations) and then at least once per stage and at least every
          256 moves regardless of progress — used by parallel multi-start
          to cut laggard runs and by the serve layer for
          deadlines/cancellation. An aborted run still reports its best
          state so far. *)
  batch : 'state batch option;
      (** batched candidate screening; [None] proposes and evaluates one
          candidate per move, exactly as before *)
}

(** Batched screening: for a move class flagged in [screenable], the
    driver draws up to [batch_size] candidates, ranks them with the cheap
    approximate [screen], and only the most promising one is confirmed
    through the exact [cost] and a Metropolis decision. The losers are
    decided rejections — temperature schedule, class statistics and the
    move counter advance as if each had been proposed and turned down in
    sequence — so a batched run spends its move budget at the same rate
    while paying the exact evaluation price roughly once per tournament.
    [screen] sees the candidate applied to the problem state and may be
    arbitrarily approximate: it only orders candidates, it never feeds an
    accepted cost. Classes whose proposal already involves exact
    evaluations (e.g. Newton-Raphson solves) should not be flagged. *)
and 'state batch = {
  batch_size : int;
  screenable : bool array;
  screen : 'state -> float;
}

and stage_info = {
  stage : int;
  moves_done : int;
  temperature : float;
  acceptance : float;
  current_cost : float;
  best_cost : float;
}

type 'state outcome = {
  best : 'state;
  best_cost : float;
  final : 'state;
  final_cost : float;
  moves : int;
  accepted : int;
  stages : int;
  froze_early : bool;
  aborted : bool;  (** stopped by the [abort] hook rather than the schedule *)
  probs : float array;
      (** the Hustin selection distribution at the end of the run — the
          prior a warm-started successor restores via [?priors] *)
}

(** [run ?trace ?view ~rng ~total_moves ~init problem] anneals. [init] is
    mutated (it becomes the final state); the best state seen is returned
    separately.

    [trace] (default {!Obs.Trace.none}) receives structured telemetry:
    one [Move] event per decided move (at level [Moves]) and one [Stage]
    event per stage with the Hustin class probabilities (at level
    [Stage]). [view] projects the problem state to the (values, grid)
    pair recorded on accepted moves — install it to make traces
    replayable with {!Obs.Replay}; without it accepted moves carry no
    state. Tracing never draws from [rng], so it cannot perturb the
    annealing trajectory.

    [priors], when given, initializes the Hustin selector from a saved
    distribution ({!Hustin.of_probs}) instead of uniform statistics,
    shortcutting the adaptive warmup; the outcome's [probs] field carries
    the end-of-run distribution so a caller can persist it. Without
    [priors] behavior is bit-identical to before the field existed. *)
val run :
  ?trace:Obs.Trace.t ->
  ?view:('state -> float array * int array) ->
  ?priors:float array ->
  rng:Rng.t ->
  total_moves:int ->
  init:'state ->
  'state problem ->
  'state outcome
