type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let assign dst src =
  dst.s0 <- src.s0;
  dst.s1 <- src.s1;
  dst.s2 <- src.s2;
  dst.s3 <- src.s3

let split t =
  let st = ref (next t) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let float t =
  (* 53 high bits -> [0, 1). *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t lo hi = lo +. (float t *. (hi -. lo))

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod n

let gaussian t =
  let rec draw () =
    let u1 = float t in
    if u1 <= 1e-300 then draw () else u1
  in
  let u1 = draw () and u2 = float t in
  Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2)

let bool t = Int64.logand (next t) 1L = 1L
let pick t arr = arr.(int t (Array.length arr))
