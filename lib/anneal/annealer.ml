type 'state problem = {
  classes : string array;
  propose : 'state -> int -> Rng.t -> (unit -> unit) option;
  cost : 'state -> float;
  snapshot : 'state -> 'state;
  frozen : ('state -> bool) option;
  on_stage : ('state -> stage_info -> unit) option;
  on_result : (int -> accepted:bool -> unit) option;
  abort : (stage_info -> bool) option;
  batch : 'state batch option;
}

and 'state batch = {
  batch_size : int;
  screenable : bool array;
  screen : 'state -> float;
}

and stage_info = {
  stage : int;
  moves_done : int;
  temperature : float;
  acceptance : float;
  current_cost : float;
  best_cost : float;
}

type 'state outcome = {
  best : 'state;
  best_cost : float;
  final : 'state;
  final_cost : float;
  moves : int;
  accepted : int;
  stages : int;
  froze_early : bool;
  aborted : bool;
  probs : float array;
}

(* Initial temperature probe: sample random moves, undo each, and size T0
   so a typical uphill move starts ~90% acceptable. *)
let probe_t0 problem state rng =
  let samples = 60 in
  let c0 = problem.cost state in
  let acc = ref 0.0 and n = ref 0 in
  for _ = 1 to samples do
    let k = Rng.int rng (Array.length problem.classes) in
    match problem.propose state k rng with
    | Some undo ->
        let c1 = problem.cost state in
        undo ();
        acc := !acc +. Float.abs (c1 -. c0);
        incr n
    | None -> ()
  done;
  if !n = 0 then 1.0
  else begin
    let avg = !acc /. float_of_int !n in
    Float.max 1e-9 (avg /. -.Float.log 0.9)
  end

let run ?(trace = Obs.Trace.none) ?view ?priors ~rng ~total_moves ~init problem =
  let hustin =
    match priors with
    | Some p -> Hustin.of_probs ~classes:problem.classes p
    | None -> Hustin.create ~classes:problem.classes
  in
  let t0 = probe_t0 problem init rng in
  let lam = Lam.create ~total_moves ~t0 in
  let cur_cost = ref (problem.cost init) in
  let best = ref (problem.snapshot init) in
  let best_cost = ref !cur_cost in
  let accepted = ref 0 in
  let moves = ref 0 in
  (* Schedule-recorded moves, tracked so a tournament never overshoots the
     budget: [Lam.record] is called exactly once per [lam_record]. *)
  let lam_moves = ref 0 in
  let lam_record ~accepted =
    Lam.record lam ~accepted;
    incr lam_moves
  in
  let stage = ref 0 in
  let froze = ref false in
  let aborted = ref false in
  let stage_len = Int.max 50 (total_moves / 200) in
  (* Deadlines and cancellation ride on [abort], so its poll interval must
     not scale with the move budget the way stages do: a 20M-move run would
     otherwise check only every 100k moves (minutes of wall time). When
     [stage_len <= 256] the extra poll never fires and behavior is exactly
     the per-stage poll of old. *)
  let abort_len = Int.min stage_len 256 in
  (* Batched screening advances [moves] by a whole tournament per loop
     iteration, so stage/abort boundaries are crossed as thresholds rather
     than divisibility tests; in unbatched runs the two are identical. *)
  let next_stage = ref stage_len in
  let next_abort = ref abort_len in
  let poll_abort () =
    match problem.abort with
    | Some f
      when f
             {
               stage = !stage;
               moves_done = !moves;
               temperature = Lam.temperature lam;
               acceptance = Lam.measured_ratio lam;
               current_cost = !cur_cost;
               best_cost = !best_cost;
             } ->
        aborted := true
    | Some _ | None -> ()
  in
  (* Telemetry is emitted after the move counter advances, so an event's
     [moves] field is the 1-based index of the decided move. Snapshotting
     the state (for replay) happens only at the [Moves] level and only on
     accepts, so tracing at coarser levels costs nothing per move. *)
  let trace_moves = Obs.Trace.enabled trace Obs.Event.Moves in
  let emit_move ~temperature ~decision ~cls ~delta_cost ~cost ~state =
    Obs.Trace.emit trace ~moves:!moves ~temperature
      ~acceptance:(Lam.measured_ratio lam)
      (Obs.Event.Move
         { cls; class_name = problem.classes.(cls); decision; delta_cost; cost; state })
  in
  (* Accept-or-reject one already-proposed candidate through the exact
     cost — the single-candidate path, and the confirm step of a batch. *)
  let decide_exact k undo =
    let c1 = problem.cost init in
    let dc = c1 -. !cur_cost in
    let t = Lam.temperature lam in
    let take = dc <= 0.0 || Rng.float rng < Float.exp (-.dc /. t) in
    if take then begin
      cur_cost := c1;
      incr accepted;
      if c1 < !best_cost then begin
        best_cost := c1;
        best := problem.snapshot init
      end
    end
    else undo ();
    lam_record ~accepted:take;
    Hustin.record hustin k ~accepted:take ~delta_cost:dc;
    incr moves;
    if trace_moves then begin
      let decision = if take then Obs.Event.Accepted else Obs.Event.Rejected in
      let state = if take then Option.map (fun v -> v init) view else None in
      (* [t] is the temperature the Metropolis decision used. *)
      emit_move ~temperature:t ~decision ~cls:k ~delta_cost:dc ~cost:!cur_cost ~state
    end;
    match problem.on_result with Some f -> f k ~accepted:take | None -> ()
  in
  let decide_inapplicable k =
    Hustin.record hustin k ~accepted:false ~delta_cost:0.0;
    incr moves;
    if trace_moves then
      emit_move ~temperature:(Lam.temperature lam) ~decision:Obs.Event.Inapplicable ~cls:k
        ~delta_cost:0.0 ~cost:!cur_cost ~state:None
  in
  (* Batched candidate screening: draw up to [size] same-class candidates,
     score each with the cheap approximate screen, and put only the best
     one through the exact cost and a single Metropolis decision. Each
     loser is a decided rejection — schedule, class statistics and move
     counter advance exactly as if it had been proposed and turned down in
     sequence. Determinism: the winner is re-proposed by replaying its
     recorded rng draws from a snapshot, after which the generator is
     restored to the post-tournament stream. *)
  let tournament b k size =
    let snaps = Array.make size rng in
    let dcs = Array.make size 0.0 in
    let n_gen = ref 0 in
    let none_seen = ref false in
    while !n_gen < size && not !none_seen do
      let snap = Rng.copy rng in
      match problem.propose init k rng with
      | None -> none_seen := true
      | Some undo ->
          let c1 = b.screen init in
          undo ();
          snaps.(!n_gen) <- snap;
          dcs.(!n_gen) <- c1 -. !cur_cost;
          incr n_gen
    done;
    (* A [None] draw decides one inapplicable move, as unbatched. *)
    if !none_seen then decide_inapplicable k;
    if !n_gen > 0 then begin
      let bi = ref 0 in
      for i = 1 to !n_gen - 1 do
        if dcs.(i) < dcs.(!bi) then bi := i
      done;
      for i = 0 to !n_gen - 1 do
        if i <> !bi then begin
          lam_record ~accepted:false;
          Hustin.record hustin k ~accepted:false ~delta_cost:dcs.(i);
          incr moves;
          if trace_moves then
            emit_move ~temperature:(Lam.temperature lam) ~decision:Obs.Event.Rejected ~cls:k
              ~delta_cost:dcs.(i) ~cost:!cur_cost ~state:None
        end
      done;
      let cont = Rng.copy rng in
      Rng.assign rng snaps.(!bi);
      match problem.propose init k rng with
      | None ->
          (* Unreachable for a deterministic [propose]: same state, same
             draws. Restore the stream and drop the tournament's winner. *)
          Rng.assign rng cont;
          decide_inapplicable k
      | Some undo ->
          Rng.assign rng cont;
          decide_exact k undo
    end
  in
  (* Poll the abort hook once before the first move: a run whose deadline
     already expired (or whose job was cancelled while queued) must not buy
     a whole stage of evaluations just to learn it should stop. *)
  poll_abort ();
  let rec loop () =
    if Lam.finished lam || !froze || !aborted then ()
    else begin
      let k = Hustin.pick hustin rng in
      (match problem.batch with
      | Some b when b.batch_size > 1 && b.screenable.(k) && total_moves - !lam_moves > 1 ->
          tournament b k (Int.min b.batch_size (total_moves - !lam_moves))
      | Some _ | None -> begin
          match problem.propose init k rng with
          | None -> decide_inapplicable k
          | Some undo -> decide_exact k undo
        end);
      if !moves >= !next_stage then begin
        while !next_stage <= !moves do
          next_stage := !next_stage + stage_len
        done;
        incr stage;
        let info =
          {
            stage = !stage;
            moves_done = !moves;
            temperature = Lam.temperature lam;
            acceptance = Lam.measured_ratio lam;
            current_cost = !cur_cost;
            best_cost = !best_cost;
          }
        in
        Obs.Trace.emit trace ~moves:!moves ~temperature:info.temperature
          ~acceptance:info.acceptance
          (Obs.Event.Stage
             {
               stage = !stage;
               current_cost = !cur_cost;
               best_cost = !best_cost;
               probs = Hustin.probabilities hustin;
             });
        (match problem.on_stage with
        | Some hook ->
            hook init info;
            (* The hook may have rescaled the cost function. *)
            cur_cost := problem.cost init
        | None -> ());
        (match problem.abort with
        | Some f when f info -> aborted := true
        | Some _ | None -> ());
        match problem.frozen with
        | Some f when Lam.progress lam > 0.5 && f init -> froze := true
        | Some _ | None -> ()
      end
      else if !moves >= !next_abort then poll_abort ();
      while !next_abort <= !moves do
        next_abort := !next_abort + abort_len
      done;
      loop ()
    end
  in
  loop ();
  {
    best = !best;
    best_cost = !best_cost;
    final = init;
    final_cost = !cur_cost;
    moves = !moves;
    accepted = !accepted;
    stages = !stage;
    froze_early = !froze;
    aborted = !aborted;
    probs = Hustin.probabilities hustin;
  }
