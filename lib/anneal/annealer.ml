type 'state problem = {
  classes : string array;
  propose : 'state -> int -> Rng.t -> (unit -> unit) option;
  cost : 'state -> float;
  snapshot : 'state -> 'state;
  frozen : ('state -> bool) option;
  on_stage : ('state -> stage_info -> unit) option;
  on_result : (int -> accepted:bool -> unit) option;
  abort : (stage_info -> bool) option;
}

and stage_info = {
  stage : int;
  moves_done : int;
  temperature : float;
  acceptance : float;
  current_cost : float;
  best_cost : float;
}

type 'state outcome = {
  best : 'state;
  best_cost : float;
  final : 'state;
  final_cost : float;
  moves : int;
  accepted : int;
  stages : int;
  froze_early : bool;
  aborted : bool;
}

(* Initial temperature probe: sample random moves, undo each, and size T0
   so a typical uphill move starts ~90% acceptable. *)
let probe_t0 problem state rng =
  let samples = 60 in
  let c0 = problem.cost state in
  let acc = ref 0.0 and n = ref 0 in
  for _ = 1 to samples do
    let k = Rng.int rng (Array.length problem.classes) in
    match problem.propose state k rng with
    | Some undo ->
        let c1 = problem.cost state in
        undo ();
        acc := !acc +. Float.abs (c1 -. c0);
        incr n
    | None -> ()
  done;
  if !n = 0 then 1.0
  else begin
    let avg = !acc /. float_of_int !n in
    Float.max 1e-9 (avg /. -.Float.log 0.9)
  end

let run ?(trace = Obs.Trace.none) ?view ~rng ~total_moves ~init problem =
  let hustin = Hustin.create ~classes:problem.classes in
  let t0 = probe_t0 problem init rng in
  let lam = Lam.create ~total_moves ~t0 in
  let cur_cost = ref (problem.cost init) in
  let best = ref (problem.snapshot init) in
  let best_cost = ref !cur_cost in
  let accepted = ref 0 in
  let moves = ref 0 in
  let stage = ref 0 in
  let froze = ref false in
  let aborted = ref false in
  let stage_len = Int.max 50 (total_moves / 200) in
  (* Deadlines and cancellation ride on [abort], so its poll interval must
     not scale with the move budget the way stages do: a 20M-move run would
     otherwise check only every 100k moves (minutes of wall time). When
     [stage_len <= 256] the extra poll never fires and behavior is exactly
     the per-stage poll of old. *)
  let abort_len = Int.min stage_len 256 in
  let poll_abort () =
    match problem.abort with
    | Some f
      when f
             {
               stage = !stage;
               moves_done = !moves;
               temperature = Lam.temperature lam;
               acceptance = Lam.measured_ratio lam;
               current_cost = !cur_cost;
               best_cost = !best_cost;
             } ->
        aborted := true
    | Some _ | None -> ()
  in
  (* Telemetry is emitted after the move counter advances, so an event's
     [moves] field is the 1-based index of the decided move. Snapshotting
     the state (for replay) happens only at the [Moves] level and only on
     accepts, so tracing at coarser levels costs nothing per move. *)
  let trace_moves = Obs.Trace.enabled trace Obs.Event.Moves in
  let emit_move ~temperature ~decision ~cls ~delta_cost ~cost ~state =
    Obs.Trace.emit trace ~moves:!moves ~temperature
      ~acceptance:(Lam.measured_ratio lam)
      (Obs.Event.Move
         { cls; class_name = problem.classes.(cls); decision; delta_cost; cost; state })
  in
  (* Poll the abort hook once before the first move: a run whose deadline
     already expired (or whose job was cancelled while queued) must not buy
     a whole stage of evaluations just to learn it should stop. *)
  poll_abort ();
  let rec loop () =
    if Lam.finished lam || !froze || !aborted then ()
    else begin
      let k = Hustin.pick hustin rng in
      (match problem.propose init k rng with
      | None ->
          Hustin.record hustin k ~accepted:false ~delta_cost:0.0;
          incr moves;
          if trace_moves then
            emit_move ~temperature:(Lam.temperature lam) ~decision:Obs.Event.Inapplicable
              ~cls:k ~delta_cost:0.0 ~cost:!cur_cost ~state:None
      | Some undo ->
          let c1 = problem.cost init in
          let dc = c1 -. !cur_cost in
          let t = Lam.temperature lam in
          let take = dc <= 0.0 || Rng.float rng < Float.exp (-.dc /. t) in
          if take then begin
            cur_cost := c1;
            incr accepted;
            if c1 < !best_cost then begin
              best_cost := c1;
              best := problem.snapshot init
            end
          end
          else undo ();
          Lam.record lam ~accepted:take;
          Hustin.record hustin k ~accepted:take ~delta_cost:dc;
          incr moves;
          if trace_moves then begin
            let decision = if take then Obs.Event.Accepted else Obs.Event.Rejected in
            let state = if take then Option.map (fun v -> v init) view else None in
            (* [t] is the temperature the Metropolis decision used. *)
            emit_move ~temperature:t ~decision ~cls:k ~delta_cost:dc ~cost:!cur_cost ~state
          end;
          (match problem.on_result with
          | Some f -> f k ~accepted:take
          | None -> ()));
      if !moves mod stage_len = 0 then begin
        incr stage;
        let info =
          {
            stage = !stage;
            moves_done = !moves;
            temperature = Lam.temperature lam;
            acceptance = Lam.measured_ratio lam;
            current_cost = !cur_cost;
            best_cost = !best_cost;
          }
        in
        Obs.Trace.emit trace ~moves:!moves ~temperature:info.temperature
          ~acceptance:info.acceptance
          (Obs.Event.Stage
             {
               stage = !stage;
               current_cost = !cur_cost;
               best_cost = !best_cost;
               probs = Hustin.probabilities hustin;
             });
        (match problem.on_stage with
        | Some hook ->
            hook init info;
            (* The hook may have rescaled the cost function. *)
            cur_cost := problem.cost init
        | None -> ());
        (match problem.abort with
        | Some f when f info -> aborted := true
        | Some _ | None -> ());
        match problem.frozen with
        | Some f when Lam.progress lam > 0.5 && f init -> froze := true
        | Some _ | None -> ()
      end
      else if !moves mod abort_len = 0 then poll_abort ();
      loop ()
    end
  in
  loop ();
  {
    best = !best;
    best_cost = !best_cost;
    final = init;
    final_cost = !cur_cost;
    moves = !moves;
    accepted = !accepted;
    stages = !stage;
    froze_early = !froze;
    aborted = !aborted;
  }
