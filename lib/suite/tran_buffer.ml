(* Transient-dominant benchmark: the 5T OTA topology driving a heavy
   load capacitor, with the cost dominated by large-signal transient
   measurements — slew rate as the objective and settling time as a hard
   constraint — plus the dc output-noise and PSRR jig measurements and a
   slow-corner robustness row. This is the suite's exercise of the
   [.tran]/[.noise]/[.psrr]/[corner=] cards end to end: the in-loop
   evaluator measures slew/settling on the coarse [dtloop] grid, and
   {!Core.Verify} re-derives them on the exact [dt] grid. *)

let name = "tran-buffer"

let source =
  {|.title transient buffer (5T OTA, slew-dominant)
.process p1u2
.param vddval=5
.param vcmval=2.5
.param cl=10p

.subckt amp inp inm out vdd vss
m1 n1 inp ntail vss nmos w='w1' l='l1'
m2 out inm ntail vss nmos w='w1' l='l1'
m3 n1 n1 vdd vdd pmos w='w3' l='l3'
m4 out n1 vdd vdd pmos w='w3' l='l3'
m5 ntail bp vss vss nmos w='w5' l='l5'
m6 bp bp vss vss nmos w='w5' l='l5'
iref vdd bp 'ib'
.ends

.var w1 min=2u max=400u steps=120
.var l1 min=1.2u max=20u steps=60
.var w3 min=2u max=400u steps=120
.var l3 min=1.2u max=20u steps=60
.var w5 min=2u max=400u steps=120
.var l5 min=1.2u max=20u steps=60
.var ib min=2u max=2m grid=log

.jig main
xamp inp inm out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vcm inm 0 'vcmval'
vin inp 0 'vcmval' ac 1
cl1 out 0 'cl'
.pz tf v(out) vin
.noise tfn v(out) vin
.psrr tfdd v(out) vdd
.tran tstop=1u dt=1n dtloop=10n vstep=10m
.endjig

.bias
xamp inp inm out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vcm inm 0 'vcmval'
vin inp 0 'vcmval'
cl1 out 0 'cl'
.endbias

.obj sr 'slew_rate(tf)' good=2e6 bad=5e4
.spec ts 'settle(tf, 0.02)' good=400n bad=2u
.spec adm 'db(dc_gain(tf))' good=35 bad=6
.spec ugf 'ugf(tf)' good=5meg bad=500k
.spec noise 'noise_out_uv(tfn)' good=150 bad=1500
.spec psrr 'psrr_db(tf, tfdd)' good=30 bad=5
.spec ugf_slow 'ugf(tf)' good=3meg bad=300k corner=slow
.spec pwr 'power()' good=2m bad=20m
|}
