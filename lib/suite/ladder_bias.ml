(* Ladder-bias cascode amplifier: a two-transistor NMOS cascode gain
   stage whose cascode gate is biased from a long resistor-ladder
   reference chain, as in bias-distribution networks of large analog
   front ends.

   The point of this benchmark is its variable structure, not its gain:
   the ladder contributes ~36 relaxed-dc node variables that no device
   terminal touches, so the vast majority of node-voltage moves leave
   every operating point — and therefore every AWE model — untouched.
   It is the stress test (and the showcase) for the move-scoped
   incremental evaluator: see docs/PERFORMANCE.md and the
   [perf-incremental] bench target. *)

let name = "ladder-bias-amp"

(* Ladder interior nodes lad1..lad{n-1}; the cascode gate taps the chain
   at [tap] resistors up from vss. *)
let ladder_rungs = 37
let ladder_tap = 19

let ladder_lines () =
  let node k =
    if k = 0 then "vss"
    else if k = ladder_rungs then "vdd"
    else if k = ladder_tap then "vcas"
    else Printf.sprintf "lad%d" k
  in
  String.concat "\n"
    (List.init ladder_rungs (fun i ->
         Printf.sprintf "rlad%d %s %s 'rlad'" i (node (i + 1)) (node i)))

let source =
  Printf.sprintf
    {|.title ladder-biased cascode amplifier
.process p1u2
.param vddval=5
.param vcmval=1.2
.param cl=1p
.param rlad=10k

.subckt amp in out vdd vss
m1 mid in vss vss nmos w='w1' l='l1'
m2 out vcas mid vss nmos w='w2' l='l2'
rl vdd out 'rl'
%s
.ends

.var w1 min=2u max=400u steps=120
.var l1 min=1.2u max=20u steps=60
.var w2 min=2u max=400u steps=120
.var l2 min=1.2u max=20u steps=60
.var rl min=2k max=200k grid=log

.jig main
xamp in out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vin in 0 'vcmval' ac 1
cl1 out 0 'cl'
.pz tf v(out) vin
.endjig

.bias
xamp in out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vin in 0 'vcmval'
cl1 out 0 'cl'
.endbias

.obj adm 'db(dc_gain(tf))' good=30 bad=5
.obj area 'area()' good=200 bad=20000
.spec ugf 'ugf(tf)' good=10meg bad=1meg
.spec vov 'xamp.m1.vgst' good=0.15 bad=0.02
.spec pwr 'power()' good=2m bad=20m
|}
    (ladder_lines ())

let paper_table2 = []
