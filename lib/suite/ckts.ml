(* Index of the benchmark suite. Five of these topologies (Simple OTA,
   OTA, Two-Stage, Folded Cascode, Comparator) blanket essentially all
   previously published synthesis results; the last two stress mixed
   MOS/BJT design and a just-published high-performance topology. *)

type entry = {
  name : string;
  source : string;
  synthesized : bool;  (** false = ASTRX analysis only (comparator) *)
  paper_table2 : (string * string * float * float) list;
      (** spec, goal text, paper OBLX value, paper simulation value *)
}

let all =
  [
    {
      name = Simple_ota.name;
      source = Simple_ota.source;
      synthesized = true;
      paper_table2 = Simple_ota.paper_table2;
    };
    { name = Ota.name; source = Ota.source; synthesized = true; paper_table2 = Ota.paper_table2 };
    {
      name = Two_stage.name;
      source = Two_stage.source;
      synthesized = true;
      paper_table2 = Two_stage.paper_table2;
    };
    {
      name = Folded_cascode.name;
      source = Folded_cascode.source;
      synthesized = true;
      paper_table2 = Folded_cascode.paper_table2;
    };
    { name = Comparator.name; source = Comparator.source; synthesized = false; paper_table2 = [] };
    {
      name = Bicmos_two_stage.name;
      source = Bicmos_two_stage.source;
      synthesized = true;
      paper_table2 = Bicmos_two_stage.paper_table2;
    };
    {
      name = Novel_folded_cascode.name;
      source = Novel_folded_cascode.source;
      synthesized = true;
      paper_table2 = [];
    };
    {
      name = Ladder_bias.name;
      source = Ladder_bias.source;
      synthesized = true;
      paper_table2 = Ladder_bias.paper_table2;
    };
    (* Not a paper circuit: the suite's transient-dominant topology,
       exercising the .tran/.noise/.psrr/corner= specification cards. *)
    { name = Tran_buffer.name; source = Tran_buffer.source; synthesized = true; paper_table2 = [] };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

(* Paper Table 1, for side-by-side reporting: circuit ->
   (netlist lines, synth lines, user vars, node vars, terms, lines of C,
    bias nodes, bias elements). *)
let paper_table1 =
  [
    ("simple-ota", (30, 28, 7, 14, 56, 1443, 20, 31));
    ("ota", (34, 33, 11, 24, 85, 1809, 28, 49));
    ("two-stage", (43, 40, 19, 26, 88, 1894, 34, 54));
    ("folded-cascode", (65, 56, 28, 70, 212, 3408, 75, 138));
    ("comparator", (131, 68, 19, 57, 169, 3088, 65, 126));
    ("bicmos-two-stage", (39, 33, 12, 26, 86, 1723, 33, 54));
    ("novel-folded-cascode", (68, 51, 27, 84, 246, 3960, 90, 167));
  ]
