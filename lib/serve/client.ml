module Json = Obs.Json

let request ~socket ?(timeout_s = 30.0) j =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup () = try Unix.close fd with Unix.Unix_error _ -> () in
  match
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
    Unix.connect fd (Unix.ADDR_UNIX socket);
    let oc = Unix.out_channel_of_descr fd in
    let ic = Unix.in_channel_of_descr fd in
    output_string oc (Json.to_string j);
    output_char oc '\n';
    flush oc;
    input_line ic
  with
  | line -> begin
      cleanup ();
      match Json.of_string line with
      | Ok v -> Ok v
      | Error e -> Error (Printf.sprintf "malformed response: %s" e)
    end
  | exception Unix.Unix_error (err, _, _) ->
      cleanup ();
      Error
        (Printf.sprintf "cannot reach oblxd at %s: %s — is the daemon running?" socket
           (Unix.error_message err))
  | exception End_of_file ->
      cleanup ();
      Error "connection closed by daemon before a response arrived"
  | exception Sys_error e ->
      cleanup ();
      Error e

(* A protocol-level failure (ok:false) folds into the Error channel here so
   callers see one kind of failure. *)
let checked ~socket ?timeout_s req =
  match request ~socket ?timeout_s (Proto.request_to_json req) with
  | Error e -> Error e
  | Ok resp -> begin
      match Proto.response_error resp with Some e -> Error e | None -> Ok resp
    end

let submit ~socket ?timeout_s s =
  match checked ~socket ?timeout_s (Proto.Submit s) with
  | Error e -> Error e
  | Ok resp -> begin
      match Json.mem_opt "id" resp with
      | Some v -> Ok (Json.to_int v)
      | None -> Error "submit response carries no id"
    end

let job_of resp =
  match Json.mem_opt "job" resp with
  | Some j -> Ok j
  | None -> Error "response carries no job record"

let status ~socket ?timeout_s id =
  Result.bind (checked ~socket ?timeout_s (Proto.Status id)) job_of

let result ~socket ?timeout_s id =
  Result.bind (checked ~socket ?timeout_s (Proto.Result id)) job_of

let cancel ~socket ?timeout_s id =
  Result.map (fun _ -> ()) (checked ~socket ?timeout_s (Proto.Cancel id))

let stats ~socket ?timeout_s () = checked ~socket ?timeout_s Proto.Stats

let shutdown ~socket ?timeout_s () =
  Result.map (fun _ -> ()) (checked ~socket ?timeout_s Proto.Shutdown)

let wait ~socket ?(poll_s = 0.05) ?(timeout_s = 600.0) id =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    match status ~socket id with
    | Error e -> Error e
    | Ok job -> begin
        match Json.mem_opt "state" job with
        | Some (Json.Str ("queued" | "running")) ->
            if Unix.gettimeofday () -. t0 > timeout_s then
              Error (Printf.sprintf "job %d still not finished after %.0f s" id timeout_s)
            else begin
              Unix.sleepf poll_s;
              go ()
            end
        | Some (Json.Str _) -> result ~socket id
        | Some _ | None -> Error "status response carries no state"
      end
  in
  go ()
