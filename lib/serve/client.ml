module Json = Obs.Json

(* Failure attribution matters to whoever is holding the pager: a connect
   failure means "no daemon there" (wrong path, not started, crashed); an
   EAGAIN after a successful connect is the socket timeout expiring on a
   daemon that accepted but never answered — a very different bug. Keep
   the two reports distinct. *)
let request ~socket ?(timeout_s = 30.0) j =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup () = try Unix.close fd with Unix.Unix_error _ -> () in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (err, _, _) ->
      cleanup ();
      Error
        (Printf.sprintf "cannot reach oblxd at %s: %s — is the daemon running?" socket
           (Unix.error_message err))
  | () -> begin
      match
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
        Proto.write_line fd j;
        Proto.read_line (Proto.line_reader fd)
      with
      | Some line -> begin
          cleanup ();
          match Json.of_string line with
          | Ok v -> Ok v
          | Error e -> Error (Printf.sprintf "malformed response: %s" e)
        end
      | None ->
          cleanup ();
          Error "connection closed by daemon before a response arrived"
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          cleanup ();
          Error
            (Printf.sprintf
               "oblxd at %s did not respond within %.0f s — daemon wedged or overloaded?"
               socket timeout_s)
      | exception Unix.Unix_error (err, _, _) ->
          cleanup ();
          Error
            (Printf.sprintf "lost connection to oblxd at %s: %s" socket
               (Unix.error_message err))
      | exception Sys_error e ->
          cleanup ();
          Error e
    end

(* A protocol-level failure (ok:false) folds into the Error channel here so
   callers see one kind of failure. *)
let checked ~socket ?timeout_s req =
  match request ~socket ?timeout_s (Proto.request_to_json req) with
  | Error e -> Error e
  | Ok resp -> begin
      match Proto.response_error resp with Some e -> Error e | None -> Ok resp
    end

let submit ~socket ?timeout_s s =
  match checked ~socket ?timeout_s (Proto.Submit s) with
  | Error e -> Error e
  | Ok resp -> begin
      match Json.mem_opt "id" resp with
      | Some v -> Ok (Json.to_int v)
      | None -> Error "submit response carries no id"
    end

let job_of resp =
  match Json.mem_opt "job" resp with
  | Some j -> Ok j
  | None -> Error "response carries no job record"

let status ~socket ?timeout_s id =
  Result.bind (checked ~socket ?timeout_s (Proto.Status id)) job_of

let result ~socket ?timeout_s id =
  Result.bind (checked ~socket ?timeout_s (Proto.Result id)) job_of

let cancel ~socket ?timeout_s id =
  Result.map (fun _ -> ()) (checked ~socket ?timeout_s (Proto.Cancel id))

let stats ~socket ?timeout_s () = checked ~socket ?timeout_s Proto.Stats

let shutdown ~socket ?timeout_s () =
  Result.map (fun _ -> ()) (checked ~socket ?timeout_s Proto.Shutdown)

let wait ~socket ?(poll_s = 0.05) ?(timeout_s = 600.0) id =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    match status ~socket id with
    | Error e -> Error e
    | Ok job -> begin
        match Json.mem_opt "state" job with
        | Some (Json.Str ("queued" | "running")) ->
            if Unix.gettimeofday () -. t0 > timeout_s then
              Error (Printf.sprintf "job %d still not finished after %.0f s" id timeout_s)
            else begin
              Unix.sleepf poll_s;
              go ()
            end
        | Some (Json.Str _) -> result ~socket id
        | Some _ | None -> Error "status response carries no state"
      end
  in
  go ()
