module Json = Obs.Json

(* ------------------------------------------------------------------ *)
(* Endpoints                                                           *)
(* ------------------------------------------------------------------ *)

type endpoint = Unix_sock of string | Tcp of string * int

(* One string names both transports: "unix:PATH" / "tcp:HOST:PORT"
   explicitly, or a bare string — "HOST:PORT" when the suffix after the
   last ':' is a port number and the string is not a filesystem path,
   otherwise a Unix socket path. Paths contain '/' in practice (the
   daemon's default is absolute), so a bare "host:4242" is unambiguous. *)
let parse_endpoint s =
  let host_port str ~ctx =
    match String.rindex_opt str ':' with
    | None -> Error (Printf.sprintf "%s: expected HOST:PORT, got %S" ctx str)
    | Some i -> begin
        let host = String.sub str 0 i in
        let port = String.sub str (i + 1) (String.length str - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p < 65536 && host <> "" -> Ok (Tcp (host, p))
        | Some _ | None -> Error (Printf.sprintf "%s: bad port in %S" ctx str)
      end
  in
  match String.index_opt s ':' with
  | _ when String.length s > 5 && String.sub s 0 5 = "unix:" ->
      Ok (Unix_sock (String.sub s 5 (String.length s - 5)))
  | _ when String.length s > 4 && String.sub s 0 4 = "tcp:" ->
      host_port (String.sub s 4 (String.length s - 4)) ~ctx:"tcp endpoint"
  | Some _ when not (String.contains s '/') -> begin
      match host_port s ~ctx:"endpoint" with Ok e -> Ok e | Error _ -> Ok (Unix_sock s)
    end
  | Some _ | None -> Ok (Unix_sock s)

let endpoint_to_string = function
  | Unix_sock p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

let connect_endpoint = function
  | Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (fd, Unix.ADDR_UNIX path)
  | Tcp (host, port) ->
      let addr =
        match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
        | { Unix.ai_addr; _ } :: _ -> ai_addr
        | [] -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
      in
      let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      (fd, addr)

(* Failure attribution matters to whoever is holding the pager: a connect
   failure means "no daemon there" (wrong path, not started, crashed); an
   EAGAIN after a successful connect is the socket timeout expiring on a
   daemon that accepted but never answered — a very different bug. Keep
   the two reports distinct. *)
let request ~socket ?(timeout_s = 30.0) ?auth j =
  match parse_endpoint socket with
  | Error e -> Error e
  | Ok ep -> begin
      let fd, addr = connect_endpoint ep in
      let cleanup () = try Unix.close fd with Unix.Unix_error _ -> () in
      let where = endpoint_to_string ep in
      match Unix.connect fd addr with
      | exception Unix.Unix_error (err, _, _) ->
          cleanup ();
          Error
            (Printf.sprintf "cannot reach oblxd at %s: %s — is the daemon running?" where
               (Unix.error_message err))
      | () -> begin
          match
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
            Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
            (* Auth is pipelined: token line then request line, one read.
               A daemon that rejects the token answers the auth line with
               its single ok:false verdict, which is then what we read. *)
            (match auth with
            | Some token -> Proto.write_line fd (Proto.auth_to_json token)
            | None -> ());
            Proto.write_line fd j;
            Proto.read_line (Proto.line_reader fd)
          with
          | Some line -> begin
              cleanup ();
              match Json.of_string line with
              | Ok v -> Ok v
              | Error e -> Error (Printf.sprintf "malformed response: %s" e)
            end
          | None ->
              cleanup ();
              Error "connection closed by daemon before a response arrived"
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              cleanup ();
              Error
                (Printf.sprintf
                   "oblxd at %s did not respond within %.0f s — daemon wedged or overloaded?"
                   where timeout_s)
          | exception Unix.Unix_error (err, _, _) ->
              cleanup ();
              Error
                (Printf.sprintf "lost connection to oblxd at %s: %s" where
                   (Unix.error_message err))
          | exception Sys_error e ->
              cleanup ();
              Error e
        end
    end

(* A protocol-level failure (ok:false) folds into the Error channel here so
   callers see one kind of failure. *)
let checked ~socket ?timeout_s ?auth req =
  match request ~socket ?timeout_s ?auth (Proto.request_to_json req) with
  | Error e -> Error e
  | Ok resp -> begin
      match Proto.response_error resp with Some e -> Error e | None -> Ok resp
    end

let id_of resp =
  match Json.mem_opt "id" resp with
  | Some v -> Ok (Json.to_int v)
  | None -> Error "submit response carries no id"

let submit ~socket ?timeout_s ?auth s =
  Result.bind (checked ~socket ?timeout_s ?auth (Proto.Submit s)) id_of

let sweep ~socket ?timeout_s ?auth s =
  if s.Proto.sb_sweep = [] then Error "sweep: at least one variant required"
  else Result.bind (checked ~socket ?timeout_s ?auth (Proto.Sweep s)) id_of

let job_of resp =
  match Json.mem_opt "job" resp with
  | Some j -> Ok j
  | None -> Error "response carries no job record"

let status ~socket ?timeout_s ?auth id =
  Result.bind (checked ~socket ?timeout_s ?auth (Proto.Status id)) job_of

let result ~socket ?timeout_s ?auth id =
  Result.bind (checked ~socket ?timeout_s ?auth (Proto.Result id)) job_of

let cancel ~socket ?timeout_s ?auth id =
  Result.map (fun _ -> ()) (checked ~socket ?timeout_s ?auth (Proto.Cancel id))

let stats ~socket ?timeout_s ?auth () = checked ~socket ?timeout_s ?auth Proto.Stats

let shutdown ~socket ?timeout_s ?auth () =
  Result.map (fun _ -> ()) (checked ~socket ?timeout_s ?auth Proto.Shutdown)

let ping ~socket ?timeout_s ?auth () =
  Result.map (fun _ -> ()) (checked ~socket ?timeout_s ?auth Proto.Ping)

let cache_lookup ~socket ?timeout_s ?auth hash =
  match checked ~socket ?timeout_s ?auth (Proto.Cache_lookup hash) with
  | Error e -> Error e
  | Ok resp -> begin
      match Json.mem_opt "known" resp with
      | Some (Json.Bool false) -> Ok None
      | Some (Json.Bool true) -> begin
          match Json.mem_opt "compile_error" resp with
          | Some (Json.Str e) -> Ok (Some (Error e))
          | Some Json.Null | None -> Ok (Some (Ok ()))
          | Some _ -> Error "cache_lookup response carries a malformed compile_error"
        end
      | Some _ | None -> Error "cache_lookup response carries no known field"
    end

let cache_push ~socket ?timeout_s ?auth c =
  Result.map (fun _ -> ()) (checked ~socket ?timeout_s ?auth (Proto.Cache_push c))

let resynthesize ~socket ?timeout_s ?auth r =
  Result.bind (checked ~socket ?timeout_s ?auth (Proto.Resynthesize r)) id_of

let corpus_lookup ~socket ?timeout_s ?auth shape =
  match checked ~socket ?timeout_s ?auth (Proto.Corpus_lookup shape) with
  | Error e -> Error e
  | Ok resp -> begin
      match Json.mem_opt "entries" resp with
      | Some (Json.Arr es) ->
          let rec decode acc = function
            | [] -> Ok (List.rev acc)
            | e :: rest -> begin
                match Corpus.entry_of_json e with
                | Ok entry -> decode (entry :: acc) rest
                | Error m -> Error (Printf.sprintf "corpus_lookup: %s" m)
              end
          in
          decode [] es
      | Some _ | None -> Error "corpus_lookup response carries no entries"
    end

let corpus_push ~socket ?timeout_s ?auth entry =
  Result.map (fun _ -> ()) (checked ~socket ?timeout_s ?auth (Proto.Corpus_push entry))

let wait ~socket ?(poll_s = 0.05) ?(timeout_s = 600.0) ?auth id =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    match status ~socket ?auth id with
    | Error e -> Error e
    | Ok job -> begin
        match Json.mem_opt "state" job with
        | Some (Json.Str ("queued" | "running")) ->
            if Unix.gettimeofday () -. t0 > timeout_s then
              Error (Printf.sprintf "job %d still not finished after %.0f s" id timeout_s)
            else begin
              Unix.sleepf poll_s;
              go ()
            end
        | Some (Json.Str _) -> result ~socket ?auth id
        | Some _ | None -> Error "status response carries no state"
      end
  in
  go ()
