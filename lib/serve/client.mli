(** Client side of the oblxd protocol: one connection per request (the
    daemon serves connections concurrently, but a fresh connection per
    request keeps the client trivially correct and leaves no idle
    connection holding a slot), with socket timeouts so a wedged daemon
    surfaces as an [Error], never a hang. Used by the
    [astrx submit|status|...] subcommands, the serve bench, and the CI
    smoke test. *)

(** [request ~socket ?timeout_s j] sends one JSON line and reads one JSON
    line back. [Error] distinguishes the failure classes an operator
    debugs differently: ["cannot reach oblxd …"] (connect failed — daemon
    not running or wrong socket path) vs ["… did not respond within N s"]
    (connected, then the socket timeout expired — daemon wedged or
    overloaded) vs transport-level garbage. Protocol-level failures come
    back as [Ok] responses with ["ok":false] — test with
    {!Proto.response_error}. *)
val request : socket:string -> ?timeout_s:float -> Obs.Json.t -> (Obs.Json.t, string) result

(* Typed wrappers; each is [request] on the corresponding {!Proto.request}
   with ["ok"] checked. *)

val submit : socket:string -> ?timeout_s:float -> Proto.submit -> (int, string) result
val status : socket:string -> ?timeout_s:float -> int -> (Obs.Json.t, string) result
val result : socket:string -> ?timeout_s:float -> int -> (Obs.Json.t, string) result
val cancel : socket:string -> ?timeout_s:float -> int -> (unit, string) result
val stats : socket:string -> ?timeout_s:float -> unit -> (Obs.Json.t, string) result
val shutdown : socket:string -> ?timeout_s:float -> unit -> (unit, string) result

(** [wait ~socket ?poll_s ?timeout_s id] polls [status] until the job
    leaves [queued]/[running] (default poll 50 ms, timeout 600 s), then
    returns the full [result] response's ["job"] object. *)
val wait :
  socket:string -> ?poll_s:float -> ?timeout_s:float -> int -> (Obs.Json.t, string) result
