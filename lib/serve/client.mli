(** Client side of the oblxd protocol: one connection per request (the
    daemon serves connections concurrently, but a fresh connection per
    request keeps the client trivially correct and leaves no idle
    connection holding a slot), with socket timeouts so a wedged daemon
    surfaces as an [Error], never a hang. Used by the
    [astrx submit|status|...] subcommands, the fleet coordinator, the
    serve benches, and the CI smoke tests.

    Every entry point takes the daemon's address as an endpoint string:
    a Unix socket path ("/run/oblxd.sock", or explicitly "unix:PATH") or
    a TCP address ("host:4242", or explicitly "tcp:HOST:PORT"). [?auth]
    supplies the fleet's shared secret; it is pipelined as the
    connection's first line, so an authenticated request still costs one
    round trip. *)

type endpoint = Unix_sock of string | Tcp of string * int

(** [parse_endpoint s] — "unix:PATH" and "tcp:HOST:PORT" are explicit; a
    bare string is TCP when it looks like HOST:PORT (no '/', numeric
    port), a Unix socket path otherwise. *)
val parse_endpoint : string -> (endpoint, string) result

val endpoint_to_string : endpoint -> string

(** [request ~socket ?timeout_s ?auth j] sends one JSON line and reads one
    JSON line back. [Error] distinguishes the failure classes an operator
    debugs differently: ["cannot reach oblxd …"] (connect failed — daemon
    not running or wrong address) vs ["… did not respond within N s"]
    (connected, then the socket timeout expired — daemon wedged or
    overloaded) vs transport-level garbage. Protocol-level failures come
    back as [Ok] responses with ["ok":false] — test with
    {!Proto.response_error}. A rejected [?auth] token surfaces as the
    daemon's single ok:false line. *)
val request :
  socket:string -> ?timeout_s:float -> ?auth:string -> Obs.Json.t -> (Obs.Json.t, string) result

(* Typed wrappers; each is [request] on the corresponding {!Proto.request}
   with ["ok"] checked. *)

val submit :
  socket:string -> ?timeout_s:float -> ?auth:string -> Proto.submit -> (int, string) result

(** [sweep ~socket s] — the batch verb: [s.sb_sweep] must be non-empty.
    The returned id resolves (via {!wait}/{!result}) to a job record
    whose ["sweep"] field is the per-variant verdict table. *)
val sweep :
  socket:string -> ?timeout_s:float -> ?auth:string -> Proto.submit -> (int, string) result

val status :
  socket:string -> ?timeout_s:float -> ?auth:string -> int -> (Obs.Json.t, string) result

val result :
  socket:string -> ?timeout_s:float -> ?auth:string -> int -> (Obs.Json.t, string) result

val cancel : socket:string -> ?timeout_s:float -> ?auth:string -> int -> (unit, string) result
val stats : socket:string -> ?timeout_s:float -> ?auth:string -> unit -> (Obs.Json.t, string) result

val shutdown :
  socket:string -> ?timeout_s:float -> ?auth:string -> unit -> (unit, string) result

(** [ping ~socket ()] — liveness probe; [Ok ()] when the daemon answered. *)
val ping : socket:string -> ?timeout_s:float -> ?auth:string -> unit -> (unit, string) result

(** [cache_lookup ~socket hash] asks a peer for its compile verdict on a
    canon hash: [Ok None] unknown, [Ok (Some (Ok ()))] compiled fine
    there, [Ok (Some (Error msg))] failed there with [msg]. *)
val cache_lookup :
  socket:string ->
  ?timeout_s:float ->
  ?auth:string ->
  string ->
  ((unit, string) result option, string) result

(** [cache_push ~socket c] replicates a compile verdict to a peer
    (best-effort at the call sites: a dead peer is skipped, not fatal). *)
val cache_push :
  socket:string -> ?timeout_s:float -> ?auth:string -> Proto.cache_push -> (unit, string) result

(** [resynthesize ~socket r] — the warm fast path: rerun finished job
    [r.rz_id] with tweaked spec targets, seeded from its recorded winner,
    on a reduced schedule. Returns the new job's id. *)
val resynthesize :
  socket:string -> ?timeout_s:float -> ?auth:string -> Proto.resynth -> (int, string) result

(** [corpus_lookup ~socket shape] — a peer's winner-corpus entries for a
    shape hash, best cost first (possibly []). *)
val corpus_lookup :
  socket:string ->
  ?timeout_s:float ->
  ?auth:string ->
  string ->
  (Corpus.entry list, string) result

(** [corpus_push ~socket entry] replicates a recorded winner to a peer
    (best-effort at the call sites, like {!cache_push}). *)
val corpus_push :
  socket:string -> ?timeout_s:float -> ?auth:string -> Corpus.entry -> (unit, string) result

(** [wait ~socket ?poll_s ?timeout_s id] polls [status] until the job
    leaves [queued]/[running] (default poll 50 ms, timeout 600 s), then
    returns the full [result] response's ["job"] object. *)
val wait :
  socket:string ->
  ?poll_s:float ->
  ?timeout_s:float ->
  ?auth:string ->
  int ->
  (Obs.Json.t, string) result
