(** The synthesis fleet: what lets a daemon scale past one box.

    Three cooperating pieces, all riding the existing {!Proto} line
    protocol over {!Client} connections (Unix socket or authenticated
    TCP):

    {ul
    {- {b Scatter/steal/merge.} A daemon with registered peers that
       receives an ordinary multi-restart submit splits the restart
       budget [\[0, runs)] into contiguous shards — one per participant —
       and forwards each remote shard as a submit carrying
       [shard_lo]/[shard_hi] ({!Proto.submit.sb_shard}). Restart [k] of a
       shard anneals with the [k]-th RNG split stream of the same root
       seed ({!Core.Oblx.best_of}'s [restarts] contract), so the fleet
       performs exactly the restarts one big box would. A shard whose
       peer dies, answers garbage, or misses the steal deadline is
       {e stolen}: re-run locally over the same index range, producing
       the same bits. Merging folds per-shard winners in ascending shard
       order with strict [<] on the recorded {!Core.Oblx.score} — the
       exact winner rule [best_of] applies internally — so the fleet's
       answer is byte-for-byte the single-box answer.}
    {- {b Compile-cache replication.} Compiled problems hold closures and
       cannot cross the wire, so the fleet replicates compile {e
       verdicts}: on a local cache miss a daemon consults its directory
       of learned verdicts, then asks peers ([cache_lookup]); after
       compiling something new it pushes the verdict to peers
       best-effort ([cache_push]). A known-bad hash fails fast without
       recompiling; a known-good hash still compiles locally (once) but
       is counted as a remote hit.}
    {- {b Counters} for all of it in [stats_json], surfaced under
       ["fleet"] by the daemon's [stats] verb.}} *)

type t

type config = {
  peers : string list;  (** endpoint strings ({!Client.parse_endpoint}) *)
  auth : string option;  (** shared secret sent to peers *)
  steal_timeout_s : float;
      (** per-shard deadline: a peer that hasn't finished its shard by
          then is treated as dead and the shard is stolen *)
  rpc_timeout_s : float;  (** submit/lookup/push socket timeout *)
  directory_capacity : int;  (** replica-directory bound (FIFO eviction) *)
}

(** No peers, no auth, 60 s steal deadline, 5 s RPCs, 1024 directory
    entries. *)
val default_config : config

val create : config -> t

(** Peers can be rewired live — how tests and benches boot daemons on
    ephemeral ports first and introduce them afterwards, and how an
    operator drains a box (see docs/SERVER.md's runbook). *)
val peers : t -> string list

val set_peers : t -> string list -> unit
val auth : t -> string option

(** {2 Replicated compile-cache directory} *)

(** [lookup_remote t ~hash] — called on a local compile-cache miss:
    [Some (Ok ())] the fleet compiled this fine, [Some (Error msg)] the
    fleet knows it fails, [None] nobody knows. Directory first, then one
    RPC per peer until an answer; learned verdicts are remembered. *)
val lookup_remote : t -> hash:string -> (unit, string) result option

(** [push t ~hash ~error] — replicate a fresh local compile verdict to
    every peer, best-effort ([error = None] means it compiled). *)
val push : t -> hash:string -> error:string option -> unit

(** [record_push t ~hash ~error] — an inbound [cache_push] verb: note the
    verdict in the directory. *)
val record_push : t -> hash:string -> error:string option -> unit

(** Count an inbound [cache_lookup] verb (the answer comes from the local
    {!Core.Compile_cache}, not from here). *)
val record_served_lookup : t -> unit

(** {2 Winner-corpus replication}

    Same shape as verdict replication: finished winners travel to peers
    as [corpus_push] verbs, best-effort, and only when they carried new
    information locally — receivers absorb without re-propagating, which
    is loop-free on a full mesh. *)

(** [corpus_push t ~entry] — replicate a freshly recorded winner to every
    peer, best-effort. *)
val corpus_push : t -> entry:Corpus.entry -> unit

(** Count an inbound [corpus_push] verb (the entry lands in the pool's
    {!Corpus}, not here). *)
val record_corpus_inbound : t -> unit

(** Count an inbound [corpus_lookup] verb. *)
val record_served_corpus_lookup : t -> unit

(** {2 Scatter / steal / merge} *)

type shard_result = {
  sr_lo : int;
  sr_hi : int;  (** restart range [\[lo, hi)] this shard executed *)
  sr_peer : string option;  (** [None]: ran on this daemon *)
  sr_stolen : bool;  (** re-run locally after the peer failed *)
  sr_best_cost : float;
  sr_winner_restart : int;  (** global restart index of the shard winner *)
  sr_winner_score : float;  (** {!Core.Oblx.score} of the shard winner *)
  sr_predicted : (string * float option) list;
  sr_sizes : (string * float) list;
  sr_moves : int;
  sr_evals : int;
  sr_cut_reason : string option;
  sr_warm : string option;
      (** the shard winner's seed provenance ({!Core.Oblx.result.warm}) *)
  sr_winner : (float array * int array * float array) option;
      (** shard winner's (values, grid indices, Hustin probs); [None] on
          older peers whose job records lack the winner arrays *)
}

(** [split_shards ~runs ~parts] — contiguous ascending ranges covering
    [\[0, runs)], at most [runs] of them; the first [runs mod parts]
    shards take the remainder. *)
val split_shards : runs:int -> parts:int -> (int * int) list

(** [scatter t ~submit ~run_local] — shard [submit]'s restart budget over
    this daemon + peers; shard 0 runs locally via [run_local], the rest
    go to peers (each on its own thread, as a sharded submit that is never
    re-scattered). Any remote failure — refused submit, dead connection,
    non-[done] terminal state, or the steal deadline — steals the shard
    back through [run_local]. Returns every shard's result in ascending
    [sr_lo] order, or [Error] if a shard could not run even locally. *)
val scatter :
  t ->
  submit:Proto.submit ->
  run_local:(lo:int -> hi:int -> (shard_result, string) result) ->
  (shard_result list, string) result

(** [merge shards] — the fleet winner: fold in list order with strict [<]
    on [sr_winner_score], keeping the earliest shard on ties. Applied to
    {!scatter}'s output this reproduces {!Core.Oblx.best_of}'s winner
    bit-for-bit. *)
val merge : shard_result list -> shard_result option

(** {2 Stats} *)

(** The ["fleet"] block of the daemon's [stats] response. *)
val stats_json : t -> Obs.Json.t

val remote_hits : t -> int
