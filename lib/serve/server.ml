module Json = Obs.Json

type config = {
  socket_path : string;
  tcp : (string * int) option;
  auth_token : string option;
  max_connections : int;
  idle_timeout_s : float;
  pool : Pool.config;
}

let default_max_connections = 32
let default_idle_timeout_s = 30.0

(* ------------------------------------------------------------------ *)
(* Connection registry                                                 *)
(* ------------------------------------------------------------------ *)

(* Each accepted connection gets its own thread (they spend their lives
   blocked in [read]; requests themselves are table lookups, so threads —
   not domains — are the right weight). The registry tracks live fds so
   shutdown can nudge blocked readers awake, and counts
   accepted/rejected connections for [stats]. *)
type registry = {
  r_mutex : Mutex.t;
  r_conns : (int, Unix.file_descr) Hashtbl.t;  (** live connections *)
  r_threads : (int, Thread.t) Hashtbl.t;
  mutable r_dead : Thread.t list;  (** finished, awaiting a reaping join *)
  mutable r_next : int;
  mutable r_total : int;  (** accepted over the daemon's lifetime *)
  mutable r_rejected : int;  (** turned away at the connection cap *)
  mutable r_auth_failures : int;  (** closed after a wrong/missing token *)
}

let registry_create () =
  {
    r_mutex = Mutex.create ();
    r_conns = Hashtbl.create 32;
    r_threads = Hashtbl.create 32;
    r_dead = [];
    r_next = 0;
    r_total = 0;
    r_rejected = 0;
    r_auth_failures = 0;
  }

let with_registry reg f =
  Mutex.lock reg.r_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg.r_mutex) f

let num_i i = Json.Num (float_of_int i)

let connections_json cfg reg =
  with_registry reg (fun () ->
      Json.Obj
        [
          ("active", num_i (Hashtbl.length reg.r_conns));
          ("max", num_i cfg.max_connections);
          ("total", num_i reg.r_total);
          ("rejected", num_i reg.r_rejected);
          ("auth_failures", num_i reg.r_auth_failures);
        ])

(* ------------------------------------------------------------------ *)
(* Request dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let handle cfg reg pool stop (req : Proto.request) =
  match req with
  | Proto.Submit s | Proto.Sweep s -> begin
      (* A sweep is a submit whose sb_sweep is non-empty; the decoder
         already rejected an empty variant list, and the pool's own
         validation covers anything handed to it in-process. *)
      match Pool.submit pool s with
      | Ok id -> Proto.ok [ ("id", num_i id) ]
      | Error e -> Proto.err e
    end
  | Proto.Status id -> begin
      match Pool.status_json pool id with
      | Ok j -> Proto.ok [ ("job", j) ]
      | Error e -> Proto.err e
    end
  | Proto.Result id -> begin
      match Pool.result_json pool id with
      | Ok j -> Proto.ok [ ("job", j) ]
      | Error e -> Proto.err e
    end
  | Proto.Cancel id -> begin
      match Pool.cancel pool id with Ok () -> Proto.ok [] | Error e -> Proto.err e
    end
  | Proto.Stats -> begin
      match Pool.stats_json pool with
      | Json.Obj fields ->
          Json.Obj (fields @ [ ("connections", connections_json cfg reg) ])
      | j -> j
    end
  | Proto.Cache_lookup hash -> begin
      (* What do *I* know about this canon hash — never a recursive ask
         around the fleet, so lookups between peers can't loop. *)
      match Pool.cache_peek pool ~hash with
      | None -> Proto.ok [ ("known", Json.Bool false) ]
      | Some (Ok ()) ->
          Proto.ok [ ("known", Json.Bool true); ("compile_error", Json.Null) ]
      | Some (Error e) ->
          Proto.ok [ ("known", Json.Bool true); ("compile_error", Json.Str e) ]
    end
  | Proto.Cache_push c ->
      Pool.cache_note pool ~hash:c.Proto.cp_hash ~error:c.Proto.cp_error;
      Proto.ok []
  | Proto.Resynthesize r -> begin
      match Pool.resynthesize pool r with
      | Ok id -> Proto.ok [ ("id", num_i id) ]
      | Error e -> Proto.err e
    end
  | Proto.Corpus_lookup shape ->
      (* Same non-recursive contract as cache_lookup: only what *my*
         corpus holds for this shape. *)
      Proto.ok
        [
          ( "entries",
            Json.Arr
              (List.map Corpus.entry_to_json (Pool.corpus_lookup pool ~shape)) );
        ]
  | Proto.Corpus_push entry ->
      Pool.corpus_note pool entry;
      Proto.ok []
  | Proto.Ping -> Proto.ok []
  | Proto.Shutdown ->
      Atomic.set stop true;
      Proto.ok [ ("shutting_down", Json.Bool true) ]

(* One connection: requests line by line until EOF, idle timeout, or
   shutdown. A malformed line gets an error response rather than a dropped
   connection, so a misbehaving client can diagnose itself.

   With an auth token configured, the first line must be {"auth":TOKEN}.
   Success is silent (the client pipelines auth + request); anything else
   — wrong token, or a first line that is not an auth line at all — gets
   exactly one ok:false response, then the connection closes. The read
   timeout is already armed, so a connection that never sends its token is
   shed by the same clock as an idle one. *)
let serve_connection cfg reg pool stop fd =
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO cfg.idle_timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO cfg.idle_timeout_s
   with Unix.Unix_error _ -> ());
  let reader = Proto.line_reader fd in
  let authed =
    match cfg.auth_token with
    | None -> true
    | Some token -> begin
        match Proto.read_line reader with
        | None -> false (* EOF before a token: nothing to answer *)
        | Some line -> begin
            let presented =
              match Json.of_string line with
              | Ok j -> Proto.auth_of_json j
              | Error _ -> None
            in
            match presented with
            | Some p when Proto.token_equal p token -> true
            | Some _ | None ->
                with_registry reg (fun () ->
                    reg.r_auth_failures <- reg.r_auth_failures + 1);
                (try Proto.write_line fd (Proto.err Proto.auth_failed_message)
                 with Unix.Unix_error _ | Sys_error _ -> ());
                false
          end
      end
  in
  let rec loop () =
    if Atomic.get stop then ()
    else
      match Proto.read_line reader with
      | None -> ()
      | Some line when String.trim line = "" -> loop ()
      | Some line ->
          (match Json.of_string line with
          | Error e -> Proto.write_line fd (Proto.err (Printf.sprintf "bad JSON: %s" e))
          | Ok j -> begin
              match Proto.request_of_json j with
              | Error e ->
                  Proto.write_line fd (Proto.err (Printf.sprintf "bad request: %s" e))
              | Ok req -> Proto.write_line fd (handle cfg reg pool stop req)
            end);
          loop ()
  in
  (* EAGAIN is the idle timeout expiring between requests (or before the
     auth line ever arrived): the connection has gone quiet, reclaim its
     slot. A client that vanished mid-response (EPIPE, reset) is its
     problem, not the daemon's. *)
  (if authed then try loop () with Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Accept loop                                                         *)
(* ------------------------------------------------------------------ *)

let spawn_connection cfg reg pool stop fd =
  (* Reap finished threads first so the bookkeeping stays O(live). *)
  let dead =
    with_registry reg (fun () ->
        let d = reg.r_dead in
        reg.r_dead <- [];
        d)
  in
  List.iter Thread.join dead;
  let admitted =
    with_registry reg (fun () ->
        if Hashtbl.length reg.r_conns >= cfg.max_connections then begin
          reg.r_rejected <- reg.r_rejected + 1;
          false
        end
        else begin
          let id = reg.r_next in
          reg.r_next <- id + 1;
          reg.r_total <- reg.r_total + 1;
          Hashtbl.replace reg.r_conns id fd;
          let thread =
            Thread.create
              (fun () ->
                Fun.protect
                  ~finally:(fun () ->
                    with_registry reg (fun () ->
                        Hashtbl.remove reg.r_conns id;
                        Hashtbl.remove reg.r_threads id;
                        reg.r_dead <- Thread.self () :: reg.r_dead))
                  (fun () -> serve_connection cfg reg pool stop fd))
              ()
          in
          (* The finally above also takes [r_mutex], so this registration
             always lands before the thread's own deregistration. *)
          Hashtbl.replace reg.r_threads id thread;
          true
        end)
  in
  if not admitted then begin
    (* Over the cap: refuse with one error line, then close. The short
       send timeout keeps a non-reading client from wedging the accept
       loop. *)
    (try
       Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0;
       Proto.write_line fd (Proto.err (Proto.busy_message cfg.max_connections))
     with Unix.Unix_error _ | Sys_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  end

let run ?ready ?tcp_port ?pool:existing_pool config =
  let stop = Atomic.make false in
  (* Graceful signals: finish in-flight responses, then drain. SIGPIPE
     must not kill the daemon when a client disconnects mid-write. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let on_signal _ = Atomic.set stop true in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal) with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal) with Invalid_argument _ -> ());
  let unix_listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  Unix.bind unix_listener (Unix.ADDR_UNIX config.socket_path);
  Unix.listen unix_listener 64;
  (* The TCP listener rides next to the Unix socket: same protocol, same
     dispatch, plus the auth gate. Binding port 0 picks an ephemeral port,
     reported through [tcp_port] — how in-process fleets wire a mesh of
     daemons that didn't know each other's ports in advance. *)
  let tcp_listener =
    match config.tcp with
    | None -> None
    | Some (host, port) ->
        let addr =
          if host = "" || host = "*" then Unix.inet_addr_any
          else begin
            try Unix.inet_addr_of_string host
            with Failure _ -> (
              match Unix.getaddrinfo host "" [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
              | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
              | _ -> Unix.inet_addr_loopback)
          end
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (addr, port));
        Unix.listen fd 64;
        (match (tcp_port, Unix.getsockname fd) with
        | Some f, Unix.ADDR_INET (_, bound) -> f bound
        | _ -> ());
        Some fd
  in
  let pool = match existing_pool with Some p -> p | None -> Pool.create config.pool in
  let reg = registry_create () in
  (match ready with Some f -> f () | None -> ());
  let listeners = unix_listener :: Option.to_list tcp_listener in
  let accept_from listener =
    match Unix.accept listener with
    | fd, _ ->
        (* TCP accepts inherit Nagle; every response is one small line, so
           flush it immediately. *)
        (if Some listener = tcp_listener then
           try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        spawn_connection config reg pool stop fd
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ()
  in
  let rec accept_loop () =
    if Atomic.get stop then ()
    else begin
      (* Select with a short timeout so a signal or shutdown request is
         honoured even while no client is connecting. *)
      (match Unix.select listeners [] [] 0.25 with
      | readable, _, _ -> List.iter accept_from readable
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* Graceful drain: close every listener first — both transports stop
     accepting the moment shutdown begins, so no connection can slip in
     half-authenticated while the daemon is dying. Then nudge connection
     threads: ones blocked *in* a read get their read side shut down,
     which reads as EOF — the response they were writing has already
     flushed (writes complete before the loop returns to read). Join
     everything before the pool stops and the socket file unlinks. *)
  List.iter (fun l -> try Unix.close l with Unix.Unix_error _ -> ()) listeners;
  let threads =
    with_registry reg (fun () ->
        Hashtbl.iter
          (fun _ fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
          reg.r_conns;
        let live = Hashtbl.fold (fun _ th acc -> th :: acc) reg.r_threads [] in
        let dead = reg.r_dead in
        reg.r_dead <- [];
        live @ dead)
  in
  List.iter Thread.join threads;
  Pool.shutdown pool;
  try Unix.unlink config.socket_path with Unix.Unix_error _ -> ()
