module Json = Obs.Json

type config = {
  socket_path : string;
  pool : Pool.config;
}

let handle pool stop (req : Proto.request) =
  match req with
  | Proto.Submit s -> begin
      match Pool.submit pool s with
      | Ok id -> Proto.ok [ ("id", Json.Num (float_of_int id)) ]
      | Error e -> Proto.err e
    end
  | Proto.Status id -> begin
      match Pool.status_json pool id with
      | Ok j -> Proto.ok [ ("job", j) ]
      | Error e -> Proto.err e
    end
  | Proto.Result id -> begin
      match Pool.result_json pool id with
      | Ok j -> Proto.ok [ ("job", j) ]
      | Error e -> Proto.err e
    end
  | Proto.Cancel id -> begin
      match Pool.cancel pool id with Ok () -> Proto.ok [] | Error e -> Proto.err e
    end
  | Proto.Stats -> Pool.stats_json pool
  | Proto.Shutdown ->
      Atomic.set stop true;
      Proto.ok [ ("shutting_down", Json.Bool true) ]

(* One connection: requests line by line until EOF. A malformed line gets
   an error response rather than a dropped connection, so a misbehaving
   client can diagnose itself. *)
let serve_connection pool stop fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let respond j =
    output_string oc (Json.to_string j);
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    if Atomic.get stop then ()
    else
      match input_line ic with
      | exception End_of_file -> ()
      | line when String.trim line = "" -> loop ()
      | line ->
          (match Json.of_string line with
          | Error e -> respond (Proto.err (Printf.sprintf "bad JSON: %s" e))
          | Ok j -> begin
              match Proto.request_of_json j with
              | Error e -> respond (Proto.err (Printf.sprintf "bad request: %s" e))
              | Ok req -> respond (handle pool stop req)
            end);
          loop ()
  in
  (* A client that vanished mid-response (EPIPE, reset) is its problem,
     not the daemon's. *)
  (try loop () with Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let run ?ready config =
  let stop = Atomic.make false in
  (* Graceful signals: finish the in-flight request, then drain. SIGPIPE
     must not kill the daemon when a client disconnects mid-write. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let on_signal _ = Atomic.set stop true in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal) with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal) with Invalid_argument _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  Unix.bind listener (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listener 64;
  let pool = Pool.create config.pool in
  (match ready with Some f -> f () | None -> ());
  let rec accept_loop () =
    if Atomic.get stop then ()
    else begin
      (* Select with a short timeout so a signal or shutdown request is
         honoured even while no client is connected. *)
      (match Unix.select [ listener ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> begin
          match Unix.accept listener with
          | fd, _ -> serve_connection pool stop fd
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ()
        end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  Pool.shutdown pool;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  try Unix.unlink config.socket_path with Unix.Unix_error _ -> ()
