module Json = Obs.Json

(* ------------------------------------------------------------------ *)
(* Configuration and state                                             *)
(* ------------------------------------------------------------------ *)

type config = {
  peers : string list;
  auth : string option;
  steal_timeout_s : float;
  rpc_timeout_s : float;
  directory_capacity : int;
}

let default_config =
  { peers = []; auth = None; steal_timeout_s = 60.0; rpc_timeout_s = 5.0; directory_capacity = 1024 }

type t = {
  mutex : Mutex.t;
  mutable peers : string list;
  auth : string option;
  steal_timeout_s : float;
  rpc_timeout_s : float;
  (* The replica directory: canon hash -> compile verdict learned from the
     fleet ([None] = compiled fine somewhere, [Some msg] = failed there).
     Compiled problems hold closures and never cross the wire, so this is
     metadata only — a known-good hash still compiles locally (once), a
     known-bad hash fails fast without compiling at all. FIFO-bounded. *)
  directory : (string, string option) Hashtbl.t;
  dir_order : string Queue.t;
  directory_capacity : int;
  mutable remote_hits : int;  (** local misses answered by directory or a peer *)
  mutable remote_lookups : int;  (** outbound cache_lookup RPCs *)
  mutable pushes : int;
  mutable push_failures : int;
  mutable inbound_pushes : int;  (** cache_push verbs served *)
  mutable served_lookups : int;  (** cache_lookup verbs served *)
  mutable scatters : int;
  mutable remote_shards : int;  (** shards a peer completed for us *)
  mutable steals : int;  (** shards re-run locally after a peer failed *)
  mutable corpus_pushes : int;  (** winner entries accepted by peers *)
  mutable corpus_push_failures : int;
  mutable corpus_inbound : int;  (** corpus_push verbs served *)
  mutable corpus_served_lookups : int;  (** corpus_lookup verbs served *)
}

let create (cfg : config) =
  if cfg.steal_timeout_s <= 0.0 then invalid_arg "Fleet.create: steal_timeout_s must be > 0";
  if cfg.directory_capacity < 1 then invalid_arg "Fleet.create: directory_capacity must be >= 1";
  {
    mutex = Mutex.create ();
    peers = cfg.peers;
    auth = cfg.auth;
    steal_timeout_s = cfg.steal_timeout_s;
    rpc_timeout_s = cfg.rpc_timeout_s;
    directory = Hashtbl.create 64;
    dir_order = Queue.create ();
    directory_capacity = cfg.directory_capacity;
    remote_hits = 0;
    remote_lookups = 0;
    pushes = 0;
    push_failures = 0;
    inbound_pushes = 0;
    served_lookups = 0;
    scatters = 0;
    remote_shards = 0;
    steals = 0;
    corpus_pushes = 0;
    corpus_push_failures = 0;
    corpus_inbound = 0;
    corpus_served_lookups = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let peers t = locked t (fun () -> t.peers)
let set_peers t peers = locked t (fun () -> t.peers <- peers)
let auth t = t.auth

(* ------------------------------------------------------------------ *)
(* Replicated compile-cache directory                                  *)
(* ------------------------------------------------------------------ *)

(* Caller holds the lock. *)
let note_locked t ~hash ~error =
  if Hashtbl.mem t.directory hash then Hashtbl.replace t.directory hash error
  else begin
    if Queue.length t.dir_order >= t.directory_capacity then begin
      let victim = Queue.pop t.dir_order in
      Hashtbl.remove t.directory victim
    end;
    Queue.push hash t.dir_order;
    Hashtbl.add t.directory hash error
  end

let record_push t ~hash ~error =
  locked t (fun () ->
      t.inbound_pushes <- t.inbound_pushes + 1;
      note_locked t ~hash ~error)

let record_served_lookup t = locked t (fun () -> t.served_lookups <- t.served_lookups + 1)

let verdict_of = function None -> Ok () | Some e -> Error e

(* On a local cache miss: the directory first (free), then each peer in
   order (one bounded RPC each). A learned verdict lands in the directory
   so the next miss on this hash asks no one. *)
let lookup_remote t ~hash =
  let dir = locked t (fun () -> Hashtbl.find_opt t.directory hash) in
  match dir with
  | Some verdict ->
      locked t (fun () -> t.remote_hits <- t.remote_hits + 1);
      Some (verdict_of verdict)
  | None -> begin
      let rec ask = function
        | [] -> None
        | peer :: rest -> begin
            locked t (fun () -> t.remote_lookups <- t.remote_lookups + 1);
            match
              Client.cache_lookup ~socket:peer ?auth:t.auth ~timeout_s:t.rpc_timeout_s hash
            with
            | Ok (Some verdict) ->
                locked t (fun () ->
                    t.remote_hits <- t.remote_hits + 1;
                    note_locked t ~hash
                      ~error:(match verdict with Ok () -> None | Error e -> Some e));
                Some verdict
            | Ok None | Error _ -> ask rest
          end
      in
      ask (peers t)
    end

let record_corpus_inbound t = locked t (fun () -> t.corpus_inbound <- t.corpus_inbound + 1)

let record_served_corpus_lookup t =
  locked t (fun () -> t.corpus_served_lookups <- t.corpus_served_lookups + 1)

(* Winner replication, same best-effort contract as verdict [push]: a dead
   peer costs one timed-out RPC and a counter. Only entries that carried
   new information locally are pushed (the pool checks), and receivers do
   not re-propagate — each daemon tells every peer directly, so that is
   enough for a full mesh without echo. *)
let corpus_push t ~entry =
  List.iter
    (fun peer ->
      match Client.corpus_push ~socket:peer ?auth:t.auth ~timeout_s:t.rpc_timeout_s entry with
      | Ok () -> locked t (fun () -> t.corpus_pushes <- t.corpus_pushes + 1)
      | Error _ -> locked t (fun () -> t.corpus_push_failures <- t.corpus_push_failures + 1))
    (peers t)

(* Best-effort: a dead peer costs one timed-out RPC and a counter, never a
   failed job. *)
let push t ~hash ~error =
  List.iter
    (fun peer ->
      match
        Client.cache_push ~socket:peer ?auth:t.auth ~timeout_s:t.rpc_timeout_s
          { Proto.cp_hash = hash; cp_error = error }
      with
      | Ok () -> locked t (fun () -> t.pushes <- t.pushes + 1)
      | Error _ -> locked t (fun () -> t.push_failures <- t.push_failures + 1))
    (peers t)

(* ------------------------------------------------------------------ *)
(* Scatter / steal / merge                                             *)
(* ------------------------------------------------------------------ *)

type shard_result = {
  sr_lo : int;
  sr_hi : int;
  sr_peer : string option;
  sr_stolen : bool;
  sr_best_cost : float;
  sr_winner_restart : int;
  sr_winner_score : float;
  sr_predicted : (string * float option) list;
  sr_sizes : (string * float) list;
  sr_moves : int;
  sr_evals : int;
  sr_cut_reason : string option;
  sr_warm : string option;  (** winning restart's seed provenance label *)
  sr_winner : (float array * int array * float array) option;
      (** winner's (values, grid indices, Hustin probs) — what the
          coordinator records in its corpus when this shard wins *)
}

(* Contiguous ascending shards covering [0, runs); the first [runs mod
   parts] shards take the remainder. Never more shards than runs. *)
let split_shards ~runs ~parts =
  let parts = Int.max 1 (Int.min parts runs) in
  let base = runs / parts and rem = runs mod parts in
  let rec go i lo acc =
    if i >= parts then List.rev acc
    else begin
      let len = base + if i < rem then 1 else 0 in
      go (i + 1) (lo + len) ((lo, lo + len) :: acc)
    end
  in
  go 0 0 []

let jnum j k = match Json.mem_opt k j with Some (Json.Num v) -> Some v | _ -> None
let jint j k = Option.map int_of_float (jnum j k)
let jstr j k = match Json.mem_opt k j with Some (Json.Str s) -> Some s | _ -> None

(* A peer's finished shard job back into a shard result. The floats made
   the round trip through %.17g JSON, so best_cost and winner_score are
   the exact bits the peer computed — the merge below stays bit-identical
   to a local fold. Anything other than a clean "done" record is a steal
   trigger, not a partial answer. *)
let shard_result_of_job ~lo ~hi ~peer job =
  match jstr job "state" with
  | Some "done" -> begin
      match (jnum job "best_cost", jint job "winner_restart", jnum job "winner_score") with
      | Some best_cost, Some winner_restart, Some winner_score ->
          let pairs k f =
            match Json.mem_opt k job with
            | Some (Json.Obj kvs) -> List.filter_map f kvs
            | _ -> []
          in
          Ok
            {
              sr_lo = lo;
              sr_hi = hi;
              sr_peer = Some peer;
              sr_stolen = false;
              sr_best_cost = best_cost;
              sr_winner_restart = winner_restart;
              sr_winner_score = winner_score;
              sr_predicted =
                pairs "predicted" (fun (k, v) ->
                    match v with
                    | Json.Num v -> Some (k, Some v)
                    | Json.Null -> Some (k, None)
                    | _ -> None);
              sr_sizes =
                pairs "sizes" (fun (k, v) ->
                    match v with Json.Num v -> Some (k, v) | _ -> None);
              sr_moves = Option.value (jint job "moves") ~default:0;
              sr_evals = Option.value (jint job "evals") ~default:0;
              sr_cut_reason = jstr job "cut_reason";
              sr_warm = jstr job "warm";
              sr_winner =
                (let arr k =
                   match Json.mem_opt k job with
                   | Some (Json.Arr vs) ->
                       Some
                         (Array.of_list
                            (List.filter_map
                               (function Json.Num v -> Some v | _ -> None)
                               vs))
                   | _ -> None
                 in
                 match (arr "winner_values", arr "winner_grid", arr "winner_probs") with
                 | Some values, Some grid, Some probs when values <> [||] ->
                     Some (values, Array.map int_of_float grid, probs)
                 | _ -> None);
            }
      | _ -> Error (Printf.sprintf "peer %s: shard record lacks winner fields" peer)
    end
  | Some state -> Error (Printf.sprintf "peer %s: shard finished %s" peer state)
  | None -> Error (Printf.sprintf "peer %s: shard record lacks state" peer)

let run_remote t ~submit ~peer ~lo ~hi =
  let sub =
    {
      submit with
      Proto.sb_shard = Some (lo, hi);
      (* Shard jobs keep their own rings off: the coordinator's record is
         the job of record; a shard's trace would only tell a shard story. *)
      sb_trace = false;
      sb_name =
        (let base = submit.Proto.sb_name in
         Printf.sprintf "%s#shard[%d,%d)" (if base = "" then "job" else base) lo hi);
    }
  in
  match Client.submit ~socket:peer ?auth:t.auth ~timeout_s:t.rpc_timeout_s sub with
  | Error e -> Error e
  | Ok id -> begin
      match
        Client.wait ~socket:peer ?auth:t.auth ~poll_s:0.05 ~timeout_s:t.steal_timeout_s id
      with
      | Error e -> Error e
      | Ok job -> shard_result_of_job ~lo ~hi ~peer job
    end

(* Scatter [submit]'s restart budget over self + peers, steal failed or
   slow shards back (re-running them locally through [run_local]), and
   return every shard's result in ascending [sr_lo] order. Because restart
   [k] of a shard is restart [k] of the unsharded run (Oblx's [restarts]
   contract) and each shard reports its winner's {!Oblx.score}, a
   left-biased strict-< fold over this list in order reproduces the
   winner one big box would pick, byte for byte — wherever each shard
   actually ran, steals included. *)
let scatter t ~(submit : Proto.submit) ~run_local =
  let ps = peers t in
  locked t (fun () -> t.scatters <- t.scatters + 1);
  let shards = split_shards ~runs:submit.Proto.sb_runs ~parts:(1 + List.length ps) in
  match shards with
  | [] -> Error "no shards" (* unreachable: runs >= 1 *)
  | local :: remote ->
      let remote =
        List.mapi (fun i (lo, hi) -> (i + 1, List.nth ps i, lo, hi)) remote
      in
      let n = 1 + List.length remote in
      let results = Array.make n (Error "shard never ran") in
      let steal ~lo ~hi reason =
        locked t (fun () -> t.steals <- t.steals + 1);
        match run_local ~lo ~hi with
        | Ok sr -> Ok { sr with sr_stolen = true }
        | Error e ->
            Error (Printf.sprintf "shard [%d,%d): peer failed (%s), steal failed (%s)" lo hi reason e)
      in
      let threads =
        List.map
          (fun (idx, peer, lo, hi) ->
            Thread.create
              (fun () ->
                results.(idx) <-
                  (match run_remote t ~submit ~peer ~lo ~hi with
                  | Ok sr ->
                      locked t (fun () -> t.remote_shards <- t.remote_shards + 1);
                      Ok sr
                  | Error reason -> steal ~lo ~hi reason))
              ())
          remote
      in
      (let lo, hi = local in
       results.(0) <- run_local ~lo ~hi);
      List.iter Thread.join threads;
      let rec collect i acc =
        if i < 0 then Ok acc
        else begin
          match results.(i) with
          | Ok sr -> collect (i - 1) (sr :: acc)
          | Error e -> Error e
        end
      in
      (* Slot order is shard order is ascending lo. *)
      collect (n - 1) []

(* The winner rule of [Oblx.best_of], lifted to shards: strict < keeps the
   earliest shard on ties, and within a shard the daemon that ran it
   already kept the earliest restart. *)
let merge shards =
  match shards with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun best sr -> if sr.sr_winner_score < best.sr_winner_score then sr else best)
           first rest)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let num_i i = Json.Num (float_of_int i)

let stats_json t =
  locked t (fun () ->
      Json.Obj
        [
          ("peers", Json.Arr (List.map (fun p -> Json.Str p) t.peers));
          ("remote_hits", num_i t.remote_hits);
          ("remote_lookups", num_i t.remote_lookups);
          ("pushes", num_i t.pushes);
          ("push_failures", num_i t.push_failures);
          ("inbound_pushes", num_i t.inbound_pushes);
          ("served_lookups", num_i t.served_lookups);
          ("directory_entries", num_i (Hashtbl.length t.directory));
          ("scatters", num_i t.scatters);
          ("remote_shards", num_i t.remote_shards);
          ("steals", num_i t.steals);
          ("corpus_pushes", num_i t.corpus_pushes);
          ("corpus_push_failures", num_i t.corpus_push_failures);
          ("corpus_inbound", num_i t.corpus_inbound);
          ("corpus_served_lookups", num_i t.corpus_served_lookups);
        ])

let remote_hits t = locked t (fun () -> t.remote_hits)
