module Json = Obs.Json

(* One cell of a sweep grid: the same netlist re-judged under an optional
   device corner and/or overridden good/bad spec targets. *)
type variant = {
  vr_name : string;
  vr_corner : string option;
  vr_specs : (string * float * float) list;  (* spec name, good, bad *)
}

type submit = {
  sb_name : string;
  sb_source : string;
  sb_seed : int;
  sb_moves : int option;
  sb_runs : int;
  sb_priority : int;
  sb_deadline_s : float option;
  sb_trace : bool;
  sb_shard : (int * int) option;
  sb_sweep : variant list;
      (* non-empty marks a sweep job: one synthesis per variant, sharing
         one compile per distinct (canon, corner) key; never scattered *)
  sb_warm : Corpus.entry list;
      (* the job's warm-start snapshot: restart k < |sb_warm| seeds from
         entry k. Filled by the pool at submit time (from its corpus) and
         journaled with the submit, so a replayed job re-runs from the
         same seeds regardless of what the live corpus holds by then. *)
  sb_spec_overrides : (string * float * float) list;
      (* good/bad re-targets applied to the compiled problem without
         recompiling — the resynthesize fast path's spec tweak *)
}

type cache_push = { cp_hash : string; cp_error : string option }

(* The resynthesize fast path: rerun a finished job with tweaked spec
   targets, warm-started from its winner, on a reduced schedule. A spec's
   bad target is optional — omitted means "keep the parent's", which the
   pool resolves against the parent's source and overrides. *)
type resynth = {
  rz_id : int;
  rz_specs : (string * float * float option) list;
  rz_runs : int option;  (* None: half the parent's restarts *)
  rz_moves : int option;  (* None: half the parent's explicit budget *)
  rz_deadline_s : float option;
  rz_trace : bool;
}

type request =
  | Submit of submit
  | Sweep of submit  (** sb_sweep non-empty: per-variant verdict table *)
  | Resynthesize of resynth
  | Status of int
  | Result of int
  | Cancel of int
  | Stats
  | Shutdown
  | Cache_lookup of string
  | Cache_push of cache_push
  | Corpus_lookup of string  (** shape hash *)
  | Corpus_push of Corpus.entry
  | Ping

let num_i i = Json.Num (float_of_int i)
let opt f = function Some v -> f v | None -> Json.Null

(* Spec re-targets cross the wire in the sweep-variant shape:
   an object mapping spec name to [good, bad]. *)
let specs_to_json specs =
  Json.Obj
    (List.map (fun (n, good, bad) -> (n, Json.Arr [ Json.Num good; Json.Num bad ])) specs)

let specs_of_json ~what = function
  | Json.Obj kvs ->
      List.map
        (fun (n, v) ->
          match v with
          | Json.Arr [ good; bad ] -> (n, Json.to_float good, Json.to_float bad)
          | _ -> raise (Json.Decode_error (what ^ ": spec override must be [good, bad]")))
        kvs
  | _ -> raise (Json.Decode_error (what ^ ": spec overrides must be an object"))

let variant_to_json (v : variant) =
  Json.Obj
    [
      ("name", Json.Str v.vr_name);
      ("corner", opt (fun c -> Json.Str c) v.vr_corner);
      ( "specs",
        Json.Obj
          (List.map
             (fun (n, good, bad) -> (n, Json.Arr [ Json.Num good; Json.Num bad ]))
             v.vr_specs) );
    ]

let variant_of_json j =
  let name =
    match Json.mem_opt "name" j with
    | Some v -> Json.to_str v
    | None -> raise (Json.Decode_error "variant: missing field \"name\"")
  in
  let corner =
    match Json.mem_opt "corner" j with
    | Some Json.Null | None -> None
    | Some v -> Some (Json.to_str v)
  in
  let specs =
    match Json.mem_opt "specs" j with
    | Some Json.Null | None -> []
    | Some v -> specs_of_json ~what:"variant" v
  in
  { vr_name = name; vr_corner = corner; vr_specs = specs }

let submit_fields (s : submit) =
  [
    ("name", Json.Str s.sb_name);
    ("source", Json.Str s.sb_source);
    ("seed", num_i s.sb_seed);
    ("moves", opt num_i s.sb_moves);
    ("runs", num_i s.sb_runs);
    ("priority", num_i s.sb_priority);
    ("deadline_s", opt (fun v -> Json.Num v) s.sb_deadline_s);
    ("trace", Json.Bool s.sb_trace);
    ("shard_lo", opt (fun (lo, _) -> num_i lo) s.sb_shard);
    ("shard_hi", opt (fun (_, hi) -> num_i hi) s.sb_shard);
  ]
  @ (match s.sb_sweep with
    | [] -> []
    | vs -> [ ("variants", Json.Arr (List.map variant_to_json vs)) ])
  @ (match s.sb_warm with
    | [] -> []
    | es -> [ ("warm", Json.Arr (List.map Corpus.entry_to_json es)) ])
  @
  match s.sb_spec_overrides with
  | [] -> []
  | specs -> [ ("spec_overrides", specs_to_json specs) ]

let request_to_json = function
  | Submit s -> Json.Obj (("op", Json.Str "submit") :: submit_fields s)
  | Sweep s -> Json.Obj (("op", Json.Str "sweep") :: submit_fields s)
  | Resynthesize r ->
      Json.Obj
        ([
           ("op", Json.Str "resynthesize");
           ("id", num_i r.rz_id);
           ("runs", opt num_i r.rz_runs);
           ("moves", opt num_i r.rz_moves);
           ("deadline_s", opt (fun v -> Json.Num v) r.rz_deadline_s);
           ("trace", Json.Bool r.rz_trace);
         ]
        @
        match r.rz_specs with
        | [] -> []
        | specs ->
            [
              ( "specs",
                Json.Obj
                  (List.map
                     (fun (n, good, bad) ->
                       ( n,
                         Json.Arr
                           (Json.Num good
                           :: (match bad with Some b -> [ Json.Num b ] | None -> [])) ))
                     specs) );
            ])
  | Status id -> Json.Obj [ ("op", Json.Str "status"); ("id", num_i id) ]
  | Result id -> Json.Obj [ ("op", Json.Str "result"); ("id", num_i id) ]
  | Cancel id -> Json.Obj [ ("op", Json.Str "cancel"); ("id", num_i id) ]
  | Stats -> Json.Obj [ ("op", Json.Str "stats") ]
  | Shutdown -> Json.Obj [ ("op", Json.Str "shutdown") ]
  | Cache_lookup hash -> Json.Obj [ ("op", Json.Str "cache_lookup"); ("hash", Json.Str hash) ]
  | Cache_push c ->
      Json.Obj
        [
          ("op", Json.Str "cache_push");
          ("hash", Json.Str c.cp_hash);
          ("error", opt (fun e -> Json.Str e) c.cp_error);
        ]
  | Corpus_lookup shape ->
      Json.Obj [ ("op", Json.Str "corpus_lookup"); ("shape", Json.Str shape) ]
  | Corpus_push e -> Json.Obj (("op", Json.Str "corpus_push") :: [ ("entry", Corpus.entry_to_json e) ])
  | Ping -> Json.Obj [ ("op", Json.Str "ping") ]

(* Decoding is lenient on optional fields (absent = default) and strict on
   shape: a wrong type surfaces as a decode error, not a crash. *)
let request_of_json j =
  let field_opt k = Json.mem_opt k j in
  let int_field k ~default =
    match field_opt k with
    | Some Json.Null | None -> default
    | Some v -> Json.to_int v
  in
  let int_opt_field k =
    match field_opt k with Some Json.Null | None -> None | Some v -> Some (Json.to_int v)
  in
  let float_opt_field k =
    match field_opt k with Some Json.Null | None -> None | Some v -> Some (Json.to_float v)
  in
  let str_field k ~default =
    match field_opt k with Some v -> Json.to_str v | None -> default
  in
  let bool_field k ~default =
    match field_opt k with Some v -> Json.to_bool v | None -> default
  in
  let id () =
    match field_opt "id" with
    | Some v -> Json.to_int v
    | None -> raise (Json.Decode_error "missing field \"id\"")
  in
  let submit_of_fields op =
    let source =
      match field_opt "source" with
      | Some v -> Json.to_str v
      | None -> raise (Json.Decode_error (op ^ ": missing field \"source\""))
    in
    let shard =
      (* Both bounds or neither: a half-specified shard is a caller bug,
         not something to guess a default for. *)
      match (int_opt_field "shard_lo", int_opt_field "shard_hi") with
      | Some lo, Some hi -> Some (lo, hi)
      | None, None -> None
      | Some _, None | None, Some _ ->
          raise (Json.Decode_error (op ^ ": shard_lo and shard_hi must come together"))
    in
    let variants =
      match field_opt "variants" with
      | Some Json.Null | None -> []
      | Some (Json.Arr vs) -> List.map variant_of_json vs
      | Some _ -> raise (Json.Decode_error (op ^ ": \"variants\" must be an array"))
    in
    let warm =
      match field_opt "warm" with
      | Some Json.Null | None -> []
      | Some (Json.Arr es) ->
          List.map
            (fun e ->
              match Corpus.entry_of_json e with
              | Ok entry -> entry
              | Error m -> raise (Json.Decode_error (op ^ ": " ^ m)))
            es
      | Some _ -> raise (Json.Decode_error (op ^ ": \"warm\" must be an array"))
    in
    let spec_overrides =
      match field_opt "spec_overrides" with
      | Some Json.Null | None -> []
      | Some v -> specs_of_json ~what:op v
    in
    {
      sb_name = str_field "name" ~default:"";
      sb_source = source;
      sb_seed = int_field "seed" ~default:1;
      sb_moves = int_opt_field "moves";
      sb_runs = int_field "runs" ~default:1;
      sb_priority = int_field "priority" ~default:0;
      sb_deadline_s = float_opt_field "deadline_s";
      sb_trace = bool_field "trace" ~default:false;
      sb_shard = shard;
      sb_sweep = variants;
      sb_warm = warm;
      sb_spec_overrides = spec_overrides;
    }
  in
  match Json.to_str (Json.mem "op" j) with
  | "submit" -> Ok (Submit (submit_of_fields "submit"))
  | "sweep" ->
      let s = submit_of_fields "sweep" in
      if s.sb_sweep = [] then Error "sweep: at least one variant required" else Ok (Sweep s)
  | "resynthesize" ->
      let specs =
        match field_opt "specs" with
        | Some Json.Null | None -> []
        | Some (Json.Obj kvs) ->
            List.map
              (fun (n, v) ->
                match v with
                | Json.Arr [ good ] -> (n, Json.to_float good, None)
                | Json.Arr [ good; bad ] ->
                    (n, Json.to_float good, Some (Json.to_float bad))
                | _ ->
                    raise
                      (Json.Decode_error
                         "resynthesize: spec re-target must be [good] or [good, bad]"))
              kvs
        | Some _ -> raise (Json.Decode_error "resynthesize: \"specs\" must be an object")
      in
      Ok
        (Resynthesize
           {
             rz_id = id ();
             rz_specs = specs;
             rz_runs = int_opt_field "runs";
             rz_moves = int_opt_field "moves";
             rz_deadline_s = float_opt_field "deadline_s";
             rz_trace = bool_field "trace" ~default:false;
           })
  | "status" -> Ok (Status (id ()))
  | "result" -> Ok (Result (id ()))
  | "cancel" -> Ok (Cancel (id ()))
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | "cache_lookup" ->
      let hash =
        match field_opt "hash" with
        | Some v -> Json.to_str v
        | None -> raise (Json.Decode_error "cache_lookup: missing field \"hash\"")
      in
      Ok (Cache_lookup hash)
  | "cache_push" ->
      let hash =
        match field_opt "hash" with
        | Some v -> Json.to_str v
        | None -> raise (Json.Decode_error "cache_push: missing field \"hash\"")
      in
      let error =
        match field_opt "error" with
        | Some Json.Null | None -> None
        | Some v -> Some (Json.to_str v)
      in
      Ok (Cache_push { cp_hash = hash; cp_error = error })
  | "corpus_lookup" ->
      let shape =
        match field_opt "shape" with
        | Some v -> Json.to_str v
        | None -> raise (Json.Decode_error "corpus_lookup: missing field \"shape\"")
      in
      Ok (Corpus_lookup shape)
  | "corpus_push" -> begin
      match field_opt "entry" with
      | None -> Error "corpus_push: missing field \"entry\""
      | Some e -> begin
          match Corpus.entry_of_json e with
          | Ok entry -> Ok (Corpus_push entry)
          | Error m -> Error ("corpus_push: " ^ m)
        end
    end
  | "ping" -> Ok Ping
  | op -> Error (Printf.sprintf "unknown op %S" op)

(* Field accessors raise [Decode_error] on shape mismatches anywhere in the
   request; fold those into the result. *)
let request_of_json j =
  match request_of_json j with r -> r | exception Json.Decode_error e -> Error e

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)
let err msg = Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ]

let busy_message cap =
  Printf.sprintf "daemon at connection capacity (%d) — retry shortly" cap

(* ------------------------------------------------------------------ *)
(* Line transport over raw descriptors                                 *)
(* ------------------------------------------------------------------ *)

(* Both ends speak newline-delimited JSON over a Unix fd. Raw [Unix.read]/
   [Unix.write] rather than channels, so an [SO_RCVTIMEO]/[SO_SNDTIMEO]
   expiry surfaces deterministically as [Unix_error (EAGAIN, _, _)] — the
   server turns it into an idle-timeout disconnect, the client into a
   "daemon did not respond" report instead of a misattributed connect
   failure. *)

let write_line fd j =
  let s = Json.to_string j ^ "\n" in
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

type line_reader = { lr_fd : Unix.file_descr; lr_buf : Buffer.t; lr_chunk : Bytes.t }

let line_reader fd = { lr_fd = fd; lr_buf = Buffer.create 512; lr_chunk = Bytes.create 4096 }

(* [read_line r] returns the next newline-terminated line (newline
   stripped), or [None] at EOF. A final unterminated line is returned as
   is. Unix errors (including EAGAIN on timeout) propagate to the caller. *)
let read_line r =
  let take_upto pos =
    let all = Buffer.contents r.lr_buf in
    let line = String.sub all 0 pos in
    Buffer.clear r.lr_buf;
    Buffer.add_substring r.lr_buf all (pos + 1) (String.length all - pos - 1);
    line
  in
  let rec go () =
    match String.index_opt (Buffer.contents r.lr_buf) '\n' with
    | Some pos -> Some (take_upto pos)
    | None -> begin
        match Unix.read r.lr_fd r.lr_chunk 0 (Bytes.length r.lr_chunk) with
        | 0 ->
            if Buffer.length r.lr_buf = 0 then None
            else begin
              let line = Buffer.contents r.lr_buf in
              Buffer.clear r.lr_buf;
              Some line
            end
        | n ->
            Buffer.add_subbytes r.lr_buf r.lr_chunk 0 n;
            go ()
      end
  in
  go ()

let response_error j =
  match Json.mem_opt "ok" j with
  | Some (Json.Bool true) -> None
  | Some (Json.Bool false) -> begin
      match Json.mem_opt "error" j with
      | Some (Json.Str e) -> Some e
      | Some _ | None -> Some "request failed"
    end
  | Some _ | None -> Some "malformed response (no \"ok\" field)"

(* ------------------------------------------------------------------ *)
(* Authentication                                                      *)
(* ------------------------------------------------------------------ *)

(* When a daemon listens on TCP it is configured with a shared secret, and
   the first line of every connection (on either listener) must be
   [{"auth":TOKEN}]. A correct token gets no response — the client
   pipelines the auth line and the request and reads one response line. A
   wrong or missing token gets exactly one [ok:false] line and a close. *)

let auth_to_json token = Json.Obj [ ("auth", Json.Str token) ]

let auth_of_json j =
  match Json.mem_opt "auth" j with Some (Json.Str t) -> Some t | Some _ | None -> None

let auth_failed_message = "authentication failed"

(* Constant-time comparison over equal lengths: the timing of a token
   check must not leak how long a matching prefix was. (Length itself is
   not secret.) *)
let token_equal a b =
  String.length a = String.length b
  && begin
       let acc = ref 0 in
       String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
       !acc = 0
     end
