(** The daemon's engine room: a job table, a bounded priority queue, and a
    pool of worker domains that compile (through the shared
    {!Core.Compile_cache}) and anneal each job via {!Core.Oblx.run_job}.

    Lifecycle of a job: [Queued] → [Running] → [Done] | [Failed] |
    [Cancelled]. A cancel on a queued job removes it from the queue; a
    cancel on a running job trips the annealer's abort hook, and the
    partial result (best design so far, with [cut_reason]) is kept on the
    record. A full queue rejects new submissions with a reason — the
    backpressure contract — rather than queueing unboundedly.

    With a [state_dir], the pool also keeps a durable job log
    ([state_dir/jobs.log], append-only JSONL): one record on submit, one
    on finish. {!create} replays it, so a restarted daemon still answers
    [status]/[result] for every pre-restart job id; jobs the old daemon
    left [Queued]/[Running] cannot be resumed and are replayed as
    [Failed] with error ["daemon restarted"]. With [log_rotate_bytes],
    a journal grown past the threshold is compacted in place — one
    self-contained terminal record per finished job, original submit
    lines for live ones, atomically renamed over the old log — without
    losing replay fidelity.

    With a {!Fleet.t}, the pool is fleet-aware on two paths: a local
    compile-cache miss consults the fleet's replicated verdict directory
    and peers before compiling (and pushes fresh verdicts out), and a
    multi-restart submit with registered peers is scattered — the restart
    budget split into per-peer shards, slow or dead peers stolen from,
    results merged by {!Core.Oblx.best_of}'s winner rule, bit-identical
    to running the whole budget on one box. A submit that itself carries
    [sb_shard] executes just that range and is never re-scattered.

    A submit whose [sb_sweep] is non-empty is a sweep job: one (jobs = 1)
    synthesis per variant, run sequentially on a single worker, each
    variant compiled through the shared cache under its (canon, corner)
    key — so a 15-variant sweep over 5 corners costs exactly 5 compiles.
    Spec-target overrides are applied to the compiled problem without
    recompiling. The finished job's [result] record carries a ["sweep"]
    array of per-variant verdict rows (best cost, ok, cache hit/miss,
    predicted specs, per-variant error). Sweep jobs are never scattered
    across a fleet, and the verdict table is a deterministic function of
    (source, variants, seed) — independent of the pool's worker count.

    All table/queue state is guarded by one mutex; synthesis itself runs
    outside it. JSON views are rendered under the lock so a reader never
    sees a half-updated record. *)

type config = {
  workers : int;  (** worker domains; 0 accepts jobs but runs none (tests) *)
  queue_capacity : int;
  cache_capacity : int;  (** compile-cache entries *)
  state_dir : string option;
      (** when set, every finished job's record is written there as
          [job-<id>.json], and [jobs.log] journals every submit/finish —
          the ops trail surviving the daemon, replayed by {!create} *)
  default_moves : int option;
      (** moves budget for submissions that leave ["moves"] null *)
  incremental : bool;
      (** evaluate costs with the move-scoped incremental evaluator
          ({!Core.Eval.Incr}); results are bit-identical either way, this
          is the escape hatch if they ever aren't *)
  fleet : Fleet.t option;
      (** peer coordination: restart scattering and compile-cache
          replication; [None] = the classic single-daemon pool *)
  log_rotate_bytes : int option;
      (** compact [jobs.log] once it exceeds this many bytes; [None] =
          never rotate *)
  warm : bool;
      (** seed plain submits from the winner corpus. Recording into the
          corpus is always on (passive, like the journal); this gates
          {e consumption} — with it off (the default) every run is
          bit-identical to a corpus-free daemon, which is what keeps the
          existing determinism gates green. *)
  warm_fraction : float;
      (** at most this fraction of a job's restarts get warm seeds
          (floored, so [runs = 1] always stays fully cold); the rest run
          cold so the search never collapses onto its own history *)
  corpus_capacity : int;  (** total winner-corpus entries kept *)
}

val default_config : config

type t

(** [create config] replays [state_dir/jobs.log] (when configured),
    spawns the workers, and returns the running pool. Fresh job ids
    continue past the highest replayed id, so pre-restart ids stay
    unambiguous. *)
val create : config -> t

(** [submit t s] enqueues and returns the fresh job id, or the
    backpressure/validation reason. *)
val submit : t -> Proto.submit -> (int, string) result

val cancel : t -> int -> (unit, string) result

(** [status_json t id] — the lightweight view: state, queue position,
    wait/run seconds, cache outcome. *)
val status_json : t -> int -> (Obs.Json.t, string) result

(** [result_json t id] — the full record: everything in the status view
    plus, for finished jobs, best cost, move/eval counts, [cut_reason],
    predicted specs, the sized design, and (when the submission asked for
    a trace) the job's ring of stage events. *)
val result_json : t -> int -> (Obs.Json.t, string) result

(** [stats_json t] — jobs by state, queue depth, [restored_jobs] (jobs
    replayed from the log at startup), compile-cache hit rate (plus
    [remote_hits] when a fleet is configured), journal size/rotations,
    the ["fleet"] counter block, and per-worker moves/s from the shared
    streaming-summary sink. *)
val stats_json : t -> Obs.Json.t

(** {2 Fleet-facing accessors — the [cache_lookup]/[cache_push] verbs} *)

val fleet : t -> Fleet.t option

(** [cache_peek t ~hash] — this daemon's compile verdict for a canon hash
    (served to a peer's [cache_lookup]; counts as a served lookup). *)
val cache_peek : t -> hash:string -> (unit, string) result option

(** [cache_note t ~hash ~error] — a peer's pushed verdict: recorded in the
    fleet directory, and a failure verdict also lands in the local
    compile cache so the next submission of that source fails fast. *)
val cache_note : t -> hash:string -> error:string option -> unit

(** {2 Warm starts — the winner corpus and the resynthesize fast path}

    Every finished (non-shard, non-sweep) job records its winning variable
    vector, final cost, and end-of-run Hustin distribution in a bounded
    {!Corpus} keyed by the problem's shape hash, journaled in
    [state_dir/corpus.log] and replicated to fleet peers. With
    [config.warm] on, a plain submit snapshots the best corpus entries for
    its shape into [sb_warm] — at most [warm_fraction] of the restarts —
    before journaling, so the snapshot is part of the job's recorded
    inputs and a replay is bit-identical whatever the live corpus holds. *)

(** [corpus_lookup t ~shape] — this daemon's corpus entries for a shape
    hash, best first (served to a peer's [corpus_lookup] verb). *)
val corpus_lookup : t -> shape:string -> Corpus.entry list

(** [corpus_note t entry] — a peer's pushed winner: absorbed into the
    local corpus, not re-propagated (each daemon pushes its own winners
    to every peer directly). *)
val corpus_note : t -> Corpus.entry -> unit

(** [resynthesize t r] — rerun finished job [r.rz_id] with [r.rz_specs]
    re-targeted: same source (a compile-cache hit), exactly one restart
    warm-started from the parent's recorded winner (with its Hustin
    distribution as priors), and half the parent's restarts/budget unless
    [r] says otherwise. Returns the new job's id. Works with
    [config.warm] off — the explicit parent is the seed, not the corpus. *)
val resynthesize : t -> Proto.resynth -> (int, string) result

(** [shutdown t] — reject new work, cancel queued jobs (reason
    ["shutdown"]), trip running jobs' abort hooks, and join the workers.
    Idempotent. *)
val shutdown : t -> unit
