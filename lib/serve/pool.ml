module Json = Obs.Json

type config = {
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  state_dir : string option;
  default_moves : int option;
  incremental : bool;  (** move-scoped incremental cost evaluation *)
  fleet : Fleet.t option;  (** peer coordination: scatter + cache replication *)
  log_rotate_bytes : int option;  (** compact jobs.log beyond this size *)
  warm : bool;
      (** seed plain submits from the winner corpus. Recording into the
          corpus is always on (passive, like the journal); this gates
          {e consumption}, so with it off every existing run is
          bit-identical to a corpus-free daemon. *)
  warm_fraction : float;  (** fraction of a job's restarts to seed warm *)
  corpus_capacity : int;  (** total winner-corpus entries kept in memory *)
}

let default_config =
  {
    workers = Core.Oblx.default_jobs ();
    queue_capacity = 64;
    cache_capacity = 64;
    state_dir = None;
    default_moves = None;
    incremental = true;
    fleet = None;
    log_rotate_bytes = None;
    warm = false;
    warm_fraction = 0.5;
    corpus_capacity = 256;
  }

type job_state = Queued | Running | Done | Failed | Cancelled

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Cancelled -> "cancelled"

(* One row of a sweep job's verdict table: what one variant's synthesis
   produced. [sv_cache] is the compile-cache outcome for this variant's
   (canon, corner) key — the bench gate over "one compile per distinct
   key" reads these. *)
type sweep_row = {
  sv_name : string;
  sv_corner : string option;
  sv_cache : Core.Compile_cache.outcome option;  (** None: failed pre-key *)
  sv_best_cost : float option;
  sv_ok : bool option;  (** every spec at/inside its good target *)
  sv_error : string option;
  sv_predicted : (string * float option) list;
  sv_moves : int;
  sv_evals : int;
  sv_cut_reason : string option;
}

(* What a finished synthesis leaves on the job record. *)
type outcome = {
  jo_best_cost : float;
  jo_moves : int;  (** across every restart of the job *)
  jo_evals : int;
  jo_cut_reason : string option;
  jo_predicted : (string * float option) list;
  jo_sizes : (string * float) list;
  jo_winner_restart : int option;  (** global restart index of the winner *)
  jo_winner_score : float option;  (** {!Core.Oblx.score} of the winner *)
  jo_sweep : sweep_row list;  (** non-empty only for sweep jobs *)
  jo_shape : string option;  (** the problem's shape hash, when it parsed *)
  jo_warm : string option;
      (** provenance of the winning restart's seed (a corpus label), or
          [None] when a cold restart won / no warm seeds were attached *)
  jo_winner : (float array * int array * float array) option;
      (** winner's (values, grid indices, Hustin probs) — recorded on the
          job so [resynthesize] can warm-start from it even after the
          corpus evicted the entry *)
}

type job = {
  id : int;
  spec : Proto.submit;
  submitted_at : float;
  mutable state : job_state;
  mutable started_at : float option;
  mutable finished_at : float option;
  mutable worker : int option;
  mutable cache : Core.Compile_cache.outcome option;
  mutable error : string option;  (** [Failed]: the compile error *)
  mutable outcome : outcome option;
  cancel : string option Atomic.t;
      (** cancellation verdict, polled by the annealer's abort hook *)
  ring : Obs.Sink.Ring.ring option;  (** per-job stage events, on request *)
}

type t = {
  cfg : config;
  mutex : Mutex.t;
  nonempty : Condition.t;
  jobs : (int, job) Hashtbl.t;
  mutable queue : job list;  (** sorted: priority desc, then id asc *)
  mutable next_id : int;
  mutable stopping : bool;
  mutable rejected : int;
  restored : int;  (** jobs replayed from the log at startup *)
  mutable log : out_channel option;  (** [state_dir/jobs.log], append mode *)
  log_mutex : Mutex.t;  (** appends are whole lines, never interleaved *)
  mutable log_bytes : int;  (** bytes in jobs.log, for the rotation check *)
  mutable rotations : int;
  cache : Core.Compile_cache.t;
  summary : Obs.Sink.Summary.summary;
  obs_base : Obs.Trace.t;  (** Moves-level handle over the summary sink *)
  worker_moves : int array;
  worker_busy_s : float array;
  worker_jobs : int array;
  mutable domains : unit Domain.t list;
  started_wall : float;
  corpus : Corpus.t;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Queue discipline                                                    *)
(* ------------------------------------------------------------------ *)

let enqueue queue job =
  let precedes (a : job) (b : job) =
    a.spec.Proto.sb_priority > b.spec.Proto.sb_priority
    || (a.spec.Proto.sb_priority = b.spec.Proto.sb_priority && a.id < b.id)
  in
  let rec insert = function
    | [] -> [ job ]
    | j :: rest when precedes job j -> job :: j :: rest
    | j :: rest -> j :: insert rest
  in
  insert queue

(* ------------------------------------------------------------------ *)
(* Finishing and persistence                                           *)
(* ------------------------------------------------------------------ *)

let opt_num = function Some v -> Json.Num v | None -> Json.Null
let num_i i = Json.Num (float_of_int i)
let opt_str = function Some s -> Json.Str s | None -> Json.Null

let cache_json = function
  | Some Core.Compile_cache.Hit -> Json.Str "hit"
  | Some Core.Compile_cache.Miss -> Json.Str "miss"
  | None -> Json.Null

let sweep_row_json (r : sweep_row) =
  Json.Obj
    [
      ("variant", Json.Str r.sv_name);
      ("corner", opt_str r.sv_corner);
      ("cache", cache_json r.sv_cache);
      ("best_cost", opt_num r.sv_best_cost);
      ("ok", (match r.sv_ok with Some b -> Json.Bool b | None -> Json.Null));
      ("error", opt_str r.sv_error);
      ("predicted", Json.Obj (List.map (fun (k, v) -> (k, opt_num v)) r.sv_predicted));
      ("moves", num_i r.sv_moves);
      ("evals", num_i r.sv_evals);
      ("cut_reason", opt_str r.sv_cut_reason);
    ]

(* Caller holds the lock. *)
let job_json ~full t (j : job) =
  let wait_s =
    match (j.started_at, j.state, j.finished_at) with
    | Some st, _, _ -> st -. j.submitted_at
    | None, Queued, _ -> now () -. j.submitted_at
    (* Never ran (cancelled while queued, or lost to a restart): the whole
       life of the job was waiting. *)
    | None, _, Some fin -> fin -. j.submitted_at
    | None, _, None -> 0.0
  in
  let run_s =
    match (j.started_at, j.finished_at) with
    | Some st, Some fin -> Some (fin -. st)
    | Some st, None -> Some (now () -. st)
    | None, _ -> None
  in
  let queue_pos =
    match j.state with
    | Queued ->
        let rec pos k = function
          | [] -> None
          | (q : job) :: rest -> if q.id = j.id then Some k else pos (k + 1) rest
        in
        pos 0 t.queue
    | Running | Done | Failed | Cancelled -> None
  in
  let base =
    [
      ("id", num_i j.id);
      ("name", Json.Str j.spec.Proto.sb_name);
      ("state", Json.Str (state_name j.state));
      ("seed", num_i j.spec.Proto.sb_seed);
      ("runs", num_i j.spec.Proto.sb_runs);
      ("priority", num_i j.spec.Proto.sb_priority);
      ("deadline_s", opt_num j.spec.Proto.sb_deadline_s);
      ("queue_position", match queue_pos with Some p -> num_i p | None -> Json.Null);
      ("wait_s", Json.Num wait_s);
      ("run_s", opt_num run_s);
      ("cache", cache_json j.cache);
      ("error", opt_str j.error);
      ("cut_reason", opt_str (match j.outcome with Some o -> o.jo_cut_reason | None -> None));
    ]
  in
  let shard =
    match j.spec.Proto.sb_shard with
    | Some (lo, hi) -> [ ("shard_lo", num_i lo); ("shard_hi", num_i hi) ]
    | None -> []
  in
  let detail =
    if not full then []
    else
      match j.outcome with
      | None -> []
      | Some o ->
          [
            ("best_cost", Json.Num o.jo_best_cost);
            ("moves", num_i o.jo_moves);
            ("evals", num_i o.jo_evals);
            ( "winner_restart",
              match o.jo_winner_restart with Some k -> num_i k | None -> Json.Null );
            ("winner_score", opt_num o.jo_winner_score);
            ( "predicted",
              Json.Obj (List.map (fun (k, v) -> (k, opt_num v)) o.jo_predicted) );
            ("sizes", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) o.jo_sizes));
          ]
          @ (match o.jo_shape with Some s -> [ ("shape", Json.Str s) ] | None -> [])
          @ (match o.jo_warm with Some w -> [ ("warm", Json.Str w) ] | None -> [])
          @ (match o.jo_winner with
            | None -> []
            | Some (values, grid, probs) ->
                let farr a = Json.Arr (Array.to_list a |> List.map (fun v -> Json.Num v)) in
                [
                  ("winner_values", farr values);
                  ("winner_grid", farr (Array.map float_of_int grid));
                  ("winner_probs", farr probs);
                ])
          @
          match o.jo_sweep with
          | [] -> []
          | rows -> [ ("sweep", Json.Arr (List.map sweep_row_json rows)) ]
  in
  let events =
    if not full then []
    else
      match j.ring with
      | None -> []
      | Some ring ->
          [
            ( "events",
              Json.Arr (List.map Obs.Event.to_json (Obs.Sink.Ring.contents ring)) );
            ("events_dropped", num_i (Obs.Sink.Ring.dropped ring));
          ]
  in
  Json.Obj (base @ shard @ detail @ events)

(* Persist outside the lock: the record is already rendered. *)
let persist t (j : job) rendered =
  match t.cfg.state_dir with
  | None -> ()
  | Some dir -> begin
      match
        let oc = open_out (Filename.concat dir (Printf.sprintf "job-%d.json" j.id)) in
        output_string oc (Json.to_string rendered);
        output_char oc '\n';
        close_out oc
      with
      | () -> ()
      | exception Sys_error _ -> () (* the state dir is best-effort ops trail *)
    end

(* ------------------------------------------------------------------ *)
(* The durable job log                                                 *)
(* ------------------------------------------------------------------ *)

(* [state_dir/jobs.log] is an append-only JSONL journal: one "submit" line
   when a job enters the queue, one "finish" line when it leaves a worker
   (or is cancelled). Each line wraps the same record [job_json] renders,
   plus what that record omits: raw timestamps, the problem source, and
   the submitted move budget. [create] replays it so a restarted daemon
   still answers status/result for every pre-restart job id. *)

let log_append t wrap =
  Mutex.lock t.log_mutex;
  (match t.log with
  | None -> ()
  | Some oc -> (
      try
        let line = Json.to_string wrap in
        output_string oc line;
        output_char oc '\n';
        flush oc;
        t.log_bytes <- t.log_bytes + String.length line + 1
      with Sys_error _ -> () (* best-effort, like the per-job files *)));
  Mutex.unlock t.log_mutex

(* The spec fields ([source]/[moves]/[trace]) that let [replay_log]
   reconstruct a job from this wrap alone. Submit wraps always carry
   them; finish wraps only in a rotated log, where the submit line they
   used to pair with is gone. *)
let spec_fields (j : job) =
  [
    ("source", Json.Str j.spec.Proto.sb_source);
    ("moves", match j.spec.Proto.sb_moves with Some m -> num_i m | None -> Json.Null);
    ("trace", Json.Bool j.spec.Proto.sb_trace);
  ]
  (* The warm snapshot and spec overrides are part of the job's recorded
     inputs: a replayed job must re-run from the same seeds and targets
     regardless of where the live corpus has moved since. *)
  @ (match j.spec.Proto.sb_warm with
    | [] -> []
    | es -> [ ("warm", Json.Arr (List.map Corpus.entry_to_json es)) ])
  @
  match j.spec.Proto.sb_spec_overrides with
  | [] -> []
  | specs ->
      [
        ( "spec_overrides",
          Json.Obj
            (List.map
               (fun (n, good, bad) -> (n, Json.Arr [ Json.Num good; Json.Num bad ]))
               specs) );
      ]

(* Caller holds the lock (wraps a [job_json] rendering). *)
let log_submit_wrap t (j : job) =
  Json.Obj
    ((("log", Json.Str "submit") :: ("t", Json.Num j.submitted_at) :: spec_fields j)
    @ [ ("job", job_json ~full:false t j) ])

let log_finish_wrap ?(spec = false) (j : job) rendered =
  Json.Obj
    ([
       ("log", Json.Str "finish");
       ("t", (match j.finished_at with Some v -> Json.Num v | None -> Json.Null));
       ("submitted_at", Json.Num j.submitted_at);
       ("started_at", opt_num j.started_at);
     ]
    @ (if spec then spec_fields j else [])
    @ [ ("job", rendered) ])

(* --- Rotation: compact the journal while the daemon runs -------------- *)

(* When jobs.log grows past [log_rotate_bytes], rewrite it as one
   self-contained terminal record per finished job (a finish wrap carrying
   the spec fields a submit line used to provide) plus the original submit
   line for every job still queued or running, then atomically rename over
   the old log. Replay fidelity is exact: the terminal records are the
   same [job_json ~full:true] renderings the original finish lines held.
   A kill -9 at any point leaves either the old complete log (plus a
   harmless jobs.log.tmp) or the new complete one — never a torn journal.

   Lock order: [t.mutex] (to render every job consistently) then
   [t.log_mutex] (to swap the channel); [log_append] takes only
   [log_mutex], and nothing takes [t.mutex] while holding [log_mutex], so
   this cannot deadlock. A finish racing the rotation can append its
   record right after the swap — a duplicate terminal line for that id,
   which replay applies idempotently. *)
let rotate t =
  match t.cfg.state_dir with
  | None -> ()
  | Some dir ->
      locked t (fun () ->
          Mutex.lock t.log_mutex;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock t.log_mutex)
            (fun () ->
              match t.log with
              | None -> ()
              | Some oc -> begin
                  let path = Filename.concat dir "jobs.log" in
                  let tmp = path ^ ".tmp" in
                  match open_out tmp with
                  | exception Sys_error _ -> ()
                  | tmp_oc -> (
                      try
                        let ids =
                          Hashtbl.fold (fun id _ acc -> id :: acc) t.jobs []
                          |> List.sort compare
                        in
                        List.iter
                          (fun id ->
                            let j = Hashtbl.find t.jobs id in
                            let wrap =
                              match j.state with
                              | Done | Failed | Cancelled ->
                                  log_finish_wrap ~spec:true j (job_json ~full:true t j)
                              | Queued | Running -> log_submit_wrap t j
                            in
                            output_string tmp_oc (Json.to_string wrap);
                            output_char tmp_oc '\n')
                          ids;
                        close_out tmp_oc;
                        Sys.rename tmp path;
                        (try close_out oc with Sys_error _ -> ());
                        t.log <-
                          (try Some (open_out_gen [ Open_append; Open_creat ] 0o644 path)
                           with Sys_error _ -> None);
                        t.log_bytes <-
                          (try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0);
                        t.rotations <- t.rotations + 1
                      with Sys_error _ -> (
                        (* Rotation is best-effort: keep appending to the
                           old channel, try again past the next append. *)
                        try close_out tmp_oc with Sys_error _ -> ()))
                end))

let maybe_rotate t =
  let due =
    match t.cfg.log_rotate_bytes with
    | None -> false
    | Some limit ->
        Mutex.lock t.log_mutex;
        let b = t.log <> None && t.log_bytes > limit in
        Mutex.unlock t.log_mutex;
        b
  in
  if due then rotate t

let finish t (j : job) ~worker ~state ?error ?outcome () =
  let rendered, wrap =
    locked t (fun () ->
        j.state <- state;
        j.finished_at <- Some (now ());
        (match error with Some _ -> j.error <- error | None -> ());
        (match outcome with Some _ -> j.outcome <- outcome | None -> ());
        (match (worker, j.started_at, j.finished_at) with
        | Some w, Some st, Some fin ->
            t.worker_busy_s.(w) <- t.worker_busy_s.(w) +. (fin -. st);
            t.worker_jobs.(w) <- t.worker_jobs.(w) + 1;
            (match outcome with
            | Some o -> t.worker_moves.(w) <- t.worker_moves.(w) + o.jo_moves
            | None -> ())
        | _ -> ());
        let rendered = job_json ~full:true t j in
        (rendered, log_finish_wrap j rendered))
  in
  persist t j rendered;
  log_append t wrap;
  maybe_rotate t

(* --- Replay: jobs.log lines back into job records ------------------- *)

let jstr j k = match Json.mem_opt k j with Some (Json.Str s) -> Some s | _ -> None
let jnum j k = match Json.mem_opt k j with Some (Json.Num v) -> Some v | _ -> None
let jint j k = Option.map int_of_float (jnum j k)

let state_of_name = function
  | "queued" -> Some Queued
  | "running" -> Some Running
  | "done" -> Some Done
  | "failed" -> Some Failed
  | "cancelled" -> Some Cancelled
  | _ -> None

let spec_of_log wrap jobj =
  {
    Proto.sb_name = Option.value (jstr jobj "name") ~default:"";
    sb_source = Option.value (jstr wrap "source") ~default:"";
    sb_seed = Option.value (jint jobj "seed") ~default:1;
    sb_moves = jint wrap "moves";
    sb_runs = Option.value (jint jobj "runs") ~default:1;
    sb_priority = Option.value (jint jobj "priority") ~default:0;
    sb_deadline_s = jnum jobj "deadline_s";
    sb_trace =
      (match Json.mem_opt "trace" wrap with Some (Json.Bool b) -> b | _ -> false);
    sb_shard =
      (match (jint jobj "shard_lo", jint jobj "shard_hi") with
      | Some lo, Some hi -> Some (lo, hi)
      | _ -> None);
    (* Variants are not journaled with the spec — a replayed sweep job is
       already finished, and its verdict table replays from the outcome. *)
    sb_sweep = [];
    sb_warm =
      (match Json.mem_opt "warm" wrap with
      | Some (Json.Arr es) ->
          List.filter_map (fun e -> Result.to_option (Corpus.entry_of_json e)) es
      | _ -> []);
    sb_spec_overrides =
      (match Json.mem_opt "spec_overrides" wrap with
      | Some (Json.Obj kvs) ->
          List.filter_map
            (fun (n, v) ->
              match v with
              | Json.Arr [ Json.Num good; Json.Num bad ] -> Some (n, good, bad)
              | _ -> None)
            kvs
      | _ -> []);
  }

let sweep_of_log jobj =
  match Json.mem_opt "sweep" jobj with
  | Some (Json.Arr rows) ->
      List.filter_map
        (fun row ->
          match jstr row "variant" with
          | None -> None
          | Some name ->
              Some
                {
                  sv_name = name;
                  sv_corner = jstr row "corner";
                  sv_cache =
                    (match jstr row "cache" with
                    | Some "hit" -> Some Core.Compile_cache.Hit
                    | Some "miss" -> Some Core.Compile_cache.Miss
                    | Some _ | None -> None);
                  sv_best_cost = jnum row "best_cost";
                  sv_ok =
                    (match Json.mem_opt "ok" row with
                    | Some (Json.Bool b) -> Some b
                    | _ -> None);
                  sv_error = jstr row "error";
                  sv_predicted =
                    (match Json.mem_opt "predicted" row with
                    | Some (Json.Obj kvs) ->
                        List.filter_map
                          (fun (k, v) ->
                            match v with
                            | Json.Num v -> Some (k, Some v)
                            | Json.Null -> Some (k, None)
                            | _ -> None)
                          kvs
                    | _ -> []);
                  sv_moves = Option.value (jint row "moves") ~default:0;
                  sv_evals = Option.value (jint row "evals") ~default:0;
                  sv_cut_reason = jstr row "cut_reason";
                })
        rows
  | _ -> []

let outcome_of_log jobj =
  match jnum jobj "best_cost" with
  | None -> None
  | Some c ->
      let pairs k f =
        match Json.mem_opt k jobj with
        | Some (Json.Obj kvs) -> List.filter_map f kvs
        | _ -> []
      in
      Some
        {
          jo_best_cost = c;
          jo_moves = Option.value (jint jobj "moves") ~default:0;
          jo_evals = Option.value (jint jobj "evals") ~default:0;
          jo_cut_reason = jstr jobj "cut_reason";
          jo_predicted =
            pairs "predicted" (fun (k, v) ->
                match v with
                | Json.Num v -> Some (k, Some v)
                | Json.Null -> Some (k, None)
                | _ -> None);
          jo_sizes =
            pairs "sizes" (fun (k, v) ->
                match v with Json.Num v -> Some (k, v) | _ -> None);
          jo_winner_restart = jint jobj "winner_restart";
          jo_winner_score = jnum jobj "winner_score";
          jo_sweep = sweep_of_log jobj;
          jo_shape = jstr jobj "shape";
          jo_warm = jstr jobj "warm";
          jo_winner =
            (let arr k =
               match Json.mem_opt k jobj with
               | Some (Json.Arr vs) ->
                   Some
                     (Array.of_list
                        (List.filter_map
                           (function Json.Num v -> Some v | _ -> None)
                           vs))
               | _ -> None
             in
             match (arr "winner_values", arr "winner_grid", arr "winner_probs") with
             | Some values, Some grid, Some probs when values <> [||] ->
                 Some (values, Array.map int_of_float grid, probs)
             | _ -> None);
        }

let cache_of_log jobj =
  match jstr jobj "cache" with
  | Some "hit" -> Some Core.Compile_cache.Hit
  | Some "miss" -> Some Core.Compile_cache.Miss
  | Some _ | None -> None

let fresh_job ~id ~spec ~submitted_at =
  {
    id;
    spec;
    submitted_at;
    state = Queued;
    started_at = None;
    finished_at = None;
    worker = None;
    cache = None;
    error = None;
    outcome = None;
    cancel = Atomic.make None;
    ring = None;
  }

(* Jobs in submission order; ones whose latest record still says
   queued/running were interrupted by the crash/restart. A torn final
   line (the daemon died mid-append) is skipped, not fatal. *)
let replay_log path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
      let table : (int, job) Hashtbl.t = Hashtbl.create 64 in
      let order = ref [] in
      (try
         while true do
           let line = input_line ic in
           match Json.of_string line with
           | Error _ -> ()
           | Ok wrap -> begin
               match (jstr wrap "log", Json.mem_opt "job" wrap) with
               | Some kind, Some jobj -> begin
                   match jint jobj "id" with
                   | None -> ()
                   | Some id -> begin
                       let job =
                         match Hashtbl.find_opt table id with
                         | Some j -> j
                         | None ->
                             let j =
                               fresh_job ~id ~spec:(spec_of_log wrap jobj)
                                 ~submitted_at:
                                   (Option.value
                                      (match kind with
                                      | "submit" -> jnum wrap "t"
                                      | _ -> jnum wrap "submitted_at")
                                      ~default:0.0)
                             in
                             order := id :: !order;
                             Hashtbl.replace table id j;
                             j
                       in
                       if kind = "finish" then begin
                         (match jstr jobj "state" with
                         | Some s -> begin
                             match state_of_name s with
                             | Some ((Done | Failed | Cancelled) as st) -> job.state <- st
                             | Some (Queued | Running) | None -> ()
                           end
                         | None -> ());
                         job.started_at <- jnum wrap "started_at";
                         job.finished_at <- jnum wrap "t";
                         job.cache <- cache_of_log jobj;
                         job.error <- jstr jobj "error";
                         job.outcome <- outcome_of_log jobj
                       end
                     end
                 end
               | _ -> ()
             end
         done
       with End_of_file -> ());
      close_in ic;
      List.rev_map (fun id -> Hashtbl.find table id) !order

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

(* The fleet-aware compile path: local cache first (the common case),
   then — on a local miss — the fleet's replicated verdict directory and
   peers before spending a compile. Equivalent to
   [Core.Compile_cache.compile] when no fleet is configured: [find]/[add]
   are its two halves. *)
let compile_for_job t ?corner source =
  match Core.Compile_cache.key_of_source ?corner source with
  | Error e -> Error (e, Core.Compile_cache.Miss) (* unparseable: never cached *)
  | Ok key -> begin
      match Core.Compile_cache.find t.cache ~key with
      | Some (Ok p) -> Ok (p, Core.Compile_cache.Hit)
      | Some (Error e) -> Error (e, Core.Compile_cache.Hit)
      | None -> begin
          let remote =
            match t.cfg.fleet with Some f -> Fleet.lookup_remote f ~hash:key | None -> None
          in
          match remote with
          | Some (Error e) ->
              (* The fleet already knows this source fails: fail fast and
                 cache the verdict so the next submission is a local hit. *)
              Core.Compile_cache.add t.cache ~key (Error e);
              Error (e, Core.Compile_cache.Miss)
          | Some (Ok ()) | None -> begin
              (* Known-good elsewhere still compiles here (compiled
                 problems hold closures and cannot cross the wire), but
                 the remote hit is counted by the fleet. *)
              let value = Core.Compile.compile_source ?corner source in
              Core.Compile_cache.add t.cache ~key value;
              (match (remote, t.cfg.fleet) with
              | None, Some f ->
                  (* A genuinely new verdict propagates; one the fleet told
                     us about doesn't need to go back out. *)
                  Fleet.push f ~hash:key
                    ~error:(match value with Ok _ -> None | Error e -> Some e)
              | _ -> ());
              match value with
              | Ok p -> Ok (p, Core.Compile_cache.Miss)
              | Error e -> Error (e, Core.Compile_cache.Miss)
            end
        end
    end

(* The job-level cut reason: the winner's, or the first restart that
   reported one (a deadline can fire during restart k > 0 while the
   winner ran to completion). *)
let cut_reason_of best all =
  match best.Core.Oblx.cut_reason with
  | Some r -> Some r
  | None -> List.find_map (fun (r : Core.Oblx.result) -> r.Core.Oblx.cut_reason) all

(* Position of the winner in the executed range — [best] is one of [all]
   by construction, compared physically because results carry floats. *)
let winner_index best all =
  let rec go i = function
    | [] -> 0
    | r :: rest -> if r == best then i else go (i + 1) rest
  in
  go 0 all

let sum_moves all =
  List.fold_left (fun a (r : Core.Oblx.result) -> a + r.Core.Oblx.moves) 0 all

let sum_evals all =
  List.fold_left (fun a (r : Core.Oblx.result) -> a + r.Core.Oblx.evals) 0 all

(* "ok" for one sweep row: every specification at or inside its good
   target. The direction comes from the good/bad ordering — good <= bad
   means smaller is better — the same normalization the cost uses. *)
let specs_met (p : Core.Problem.t) predicted =
  List.for_all
    (fun (s : Core.Problem.spec) ->
      match List.assoc_opt s.Core.Problem.spec_name predicted with
      | Some (Some v) ->
          if s.Core.Problem.good <= s.Core.Problem.bad then v <= s.Core.Problem.good
          else v >= s.Core.Problem.good
      | Some None | None -> false)
    p.Core.Problem.specs

(* Re-target good/bad on the compiled problem without recompiling: the
   spec list keeps its order, so the depgraph's per-spec rows stay
   aligned. An override naming no spec is a caller bug, reported per
   variant rather than silently ignored. *)
let override_specs (p : Core.Problem.t) overrides =
  let missing =
    List.filter_map
      (fun (n, _, _) ->
        if Option.is_none (Core.Problem.find_spec p n) then Some n else None)
      overrides
  in
  match (missing, overrides) with
  | _ :: _, _ ->
      Error (Printf.sprintf "unknown spec(s): %s" (String.concat ", " missing))
  | [], [] -> Ok p
  | [], _ ->
      Ok
        {
          p with
          Core.Problem.specs =
            List.map
              (fun (s : Core.Problem.spec) ->
                match
                  List.find_opt (fun (n, _, _) -> n = s.Core.Problem.spec_name) overrides
                with
                | Some (_, good, bad) -> { s with Core.Problem.good; bad }
                | None -> s)
              p.Core.Problem.specs;
        }

(* A sweep job: one (jobs = 1) synthesis per variant, run sequentially on
   this worker, every compile routed through the shared cache under its
   (canon, corner) key — the first variant at a given key compiles, the
   rest hit. Sequential jobs = 1 execution makes the verdict table a
   deterministic function of (source, variants, seed), independent of the
   pool's worker count. Sweep jobs are never scattered across a fleet:
   the shared compile is the point. *)
let run_sweep t (j : job) ~worker =
  let sinks =
    match j.ring with
    | Some ring ->
        Obs.Sink.filtered ~level:Obs.Event.Stage (Obs.Sink.Ring.sink ring)
        :: Obs.Trace.sinks t.obs_base
    | None -> Obs.Trace.sinks t.obs_base
  in
  let shard = Obs.Shard.create sinks in
  let moves =
    match j.spec.Proto.sb_moves with Some m -> Some m | None -> t.cfg.default_moves
  in
  let rows = ref [] in
  (* The cross-variant winner, for the job-level summary fields. *)
  let best : (float * Core.Problem.t * Core.Oblx.result) option ref = ref None in
  Fun.protect
    ~finally:(fun () -> Obs.Shard.drain shard)
    (fun () ->
      List.iteri
        (fun k (v : Proto.variant) ->
          if Atomic.get j.cancel = None then begin
            let fail ?cache e =
              {
                sv_name = v.Proto.vr_name;
                sv_corner = v.Proto.vr_corner;
                sv_cache = cache;
                sv_best_cost = None;
                sv_ok = None;
                sv_error = Some e;
                sv_predicted = [];
                sv_moves = 0;
                sv_evals = 0;
                sv_cut_reason = None;
              }
            in
            let corner =
              match v.Proto.vr_corner with
              | None -> Ok None
              | Some c -> begin
                  match Devices.Registry.find_corner c with
                  | Some corner -> Ok (Some corner)
                  | None -> Error (Printf.sprintf "unknown corner %S" c)
                end
            in
            let row =
              match corner with
              | Error e -> fail e
              | Ok corner -> begin
                  match compile_for_job t ?corner j.spec.Proto.sb_source with
                  | Error (e, cache) -> fail ~cache e
                  | Ok (p, cache) -> begin
                      match override_specs p v.Proto.vr_specs with
                      | Error e -> fail ~cache e
                      | Ok p' -> begin
                          let deadline_s =
                            Option.map
                              (fun budget ->
                                Float.max 0.0 (budget -. (now () -. j.submitted_at)))
                              j.spec.Proto.sb_deadline_s
                          in
                          let obs =
                            Obs.Trace.with_sinks t.obs_base
                              [ Obs.Shard.for_restart shard k ]
                          in
                          match
                            Core.Oblx.run_job ~seed:j.spec.Proto.sb_seed ?moves
                              ~runs:j.spec.Proto.sb_runs ~jobs:1
                              ~incremental:t.cfg.incremental ?deadline_s
                              ~poll:(fun () -> Atomic.get j.cancel)
                              ~obs p'
                          with
                          | b, all ->
                              (match !best with
                              | Some (c, _, _) when c <= b.Core.Oblx.best_cost -> ()
                              | Some _ | None ->
                                  best := Some (b.Core.Oblx.best_cost, p', b));
                              {
                                sv_name = v.Proto.vr_name;
                                sv_corner = v.Proto.vr_corner;
                                sv_cache = Some cache;
                                sv_best_cost = Some b.Core.Oblx.best_cost;
                                sv_ok = Some (specs_met p' b.Core.Oblx.predicted);
                                sv_error = None;
                                sv_predicted = b.Core.Oblx.predicted;
                                sv_moves = sum_moves all;
                                sv_evals = sum_evals all;
                                sv_cut_reason = cut_reason_of b all;
                              }
                          | exception exn -> fail ~cache (Printexc.to_string exn)
                        end
                    end
                end
            in
            rows := row :: !rows
          end)
        j.spec.Proto.sb_sweep;
      let rows = List.rev !rows in
      (* The job-level cache field reports the first variant's outcome
         (informational); the per-row outcomes are authoritative. *)
      (match rows with
      | { sv_cache = Some c; _ } :: _ -> locked t (fun () -> j.cache <- Some c)
      | _ -> ());
      let jo_moves = List.fold_left (fun a r -> a + r.sv_moves) 0 rows in
      let jo_evals = List.fold_left (fun a r -> a + r.sv_evals) 0 rows in
      let jo_cut_reason = List.find_map (fun r -> r.sv_cut_reason) rows in
      match !best with
      | None ->
          (* Every variant failed (or the job was cancelled before any
             completed): the rows still ride on the outcome so the caller
             sees per-variant reasons. *)
          let state = if Atomic.get j.cancel <> None then Cancelled else Failed in
          let error =
            match List.find_opt (fun r -> r.sv_error <> None) rows with
            | Some { sv_name; sv_error = Some e; _ } ->
                Printf.sprintf "%s: %s" sv_name e
            | _ -> "sweep: no variant completed"
          in
          finish t j ~worker:(Some worker) ~state ~error
            ~outcome:
              {
                jo_best_cost = 0.0;
                jo_moves;
                jo_evals;
                jo_cut_reason;
                jo_predicted = [];
                jo_sizes = [];
                jo_winner_restart = None;
                jo_winner_score = None;
                jo_sweep = rows;
                jo_shape = None;
                jo_warm = None;
                jo_winner = None;
              }
            ()
      | Some (cost, pw, bw) ->
          let state = if Atomic.get j.cancel <> None then Cancelled else Done in
          finish t j ~worker:(Some worker) ~state
            ~outcome:
              {
                jo_best_cost = cost;
                jo_moves;
                jo_evals;
                jo_cut_reason;
                jo_predicted = bw.Core.Oblx.predicted;
                jo_sizes = Core.Report.sizes pw bw.Core.Oblx.final;
                jo_winner_restart = None;
                jo_winner_score = Some (Core.Oblx.score pw bw);
                jo_sweep = rows;
                jo_shape = None;
                jo_warm = None;
                jo_winner = None;
              }
            ())

(* Both hashes of a problem source in one parse: the full canon key and
   the spec-value-free shape key the corpus buckets by. *)
let hashes_of_source src =
  match Netlist.Parser.parse_problem src with
  | ast -> Some (Netlist.Canon.problem_hash ast, Netlist.Canon.problem_shape_hash ast)
  | exception Netlist.Parser.Error _ -> None

let run_job t (j : job) ~worker =
  if j.spec.Proto.sb_sweep <> [] then run_sweep t j ~worker
  else
  match compile_for_job t j.spec.Proto.sb_source with
  | Error (e, cache_outcome) ->
      (* The cache deliberately remembers failures; report the real
         hit/miss so repeated broken submissions don't read as misses. *)
      locked t (fun () -> j.cache <- Some cache_outcome);
      finish t j ~worker:(Some worker) ~state:Failed ~error:e ()
  | Ok (compiled, cache_outcome) -> begin
      locked t (fun () -> j.cache <- Some cache_outcome);
      (* Spec re-targets (the resynthesize fast path) bind after the
         compile: the cache hit above is the point — the overridden
         problem shares the parent's compiled closures. *)
      match override_specs compiled j.spec.Proto.sb_spec_overrides with
      | Error e -> finish t j ~worker:(Some worker) ~state:Failed ~error:e ()
      | Ok p ->
      let sinks =
        match j.ring with
        | Some ring ->
            (* The ring rides next to the global summary but is capped at
               Stage level: a job's recent history, not a move torrent. *)
            Obs.Sink.filtered ~level:Obs.Event.Stage (Obs.Sink.Ring.sink ring)
            :: Obs.Trace.sinks t.obs_base
        | None -> Obs.Trace.sinks t.obs_base
      in
      (* Per-job shard: this worker buffers its own events and merges them
         into the shared summary (and the job's ring) in batches at stage
         boundaries, so concurrent workers don't serialize the daemon's
         telemetry per event. Buffer [k] belongs to the run over restart
         range starting at [k]: a plain job uses buffer 0 only; a
         scattered job gives each locally-run shard (shard 0 and any
         steals, which run on concurrent threads) its own buffer. *)
      let shard = Obs.Shard.create sinks in
      let moves =
        match j.spec.Proto.sb_moves with Some m -> Some m | None -> t.cfg.default_moves
      in
      (* One shard's (or the whole budget's) annealing on this daemon.
         The deadline is a latency bound from submission, so the queue
         wait already spent part of it — recomputed per call because a
         stolen shard starts later than the scatter did; an exhausted
         budget still runs, aborting at move 0 via the annealer's
         pre-loop poll. *)
      (* The journaled warm snapshot, attached positionally: global
         restart k < |sb_warm| seeds from entry k (the rest stay cold).
         Indices are global, so a sharded execution passes the full
         array and [best_of] picks the seeds its range covers — the
         same attachment for any fleet split. *)
      let warm_starts =
        Array.of_list (List.map Corpus.warm_start_of_entry j.spec.Proto.sb_warm)
      in
      let run_range ?restarts () =
        let deadline_s =
          Option.map
            (fun budget -> Float.max 0.0 (budget -. (now () -. j.submitted_at)))
            j.spec.Proto.sb_deadline_s
        in
        let buffer = match restarts with Some (lo, _) -> lo | None -> 0 in
        let obs = Obs.Trace.with_sinks t.obs_base [ Obs.Shard.for_restart shard buffer ] in
        Core.Oblx.run_job ~seed:j.spec.Proto.sb_seed ?moves ~runs:j.spec.Proto.sb_runs
          ~jobs:1 ~incremental:t.cfg.incremental ?restarts ?deadline_s ~warm_starts
          ~poll:(fun () -> Atomic.get j.cancel)
          ~obs p
      in
      let winner_state (best : Core.Oblx.result) =
        ( Array.copy best.Core.Oblx.final.Core.State.values,
          Array.copy best.Core.Oblx.final.Core.State.grid_index,
          best.Core.Oblx.probs )
      in
      let local_shard ~lo ~hi =
        match run_range ~restarts:(lo, hi) () with
        | best, all ->
            Ok
              {
                Fleet.sr_lo = lo;
                sr_hi = hi;
                sr_peer = None;
                sr_stolen = false;
                sr_best_cost = best.Core.Oblx.best_cost;
                sr_winner_restart = lo + winner_index best all;
                sr_winner_score = Core.Oblx.score p best;
                sr_predicted = best.Core.Oblx.predicted;
                sr_sizes = Core.Report.sizes p best.Core.Oblx.final;
                sr_moves = sum_moves all;
                sr_evals = sum_evals all;
                sr_cut_reason = cut_reason_of best all;
                sr_warm = best.Core.Oblx.warm;
                sr_winner = Some (winner_state best);
              }
        | exception exn -> Error (Printexc.to_string exn)
      in
      (* Record a finished job's winner in the corpus (and replicate a
         genuinely new entry to peers). Only whole jobs record — a shard
         execution's winner is partial; the coordinator records the
         merged one. Recording is unconditional on [cfg.warm]: the
         corpus fills passively like the journal, [warm] only gates
         whether submits read from it. *)
      let hashes = hashes_of_source j.spec.Proto.sb_source in
      let record_corpus (outcome : outcome) =
        match (j.spec.Proto.sb_shard, outcome.jo_winner, hashes) with
        | None, Some (values, grid, probs), Some (canon, shape) ->
            let entry =
              {
                Corpus.en_shape = shape;
                en_canon = canon;
                en_job = j.id;
                en_name = j.spec.Proto.sb_name;
                en_cost = outcome.jo_best_cost;
                en_values = values;
                en_grid = grid;
                en_probs = probs;
              }
            in
            if Corpus.add t.corpus entry then begin
              match t.cfg.fleet with
              | Some f -> Fleet.corpus_push f ~entry
              | None -> ()
            end
        | _ -> ()
      in
      let finish_with outcome =
        let state = if Atomic.get j.cancel <> None then Cancelled else Done in
        finish t j ~worker:(Some worker) ~state ~outcome ();
        if state = Done then record_corpus outcome
      in
      let shape = Option.map snd hashes in
      Fun.protect
        ~finally:(fun () -> Obs.Shard.drain shard)
        (fun () ->
          let scatterable =
            j.spec.Proto.sb_shard = None && j.spec.Proto.sb_runs > 1
            &&
            match t.cfg.fleet with Some f -> Fleet.peers f <> [] | None -> false
          in
          if scatterable then begin
            (* Coordinator path: shard the budget over the fleet, steal
               what dies, merge by the winner rule. *)
            let f = Option.get t.cfg.fleet in
            match Fleet.scatter f ~submit:j.spec ~run_local:local_shard with
            | Error e ->
                finish t j ~worker:(Some worker) ~state:Failed
                  ~error:(Printf.sprintf "fleet scatter failed: %s" e)
                  ()
            | Ok shards ->
                let w = Option.get (Fleet.merge shards) in
                finish_with
                  {
                    jo_best_cost = w.Fleet.sr_best_cost;
                    jo_moves =
                      List.fold_left (fun a s -> a + s.Fleet.sr_moves) 0 shards;
                    jo_evals =
                      List.fold_left (fun a s -> a + s.Fleet.sr_evals) 0 shards;
                    jo_cut_reason =
                      (match w.Fleet.sr_cut_reason with
                      | Some r -> Some r
                      | None ->
                          List.find_map (fun s -> s.Fleet.sr_cut_reason) shards);
                    jo_predicted = w.Fleet.sr_predicted;
                    jo_sizes = w.Fleet.sr_sizes;
                    jo_winner_restart = Some w.Fleet.sr_winner_restart;
                    jo_winner_score = Some w.Fleet.sr_winner_score;
                    jo_sweep = [];
                    jo_shape = shape;
                    jo_warm = w.Fleet.sr_warm;
                    jo_winner = w.Fleet.sr_winner;
                  }
          end
          else begin
            (* Plain or shard-executing path: anneal the requested range
               (the whole budget when unsharded) on this worker. *)
            let restarts = j.spec.Proto.sb_shard in
            let lo = match restarts with Some (l, _) -> l | None -> 0 in
            let best, all = run_range ?restarts () in
            finish_with
              {
                jo_best_cost = best.Core.Oblx.best_cost;
                jo_moves = sum_moves all;
                jo_evals = sum_evals all;
                jo_cut_reason = cut_reason_of best all;
                jo_predicted = best.Core.Oblx.predicted;
                jo_sizes = Core.Report.sizes p best.Core.Oblx.final;
                jo_winner_restart = Some (lo + winner_index best all);
                jo_winner_score = Some (Core.Oblx.score p best);
                jo_sweep = [];
                jo_shape = shape;
                jo_warm = best.Core.Oblx.warm;
                jo_winner = Some (winner_state best);
              }
          end)
    end

let rec worker_loop t ~worker =
  let job =
    locked t (fun () ->
        while t.queue = [] && not t.stopping do
          Condition.wait t.nonempty t.mutex
        done;
        match t.queue with
        | [] -> None (* stopping *)
        | j :: rest ->
            t.queue <- rest;
            j.state <- Running;
            j.started_at <- Some (now ());
            j.worker <- Some worker;
            Some j)
  in
  match job with
  | None -> ()
  | Some j ->
      (match run_job t j ~worker with
      | () -> ()
      | exception exn ->
          (* A worker must outlive any single job: record the wreckage and
             move on. *)
          finish t j ~worker:(Some worker) ~state:Failed
            ~error:(Printf.sprintf "internal error: %s" (Printexc.to_string exn))
            ());
      worker_loop t ~worker

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let create cfg =
  if cfg.workers < 0 then invalid_arg "Pool.create: workers must be >= 0";
  if cfg.queue_capacity < 1 then invalid_arg "Pool.create: queue_capacity must be >= 1";
  let restored_jobs, log, log_bytes =
    match cfg.state_dir with
    | None -> ([], None, 0)
    | Some dir ->
        (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let path = Filename.concat dir "jobs.log" in
        let restored = if Sys.file_exists path then replay_log path else [] in
        let oc =
          try Some (open_out_gen [ Open_append; Open_creat ] 0o644 path)
          with Sys_error _ -> None
        in
        let bytes = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
        (restored, oc, bytes)
  in
  let summary = Obs.Sink.Summary.create () in
  let t =
    {
      cfg;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Hashtbl.create 64;
      queue = [];
      next_id = List.fold_left (fun acc (j : job) -> Int.max acc (j.id + 1)) 0 restored_jobs;
      stopping = false;
      rejected = 0;
      restored = List.length restored_jobs;
      log;
      log_mutex = Mutex.create ();
      log_bytes;
      rotations = 0;
      cache = Core.Compile_cache.create ~capacity:cfg.cache_capacity ();
      summary;
      obs_base = Obs.Trace.make ~level:Obs.Event.Moves [ Obs.Sink.Summary.sink summary ];
      worker_moves = Array.make (Int.max 1 cfg.workers) 0;
      worker_busy_s = Array.make (Int.max 1 cfg.workers) 0.0;
      worker_jobs = Array.make (Int.max 1 cfg.workers) 0;
      domains = [];
      started_wall = now ();
      corpus =
        Corpus.create ~capacity:cfg.corpus_capacity
          ?path:(Option.map (fun dir -> Filename.concat dir "corpus.log") cfg.state_dir)
          ();
    }
  in
  List.iter (fun (j : job) -> Hashtbl.replace t.jobs j.id j) restored_jobs;
  (* A job the previous daemon never finished cannot be resumed (its worker
     died mid-anneal); fail it loudly rather than letting it vanish. This
     also journals the verdict, so a second restart replays it as failed. *)
  List.iter
    (fun (j : job) ->
      match j.state with
      | Queued | Running ->
          finish t j ~worker:None ~state:Failed ~error:"daemon restarted" ()
      | Done | Failed | Cancelled -> ())
    restored_jobs;
  t.domains <-
    List.init cfg.workers (fun w ->
        Domain.spawn (fun () ->
            (* Spawned domains start with the default nursery regardless of
               the parent's settings; size this worker's for the annealing
               hot path so minor collections (stop-the-world across all
               domains) stay rare. *)
            Gc.set { (Gc.get ()) with Gc.minor_heap_size = Core.Oblx.arena_minor_heap_words };
            worker_loop t ~worker:w));
  t

let submit t (s : Proto.submit) =
  if s.Proto.sb_runs < 1 then Error "runs must be >= 1"
  else if String.trim s.Proto.sb_source = "" then Error "empty problem source"
  else if s.Proto.sb_sweep <> [] && s.Proto.sb_shard <> None then
    Error "sweep jobs cannot be sharded"
  else if
    List.exists (fun (v : Proto.variant) -> String.trim v.Proto.vr_name = "") s.Proto.sb_sweep
  then Error "sweep variant names must be non-empty"
  else if s.Proto.sb_sweep <> [] && s.Proto.sb_warm <> [] then
    Error "sweep jobs cannot be warm-started"
  else if s.Proto.sb_sweep <> [] && s.Proto.sb_spec_overrides <> [] then
    Error "sweep jobs take spec overrides per variant, not job-wide"
  else if List.length s.Proto.sb_warm > s.Proto.sb_runs then
    Error
      (Printf.sprintf "%d warm seeds for %d runs" (List.length s.Proto.sb_warm)
         s.Proto.sb_runs)
  else if
    match s.Proto.sb_shard with
    | Some (lo, hi) -> lo < 0 || lo >= hi || hi > s.Proto.sb_runs
    | None -> false
  then
    Error
      (let lo, hi = Option.get s.Proto.sb_shard in
       Printf.sprintf "invalid shard [%d,%d) for %d runs" lo hi s.Proto.sb_runs)
  else begin
    (* Warm-start consumption: a plain submit on a warm-enabled daemon
       snapshots the corpus's best entries for the problem's shape into
       the spec — at most [warm_fraction] of the restarts, the rest
       staying cold so the search never collapses onto its own history.
       The snapshot is journaled with the submit (it is part of the
       job's recorded inputs): a replay re-runs from these exact seeds
       no matter what the live corpus holds by then. Explicit sb_warm
       (a resynthesize, or a scattered shard carrying its coordinator's
       snapshot) is left untouched. *)
    let s =
      if
        t.cfg.warm
        && s.Proto.sb_shard = None
        && s.Proto.sb_sweep = []
        && s.Proto.sb_warm = []
      then begin
        match Corpus.shape_of_source s.Proto.sb_source with
        | None -> s
        | Some shape ->
            let n_warm =
              Int.min s.Proto.sb_runs
                (int_of_float (t.cfg.warm_fraction *. float_of_int s.Proto.sb_runs))
            in
            if n_warm <= 0 then s
            else begin
              let rec take n = function
                | [] -> []
                | _ when n = 0 -> []
                | e :: rest -> e :: take (n - 1) rest
              in
              match take n_warm (Corpus.lookup t.corpus shape) with
              | [] -> s
              | warm -> { s with Proto.sb_warm = warm }
            end
      end
      else s
    in
    let admitted =
      locked t (fun () ->
          if t.stopping then Error "daemon is shutting down"
          else if List.length t.queue >= t.cfg.queue_capacity then begin
            t.rejected <- t.rejected + 1;
            Error
              (Printf.sprintf "queue full: %d jobs queued (capacity %d) — retry later"
                 (List.length t.queue) t.cfg.queue_capacity)
          end
          else begin
            let id = t.next_id in
            t.next_id <- id + 1;
            let job =
              {
                (fresh_job ~id ~spec:s ~submitted_at:(now ())) with
                ring =
                  (if s.Proto.sb_trace then Some (Obs.Sink.Ring.create ~capacity:256)
                   else None);
              }
            in
            Hashtbl.add t.jobs id job;
            Ok (id, job, log_submit_wrap t job)
          end)
    in
    match admitted with
    | Error e -> Error e
    | Ok (id, job, wrap) ->
        (* Journal before the job becomes runnable: a worker cannot emit
           the finish record ahead of the submit record it pairs with. *)
        log_append t wrap;
        maybe_rotate t;
        let enqueued =
          locked t (fun () ->
              if t.stopping then false
              else begin
                t.queue <- enqueue t.queue job;
                Condition.signal t.nonempty;
                true
              end)
        in
        (* Shutdown slipped between admission and enqueue: the drain pass
           never saw this job, so record the cancellation here. *)
        if not enqueued then begin
          Atomic.set job.cancel (Some "shutdown");
          finish t job ~worker:None ~state:Cancelled ()
        end;
        Ok id
  end

let find_job t id = Hashtbl.find_opt t.jobs id

let cancel t id =
  let finish_queued =
    locked t (fun () ->
        match find_job t id with
        | None -> Error (Printf.sprintf "unknown job %d" id)
        | Some j -> begin
            match j.state with
            | Queued ->
                Atomic.set j.cancel (Some "cancelled");
                t.queue <- List.filter (fun (q : job) -> q.id <> id) t.queue;
                Ok (Some j)
            | Running ->
                (* The annealer's abort hook picks this up at its next poll;
                   the worker records the final state. *)
                Atomic.set j.cancel (Some "cancelled");
                Ok None
            | Done | Failed | Cancelled ->
                Error (Printf.sprintf "job %d already %s" id (state_name j.state))
          end)
  in
  match finish_queued with
  | Error e -> Error e
  | Ok None -> Ok ()
  | Ok (Some j) ->
      finish t j ~worker:None ~state:Cancelled ();
      Ok ()

let with_job t id f =
  locked t (fun () ->
      match find_job t id with
      | None -> Error (Printf.sprintf "unknown job %d" id)
      | Some j -> Ok (f j))

let status_json t id = with_job t id (fun j -> job_json ~full:false t j)
let result_json t id = with_job t id (fun j -> job_json ~full:true t j)

let stats_json t =
  let cache = Core.Compile_cache.stats t.cache in
  let telemetry = Obs.Sink.Summary.stats t.summary in
  locked t (fun () ->
      let by_state = Hashtbl.create 8 in
      Hashtbl.iter
        (fun _ (j : job) ->
          let k = state_name j.state in
          Hashtbl.replace by_state k (1 + Option.value (Hashtbl.find_opt by_state k) ~default:0))
        t.jobs;
      let count k = Option.value (Hashtbl.find_opt by_state k) ~default:0 in
      let lookups = cache.Core.Compile_cache.hits + cache.Core.Compile_cache.misses in
      Proto.ok
        [
          ("uptime_s", Json.Num (now () -. t.started_wall));
          ("workers", num_i t.cfg.workers);
          ("queue_depth", num_i (List.length t.queue));
          ("queue_capacity", num_i t.cfg.queue_capacity);
          ( "jobs",
            Json.Obj
              [
                ("total", num_i (Hashtbl.length t.jobs));
                ("queued", num_i (count "queued"));
                ("running", num_i (count "running"));
                ("done", num_i (count "done"));
                ("failed", num_i (count "failed"));
                ("cancelled", num_i (count "cancelled"));
                ("rejected", num_i t.rejected);
              ] );
          ("restored_jobs", num_i t.restored);
          ( "cache",
            Json.Obj
              [
                ("hits", num_i cache.Core.Compile_cache.hits);
                ("misses", num_i cache.Core.Compile_cache.misses);
                ( "remote_hits",
                  num_i
                    (match t.cfg.fleet with Some f -> Fleet.remote_hits f | None -> 0) );
                ("entries", num_i cache.Core.Compile_cache.entries);
                ("evictions", num_i cache.Core.Compile_cache.evictions);
                ("capacity", num_i cache.Core.Compile_cache.capacity);
                ( "hit_rate",
                  if lookups = 0 then Json.Null
                  else Json.Num (float_of_int cache.Core.Compile_cache.hits /. float_of_int lookups)
                );
              ] );
          ( "journal",
            Json.Obj
              [
                ("bytes", num_i t.log_bytes);
                ("rotations", num_i t.rotations);
                ( "rotate_bytes",
                  match t.cfg.log_rotate_bytes with Some b -> num_i b | None -> Json.Null );
              ] );
          ( "telemetry",
            Json.Obj
              [
                ("moves", num_i telemetry.Obs.Sink.Summary.moves);
                ("accepted", num_i telemetry.Obs.Sink.Summary.accepted);
                ("events", num_i telemetry.Obs.Sink.Summary.events);
              ] );
          ("eval_mode", Json.Str (if t.cfg.incremental then "incremental" else "full"));
          ( "evals",
            (* Aggregated incremental-evaluator counters over the latest
               snapshot per restart — cache effectiveness at a glance. *)
            let rows = telemetry.Obs.Sink.Summary.eval_rows in
            let sum f = List.fold_left (fun a (_, e) -> a + f e) 0 rows in
            if rows = [] then Json.Null
            else
              Json.Obj
                [
                  ("full", num_i (sum (fun e -> e.Obs.Event.full)));
                  ("incremental", num_i (sum (fun e -> e.Obs.Event.incr)));
                  ("op_hits", num_i (sum (fun e -> e.Obs.Event.op_hits)));
                  ("op_misses", num_i (sum (fun e -> e.Obs.Event.op_misses)));
                  ("rom_builds", num_i (sum (fun e -> e.Obs.Event.rom_builds)));
                  ("rom_reuses", num_i (sum (fun e -> e.Obs.Event.rom_reuses)));
                  ("spec_evals", num_i (sum (fun e -> e.Obs.Event.spec_evals)));
                  ("spec_reuses", num_i (sum (fun e -> e.Obs.Event.spec_reuses)));
                  ("resyncs", num_i (sum (fun e -> e.Obs.Event.resyncs)));
                  ( "resync_mismatches",
                    num_i (sum (fun e -> e.Obs.Event.resync_mismatches)) );
                  ("probes", num_i (sum (fun e -> e.Obs.Event.probes)));
                  ( "probe_rom_builds",
                    num_i (sum (fun e -> e.Obs.Event.probe_rom_builds)) );
                  ( "probe_fallbacks",
                    num_i (sum (fun e -> e.Obs.Event.probe_fallbacks)) );
                  ("mom_reuses", num_i (sum (fun e -> e.Obs.Event.mom_reuses)));
                  ( "mom_refreshes",
                    num_i (sum (fun e -> e.Obs.Event.mom_refreshes)) );
                ] );
          ( "corpus",
            let c = Corpus.stats t.corpus in
            Json.Obj
              [
                ("entries", num_i c.Corpus.entries);
                ("shapes", num_i c.Corpus.shapes);
                ("capacity", num_i t.cfg.corpus_capacity);
                ("adds", num_i c.Corpus.adds);
                ("evictions", num_i c.Corpus.evictions);
                ("hits", num_i c.Corpus.hits);
                ("lookups", num_i c.Corpus.lookups);
                ("replayed", num_i c.Corpus.replayed);
                ("warm", Json.Bool t.cfg.warm);
                ("warm_fraction", Json.Num t.cfg.warm_fraction);
              ] );
          ( "fleet",
            match t.cfg.fleet with Some f -> Fleet.stats_json f | None -> Json.Null );
          ( "workers_detail",
            Json.Arr
              (List.init t.cfg.workers (fun w ->
                   Json.Obj
                     [
                       ("worker", num_i w);
                       ("jobs", num_i t.worker_jobs.(w));
                       ("moves", num_i t.worker_moves.(w));
                       ("busy_s", Json.Num t.worker_busy_s.(w));
                       ( "moves_per_s",
                         if t.worker_busy_s.(w) > 0.0 then
                           Json.Num (float_of_int t.worker_moves.(w) /. t.worker_busy_s.(w))
                         else Json.Null );
                     ])) );
        ])

(* --- Fleet-facing accessors (the cache_lookup / cache_push verbs) ----- *)

let fleet t = t.cfg.fleet

let cache_peek t ~hash =
  (match t.cfg.fleet with Some f -> Fleet.record_served_lookup f | None -> ());
  Core.Compile_cache.peek t.cache ~key:hash

let cache_note t ~hash ~error =
  (match t.cfg.fleet with Some f -> Fleet.record_push f ~hash ~error | None -> ());
  (* A known-bad verdict also lands in the compile cache so the next
     submission of that source fails fast without compiling. Known-good
     can't: there is no compiled problem to cache. *)
  match error with Some e -> Core.Compile_cache.add t.cache ~key:hash (Error e) | None -> ()

(* --- Corpus-facing accessors (corpus_lookup / corpus_push verbs) ------ *)

let corpus_lookup t ~shape =
  (match t.cfg.fleet with Some f -> Fleet.record_served_corpus_lookup f | None -> ());
  Corpus.lookup t.corpus shape

(* An inbound replication push. A new entry is absorbed but not pushed
   onward: every daemon pushes its own winners to every peer directly, so
   re-propagation would only echo around the full mesh. *)
let corpus_note t entry =
  (match t.cfg.fleet with Some f -> Fleet.record_corpus_inbound f | None -> ());
  ignore (Corpus.add t.corpus entry)

(* --- The resynthesize fast path --------------------------------------- *)

(* Rerun a finished job with tweaked spec targets: reuse its source (the
   compile is a cache hit), warm-start exactly one restart from its
   recorded winner (plus the winner's Hustin distribution as priors), and
   halve the restart/budget schedule unless told otherwise. Works with
   [cfg.warm] off — the explicit parent is the seed, not the corpus. *)
let resynthesize t (r : Proto.resynth) =
  let parent =
    locked t (fun () ->
        match find_job t r.Proto.rz_id with
        | None -> Error (Printf.sprintf "unknown job %d" r.Proto.rz_id)
        | Some j -> begin
            match j.state with
            | Done -> begin
                match j.outcome with
                | Some ({ jo_winner = Some _; _ } as o) when j.spec.Proto.sb_sweep = [] ->
                    Ok (j.id, j.spec, o)
                | Some { jo_winner = Some _; _ } ->
                    Error (Printf.sprintf "job %d is a sweep — resynthesize one variant's submit instead" j.id)
                | Some _ | None ->
                    Error
                      (Printf.sprintf
                         "job %d has no recorded winner (pre-corpus journal?) — submit afresh"
                         j.id)
              end
            | st ->
                Error
                  (Printf.sprintf "job %d is %s — only done jobs resynthesize" j.id
                     (state_name st))
          end)
  in
  match parent with
  | Error e -> Error e
  | Ok (parent_id, spec, o) -> begin
      let values, grid, probs = Option.get o.jo_winner in
      match
        match Netlist.Parser.parse_problem spec.Proto.sb_source with
        | ast -> Some ast
        | exception Netlist.Parser.Error _ -> None
      with
      | None -> Error (Printf.sprintf "job %d source no longer parses" parent_id)
      | Some ast -> begin
          let canon = Netlist.Canon.problem_hash ast
          and shape = Netlist.Canon.problem_shape_hash ast in
          (* Resolve each re-target's omitted bad against the parent's
             effective targets: its overrides first, the source second. *)
          let effective_bad n =
            match
              List.find_opt (fun (m, _, _) -> m = n) spec.Proto.sb_spec_overrides
            with
            | Some (_, _, bad) -> Some bad
            | None ->
                List.find_map
                  (fun (s : Netlist.Ast.spec) ->
                    if s.Netlist.Ast.spec_name = n then Some s.Netlist.Ast.bad else None)
                  ast.Netlist.Ast.specs
          in
          let unresolved, resolved =
            List.partition_map
              (fun (n, good, bad) ->
                match bad with
                | Some b -> Right (n, good, b)
                | None -> begin
                    match effective_bad n with
                    | Some b -> Right (n, good, b)
                    | None -> Left n
                  end)
              r.Proto.rz_specs
          in
          match unresolved with
          | _ :: _ ->
              Error
                (Printf.sprintf "unknown spec(s): %s" (String.concat ", " unresolved))
          | [] ->
          let entry =
            {
              Corpus.en_shape = shape;
              en_canon = canon;
              en_job = parent_id;
              en_name = spec.Proto.sb_name;
              en_cost = o.jo_best_cost;
              en_values = values;
              en_grid = grid;
              en_probs = probs;
            }
          in
          (* New targets shadow same-named parent overrides; the rest of
             the parent's overrides carry forward so the child judges the
             same problem apart from the requested tweaks. *)
          let overrides =
            List.filter
              (fun (n, _, _) ->
                not (List.exists (fun (m, _, _) -> m = n) resolved))
              spec.Proto.sb_spec_overrides
            @ resolved
          in
          let runs =
            match r.Proto.rz_runs with
            | Some n -> n
            | None -> Int.max 1 ((spec.Proto.sb_runs + 1) / 2)
          in
          let moves =
            match r.Proto.rz_moves with
            | Some m -> Some m
            | None -> Option.map (fun m -> Int.max 1 (m / 2)) spec.Proto.sb_moves
          in
          submit t
            {
              spec with
              Proto.sb_name = Printf.sprintf "%s#resynth:%d" spec.Proto.sb_name parent_id;
              sb_runs = runs;
              sb_moves = moves;
              sb_deadline_s = r.Proto.rz_deadline_s;
              sb_trace = r.Proto.rz_trace;
              sb_shard = None;
              sb_sweep = [];
              sb_warm = [ entry ];
              sb_spec_overrides = overrides;
            }
        end
    end

let shutdown t =
  let queued, domains =
    locked t (fun () ->
        if t.stopping then ([], [])
        else begin
          t.stopping <- true;
          let queued = t.queue in
          t.queue <- [];
          List.iter
            (fun (j : job) ->
              Atomic.set j.cancel (Some "shutdown");
              j.state <- Cancelled)
            queued;
          (* Trip every running job's abort hook so workers drain fast. *)
          Hashtbl.iter
            (fun _ (j : job) ->
              if j.state = Running then Atomic.set j.cancel (Some "shutdown"))
            t.jobs;
          Condition.broadcast t.nonempty;
          let d = t.domains in
          t.domains <- [];
          (queued, d)
        end)
  in
  List.iter (fun j -> finish t j ~worker:None ~state:Cancelled ()) queued;
  List.iter Domain.join domains;
  Corpus.close t.corpus;
  (* Workers are gone and submissions are refused: nothing appends past
     this point, so the journal can close. (A second shutdown call raises
     on the closed channel; swallow it — idempotence is the contract.) *)
  match t.log with
  | Some oc -> ( try close_out oc with Sys_error _ -> ())
  | None -> ()
