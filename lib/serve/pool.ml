module Json = Obs.Json

type config = {
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  state_dir : string option;
  default_moves : int option;
}

let default_config =
  {
    workers = Core.Oblx.default_jobs ();
    queue_capacity = 64;
    cache_capacity = 64;
    state_dir = None;
    default_moves = None;
  }

type job_state = Queued | Running | Done | Failed | Cancelled

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Cancelled -> "cancelled"

(* What a finished synthesis leaves on the job record. *)
type outcome = {
  jo_best_cost : float;
  jo_moves : int;  (** across every restart of the job *)
  jo_evals : int;
  jo_cut_reason : string option;
  jo_predicted : (string * float option) list;
  jo_sizes : (string * float) list;
}

type job = {
  id : int;
  spec : Proto.submit;
  submitted_at : float;
  mutable state : job_state;
  mutable started_at : float option;
  mutable finished_at : float option;
  mutable worker : int option;
  mutable cache : Core.Compile_cache.outcome option;
  mutable error : string option;  (** [Failed]: the compile error *)
  mutable outcome : outcome option;
  cancel : string option Atomic.t;
      (** cancellation verdict, polled by the annealer's abort hook *)
  ring : Obs.Sink.Ring.ring option;  (** per-job stage events, on request *)
}

type t = {
  cfg : config;
  mutex : Mutex.t;
  nonempty : Condition.t;
  jobs : (int, job) Hashtbl.t;
  mutable queue : job list;  (** sorted: priority desc, then id asc *)
  mutable next_id : int;
  mutable stopping : bool;
  mutable rejected : int;
  cache : Core.Compile_cache.t;
  summary : Obs.Sink.Summary.summary;
  obs_base : Obs.Trace.t;  (** Moves-level handle over the summary sink *)
  worker_moves : int array;
  worker_busy_s : float array;
  worker_jobs : int array;
  mutable domains : unit Domain.t list;
  started_wall : float;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Queue discipline                                                    *)
(* ------------------------------------------------------------------ *)

let enqueue queue job =
  let precedes (a : job) (b : job) =
    a.spec.Proto.sb_priority > b.spec.Proto.sb_priority
    || (a.spec.Proto.sb_priority = b.spec.Proto.sb_priority && a.id < b.id)
  in
  let rec insert = function
    | [] -> [ job ]
    | j :: rest when precedes job j -> job :: j :: rest
    | j :: rest -> j :: insert rest
  in
  insert queue

(* ------------------------------------------------------------------ *)
(* Finishing and persistence                                           *)
(* ------------------------------------------------------------------ *)

let opt_num = function Some v -> Json.Num v | None -> Json.Null
let num_i i = Json.Num (float_of_int i)
let opt_str = function Some s -> Json.Str s | None -> Json.Null

(* Caller holds the lock. *)
let job_json ~full t (j : job) =
  let wait_s =
    match j.started_at with
    | Some st -> st -. j.submitted_at
    | None -> if j.state = Queued then now () -. j.submitted_at else 0.0
  in
  let run_s =
    match (j.started_at, j.finished_at) with
    | Some st, Some fin -> Some (fin -. st)
    | Some st, None -> Some (now () -. st)
    | None, _ -> None
  in
  let queue_pos =
    match j.state with
    | Queued ->
        let rec pos k = function
          | [] -> None
          | (q : job) :: rest -> if q.id = j.id then Some k else pos (k + 1) rest
        in
        pos 0 t.queue
    | Running | Done | Failed | Cancelled -> None
  in
  let base =
    [
      ("id", num_i j.id);
      ("name", Json.Str j.spec.Proto.sb_name);
      ("state", Json.Str (state_name j.state));
      ("seed", num_i j.spec.Proto.sb_seed);
      ("runs", num_i j.spec.Proto.sb_runs);
      ("priority", num_i j.spec.Proto.sb_priority);
      ("deadline_s", opt_num j.spec.Proto.sb_deadline_s);
      ("queue_position", match queue_pos with Some p -> num_i p | None -> Json.Null);
      ("wait_s", Json.Num wait_s);
      ("run_s", opt_num run_s);
      ( "cache",
        match j.cache with
        | Some Core.Compile_cache.Hit -> Json.Str "hit"
        | Some Core.Compile_cache.Miss -> Json.Str "miss"
        | None -> Json.Null );
      ("error", opt_str j.error);
      ("cut_reason", opt_str (match j.outcome with Some o -> o.jo_cut_reason | None -> None));
    ]
  in
  let detail =
    if not full then []
    else
      match j.outcome with
      | None -> []
      | Some o ->
          [
            ("best_cost", Json.Num o.jo_best_cost);
            ("moves", num_i o.jo_moves);
            ("evals", num_i o.jo_evals);
            ( "predicted",
              Json.Obj (List.map (fun (k, v) -> (k, opt_num v)) o.jo_predicted) );
            ("sizes", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) o.jo_sizes));
          ]
  in
  let events =
    if not full then []
    else
      match j.ring with
      | None -> []
      | Some ring ->
          [
            ( "events",
              Json.Arr (List.map Obs.Event.to_json (Obs.Sink.Ring.contents ring)) );
            ("events_dropped", num_i (Obs.Sink.Ring.dropped ring));
          ]
  in
  Json.Obj (base @ detail @ events)

(* Persist outside the lock: the record is already rendered. *)
let persist t (j : job) rendered =
  match t.cfg.state_dir with
  | None -> ()
  | Some dir -> begin
      match
        let oc = open_out (Filename.concat dir (Printf.sprintf "job-%d.json" j.id)) in
        output_string oc (Json.to_string rendered);
        output_char oc '\n';
        close_out oc
      with
      | () -> ()
      | exception Sys_error _ -> () (* the state dir is best-effort ops trail *)
    end

let finish t (j : job) ~worker ~state ?error ?outcome () =
  let rendered =
    locked t (fun () ->
        j.state <- state;
        j.finished_at <- Some (now ());
        (match error with Some _ -> j.error <- error | None -> ());
        (match outcome with Some _ -> j.outcome <- outcome | None -> ());
        (match (worker, j.started_at, j.finished_at) with
        | Some w, Some st, Some fin ->
            t.worker_busy_s.(w) <- t.worker_busy_s.(w) +. (fin -. st);
            t.worker_jobs.(w) <- t.worker_jobs.(w) + 1;
            (match outcome with
            | Some o -> t.worker_moves.(w) <- t.worker_moves.(w) + o.jo_moves
            | None -> ())
        | _ -> ());
        job_json ~full:true t j)
  in
  persist t j rendered

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

let run_job t (j : job) ~worker =
  match Core.Compile_cache.compile t.cache ~source:j.spec.Proto.sb_source with
  | Error e ->
      locked t (fun () -> j.cache <- Some Core.Compile_cache.Miss);
      finish t j ~worker:(Some worker) ~state:Failed ~error:e ()
  | Ok (p, cache_outcome) ->
      locked t (fun () -> j.cache <- Some cache_outcome);
      let obs =
        match j.ring with
        | Some ring ->
            (* The ring rides next to the global summary but is capped at
               Stage level: a job's recent history, not a move torrent. *)
            Obs.Trace.add_sink t.obs_base
              (Obs.Sink.filtered ~level:Obs.Event.Stage (Obs.Sink.Ring.sink ring))
        | None -> t.obs_base
      in
      (* The deadline is a latency bound from submission, so the queue wait
         already spent part of it; an exhausted budget still runs the job,
         which aborts at move 0 via the annealer's pre-loop poll. *)
      let deadline_s =
        Option.map
          (fun budget -> Float.max 0.0 (budget -. (now () -. j.submitted_at)))
          j.spec.Proto.sb_deadline_s
      in
      let moves =
        match j.spec.Proto.sb_moves with Some m -> Some m | None -> t.cfg.default_moves
      in
      let best, all =
        Core.Oblx.run_job ~seed:j.spec.Proto.sb_seed ?moves ~runs:j.spec.Proto.sb_runs ~jobs:1
          ?deadline_s
          ~poll:(fun () -> Atomic.get j.cancel)
          ~obs p
      in
      (* The job-level cut reason: the winner's, or the first restart that
         reported one (a deadline can fire during restart k > 0 while the
         winner ran to completion). *)
      let cut_reason =
        match best.Core.Oblx.cut_reason with
        | Some r -> Some r
        | None ->
            List.find_map (fun (r : Core.Oblx.result) -> r.Core.Oblx.cut_reason) all
      in
      let outcome =
        {
          jo_best_cost = best.Core.Oblx.best_cost;
          jo_moves = List.fold_left (fun a (r : Core.Oblx.result) -> a + r.Core.Oblx.moves) 0 all;
          jo_evals = List.fold_left (fun a (r : Core.Oblx.result) -> a + r.Core.Oblx.evals) 0 all;
          jo_cut_reason = cut_reason;
          jo_predicted = best.Core.Oblx.predicted;
          jo_sizes = Core.Report.sizes p best.Core.Oblx.final;
        }
      in
      let state = if Atomic.get j.cancel <> None then Cancelled else Done in
      finish t j ~worker:(Some worker) ~state ~outcome ()

let rec worker_loop t ~worker =
  let job =
    locked t (fun () ->
        while t.queue = [] && not t.stopping do
          Condition.wait t.nonempty t.mutex
        done;
        match t.queue with
        | [] -> None (* stopping *)
        | j :: rest ->
            t.queue <- rest;
            j.state <- Running;
            j.started_at <- Some (now ());
            j.worker <- Some worker;
            Some j)
  in
  match job with
  | None -> ()
  | Some j ->
      (match run_job t j ~worker with
      | () -> ()
      | exception exn ->
          (* A worker must outlive any single job: record the wreckage and
             move on. *)
          finish t j ~worker:(Some worker) ~state:Failed
            ~error:(Printf.sprintf "internal error: %s" (Printexc.to_string exn))
            ());
      worker_loop t ~worker

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let create cfg =
  if cfg.workers < 0 then invalid_arg "Pool.create: workers must be >= 0";
  if cfg.queue_capacity < 1 then invalid_arg "Pool.create: queue_capacity must be >= 1";
  (match cfg.state_dir with
  | Some dir -> ( try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | None -> ());
  let summary = Obs.Sink.Summary.create () in
  let t =
    {
      cfg;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Hashtbl.create 64;
      queue = [];
      next_id = 0;
      stopping = false;
      rejected = 0;
      cache = Core.Compile_cache.create ~capacity:cfg.cache_capacity ();
      summary;
      obs_base = Obs.Trace.make ~level:Obs.Event.Moves [ Obs.Sink.Summary.sink summary ];
      worker_moves = Array.make (Int.max 1 cfg.workers) 0;
      worker_busy_s = Array.make (Int.max 1 cfg.workers) 0.0;
      worker_jobs = Array.make (Int.max 1 cfg.workers) 0;
      domains = [];
      started_wall = now ();
    }
  in
  t.domains <-
    List.init cfg.workers (fun w -> Domain.spawn (fun () -> worker_loop t ~worker:w));
  t

let submit t (s : Proto.submit) =
  if s.Proto.sb_runs < 1 then Error "runs must be >= 1"
  else if String.trim s.Proto.sb_source = "" then Error "empty problem source"
  else
    locked t (fun () ->
        if t.stopping then Error "daemon is shutting down"
        else if List.length t.queue >= t.cfg.queue_capacity then begin
          t.rejected <- t.rejected + 1;
          Error
            (Printf.sprintf "queue full: %d jobs queued (capacity %d) — retry later"
               (List.length t.queue) t.cfg.queue_capacity)
        end
        else begin
          let id = t.next_id in
          t.next_id <- id + 1;
          let job =
            {
              id;
              spec = s;
              submitted_at = now ();
              state = Queued;
              started_at = None;
              finished_at = None;
              worker = None;
              cache = None;
              error = None;
              outcome = None;
              cancel = Atomic.make None;
              ring =
                (if s.Proto.sb_trace then Some (Obs.Sink.Ring.create ~capacity:256) else None);
            }
          in
          Hashtbl.add t.jobs id job;
          t.queue <- enqueue t.queue job;
          Condition.signal t.nonempty;
          Ok id
        end)

let find_job t id = Hashtbl.find_opt t.jobs id

let cancel t id =
  let finish_queued =
    locked t (fun () ->
        match find_job t id with
        | None -> Error (Printf.sprintf "unknown job %d" id)
        | Some j -> begin
            match j.state with
            | Queued ->
                Atomic.set j.cancel (Some "cancelled");
                t.queue <- List.filter (fun (q : job) -> q.id <> id) t.queue;
                Ok (Some j)
            | Running ->
                (* The annealer's abort hook picks this up at its next poll;
                   the worker records the final state. *)
                Atomic.set j.cancel (Some "cancelled");
                Ok None
            | Done | Failed | Cancelled ->
                Error (Printf.sprintf "job %d already %s" id (state_name j.state))
          end)
  in
  match finish_queued with
  | Error e -> Error e
  | Ok None -> Ok ()
  | Ok (Some j) ->
      finish t j ~worker:None ~state:Cancelled ();
      Ok ()

let with_job t id f =
  locked t (fun () ->
      match find_job t id with
      | None -> Error (Printf.sprintf "unknown job %d" id)
      | Some j -> Ok (f j))

let status_json t id = with_job t id (fun j -> job_json ~full:false t j)
let result_json t id = with_job t id (fun j -> job_json ~full:true t j)

let stats_json t =
  let cache = Core.Compile_cache.stats t.cache in
  let telemetry = Obs.Sink.Summary.stats t.summary in
  locked t (fun () ->
      let by_state = Hashtbl.create 8 in
      Hashtbl.iter
        (fun _ (j : job) ->
          let k = state_name j.state in
          Hashtbl.replace by_state k (1 + Option.value (Hashtbl.find_opt by_state k) ~default:0))
        t.jobs;
      let count k = Option.value (Hashtbl.find_opt by_state k) ~default:0 in
      let lookups = cache.Core.Compile_cache.hits + cache.Core.Compile_cache.misses in
      Proto.ok
        [
          ("uptime_s", Json.Num (now () -. t.started_wall));
          ("workers", num_i t.cfg.workers);
          ("queue_depth", num_i (List.length t.queue));
          ("queue_capacity", num_i t.cfg.queue_capacity);
          ( "jobs",
            Json.Obj
              [
                ("total", num_i (Hashtbl.length t.jobs));
                ("queued", num_i (count "queued"));
                ("running", num_i (count "running"));
                ("done", num_i (count "done"));
                ("failed", num_i (count "failed"));
                ("cancelled", num_i (count "cancelled"));
                ("rejected", num_i t.rejected);
              ] );
          ( "cache",
            Json.Obj
              [
                ("hits", num_i cache.Core.Compile_cache.hits);
                ("misses", num_i cache.Core.Compile_cache.misses);
                ("entries", num_i cache.Core.Compile_cache.entries);
                ("evictions", num_i cache.Core.Compile_cache.evictions);
                ("capacity", num_i cache.Core.Compile_cache.capacity);
                ( "hit_rate",
                  if lookups = 0 then Json.Null
                  else Json.Num (float_of_int cache.Core.Compile_cache.hits /. float_of_int lookups)
                );
              ] );
          ( "telemetry",
            Json.Obj
              [
                ("moves", num_i telemetry.Obs.Sink.Summary.moves);
                ("accepted", num_i telemetry.Obs.Sink.Summary.accepted);
                ("events", num_i telemetry.Obs.Sink.Summary.events);
              ] );
          ( "workers_detail",
            Json.Arr
              (List.init t.cfg.workers (fun w ->
                   Json.Obj
                     [
                       ("worker", num_i w);
                       ("jobs", num_i t.worker_jobs.(w));
                       ("moves", num_i t.worker_moves.(w));
                       ("busy_s", Json.Num t.worker_busy_s.(w));
                       ( "moves_per_s",
                         if t.worker_busy_s.(w) > 0.0 then
                           Json.Num (float_of_int t.worker_moves.(w) /. t.worker_busy_s.(w))
                         else Json.Null );
                     ])) );
        ])

let shutdown t =
  let queued, domains =
    locked t (fun () ->
        if t.stopping then ([], [])
        else begin
          t.stopping <- true;
          let queued = t.queue in
          t.queue <- [];
          List.iter
            (fun (j : job) ->
              Atomic.set j.cancel (Some "shutdown");
              j.state <- Cancelled)
            queued;
          (* Trip every running job's abort hook so workers drain fast. *)
          Hashtbl.iter
            (fun _ (j : job) ->
              if j.state = Running then Atomic.set j.cancel (Some "shutdown"))
            t.jobs;
          Condition.broadcast t.nonempty;
          let d = t.domains in
          t.domains <- [];
          (queued, d)
        end)
  in
  List.iter (fun j -> finish t j ~worker:None ~state:Cancelled ()) queued;
  List.iter Domain.join domains
