(** The oblxd daemon loop: listeners speaking the JSONL protocol of
    {!Proto}, dispatching into a {!Pool}.

    Two transports share one dispatch: the Unix-domain socket (always),
    and an optional TCP listener ([config.tcp]) for fleet peers and
    remote clients. TCP carries the same line protocol; with
    [auth_token] set, every connection (both transports) must present
    [{"auth":TOKEN}] as its first line — success is silent, anything
    else gets exactly one [ok:false] line ({!Proto.auth_failed_message})
    and the connection closes. A connection that never sends its token
    is shed by the idle timeout, like any other quiet connection.

    Connections are served {e concurrently}: each accepted connection gets
    its own thread (requests are table lookups; synthesis happens on the
    pool's worker domains), so a slow or idle client cannot starve
    another client's [stats]. A connection may carry many requests,
    pipelined one line at a time; the bundled {!Client} still opens one
    per request. Beyond [max_connections] live connections, new ones are
    answered with one [ok:false] line ({!Proto.busy_message}) and closed.
    A connection idle longer than [idle_timeout_s] between requests is
    closed to reclaim its slot. *)

type config = {
  socket_path : string;
  tcp : (string * int) option;
      (** also listen on [HOST:PORT]; port 0 binds an ephemeral port,
          reported through [run]'s [tcp_port] callback *)
  auth_token : string option;
      (** shared secret required as the first line of every connection *)
  max_connections : int;  (** live-connection cap; see {!default_max_connections} *)
  idle_timeout_s : float;
      (** quiet time between requests before a connection is dropped;
          also the deadline for the auth line *)
  pool : Pool.config;
}

val default_max_connections : int
(** 32 — plenty for one-socket local traffic while bounding thread count. *)

val default_idle_timeout_s : float
(** 30 s. *)

(** [run ?ready ?tcp_port ?pool config] binds [config.socket_path]
    (unlinking a stale socket file first) and, when configured, the TCP
    listener; starts the pool (or serves a pre-built one — how the fleet
    bench inspects a daemon's pool after the fact); and serves until a
    [shutdown] request or SIGINT/SIGTERM arrives. Then it drains
    gracefully — closes {e both} listeners first so nothing new (not
    even a half-authenticated connection) slips in, lets every in-flight
    response flush, joins the connection threads, shuts the pool down —
    and removes the socket file. [ready] fires once the listeners are
    accepting; [tcp_port] fires earlier with the bound TCP port (the
    ephemeral port when [config.tcp] asked for port 0). *)
val run :
  ?ready:(unit -> unit) -> ?tcp_port:(int -> unit) -> ?pool:Pool.t -> config -> unit
