(** The oblxd daemon loop: a Unix-domain stream socket speaking the JSONL
    protocol of {!Proto}, dispatching into a {!Pool}. Connections are
    served one at a time (requests are table lookups; synthesis happens on
    the pool's worker domains), so clients should keep connections short —
    the bundled {!Client} opens one per request. *)

type config = {
  socket_path : string;
  pool : Pool.config;
}

(** [run ?ready config] binds [config.socket_path] (unlinking a stale
    socket file first), starts the pool, and serves until a [shutdown]
    request or SIGINT/SIGTERM arrives; then drains the pool and removes
    the socket file. [ready] fires once the socket is listening — how an
    in-process harness (tests, bench) knows it can connect. *)
val run : ?ready:(unit -> unit) -> config -> unit
