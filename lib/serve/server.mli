(** The oblxd daemon loop: a Unix-domain stream socket speaking the JSONL
    protocol of {!Proto}, dispatching into a {!Pool}.

    Connections are served {e concurrently}: each accepted connection gets
    its own thread (requests are table lookups; synthesis happens on the
    pool's worker domains), so a slow or idle client cannot starve
    another client's [stats]. A connection may carry many requests,
    pipelined one line at a time; the bundled {!Client} still opens one
    per request. Beyond [max_connections] live connections, new ones are
    answered with one [ok:false] line ({!Proto.busy_message}) and closed.
    A connection idle longer than [idle_timeout_s] between requests is
    closed to reclaim its slot. *)

type config = {
  socket_path : string;
  max_connections : int;  (** live-connection cap; see {!default_max_connections} *)
  idle_timeout_s : float;
      (** quiet time between requests before a connection is dropped *)
  pool : Pool.config;
}

val default_max_connections : int
(** 32 — plenty for one-socket local traffic while bounding thread count. *)

val default_idle_timeout_s : float
(** 30 s. *)

(** [run ?ready config] binds [config.socket_path] (unlinking a stale
    socket file first), starts the pool, and serves until a [shutdown]
    request or SIGINT/SIGTERM arrives; then drains gracefully — stops
    accepting, lets every in-flight response flush, joins the connection
    threads, shuts the pool down — and removes the socket file. [ready]
    fires once the socket is listening — how an in-process harness
    (tests, bench) knows it can connect. *)
val run : ?ready:(unit -> unit) -> config -> unit
