module Json = Obs.Json

(* The winner corpus: finished jobs' winning design vectors keyed by the
   problem's shape hash ({!Netlist.Canon.problem_shape_hash} — the canon
   rendering with spec target values dropped), so "same circuit, tweaked
   specs" finds its predecessors. Bounded in memory, journal-backed on
   disk (state_dir/corpus.log, JSONL, replayed on restart, compacted via
   tmp+rename like the job journal), replicated peer-to-peer like compile
   verdicts. Entries are plain data — values, grid indices, Hustin
   probabilities — and cross the wire as JSON. *)

type entry = {
  en_shape : string;
  en_canon : string;
  en_job : int;
  en_name : string;
  en_cost : float;
  en_values : float array;
  en_grid : int array;
  en_probs : float array;
}

let warm_label (e : entry) = Printf.sprintf "corpus:job%d:%s" e.en_job e.en_name

let warm_start_of_entry (e : entry) =
  {
    Core.Oblx.ws_label = warm_label e;
    ws_values = e.en_values;
    ws_grid = e.en_grid;
    ws_probs = (if e.en_probs = [||] then None else Some e.en_probs);
  }

(* ------------------------------------------------------------------ *)
(* JSON codec — the journal line and the wire form are the same object  *)
(* ------------------------------------------------------------------ *)

let farr a = Json.Arr (Array.to_list a |> List.map (fun v -> Json.Num v))
let iarr a = Json.Arr (Array.to_list a |> List.map (fun v -> Json.Num (float_of_int v)))

let entry_to_json (e : entry) =
  Json.Obj
    [
      ("shape", Json.Str e.en_shape);
      ("canon", Json.Str e.en_canon);
      ("job", Json.Num (float_of_int e.en_job));
      ("name", Json.Str e.en_name);
      ("cost", Json.Num e.en_cost);
      ("values", farr e.en_values);
      ("grid", iarr e.en_grid);
      ("probs", farr e.en_probs);
    ]

let entry_of_json j =
  match
    let str k = Json.to_str (Json.mem k j) in
    let fl k =
      match Json.mem_opt k j with
      | Some (Json.Arr vs) -> Array.of_list (List.map Json.to_float vs)
      | Some _ -> raise (Json.Decode_error ("corpus entry: \"" ^ k ^ "\" must be an array"))
      | None -> [||]
    in
    {
      en_shape = str "shape";
      en_canon = str "canon";
      en_job = Json.to_int (Json.mem "job" j);
      en_name = (match Json.mem_opt "name" j with Some (Json.Str s) -> s | _ -> "");
      en_cost = Json.to_float (Json.mem "cost" j);
      en_values = fl "values";
      en_grid = Array.map int_of_float (fl "grid");
      en_probs = fl "probs";
    }
  with
  | e when e.en_shape <> "" && e.en_values <> [||] -> Ok e
  | _ -> Error "corpus entry: empty shape or values"
  | exception Json.Decode_error m -> Error m

(* ------------------------------------------------------------------ *)
(* The bounded, journal-backed store                                    *)
(* ------------------------------------------------------------------ *)

type t = {
  mutex : Mutex.t;
  table : (string, entry list) Hashtbl.t;  (** shape -> entries, best cost first *)
  per_shape : int;
  capacity : int;  (** total entries across all shapes *)
  mutable total : int;
  mutable log : out_channel option;
  log_path : string option;
  mutable logged_lines : int;  (** appended since the last compaction *)
  mutable adds : int;
  mutable evictions : int;
  mutable hits : int;  (** lookups that returned at least one entry *)
  mutable lookups : int;
  mutable replayed : int;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Two entries carry the same information when they agree on everything
   but provenance-only fields could still differ between daemons; equality
   on (shape, canon, cost, values) is what stops replication echo: a peer
   pushing back an entry we pushed to it is a no-op add. *)
let same (a : entry) (b : entry) =
  a.en_shape = b.en_shape && a.en_canon = b.en_canon && a.en_cost = b.en_cost
  && a.en_values = b.en_values

(* Caller holds the lock. Insert best-first; on cost ties the incumbent
   stays (earlier information wins, like the annealer's winner fold). *)
let insert_locked t (e : entry) =
  let bucket = Option.value (Hashtbl.find_opt t.table e.en_shape) ~default:[] in
  if List.exists (same e) bucket then false
  else begin
    let rec ins = function
      | [] -> [ e ]
      | x :: rest -> if e.en_cost < x.en_cost then e :: x :: rest else x :: ins rest
    in
    let bucket = ins bucket in
    let bucket, dropped =
      let rec take n = function
        | [] -> ([], 0)
        | _ :: rest when n = 0 -> ([], 1 + List.length rest)
        | x :: rest ->
            let kept, d = take (n - 1) rest in
            (x :: kept, d)
      in
      take t.per_shape bucket
    in
    (* The new entry may itself be what got truncated away. *)
    if List.exists (same e) bucket then begin
      Hashtbl.replace t.table e.en_shape bucket;
      t.total <- t.total + 1 - dropped;
      t.evictions <- t.evictions + dropped;
      (* Over total capacity: evict the globally worst-cost entry (ties:
         the lexicographically last shape). *)
      while t.total > t.capacity do
        let victim = ref None in
        Hashtbl.iter
          (fun shape es ->
            match List.rev es with
            | [] -> ()
            | worst :: _ -> begin
                match !victim with
                | Some (_, w, vs) when w > worst.en_cost || (w = worst.en_cost && vs >= shape) ->
                    ()
                | Some _ | None -> victim := Some (worst, worst.en_cost, shape)
              end)
          t.table;
        match !victim with
        | None -> t.total <- 0 (* unreachable: total > 0 *)
        | Some (worst, _, shape) ->
            let es = Hashtbl.find t.table shape in
            let es = List.filter (fun x -> not (same x worst)) es in
            if es = [] then Hashtbl.remove t.table shape else Hashtbl.replace t.table shape es;
            t.total <- t.total - 1;
            t.evictions <- t.evictions + 1
      done;
      true
    end
    else begin
      t.evictions <- t.evictions + 1;
      false
    end
  end

let append_locked t (e : entry) =
  match t.log with
  | None -> ()
  | Some oc -> (
      try
        output_string oc (Json.to_string (entry_to_json e));
        output_char oc '\n';
        flush oc;
        t.logged_lines <- t.logged_lines + 1
      with Sys_error _ -> () (* best-effort, like the job journal *))

let to_list t =
  locked t (fun () ->
      Hashtbl.fold (fun shape es acc -> (shape, es) :: acc) t.table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.concat_map snd)

(* Rewrite the journal as exactly the live entries, atomically. A kill -9
   at any point leaves either the old complete log or the new one. Caller
   holds the lock. *)
let compact_locked t =
  match (t.log_path, t.log) with
  | Some path, Some oc -> begin
      let tmp = path ^ ".tmp" in
      match open_out tmp with
      | exception Sys_error _ -> ()
      | tmp_oc -> (
          try
            Hashtbl.fold (fun shape es acc -> (shape, es) :: acc) t.table []
            |> List.sort (fun (a, _) (b, _) -> String.compare a b)
            |> List.iter (fun (_, es) ->
                   List.iter
                     (fun e ->
                       output_string tmp_oc (Json.to_string (entry_to_json e));
                       output_char tmp_oc '\n')
                     es);
            close_out tmp_oc;
            Sys.rename tmp path;
            (try close_out oc with Sys_error _ -> ());
            t.log <-
              (try Some (open_out_gen [ Open_append; Open_creat ] 0o644 path)
               with Sys_error _ -> None);
            t.logged_lines <- t.total
          with Sys_error _ -> ( try close_out tmp_oc with Sys_error _ -> ()))
    end
  | _ -> ()

let add t (e : entry) =
  locked t (fun () ->
      let inserted = insert_locked t e in
      if inserted then begin
        t.adds <- t.adds + 1;
        append_locked t e;
        (* The journal accumulates superseded entries (evicted or
           deduplicated); compact once it clearly outgrows the live set. *)
        if t.logged_lines > (4 * t.total) + 64 then compact_locked t
      end;
      inserted)

let lookup t shape =
  locked t (fun () ->
      t.lookups <- t.lookups + 1;
      let es = Option.value (Hashtbl.find_opt t.table shape) ~default:[] in
      if es <> [] then t.hits <- t.hits + 1;
      es)

let create ?(capacity = 256) ?(per_shape = 4) ?path () =
  if capacity < 1 then invalid_arg "Corpus.create: capacity must be >= 1";
  if per_shape < 1 then invalid_arg "Corpus.create: per_shape must be >= 1";
  let t =
    {
      mutex = Mutex.create ();
      table = Hashtbl.create 64;
      per_shape;
      capacity;
      total = 0;
      log = None;
      log_path = path;
      logged_lines = 0;
      adds = 0;
      evictions = 0;
      hits = 0;
      lookups = 0;
      replayed = 0;
    }
  in
  match path with
  | None -> t
  | Some p ->
      (* Replay the journal (later lines supersede nothing — [add]'s
         insert rule is order-independent up to ties, and duplicates are
         no-ops), then open it for appending. A torn final line from a
         crash mid-append parses as an error and is skipped. *)
      let replayed = ref 0 in
      (match open_in p with
      | exception Sys_error _ -> ()
      | ic ->
          (try
             while true do
               let line = input_line ic in
               match Json.of_string line with
               | Error _ -> ()
               | Ok j -> begin
                   match entry_of_json j with
                   | Error _ -> ()
                   | Ok e ->
                       incr replayed;
                       ignore (insert_locked t e)
                 end
             done
           with End_of_file -> ());
          close_in ic);
      t.log <-
        (try Some (open_out_gen [ Open_append; Open_creat ] 0o644 p) with Sys_error _ -> None);
      t.logged_lines <- !replayed;
      t.replayed <- !replayed;
      (* Startup compaction keeps a crash-looped daemon's journal bounded. *)
      locked t (fun () -> if t.logged_lines > (4 * t.total) + 64 then compact_locked t);
      t

let close t =
  locked t (fun () ->
      match t.log with
      | Some oc ->
          t.log <- None;
          (try close_out oc with Sys_error _ -> ())
      | None -> ())

type stats = {
  entries : int;
  shapes : int;
  adds : int;
  evictions : int;
  hits : int;
  lookups : int;
  replayed : int;
}

let stats t =
  locked t (fun () ->
      {
        entries = t.total;
        shapes = Hashtbl.length t.table;
        adds = t.adds;
        evictions = t.evictions;
        hits = t.hits;
        lookups = t.lookups;
        replayed = t.replayed;
      })

(* The corpus key of a problem source: parse and shape-hash. [None] when
   the source does not parse — an unparseable submit fails at compile
   anyway, and a corpus keyed by garbage would never be read back. *)
let shape_of_source src =
  match Netlist.Parser.parse_problem src with
  | ast -> Some (Netlist.Canon.problem_shape_hash ast)
  | exception Netlist.Parser.Error _ -> None
