(** The winner corpus: each finished job's winning design vector, final
    cost, and end-of-run Hustin move-class distribution, keyed by the
    problem's {e shape} hash ({!Netlist.Canon.problem_shape_hash} — the
    canonical form with spec target values dropped), so a re-submission of
    the same circuit with tweaked specs finds its predecessors and the
    pool can seed a fraction of its annealing restarts from prior winners.

    Bounded in memory (a few best-cost entries per shape, a total entry
    cap), journal-backed on disk ([state_dir/corpus.log], JSONL, one entry
    per line, replayed on restart and compacted via tmp+rename so a
    kill -9 never tears it), and replicated peer-to-peer by the fleet in
    the style of compile verdicts ([corpus_push]). Entries are plain data
    and cross the wire as the same JSON object the journal stores.

    Note the corpus is an {e optimization input}, not part of a job's
    identity: the pool snapshots the corpus at submit time into the job's
    recorded inputs (the journaled submit wrap), so a rerun replaying that
    snapshot is bit-identical even though the live corpus has moved on. *)

type entry = {
  en_shape : string;  (** {!Netlist.Canon.problem_shape_hash} of the source *)
  en_canon : string;  (** full {!Netlist.Canon.problem_hash} — provenance *)
  en_job : int;  (** job id on the daemon that ran it *)
  en_name : string;  (** the job's human label *)
  en_cost : float;  (** winner's best cost *)
  en_values : float array;  (** winning variable vector, NR-polished *)
  en_grid : int array;  (** matching grid indices *)
  en_probs : float array;
      (** end-of-run Hustin distribution; [[||]] when not recorded *)
}

(** [warm_label e] — the provenance string recorded in
    {!Core.Oblx.result.warm} when a restart seeded from [e] wins. *)
val warm_label : entry -> string

(** [warm_start_of_entry e] — the {!Core.Oblx.warm_start} seed this entry
    provides (empty [en_probs] maps to no prior). *)
val warm_start_of_entry : entry -> Core.Oblx.warm_start

val entry_to_json : entry -> Obs.Json.t
val entry_of_json : Obs.Json.t -> (entry, string) result

type t

(** [create ?capacity ?per_shape ?path ()] — an empty corpus holding at
    most [capacity] (default 256) entries, the best [per_shape] (default
    4) per shape. With [path], the JSONL journal there is replayed first
    (torn or malformed lines skipped) and then opened for appending;
    without it the corpus is memory-only. *)
val create : ?capacity:int -> ?per_shape:int -> ?path:string -> unit -> t

(** [add t e] — record a winner. Returns [true] when the entry carried new
    information (inserted and journaled) and [false] when it was already
    present (replication echo) or immediately evicted as worse than the
    [per_shape] incumbents; only [true] adds should be replicated onward,
    which is what keeps peer-to-peer pushes from looping. Thread-safe. *)
val add : t -> entry -> bool

(** [lookup t shape] — the entries for [shape], best cost first (possibly
    []). Thread-safe. *)
val lookup : t -> string -> entry list

(** Every live entry, shapes in lexicographic order, best cost first
    within a shape — the deterministic order tests and replication
    sweeps iterate in. *)
val to_list : t -> entry list

(** Close the journal channel (after workers have drained). *)
val close : t -> unit

type stats = {
  entries : int;
  shapes : int;
  adds : int;  (** inserts that carried new information *)
  evictions : int;
  hits : int;  (** lookups that found at least one entry *)
  lookups : int;
  replayed : int;  (** journal lines replayed at startup *)
}

val stats : t -> stats

(** [shape_of_source src] — parse and shape-hash a problem source; [None]
    when it does not parse (such a submit fails at compile anyway). *)
val shape_of_source : string -> string option
