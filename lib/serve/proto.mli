(** The oblxd wire protocol: JSONL over a Unix-domain socket or an
    authenticated TCP connection. Each request is one JSON object on one
    line; each response is one JSON object on one line, with ["ok"]
    telling success from failure. The payload encoding reuses the
    telemetry JSON of {!Obs.Json} — the same codec the trace files use, so
    one parser serves both.

    Requests (fields beyond ["op"] shown with their defaults):
    {v
    {"op":"submit","source":S,"name":N,"seed":1,"moves":null,"runs":1,
     "priority":0,"deadline_s":null,"trace":false,
     "shard_lo":null,"shard_hi":null}
    {"op":"sweep",...submit fields...,
     "variants":[{"name":V,"corner":C|null,"specs":{"ugf":[good,bad]}}]}
    {"op":"status","id":I}
    {"op":"result","id":I}
    {"op":"cancel","id":I}
    {"op":"stats"}
    {"op":"shutdown"}
    {"op":"resynthesize","id":I,"specs":{"ugf":[good]|[good,bad]},
     "runs":null,"moves":null,"deadline_s":null,"trace":false}
    {"op":"cache_lookup","hash":H}
    {"op":"cache_push","hash":H,"error":E|null}
    {"op":"corpus_lookup","shape":H}
    {"op":"corpus_push","entry":{...corpus entry...}}
    {"op":"ping"}
    v}
    See docs/SERVER.md for the full schema including responses. *)

(** One cell of a sweep grid: the same netlist re-judged under an
    optional device corner and/or overridden good/bad spec targets. *)
type variant = {
  vr_name : string;  (** label for the verdict-table row *)
  vr_corner : string option;
      (** device corner to compile under ([None] = nominal); folds into
          the compile-cache key, so distinct corners compile once each *)
  vr_specs : (string * float * float) list;
      (** per-spec (name, good, bad) target overrides — applied to the
          compiled problem without recompiling *)
}

type submit = {
  sb_name : string;  (** label for humans: file name or benchmark name *)
  sb_source : string;  (** the problem description text itself *)
  sb_seed : int;
  sb_moves : int option;  (** [None] = OBLX's per-problem default budget *)
  sb_runs : int;  (** independent restarts, run sequentially in the job *)
  sb_priority : int;  (** higher runs sooner; ties go to submission order *)
  sb_deadline_s : float option;
      (** wall-clock budget measured from submission (queue wait counts);
          on expiry the job aborts with [cut_reason = "deadline"] *)
  sb_trace : bool;  (** keep a bounded ring of stage events with the job *)
  sb_shard : (int * int) option;
      (** restart shard [[lo, hi)] of the [sb_runs] budget this daemon
          should execute ({!Oblx.best_of}'s [restarts]); [None] = all of
          it. A sharded submit is what a fleet coordinator scatters to a
          peer — it is never re-scattered. *)
  sb_sweep : variant list;
      (** non-empty marks a sweep job: one (jobs=1) synthesis per variant
          over a shared per-(canon, corner) compile, producing a verdict
          table. Sweep jobs are never scattered across a fleet — the
          shared compile is the point. *)
  sb_warm : Corpus.entry list;
      (** the job's warm-start snapshot: restart [k < length sb_warm]
          seeds from entry [k]; the rest stay cold. Normally filled by
          the pool at submit time from its corpus, and journaled with the
          submit so a replay re-runs from the same seeds — the snapshot,
          not the live corpus, is the job's recorded input. *)
  sb_spec_overrides : (string * float * float) list;
      (** (name, good, bad) re-targets applied to the compiled problem
          without recompiling — how [resynthesize] tweaks specs while
          keeping the parent's compile-cache hit. *)
}

(** A compile-cache verdict replicated between fleet peers: [cp_error =
    None] means the source hashing to [cp_hash] compiled successfully
    somewhere, [Some msg] that it failed with [msg]. Compiled problems
    hold closures and never cross the wire — only verdicts do. *)
type cache_push = { cp_hash : string; cp_error : string option }

(** The resynthesize fast path: rerun finished job [rz_id] with tweaked
    spec targets, warm-started from its recorded winner, on a reduced
    schedule. Answered with the new job's id. *)
type resynth = {
  rz_id : int;
  rz_specs : (string * float * float option) list;
      (** (name, good, bad) re-targets; [bad = None] keeps the parent's
          effective bad target for that spec *)
  rz_runs : int option;  (** [None]: half the parent's restarts (min 1) *)
  rz_moves : int option;  (** [None]: half the parent's explicit budget *)
  rz_deadline_s : float option;
  rz_trace : bool;
}

type request =
  | Submit of submit
  | Sweep of submit  (** [sb_sweep] non-empty; rejected when empty *)
  | Resynthesize of resynth
  | Status of int
  | Result of int
  | Cancel of int
  | Stats
  | Shutdown
  | Cache_lookup of string  (** canon hash — do you know this key? *)
  | Cache_push of cache_push  (** best-effort verdict replication *)
  | Corpus_lookup of string
      (** shape hash — answered with the peer's corpus entries for it *)
  | Corpus_push of Corpus.entry  (** best-effort winner replication *)
  | Ping  (** liveness probe; answered [{"ok":true}] *)

val request_to_json : request -> Obs.Json.t
val request_of_json : Obs.Json.t -> (request, string) result

(** [ok fields] is [{"ok":true, ...fields}]. *)
val ok : (string * Obs.Json.t) list -> Obs.Json.t

(** [err msg] is [{"ok":false,"error":msg}]. *)
val err : string -> Obs.Json.t

(** [response_error j] — [Some msg] when [j] is an error response (or is
    not a well-formed response at all), [None] when ["ok"] is true. *)
val response_error : Obs.Json.t -> string option

(** [busy_message cap] — the error a connection over the daemon's
    connection cap is answered with before its socket closes. *)
val busy_message : int -> string

(** {2 Line transport}

    Newline-delimited JSON over raw descriptors. Raw [Unix.read]/[write]
    rather than channels, so a socket-timeout expiry surfaces as
    [Unix.Unix_error (EAGAIN, _, _)] — letting callers tell an idle or
    wedged peer from a connection that never opened. *)

(** [write_line fd j] writes [j] and a newline, looping over partial
    writes. Unix errors (EPIPE, EAGAIN on send-timeout) propagate. *)
val write_line : Unix.file_descr -> Obs.Json.t -> unit

type line_reader

val line_reader : Unix.file_descr -> line_reader

(** [read_line r] — the next line (newline stripped), [None] at EOF. A
    final unterminated line is returned as is. Unix errors propagate. *)
val read_line : line_reader -> string option

(** {2 Authentication}

    A daemon configured with a shared secret requires [{"auth":TOKEN}] as
    the very first line of every connection. Success is silent — the
    client pipelines the auth line with its request and reads one response
    — while a wrong or missing token is answered with exactly one
    [ok:false] line ({!auth_failed_message}) before the server closes the
    connection. The auth deadline is the idle timeout: a connection that
    never authenticates is shed like one that went quiet. *)

val auth_to_json : string -> Obs.Json.t

(** [auth_of_json j] — the token of an [{"auth":TOKEN}] line, or [None]
    when [j] is not one. *)
val auth_of_json : Obs.Json.t -> string option

val auth_failed_message : string

(** Constant-time token comparison (for equal lengths — length is not
    treated as secret). *)
val token_equal : string -> string -> bool
