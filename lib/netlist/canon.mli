(** Canonical content hashing of circuits and whole problem descriptions —
    the compile-cache key of the synthesis service (lib/serve).

    Two descriptions get the same hash exactly when they elaborate to the
    same flat circuits and carry the same synthesis cards: element order
    inside a body, subcircuit-instantiation order, comments, whitespace and
    the [.title] card are all canonicalized away, while any semantic change
    — a node, a value expression, a model parameter, a variable range, a
    spec bound, a device-region override — produces a different hash. *)

(** [circuit_hash c] — hex digest of the elaborated circuit, invariant
    under element reordering (elements are compared by their canonical
    rendering, with node indices resolved back to names). *)
val circuit_hash : Circuit.t -> string

(** [circuit_fingerprint c] — the canonical rendering [circuit_hash]
    digests: one sorted line per element. Exposed for tests and debugging
    of unexpected cache misses. *)
val circuit_fingerprint : Circuit.t -> string

(** [problem_hash ast] — hex digest of the whole problem: the elaborated
    bias and jig circuits plus every synthesis card (models, process,
    params, vars, pz, specs, regions), each section canonically ordered.
    [.title] and line counts are cosmetic and excluded. A description that
    fails to elaborate still hashes (over its raw cards), so the cache can
    also remember failures. *)
val problem_hash : Ast.problem -> string

(** [problem_shape_hash ast] — like {!problem_hash} but under a "shape:v1"
    header and with the spec [good]/[bad] target values canonicalized away.
    Spec structure (name, kind, measured expression, corner qualifier),
    topology and every other card still contribute, so two descriptions
    collide exactly when they pose the same synthesis problem with tweaked
    spec targets — the key of the warm-start winner corpus: a prior winner
    is a useful seed precisely when the variable space and cost landscape
    shape are shared, even though the targets moved. *)
val problem_shape_hash : Ast.problem -> string
