(* Canonical content hashing: the compile-cache key of lib/serve.

   The canonical form is textual — one line per fact, sections in a fixed
   order, lines inside a section sorted — and the hash is the stdlib MD5
   digest of that text. MD5 is fine here: the key addresses a cache, it is
   not a security boundary. A "canon:v1" header versions the format so a
   future change to the rendering invalidates old keys instead of aliasing
   them. *)

let version = "canon:v1"
let sp = Printf.sprintf

(* Floats render with 17 significant digits: enough for exact binary
   round-trip, so two cards are equal exactly when their values are. *)
let num v = sp "%.17g" v
let expr e = Expr.to_string e

(* ------------------------------------------------------------------ *)
(* Elaborated circuits                                                 *)
(* ------------------------------------------------------------------ *)

(* Node indices depend on interning order, which depends on element order;
   resolving them back to names makes the rendering order-invariant. *)
let element_line (c : Circuit.t) (e : Circuit.element) =
  let n k = c.Circuit.node_names.(k) in
  match e with
  | Circuit.Resistor { name; n1; n2; value } -> sp "r %s %s %s %s" name (n n1) (n n2) (expr value)
  | Circuit.Capacitor { name; n1; n2; value } ->
      sp "c %s %s %s %s" name (n n1) (n n2) (expr value)
  | Circuit.Inductor { name; n1; n2; value } ->
      sp "l %s %s %s %s" name (n n1) (n n2) (expr value)
  | Circuit.Vsource { name; np; nn; dc; ac } ->
      sp "v %s %s %s %s ac=%s" name (n np) (n nn) (expr dc) (num ac)
  | Circuit.Isource { name; np; nn; dc; ac } ->
      sp "i %s %s %s %s ac=%s" name (n np) (n nn) (expr dc) (num ac)
  | Circuit.Vcvs { name; np; nn; ncp; ncn; gain } ->
      sp "e %s %s %s %s %s %s" name (n np) (n nn) (n ncp) (n ncn) (expr gain)
  | Circuit.Vccs { name; np; nn; ncp; ncn; gm } ->
      sp "g %s %s %s %s %s %s" name (n np) (n nn) (n ncp) (n ncn) (expr gm)
  | Circuit.Cccs { name; np; nn; vsrc; gain } ->
      sp "f %s %s %s %s %s" name (n np) (n nn) vsrc (expr gain)
  | Circuit.Ccvs { name; np; nn; vsrc; r } -> sp "h %s %s %s %s %s" name (n np) (n nn) vsrc (expr r)
  | Circuit.Mosfet { name; d; g; s; b; model; w; l; mult } ->
      sp "m %s %s %s %s %s %s w=%s l=%s mult=%s" name (n d) (n g) (n s) (n b) model (expr w)
        (expr l) (expr mult)
  | Circuit.Bjt { name; c = nc; b; e = ne; model; area } ->
      sp "q %s %s %s %s %s area=%s" name (n nc) (n b) (n ne) model (expr area)

let circuit_fingerprint (c : Circuit.t) =
  Array.to_list c.Circuit.elements
  |> List.map (element_line c)
  |> List.sort String.compare
  |> String.concat "\n"

let digest s = Digest.to_hex (Digest.string s)
let circuit_hash c = digest (version ^ "\n" ^ circuit_fingerprint c)

(* ------------------------------------------------------------------ *)
(* Whole problems                                                      *)
(* ------------------------------------------------------------------ *)

(* Raw (unelaborated) card rendering — the fallback when a body does not
   elaborate; also covers subcircuit instances before expansion. *)
let ast_element_line (e : Ast.element) =
  match e with
  | Ast.Resistor { name; n1; n2; value } -> sp "r %s %s %s %s" name n1 n2 (expr value)
  | Ast.Capacitor { name; n1; n2; value } -> sp "c %s %s %s %s" name n1 n2 (expr value)
  | Ast.Inductor { name; n1; n2; value } -> sp "l %s %s %s %s" name n1 n2 (expr value)
  | Ast.Vsource { name; np; nn; dc; ac } -> sp "v %s %s %s %s ac=%s" name np nn (expr dc) (num ac)
  | Ast.Isource { name; np; nn; dc; ac } -> sp "i %s %s %s %s ac=%s" name np nn (expr dc) (num ac)
  | Ast.Vcvs { name; np; nn; ncp; ncn; gain } ->
      sp "e %s %s %s %s %s %s" name np nn ncp ncn (expr gain)
  | Ast.Vccs { name; np; nn; ncp; ncn; gm } -> sp "g %s %s %s %s %s %s" name np nn ncp ncn (expr gm)
  | Ast.Cccs { name; np; nn; vsrc; gain } -> sp "f %s %s %s %s %s" name np nn vsrc (expr gain)
  | Ast.Ccvs { name; np; nn; vsrc; r } -> sp "h %s %s %s %s %s" name np nn vsrc (expr r)
  | Ast.Mosfet { name; d; g; s; b; model; w; l; mult } ->
      sp "m %s %s %s %s %s %s w=%s l=%s mult=%s" name d g s b model (expr w) (expr l) (expr mult)
  | Ast.Bjt { name; c; b; e = ne; model; area } ->
      sp "q %s %s %s %s %s area=%s" name c b ne model (expr area)
  | Ast.Subckt_inst { name; nodes; subckt; params } ->
      sp "x %s %s %s %s" name (String.concat "," nodes) subckt
        (String.concat ","
           (List.sort String.compare (List.map (fun (k, v) -> sp "%s=%s" k (expr v)) params)))

(* A body elaborates against the problem's subcircuit definitions; the flat
   circuit is what the cost-function generator actually sees, so hashing it
   makes instantiation order and private subckt-body ordering irrelevant.
   Bodies that fail to elaborate (the compile will fail too, and the cache
   remembers the failure) fall back to their raw cards. *)
let body_fingerprint ~subckts body =
  match Elab.flatten ~subckts body with
  | c -> circuit_fingerprint c
  | exception _ ->
      "unelab\n"
      ^ String.concat "\n" (List.sort String.compare (List.map ast_element_line body))

let sorted_section tag lines =
  sp "[%s]\n%s" tag (String.concat "\n" (List.sort String.compare lines))

(* Shape hashing renders the same sections under a "shape:v1" header but
   drops the spec good/bad values, so two descriptions that differ only in
   where the spec targets sit collide — the key of the warm-start corpus.
   Everything else (topology, cards, corners, spec structure) still
   contributes: a warm seed is only meaningful when the variable space and
   the cost function's shape are the same. *)
let shape_version = "shape:v1"

let render_problem ~header ~spec_values (p : Ast.problem) =
  let subckts = p.Ast.subckts in
  let buf = Buffer.create 1024 in
  let section tag lines = Buffer.add_string buf (sorted_section tag lines ^ "\n") in
  Buffer.add_string buf (header ^ "\n");
  Buffer.add_string buf (sp "[process]\n%s\n" (Option.value p.Ast.process ~default:"-"));
  section "models"
    (List.map
       (fun (m : Ast.model_decl) ->
         sp "%s %s %s %s" m.Ast.model_name m.device_kind m.level
           (String.concat ","
              (List.sort String.compare
                 (List.map (fun (k, v) -> sp "%s=%s" k (num v)) m.mparams))))
       p.Ast.models);
  section "params" (List.map (fun (k, e) -> sp "%s=%s" k (expr e)) p.Ast.params);
  section "vars"
    (List.map
       (fun (v : Ast.var_decl) ->
         sp "%s min=%s max=%s grid=%s steps=%s init=%s" v.Ast.var_name (num v.vmin) (num v.vmax)
           (match v.grid with Ast.Grid_log -> "log" | Ast.Grid_lin -> "lin")
           (match v.steps with Some s -> string_of_int s | None -> "cont")
           (match v.init with Some f -> num f | None -> "-"))
       p.Ast.vars);
  Buffer.add_string buf (sp "[bias]\n%s\n" (body_fingerprint ~subckts p.Ast.bias));
  List.iter
    (fun (j : Ast.jig) ->
      Buffer.add_string buf (sp "[jig %s]\n%s\n" j.Ast.jig_name (body_fingerprint ~subckts j.jig_body));
      (* New facts (tf kinds, .tran cards) render only when present, so
         descriptions that don't use them keep their pre-existing hash. *)
      Buffer.add_string buf
        (sorted_section
           (sp "pz %s" j.Ast.jig_name)
           (List.map
              (fun (z : Ast.pz) ->
                sp "%s v(%s%s) %s%s" z.Ast.tf_name z.out_pos
                  (match z.out_neg with Some onn -> "," ^ onn | None -> "")
                  z.src
                  (match z.pz_kind with
                  | Ast.Pz_ac -> ""
                  | Ast.Pz_noise -> " noise"
                  | Ast.Pz_psrr -> " psrr"))
              j.pzs)
         ^ "\n");
      match j.Ast.jig_tran with
      | None -> ()
      | Some t ->
          Buffer.add_string buf
            (sp "[tran %s]\ntstop=%s dt=%s dtloop=%s vstep=%s\n" j.Ast.jig_name (num t.tr_tstop)
               (num t.tr_dt)
               (match t.tr_dtloop with Some d -> num d | None -> "-")
               (num t.tr_vstep)))
    (List.sort (fun (a : Ast.jig) b -> String.compare a.Ast.jig_name b.Ast.jig_name) p.Ast.jigs);
  section "specs"
    (List.map
       (fun (s : Ast.spec) ->
         let kind =
           match s.Ast.kind with
           | Ast.Objective_max -> "max"
           | Ast.Objective_min -> "min"
           | Ast.Constraint_ge -> "ge"
           | Ast.Constraint_le -> "le"
         in
         let targets =
           if spec_values then sp " good=%s bad=%s" (num s.Ast.good) (num s.Ast.bad) else ""
         in
         sp "%s %s '%s'%s%s" s.Ast.spec_name kind (expr s.Ast.expr) targets
           (match s.Ast.spec_corner with Some c -> " corner=" ^ c | None -> ""))
       p.Ast.specs);
  section "regions"
    (List.map
       (fun (name, r) ->
         sp "%s %s" name
           (match r with
           | Ast.Region_sat -> "sat"
           | Ast.Region_linear -> "linear"
           | Ast.Region_off -> "off"
           | Ast.Region_any -> "any"))
       p.Ast.regions);
  Buffer.contents buf

let problem_hash p = digest (render_problem ~header:version ~spec_values:true p)
let problem_shape_hash p = digest (render_problem ~header:shape_version ~spec_values:false p)
