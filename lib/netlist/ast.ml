(* Card-level abstract syntax of the ASTRX input language. Everything is
   lower-cased by the parser; expressions keep their parsed form. *)

type element =
  | Resistor of { name : string; n1 : string; n2 : string; value : Expr.t }
  | Capacitor of { name : string; n1 : string; n2 : string; value : Expr.t }
  | Inductor of { name : string; n1 : string; n2 : string; value : Expr.t }
  | Vsource of { name : string; np : string; nn : string; dc : Expr.t; ac : float }
  | Isource of { name : string; np : string; nn : string; dc : Expr.t; ac : float }
  | Vcvs of { name : string; np : string; nn : string; ncp : string; ncn : string; gain : Expr.t }
  | Vccs of { name : string; np : string; nn : string; ncp : string; ncn : string; gm : Expr.t }
  | Cccs of { name : string; np : string; nn : string; vsrc : string; gain : Expr.t }
  | Ccvs of { name : string; np : string; nn : string; vsrc : string; r : Expr.t }
  | Mosfet of {
      name : string;
      d : string;
      g : string;
      s : string;
      b : string;
      model : string;
      w : Expr.t;
      l : Expr.t;
      mult : Expr.t;
    }
  | Bjt of {
      name : string;
      c : string;
      b : string;
      e : string;
      model : string;
      area : Expr.t;
    }
  | Subckt_inst of {
      name : string;
      nodes : string list;
      subckt : string;
      params : (string * Expr.t) list;
    }

type subckt = { sub_name : string; ports : string list; body : element list }

(** How a transfer-function declaration is meant to be read: a plain AC
    response ([.pz]), an output-referred noise jig ([.noise]), or a
    supply-rejection jig ([.psrr], whose source sits in a supply rail). *)
type pz_kind = Pz_ac | Pz_noise | Pz_psrr

type pz = {
  tf_name : string;
  out_pos : string;
  out_neg : string option;  (** differential output when present *)
  src : string;  (** name of the independent source driving the jig *)
  pz_kind : pz_kind;
}

(** A [.tran] card inside a jig: the fixed-step backward-Euler budget for
    that jig's large-signal (slew/settling) measurements. [tr_dtloop] is
    the coarser step the in-loop evaluator may use; verification always
    uses [tr_dt]. *)
type tran_card = {
  tr_tstop : float;
  tr_dt : float;
  tr_dtloop : float option;
  tr_vstep : float;  (** stimulus step amplitude, V *)
}

type jig = {
  jig_name : string;
  jig_body : element list;
  pzs : pz list;
  jig_tran : tran_card option;
}

type grid_kind = Grid_log | Grid_lin

type var_decl = {
  var_name : string;
  vmin : float;
  vmax : float;
  grid : grid_kind;
  steps : int option;  (** None = continuous variable *)
  init : float option;
}

type goal_kind = Objective_max | Objective_min | Constraint_ge | Constraint_le

type spec = {
  spec_name : string;
  kind : goal_kind;
  expr : Expr.t;
  good : float;
  bad : float;
  spec_corner : string option;
      (** evaluate this row with every device skewed to the named process
          corner ({!Devices.Registry.standard_corners}) — a robustness
          penalty term, not a nominal measurement *)
}

type region_req = Region_sat | Region_linear | Region_off | Region_any

type model_decl = {
  model_name : string;
  device_kind : string;  (** nmos | pmos | npn | pnp *)
  level : string;  (** "1" | "3" | "bsim" | "gp" *)
  mparams : (string * float) list;
}

type line_counts = { netlist_lines : int; synth_lines : int }

type problem = {
  title : string;
  subckts : subckt list;
  models : model_decl list;
  process : string option;  (** named built-in process providing models *)
  params : (string * Expr.t) list;  (** .param named constants *)
  vars : var_decl list;
  jigs : jig list;
  bias : element list;
  specs : spec list;
  regions : (string * region_req) list;  (** .devregion overrides *)
  counts : line_counts;
}

let element_name = function
  | Resistor { name; _ }
  | Capacitor { name; _ }
  | Inductor { name; _ }
  | Vsource { name; _ }
  | Isource { name; _ }
  | Vcvs { name; _ }
  | Vccs { name; _ }
  | Cccs { name; _ }
  | Ccvs { name; _ }
  | Mosfet { name; _ }
  | Bjt { name; _ }
  | Subckt_inst { name; _ } ->
      name
