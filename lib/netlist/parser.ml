exception Error of int * string

let fail ln msg = raise (Error (ln, msg))

(* --- Logical lines: strip comments, join '+' continuations. --- *)

type lline = { ln : int; text : string }

let logical_lines src =
  let raw = String.split_on_char '\n' src in
  let cleaned =
    List.mapi
      (fun k line ->
        let line =
          match String.index_opt line ';' with
          | Some pos -> String.sub line 0 pos
          | None -> line
        in
        (k + 1, String.trim line))
      raw
  in
  let relevant (_, s) = String.length s > 0 && s.[0] <> '*' in
  let rec join acc = function
    | [] -> List.rev acc
    | (ln, s) :: rest when relevant (ln, s) ->
        if String.length s > 0 && s.[0] = '+' then
          match acc with
          | { ln = ln0; text } :: acc' ->
              join ({ ln = ln0; text = text ^ " " ^ String.sub s 1 (String.length s - 1) } :: acc')
                rest
          | [] -> fail ln "continuation '+' with no previous card"
        else join ({ ln; text = s } :: acc) rest
    | _ :: rest -> join acc rest
  in
  join [] cleaned

(* --- Card tokenizer: whitespace-separated fields; '...' quotes a single
   token (an expression, possibly containing spaces); name=value is kept as
   one token and split later. --- *)

let tokenize ln s =
  let n = String.length s in
  let toks = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then begin
      flush ();
      incr i
    end
    else if c = '\'' then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] <> '\'' do
        incr j
      done;
      if !j >= n then fail ln "unterminated quoted expression";
      Buffer.add_string buf (String.sub s (!i + 1) (!j - !i - 1));
      i := !j + 1
    end
    else begin
      Buffer.add_char buf (Char.lowercase_ascii c);
      incr i
    end
  done;
  flush ();
  List.rev !toks

let split_eq tok =
  match String.index_opt tok '=' with
  | Some pos -> Some (String.sub tok 0 pos, String.sub tok (pos + 1) (String.length tok - pos - 1))
  | None -> None

let parse_expr_tok ln s =
  try Expr.parse s with Expr.Parse_error e -> fail ln ("bad expression: " ^ e)

let parse_num_tok ln s =
  match Units.parse s with Ok v -> v | Error e -> fail ln ("bad number: " ^ e)

(* --- Element cards --- *)

let parse_element ln toks =
  match toks with
  | [] -> fail ln "empty element card"
  | name :: rest -> begin
      let kind = name.[0] in
      let expr = parse_expr_tok ln in
      let kv_params rest =
        List.filter_map
          (fun tok ->
            match split_eq tok with Some (k, v) -> Some (k, expr v) | None -> None)
          rest
      in
      let kv_find rest key default =
        match List.assoc_opt key (kv_params rest) with Some e -> e | None -> default
      in
      match kind with
      | 'r' -> begin
          match rest with
          | [ n1; n2; v ] -> Ast.Resistor { name; n1; n2; value = expr v }
          | _ -> fail ln "resistor: expected 'rX n1 n2 value'"
        end
      | 'c' -> begin
          match rest with
          | [ n1; n2; v ] -> Ast.Capacitor { name; n1; n2; value = expr v }
          | _ -> fail ln "capacitor: expected 'cX n1 n2 value'"
        end
      | 'l' -> begin
          match rest with
          | [ n1; n2; v ] -> Ast.Inductor { name; n1; n2; value = expr v }
          | _ -> fail ln "inductor: expected 'lX n1 n2 value'"
        end
      | 'v' | 'i' -> begin
          (* vX n+ n- dc [ac mag] *)
          match rest with
          | np :: nn :: more ->
              let dc, ac =
                match more with
                | [] -> (Expr.const 0.0, 0.0)
                | [ d ] -> (expr d, 0.0)
                | [ d; "ac"; m ] -> (expr d, parse_num_tok ln m)
                | [ "ac"; m ] -> (Expr.const 0.0, parse_num_tok ln m)
                | _ -> fail ln "source: expected 'vX n+ n- dc [ac mag]'"
              in
              if kind = 'v' then Ast.Vsource { name; np; nn; dc; ac }
              else Ast.Isource { name; np; nn; dc; ac }
          | _ -> fail ln "source: missing nodes"
        end
      | 'e' -> begin
          match rest with
          | [ np; nn; ncp; ncn; g ] -> Ast.Vcvs { name; np; nn; ncp; ncn; gain = expr g }
          | _ -> fail ln "vcvs: expected 'eX n+ n- nc+ nc- gain'"
        end
      | 'g' -> begin
          match rest with
          | [ np; nn; ncp; ncn; g ] -> Ast.Vccs { name; np; nn; ncp; ncn; gm = expr g }
          | _ -> fail ln "vccs: expected 'gX n+ n- nc+ nc- gm'"
        end
      | 'f' -> begin
          match rest with
          | [ np; nn; vsrc; g ] -> Ast.Cccs { name; np; nn; vsrc; gain = expr g }
          | _ -> fail ln "cccs: expected 'fX n+ n- vsrc gain'"
        end
      | 'h' -> begin
          match rest with
          | [ np; nn; vsrc; r ] -> Ast.Ccvs { name; np; nn; vsrc; r = expr r }
          | _ -> fail ln "ccvs: expected 'hX n+ n- vsrc r'"
        end
      | 'm' -> begin
          match rest with
          | d :: g :: s :: b :: model :: params when split_eq model = None ->
              let kv = kv_params params in
              let req key =
                match List.assoc_opt key kv with
                | Some e -> e
                | None -> fail ln ("mosfet: missing " ^ key ^ "=")
              in
              let w = req "w" and l = req "l" in
              let mult = kv_find params "m" (Expr.const 1.0) in
              Ast.Mosfet { name; d; g; s; b; model; w; l; mult }
          | _ -> fail ln "mosfet: expected 'mX d g s b model w=.. l=..'"
        end
      | 'q' -> begin
          match rest with
          | c :: b :: e :: model :: more when split_eq model = None ->
              let area =
                match more with
                | [] -> Expr.const 1.0
                | [ a ] -> ( match split_eq a with Some (_, v) -> expr v | None -> expr a)
                | _ -> fail ln "bjt: expected 'qX c b e model [area]'"
              in
              Ast.Bjt { name; c; b; e; model; area }
          | _ -> fail ln "bjt: expected 'qX c b e model [area]'"
        end
      | 'x' -> begin
          (* xname n1 ... nk subckt [p=v ...] *)
          let plain, params = List.partition (fun tok -> split_eq tok = None) rest in
          match List.rev plain with
          | subckt :: rev_nodes when rev_nodes <> [] ->
              Ast.Subckt_inst
                { name; nodes = List.rev rev_nodes; subckt; params = kv_params params }
          | _ -> fail ln "subckt instance: expected 'xX n1 .. nk subname'"
        end
      | 'a' .. 'z' | '0' .. '9' | '_' ->
          fail ln (Printf.sprintf "unknown element type %C" kind)
      | _ -> fail ln (Printf.sprintf "unknown element type %C" kind)
    end

(* --- v(out) / v(out+,out-) in .pz cards --- *)

let parse_vout ln tok =
  let n = String.length tok in
  if n >= 3 && String.sub tok 0 2 = "v(" && tok.[n - 1] = ')' then begin
    let inner = String.sub tok 2 (n - 3) in
    match String.split_on_char ',' inner with
    | [ p ] -> (String.trim p, None)
    | [ p; m ] -> (String.trim p, Some (String.trim m))
    | _ -> fail ln "expected v(node) or v(node+,node-)"
  end
  else fail ln (Printf.sprintf "expected v(...) output, got %S" tok)

(* --- Problem-level parsing --- *)

type state = {
  mutable title : string;
  mutable subckts : Ast.subckt list;
  mutable models : Ast.model_decl list;
  mutable process : string option;
  mutable params : (string * Expr.t) list;
  mutable vars : Ast.var_decl list;
  mutable jigs : Ast.jig list;
  mutable bias : Ast.element list;
  mutable specs : Ast.spec list;
  mutable regions : (string * Ast.region_req) list;
  mutable netlist_lines : int;
  mutable synth_lines : int;
}

type mode =
  | Top
  | In_subckt of string * string list * Ast.element list ref
  | In_jig of string * Ast.element list ref * Ast.pz list ref * Ast.tran_card option ref
  | In_bias of Ast.element list ref

let parse_var ln toks =
  match toks with
  | name :: opts ->
      let get key =
        List.find_map
          (fun tok ->
            match split_eq tok with Some (k, v) when k = key -> Some v | Some _ | None -> None)
          opts
      in
      let req key =
        match get key with Some v -> parse_num_tok ln v | None -> fail ln (".var: missing " ^ key)
      in
      let grid =
        match get "grid" with
        | Some "log" | None -> Ast.Grid_log
        | Some "lin" -> Ast.Grid_lin
        | Some other -> fail ln (".var: bad grid " ^ other)
      in
      let steps = Option.map (fun v -> int_of_float (parse_num_tok ln v)) (get "steps") in
      let init = Option.map (parse_num_tok ln) (get "init") in
      {
        Ast.var_name = name;
        vmin = req "min";
        vmax = req "max";
        grid;
        steps;
        init;
      }
  | [] -> fail ln ".var: missing name"

let parse_spec ln kind_default toks =
  match toks with
  | name :: e :: opts ->
      let get key =
        List.find_map
          (fun tok ->
            match split_eq tok with Some (k, v) when k = key -> Some v | Some _ | None -> None)
          opts
      in
      let good =
        match get "good" with Some v -> parse_num_tok ln v | None -> fail ln "missing good="
      in
      let bad =
        match get "bad" with Some v -> parse_num_tok ln v | None -> fail ln "missing bad="
      in
      let kind =
        match kind_default with
        | `Obj -> if good > bad then Ast.Objective_max else Ast.Objective_min
        | `Spec -> if good > bad then Ast.Constraint_ge else Ast.Constraint_le
      in
      { Ast.spec_name = name; kind; expr = parse_expr_tok ln e; good; bad; spec_corner = get "corner" }
  | _ -> fail ln ".obj/.spec: expected name 'expr' good=.. bad=.. [corner=..]"

(* .tran tstop=.. dt=.. [dtloop=..] [vstep=..] *)
let parse_tran ln toks =
  let get key =
    List.find_map
      (fun tok ->
        match split_eq tok with Some (k, v) when k = key -> Some v | Some _ | None -> None)
      toks
  in
  let req key =
    match get key with Some v -> parse_num_tok ln v | None -> fail ln (".tran: missing " ^ key ^ "=")
  in
  let tstop = req "tstop" and dt = req "dt" in
  if not (tstop > 0.0 && dt > 0.0 && dt <= tstop) then
    fail ln ".tran: need 0 < dt <= tstop";
  let dtloop = Option.map (parse_num_tok ln) (get "dtloop") in
  (match dtloop with
  | Some d when not (d > 0.0 && d <= tstop) -> fail ln ".tran: need 0 < dtloop <= tstop"
  | Some _ | None -> ());
  let vstep = match get "vstep" with Some v -> parse_num_tok ln v | None -> 0.1 in
  if vstep = 0.0 then fail ln ".tran: vstep must be nonzero";
  { Ast.tr_tstop = tstop; tr_dt = dt; tr_dtloop = dtloop; tr_vstep = vstep }

let parse_model ln toks =
  match toks with
  | name :: kind :: opts ->
      let level = ref "1" in
      let mparams = ref [] in
      List.iter
        (fun tok ->
          match split_eq tok with
          | Some ("level", v) -> level := v
          | Some (k, v) -> mparams := (k, parse_num_tok ln v) :: !mparams
          | None -> fail ln (".model: bad token " ^ tok))
        opts;
      { Ast.model_name = name; device_kind = kind; level = !level; mparams = List.rev !mparams }
  | _ -> fail ln ".model: expected name kind [level=..] [k=v ...]"

let parse_problem src =
  let st =
    {
      title = "";
      subckts = [];
      models = [];
      process = None;
      params = [];
      vars = [];
      jigs = [];
      bias = [];
      specs = [];
      regions = [];
      netlist_lines = 0;
      synth_lines = 0;
    }
  in
  let mode = ref Top in
  let handle { ln; text } =
    let toks = tokenize ln text in
    match toks with
    | [] -> ()
    | card :: rest -> begin
        match (!mode, card) with
        | Top, ".title" ->
            st.title <- String.concat " " rest;
            st.netlist_lines <- st.netlist_lines + 1
        | Top, ".subckt" -> begin
            match rest with
            | name :: ports when ports <> [] ->
                mode := In_subckt (name, ports, ref []);
                st.netlist_lines <- st.netlist_lines + 1
            | _ -> fail ln ".subckt: expected name and ports"
          end
        | In_subckt (name, ports, body), ".ends" ->
            st.subckts <- { Ast.sub_name = name; ports; body = List.rev !body } :: st.subckts;
            mode := Top;
            st.netlist_lines <- st.netlist_lines + 1
        | In_subckt (_, _, body), _ when card.[0] <> '.' ->
            body := parse_element ln toks :: !body;
            st.netlist_lines <- st.netlist_lines + 1
        | In_subckt _, _ -> fail ln ("unexpected card in .subckt: " ^ card)
        | Top, ".jig" -> begin
            match rest with
            | [ name ] ->
                mode := In_jig (name, ref [], ref [], ref None);
                st.netlist_lines <- st.netlist_lines + 1
            | _ -> fail ln ".jig: expected a single name"
          end
        | In_jig (name, body, pzs, tran), ".endjig" ->
            st.jigs <-
              {
                Ast.jig_name = name;
                jig_body = List.rev !body;
                pzs = List.rev !pzs;
                jig_tran = !tran;
              }
              :: st.jigs;
            mode := Top;
            st.netlist_lines <- st.netlist_lines + 1
        | In_jig (_, _, pzs, _), (".pz" | ".noise" | ".psrr") -> begin
            match rest with
            | [ tf_name; vout; src ] ->
                let out_pos, out_neg = parse_vout ln vout in
                let pz_kind =
                  match card with
                  | ".noise" -> Ast.Pz_noise
                  | ".psrr" -> Ast.Pz_psrr
                  | _ -> Ast.Pz_ac
                in
                pzs := { Ast.tf_name; out_pos; out_neg; src; pz_kind } :: !pzs;
                st.netlist_lines <- st.netlist_lines + 1
            | _ -> fail ln (card ^ ": expected 'tfname v(out) srcname'")
          end
        | In_jig (_, _, _, tran), ".tran" -> begin
            match !tran with
            | Some _ -> fail ln ".tran: at most one per jig"
            | None ->
                tran := Some (parse_tran ln rest);
                st.netlist_lines <- st.netlist_lines + 1
          end
        | In_jig (_, body, _, _), _ when card.[0] <> '.' ->
            body := parse_element ln toks :: !body;
            st.netlist_lines <- st.netlist_lines + 1
        | In_jig _, _ -> fail ln ("unexpected card in .jig: " ^ card)
        | Top, ".bias" ->
            mode := In_bias (ref []);
            st.netlist_lines <- st.netlist_lines + 1
        | In_bias body, ".endbias" ->
            st.bias <- List.rev !body;
            mode := Top;
            st.netlist_lines <- st.netlist_lines + 1
        | In_bias body, _ when card.[0] <> '.' ->
            body := parse_element ln toks :: !body;
            st.netlist_lines <- st.netlist_lines + 1
        | In_bias _, _ -> fail ln ("unexpected card in .bias: " ^ card)
        | Top, ".model" ->
            st.models <- parse_model ln rest :: st.models;
            st.netlist_lines <- st.netlist_lines + 1
        | Top, ".process" -> begin
            match rest with
            | [ name ] ->
                st.process <- Some name;
                st.netlist_lines <- st.netlist_lines + 1
            | _ -> fail ln ".process: expected a single name"
          end
        | Top, ".param" -> begin
            match rest with
            | [ tok ] -> begin
                match split_eq tok with
                | Some (k, v) ->
                    st.params <- (k, parse_expr_tok ln v) :: st.params;
                    st.synth_lines <- st.synth_lines + 1
                | None -> fail ln ".param: expected name=expr"
              end
            | _ -> fail ln ".param: expected name=expr"
          end
        | Top, ".var" ->
            st.vars <- parse_var ln rest :: st.vars;
            st.synth_lines <- st.synth_lines + 1
        | Top, ".obj" ->
            st.specs <- parse_spec ln `Obj rest :: st.specs;
            st.synth_lines <- st.synth_lines + 1
        | Top, ".spec" ->
            st.specs <- parse_spec ln `Spec rest :: st.specs;
            st.synth_lines <- st.synth_lines + 1
        | Top, ".devregion" -> begin
            match rest with
            | [ elem; req ] ->
                let r =
                  match req with
                  | "sat" -> Ast.Region_sat
                  | "linear" -> Ast.Region_linear
                  | "off" -> Ast.Region_off
                  | "any" -> Ast.Region_any
                  | _ -> fail ln (".devregion: bad region " ^ req)
                in
                st.regions <- (elem, r) :: st.regions;
                st.synth_lines <- st.synth_lines + 1
            | _ -> fail ln ".devregion: expected 'elem region'"
          end
        | Top, ".end" -> ()
        | Top, _ when card.[0] = '.' -> fail ln ("unknown card " ^ card)
        | Top, _ -> fail ln ("element card outside .subckt/.jig/.bias: " ^ card)
      end
  in
  List.iter handle (logical_lines src);
  (match !mode with
  | Top -> ()
  | In_subckt (name, _, _) -> fail 0 ("unterminated .subckt " ^ name)
  | In_jig (name, _, _, _) -> fail 0 ("unterminated .jig " ^ name)
  | In_bias _ -> fail 0 "unterminated .bias");
  {
    Ast.title = st.title;
    subckts = List.rev st.subckts;
    models = List.rev st.models;
    process = st.process;
    params = List.rev st.params;
    vars = List.rev st.vars;
    jigs = List.rev st.jigs;
    bias = st.bias;
    specs = List.rev st.specs;
    regions = List.rev st.regions;
    counts = { Ast.netlist_lines = st.netlist_lines; synth_lines = st.synth_lines };
  }

let parse_elements src =
  List.map (fun { ln; text } -> parse_element ln (tokenize ln text)) (logical_lines src)
