(* Sherman-Morrison-Woodbury rank-k update of a retained LU factorization.

   For A factored once and a low-rank perturbation A' = A + U V^T,
     A'^{-1} b = A^{-1} b - A^{-1} U (I + V^T A^{-1} U)^{-1} V^T A^{-1} b
   so solving against A' costs two triangular solves against the retained
   factorization plus an r x r "capacitance" solve, instead of a fresh O(n^3)
   factorization. The update can be numerically treacherous when the
   capacitance matrix I + V^T A^{-1} U is ill-conditioned or the update
   directions blow up through A^{-1}; [update] detects both and returns
   [Error] so the caller can fall back to a fresh factorization. *)

type v_kind =
  | Dense of Mat.t (* n x r *)
  | Cols of int array (* V = [e_{c_0} .. e_{c_{r-1}}], unit columns *)

type t = {
  base : Lu.t;
  ainv_u : Mat.t; (* n x r: A^{-1} U, precomputed at update time *)
  ainvT_v : Mat.t; (* n x r: A^{-T} V, for transposed solves *)
  v : v_kind;
  cap_lu : Lu.t; (* factorization of I + V^T A^{-1} U *)
  rank : int;
}

let rank t = t.rank
let dim t = Lu.dim t.base

(* Shared constructor once U (dense) and V (dense or unit-column) are known.
   Guards, in order: non-finite or oversized A^{-1}U / A^{-T}V entries
   (growth through a near-singular base), a singular capacitance matrix, and
   an ill-conditioned capacitance matrix by reciprocal-condition estimate. *)
let make ~rcond_min ~growth_max base ~u ~v =
  let n = Lu.dim base in
  let r = Mat.cols u in
  if Mat.rows u <> n then invalid_arg "Lowrank: U row dim mismatch";
  (match v with
  | Dense vm ->
      if Mat.rows vm <> n || Mat.cols vm <> r then
        invalid_arg "Lowrank: V dim mismatch"
  | Cols cols ->
      if Array.length cols <> r then invalid_arg "Lowrank: V column count mismatch";
      Array.iter
        (fun c -> if c < 0 || c >= n then invalid_arg "Lowrank: V column index out of range")
        cols);
  let col = Vec.create n in
  let solve_cols dst transposed src_col growth =
    (* dst.(.,j) <- A^{-1} (or A^{-T}) src_col j; tracks the largest entry. *)
    let ok = ref true in
    for j = 0 to r - 1 do
      if !ok then begin
        src_col j col;
        (try
           if transposed then Lu.solve_transposed_in_place base col
           else Lu.solve_in_place base col
         with Lu.Singular _ -> ok := false);
        if !ok then
          for i = 0 to n - 1 do
            let x = col.(i) in
            if not (Float.is_finite x) then ok := false
            else begin
              let a = Float.abs x in
              if a > !growth then growth := a
            end;
            Mat.set dst i j x
          done
      end
    done;
    !ok
  in
  let growth = ref 0.0 in
  let ainv_u = Mat.create n r in
  let u_col j dst =
    for i = 0 to n - 1 do
      dst.(i) <- Mat.get u i j
    done
  in
  let v_col j dst =
    match v with
    | Dense vm ->
        for i = 0 to n - 1 do
          dst.(i) <- Mat.get vm i j
        done
    | Cols cols ->
        Vec.fill dst 0.0;
        dst.(cols.(j)) <- 1.0
  in
  if not (solve_cols ainv_u false u_col growth) then
    Error "lowrank: non-finite solve against base factorization"
  else begin
    let ainvT_v = Mat.create n r in
    if not (solve_cols ainvT_v true v_col growth) then
      Error "lowrank: non-finite transposed solve against base factorization"
    else if !growth > growth_max then Error "lowrank: update growth exceeds bound"
    else begin
      (* cap = I + V^T A^{-1} U  (r x r). *)
      let cap = Mat.create r r in
      for i = 0 to r - 1 do
        for j = 0 to r - 1 do
          let s =
            match v with
            | Cols cols -> Mat.get ainv_u cols.(i) j
            | Dense vm ->
                let acc = ref 0.0 in
                for k = 0 to n - 1 do
                  acc := !acc +. (Mat.get vm k i *. Mat.get ainv_u k j)
                done;
                !acc
          in
          Mat.set cap i j (if i = j then 1.0 +. s else s)
        done
      done;
      match Lu.factor cap with
      | exception Lu.Singular _ -> Error "lowrank: singular capacitance matrix"
      | cap_lu ->
          (* Condition the capacitance matrix against its *natural* scale:
             cap = I + V^T A^{-1} U has norm >= O(1) unless the update is
             cancelling, so a plain relative estimate (which reports 1.0 for
             any 1x1 system) would miss a cap that collapsed from 1 to 1e-14.
             Estimate ||cap^{-1}|| with the alternating probe vector and
             divide max(1, ||cap||) by it. *)
          let probe = Array.init r (fun i -> if i land 1 = 0 then 1.0 else -1.0) in
          (try Lu.solve_in_place cap_lu probe
           with Lu.Singular _ -> Vec.fill probe Float.infinity);
          let ninv = Vec.norm_inf probe in
          let scale = Float.max 1.0 (Mat.norm_inf cap) in
          let rcond =
            if ninv = 0.0 || not (Float.is_finite ninv) then 0.0
            else 1.0 /. (scale *. ninv)
          in
          if r > 0 && rcond < rcond_min then
            Error "lowrank: ill-conditioned capacitance matrix"
          else Ok { base; ainv_u; ainvT_v; v; cap_lu; rank = r }
    end
  end

let update ?(rcond_min = 1e-10) ?(growth_max = 1e12) base ~u ~v =
  make ~rcond_min ~growth_max base ~u ~v:(Dense v)

let update_cols ?(rcond_min = 1e-10) ?(growth_max = 1e12) base ~cols ~delta =
  let n = Lu.dim base in
  if Mat.rows delta <> n || Mat.cols delta <> n then
    invalid_arg "Lowrank.update_cols: delta dim mismatch";
  let r = Array.length cols in
  let u = Mat.create n r in
  for j = 0 to r - 1 do
    for i = 0 to n - 1 do
      Mat.set u i j (Mat.get delta i cols.(j))
    done
  done;
  make ~rcond_min ~growth_max base ~u ~v:(Cols cols)

let solve_in_place t b =
  let n = dim t in
  if Array.length b <> n then invalid_arg "Lowrank.solve: dim mismatch";
  Lu.solve_in_place t.base b;
  let r = t.rank in
  if r > 0 then begin
    let w = Vec.create r in
    (match t.v with
    | Cols cols ->
        for j = 0 to r - 1 do
          w.(j) <- b.(cols.(j))
        done
    | Dense vm ->
        for j = 0 to r - 1 do
          let acc = ref 0.0 in
          for i = 0 to n - 1 do
            acc := !acc +. (Mat.get vm i j *. b.(i))
          done;
          w.(j) <- !acc
        done);
    Lu.solve_in_place t.cap_lu w;
    for i = 0 to n - 1 do
      let acc = ref 0.0 in
      for j = 0 to r - 1 do
        acc := !acc +. (Mat.get t.ainv_u i j *. w.(j))
      done;
      b.(i) <- b.(i) -. !acc
    done
  end

let solve t b =
  let x = Array.copy b in
  solve_in_place t x;
  x

(* (A + U V^T)^T = A^T + V U^T, whose SMW capacitance matrix
   I + U^T A^{-T} V = (I + V^T A^{-1} U)^T is the transpose of the one we
   already factored, so the transposed solve reuses [cap_lu]. *)
let solve_transposed_in_place t b =
  let n = dim t in
  if Array.length b <> n then invalid_arg "Lowrank.solve_transposed: dim mismatch";
  let r = t.rank in
  if r = 0 then Lu.solve_transposed_in_place t.base b
  else begin
    (* U^T A^{-T} b = (A^{-1} U)^T b, so the capacitance right-hand side
       comes from the original b, before the base solve consumes it. *)
    let w = Vec.create r in
    for j = 0 to r - 1 do
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. (Mat.get t.ainv_u i j *. b.(i))
      done;
      w.(j) <- !acc
    done;
    Lu.solve_transposed_in_place t.base b;
    Lu.solve_transposed_in_place t.cap_lu w;
    for i = 0 to n - 1 do
      let acc = ref 0.0 in
      for j = 0 to r - 1 do
        acc := !acc +. (Mat.get t.ainvT_v i j *. w.(j))
      done;
      b.(i) <- b.(i) -. !acc
    done
  end

let solve_transposed t b =
  let x = Array.copy b in
  solve_transposed_in_place t x;
  x
