type t = { lu : Mat.t; piv : int array; sign : float }

exception Singular of int

(* Doolittle factorization with partial pivoting. The pivot threshold is
   relative to the largest entry of the column to tolerate badly scaled MNA
   matrices (conductances span ~1e-12 .. 1e3 siemens). *)
let factor a =
  let n = Mat.rows a in
  if n <> Mat.cols a then invalid_arg "Lu.factor: not square";
  let lu = Mat.copy a in
  let piv = Array.init n (fun k -> k) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    let p = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Mat.get lu i k) > Float.abs (Mat.get lu !p k) then p := i
    done;
    if !p <> k then begin
      for j = 0 to n - 1 do
        let tmp = Mat.get lu k j in
        Mat.set lu k j (Mat.get lu !p j);
        Mat.set lu !p j tmp
      done;
      let tp = piv.(k) in
      piv.(k) <- piv.(!p);
      piv.(!p) <- tp;
      sign := -. !sign
    end;
    let pivot = Mat.get lu k k in
    if Float.abs pivot < 1e-300 || not (Float.is_finite pivot) then raise (Singular k);
    for i = k + 1 to n - 1 do
      let f = Mat.get lu i k /. pivot in
      Mat.set lu i k f;
      if f <> 0.0 then
        for j = k + 1 to n - 1 do
          Mat.add_to lu i j (-.f *. Mat.get lu k j)
        done
    done
  done;
  { lu; piv; sign = !sign }

let dim t = Mat.rows t.lu

let solve_in_place t b =
  let n = dim t in
  if Array.length b <> n then invalid_arg "Lu.solve: dim mismatch";
  (* Apply the permutation, then forward- and back-substitute. *)
  let y = Array.init n (fun i -> b.(t.piv.(i))) in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      y.(i) <- y.(i) -. (Mat.get t.lu i j *. y.(j))
    done
  done;
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      y.(i) <- y.(i) -. (Mat.get t.lu i j *. y.(j))
    done;
    y.(i) <- y.(i) /. Mat.get t.lu i i
  done;
  Array.blit y 0 b 0 n

let solve t b =
  let x = Array.copy b in
  solve_in_place t x;
  x

let solve_transposed_in_place t b =
  let n = dim t in
  if Array.length b <> n then invalid_arg "Lu.solve_transposed: dim mismatch";
  (* A^T = U^T L^T P, so solve U^T z = b, L^T w = z, then x = P^T w. *)
  let z = Array.copy b in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      z.(i) <- z.(i) -. (Mat.get t.lu j i *. z.(j))
    done;
    z.(i) <- z.(i) /. Mat.get t.lu i i
  done;
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      z.(i) <- z.(i) -. (Mat.get t.lu j i *. z.(j))
    done
  done;
  for i = 0 to n - 1 do
    b.(t.piv.(i)) <- z.(i)
  done

let solve_transposed t b =
  let x = Array.copy b in
  solve_transposed_in_place t x;
  x

let det t =
  let n = dim t in
  let d = ref t.sign in
  for k = 0 to n - 1 do
    d := !d *. Mat.get t.lu k k
  done;
  !d

let rcond_estimate t a =
  let n = dim t in
  if n = 0 then 1.0
  else begin
    let e = Array.init n (fun i -> if i land 1 = 0 then 1.0 else -1.0) in
    let x = solve t e in
    let nx = Vec.norm_inf x in
    let na = Mat.norm_inf a in
    (* A vanishing solve norm or matrix norm is a singular-direction hit,
       not a well-conditioned system: report 0.0, the worst conditioning,
       so callers treat it as trouble. *)
    if nx = 0.0 || na = 0.0 then 0.0 else 1.0 /. (na *. nx)
  end
