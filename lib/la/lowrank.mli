(** Sherman-Morrison-Woodbury rank-k updates of a retained {!Lu}
    factorization.

    For A factored once and a perturbation A' = A + U V^T of rank r << n,
    [update] prepares a solver for A' that costs two triangular solves
    against the retained factorization plus an r x r capacitance solve —
    no fresh O(n^3) factorization. This is the screening engine behind
    incremental AWE: an annealing move perturbs a handful of element
    stamps, which touch a handful of MNA columns.

    The update is refused ([Error]) when it would be numerically unsafe:
    the capacitance matrix I + V^T A^{-1} U is singular or has a
    reciprocal-condition estimate below [rcond_min] (default 1e-10), or
    the update directions grow beyond [growth_max] (default 1e12) through
    the base inverse. Callers must fall back to a fresh {!Lu.factor}. *)

type t

(** [rank t] is the rank r of the applied update (0 means the solver is
    the plain retained factorization). *)
val rank : t -> int

(** [dim t] is the order n of the underlying system. *)
val dim : t -> int

(** [update base ~u ~v] prepares solves against A + U V^T, where [base]
    factors A and [u], [v] are dense n x r. The capacitance matrix is
    factored and the A^{-1}U / A^{-T}V blocks are precomputed eagerly, so
    all the guard checks happen here, not at solve time. *)
val update :
  ?rcond_min:float -> ?growth_max:float -> Lu.t -> u:Mat.t -> v:Mat.t ->
  (t, string) result

(** [update_cols base ~cols ~delta] is the element-stamp special case:
    the perturbation is [delta] (dense n x n) known to be nonzero only in
    the columns listed in [cols], so A' = A + U V^T with U the selected
    columns of [delta] and V the matching unit vectors. The capacitance
    matrix then needs no inner products, just row picks of A^{-1}U. *)
val update_cols :
  ?rcond_min:float -> ?growth_max:float -> Lu.t -> cols:int array ->
  delta:Mat.t -> (t, string) result

(** [solve t b] solves (A + U V^T) x = b. *)
val solve : t -> Vec.t -> Vec.t

(** [solve_in_place t b] overwrites [b] with the solution, avoiding the
    allocation in the moment-vector refresh loop. *)
val solve_in_place : t -> Vec.t -> unit

(** [solve_transposed t b] solves (A + U V^T)^T x = b, reusing the same
    capacitance factorization (its transpose is the transposed system's
    capacitance matrix). *)
val solve_transposed : t -> Vec.t -> Vec.t

(** [solve_transposed_in_place t b] overwrites [b] with the transposed
    solution. *)
val solve_transposed_in_place : t -> Vec.t -> unit
