(** LU factorization with partial pivoting, for the real MNA systems at the
    heart of DC analysis and AWE moment generation.

    AWE factors the conductance matrix G once and then back-substitutes once
    per moment, so factorization and solving are exposed separately. *)

type t

exception Singular of int
(** Raised with the pivot column when a zero (or numerically negligible)
    pivot is met. *)

(** [factor a] computes PA = LU. [a] is not modified.
    @raise Singular if the matrix is numerically singular. *)
val factor : Mat.t -> t

(** [solve lu b] solves A x = b for the factored A. *)
val solve : t -> Vec.t -> Vec.t

(** [solve_in_place lu b] overwrites [b] with the solution, avoiding the
    allocation in the AWE moment loop. *)
val solve_in_place : t -> Vec.t -> unit

(** [solve_transposed lu b] solves A^T x = b (used for adjoint sensitivity). *)
val solve_transposed : t -> Vec.t -> Vec.t

(** [solve_transposed_in_place lu b] overwrites [b] with the solution of
    A^T x = b, avoiding the allocation in the low-rank capacitance loop. *)
val solve_transposed_in_place : t -> Vec.t -> unit

(** [det lu] is the determinant of the factored matrix. *)
val det : t -> float

(** [rcond_estimate lu a] is a cheap reciprocal-condition estimate in the
    infinity norm (1 / (||A|| * ||A^-1 e||) for a probing vector e). Values
    near 0 flag ill-conditioning; a singular-direction hit (zero solve or
    matrix norm) reports exactly 0.0. *)
val rcond_estimate : t -> Mat.t -> float

(** [dim lu] is the order of the factored matrix. *)
val dim : t -> int
