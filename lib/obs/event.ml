type level = Off | Summary | Stage | Moves

let level_rank = function Off -> 0 | Summary -> 1 | Stage -> 2 | Moves -> 3
let level_leq a b = level_rank a <= level_rank b

let level_to_string = function
  | Off -> "off"
  | Summary -> "summary"
  | Stage -> "stage"
  | Moves -> "moves"

let level_of_string s =
  match String.lowercase_ascii s with
  | "off" -> Ok Off
  | "summary" -> Ok Summary
  | "stage" -> Ok Stage
  | "moves" -> Ok Moves
  | _ -> Error (Printf.sprintf "unknown trace level %S (off|summary|stage|moves)" s)

type decision = Accepted | Rejected | Inapplicable

(* Incremental-evaluator cache behaviour per move class (Eval.Incr). *)
type eval_class = {
  ec_name : string;
  ec_evals : int;
  ec_dirty : int;
  ec_op_hits : int;
  ec_op_misses : int;
  ec_rom_builds : int;
  ec_rom_reuses : int;
}

type evals_data = {
  full : int;
  incr : int;
  dirty_vars : int;
  op_hits : int;
  op_misses : int;
  rom_builds : int;
  rom_reuses : int;
  spec_evals : int;
  spec_reuses : int;
  resyncs : int;
  resync_mismatches : int;
  probes : int;
  probe_rom_builds : int;
  probe_fallbacks : int;
  mom_reuses : int;
  mom_refreshes : int;
  per_class : eval_class list;
}

type body =
  | Restart of { total_moves : int; classes : string array }
  | Move of {
      cls : int;
      class_name : string;
      decision : decision;
      delta_cost : float;
      cost : float;
      state : (float array * int array) option;
    }
  | Stage of { stage : int; current_cost : float; best_cost : float; probs : float array }
  | Weight_update of {
      w_perf : float;
      w_dev : float;
      w_dc : float;
      c_obj : float;
      c_perf : float;
      c_dev : float;
      c_dc : float;
    }
  | Evals of evals_data
  | Done of {
      best_cost : float;
      final_cost : float;
      accepted : int;
      stages : int;
      froze_early : bool;
      aborted : bool;
      abort_reason : string option;
    }

type t = {
  restart : int;
  moves : int;
  temperature : float;
  acceptance : float;
  body : body;
}

let level_of_body = function
  | Restart _ | Done _ -> Summary
  | Stage _ | Weight_update _ | Evals _ -> Stage
  | Move _ -> Moves

let kind t =
  match t.body with
  | Restart _ -> "restart"
  | Move _ -> "move"
  | Stage _ -> "stage"
  | Weight_update _ -> "weights"
  | Evals _ -> "evals"
  | Done _ -> "done"

(* ------------------------------------------------------------------ *)
(* JSON encoding — one flat object per event, dispatched on "ev"       *)
(* ------------------------------------------------------------------ *)

let decision_to_string = function Accepted -> "acc" | Rejected -> "rej" | Inapplicable -> "n/a"

let decision_of_string = function
  | "acc" -> Ok Accepted
  | "rej" -> Ok Rejected
  | "n/a" -> Ok Inapplicable
  | s -> Error (Printf.sprintf "unknown decision %S" s)

let num_array a = Json.Arr (Array.to_list a |> List.map (fun v -> Json.Num v))
let int_array a = Json.Arr (Array.to_list a |> List.map (fun v -> Json.Num (float_of_int v)))
let str_array a = Json.Arr (Array.to_list a |> List.map (fun s -> Json.Str s))

let to_json t =
  let body_fields =
    match t.body with
    | Restart { total_moves; classes } ->
        [
          ("ev", Json.Str "restart");
          ("total_moves", Json.Num (float_of_int total_moves));
          ("classes", str_array classes);
        ]
    | Move { cls; class_name; decision; delta_cost; cost; state } ->
        [
          ("ev", Json.Str "move");
          ("cls", Json.Num (float_of_int cls));
          ("class", Json.Str class_name);
          ("dec", Json.Str (decision_to_string decision));
          ("dcost", Json.Num delta_cost);
          ("cost", Json.Num cost);
        ]
        @ (match state with
          | None -> []
          | Some (values, grid) -> [ ("x", num_array values); ("g", int_array grid) ])
    | Stage { stage; current_cost; best_cost; probs } ->
        [
          ("ev", Json.Str "stage");
          ("stage", Json.Num (float_of_int stage));
          ("cost", Json.Num current_cost);
          ("best", Json.Num best_cost);
          ("probs", num_array probs);
        ]
    | Weight_update { w_perf; w_dev; w_dc; c_obj; c_perf; c_dev; c_dc } ->
        [
          ("ev", Json.Str "weights");
          ("w_perf", Json.Num w_perf);
          ("w_dev", Json.Num w_dev);
          ("w_dc", Json.Num w_dc);
          ("c_obj", Json.Num c_obj);
          ("c_perf", Json.Num c_perf);
          ("c_dev", Json.Num c_dev);
          ("c_dc", Json.Num c_dc);
        ]
    | Evals e ->
        [
          ("ev", Json.Str "evals");
          ("full", Json.Num (float_of_int e.full));
          ("incr", Json.Num (float_of_int e.incr));
          ("dirty", Json.Num (float_of_int e.dirty_vars));
          ("op_hits", Json.Num (float_of_int e.op_hits));
          ("op_misses", Json.Num (float_of_int e.op_misses));
          ("rom_builds", Json.Num (float_of_int e.rom_builds));
          ("rom_reuses", Json.Num (float_of_int e.rom_reuses));
          ("spec_evals", Json.Num (float_of_int e.spec_evals));
          ("spec_reuses", Json.Num (float_of_int e.spec_reuses));
          ("resyncs", Json.Num (float_of_int e.resyncs));
          ("mismatches", Json.Num (float_of_int e.resync_mismatches));
          ("probes", Json.Num (float_of_int e.probes));
          ("probe_rom_builds", Json.Num (float_of_int e.probe_rom_builds));
          ("probe_fallbacks", Json.Num (float_of_int e.probe_fallbacks));
          ("mom_reuses", Json.Num (float_of_int e.mom_reuses));
          ("mom_refreshes", Json.Num (float_of_int e.mom_refreshes));
          ( "classes",
            Json.Arr
              (List.map
                 (fun c ->
                   Json.Obj
                     [
                       ("name", Json.Str c.ec_name);
                       ("evals", Json.Num (float_of_int c.ec_evals));
                       ("dirty", Json.Num (float_of_int c.ec_dirty));
                       ("op_hits", Json.Num (float_of_int c.ec_op_hits));
                       ("op_misses", Json.Num (float_of_int c.ec_op_misses));
                       ("rom_builds", Json.Num (float_of_int c.ec_rom_builds));
                       ("rom_reuses", Json.Num (float_of_int c.ec_rom_reuses));
                     ])
                 e.per_class) );
        ]
    | Done { best_cost; final_cost; accepted; stages; froze_early; aborted; abort_reason } ->
        [
          ("ev", Json.Str "done");
          ("best", Json.Num best_cost);
          ("final", Json.Num final_cost);
          ("accepted", Json.Num (float_of_int accepted));
          ("stages", Json.Num (float_of_int stages));
          ("froze", Json.Bool froze_early);
          ("aborted", Json.Bool aborted);
        ]
        @ (match abort_reason with None -> [] | Some r -> [ ("reason", Json.Str r) ])
  in
  Json.Obj
    ([
       ("r", Json.Num (float_of_int t.restart));
       ("m", Json.Num (float_of_int t.moves));
       ("temp", Json.Num t.temperature);
       ("accept", Json.Num t.acceptance);
     ]
    @ body_fields)

let int_or0 key j = match Json.mem_opt key j with Some v -> Json.to_int v | None -> 0

let of_json j =
  try
    let restart = Json.to_int (Json.mem "r" j) in
    let moves = Json.to_int (Json.mem "m" j) in
    let temperature = Json.to_float (Json.mem "temp" j) in
    let acceptance = Json.to_float (Json.mem "accept" j) in
    let float_arr key = Array.of_list (List.map Json.to_float (Json.to_list (Json.mem key j))) in
    let body =
      match Json.to_str (Json.mem "ev" j) with
      | "restart" ->
          Restart
            {
              total_moves = Json.to_int (Json.mem "total_moves" j);
              classes =
                Array.of_list (List.map Json.to_str (Json.to_list (Json.mem "classes" j)));
            }
      | "move" ->
          let decision =
            match decision_of_string (Json.to_str (Json.mem "dec" j)) with
            | Ok d -> d
            | Error e -> raise (Json.Decode_error e)
          in
          let state =
            match Json.mem_opt "x" j with
            | None -> None
            | Some _ ->
                let grid =
                  Array.of_list (List.map Json.to_int (Json.to_list (Json.mem "g" j)))
                in
                Some (float_arr "x", grid)
          in
          Move
            {
              cls = Json.to_int (Json.mem "cls" j);
              class_name = Json.to_str (Json.mem "class" j);
              decision;
              delta_cost = Json.to_float (Json.mem "dcost" j);
              cost = Json.to_float (Json.mem "cost" j);
              state;
            }
      | "stage" ->
          Stage
            {
              stage = Json.to_int (Json.mem "stage" j);
              current_cost = Json.to_float (Json.mem "cost" j);
              best_cost = Json.to_float (Json.mem "best" j);
              probs = float_arr "probs";
            }
      | "weights" ->
          Weight_update
            {
              w_perf = Json.to_float (Json.mem "w_perf" j);
              w_dev = Json.to_float (Json.mem "w_dev" j);
              w_dc = Json.to_float (Json.mem "w_dc" j);
              c_obj = Json.to_float (Json.mem "c_obj" j);
              c_perf = Json.to_float (Json.mem "c_perf" j);
              c_dev = Json.to_float (Json.mem "c_dev" j);
              c_dc = Json.to_float (Json.mem "c_dc" j);
            }
      | "evals" ->
          let cls cj =
            {
              ec_name = Json.to_str (Json.mem "name" cj);
              ec_evals = Json.to_int (Json.mem "evals" cj);
              ec_dirty = Json.to_int (Json.mem "dirty" cj);
              ec_op_hits = Json.to_int (Json.mem "op_hits" cj);
              ec_op_misses = Json.to_int (Json.mem "op_misses" cj);
              ec_rom_builds = Json.to_int (Json.mem "rom_builds" cj);
              ec_rom_reuses = Json.to_int (Json.mem "rom_reuses" cj);
            }
          in
          Evals
            {
              full = Json.to_int (Json.mem "full" j);
              incr = Json.to_int (Json.mem "incr" j);
              dirty_vars = Json.to_int (Json.mem "dirty" j);
              op_hits = Json.to_int (Json.mem "op_hits" j);
              op_misses = Json.to_int (Json.mem "op_misses" j);
              rom_builds = Json.to_int (Json.mem "rom_builds" j);
              rom_reuses = Json.to_int (Json.mem "rom_reuses" j);
              spec_evals = Json.to_int (Json.mem "spec_evals" j);
              spec_reuses = Json.to_int (Json.mem "spec_reuses" j);
              resyncs = Json.to_int (Json.mem "resyncs" j);
              resync_mismatches = Json.to_int (Json.mem "mismatches" j);
              (* Probe counters postdate the format: absent means a trace
                 recorded before batched screening existed, i.e. zero. *)
              probes = int_or0 "probes" j;
              probe_rom_builds = int_or0 "probe_rom_builds" j;
              probe_fallbacks = int_or0 "probe_fallbacks" j;
              mom_reuses = int_or0 "mom_reuses" j;
              mom_refreshes = int_or0 "mom_refreshes" j;
              per_class = List.map cls (Json.to_list (Json.mem "classes" j));
            }
      | "done" ->
          Done
            {
              best_cost = Json.to_float (Json.mem "best" j);
              final_cost = Json.to_float (Json.mem "final" j);
              accepted = Json.to_int (Json.mem "accepted" j);
              stages = Json.to_int (Json.mem "stages" j);
              froze_early = Json.to_bool (Json.mem "froze" j);
              aborted = Json.to_bool (Json.mem "aborted" j);
              abort_reason = Option.map Json.to_str (Json.mem_opt "reason" j);
            }
      | k -> raise (Json.Decode_error (Printf.sprintf "unknown event kind %S" k))
    in
    Ok { restart; moves; temperature; acceptance; body }
  with Json.Decode_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Tolerant comparison (golden-trace diffing)                          *)
(* ------------------------------------------------------------------ *)

let feq ~tol a b =
  (Float.is_nan a && Float.is_nan b)
  || Float.abs (a -. b) <= tol *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let arr_feq ~tol a b =
  Array.length a = Array.length b && Array.for_all2 (fun x y -> feq ~tol x y) a b

let diff ~tol a b =
  let err fmt = Printf.ksprintf Option.some fmt in
  if a.restart <> b.restart then err "restart %d vs %d" a.restart b.restart
  else if a.moves <> b.moves then err "moves %d vs %d" a.moves b.moves
  else if not (feq ~tol a.temperature b.temperature) then
    err "temperature %.17g vs %.17g" a.temperature b.temperature
  else if not (feq ~tol a.acceptance b.acceptance) then
    err "acceptance %.17g vs %.17g" a.acceptance b.acceptance
  else
    match (a.body, b.body) with
    | Restart x, Restart y ->
        if x.total_moves <> y.total_moves then err "total_moves differ"
        else if x.classes <> y.classes then err "classes differ"
        else None
    | Move x, Move y ->
        if x.cls <> y.cls || x.class_name <> y.class_name then err "move class differs"
        else if x.decision <> y.decision then err "decision differs"
        else if not (feq ~tol x.delta_cost y.delta_cost) then
          err "delta_cost %.17g vs %.17g" x.delta_cost y.delta_cost
        else if not (feq ~tol x.cost y.cost) then err "cost %.17g vs %.17g" x.cost y.cost
        else begin
          match (x.state, y.state) with
          | None, None -> None
          | Some (xv, xg), Some (yv, yg) ->
              if not (arr_feq ~tol xv yv) then err "state values differ"
              else if xg <> yg then err "grid indices differ"
              else None
          | Some _, None | None, Some _ -> err "state presence differs"
        end
    | Stage x, Stage y ->
        if x.stage <> y.stage then err "stage index differs"
        else if not (feq ~tol x.current_cost y.current_cost) then err "stage cost differs"
        else if not (feq ~tol x.best_cost y.best_cost) then err "stage best differs"
        else if not (arr_feq ~tol x.probs y.probs) then err "hustin probs differ"
        else None
    | Weight_update x, Weight_update y ->
        if
          not
            (feq ~tol x.w_perf y.w_perf && feq ~tol x.w_dev y.w_dev && feq ~tol x.w_dc y.w_dc
            && feq ~tol x.c_obj y.c_obj && feq ~tol x.c_perf y.c_perf
            && feq ~tol x.c_dev y.c_dev && feq ~tol x.c_dc y.c_dc)
        then err "weights differ"
        else None
    | Evals x, Evals y -> if x <> y then err "eval counters differ" else None
    | Done x, Done y ->
        if not (feq ~tol x.best_cost y.best_cost) then err "done best differs"
        else if not (feq ~tol x.final_cost y.final_cost) then err "done final differs"
        else if x.accepted <> y.accepted then err "accepted count differs"
        else if x.stages <> y.stages then err "stage count differs"
        else if x.froze_early <> y.froze_early || x.aborted <> y.aborted then
          err "termination flags differ"
        else if x.abort_reason <> y.abort_reason then err "abort reason differs"
        else None
    | (Restart _ | Move _ | Stage _ | Weight_update _ | Evals _ | Done _), _ ->
        err "event kind %s vs %s" (kind a) (kind b)

let approx_equal ~tol a b = diff ~tol a b = None
