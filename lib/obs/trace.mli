(** A trace handle: the telemetry configuration a run carries around — the
    verbosity level, the restart tag stamped on every event, and the sinks
    receiving them. The zero value {!none} makes instrumented code free of
    conditionals: emitting into it is a no-op. *)

type t

(** No tracing; [enabled none _] is [false] for every level. *)
val none : t

val make : ?restart:int -> level:Event.level -> Sink.t list -> t

(** [with_restart t k] is [t] stamping events with restart index [k] —
    how {!Core.Oblx.best_of} gives each of its runs an identity inside a
    shared trace. *)
val with_restart : t -> int -> t

(** [add_sink t sink] is [t] also delivering to [sink] — how the serve
    layer attaches a per-job ring buffer next to the daemon's global
    summary sink without rebuilding the handle's level/restart state.
    Adding a sink to {!none} still records nothing (its level is [Off]). *)
val add_sink : t -> Sink.t -> t

val restart : t -> int
val level : t -> Event.level

(** The handle's sinks, in delivery order — what {!Core.Oblx.best_of}
    wraps in a {!Shard} so concurrent restarts stop serializing per
    event. *)
val sinks : t -> Sink.t list

(** [with_sinks t sinks] is [t] delivering to [sinks] instead — the other
    half of the shard plumbing. *)
val with_sinks : t -> Sink.t list -> t

(** [enabled t l] — events of level [l] will actually be recorded. Guard
    expensive payload construction (state snapshots) with this. *)
val enabled : t -> Event.level -> bool

(** [emit t ~moves ~temperature ~acceptance body] stamps and delivers one
    event, dropping it when the body's level is above the trace level. *)
val emit : t -> moves:int -> temperature:float -> acceptance:float -> Event.body -> unit

(** [close t] closes every sink. *)
val close : t -> unit
