type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_float buf v =
  if not (Float.is_finite v) then Buffer.add_string buf "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    (* Integral values print without exponent or fraction so counters stay
       readable; 17 digits elsewhere for exact binary round-trip. *)
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else Buffer.add_string buf (Printf.sprintf "%.17g" v)

let rec add buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_float buf f
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add buf x)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          add buf x)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over the string                    *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape"
                   in
                   (* Telemetry strings are ASCII; map the BMP code point
                      through UTF-8 so foreign traces still parse. *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end;
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

exception Decode_error of string

let decode_fail fmt = Printf.ksprintf (fun msg -> raise (Decode_error msg)) fmt

let mem_opt key v =
  match v with Obj fields -> List.assoc_opt key fields | _ -> None

let mem key v =
  match mem_opt key v with
  | Some x -> x
  | None -> decode_fail "missing field %S" key

let to_float v =
  match v with
  | Num f -> f
  | Null -> Float.nan (* non-finite floats print as null *)
  | _ -> decode_fail "expected number"

let to_int v =
  match v with
  | Num f when Float.is_integer f -> int_of_float f
  | _ -> decode_fail "expected integer"

let to_bool v = match v with Bool b -> b | _ -> decode_fail "expected bool"
let to_str v = match v with Str s -> s | _ -> decode_fail "expected string"
let to_list v = match v with Arr l -> l | _ -> decode_fail "expected array"
