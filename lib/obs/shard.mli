(** Per-restart event buffers over shared sinks — the telemetry side of the
    domain-parallel memory model (docs/PARALLEL.md).

    Where the built-in sinks serialize every event of every domain through
    one mutex, a shard hands each restart an unshared FIFO buffer: emitting
    is lock-free mutable-field writes on the owning domain, and buffered
    events merge into the downstream sinks in atomic batches at stage
    boundaries ([Stage]/[Done] events, or a size cap).

    The merge is deterministic per restart: a restart's events reach the
    sinks in exactly their emission order, batches never interleave inside
    one another, and {!drain} (called after the worker domains are joined)
    flushes leftovers in ascending restart order. Consumers demultiplex by
    the restart tag, recovering per-restart streams bit-identical to a
    sequential run's. *)

type t

(** Contention counters, for the perf-parallel bench's diagnostics. *)
type stats = {
  sh_buffers : int;  (** restart buffers handed out *)
  sh_events : int;  (** events emitted through the shard (racy count) *)
  sh_batches : int;  (** downstream merge batches *)
  sh_lock_wait_s : float;
      (** total wall time any domain spent waiting for the merge lock —
          near-zero when batching is doing its job *)
}

(** [create ?batch sinks] — a shard merging into [sinks]. [batch]
    (default 4096) caps a buffer's length between stage boundaries. *)
val create : ?batch:int -> Sink.t list -> t

(** [for_restart t k] — the buffer sink restart [k] emits into. Each call
    registers a fresh buffer; a restart must call it exactly once, and
    only the returned sink's owner may emit into it. *)
val for_restart : t -> int -> Sink.t

(** [drain t] flushes every remaining buffer, in ascending restart order.
    Call after joining the emitting domains; does not close the
    downstream sinks (the caller owns them). *)
val drain : t -> unit

val stats : t -> stats
