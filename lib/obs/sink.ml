type t = { emit : Event.t -> unit; close : unit -> unit }

let null = { emit = (fun _ -> ()); close = (fun () -> ()) }

let tee sinks =
  {
    emit = (fun ev -> List.iter (fun s -> s.emit ev) sinks);
    close = (fun () -> List.iter (fun s -> s.close ()) sinks);
  }

(* A per-sink verbosity cap: the serve layer tees one Moves-level trace
   into a global summary plus a per-job ring, with the ring capped at
   Stage so it holds a job's recent history instead of a move torrent. *)
let filtered ~level inner =
  {
    emit =
      (fun (ev : Event.t) ->
        if Event.level_leq (Event.level_of_body ev.Event.body) level then inner.emit ev);
    close = inner.close;
  }

(* Domains of a parallel multi-start all emit into the same sink; a mutex
   per sink keeps each JSON line (and each ring slot) atomic. *)
let serialized emit close =
  let m = Mutex.create () in
  let locked f x =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f x)
  in
  { emit = locked emit; close = locked close }

(* One flush per event keeps the file tail-able while a run is live and
   complete up to the last event if the process dies; the syscall is noise
   next to a single cost evaluation. *)
let output_line oc ev =
  output_string oc (Json.to_string (Event.to_json ev));
  output_char oc '\n';
  flush oc

let jsonl_channel oc = serialized (output_line oc) (fun () -> flush oc)

let jsonl_file path =
  let oc = open_out path in
  let closed = ref false in
  serialized (output_line oc) (fun () ->
      if not !closed then begin
        closed := true;
        close_out oc
      end)

module Ring = struct
  type ring = {
    buf : Event.t option array;
    mutable next : int;  (** total events ever emitted *)
    lock : Mutex.t;
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Sink.Ring.create: capacity must be >= 1";
    { buf = Array.make capacity None; next = 0; lock = Mutex.create () }

  let sink r =
    {
      emit =
        (fun ev ->
          Mutex.lock r.lock;
          r.buf.(r.next mod Array.length r.buf) <- Some ev;
          r.next <- r.next + 1;
          Mutex.unlock r.lock);
      close = (fun () -> ());
    }

  let length r = Int.min r.next (Array.length r.buf)
  let dropped r = Int.max 0 (r.next - Array.length r.buf)

  let contents r =
    Mutex.lock r.lock;
    let cap = Array.length r.buf in
    let n = length r in
    let start = r.next - n in
    let out = List.init n (fun i -> Option.get r.buf.((start + i) mod cap)) in
    Mutex.unlock r.lock;
    out
end

module Summary = struct
  type stage_row = {
    sr_restart : int;
    sr_stage : int;
    sr_moves : int;
    sr_temperature : float;
    sr_acceptance : float;
    sr_cost : float;
    sr_best : float;
  }

  type class_row = {
    cr_name : string;
    cr_attempts : int;
    cr_accepted : int;
    cr_inapplicable : int;
  }

  type stats = {
    events : int;
    restarts : int;
    moves : int;
    accepted : int;
    best_cost : float;
    stage_rows : stage_row list;
    class_rows : class_row list;
    eval_rows : (int * Event.evals_data) list;
    aborts : (int * string) list;
  }

  type summary = {
    mutable s_events : int;
    mutable s_restarts : int;
    mutable s_moves : int;
    mutable s_accepted : int;
    mutable s_best : float;
    mutable s_stages : stage_row list;  (** newest first *)
    classes : (string, int ref * int ref * int ref) Hashtbl.t;
    evals : (int, Event.evals_data) Hashtbl.t;  (** latest per restart *)
    mutable s_aborts : (int * string) list;
    lock : Mutex.t;
  }

  let create () =
    {
      s_events = 0;
      s_restarts = 0;
      s_moves = 0;
      s_accepted = 0;
      s_best = Float.infinity;
      s_stages = [];
      classes = Hashtbl.create 8;
      evals = Hashtbl.create 8;
      s_aborts = [];
      lock = Mutex.create ();
    }

  let observe s (ev : Event.t) =
    s.s_events <- s.s_events + 1;
    match ev.Event.body with
    | Event.Restart _ -> s.s_restarts <- s.s_restarts + 1
    | Event.Move { class_name; decision; _ } ->
        s.s_moves <- s.s_moves + 1;
        let att, acc, na =
          match Hashtbl.find_opt s.classes class_name with
          | Some c -> c
          | None ->
              let c = (ref 0, ref 0, ref 0) in
              Hashtbl.add s.classes class_name c;
              c
        in
        incr att;
        (match decision with
        | Event.Accepted ->
            s.s_accepted <- s.s_accepted + 1;
            incr acc
        | Event.Rejected -> ()
        | Event.Inapplicable -> incr na)
    | Event.Stage { stage; current_cost; best_cost; _ } ->
        s.s_stages <-
          {
            sr_restart = ev.restart;
            sr_stage = stage;
            sr_moves = ev.moves;
            sr_temperature = ev.temperature;
            sr_acceptance = ev.acceptance;
            sr_cost = current_cost;
            sr_best = best_cost;
          }
          :: s.s_stages
    | Event.Weight_update _ -> ()
    | Event.Evals e -> Hashtbl.replace s.evals ev.restart e
    | Event.Done { best_cost; aborted; abort_reason; _ } ->
        s.s_best <- Float.min s.s_best best_cost;
        if aborted then
          s.s_aborts <-
            (ev.restart, Option.value abort_reason ~default:"aborted") :: s.s_aborts

  let sink s =
    {
      emit =
        (fun ev ->
          Mutex.lock s.lock;
          observe s ev;
          Mutex.unlock s.lock);
      close = (fun () -> ());
    }

  let stats s =
    Mutex.lock s.lock;
    let class_rows =
      Hashtbl.fold
        (fun name (att, acc, na) rows ->
          { cr_name = name; cr_attempts = !att; cr_accepted = !acc; cr_inapplicable = !na }
          :: rows)
        s.classes []
      |> List.sort (fun a b -> String.compare a.cr_name b.cr_name)
    in
    let r =
      {
        events = s.s_events;
        restarts = s.s_restarts;
        moves = s.s_moves;
        accepted = s.s_accepted;
        best_cost = s.s_best;
        stage_rows = List.rev s.s_stages;
        class_rows;
        eval_rows =
          Hashtbl.fold (fun r e acc -> (r, e) :: acc) s.evals []
          |> List.sort (fun (a, _) (b, _) -> compare a b);
        aborts = List.rev s.s_aborts;
      }
    in
    Mutex.unlock s.lock;
    r
end
