(** The structured telemetry events of an OBLX annealing run.

    Every event carries the restart index (so domain-parallel multi-start
    traces interleave safely and can be demultiplexed), the number of moves
    decided so far, the current annealing temperature and the measured
    acceptance ratio. The body distinguishes:

    - [Restart]: one per annealing run, emitted before the first move;
    - [Move]: one per decided move (accept / reject / inapplicable), with
      the post-decision cost and — for accepted moves, when a state view is
      installed — the full design-point vector, which is what makes traces
      replayable (see {!Replay});
    - [Stage]: one per annealing stage, with the Hustin move-class
      selection probabilities;
    - [Weight_update]: the adaptive penalty weights after their per-stage
      update, together with the cost decomposed into objective and
      per-penalty terms (paper eq. (2));
    - [Done]: the run's outcome, including the abort reason when a
      multi-start scheduler cut the run short. *)

type level = Off | Summary | Stage | Moves

val level_to_string : level -> string
val level_of_string : string -> (level, string) result

(** [level_leq a b] — [a] is recorded when tracing at level [b]. *)
val level_leq : level -> level -> bool

type decision = Accepted | Rejected | Inapplicable

(** Incremental-evaluator cache behaviour for one move class
    (see [Eval.Incr] in the core library). *)
type eval_class = {
  ec_name : string;
  ec_evals : int;
  ec_dirty : int;  (** total dirty variables across this class's evals *)
  ec_op_hits : int;
  ec_op_misses : int;
  ec_rom_builds : int;
  ec_rom_reuses : int;
}

(** Cumulative incremental-evaluation counters for one restart: full vs
    incremental evaluations, device-op memo and AWE-ROM cache behaviour,
    periodic resync verification results. *)
type evals_data = {
  full : int;
  incr : int;
  dirty_vars : int;
  op_hits : int;
  op_misses : int;
  rom_builds : int;
  rom_reuses : int;
  spec_evals : int;
  spec_reuses : int;
  resyncs : int;
  resync_mismatches : int;  (** nonzero = incremental evaluator bug *)
  probes : int;  (** batched candidate screenings *)
  probe_rom_builds : int;  (** jigs refit on the probe path *)
  probe_fallbacks : int;  (** probe refits that factored fresh *)
  mom_reuses : int;  (** probe tfs served from recorded moment vectors *)
  mom_refreshes : int;  (** probe tfs re-solving only the C-moved tail *)
  per_class : eval_class list;
}

type body =
  | Restart of { total_moves : int; classes : string array }
  | Move of {
      cls : int;  (** move-class index into the run's [classes] *)
      class_name : string;
      decision : decision;
      delta_cost : float;
      cost : float;  (** scalar cost after the decision *)
      state : (float array * int array) option;
          (** (values, grid indices) after an accepted move *)
    }
  | Stage of {
      stage : int;
      current_cost : float;
      best_cost : float;
      probs : float array;  (** Hustin class-selection probabilities *)
    }
  | Weight_update of {
      w_perf : float;
      w_dev : float;
      w_dc : float;
      c_obj : float;  (** unweighted objective term *)
      c_perf : float;  (** unweighted performance-penalty term *)
      c_dev : float;  (** unweighted device-region penalty term *)
      c_dc : float;  (** unweighted relaxed-dc penalty term *)
    }
  | Evals of evals_data  (** per-stage snapshot of {!evals_data} *)
  | Done of {
      best_cost : float;
      final_cost : float;
      accepted : int;
      stages : int;
      froze_early : bool;
      aborted : bool;
      abort_reason : string option;
    }

type t = {
  restart : int;
  moves : int;
  temperature : float;
  acceptance : float;
  body : body;
}

(** The minimum trace level at which this event is recorded. *)
val level_of_body : body -> level

val kind : t -> string  (** short tag: "restart" | "move" | ... *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

(** [approx_equal ~tol a b] — structural equality with relative tolerance
    [tol] on every float field (used by the golden-trace diff, where a
    rebuilt binary may differ in the last bits of libm results). *)
val approx_equal : tol:float -> t -> t -> bool

(** [diff ~tol a b] is [None] when {!approx_equal}, otherwise a short
    human-readable description of the first difference found. *)
val diff : tol:float -> t -> t -> string option
