(* Per-restart event buffers over a shared downstream sink list.

   The mutex-serialized sinks of [Sink] are correct under domain-parallel
   emission but pay one lock acquisition per event: a Moves-level trace of
   an 8-domain multi-start serializes every domain through one mutex,
   hundreds of thousands of times per second. A shard gives each restart
   its own unshared buffer — emission is plain mutable-field writes on the
   owning domain, no lock, no contention — and merges buffered events into
   the downstream sinks in batches at stage boundaries.

   Merge rule (documented in docs/PARALLEL.md):
   - within a restart, events reach the downstream sinks in exactly their
     emission order (a buffer is a FIFO and only its owner writes it);
   - a batch is atomic: no event from another restart interleaves inside
     it (the downstream lock is held for the whole batch);
   - batches flush at stage boundaries ([Stage] and [Done] events) and
     when a buffer reaches [batch] events, so buffering is bounded;
   - [drain] flushes every remaining buffer in ascending restart order —
     after the owning domains have been joined, the tail of the merged
     stream is therefore deterministic.

   Consumers demultiplex by the restart tag every event carries, so the
   per-restart streams recovered from the merged output are bit-identical
   to a sequential run's — the property test_parallel locks in. *)

type buffer = {
  b_restart : int;
  mutable b_rev : Event.t list;  (* newest first *)
  mutable b_len : int;
}

type t = {
  sinks : Sink.t list;
  batch : int;
  lock : Mutex.t;
  mutable buffers : buffer list;  (* registry for [drain], unordered *)
  (* stats, mutated under [lock] *)
  mutable n_buffers : int;
  mutable n_events : int;
  mutable n_batches : int;
  mutable lock_wait_s : float;
}

type stats = {
  sh_buffers : int;
  sh_events : int;
  sh_batches : int;
  sh_lock_wait_s : float;
}

let create ?(batch = 4096) sinks =
  if batch < 1 then invalid_arg "Shard.create: batch must be >= 1";
  {
    sinks;
    batch;
    lock = Mutex.create ();
    buffers = [];
    n_buffers = 0;
    n_events = 0;
    n_batches = 0;
    lock_wait_s = 0.0;
  }

(* Lock acquisition with wait accounting: the uncontended path is a
   [try_lock] (no clock read); only an actual wait is timed. *)
let lock_timed t =
  if not (Mutex.try_lock t.lock) then begin
    let t0 = Unix.gettimeofday () in
    Mutex.lock t.lock;
    t.lock_wait_s <- t.lock_wait_s +. (Unix.gettimeofday () -. t0)
  end

let flush_locked t b =
  if b.b_len > 0 then begin
    let evs = List.rev b.b_rev in
    b.b_rev <- [];
    b.b_len <- 0;
    List.iter (fun ev -> List.iter (fun (s : Sink.t) -> s.Sink.emit ev) t.sinks) evs;
    t.n_batches <- t.n_batches + 1
  end

let flush t b =
  lock_timed t;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> flush_locked t b)

let for_restart t restart =
  let b = { b_restart = restart; b_rev = []; b_len = 0 } in
  lock_timed t;
  t.buffers <- b :: t.buffers;
  t.n_buffers <- t.n_buffers + 1;
  Mutex.unlock t.lock;
  {
    Sink.emit =
      (fun ev ->
        b.b_rev <- ev :: b.b_rev;
        b.b_len <- b.b_len + 1;
        t.n_events <- t.n_events + 1;
        (* [n_events] is a racy statistic; the buffer itself is owned. *)
        let boundary =
          match ev.Event.body with
          | Event.Stage _ | Event.Done _ -> true
          | Event.Restart _ | Event.Move _ | Event.Weight_update _ | Event.Evals _ -> false
        in
        if boundary || b.b_len >= t.batch then flush t b);
    close = (fun () -> flush t b);
  }

let drain t =
  lock_timed t;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let bs = List.sort (fun a b -> compare a.b_restart b.b_restart) t.buffers in
      List.iter (flush_locked t) bs;
      t.buffers <- [])

let stats t =
  {
    sh_buffers = t.n_buffers;
    sh_events = t.n_events;
    sh_batches = t.n_batches;
    sh_lock_wait_s = t.lock_wait_s;
  }
