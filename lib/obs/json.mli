(** A minimal JSON value type with a printer and parser, sufficient for the
    telemetry event stream: no external dependency, exact float round-trip
    (printed with 17 significant digits), one-line-per-event friendly.

    Non-finite floats are printed as [null] (JSON has no representation for
    them) and parse back as [nan]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string

(** [of_string s] parses one JSON value; trailing whitespace is allowed,
    anything else after the value is an error. *)
val of_string : string -> (t, string) result

(* Accessors used by the event decoder; all raise [Decode_error] with a
   field-naming message on shape mismatch. *)

exception Decode_error of string

val mem : string -> t -> t  (** object member, [Decode_error] if absent *)

val mem_opt : string -> t -> t option
val to_float : t -> float
val to_int : t -> int
val to_bool : t -> bool
val to_str : t -> string
val to_list : t -> t list
