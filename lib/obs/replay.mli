(** Deterministic trace replay: re-evaluate every accepted state recorded
    in a trace against the (caller-supplied) compiled cost function and
    fail on any mismatch beyond tolerance.

    This turns each recorded run into a regression test of the cost
    function and of the annealer's bookkeeping: if the binary that replays
    the trace computes a different cost for a recorded design point than
    the binary that produced it, either the evaluator changed behaviour or
    the trace was corrupted. Because events are restart-tagged, a single
    interleaved trace from a domain-parallel [best_of] replays exactly like
    per-run traces — the [--jobs] invariance of docs/PARALLEL.md becomes a
    checkable property.

    The adaptive penalty weights are part of the cost function, so the
    checker tracks [Weight_update] events per restart and hands the weights
    in force at each accepted move to the cost callback. *)

type cost_fn =
  w_perf:float -> w_dev:float -> w_dc:float -> values:float array -> grid:int array -> float

type mismatch = {
  mm_restart : int;
  mm_moves : int;  (** move counter of the offending event *)
  mm_recorded : float;
  mm_recomputed : float;
  mm_rel_err : float;
}

type stats = {
  rs_events : int;
  rs_restarts : int;  (** distinct restart indices seen *)
  rs_checked : int;  (** accepted moves with a recorded state *)
  rs_max_rel_err : float;
}

(** [check ~cost ?tol events] — [tol] is a relative tolerance (default
    [1e-6]; replay within the producing build is exact, the slack covers
    libm drift across machines). [Ok stats] when every recorded state
    re-evaluates to its recorded cost; [Error (mismatches, stats)]
    otherwise. A trace with no replayable event yields [Ok] with
    [rs_checked = 0] — callers wanting proof of coverage should assert on
    it. *)
val check : cost:cost_fn -> ?tol:float -> Event.t list -> (stats, mismatch list * stats) result

val pp_mismatch : Format.formatter -> mismatch -> unit

(** [read_file path] loads a JSONL trace written by {!Sink.jsonl_file};
    fails on the first malformed line (1-based line number in the
    message). *)
val read_file : string -> (Event.t list, string) result

(** [read_lines lines] — same decoder over in-memory lines. *)
val read_lines : string list -> (Event.t list, string) result
