(** Pluggable telemetry sinks. A sink consumes {!Event.t} values; all
    built-in sinks are safe to share between domains (a mutex serializes
    [emit]), which is what lets a single trace file collect the
    restart-tagged events of a domain-parallel {!Core.Oblx.best_of}. *)

type t = {
  emit : Event.t -> unit;
  close : unit -> unit;  (** flush and release resources; idempotent *)
}

val null : t

(** [tee sinks] fans every event out to each of [sinks]. *)
val tee : t list -> t

(** [filtered ~level inner] passes through only events whose body level is
    at or below [level] — a per-sink verbosity cap under a shared trace
    handle (e.g. a Stage-level ring teed next to a Moves-level summary). *)
val filtered : level:Event.level -> t -> t

(** [jsonl_channel oc] writes one JSON object per line. [close] flushes but
    leaves the channel open (the caller owns it). *)
val jsonl_channel : out_channel -> t

(** [jsonl_file path] — like {!jsonl_channel} over a fresh file; [close]
    closes it. *)
val jsonl_file : string -> t

(** Bounded in-memory ring buffer: keeps the most recent [capacity]
    events. *)
module Ring : sig
  type ring

  val create : capacity:int -> ring
  val sink : ring -> t
  val length : ring -> int
  val dropped : ring -> int  (** events evicted since creation *)

  val contents : ring -> Event.t list  (** oldest first *)
end

(** Streaming summary statistics, computed without retaining events. *)
module Summary : sig
  type summary

  type stage_row = {
    sr_restart : int;
    sr_stage : int;
    sr_moves : int;
    sr_temperature : float;
    sr_acceptance : float;
    sr_cost : float;
    sr_best : float;
  }

  type class_row = {
    cr_name : string;
    cr_attempts : int;
    cr_accepted : int;
    cr_inapplicable : int;
  }

  type stats = {
    events : int;
    restarts : int;
    moves : int;  (** decided moves across all restarts *)
    accepted : int;
    best_cost : float;  (** lowest [Done.best_cost] seen, else [infinity] *)
    stage_rows : stage_row list;  (** in emission order *)
    class_rows : class_row list;  (** move-class mix, by class name *)
    eval_rows : (int * Event.evals_data) list;
        (** latest incremental-evaluation counters per restart *)
    aborts : (int * string) list;  (** (restart, reason) for cut-short runs *)
  }

  val create : unit -> summary
  val sink : summary -> t
  val stats : summary -> stats
end
