type t = { level : Event.level; restart : int; sinks : Sink.t list }

let none = { level = Event.Off; restart = 0; sinks = [] }
let make ?(restart = 0) ~level sinks = { level; restart; sinks }
let with_restart t restart = { t with restart }
let add_sink t sink = { t with sinks = sink :: t.sinks }
let restart t = t.restart
let level t = t.level
let sinks t = t.sinks
let with_sinks t sinks = { t with sinks }
let enabled t l = t.sinks <> [] && l <> Event.Off && Event.level_leq l t.level

let emit t ~moves ~temperature ~acceptance body =
  if enabled t (Event.level_of_body body) then begin
    let ev = { Event.restart = t.restart; moves; temperature; acceptance; body } in
    List.iter (fun (s : Sink.t) -> s.Sink.emit ev) t.sinks
  end

let close t = List.iter (fun (s : Sink.t) -> s.Sink.close ()) t.sinks
