type cost_fn =
  w_perf:float -> w_dev:float -> w_dc:float -> values:float array -> grid:int array -> float

type mismatch = {
  mm_restart : int;
  mm_moves : int;
  mm_recorded : float;
  mm_recomputed : float;
  mm_rel_err : float;
}

type stats = {
  rs_events : int;
  rs_restarts : int;
  rs_checked : int;
  rs_max_rel_err : float;
}

(* The weights in force for one restart. Initial values mirror
   [Weights.create]: every group starts at 1. *)
type weight_state = { mutable w_perf : float; mutable w_dev : float; mutable w_dc : float }

let check ~cost ?(tol = 1e-6) events =
  let weights : (int, weight_state) Hashtbl.t = Hashtbl.create 8 in
  let weights_for restart =
    match Hashtbl.find_opt weights restart with
    | Some w -> w
    | None ->
        let w = { w_perf = 1.0; w_dev = 1.0; w_dc = 1.0 } in
        Hashtbl.add weights restart w;
        w
  in
  let restarts = Hashtbl.create 8 in
  let checked = ref 0 in
  let max_err = ref 0.0 in
  let mismatches = ref [] in
  let n_events = ref 0 in
  List.iter
    (fun (ev : Event.t) ->
      incr n_events;
      Hashtbl.replace restarts ev.Event.restart ();
      match ev.Event.body with
      | Event.Weight_update { w_perf; w_dev; w_dc; _ } ->
          let w = weights_for ev.restart in
          w.w_perf <- w_perf;
          w.w_dev <- w_dev;
          w.w_dc <- w_dc
      | Event.Move { decision = Event.Accepted; cost = recorded; state = Some (values, grid); _ }
        ->
          let w = weights_for ev.restart in
          let recomputed =
            cost ~w_perf:w.w_perf ~w_dev:w.w_dev ~w_dc:w.w_dc ~values ~grid
          in
          let rel =
            Float.abs (recorded -. recomputed)
            /. Float.max 1.0 (Float.max (Float.abs recorded) (Float.abs recomputed))
          in
          incr checked;
          max_err := Float.max !max_err rel;
          if not (rel <= tol) then
            mismatches :=
              {
                mm_restart = ev.restart;
                mm_moves = ev.moves;
                mm_recorded = recorded;
                mm_recomputed = recomputed;
                mm_rel_err = rel;
              }
              :: !mismatches
      | Event.Move _ | Event.Restart _ | Event.Stage _ | Event.Evals _ | Event.Done _ -> ())
    events;
  let stats =
    {
      rs_events = !n_events;
      rs_restarts = Hashtbl.length restarts;
      rs_checked = !checked;
      rs_max_rel_err = !max_err;
    }
  in
  match List.rev !mismatches with [] -> Ok stats | ms -> Error (ms, stats)

let pp_mismatch fmt m =
  Format.fprintf fmt "restart %d move %d: recorded cost %.17g, replay computed %.17g (rel err %.3g)"
    m.mm_restart m.mm_moves m.mm_recorded m.mm_recomputed m.mm_rel_err

let read_lines lines =
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go (n + 1) acc rest
        else begin
          match Json.of_string line with
          | Error e -> Error (Printf.sprintf "line %d: %s" n e)
          | Ok j -> begin
              match Event.of_json j with
              | Error e -> Error (Printf.sprintf "line %d: %s" n e)
              | Ok ev -> go (n + 1) (ev :: acc) rest
            end
        end
  in
  go 1 [] lines

let read_file path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let rec slurp acc =
        match input_line ic with
        | line -> slurp (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      let lines = slurp [] in
      close_in ic;
      read_lines lines
