type t = (string * Sig.resolved) list

type decl = {
  decl_name : string;
  decl_kind : string;
  decl_level : string;
  decl_params : (string * float) list;
}

type corner = {
  corner_name : string;
  kp_scale : float;
  vto_shift : float;
  beta_scale : float;
}

let nominal_corner = { corner_name = "nominal"; kp_scale = 1.0; vto_shift = 0.0; beta_scale = 1.0 }

(* The classic five corners. Declared here rather than in Core.Corners so
   the compiler can resolve `corner=` spec rows without a layer cycle;
   Core.Corners.standard aliases this list. *)
let standard_corners =
  let corner name kp vto beta =
    { corner_name = name; kp_scale = kp; vto_shift = vto; beta_scale = beta }
  in
  [
    nominal_corner;
    corner "slow" 0.85 0.08 0.8;
    corner "fast" 1.15 (-0.08) 1.2;
    corner "slow-n-fast-p" 0.92 0.05 0.9;
    corner "fast-n-slow-p" 1.08 (-0.05) 1.1;
  ]

let find_corner name =
  List.find_opt (fun c -> c.corner_name = name) standard_corners

let skew_mos corner (p : Mos_params.t) =
  { p with Mos_params.kp = p.Mos_params.kp *. corner.kp_scale; vto = p.Mos_params.vto +. corner.vto_shift }

let skew_bjt corner (p : Bjt.params) = { p with Bjt.bf = p.Bjt.bf *. corner.beta_scale }

let resolve_mos ~corner name params =
  let params = skew_mos corner params in
  let rd_ohm_m = params.Mos_params.rsh *. params.Mos_params.ldiff in
  Sig.Mos { model_name = name; pol = params.Mos_params.pol; eval = Mos_common.make params; rd_ohm_m }

let resolve_bjt ~corner name params =
  let params = skew_bjt corner params in
  Sig.Bjt { model_name = name; pol = params.Bjt.pol; eval = Bjt.make params }

let process_entries ~corner process =
  let mos_entry name level pol =
    match Process.mos ~process ~level ~pol with
    | Some p -> [ (name, resolve_mos ~corner name p) ]
    | None -> []
  in
  let bjt_entry name pol =
    match Process.bjt ~process ~pol with
    | Some p -> [ (name, resolve_bjt ~corner name p) ]
    | None -> []
  in
  List.concat
    [
      mos_entry "nmos" "3" Sig.N;
      mos_entry "pmos" "3" Sig.P;
      mos_entry "nmos_1" "1" Sig.N;
      mos_entry "pmos_1" "1" Sig.P;
      mos_entry "nmos_bsim" "bsim" Sig.N;
      mos_entry "pmos_bsim" "bsim" Sig.P;
      bjt_entry "npn" Sig.N;
      bjt_entry "pnp" Sig.P;
    ]

let apply_mos_params base kvs =
  List.fold_left
    (fun acc (k, v) ->
      match acc with
      | Error _ -> acc
      | Ok p -> begin
          match Mos_params.with_param p k v with
          | Some p' -> Ok p'
          | None -> Error (Printf.sprintf "unknown MOS model parameter %S" k)
        end)
    (Ok base) kvs

let apply_bjt_params base kvs =
  List.fold_left
    (fun acc (k, v) ->
      match acc with
      | Error _ -> acc
      | Ok p -> begin
          match Bjt.with_param p k v with
          | Some p' -> Ok p'
          | None -> Error (Printf.sprintf "unknown BJT model parameter %S" k)
        end)
    (Ok base) kvs

let resolve_decl ?process ~corner d =
  let mos pol =
    let base =
      match process with
      | Some pr -> Process.mos ~process:pr ~level:d.decl_level ~pol
      | None -> None
    in
    let base =
      match base with
      | Some b -> Some b
      | None ->
          (* No process: start from generic defaults with the right level. *)
          let lv =
            match d.decl_level with
            | "1" -> Some Mos_params.Level1
            | "3" -> Some Mos_params.Level3
            | "bsim" -> Some Mos_params.Bsim
            | _ -> None
          in
          Option.map (fun level -> { Mos_params.default_nmos with level; pol }) lv
    in
    match base with
    | None -> Error (Printf.sprintf "model %s: unknown level %S" d.decl_name d.decl_level)
    | Some b -> begin
        match apply_mos_params b d.decl_params with
        | Ok p -> Ok (resolve_mos ~corner d.decl_name p)
        | Error e -> Error (Printf.sprintf "model %s: %s" d.decl_name e)
      end
  in
  let bjt pol =
    let base =
      match process with
      | Some pr -> Process.bjt ~process:pr ~pol
      | None -> Some (match pol with Sig.N -> Bjt.default_npn | Sig.P -> { Bjt.default_npn with pol })
    in
    match base with
    | None -> Error (Printf.sprintf "model %s: no BJT in process" d.decl_name)
    | Some b -> begin
        match apply_bjt_params b d.decl_params with
        | Ok p -> Ok (resolve_bjt ~corner d.decl_name p)
        | Error e -> Error (Printf.sprintf "model %s: %s" d.decl_name e)
      end
  in
  match d.decl_kind with
  | "nmos" -> mos Sig.N
  | "pmos" -> mos Sig.P
  | "npn" -> bjt Sig.N
  | "pnp" -> bjt Sig.P
  | other -> Error (Printf.sprintf "model %s: unknown device kind %S" d.decl_name other)

let build ?process ?(corner = nominal_corner) decls =
  let base = match process with Some p -> process_entries ~corner p | None -> [] in
  let rec add acc = function
    | [] -> Ok acc
    | d :: rest -> begin
        match resolve_decl ?process ~corner d with
        | Ok r -> add ((d.decl_name, r) :: acc) rest
        | Error e -> Error e
      end
  in
  (* Declarations shadow process entries because assoc finds them first. *)
  add base decls

let find t name = List.assoc_opt name t

let find_exn t name =
  match find t name with
  | Some r -> r
  | None -> failwith (Printf.sprintf "unknown device model %S" name)
