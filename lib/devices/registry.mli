(** Model-name resolution: maps the model names used in netlists (e.g.
    [nmos], [pmos], [npn], or user-declared names) to encapsulated device
    evaluators.

    A registry is built from an optional process (which contributes the
    conventional names below) plus explicit model declarations that
    override or extend it.

    Process-provided names: [nmos]/[pmos] (level 3), [nmos_1]/[pmos_1]
    (level 1), [nmos_bsim]/[pmos_bsim], and [npn]/[pnp]. *)

type t

type decl = {
  decl_name : string;
  decl_kind : string;  (** nmos | pmos | npn | pnp *)
  decl_level : string;  (** "1" | "3" | "bsim" (MOS); ignored for BJT *)
  decl_params : (string * float) list;
}

(** A process corner: multiplicative/additive skews applied on top of
    every resolved model — how foundries describe slow/fast silicon. *)
type corner = {
  corner_name : string;
  kp_scale : float;  (** mobility/transconductance multiplier *)
  vto_shift : float;  (** threshold shift, V (same sign both polarities) *)
  beta_scale : float;  (** BJT current-gain multiplier *)
}

val nominal_corner : corner

(** The classic five: nominal, slow, fast, and the two skewed corners.
    [Core.Corners.standard] is this list; it lives here so the compiler
    can resolve corner-named spec rows without a layer cycle. *)
val standard_corners : corner list

(** [find_corner name] looks a corner up in {!standard_corners}. *)
val find_corner : string -> corner option

(** [build ?process ?corner decls] resolves every declaration eagerly so
    unknown parameters or kinds are reported up front. The optional corner
    skews every model (defaults to {!nominal_corner}). *)
val build : ?process:string -> ?corner:corner -> decl list -> (t, string) result

val find : t -> string -> Sig.resolved option

(** [find_exn t name] @raise Failure when the model is unknown. *)
val find_exn : t -> string -> Sig.resolved
