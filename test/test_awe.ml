(* Tests for Asymptotic Waveform Evaluation: moments, Padé, reduced-order
   models, measurements, stability screening. *)

let value e =
  Netlist.Expr.eval
    { Netlist.Expr.lookup = (fun _ -> raise Not_found); call = (fun _ _ -> nan) }
    e

let circuit src = Netlist.Elab.flatten ~subckts:[] (Netlist.Parser.parse_elements src)

let lin_of src out =
  let c = circuit src in
  let lin = Mna.Linearize.build ~value ~ops:(fun _ -> None) c in
  let b = lin.Mna.Linearize.b in
  let sel = Mna.Linearize.output_vector lin ~pos:(Netlist.Circuit.find_node c out) ~neg:None in
  (lin, b, sel)

let test_moments_rc () =
  (* Single-pole RC: H(s) = 1/(1 + sRC); m_k = (-RC)^k. *)
  let lin, b, sel = lin_of "vin in 0 0 ac 1\nr1 in out 1k\nc1 out 0 1n\n" "out" in
  let m = Awe.Moments.compute lin ~b ~sel ~count:5 in
  let rc = 1e3 *. 1e-9 in
  (* The 1e-12 S regularization against floating nodes perturbs moments at
     the ~1e-9 relative level; tolerate 1e-7. *)
  for k = 0 to 4 do
    let expect = (-.rc) ** float_of_int k in
    if Float.abs (m.(k) -. expect) > 1e-7 *. Float.abs expect then
      Alcotest.failf "m%d = %.17g, expected %.17g" k m.(k) expect
  done

let prop_moments_random_single_rc =
  (* Random single-section RC: m_k = (-RC)^k exactly, and the dominant pole
     sits at 1/(2 pi RC). *)
  QCheck.Test.make ~name:"random RC section matches closed form" ~count:50
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let r = 10.0 ** QCheck.Gen.float_range 2.0 4.5 rng in
      let c = 10.0 ** QCheck.Gen.float_range (-12.5) (-9.5) rng in
      let lin, b, sel =
        lin_of (Printf.sprintf "vin in 0 0 ac 1\nr1 in out %.17g\nc1 out 0 %.17g\n" r c) "out"
      in
      let rc = r *. c in
      let m = Awe.Moments.compute lin ~b ~sel ~count:5 in
      let moments_ok =
        Array.for_all Fun.id
          (Array.init 5 (fun k ->
               let expect = (-.rc) ** float_of_int k in
               Float.abs (m.(k) -. expect) <= 1e-6 *. Float.abs expect))
      in
      let pole_ok =
        match Awe.Rom.build lin ~b ~sel with
        | Error _ -> false
        | Ok rom -> begin
            match Awe.Rom.dominant_pole_hz rom with
            | None -> false
            | Some f ->
                let expect = 1.0 /. (2.0 *. Float.pi *. rc) in
                Float.abs (f -. expect) <= 1e-3 *. expect
          end
      in
      moments_ok && pole_ok)

let prop_moments_two_section_recurrence =
  (* Random two-section RC ladder. The exact transfer function is
     H(s) = 1 / (1 + b s + a s^2) with a = R1 C1 R2 C2 and
     b = R1 C1 + R1 C2 + R2 C2, so the Maclaurin coefficients satisfy the
     recurrence m0 = 1, m1 = -b, m_k = -b m_(k-1) - a m_(k-2); the poles
     are the roots of a s^2 + b s + 1 (always real for an RC ladder). *)
  QCheck.Test.make ~name:"two-section ladder matches moment recurrence and pole formula"
    ~count:50
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let pick lo hi = 10.0 ** QCheck.Gen.float_range lo hi rng in
      let r1 = pick 2.0 4.5 and r2 = pick 2.0 4.5 in
      let c1 = pick (-12.5) (-9.5) and c2 = pick (-12.5) (-9.5) in
      let lin, b, sel =
        lin_of
          (Printf.sprintf
             "vin n0 0 0 ac 1\nr1 n0 n1 %.17g\nc1 n1 0 %.17g\nr2 n1 n2 %.17g\nc2 n2 0 %.17g\n"
             r1 c1 r2 c2)
          "n2"
      in
      let a = r1 *. c1 *. r2 *. c2 in
      let bb = (r1 *. c1) +. (r1 *. c2) +. (r2 *. c2) in
      let count = 6 in
      let expect = Array.make count 0.0 in
      expect.(0) <- 1.0;
      expect.(1) <- -.bb;
      for k = 2 to count - 1 do
        expect.(k) <- (-.bb *. expect.(k - 1)) -. (a *. expect.(k - 2))
      done;
      let m = Awe.Moments.compute lin ~b ~sel ~count in
      let moments_ok =
        Array.for_all Fun.id
          (Array.init count (fun k ->
               Float.abs (m.(k) -. expect.(k)) <= 1e-6 *. Float.abs expect.(k)))
      in
      let pole_ok =
        (* Dominant (smaller-magnitude) root of a s^2 + b s + 1 = 0. *)
        let disc = (bb *. bb) -. (4.0 *. a) in
        let p_dom = ((-.bb) +. Float.sqrt disc) /. (2.0 *. a) in
        match Awe.Rom.build lin ~b ~sel with
        | Error _ -> false
        | Ok rom -> begin
            match Awe.Rom.dominant_pole_hz rom with
            | None -> false
            | Some f ->
                let expect_hz = Float.abs p_dom /. (2.0 *. Float.pi) in
                Float.abs (f -. expect_hz) <= 1e-3 *. expect_hz
          end
      in
      moments_ok && pole_ok)

let test_pade_single_pole () =
  let rc = 1e-6 in
  let moments = Array.init 6 (fun k -> (-.rc) ** float_of_int k) in
  match Awe.Pade.fit ~q:1 moments with
  | Error e -> Alcotest.fail e
  | Ok rom ->
      Alcotest.(check int) "one pole" 1 (Array.length rom.Awe.Pade.poles);
      let p = rom.Awe.Pade.poles.(0) in
      Alcotest.(check bool) "pole at -1/RC" true
        (Float.abs (p.La.Cpx.re +. (1.0 /. rc)) < 1e-3 /. rc);
      Alcotest.(check bool) "stable" true (Awe.Pade.stable rom)

let test_pade_moment_reconstruction () =
  (* Two real poles; fitted model must reproduce the moments. *)
  let p1 = -1e4 and p2 = -1e7 in
  let k1 = 5e3 and k2 = 2e6 in
  let moment k =
    (* m_k = -(k1/p1^(k+1) + k2/p2^(k+1)) *)
    -.((k1 /. (p1 ** float_of_int (k + 1))) +. (k2 /. (p2 ** float_of_int (k + 1))))
  in
  let moments = Array.init 8 moment in
  match Awe.Pade.fit ~q:2 moments with
  | Error e -> Alcotest.fail e
  | Ok rom ->
      for k = 0 to 7 do
        let got = Awe.Pade.moment rom k in
        if Float.abs (got -. moments.(k)) > 1e-6 *. Float.abs moments.(k) then
          Alcotest.failf "moment %d mismatch: %g vs %g" k got moments.(k)
      done

let test_routh () =
  (* (s+1)(s+2)(s+3) = s^3 + 6s^2 + 11s + 6: stable *)
  Alcotest.(check bool) "stable cubic" true (Awe.Pade.routh_stable [| 6.0; 11.0; 6.0; 1.0 |]);
  (* (s-1)(s+2)(s+3) = s^3 + 4s^2 + s - 6: unstable *)
  Alcotest.(check bool) "rhp root" false (Awe.Pade.routh_stable [| -6.0; 1.0; 4.0; 1.0 |]);
  (* s^2 + s + 1: stable complex pair *)
  Alcotest.(check bool) "complex pair" true (Awe.Pade.routh_stable [| 1.0; 1.0; 1.0 |]);
  (* s^2 - s + 1: unstable complex pair *)
  Alcotest.(check bool) "rhp complex pair" false (Awe.Pade.routh_stable [| 1.0; -1.0; 1.0 |]);
  (* s^2 + 1: marginal -> reported unstable *)
  Alcotest.(check bool) "marginal" false (Awe.Pade.routh_stable [| 1.0; 0.0; 1.0 |])

let prop_routh_matches_roots =
  QCheck.Test.make ~name:"routh agrees with actual root locations" ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let d = 1 + Random.State.int rng 4 in
      let roots =
        Array.init d (fun _ ->
            (* random real roots, mixed signs, away from the axis *)
            let v = QCheck.Gen.float_range 0.3 5.0 rng in
            La.Cpx.of_float (if Random.State.bool rng then -.v else v))
      in
      let poly = La.Poly.from_roots roots in
      let truly_stable = Array.for_all (fun r -> r.La.Cpx.re < 0.0) roots in
      Awe.Pade.routh_stable poly = truly_stable)

let test_rom_matches_direct_ac () =
  (* 3-section ladder: ROM magnitude within 0.1% of direct AC in-band. *)
  let lin, b, sel =
    lin_of "vin n0 0 0 ac 1\nr1 n0 n1 1k\nc1 n1 0 1n\nr2 n1 n2 2k\nc2 n2 0 500p\nr3 n2 n3 5k\nc3 n3 0 100p\n"
      "n3"
  in
  match Awe.Rom.build lin ~b ~sel with
  | Error e -> Alcotest.fail e
  | Ok rom ->
      for k = 0 to 40 do
        let f = 10.0 ** (2.0 +. (float_of_int k /. 8.0)) in
        let direct = La.Cpx.abs (Mna.Ac.transfer lin ~b ~sel ~w:(2.0 *. Float.pi *. f)) in
        let approx = Awe.Rom.magnitude_at rom ~f in
        if direct > 1e-3 && Float.abs (approx -. direct) > 1e-3 *. direct then
          Alcotest.failf "f=%g: %g vs %g" f approx direct
      done

let prop_rom_random_rc_networks =
  (* Random RC trees: AWE matches direct AC at and below the -3 dB point. *)
  QCheck.Test.make ~name:"rom matches direct AC on random RC ladders" ~count:25
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 2 + Random.State.int rng 5 in
      let buf = Buffer.create 128 in
      Buffer.add_string buf "vin n0 0 0 ac 1\n";
      for k = 1 to n do
        let r = 10.0 ** QCheck.Gen.float_range 2.0 4.5 rng in
        let c = 10.0 ** QCheck.Gen.float_range (-12.5) (-9.5) rng in
        Buffer.add_string buf (Printf.sprintf "r%d n%d n%d %g\n" k (k - 1) k r);
        Buffer.add_string buf (Printf.sprintf "c%d n%d 0 %g\n" k k c)
      done;
      let lin, b, sel = lin_of (Buffer.contents buf) (Printf.sprintf "n%d" n) in
      match Awe.Rom.build lin ~b ~sel with
      | Error _ -> false
      | Ok rom ->
          let ok = ref true in
          for k = 0 to 30 do
            let f = 10.0 ** (1.0 +. (float_of_int k /. 5.0)) in
            let direct =
              La.Cpx.abs (Mna.Ac.transfer lin ~b ~sel ~w:(2.0 *. Float.pi *. f))
            in
            let approx = Awe.Rom.magnitude_at rom ~f in
            if direct > 0.5 && Float.abs (approx -. direct) > 1e-2 *. direct then ok := false
          done;
          !ok)

let test_rom_dc_gain_and_bw () =
  let lin, b, sel = lin_of "vin in 0 0 ac 1\nr1 in out 1k\nr2 out 0 3k\nc1 out 0 1n\n" "out" in
  match Awe.Rom.build lin ~b ~sel with
  | Error e -> Alcotest.fail e
  | Ok rom ->
      Alcotest.(check (float 1e-9)) "dc gain 0.75" 0.75 (Awe.Rom.dc_gain rom);
      (* pole at 1/(2 pi (R1||R2) C) = 1/(2 pi 750 1n) *)
      let fp = 1.0 /. (2.0 *. Float.pi *. 750.0 *. 1e-9) in
      (match Awe.Rom.bandwidth_3db rom with
      | Some f -> Alcotest.(check bool) "bw" true (Float.abs (f -. fp) < 0.01 *. fp)
      | None -> Alcotest.fail "no bw");
      match Awe.Rom.dominant_pole_hz rom with
      | Some f -> Alcotest.(check bool) "pole1" true (Float.abs (f -. fp) < 0.01 *. fp)
      | None -> Alcotest.fail "no pole"

let test_rom_zeros () =
  (* Strictly proper two-pole one-zero network: vin - R1 - out with C1 to
     ground and a series R2+C2 branch to ground. The shunt impedance is
     zero where R2 + 1/(sC2) = 0, i.e. a transfer zero at -1/(R2 C2). *)
  let lin, b, sel =
    lin_of "vin in 0 0 ac 1\nr1 in out 1k\nc1 out 0 10p\nr2 out mid 10k\nc2 mid 0 1n\n" "out"
  in
  match Awe.Rom.build lin ~b ~sel with
  | Error e -> Alcotest.fail e
  | Ok rom ->
      let zs = Awe.Rom.zeros rom in
      Alcotest.(check int) "one zero" 1 (Array.length zs);
      let expect = -1.0 /. (10e3 *. 1e-9) in
      Alcotest.(check bool) "zero location" true
        (Float.abs (zs.(0).La.Cpx.re -. expect) < 0.01 *. Float.abs expect)

let test_rom_step_response () =
  (* Single pole: step response 1 - exp(-t/RC). *)
  let lin, b, sel = lin_of "vin in 0 0 ac 1\nr1 in out 1k\nc1 out 0 1n\n" "out" in
  match Awe.Rom.build lin ~b ~sel with
  | Error e -> Alcotest.fail e
  | Ok rom ->
      let rc = 1e-6 in
      List.iter
        (fun t ->
          let got = Awe.Rom.step_response rom ~time:t in
          let expect = 1.0 -. Float.exp (-.t /. rc) in
          if Float.abs (got -. expect) > 1e-6 then
            Alcotest.failf "step(%g) = %g, expected %g" t got expect)
        [ 0.1e-6; 1e-6; 3e-6 ]

let test_rom_no_coupling () =
  (* Output unconnected to the source: all moments zero. *)
  let lin, b, sel = lin_of "vin in 0 0 ac 1\nr1 in 0 1k\nr2 out 0 1k\n" "out" in
  match Awe.Rom.build lin ~b ~sel with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected failure for zero transfer"

let test_rom_faster_than_direct () =
  (* The claim behind the whole approach: one AWE evaluation beats a
     20-point direct sweep on a mid-size circuit. *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf "vin n0 0 0 ac 1\n";
  for k = 1 to 25 do
    Buffer.add_string buf (Printf.sprintf "r%d n%d n%d 1k\nc%d n%d 0 1p\n" k (k - 1) k k k)
  done;
  let lin, b, sel = lin_of (Buffer.contents buf) "n25" in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 10 do
      f ()
    done;
    Unix.gettimeofday () -. t0
  in
  let t_awe = time (fun () -> ignore (Awe.Rom.build lin ~b ~sel)) in
  let freqs = Array.init 20 (fun k -> 10.0 ** (3.0 +. (float_of_int k /. 4.0))) in
  let t_direct = time (fun () -> ignore (Mna.Ac.sweep lin ~b ~sel freqs)) in
  Alcotest.(check bool) "awe faster" true (t_awe < t_direct)


let test_rom_settling_time () =
  (* Single pole RC (tau = 1us): 1%% settling at -tau*ln(0.01) = 4.6 us. *)
  let lin, b, sel = lin_of "vin in 0 0 ac 1\nr1 in out 1k\nc1 out 0 1n\n" "out" in
  match Awe.Rom.build lin ~b ~sel with
  | Error e -> Alcotest.fail e
  | Ok rom -> begin
      match Awe.Rom.settling_time rom ~tol:0.01 with
      | Some t ->
          let expect = 1e-6 *. Float.log 100.0 in
          Alcotest.(check bool) "1% settling near 4.6us" true
            (Float.abs (t -. expect) < 0.15 *. expect)
      | None -> Alcotest.fail "no settling time"
    end

let () =
  Alcotest.run "awe"
    [
      ( "moments",
        [
          Alcotest.test_case "rc analytic" `Quick test_moments_rc;
          QCheck_alcotest.to_alcotest prop_moments_random_single_rc;
          QCheck_alcotest.to_alcotest prop_moments_two_section_recurrence;
        ] );
      ( "pade",
        [
          Alcotest.test_case "single pole" `Quick test_pade_single_pole;
          Alcotest.test_case "moment reconstruction" `Quick test_pade_moment_reconstruction;
          Alcotest.test_case "routh" `Quick test_routh;
          QCheck_alcotest.to_alcotest prop_routh_matches_roots;
        ] );
      ( "rom",
        [
          Alcotest.test_case "matches direct AC" `Quick test_rom_matches_direct_ac;
          QCheck_alcotest.to_alcotest prop_rom_random_rc_networks;
          Alcotest.test_case "dc gain and bandwidth" `Quick test_rom_dc_gain_and_bw;
          Alcotest.test_case "zeros" `Quick test_rom_zeros;
          Alcotest.test_case "step response" `Quick test_rom_step_response;
          Alcotest.test_case "no coupling" `Quick test_rom_no_coupling;
          Alcotest.test_case "settling time" `Quick test_rom_settling_time;
          Alcotest.test_case "faster than direct" `Quick test_rom_faster_than_direct;
        ] );
    ]
