(* Domain-parallel invariants of the arena memory model (docs/PARALLEL.md):
   the multi-start winner is bit-identical for every jobs value, the
   sharded telemetry merge demultiplexes to the exact sequential streams,
   and a per-domain evaluator arena reused across restarts (via
   Eval.Incr.reset) behaves like a fresh one. *)

let compile name =
  let e = Option.get (Suite.Ckts.find name) in
  match Core.Compile.compile_source e.Suite.Ckts.source with
  | Ok p -> p
  | Error msg -> Alcotest.failf "%s: %s" name msg

let feq_bits a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_bits label a b =
  if not (feq_bits a b) then Alcotest.failf "%s differs: %h vs %h" label a b

let check_state label (a : Core.State.t) (b : Core.State.t) =
  Alcotest.(check int)
    (label ^ ": arity")
    (Array.length a.Core.State.values)
    (Array.length b.Core.State.values);
  Array.iteri
    (fun i v -> check_bits (Printf.sprintf "%s: values.(%d)" label i) v b.Core.State.values.(i))
    a.Core.State.values;
  Alcotest.(check bool) (label ^ ": grid index") true (a.Core.State.grid_index = b.Core.State.grid_index)

let check_predicted label a b =
  List.iter2
    (fun (na, va) (nb, vb) ->
      Alcotest.(check string) (label ^ ": spec name") na nb;
      match (va, vb) with
      | None, None -> ()
      | Some x, Some y -> check_bits (label ^ ": " ^ na) x y
      | _ -> Alcotest.failf "%s: %s measurability differs" label na)
    a b

(* --- Winner bit-identity across jobs counts, arena layout active. --- *)

let test_winner_jobs_invariant () =
  let p = compile "simple-ota" in
  let run jobs = Core.Oblx.best_of ~seed:11 ~moves:700 ~jobs ~runs:4 p in
  let best1, all1 = run 1 in
  let best8, all8 = run 8 in
  check_bits "winner best_cost" best1.Core.Oblx.best_cost best8.Core.Oblx.best_cost;
  check_state "winner state" best1.Core.Oblx.final best8.Core.Oblx.final;
  check_predicted "winner predictions" best1.Core.Oblx.predicted best8.Core.Oblx.predicted;
  Alcotest.(check int) "all runs returned" (List.length all1) (List.length all8);
  List.iteri
    (fun k ((r1 : Core.Oblx.result), (r8 : Core.Oblx.result)) ->
      check_bits (Printf.sprintf "run %d best_cost" k) r1.Core.Oblx.best_cost
        r8.Core.Oblx.best_cost;
      Alcotest.(check int) (Printf.sprintf "run %d moves" k) r1.Core.Oblx.moves r8.Core.Oblx.moves;
      check_state (Printf.sprintf "run %d state" k) r1.Core.Oblx.final r8.Core.Oblx.final)
    (List.combine all1 all8)

(* --- Sharded telemetry merges deterministically. --- *)

let collect_events p ~jobs ~runs ~seed ~moves =
  let ring = Obs.Sink.Ring.create ~capacity:400_000 in
  let obs = Obs.Trace.make ~level:Obs.Event.Moves [ Obs.Sink.Ring.sink ring ] in
  let _ = Core.Oblx.best_of ~seed ~moves ~jobs ~obs ~runs p in
  Alcotest.(check int) "nothing dropped" 0 (Obs.Sink.Ring.dropped ring);
  Obs.Sink.Ring.contents ring

let per_restart evs k = List.filter (fun (e : Obs.Event.t) -> e.Obs.Event.restart = k) evs

let check_same_streams label runs a b =
  (* Equal totals + identical per-restart order = same multiset, same
     per-restart sequences; only the interleaving may differ. *)
  Alcotest.(check int) (label ^ ": same event total") (List.length a) (List.length b);
  for k = 0 to runs - 1 do
    let xs = per_restart a k and ys = per_restart b k in
    Alcotest.(check int) (Printf.sprintf "%s: restart %d count" label k) (List.length xs)
      (List.length ys);
    List.iter2
      (fun x y ->
        match Obs.Event.diff ~tol:0.0 x y with
        | None -> ()
        | Some d -> Alcotest.failf "%s: restart %d stream differs: %s" label k d)
      xs ys
  done

let test_shard_merge_determinism () =
  let p = compile "simple-ota" in
  let runs = 3 in
  let collect jobs = collect_events p ~jobs ~runs ~seed:9 ~moves:600 in
  let evs1 = collect 1 in
  let evs4 = collect 4 in
  let evs4' = collect 4 in
  (* Sharded emission loses nothing relative to sequential... *)
  check_same_streams "jobs=1 vs jobs=4" runs evs1 evs4;
  (* ...and two parallel runs agree with each other, event for event. *)
  check_same_streams "jobs=4 vs jobs=4 (rerun)" runs evs4 evs4'

(* --- Arena reuse: a reset session is a fresh session. --- *)

let test_session_reuse_across_restarts () =
  let p = compile "simple-ota" in
  let session = Core.Eval.Incr.create p in
  let reused seed = Core.Oblx.synthesize ~seed ~moves:500 ~session p in
  let fresh seed = Core.Oblx.synthesize ~seed ~moves:500 p in
  (* Two sequential restarts through ONE session: the second must not see
     any state leaked from the first. *)
  let a1 = reused 3 in
  let a2 = reused 5 in
  let f1 = fresh 3 in
  let f2 = fresh 5 in
  List.iter
    (fun (label, (a : Core.Oblx.result), (f : Core.Oblx.result)) ->
      check_bits (label ^ ": best_cost") f.Core.Oblx.best_cost a.Core.Oblx.best_cost;
      Alcotest.(check int) (label ^ ": moves") f.Core.Oblx.moves a.Core.Oblx.moves;
      Alcotest.(check int) (label ^ ": accepted") f.Core.Oblx.accepted a.Core.Oblx.accepted;
      check_state (label ^ ": final state") f.Core.Oblx.final a.Core.Oblx.final;
      check_predicted (label ^ ": predictions") f.Core.Oblx.predicted a.Core.Oblx.predicted)
    [ ("restart 1", a1, f1); ("restart 2", a2, f2) ]

let test_reset_equals_fresh () =
  let p = compile "two-stage" in
  let w = Core.Weights.create () in
  let st = Core.State.snapshot p.Core.Problem.state0 in
  let dirty_then_reset =
    let ss = Core.Eval.Incr.create p in
    (* drive the session somewhere else first *)
    let st' = Core.State.snapshot st in
    st'.Core.State.values.(0) <- Core.State.clamp st' 0 (st'.Core.State.values.(0) *. 1.5);
    ignore (Core.Eval.Incr.cost ss w st');
    ignore (Core.Eval.Incr.cost ss w st);
    Core.Eval.Incr.reset ss;
    ss
  in
  let fresh = Core.Eval.Incr.create p in
  let a = Core.Eval.Incr.cost dirty_then_reset w st in
  let b = Core.Eval.Incr.cost fresh w st in
  check_bits "total" b.Core.Eval.total a.Core.Eval.total;
  check_bits "c_obj" b.Core.Eval.c_obj a.Core.Eval.c_obj;
  check_bits "c_perf" b.Core.Eval.c_perf a.Core.Eval.c_perf;
  check_bits "c_dev" b.Core.Eval.c_dev a.Core.Eval.c_dev;
  check_bits "c_dc" b.Core.Eval.c_dc a.Core.Eval.c_dc;
  (* counters restart from zero, like a fresh session's *)
  let sa = Core.Eval.Incr.stats dirty_then_reset and sb = Core.Eval.Incr.stats fresh in
  Alcotest.(check int) "full evals" sb.Core.Eval.Incr.full_evals sa.Core.Eval.Incr.full_evals;
  Alcotest.(check int) "incr evals" sb.Core.Eval.Incr.incr_evals sa.Core.Eval.Incr.incr_evals

(* --- The perf callback accounts for every domain and restart. --- *)

let test_perf_report () =
  let p = compile "simple-ota" in
  let report = ref None in
  let ring = Obs.Sink.Ring.create ~capacity:100_000 in
  let obs = Obs.Trace.make ~level:Obs.Event.Stage [ Obs.Sink.Ring.sink ring ] in
  let _ =
    Core.Oblx.best_of ~seed:2 ~moves:400 ~jobs:2 ~runs:3 ~obs
      ~perf:(fun r -> report := Some r)
      p
  in
  match !report with
  | None -> Alcotest.fail "perf callback never fired"
  | Some r ->
      Alcotest.(check int) "jobs" 2 r.Core.Oblx.pr_jobs;
      Alcotest.(check int) "runs" 3 r.Core.Oblx.pr_runs;
      Alcotest.(check int) "one report per domain" 2 (List.length r.Core.Oblx.pr_domains);
      let claimed =
        List.fold_left
          (fun acc (d : Core.Oblx.domain_report) -> acc + d.Core.Oblx.d_restarts)
          0 r.Core.Oblx.pr_domains
      in
      Alcotest.(check int) "every restart claimed exactly once" 3 claimed;
      List.iter
        (fun (d : Core.Oblx.domain_report) ->
          Alcotest.(check bool) "wall time sane" true (d.Core.Oblx.d_wall_s >= 0.0);
          Alcotest.(check bool) "gc counters sane" true
            (d.Core.Oblx.d_minor_collections >= 0 && d.Core.Oblx.d_minor_words >= 0.0))
        r.Core.Oblx.pr_domains;
      (match r.Core.Oblx.pr_merge with
      | None -> Alcotest.fail "sinks attached and jobs>1: expected merge stats"
      | Some m ->
          Alcotest.(check int) "one shard buffer per restart" 3 m.Obs.Shard.sh_buffers;
          Alcotest.(check bool) "events flowed through the shard" true (m.Obs.Shard.sh_events > 0);
          Alcotest.(check bool) "batching happened" true (m.Obs.Shard.sh_batches > 0))

let () =
  Alcotest.run "parallel"
    [
      ( "bit-identity",
        [
          Alcotest.test_case "winner independent of jobs" `Quick test_winner_jobs_invariant;
          Alcotest.test_case "session reuse across restarts" `Quick
            test_session_reuse_across_restarts;
          Alcotest.test_case "reset equals fresh" `Quick test_reset_equals_fresh;
        ] );
      ( "telemetry merge",
        [ Alcotest.test_case "deterministic shard merge" `Quick test_shard_merge_determinism ] );
      ( "perf accounting",
        [ Alcotest.test_case "per-domain report" `Quick test_perf_report ] );
    ]
