(* Differential numerics harness for La.Lowrank: every updated solve is
   checked against a fresh La.Lu.factor of the explicitly perturbed matrix.
   The matrices are MNA-shaped — diagonally dominant conductance stamps whose
   scales span 1e-12 .. 1e3 siemens, the range a transistor-level netlist
   actually produces — plus near-singular and permutation-heavy pivot cases.
   This suite gates the incremental AWE path: if it fails, screening solves
   are drifting from the exact factorization they claim to approximate. *)

let rel_err x y =
  let n = Array.length x in
  let num = ref 0.0 and den = ref 0.0 in
  for i = 0 to n - 1 do
    num := Float.max !num (Float.abs (x.(i) -. y.(i)));
    den := Float.max !den (Float.abs y.(i))
  done;
  !num /. (1.0 +. !den)

(* An MNA-shaped conductance matrix: symmetric stamp pattern
   G[i,i] += g, G[j,j] += g, G[i,j] -= g, G[j,i] -= g per "element",
   with conductances drawn log-uniformly from 1e-12 .. 1e3. *)
let mna_matrix rng n =
  let g = La.Mat.create n n in
  let stamp i j c =
    La.Mat.add_to g i i c;
    if j >= 0 then begin
      La.Mat.add_to g j j c;
      La.Mat.add_to g i j (-.c);
      La.Mat.add_to g j i (-.c)
    end
  in
  let conductance () =
    let e = QCheck.Gen.float_range (-12.0) 3.0 rng in
    10.0 ** e
  in
  (* A chain keeps it connected; extra random pairs add fill. *)
  for i = 0 to n - 2 do
    stamp i (i + 1) (conductance ())
  done;
  stamp 0 (-1) (conductance ());
  let extras = 1 + Random.State.int rng (2 * n) in
  for _ = 1 to extras do
    let i = Random.State.int rng n and j = Random.State.int rng n in
    if i <> j then stamp i j (conductance ())
    else stamp i (-1) (conductance ())
  done;
  g

(* A rank-r element-stamp style delta: r random stamps collected densely. *)
let stamp_delta rng n r =
  let d = La.Mat.create n n in
  let cols = ref [] in
  for _ = 1 to r do
    let i = Random.State.int rng n in
    let j = Random.State.int rng n in
    let e = QCheck.Gen.float_range (-6.0) 2.0 rng in
    let c = 10.0 ** e in
    if i <> j then begin
      La.Mat.add_to d i i c;
      La.Mat.add_to d j j c;
      La.Mat.add_to d i j (-.c);
      La.Mat.add_to d j i (-.c);
      cols := i :: j :: !cols
    end
    else begin
      La.Mat.add_to d i i c;
      cols := i :: !cols
    end
  done;
  let cols = List.sort_uniq compare !cols in
  (d, Array.of_list cols)

let fresh_solve a b =
  La.Lu.solve (La.Lu.factor a) b

let random_rhs rng n = Array.init n (fun _ -> QCheck.Gen.float_range (-5.0) 5.0 rng)

(* The SMW forward error is governed by the conditioning of *both* the base
   (the solves route through it) and the target, so the differential
   tolerance scales with the worse of the two. The probe-based
   [rcond_estimate] only *overestimates* rcond (the probe lower-bounds
   ||A^{-1}|| and can miss the bad direction entirely on these 15-decade
   conductance spans), so the estimate is sharpened with the amplification
   the reference solve actually exhibited: ||y||/||b|| also lower-bounds
   ||A'^{-1}||. The floor stays a loose 1e-6 — catastrophic SMW errors (a
   wrong formula, a lost permutation) are O(1), which this still catches —
   while the well-scaled property below holds a tight 1e-8 bound. Systems
   measuring below rcond 1e-13 are hopeless for any solver and skipped. *)
let cond_tolerance base a a' ~b ~y =
  let rc_a = La.Lu.rcond_estimate base a in
  let rc_a' =
    try
      let lu' = La.Lu.factor a' in
      La.Lu.rcond_estimate lu' a'
    with La.Lu.Singular _ -> 0.0
  in
  let nb = Float.max (La.Vec.norm_inf b) 1e-30 in
  let amp = La.Vec.norm_inf y /. nb in
  let rc_emp = 1.0 /. Float.max 1e-300 (La.Mat.norm_inf a' *. amp) in
  (* The same sharpening for the base: the SMW route solves A, not A', so
     its amplification of this rhs bounds the achievable accuracy too. *)
  let amp_base = La.Vec.norm_inf (La.Lu.solve base b) /. nb in
  let rc_emp_base = 1.0 /. Float.max 1e-300 (La.Mat.norm_inf a *. amp_base) in
  let min_rc = Float.min (Float.min rc_a rc_emp_base) (Float.min rc_a' rc_emp) in
  if min_rc < 1e-13 then None
  else Some (Float.max 1e-6 (1e-12 /. min_rc))

(* --- rank-1..3 update_cols vs fresh factorization --- *)

let prop_update_cols_matches_fresh =
  QCheck.Test.make ~name:"lowrank: update_cols solve matches fresh factor" ~count:200
    QCheck.(triple (int_range 2 14) (int_range 1 3) (int_range 0 100000))
    (fun (n, r, seed) ->
      let rng = Random.State.make [| seed; n; r |] in
      let a = mna_matrix rng n in
      let base = La.Lu.factor a in
      let delta, cols = stamp_delta rng n r in
      let a' = La.Mat.add a delta in
      let b = random_rhs rng n in
      match La.Lowrank.update_cols base ~cols ~delta with
      | Error _ ->
          (* The guard refused: the caller falls back to a fresh
             factorization, which is always safe. Acceptance coverage is
             enforced by the well-scaled property below. *)
          true
      | Ok lr ->
          if La.Lowrank.rank lr <> Array.length cols then false
          else begin
            match fresh_solve a' b with
            | exception La.Lu.Singular _ -> true
            | y -> (
                match cond_tolerance base a a' ~b ~y with
                | None -> true
                | Some tol -> rel_err (La.Lowrank.solve lr b) y < tol)
          end)

(* --- well-scaled systems: the guard must ACCEPT and the solve be tight --- *)

let prop_wellscaled_accepts =
  QCheck.Test.make ~name:"lowrank: well-scaled updates accepted and tight" ~count:200
    QCheck.(triple (int_range 2 14) (int_range 1 3) (int_range 0 100000))
    (fun (n, r, seed) ->
      let rng = Random.State.make [| seed + 13; n; r |] in
      (* Conductances confined to 1e-2 .. 1e2: condition stays moderate, so
         a refusal here would mean the guard is uselessly conservative. *)
      let g = La.Mat.create n n in
      let stamp i j c =
        La.Mat.add_to g i i c;
        if j >= 0 then begin
          La.Mat.add_to g j j c;
          La.Mat.add_to g i j (-.c);
          La.Mat.add_to g j i (-.c)
        end
      in
      let conductance () = 10.0 ** QCheck.Gen.float_range (-2.0) 2.0 rng in
      for i = 0 to n - 2 do
        stamp i (i + 1) (conductance ())
      done;
      for i = 0 to n - 1 do
        stamp i (-1) (conductance ())
      done;
      let base = La.Lu.factor g in
      let delta = La.Mat.create n n in
      let cols = ref [] in
      for _ = 1 to r do
        let i = Random.State.int rng n in
        La.Mat.add_to delta i i (10.0 ** QCheck.Gen.float_range (-2.0) 1.0 rng);
        cols := i :: !cols
      done;
      let cols = Array.of_list (List.sort_uniq compare !cols) in
      let a' = La.Mat.add g delta in
      let b = random_rhs rng n in
      match La.Lowrank.update_cols base ~cols ~delta with
      | Error e -> QCheck.Test.fail_reportf "guard refused a benign update: %s" e
      | Ok lr ->
          let x = La.Lowrank.solve lr b in
          let y = fresh_solve a' b in
          rel_err x y < 1e-8)

(* --- general dense-UV update vs fresh factorization --- *)

let prop_update_dense_matches_fresh =
  QCheck.Test.make ~name:"lowrank: dense U,V update matches fresh factor" ~count:150
    QCheck.(triple (int_range 2 12) (int_range 1 3) (int_range 0 100000))
    (fun (n, r, seed) ->
      let rng = Random.State.make [| seed + 31; n; r |] in
      let a = mna_matrix rng n in
      let base = La.Lu.factor a in
      let u = La.Mat.init n r (fun _ _ -> QCheck.Gen.float_range (-2.0) 2.0 rng) in
      let v = La.Mat.init n r (fun _ _ -> QCheck.Gen.float_range (-2.0) 2.0 rng) in
      (* A' = A + U V^T, built explicitly for the reference factorization. *)
      let a' = La.Mat.copy a in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let acc = ref 0.0 in
          for k = 0 to r - 1 do
            acc := !acc +. (La.Mat.get u i k *. La.Mat.get v j k)
          done;
          La.Mat.add_to a' i j !acc
        done
      done;
      let b = random_rhs rng n in
      match La.Lowrank.update base ~u ~v with
      | Error _ -> true
      | Ok lr -> (
          match fresh_solve a' b with
          | exception La.Lu.Singular _ -> true
          | y -> (
              match cond_tolerance base a a' ~b ~y with
              | None -> true
              | Some tol -> rel_err (La.Lowrank.solve lr b) y < tol)))

(* --- solve_transposed consistency --- *)

let prop_transposed_consistent =
  QCheck.Test.make ~name:"lowrank: solve_transposed solves (A+UV^T)^T" ~count:150
    QCheck.(triple (int_range 2 12) (int_range 1 3) (int_range 0 100000))
    (fun (n, r, seed) ->
      let rng = Random.State.make [| seed + 91; n; r |] in
      let a = mna_matrix rng n in
      let base = La.Lu.factor a in
      let delta, cols = stamp_delta rng n r in
      let a' = La.Mat.add a delta in
      let b = random_rhs rng n in
      match La.Lowrank.update_cols base ~cols ~delta with
      | Error _ -> true
      | Ok lr -> (
          match La.Lu.solve_transposed (La.Lu.factor a') b with
          | exception La.Lu.Singular _ -> true
          | y -> (
              match cond_tolerance base a a' ~b ~y with
              | None -> true
              | Some tol -> rel_err (La.Lowrank.solve_transposed lr b) y < tol)))

(* --- permuted-pivot cases: force pivoting in the base factorization --- *)

let prop_permuted_pivots =
  QCheck.Test.make ~name:"lowrank: survives pivot-permuted base" ~count:100
    QCheck.(pair (int_range 3 10) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed + 17; n |] in
      let a = mna_matrix rng n in
      (* Scramble the row magnitudes so partial pivoting must permute:
         scale row i by 10^(±k). Keeps nonsingularity, destroys diagonal
         dominance of the raw ordering. *)
      for i = 0 to n - 1 do
        let s = 10.0 ** float_of_int (Random.State.int rng 7 - 3) in
        for j = 0 to n - 1 do
          La.Mat.set a i j (La.Mat.get a i j *. s)
        done
      done;
      match La.Lu.factor a with
      | exception La.Lu.Singular _ -> true
      | base ->
          let delta, cols = stamp_delta rng n 2 in
          let a' = La.Mat.add a delta in
          let b = random_rhs rng n in
          (match La.Lowrank.update_cols base ~cols ~delta with
          | Error _ -> true
          | Ok lr -> (
              match fresh_solve a' b with
              | exception La.Lu.Singular _ -> true
              | y -> (
                  match cond_tolerance base a a' ~b ~y with
                  | None -> true
                  | Some tol -> rel_err (La.Lowrank.solve lr b) y < tol))))

(* --- fallback trigger on ill-conditioned updates --- *)

let test_fallback_singularizing_update () =
  (* A rank-1 update that makes the matrix exactly singular:
     A = I (2x2), delta = diag(-1, 0) applied to column 0 makes
     A' = diag(0, 1). The capacitance matrix 1 + v^T A^{-1} u = 0. *)
  let a = La.Mat.identity 2 in
  let base = La.Lu.factor a in
  let delta = La.Mat.create 2 2 in
  La.Mat.set delta 0 0 (-1.0);
  (match La.Lowrank.update_cols base ~cols:[| 0 |] ~delta with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected the guard to refuse a singularizing update");
  (* Nearly singularizing: delta = diag(-1 + 1e-14) leaves cap ~ 1e-14,
     far below the default rcond_min of 1e-10. *)
  let delta2 = La.Mat.create 2 2 in
  La.Mat.set delta2 0 0 (-1.0 +. 1e-14);
  match La.Lowrank.update_cols base ~cols:[| 0 |] ~delta:delta2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected the rcond guard to refuse an ill-conditioned update"

let test_fallback_growth () =
  (* A comfortably conditioned base whose inverse amplifies the update
     columns past growth_max when the bound is set tight. *)
  let a = La.Mat.of_arrays [| [| 1e-6; 0.0 |]; [| 0.0; 1.0 |] |] in
  let base = La.Lu.factor a in
  let delta = La.Mat.create 2 2 in
  La.Mat.set delta 0 0 1.0;
  (* A^{-1} column 0 scale is 1e6: refused at growth_max 1e3, fine at 1e12. *)
  (match La.Lowrank.update_cols ~growth_max:1e3 base ~cols:[| 0 |] ~delta with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected the growth guard to trip");
  match La.Lowrank.update_cols base ~cols:[| 0 |] ~delta with
  | Error e -> Alcotest.failf "default growth bound should accept: %s" e
  | Ok lr ->
      let x = La.Lowrank.solve lr [| 1.0; 1.0 |] in
      let y = fresh_solve (La.Mat.add a delta) [| 1.0; 1.0 |] in
      if rel_err x y > 1e-9 then Alcotest.fail "growth-accepted solve disagrees"

let test_rank0_update_is_base () =
  (* An empty column set degenerates to the retained factorization. *)
  let rng = Random.State.make [| 4242 |] in
  let a = mna_matrix rng 6 in
  let base = La.Lu.factor a in
  let delta = La.Mat.create 6 6 in
  match La.Lowrank.update_cols base ~cols:[||] ~delta with
  | Error e -> Alcotest.failf "rank-0 update refused: %s" e
  | Ok lr ->
      Alcotest.(check int) "rank" 0 (La.Lowrank.rank lr);
      let b = random_rhs rng 6 in
      let x = La.Lowrank.solve lr b in
      let y = La.Lu.solve base b in
      Array.iteri
        (fun i xi ->
          if Int64.bits_of_float xi <> Int64.bits_of_float y.(i) then
            Alcotest.failf "rank-0 solve not bit-identical at %d" i)
        x

let test_in_place_matches_pure () =
  let rng = Random.State.make [| 777 |] in
  let a = mna_matrix rng 8 in
  let base = La.Lu.factor a in
  let delta, cols = stamp_delta rng 8 2 in
  match La.Lowrank.update_cols base ~cols ~delta with
  | Error e -> Alcotest.failf "update refused: %s" e
  | Ok lr ->
      let b = random_rhs rng 8 in
      let x = La.Lowrank.solve lr b in
      let bi = Array.copy b in
      La.Lowrank.solve_in_place lr bi;
      Array.iteri
        (fun i xi ->
          if Int64.bits_of_float xi <> Int64.bits_of_float bi.(i) then
            Alcotest.failf "solve_in_place differs at %d" i)
        x;
      let xt = La.Lowrank.solve_transposed lr b in
      let bt = Array.copy b in
      La.Lowrank.solve_transposed_in_place lr bt;
      Array.iteri
        (fun i xi ->
          if Int64.bits_of_float xi <> Int64.bits_of_float bt.(i) then
            Alcotest.failf "solve_transposed_in_place differs at %d" i)
        xt

let () =
  Alcotest.run "lowrank"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_update_cols_matches_fresh;
          QCheck_alcotest.to_alcotest prop_wellscaled_accepts;
          QCheck_alcotest.to_alcotest prop_update_dense_matches_fresh;
          QCheck_alcotest.to_alcotest prop_transposed_consistent;
          QCheck_alcotest.to_alcotest prop_permuted_pivots;
        ] );
      ( "guards",
        [
          Alcotest.test_case "singularizing update refused" `Quick
            test_fallback_singularizing_update;
          Alcotest.test_case "growth bound" `Quick test_fallback_growth;
        ] );
      ( "api",
        [
          Alcotest.test_case "rank-0 degenerates to base" `Quick test_rank0_update_is_base;
          Alcotest.test_case "in-place matches pure" `Quick test_in_place_matches_pure;
        ] );
    ]
