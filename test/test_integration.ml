(* End-to-end integration tests: the complete ASTRX -> OBLX -> verification
   pipeline on small problems, and the agreement between OBLX's AWE-based
   predictions and the reference simulator that is the paper's headline
   accuracy claim. *)

(* A deliberately small problem so the full loop runs in seconds: size a
   single common-source stage for gain and bandwidth. *)
let cs_problem =
  {|.title common-source stage
.process p1u2
.param vddval=5

.subckt amp in out vdd vss
m1 out in vss vss nmos w='w' l='l'
m2 out nbp vdd vdd pmos w='wp' l='l'
vbp vdd nbp 'vb'
.ends

.var w min=2u max=200u steps=80
.var l min=1.2u max=10u steps=40
.var wp min=2u max=200u steps=80
.var vb min=0.5 max=2.5

.jig main
xamp in out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vin in 0 1.2 ac 1
cl1 out 0 2p
.pz tf v(out) vin
.endjig

.bias
xamp in out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vin in 0 1.2
cl1 out 0 2p
.endbias

.obj gain 'db(dc_gain(tf))' good=30 bad=5
.spec ugf 'ugf(tf)' good=5meg bad=100k
.spec pwr 'power()' good=2m bad=20m
|}

let synthesize () =
  match Core.Compile.compile_source cs_problem with
  | Error e -> Alcotest.failf "compile: %s" e
  | Ok p ->
      let r = Core.Oblx.synthesize ~seed:8 ~moves:6000 p in
      (p, r)

let test_end_to_end_meets_constraints () =
  let p, r = synthesize () in
  List.iter
    (fun (s : Core.Problem.spec) ->
      match (s.kind, List.assoc s.Core.Problem.spec_name r.Core.Oblx.predicted) with
      | _, None -> Alcotest.failf "%s not measured" s.spec_name
      | Netlist.Ast.Constraint_ge, Some v ->
          if v < s.good *. 0.95 then Alcotest.failf "%s = %g below %g" s.spec_name v s.good
      | Netlist.Ast.Constraint_le, Some v ->
          if v > s.good *. 1.05 then Alcotest.failf "%s = %g above %g" s.spec_name v s.good
      | (Netlist.Ast.Objective_max | Netlist.Ast.Objective_min), Some _ -> ())
    p.Core.Problem.specs

let test_prediction_matches_simulation () =
  (* The Table-2 claim: for small-signal specs, OBLX's relaxed-dc + AWE
     prediction matches the independent simulator within a few percent. *)
  let p, r = synthesize () in
  match Core.Verify.simulate_specs p r.Core.Oblx.final with
  | Error e -> Alcotest.failf "verify: %s" e
  | Ok sims ->
      List.iter
        (fun (name, sim) ->
          match (sim, List.assoc name r.predicted) with
          | Ok sv, Some pv ->
              let rel = Float.abs (pv -. sv) /. (1.0 +. Float.abs sv) in
              if rel > 0.05 then Alcotest.failf "%s: oblx %g vs sim %g" name pv sv
          | Ok _, None -> Alcotest.failf "%s unmeasured by oblx" name
          | Error e, _ -> Alcotest.failf "%s: simulator failed: %s" name e)
        sims

let test_final_design_is_dc_correct () =
  let p, r = synthesize () in
  (match Core.Verify.kcl_abs_error p r.Core.Oblx.final with
  | Ok e -> Alcotest.(check bool) "KCL < 1 nA" true (e < 1e-9)
  | Error e -> Alcotest.failf "kcl: %s" e);
  match Core.Verify.bias_voltage_error p r.Core.Oblx.final with
  | Ok e -> Alcotest.(check bool) "voltages within 1 mV of Newton" true (e < 1e-3)
  | Error e -> Alcotest.failf "dv: %s" e

let test_multi_start_smoke () =
  (* The domain-parallel multi-start path end-to-end on a real benchmark:
     4 restarts over 2 domains must all complete, agree with the winner
     selection rule, and leave every spec measured. *)
  match Suite.Ckts.find "simple-ota" with
  | None -> Alcotest.fail "simple-ota benchmark missing"
  | Some e -> begin
      match Core.Compile.compile_source e.Suite.Ckts.source with
      | Error msg -> Alcotest.failf "compile: %s" msg
      | Ok p ->
          let best, all = Core.Oblx.best_of ~seed:3 ~moves:1500 ~jobs:2 ~runs:4 p in
          Alcotest.(check int) "all restarts reported" 4 (List.length all);
          List.iter
            (fun (r : Core.Oblx.result) ->
              Alcotest.(check bool) "winner is the minimum" true
                (best.Core.Oblx.best_cost <= r.best_cost);
              Alcotest.(check bool) "run not cut short by default" false r.cut_short)
            all;
          List.iter
            (fun (s : Core.Problem.spec) ->
              match List.assoc s.Core.Problem.spec_name best.Core.Oblx.predicted with
              | Some _ -> ()
              | None -> Alcotest.failf "%s unmeasured on winner" s.spec_name)
            p.Core.Problem.specs
    end

let test_quickstart_compiles () =
  (* Every shipped benchmark + the README quickstart parse and compile. *)
  List.iter
    (fun (e : Suite.Ckts.entry) ->
      match Core.Compile.compile_source e.Suite.Ckts.source with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s: %s" e.name msg)
    Suite.Ckts.all

let test_manual_novel_cascode_simulates () =
  (* The Table-3 "manual" reference design must bias up and have healthy
     gain through the reference simulator. *)
  match Core.Compile.compile_source Suite.Novel_folded_cascode.source with
  | Error e -> Alcotest.fail e
  | Ok p ->
      let st = Core.State.snapshot p.Core.Problem.state0 in
      Array.iteri
        (fun i info ->
          match info with
          | Core.State.User { name; _ } -> begin
              match List.assoc_opt name Suite.Novel_folded_cascode.manual_sizing with
              | Some v -> Core.State.set_initial st i v
              | None -> ()
            end
          | Core.State.Node_voltage _ -> ())
        st.Core.State.info;
      (match Core.Verify.simulate_specs p st with
      | Error e -> Alcotest.failf "manual design: %s" e
      | Ok sims -> begin
          match List.assoc "adm" sims with
          | Ok gain -> Alcotest.(check bool) "manual gain > 40 dB" true (gain > 40.0)
          | Error e -> Alcotest.failf "adm: %s" e
        end)

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "meets constraints" `Slow test_end_to_end_meets_constraints;
          Alcotest.test_case "prediction = simulation" `Slow test_prediction_matches_simulation;
          Alcotest.test_case "dc-correct at freeze" `Slow test_final_design_is_dc_correct;
          Alcotest.test_case "suite compiles" `Quick test_quickstart_compiles;
          Alcotest.test_case "multi-start smoke" `Slow test_multi_start_smoke;
          Alcotest.test_case "manual novel cascode" `Slow test_manual_novel_cascode_simulates;
        ] );
    ]
