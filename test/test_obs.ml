(* Tests for the telemetry subsystem: JSON round-trips, sinks, trace-level
   filtering, the annealer's event stream, replay of recorded traces against
   the compiled cost function, and the committed golden trace. *)

let mk ?(restart = 0) ?(moves = 0) ?(temperature = 1.5) ?(acceptance = 0.5) body =
  { Obs.Event.restart; moves; temperature; acceptance; body }

let sample_events =
  [
    mk ~moves:0 (Obs.Event.Restart { total_moves = 100; classes = [| "a"; "b" |] });
    mk ~moves:1
      (Obs.Event.Move
         {
           cls = 1;
           class_name = "b";
           decision = Obs.Event.Accepted;
           delta_cost = -0.25;
           cost = 3.5;
           state = Some ([| 1.0; 2.5e-13; -0.0 |], [| 3; 0; 41 |]);
         });
    mk ~moves:2
      (Obs.Event.Move
         {
           cls = 0;
           class_name = "a";
           decision = Obs.Event.Rejected;
           delta_cost = 0.75;
           cost = 3.5;
           state = None;
         });
    mk ~moves:3 ~restart:2
      (Obs.Event.Move
         {
           cls = 0;
           class_name = "a";
           decision = Obs.Event.Inapplicable;
           delta_cost = 0.0;
           cost = 3.5;
           state = None;
         });
    mk ~moves:50
      (Obs.Event.Stage { stage = 1; current_cost = 1.25; best_cost = 1.0; probs = [| 0.3; 0.7 |] });
    mk ~moves:50
      (Obs.Event.Weight_update
         { w_perf = 2.0; w_dev = 1.0; w_dc = 4.0; c_obj = 0.5; c_perf = 0.1; c_dev = 0.0; c_dc = 0.2 });
    mk ~moves:50
      (Obs.Event.Evals
         {
           full = 2;
           incr = 48;
           dirty_vars = 61;
           op_hits = 400;
           op_misses = 44;
           rom_builds = 9;
           rom_reuses = 87;
           spec_evals = 120;
           spec_reuses = 360;
           resyncs = 1;
           resync_mismatches = 0;
           probes = 24;
           probe_rom_builds = 6;
           probe_fallbacks = 1;
           mom_reuses = 40;
           mom_refreshes = 8;
           per_class =
             [
               {
                 Obs.Event.ec_name = "node-v";
                 ec_evals = 30;
                 ec_dirty = 30;
                 ec_op_hits = 300;
                 ec_op_misses = 12;
                 ec_rom_builds = 2;
                 ec_rom_reuses = 60;
               };
             ];
         });
    mk ~moves:100 ~restart:1
      (Obs.Event.Done
         {
           best_cost = 1.0;
           final_cost = 1.5;
           accepted = 42;
           stages = 5;
           froze_early = false;
           aborted = true;
           abort_reason = Some "early-stop: why";
         });
    mk ~moves:100
      (Obs.Event.Done
         {
           best_cost = 0.5;
           final_cost = 0.5;
           accepted = 60;
           stages = 5;
           froze_early = true;
           aborted = false;
           abort_reason = None;
         });
  ]

(* --- JSON values --- *)

let test_json_scalars () =
  let rt v =
    let s = Obs.Json.to_string v in
    match Obs.Json.of_string s with
    | Ok v' -> v'
    | Error e -> Alcotest.failf "parse %S: %s" s e
  in
  List.iter
    (fun v -> Alcotest.(check bool) "round-trip" true (rt v = v))
    [
      Obs.Json.Null;
      Obs.Json.Bool true;
      Obs.Json.Bool false;
      Obs.Json.Num 0.0;
      Obs.Json.Num 42.0;
      Obs.Json.Num (-17.0);
      Obs.Json.Num 0.1;
      Obs.Json.Num 1e-300;
      Obs.Json.Num 1e300;
      Obs.Json.Num (1.0 /. 3.0);
      Obs.Json.Num 999999999999999.0;
      Obs.Json.Num 1e15;
      Obs.Json.Str "";
      Obs.Json.Str "plain";
      Obs.Json.Str "with \"quotes\" and \\ back\nslash\tand \x01 control";
      Obs.Json.Arr [];
      Obs.Json.Arr [ Obs.Json.Num 1.0; Obs.Json.Str "x"; Obs.Json.Null ];
      Obs.Json.Obj [ ("a", Obs.Json.Num 1.0); ("b", Obs.Json.Arr [ Obs.Json.Bool false ]) ];
    ];
  (* Non-finite floats have no JSON form: they print as null and come back
     as nan through the event decoder's to_float. *)
  Alcotest.(check string) "inf prints as null" "null" (Obs.Json.to_string (Obs.Json.Num infinity));
  Alcotest.(check string) "nan prints as null" "null" (Obs.Json.to_string (Obs.Json.Num nan));
  Alcotest.(check bool) "null reads as nan" true
    (Float.is_nan (Obs.Json.to_float Obs.Json.Null))

let test_json_errors () =
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | Ok _ -> Alcotest.failf "expected parse error for %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "1.2.3"; "\"unterminated"; "{} trailing"; "{'a':1}" ]

let test_json_exact_float_round_trip () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"float survives print/parse" QCheck.float (fun x ->
         let x = if Float.is_finite x then x else 0.0 in
         match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Num x)) with
         | Ok (Obs.Json.Num y) -> Int64.bits_of_float y = Int64.bits_of_float x
         | _ -> false))

(* Random whole documents: arbitrary byte strings as keys and values,
   finite floats, nested arrays/objects. Two renderings are compared
   (rather than the values) so -0.0 vs 0.0 cannot produce a spurious
   failure: equal text implies an equal parse. *)
let json_value_gen =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         let scalar =
           oneof
             [
               return Obs.Json.Null;
               map (fun b -> Obs.Json.Bool b) bool;
               map
                 (fun f -> Obs.Json.Num (if Float.is_finite f then f else 0.0))
                 QCheck.Gen.float;
               map (fun s -> Obs.Json.Str s) (string_size (int_bound 12));
             ]
         in
         if n = 0 then scalar
         else
           frequency
             [
               (3, scalar);
               (1, map (fun l -> Obs.Json.Arr l) (list_size (int_bound 4) (self (n / 2))));
               ( 1,
                 map
                   (fun l -> Obs.Json.Obj l)
                   (list_size (int_bound 4)
                      (pair (string_size (int_bound 8)) (self (n / 2)))) );
             ])

let test_json_document_round_trip_random () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:300 ~name:"random document survives print/parse"
       (QCheck.make ~print:(fun v -> Obs.Json.to_string v) json_value_gen)
       (fun v ->
         let s = Obs.Json.to_string v in
         match Obs.Json.of_string s with
         | Ok v' -> Obs.Json.to_string v' = s
         | Error _ -> false))

let test_json_adversarial_strings () =
  (* Every byte value must survive one escape/unescape cycle. *)
  let all_bytes = String.init 256 Char.chr in
  (match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Str all_bytes)) with
  | Ok (Obs.Json.Str s) -> Alcotest.(check string) "all 256 bytes round-trip" all_bytes s
  | Ok _ | Error _ -> Alcotest.fail "all-bytes string did not parse back");
  (* Escapes the printer never emits but a peer may send. *)
  List.iter
    (fun (input, expect) ->
      match Obs.Json.of_string input with
      | Ok (Obs.Json.Str s) -> Alcotest.(check string) input expect s
      | Ok _ -> Alcotest.failf "%s: parsed to a non-string" input
      | Error e -> Alcotest.failf "%s: %s" input e)
    [
      ({|"a\/b"|}, "a/b");
      ({|"AZ"|}, "AZ");
      ({|"\b\f"|}, "\b\012");
      ({|"tab\there"|}, "tab\there");
    ];
  (* Malformed escapes and truncated strings are errors, not crashes. *)
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | Ok _ -> Alcotest.failf "expected parse error for %S" s
      | Error _ -> ())
    [ {|"\x"|}; {|"\u12"|}; {|"\u12zz"|}; {|"\|}; "\"abc"; "\"a\\" ]

let test_json_deep_nesting () =
  let depth = 400 in
  let doc =
    String.concat "" (List.init depth (fun _ -> "["))
    ^ "0"
    ^ String.concat "" (List.init depth (fun _ -> "]"))
  in
  (match Obs.Json.of_string doc with
  | Ok v ->
      let rec measure acc = function
        | Obs.Json.Arr [ inner ] -> measure (acc + 1) inner
        | Obs.Json.Num 0.0 -> acc
        | _ -> Alcotest.fail "unexpected shape"
      in
      Alcotest.(check int) "array nesting depth" depth (measure 0 v)
  | Error e -> Alcotest.failf "deep array: %s" e);
  let obj =
    String.concat "" (List.init depth (fun _ -> {|{"k":|}))
    ^ "null"
    ^ String.concat "" (List.init depth (fun _ -> "}"))
  in
  match Obs.Json.of_string obj with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "deep object: %s" e

let test_json_truncated_prefixes () =
  (* Every strict prefix of a valid document must come back Ok or Error —
     never an escaping exception. (Some prefixes are themselves valid:
     "12" is a prefix of "123".) *)
  let docs =
    [
      {|{"a":[1,true,"x\n"],"b":{"c":null,"d":-1.5e-3}}|};
      {|[[],{},"é",1e10]|};
      Obs.Json.to_string (Obs.Event.to_json (List.nth sample_events 1));
    ]
  in
  List.iter
    (fun doc ->
      for n = 0 to String.length doc - 1 do
        let prefix = String.sub doc 0 n in
        match Obs.Json.of_string prefix with
        | Ok _ | Error _ -> ()
        | exception exn ->
            Alcotest.failf "prefix %S raised %s" prefix (Printexc.to_string exn)
      done)
    docs

(* --- Event encoding --- *)

let test_event_round_trip () =
  List.iter
    (fun ev ->
      let line = Obs.Json.to_string (Obs.Event.to_json ev) in
      match Obs.Json.of_string line with
      | Error e -> Alcotest.failf "parse: %s" e
      | Ok j -> begin
          match Obs.Event.of_json j with
          | Error e -> Alcotest.failf "decode: %s" e
          | Ok ev' -> begin
              match Obs.Event.diff ~tol:0.0 ev ev' with
              | None -> ()
              | Some d -> Alcotest.failf "round-trip differs: %s (line %s)" d line
            end
        end)
    sample_events

let test_event_round_trip_random () =
  let finite f = if Float.is_finite f then f else 0.0 in
  let gen =
    QCheck.(quad (list_of_size Gen.(int_bound 8) float) float small_nat (int_bound 5))
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:300 ~name:"random move event round-trips" gen
       (fun (vals, cost, seed, cls) ->
         let vals = Array.of_list (List.map finite vals) in
         let grid = Array.map (fun v -> abs (int_of_float v) mod 1000) vals in
         let ev =
           mk ~moves:(abs seed) ~temperature:(finite (cost *. 0.5))
             (Obs.Event.Move
                {
                  cls;
                  class_name = Printf.sprintf "class-%d" cls;
                  decision = (if cls mod 2 = 0 then Obs.Event.Accepted else Obs.Event.Rejected);
                  delta_cost = finite cost;
                  cost = finite (cost +. 1.0);
                  state = (if cls mod 2 = 0 then Some (vals, grid) else None);
                })
         in
         match
           Result.bind
             (Obs.Json.of_string (Obs.Json.to_string (Obs.Event.to_json ev)))
             Obs.Event.of_json
         with
         | Ok ev' -> Obs.Event.diff ~tol:0.0 ev ev' = None
         | Error _ -> false))

let test_event_diff_detects_changes () =
  let base = List.nth sample_events 1 in
  Alcotest.(check bool) "equal to itself" true (Obs.Event.diff ~tol:0.0 base base = None);
  let tweaked = { base with Obs.Event.temperature = base.Obs.Event.temperature +. 1e-3 } in
  Alcotest.(check bool) "float change detected" true
    (Obs.Event.diff ~tol:1e-9 base tweaked <> None);
  Alcotest.(check bool) "within tolerance passes" true
    (Obs.Event.diff ~tol:1e-2 base tweaked = None);
  let other = List.nth sample_events 4 in
  Alcotest.(check bool) "different kinds differ" true (Obs.Event.diff ~tol:1.0 base other <> None)

let test_levels () =
  List.iter
    (fun l ->
      match Obs.Event.level_of_string (Obs.Event.level_to_string l) with
      | Ok l' -> Alcotest.(check bool) "level string round-trip" true (l = l')
      | Error e -> Alcotest.fail e)
    [ Obs.Event.Off; Obs.Event.Summary; Obs.Event.Stage; Obs.Event.Moves ];
  Alcotest.(check bool) "unknown level rejected" true
    (Result.is_error (Obs.Event.level_of_string "verbose"));
  Alcotest.(check bool) "summary <= moves" true
    (Obs.Event.level_leq Obs.Event.Summary Obs.Event.Moves);
  Alcotest.(check bool) "moves > stage" false
    (Obs.Event.level_leq Obs.Event.Moves Obs.Event.Stage)

let test_trace_level_filtering () =
  (* Each body kind is recorded only at (or above) its own level. *)
  let expected = [ (Obs.Event.Off, 0); (Obs.Event.Summary, 3); (Obs.Event.Stage, 6); (Obs.Event.Moves, 9) ] in
  List.iter
    (fun (level, expect) ->
      let ring = Obs.Sink.Ring.create ~capacity:64 in
      let t = Obs.Trace.make ~level [ Obs.Sink.Ring.sink ring ] in
      List.iter
        (fun (ev : Obs.Event.t) ->
          Obs.Trace.emit t ~moves:ev.moves ~temperature:ev.temperature ~acceptance:ev.acceptance
            ev.body)
        sample_events;
      Alcotest.(check int)
        (Printf.sprintf "events at level %s" (Obs.Event.level_to_string level))
        expect
        (Obs.Sink.Ring.length ring))
    expected;
  (* The empty-sink and none traces are disabled at every level. *)
  Alcotest.(check bool) "none disabled" false (Obs.Trace.enabled Obs.Trace.none Obs.Event.Summary);
  Alcotest.(check bool) "no sinks disabled" false
    (Obs.Trace.enabled (Obs.Trace.make ~level:Obs.Event.Moves []) Obs.Event.Summary)

let test_trace_restart_stamping () =
  let ring = Obs.Sink.Ring.create ~capacity:8 in
  let t = Obs.Trace.make ~level:Obs.Event.Summary [ Obs.Sink.Ring.sink ring ] in
  Alcotest.(check int) "default restart" 0 (Obs.Trace.restart t);
  let t7 = Obs.Trace.with_restart t 7 in
  Obs.Trace.emit t7 ~moves:1 ~temperature:0.0 ~acceptance:1.0
    (Obs.Event.Restart { total_moves = 10; classes = [| "a" |] });
  (match Obs.Sink.Ring.contents ring with
  | [ ev ] -> Alcotest.(check int) "stamped restart" 7 ev.Obs.Event.restart
  | l -> Alcotest.failf "expected 1 event, got %d" (List.length l));
  Alcotest.(check int) "original unchanged" 0 (Obs.Trace.restart t)

(* --- Sinks --- *)

let test_ring_eviction () =
  let ring = Obs.Sink.Ring.create ~capacity:3 in
  let sink = Obs.Sink.Ring.sink ring in
  for i = 1 to 5 do
    sink.Obs.Sink.emit
      (mk ~moves:i (Obs.Event.Restart { total_moves = i; classes = [||] }))
  done;
  Alcotest.(check int) "length capped" 3 (Obs.Sink.Ring.length ring);
  Alcotest.(check int) "dropped counted" 2 (Obs.Sink.Ring.dropped ring);
  let kept = List.map (fun (e : Obs.Event.t) -> e.moves) (Obs.Sink.Ring.contents ring) in
  Alcotest.(check (list int)) "most recent, oldest first" [ 3; 4; 5 ] kept;
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Sink.Ring.create: capacity must be >= 1") (fun () ->
      ignore (Obs.Sink.Ring.create ~capacity:0))

let test_summary_stats () =
  let s = Obs.Sink.Summary.create () in
  let sink = Obs.Sink.Summary.sink s in
  List.iter (fun ev -> sink.Obs.Sink.emit ev) sample_events;
  let st = Obs.Sink.Summary.stats s in
  Alcotest.(check int) "events" (List.length sample_events) st.Obs.Sink.Summary.events;
  Alcotest.(check int) "restarts" 1 st.restarts;
  Alcotest.(check int) "moves (all decisions count)" 3 st.moves;
  Alcotest.(check int) "accepted" 1 st.accepted;
  Alcotest.(check (float 0.0)) "best cost is min over Done" 0.5 st.best_cost;
  Alcotest.(check int) "one stage row" 1 (List.length st.stage_rows);
  (match st.class_rows with
  | [ a; b ] ->
      Alcotest.(check string) "classes sorted" "a" a.Obs.Sink.Summary.cr_name;
      Alcotest.(check int) "a attempts" 2 a.cr_attempts;
      Alcotest.(check int) "a inapplicable" 1 a.cr_inapplicable;
      Alcotest.(check int) "b accepted" 1 b.cr_accepted
  | l -> Alcotest.failf "expected 2 class rows, got %d" (List.length l));
  Alcotest.(check (list (pair int string))) "aborts recorded"
    [ (1, "early-stop: why") ] st.aborts

let test_jsonl_file_round_trip () =
  let path = Filename.temp_file "obs-test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Obs.Sink.jsonl_file path in
      List.iter (fun ev -> sink.Obs.Sink.emit ev) sample_events;
      sink.Obs.Sink.close ();
      sink.Obs.Sink.close ();
      (* idempotent *)
      match Obs.Replay.read_file path with
      | Error e -> Alcotest.fail e
      | Ok evs ->
          Alcotest.(check int) "all lines back" (List.length sample_events) (List.length evs);
          List.iter2
            (fun a b ->
              match Obs.Event.diff ~tol:0.0 a b with
              | None -> ()
              | Some d -> Alcotest.failf "file round-trip differs: %s" d)
            sample_events evs)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_read_lines_reports_bad_line () =
  let good = Obs.Json.to_string (Obs.Event.to_json (List.hd sample_events)) in
  match Obs.Replay.read_lines [ good; "{oops"; good ] with
  | Ok _ -> Alcotest.fail "expected decode failure"
  | Error e -> Alcotest.(check bool) "names the line" true (contains_sub e "2")

(* --- Annealer-level tracing and generic replay --- *)

let vector_problem ~cost ~dim ~span =
  {
    Anneal.Annealer.classes = [| "perturb"; "big" |];
    propose =
      (fun st k rng ->
        let i = Anneal.Rng.int rng dim in
        let old = st.(i) in
        let scale = if k = 0 then 0.1 *. span else span in
        st.(i) <- Float.max (-.span) (Float.min span (old +. (Anneal.Rng.gaussian rng *. scale)));
        Some (fun () -> st.(i) <- old));
    cost;
    snapshot = Array.copy;
    frozen = None;
    on_stage = None;
    on_result = None;
    abort = None;
    batch = None;
  }

let test_annealer_trace_stream () =
  let cost st = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 st in
  let ring = Obs.Sink.Ring.create ~capacity:100_000 in
  let trace = Obs.Trace.make ~level:Obs.Event.Moves [ Obs.Sink.Ring.sink ring ] in
  let total_moves = 4000 in
  let out =
    Anneal.Annealer.run ~trace
      ~view:(fun st -> (Array.copy st, [||]))
      ~rng:(Anneal.Rng.create 123) ~total_moves ~init:(Array.make 3 2.0)
      (vector_problem ~cost ~dim:3 ~span:4.0)
  in
  let evs = Obs.Sink.Ring.contents ring in
  let moves_evs =
    List.filter (fun (e : Obs.Event.t) -> Obs.Event.kind e = "move") evs
  in
  Alcotest.(check int) "one Move event per decided move" out.Anneal.Annealer.moves
    (List.length moves_evs);
  (* The moves counter on Move events is the 1-based decided-move index. *)
  List.iteri
    (fun i (e : Obs.Event.t) -> Alcotest.(check int) "move index" (i + 1) e.moves)
    moves_evs;
  let stage_evs = List.filter (fun (e : Obs.Event.t) -> Obs.Event.kind e = "stage") evs in
  Alcotest.(check int) "one Stage event per stage" out.stages (List.length stage_evs);
  List.iter
    (fun (e : Obs.Event.t) ->
      match e.body with
      | Obs.Event.Stage { probs; _ } ->
          Alcotest.(check (float 1e-9)) "Hustin probs sum to 1" 1.0
            (Array.fold_left ( +. ) 0.0 probs)
      | _ -> assert false)
    stage_evs;
  (* Replay: the cost of every accepted state must recompute exactly (the
     weights are irrelevant for a plain vector problem). *)
  let replay_cost ~w_perf:_ ~w_dev:_ ~w_dc:_ ~values ~grid:_ = cost values in
  (match Obs.Replay.check ~cost:replay_cost ~tol:0.0 evs with
  | Error (ms, _) -> Alcotest.failf "%d replay mismatches" (List.length ms)
  | Ok st ->
      Alcotest.(check bool) "replay covered accepted moves" true (st.Obs.Replay.rs_checked > 0);
      Alcotest.(check (float 0.0)) "bit-exact" 0.0 st.rs_max_rel_err);
  (* Tracing must not perturb the run: an untraced run is bit-identical. *)
  let out' =
    Anneal.Annealer.run ~rng:(Anneal.Rng.create 123) ~total_moves ~init:(Array.make 3 2.0)
      (vector_problem ~cost ~dim:3 ~span:4.0)
  in
  Alcotest.(check (float 0.0)) "trace does not perturb the run" out.best_cost
    out'.Anneal.Annealer.best_cost;
  Alcotest.(check int) "same stage count" out.stages out'.stages

(* --- OBLX-level tracing and replay --- *)

(* The tiny common-source sizing problem from test_anneal.ml: fast enough
   that multi-run synthesis finishes in seconds. *)
let cs_source =
  {|.title common-source stage
.process p1u2
.param vddval=5

.subckt amp in out vdd vss
m1 out in vss vss nmos w='w' l='l'
m2 out nbp vdd vdd pmos w='wp' l='l'
vbp vdd nbp 'vb'
.ends

.var w min=2u max=200u steps=80
.var l min=1.2u max=10u steps=40
.var wp min=2u max=200u steps=80
.var vb min=0.5 max=2.5

.jig main
xamp in out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vin in 0 1.2 ac 1
cl1 out 0 2p
.pz tf v(out) vin
.endjig

.bias
xamp in out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vin in 0 1.2
cl1 out 0 2p
.endbias

.obj gain 'db(dc_gain(tf))' good=30 bad=5
.spec ugf 'ugf(tf)' good=5meg bad=100k
|}

let compile_cs () =
  match Core.Compile.compile_source cs_source with
  | Ok p -> p
  | Error e -> Alcotest.failf "compile: %s" e

let test_synthesize_trace_replays () =
  let p = compile_cs () in
  let ring = Obs.Sink.Ring.create ~capacity:100_000 in
  let obs = Obs.Trace.make ~level:Obs.Event.Moves [ Obs.Sink.Ring.sink ring ] in
  let r = Core.Oblx.synthesize ~seed:4 ~moves:800 ~obs p in
  let evs = Obs.Sink.Ring.contents ring in
  Alcotest.(check int) "nothing dropped" 0 (Obs.Sink.Ring.dropped ring);
  (* Stream shape: Restart first, Done last, Weight_update present. *)
  (match evs with
  | first :: _ -> Alcotest.(check string) "starts with restart" "restart" (Obs.Event.kind first)
  | [] -> Alcotest.fail "empty trace");
  let last = List.nth evs (List.length evs - 1) in
  (match last.Obs.Event.body with
  | Obs.Event.Done { best_cost; aborted; abort_reason; accepted; _ } ->
      Alcotest.(check (float 0.0)) "Done carries the run's best" r.Core.Oblx.best_cost best_cost;
      Alcotest.(check bool) "not aborted" false aborted;
      Alcotest.(check bool) "no abort reason" true (abort_reason = None);
      Alcotest.(check int) "accepted count matches" r.accepted accepted
  | _ -> Alcotest.fail "last event is not Done");
  Alcotest.(check bool) "weight updates present" true
    (List.exists (fun e -> Obs.Event.kind e = "weights") evs);
  (* In-process replay is bit-exact: the evaluator is pure. *)
  match Core.Oblx.replay ~tol:0.0 p evs with
  | Error (ms, _) ->
      Alcotest.failf "replay mismatches: %s"
        (Format.asprintf "%a" Obs.Replay.pp_mismatch (List.hd ms))
  | Ok st ->
      Alcotest.(check bool) "accepted states re-evaluated" true (st.Obs.Replay.rs_checked > 0);
      Alcotest.(check (float 0.0)) "bit-exact replay" 0.0 st.rs_max_rel_err;
      Alcotest.(check int) "single restart" 1 st.rs_restarts

(* The acceptance criterion as a test: a traced multi-start run replays with
   zero cost mismatches for jobs=1 and jobs=4, and the two job counts
   produce identical per-restart event streams. *)
let test_best_of_trace_jobs_invariant () =
  let p = compile_cs () in
  let runs = 3 and seed = 8 and moves = 900 in
  let collect jobs =
    let ring = Obs.Sink.Ring.create ~capacity:200_000 in
    let obs = Obs.Trace.make ~level:Obs.Event.Moves [ Obs.Sink.Ring.sink ring ] in
    let _ = Core.Oblx.best_of ~seed ~moves ~jobs ~obs ~runs p in
    Alcotest.(check int) "nothing dropped" 0 (Obs.Sink.Ring.dropped ring);
    Obs.Sink.Ring.contents ring
  in
  let evs1 = collect 1 and evs4 = collect 4 in
  (* Both interleavings replay cleanly. *)
  List.iter
    (fun (label, evs) ->
      match Core.Oblx.replay ~tol:0.0 p evs with
      | Error (ms, _) -> Alcotest.failf "%s: %d replay mismatches" label (List.length ms)
      | Ok st ->
          Alcotest.(check int) (label ^ ": all restarts seen") runs st.Obs.Replay.rs_restarts;
          Alcotest.(check bool) (label ^ ": replay covered states") true (st.rs_checked > 0);
          Alcotest.(check (float 0.0)) (label ^ ": bit-exact") 0.0 st.rs_max_rel_err)
    [ ("jobs=1", evs1); ("jobs=4", evs4) ];
  (* Demultiplexed per restart, the streams are identical event-for-event:
     the --jobs invariance of docs/PARALLEL.md, extended to telemetry. *)
  let per_restart evs k =
    List.filter (fun (e : Obs.Event.t) -> e.Obs.Event.restart = k) evs
  in
  for k = 0 to runs - 1 do
    let a = per_restart evs1 k and b = per_restart evs4 k in
    Alcotest.(check int) (Printf.sprintf "restart %d: same event count" k) (List.length a)
      (List.length b);
    List.iter2
      (fun x y ->
        match Obs.Event.diff ~tol:0.0 x y with
        | None -> ()
        | Some d -> Alcotest.failf "restart %d stream differs: %s" k d)
      a b
  done

let test_abort_reason_recorded () =
  (* Regression: the early-stop abort poll used to collapse the cutoff's
     verdict into a boolean; the reason must survive into the result and
     the Done event. *)
  let p = compile_cs () in
  let ring = Obs.Sink.Ring.create ~capacity:10_000 in
  let obs = Obs.Trace.make ~level:Obs.Event.Summary [ Obs.Sink.Ring.sink ring ] in
  let control =
    {
      Core.Oblx.publish = (fun _ -> ());
      cutoff = (fun ~progress ~best:_ -> if progress > 0.1 then Some "test cutoff" else None);
    }
  in
  let r = Core.Oblx.synthesize ~seed:3 ~moves:2000 ~control ~obs p in
  Alcotest.(check bool) "cut short" true r.Core.Oblx.cut_short;
  Alcotest.(check (option string)) "reason preserved" (Some "test cutoff") r.cut_reason;
  let dones =
    List.filter_map
      (fun (e : Obs.Event.t) ->
        match e.Obs.Event.body with
        | Obs.Event.Done { aborted; abort_reason; _ } -> Some (aborted, abort_reason)
        | _ -> None)
      (Obs.Sink.Ring.contents ring)
  in
  match dones with
  | [ (aborted, abort_reason) ] ->
      Alcotest.(check bool) "Done.aborted" true aborted;
      Alcotest.(check (option string)) "Done.abort_reason" (Some "test cutoff") abort_reason
  | l -> Alcotest.failf "expected 1 Done event, got %d" (List.length l)

(* --- Golden trace --- *)

(* Parameters are the contract with test/gen_golden.ml. *)
let golden_path = "golden/simple_ota.jsonl"
let golden_circuit = "simple-ota"
let golden_seed = 11
let golden_moves = 600

let compile_golden () =
  match Suite.Ckts.find golden_circuit with
  | None -> Alcotest.failf "unknown circuit %s" golden_circuit
  | Some e -> begin
      match Core.Compile.compile_source e.Suite.Ckts.source with
      | Ok p -> p
      | Error msg -> Alcotest.failf "compile: %s" msg
    end

let test_golden_trace_matches () =
  let golden =
    match Obs.Replay.read_file golden_path with
    | Ok evs -> evs
    | Error e -> Alcotest.failf "golden trace unreadable (regenerate with test/gen_golden.exe): %s" e
  in
  let p = compile_golden () in
  let ring = Obs.Sink.Ring.create ~capacity:100_000 in
  let obs = Obs.Trace.make ~level:Obs.Event.Moves [ Obs.Sink.Ring.sink ring ] in
  let _ = Core.Oblx.synthesize ~seed:golden_seed ~moves:golden_moves ~obs p in
  let fresh = Obs.Sink.Ring.contents ring in
  Alcotest.(check int) "same event count" (List.length golden) (List.length fresh);
  (* The tolerance absorbs last-bit libm drift when the golden file was
     produced by a different build; within one build the diff is exact. *)
  let i = ref 0 in
  List.iter2
    (fun g f ->
      incr i;
      match Obs.Event.diff ~tol:1e-9 g f with
      | None -> ()
      | Some d -> Alcotest.failf "golden event %d differs: %s" !i d)
    golden fresh

let test_golden_trace_replays () =
  let p = compile_golden () in
  match Obs.Replay.read_file golden_path with
  | Error e -> Alcotest.failf "golden trace unreadable: %s" e
  | Ok evs -> begin
      match Core.Oblx.replay ~tol:1e-6 p evs with
      | Error (ms, st) ->
          Alcotest.failf "%d mismatches (max rel err %g)" (List.length ms)
            st.Obs.Replay.rs_max_rel_err
      | Ok st ->
          Alcotest.(check bool) "accepted states re-evaluated" true
            (st.Obs.Replay.rs_checked > 0);
          Alcotest.(check bool) "within tolerance" true (st.rs_max_rel_err <= 1e-6)
    end

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "scalar round-trips" `Quick test_json_scalars;
          Alcotest.test_case "parse errors" `Quick test_json_errors;
          Alcotest.test_case "float bit-exactness (property)" `Quick
            test_json_exact_float_round_trip;
          Alcotest.test_case "document round-trips (property)" `Quick
            test_json_document_round_trip_random;
          Alcotest.test_case "adversarial strings" `Quick test_json_adversarial_strings;
          Alcotest.test_case "deep nesting" `Quick test_json_deep_nesting;
          Alcotest.test_case "truncated prefixes" `Quick test_json_truncated_prefixes;
        ] );
      ( "event",
        [
          Alcotest.test_case "round-trip all kinds" `Quick test_event_round_trip;
          Alcotest.test_case "round-trip random moves (property)" `Quick
            test_event_round_trip_random;
          Alcotest.test_case "diff detects changes" `Quick test_event_diff_detects_changes;
          Alcotest.test_case "levels" `Quick test_levels;
        ] );
      ( "trace",
        [
          Alcotest.test_case "level filtering" `Quick test_trace_level_filtering;
          Alcotest.test_case "restart stamping" `Quick test_trace_restart_stamping;
        ] );
      ( "sink",
        [
          Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
          Alcotest.test_case "summary stats" `Quick test_summary_stats;
          Alcotest.test_case "jsonl file round-trip" `Quick test_jsonl_file_round_trip;
          Alcotest.test_case "bad line reported" `Quick test_read_lines_reports_bad_line;
        ] );
      ( "annealer",
        [ Alcotest.test_case "trace stream + replay" `Quick test_annealer_trace_stream ] );
      ( "oblx",
        [
          Alcotest.test_case "synthesize trace replays" `Slow test_synthesize_trace_replays;
          Alcotest.test_case "jobs-invariant trace + replay" `Slow
            test_best_of_trace_jobs_invariant;
          Alcotest.test_case "abort reason recorded" `Quick test_abort_reason_recorded;
        ] );
      ( "golden",
        [
          Alcotest.test_case "matches regenerated run" `Slow test_golden_trace_matches;
          Alcotest.test_case "replays against cost function" `Slow test_golden_trace_replays;
        ] );
    ]
