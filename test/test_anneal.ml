(* Tests for the annealing kernel: RNG, Lam schedule, Hustin selection,
   range limiter, and the driver on known optimization landscapes. *)

let test_rng_determinism () =
  let a = Anneal.Rng.create 42 and b = Anneal.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.0)) "same stream" (Anneal.Rng.float a) (Anneal.Rng.float b)
  done;
  let c = Anneal.Rng.create 43 in
  Alcotest.(check bool) "different seed differs" true
    (Anneal.Rng.float a <> Anneal.Rng.float c)

let test_rng_uniformity () =
  let rng = Anneal.Rng.create 7 in
  let n = 20000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let v = Anneal.Rng.float rng in
    if v < 0.0 || v >= 1.0 then Alcotest.fail "out of range";
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~0.5" true (Float.abs (mean -. 0.5) < 0.01);
  Alcotest.(check bool) "var ~1/12" true (Float.abs (var -. (1.0 /. 12.0)) < 0.005)

let test_rng_int_bounds () =
  let rng = Anneal.Rng.create 3 in
  let seen = Array.make 7 false in
  for _ = 1 to 2000 do
    let v = Anneal.Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.fail "int out of range";
    seen.(v) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen);
  Alcotest.check_raises "nonpositive bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Anneal.Rng.int rng 0))

let test_rng_gaussian () =
  let rng = Anneal.Rng.create 11 in
  let n = 20000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let v = Anneal.Rng.gaussian rng in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~0" true (Float.abs mean < 0.03);
  Alcotest.(check bool) "var ~1" true (Float.abs (var -. 1.0) < 0.05)

let test_rng_split_independence () =
  let rng = Anneal.Rng.create 5 in
  let a = Anneal.Rng.split rng and b = Anneal.Rng.split rng in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Anneal.Rng.float a = Anneal.Rng.float b then incr same
  done;
  Alcotest.(check bool) "split streams diverge" true (!same < 5)

(* Statistical independence of split streams: across many seeds, sibling
   streams and parent/child streams must be uncorrelated and each stream
   must stay uniform — the property the parallel multi-start engine rests
   on (every restart draws from its own split). *)
let test_rng_split_statistical_independence () =
  let correlation xs ys =
    let n = float_of_int (Array.length xs) in
    let mean a = Array.fold_left ( +. ) 0.0 a /. n in
    let mx = mean xs and my = mean ys in
    let cov = ref 0.0 and vx = ref 0.0 and vy = ref 0.0 in
    Array.iteri
      (fun i x ->
        let dx = x -. mx and dy = ys.(i) -. my in
        cov := !cov +. (dx *. dy);
        vx := !vx +. (dx *. dx);
        vy := !vy +. (dy *. dy))
      xs;
    !cov /. Float.sqrt ((!vx *. !vy) +. 1e-300)
  in
  let n = 20000 in
  List.iter
    (fun seed ->
      let root = Anneal.Rng.create seed in
      let a = Anneal.Rng.split root and b = Anneal.Rng.split root in
      let draw rng = Array.init n (fun _ -> Anneal.Rng.float rng) in
      let xa = draw a and xb = draw b and xr = draw root in
      (* Siblings and parent/child pairwise uncorrelated (3-sigma bound for
         n iid uniforms is ~3/sqrt(n) ≈ 0.021). *)
      let bound = 0.03 in
      Alcotest.(check bool) "sibling corr ~ 0" true (Float.abs (correlation xa xb) < bound);
      Alcotest.(check bool) "parent/child corr ~ 0" true (Float.abs (correlation xa xr) < bound);
      (* Each split stream is still uniform. *)
      let mean = Array.fold_left ( +. ) 0.0 xa /. float_of_int n in
      Alcotest.(check bool) "split stream uniform mean" true (Float.abs (mean -. 0.5) < 0.015);
      (* Splitting must not disturb the parent's future stream: the parent
         advances by exactly one [next] per split, deterministically. *)
      let r1 = Anneal.Rng.create seed and r2 = Anneal.Rng.create seed in
      ignore (Anneal.Rng.split r1);
      ignore (Anneal.Rng.split r2);
      Alcotest.(check (float 0.0)) "parent stream deterministic after split"
        (Anneal.Rng.float r1) (Anneal.Rng.float r2))
    [ 1; 42; 1988 ]

(* --- Lam schedule --- *)

let test_lam_target_trajectory () =
  let t = Anneal.Lam.create ~total_moves:1000 ~t0:1.0 in
  (* At the start the target is near 1; after 40% it is the 0.44 plateau. *)
  Alcotest.(check bool) "starts high" true (Anneal.Lam.target_ratio t > 0.9);
  for _ = 1 to 400 do
    Anneal.Lam.record t ~accepted:true
  done;
  Alcotest.(check (float 1e-9)) "plateau" 0.44 (Anneal.Lam.target_ratio t);
  for _ = 1 to 590 do
    Anneal.Lam.record t ~accepted:false
  done;
  Alcotest.(check bool) "quench low" true (Anneal.Lam.target_ratio t < 0.1);
  Alcotest.(check bool) "not finished" true (not (Anneal.Lam.finished t));
  for _ = 1 to 10 do
    Anneal.Lam.record t ~accepted:false
  done;
  Alcotest.(check bool) "finished" true (Anneal.Lam.finished t)

let test_lam_feedback_direction () =
  (* All-accepted moves during the plateau push the temperature down. *)
  let t = Anneal.Lam.create ~total_moves:10000 ~t0:1.0 in
  for _ = 1 to 3000 do
    Anneal.Lam.record t ~accepted:true
  done;
  Alcotest.(check bool) "cooled" true (Anneal.Lam.temperature t < 1.0);
  (* All-rejected pushes it back up. *)
  let tmp = Anneal.Lam.temperature t in
  for _ = 1 to 1000 do
    Anneal.Lam.record t ~accepted:false
  done;
  Alcotest.(check bool) "reheated" true (Anneal.Lam.temperature t > tmp)

(* --- Hustin --- *)

let test_hustin_distribution () =
  let h = Anneal.Hustin.create ~classes:[| "a"; "b"; "c" |] in
  let probs = Anneal.Hustin.probabilities h in
  Alcotest.(check (float 1e-9)) "uniform at start" (1.0 /. 3.0) probs.(0);
  (* Class b produces all the gain; its probability must dominate. *)
  for _ = 1 to 500 do
    Anneal.Hustin.record h 1 ~accepted:true ~delta_cost:10.0;
    Anneal.Hustin.record h 0 ~accepted:false ~delta_cost:0.0;
    Anneal.Hustin.record h 2 ~accepted:true ~delta_cost:0.01
  done;
  let probs = Anneal.Hustin.probabilities h in
  Alcotest.(check bool) "b dominates" true (probs.(1) > 0.8);
  Alcotest.(check bool) "floor respected" true (probs.(0) >= 0.02 -. 1e-12);
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 probs)

let test_hustin_pick_follows_probs () =
  let h = Anneal.Hustin.create ~classes:[| "a"; "b" |] in
  for _ = 1 to 200 do
    Anneal.Hustin.record h 0 ~accepted:true ~delta_cost:5.0
  done;
  let rng = Anneal.Rng.create 9 in
  let counts = [| 0; 0 |] in
  for _ = 1 to 2000 do
    let k = Anneal.Hustin.pick h rng in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "mostly class a" true (counts.(0) > 1700)

let prop_hustin_probs_normalized =
  (* Under arbitrary record sequences — including ones that cross the
     periodic decay boundary — the selection distribution stays a proper
     distribution with every class at or above the floor probability. *)
  QCheck.Test.make ~name:"hustin probabilities stay normalized" ~count:50
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 2 + Random.State.int rng 5 in
      let h = Anneal.Hustin.create ~classes:(Array.init n (Printf.sprintf "c%d")) in
      let ok = ref true in
      for i = 1 to 5000 do
        Anneal.Hustin.record h (Random.State.int rng n)
          ~accepted:(Random.State.bool rng)
          ~delta_cost:(Random.State.float rng 20.0 -. 10.0);
        if i mod 250 = 0 then begin
          let probs = Anneal.Hustin.probabilities h in
          let sum = Array.fold_left ( +. ) 0.0 probs in
          if Float.abs (sum -. 1.0) > 1e-9 then ok := false;
          Array.iter (fun p -> if p < 0.02 -. 1e-12 then ok := false) probs
        end
      done;
      !ok)

let test_hustin_starved_class_recovers () =
  (* The floor probability exists so a class that stops paying can still be
     sampled and — via the periodic statistic decay — win back its share
     once it becomes productive. *)
  let h = Anneal.Hustin.create ~classes:[| "a"; "b"; "c" |] in
  for _ = 1 to 600 do
    Anneal.Hustin.record h 0 ~accepted:true ~delta_cost:10.0;
    Anneal.Hustin.record h 1 ~accepted:false ~delta_cost:0.0
  done;
  let probs = Anneal.Hustin.probabilities h in
  Alcotest.(check bool) "a dominates first" true (probs.(0) > 0.7);
  Alcotest.(check bool) "b starved to the floor" true (probs.(1) < 0.1);
  (* Phase change: a stops paying, b produces all the gain. *)
  for _ = 1 to 6000 do
    Anneal.Hustin.record h 0 ~accepted:false ~delta_cost:0.0;
    Anneal.Hustin.record h 1 ~accepted:true ~delta_cost:10.0
  done;
  let probs = Anneal.Hustin.probabilities h in
  Alcotest.(check bool) "b recovered dominance" true (probs.(1) > 0.5);
  Alcotest.(check bool) "b beats a" true (probs.(1) > probs.(0));
  Alcotest.(check (float 1e-9)) "still sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 probs)

let test_hustin_probs_round_trip () =
  (* The warm-start persistence contract: a restored selector serves the
     saved distribution verbatim — bit for bit — until its first record,
     after which the seeded pseudo-counts take over and adapt normally. *)
  let classes = [| "a"; "b"; "c"; "d" |] in
  let h = Anneal.Hustin.create ~classes in
  for _ = 1 to 400 do
    Anneal.Hustin.record h 1 ~accepted:true ~delta_cost:8.0;
    Anneal.Hustin.record h 3 ~accepted:true ~delta_cost:2.0;
    Anneal.Hustin.record h 0 ~accepted:false ~delta_cost:0.0
  done;
  let saved = Anneal.Hustin.to_probs h in
  let r = Anneal.Hustin.of_probs ~classes saved in
  let restored = Anneal.Hustin.to_probs r in
  Alcotest.(check int) "arity preserved" (Array.length saved) (Array.length restored);
  Array.iteri
    (fun i p ->
      Alcotest.(check bool)
        (Printf.sprintf "class %d bit-identical" i)
        true
        (Int64.equal (Int64.bits_of_float p) (Int64.bits_of_float restored.(i))))
    saved;
  (* [pick] must draw from the restored distribution, not the uniform one. *)
  let rng = Anneal.Rng.create 11 in
  let counts = Array.make (Array.length classes) 0 in
  for _ = 1 to 2000 do
    let k = Anneal.Hustin.pick r rng in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "pick follows the prior" true
    (float_of_int counts.(1) /. 2000.0 > saved.(1) -. 0.1);
  (* First record flips to live statistics: still a proper distribution,
     and near the prior (that is what the pseudo-counts encode). *)
  Anneal.Hustin.record r 1 ~accepted:true ~delta_cost:1.0;
  let after = Anneal.Hustin.probabilities r in
  Alcotest.(check (float 1e-9)) "still sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 after);
  Array.iteri
    (fun i p ->
      Alcotest.(check bool)
        (Printf.sprintf "class %d near the prior after first record" i)
        true
        (Float.abs (p -. saved.(i)) < 0.15))
    after;
  Alcotest.check_raises "arity mismatch rejected"
    (Invalid_argument "Hustin.of_probs: 2 probabilities for 4 classes") (fun () ->
      ignore (Anneal.Hustin.of_probs ~classes [| 0.5; 0.5 |]));
  Alcotest.check_raises "NaN rejected"
    (Invalid_argument "Hustin.of_probs: bad probability") (fun () ->
      ignore (Anneal.Hustin.of_probs ~classes [| Float.nan; 0.3; 0.3; 0.4 |]))

(* --- Range limiter --- *)

let test_range_adaptation () =
  let r =
    Anneal.Range.create ~n:1 ~initial:[| 1.0 |] ~min_step:[| 1e-6 |] ~max_step:[| 10.0 |]
  in
  for _ = 1 to 100 do
    Anneal.Range.record r 0 ~accepted:true
  done;
  Alcotest.(check bool) "grows on accept" true (Anneal.Range.step r 0 > 1.0);
  for _ = 1 to 1000 do
    Anneal.Range.record r 0 ~accepted:false
  done;
  Alcotest.(check bool) "shrinks on reject" true (Anneal.Range.step r 0 < 0.01);
  for _ = 1 to 100000 do
    Anneal.Range.record r 0 ~accepted:false
  done;
  Alcotest.(check (float 1e-12)) "clamped at min" 1e-6 (Anneal.Range.step r 0)

(* --- Annealer on known landscapes --- *)

(* State: a float array; moves perturb one coordinate. *)
let vector_problem ~cost ~dim ~span =
  {
    Anneal.Annealer.classes = [| "perturb"; "big" |];
    propose =
      (fun st k rng ->
        let i = Anneal.Rng.int rng dim in
        let old = st.(i) in
        let scale = if k = 0 then 0.1 *. span else span in
        st.(i) <- Float.max (-.span) (Float.min span (old +. (Anneal.Rng.gaussian rng *. scale)));
        Some (fun () -> st.(i) <- old));
    cost;
    snapshot = Array.copy;
    frozen = None;
    on_stage = None;
    on_result = None;
    abort = None;
    batch = None;
  }

let test_annealer_sphere () =
  let dim = 4 in
  let cost st = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 st in
  let rng = Anneal.Rng.create 123 in
  let init = Array.make dim 3.0 in
  let out = Anneal.Annealer.run ~rng ~total_moves:20000 ~init (vector_problem ~cost ~dim ~span:5.0) in
  Alcotest.(check bool) "near origin" true (out.Anneal.Annealer.best_cost < 0.05)

let test_annealer_rastrigin () =
  (* Multimodal: plain descent from (3, 3) gets stuck; annealing should
     reach the global basin around the origin. *)
  let dim = 2 in
  let cost st =
    Array.fold_left
      (fun acc v -> acc +. ((v *. v) -. (10.0 *. Float.cos (2.0 *. Float.pi *. v)) +. 10.0))
      0.0 st
  in
  let rng = Anneal.Rng.create 99 in
  let init = [| 3.0; 3.0 |] in
  let out = Anneal.Annealer.run ~rng ~total_moves:40000 ~init (vector_problem ~cost ~dim ~span:5.12) in
  (* Global minimum is 0; the nearest non-global basins are at ~1. *)
  Alcotest.(check bool) "global basin" true (out.Anneal.Annealer.best_cost < 1.0)

let test_annealer_best_preserved () =
  (* The reported best must be at least as good as the final state. *)
  let cost st = Float.abs st.(0) in
  let rng = Anneal.Rng.create 5 in
  let out =
    Anneal.Annealer.run ~rng ~total_moves:5000 ~init:[| 4.0 |]
      (vector_problem ~cost ~dim:1 ~span:5.0)
  in
  Alcotest.(check bool) "best <= final" true
    (out.Anneal.Annealer.best_cost <= out.final_cost +. 1e-12);
  Alcotest.(check (float 1e-12)) "best matches its state" out.best_cost (cost out.best)

let test_annealer_abort_hook () =
  (* The abort hook is polled once per stage regardless of progress; a run
     that is told to stop must stop at the next stage boundary, keep its
     best-so-far, and report [aborted]. *)
  let problem =
    { (vector_problem ~cost:(fun st -> st.(0) *. st.(0)) ~dim:1 ~span:1.0) with
      Anneal.Annealer.abort = Some (fun info -> info.Anneal.Annealer.stage >= 2) }
  in
  let rng = Anneal.Rng.create 2 in
  let total_moves = 50000 in
  let out = Anneal.Annealer.run ~rng ~total_moves ~init:[| 1.0 |] problem in
  Alcotest.(check bool) "aborted flag set" true out.Anneal.Annealer.aborted;
  Alcotest.(check bool) "stopped well before the budget" true (out.moves < total_moves / 2);
  Alcotest.(check (float 1e-12)) "best state kept" out.best_cost
    (out.best.(0) *. out.best.(0))

let test_annealer_no_abort_unaffected () =
  (* A hook that never fires must leave the run byte-identical to no hook. *)
  let cost st = Float.abs st.(0) in
  let run abort =
    let problem = { (vector_problem ~cost ~dim:1 ~span:2.0) with Anneal.Annealer.abort } in
    Anneal.Annealer.run ~rng:(Anneal.Rng.create 77) ~total_moves:3000 ~init:[| 1.5 |] problem
  in
  let a = run None and b = run (Some (fun _ -> false)) in
  Alcotest.(check (float 0.0)) "same best cost" a.Anneal.Annealer.best_cost b.best_cost;
  Alcotest.(check int) "same move count" a.moves b.moves;
  Alcotest.(check bool) "not aborted" false b.aborted

(* --- parallel multi-start determinism --- *)

(* A deliberately tiny synthesis problem so best_of with several runs
   completes in seconds: size a common-source stage. *)
let cs_source =
  {|.title common-source stage
.process p1u2
.param vddval=5

.subckt amp in out vdd vss
m1 out in vss vss nmos w='w' l='l'
m2 out nbp vdd vdd pmos w='wp' l='l'
vbp vdd nbp 'vb'
.ends

.var w min=2u max=200u steps=80
.var l min=1.2u max=10u steps=40
.var wp min=2u max=200u steps=80
.var vb min=0.5 max=2.5

.jig main
xamp in out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vin in 0 1.2 ac 1
cl1 out 0 2p
.pz tf v(out) vin
.endjig

.bias
xamp in out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vin in 0 1.2
cl1 out 0 2p
.endbias

.obj gain 'db(dc_gain(tf))' good=30 bad=5
.spec ugf 'ugf(tf)' good=5meg bad=100k
|}

let state_fingerprint (st : Core.State.t) =
  (* Structural digest of the design point: exact variable values. *)
  Array.fold_left (fun acc v -> Hashtbl.hash (acc, Int64.bits_of_float v)) 0 st.Core.State.values

let test_best_of_jobs_deterministic () =
  match Core.Compile.compile_source cs_source with
  | Error e -> Alcotest.failf "compile: %s" e
  | Ok p ->
      let seed = 8 and runs = 4 and moves = 1200 in
      let winner jobs = Core.Oblx.best_of ~seed ~moves ~jobs ~runs p in
      let b1, all1 = winner 1 in
      let b4, all4 = winner 4 in
      Alcotest.(check int) "all runs reported (jobs=1)" runs (List.length all1);
      Alcotest.(check int) "all runs reported (jobs=4)" runs (List.length all4);
      Alcotest.(check (float 0.0)) "same winning cost" b1.Core.Oblx.best_cost b4.best_cost;
      Alcotest.(check int) "same winning design (state hash)"
        (state_fingerprint b1.final) (state_fingerprint b4.final);
      (* Per-run results line up pairwise too, not just the winner. *)
      List.iter2
        (fun (a : Core.Oblx.result) (b : Core.Oblx.result) ->
          Alcotest.(check (float 0.0)) "run cost matches across job counts" a.best_cost
            b.best_cost)
        all1 all4;
      (* Restarts draw from distinct split streams, so they explore
         genuinely different trajectories. *)
      let distinct =
        List.sort_uniq compare (List.map (fun (r : Core.Oblx.result) -> r.Core.Oblx.best_cost) all1)
      in
      Alcotest.(check bool) "restarts differ from each other" true (List.length distinct > 1)

let test_annealer_stage_hook_runs () =
  let stages = ref 0 in
  let problem =
    { (vector_problem ~cost:(fun st -> st.(0) *. st.(0)) ~dim:1 ~span:1.0) with
      Anneal.Annealer.on_stage = Some (fun _ _ -> incr stages) }
  in
  let rng = Anneal.Rng.create 1 in
  let out = Anneal.Annealer.run ~rng ~total_moves:2000 ~init:[| 1.0 |] problem in
  Alcotest.(check bool) "stages ran" true (!stages > 0);
  Alcotest.(check int) "stage count matches" !stages out.Anneal.Annealer.stages

let () =
  Alcotest.run "anneal"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "split statistical independence" `Quick
            test_rng_split_statistical_independence;
        ] );
      ( "lam",
        [
          Alcotest.test_case "target trajectory" `Quick test_lam_target_trajectory;
          Alcotest.test_case "feedback direction" `Quick test_lam_feedback_direction;
        ] );
      ( "hustin",
        [
          Alcotest.test_case "distribution" `Quick test_hustin_distribution;
          Alcotest.test_case "pick follows probs" `Quick test_hustin_pick_follows_probs;
          QCheck_alcotest.to_alcotest prop_hustin_probs_normalized;
          Alcotest.test_case "starved class recovers" `Quick test_hustin_starved_class_recovers;
          Alcotest.test_case "probs round-trip (warm-start)" `Quick
            test_hustin_probs_round_trip;
        ] );
      ("range", [ Alcotest.test_case "adaptation" `Quick test_range_adaptation ]);
      ( "annealer",
        [
          Alcotest.test_case "sphere" `Quick test_annealer_sphere;
          Alcotest.test_case "rastrigin (multimodal)" `Slow test_annealer_rastrigin;
          Alcotest.test_case "best preserved" `Quick test_annealer_best_preserved;
          Alcotest.test_case "stage hook" `Quick test_annealer_stage_hook_runs;
          Alcotest.test_case "abort hook" `Quick test_annealer_abort_hook;
          Alcotest.test_case "inert abort hook" `Quick test_annealer_no_abort_unaffected;
        ] );
      ( "multi-start",
        [
          Alcotest.test_case "jobs-count determinism" `Slow test_best_of_jobs_deterministic;
        ] );
    ]
