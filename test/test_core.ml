(* Tests for the ASTRX compiler and OBLX machinery: tree-link analysis,
   device templates, compilation of the whole benchmark suite, cost
   evaluation, Newton-Raphson moves, adaptive weights. *)

let circuit src = Netlist.Elab.flatten ~subckts:[] (Netlist.Parser.parse_elements src)
let registry = Result.get_ok (Devices.Registry.build ~process:"p1u2" [])

(* --- Treelink --- *)

let test_treelink_fixed_and_free () =
  (* vdd fixes node a; node mid (between resistors) is free. *)
  let c = circuit "vdd a 0 5\nr1 a mid 1k\nr2 mid 0 1k\n" in
  let tl = Core.Treelink.analyze c in
  Alcotest.(check int) "one free var" 1 tl.Core.Treelink.n_free;
  (match tl.Core.Treelink.of_node.(Netlist.Circuit.find_node c "a") with
  | Core.Treelink.Fixed _ -> ()
  | Core.Treelink.Free _ -> Alcotest.fail "a should be fixed");
  match tl.Core.Treelink.of_node.(Netlist.Circuit.find_node c "mid") with
  | Core.Treelink.Free _ -> ()
  | Core.Treelink.Fixed _ -> Alcotest.fail "mid should be free"

let test_treelink_chained_sources () =
  (* Stacked sources: 0 -> a (5V) -> b (a+2). Both fixed. *)
  let c = circuit "v1 a 0 5\nv2 b a 2\nr1 b 0 1k\n" in
  let tl = Core.Treelink.analyze c in
  Alcotest.(check int) "no free vars" 0 tl.Core.Treelink.n_free

let test_treelink_supernode () =
  (* A floating source ties two otherwise-free nodes into one variable. *)
  let c = circuit "i1 0 x 1m\nvf y x 1\nr1 x 0 1k\nr2 y 0 1k\n" in
  let tl = Core.Treelink.analyze c in
  Alcotest.(check int) "one supernode var" 1 tl.Core.Treelink.n_free;
  let kx =
    match tl.Core.Treelink.of_node.(Netlist.Circuit.find_node c "x") with
    | Core.Treelink.Free (k, _) -> k
    | Core.Treelink.Fixed _ -> Alcotest.fail "x free"
  in
  match tl.Core.Treelink.of_node.(Netlist.Circuit.find_node c "y") with
  | Core.Treelink.Free (k, _) -> Alcotest.(check int) "same group" kx k
  | Core.Treelink.Fixed _ -> Alcotest.fail "y free"

(* --- Template expansion --- *)

let test_template_adds_internal_nodes () =
  let c = circuit "m1 d g s b nmos w=10u l=2u\n" in
  let before_nodes = Netlist.Circuit.node_count c in
  let e = Core.Template.expand ~registry c in
  Alcotest.(check int) "adds 2 nodes" (before_nodes + 2) (Netlist.Circuit.node_count e);
  Alcotest.(check int) "adds 2 resistors" 3 (Netlist.Circuit.element_count e);
  (* The channel element now connects to the internal nodes. *)
  match Netlist.Circuit.find_element e "m1" with
  | Netlist.Circuit.Mosfet { d; s; _ } ->
      let di = Netlist.Circuit.find_node e "m1#d" and si = Netlist.Circuit.find_node e "m1#s" in
      Alcotest.(check int) "drain internal" di d;
      Alcotest.(check int) "source internal" si s
  | _ -> Alcotest.fail "m1 missing"

(* --- Compilation of the full suite --- *)

let compile_suite name =
  let e = Option.get (Suite.Ckts.find name) in
  match Core.Compile.compile_source e.Suite.Ckts.source with
  | Ok p -> p
  | Error msg -> Alcotest.failf "%s: %s" name msg

let test_compile_all_suite () =
  List.iter
    (fun (e : Suite.Ckts.entry) -> ignore (compile_suite e.name))
    Suite.Ckts.all

let test_compile_simple_ota_analysis () =
  let p = compile_suite "simple-ota" in
  let a = p.Core.Problem.analysis in
  Alcotest.(check int) "7 user vars (paper: 7)" 7 a.Core.Problem.n_user_vars;
  (* Internal template nodes make added voltages outnumber user vars, as
     the paper reports. *)
  Alcotest.(check bool) "node vars > user vars" true (a.n_node_vars > a.n_user_vars);
  Alcotest.(check bool) "terms counted" true (a.n_cost_terms > 20);
  Alcotest.(check bool) "lines-of-C metric" true (a.lines_of_c > 300)

let test_compile_errors () =
  let bad src =
    match Core.Compile.compile_source src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected compile error"
  in
  (* no bias block *)
  bad ".jig j\nvin a 0 0 ac 1\nr1 a 0 1k\n.pz t v(a) vin\n.endjig\n.obj o 'dc_gain(t)' good=1 bad=0\n";
  (* unknown transfer function in spec *)
  bad
    ".jig j\nvin a 0 0 ac 1\nr1 a 0 1k\n.pz t v(a) vin\n.endjig\n.bias\nr1 a 0 1k\n.endbias\n.obj o 'dc_gain(zzz)' good=1 bad=0\n";
  (* unknown node in .pz *)
  bad
    ".jig j\nvin a 0 0 ac 1\nr1 a 0 1k\n.pz t v(nope) vin\n.endjig\n.bias\nr1 a 0 1k\n.endbias\n.obj o 'dc_gain(t)' good=1 bad=0\n";
  (* spec with good = bad *)
  bad
    ".jig j\nvin a 0 0 ac 1\nr1 a 0 1k\n.pz t v(a) vin\n.endjig\n.bias\nr1 a 0 1k\n.endbias\n.obj o 'dc_gain(t)' good=1 bad=1\n";
  (* jig device with no bias counterpart *)
  bad
    (".jig j\nvin g 0 2 ac 1\nvd d0 0 5\nm9 d0 g 0 0 nmos w=10u l=2u\n.pz t v(d0) vin\n.endjig\n"
   ^ ".bias\nr1 a 0 1k\n.endbias\n.obj o 'dc_gain(t)' good=1 bad=0\n.process p1u2\n")

(* --- State --- *)

let test_state_grid () =
  let info =
    [|
      Core.State.User
        { name = "w"; vmin = 1e-6; vmax = 1e-4; grid = Core.State.Log_grid; steps = Some 21 };
      Core.State.User { name = "v"; vmin = 0.0; vmax = 5.0; grid = Core.State.Lin_grid; steps = None };
    |]
  in
  let st = Core.State.create info in
  (* Discrete var starts on the grid at the geometric midpoint. *)
  Alcotest.(check int) "mid slot" 10 st.Core.State.grid_index.(0);
  Alcotest.(check bool) "value on grid" true (Float.abs (st.values.(0) -. 1e-5) < 1e-9);
  (* Stepping the grid moves by the log step. *)
  ignore (Core.State.set_grid_slot st 0 11);
  let ratio = st.values.(0) /. 1e-5 in
  Alcotest.(check bool) "log step ratio" true (Float.abs (ratio -. (100.0 ** 0.05)) < 1e-6);
  (* Clamping at the ends. *)
  ignore (Core.State.set_grid_slot st 0 999);
  Alcotest.(check int) "clamped high" 20 st.grid_index.(0);
  (* Continuous clamp. *)
  Core.State.set_initial st 1 7.0;
  Alcotest.(check (float 0.0)) "clamped" 5.0 st.values.(1);
  (* Snapshot/restore round-trip. *)
  let snap = Core.State.snapshot st in
  Core.State.set_initial st 1 1.0;
  Core.State.restore ~from:snap st;
  Alcotest.(check (float 0.0)) "restored" 5.0 st.values.(1)

(* --- Cost evaluation and Newton moves on the simple OTA --- *)

let test_eval_kcl_zero_after_newton () =
  let p = compile_suite "simple-ota" in
  let st = Core.State.snapshot p.Core.Problem.state0 in
  (* Drive the node voltages to dc-correctness: global solve to get into
     the Newton basin, then iterate the relaxed-dc NR step. *)
  Alcotest.(check bool) "global solve works" true (Core.Moves.newton_global p st);
  let rec iterate n =
    if n > 0 then begin
      match Core.Moves.newton_step p st ~damping:1.0 with
      | Some change when change > 1e-12 -> iterate (n - 1)
      | Some _ | None -> ()
    end
  in
  iterate 60;
  let bp = Core.Eval.bias_point p st in
  let worst = Array.fold_left (fun acc r -> Float.max acc (Float.abs r)) 0.0 bp.Core.Eval.residuals in
  Alcotest.(check bool) "KCL < 1 pA" true (worst < 1e-12);
  (* And the relaxed voltages agree with the reference simulator. *)
  match Core.Verify.bias_voltage_error p st with
  | Ok e -> Alcotest.(check bool) "voltages match NR solve" true (e < 1e-5)
  | Error msg -> Alcotest.failf "verify: %s" msg

let test_eval_cost_decomposition () =
  let p = compile_suite "simple-ota" in
  let w = Core.Weights.create () in
  let bd = Core.Eval.cost p w p.Core.Problem.state0 in
  Alcotest.(check bool) "penalties nonneg" true
    (bd.Core.Eval.c_perf >= 0.0 && bd.c_dev >= 0.0 && bd.c_dc >= 0.0);
  Alcotest.(check (float 1e-9)) "total is the sum"
    (bd.c_obj +. bd.c_perf +. bd.c_dev +. bd.c_dc)
    bd.total

let test_eval_area_function () =
  let p = compile_suite "simple-ota" in
  let st = p.Core.Problem.state0 in
  let area = Core.Eval.active_area_um2 p st in
  (* 6 devices, each w*l at the grid midpoints: just sanity bounds. *)
  Alcotest.(check bool) "positive and sane" true (area > 10.0 && area < 1e6)

let test_weights_ratchet () =
  let w = Core.Weights.create () in
  for _ = 1 to 50 do
    Core.Weights.update w ~progress:0.8 ~perf:1.0 ~dev:0.0 ~dc:1.0
  done;
  Alcotest.(check bool) "violated groups grow" true (w.Core.Weights.w_perf > 5.0);
  Alcotest.(check bool) "dc grows" true (w.w_dc > 5.0);
  Alcotest.(check bool) "satisfied group near 1" true (w.w_dev <= 1.0 +. 1e-9);
  for _ = 1 to 10000 do
    Core.Weights.update w ~progress:0.9 ~perf:1.0 ~dev:0.0 ~dc:0.0
  done;
  Alcotest.(check bool) "capped" true (w.w_perf <= 1e4 +. 1.0)

let test_weights_relax_when_satisfied () =
  let w = Core.Weights.create () in
  for _ = 1 to 60 do
    Core.Weights.update w ~progress:0.8 ~perf:1.0 ~dev:1.0 ~dc:1.0
  done;
  let high = w.Core.Weights.w_perf in
  Alcotest.(check bool) "grew under violation" true (high > 100.0);
  (* Once the group is satisfied the weight relaxes multiplicatively. *)
  let prev = ref high in
  for _ = 1 to 200 do
    Core.Weights.update w ~progress:0.8 ~perf:0.0 ~dev:0.0 ~dc:0.0;
    Alcotest.(check bool) "monotone decay" true (w.Core.Weights.w_perf <= !prev +. 1e-12);
    prev := w.Core.Weights.w_perf
  done;
  Alcotest.(check (float 1e-9)) "one relax step is x0.995" (high *. (0.995 ** 200.0))
    w.Core.Weights.w_perf;
  (* Decay clamps at w_min = 1, never below. *)
  for _ = 1 to 100_000 do
    Core.Weights.update w ~progress:0.8 ~perf:0.0 ~dev:0.0 ~dc:0.0
  done;
  Alcotest.(check (float 0.0)) "floor at 1" 1.0 w.Core.Weights.w_perf;
  Alcotest.(check (float 0.0)) "dev floor at 1" 1.0 w.w_dev

let test_weights_gain_accelerates_with_progress () =
  (* The same violation pressure pushes harder near freeze-out than at the
     start of the anneal. *)
  let grow progress =
    let w = Core.Weights.create () in
    for _ = 1 to 20 do
      Core.Weights.update w ~progress ~perf:1.0 ~dev:0.0 ~dc:0.0
    done;
    w.Core.Weights.w_perf
  in
  let early = grow 0.1 and mid = grow 0.5 and late = grow 0.9 in
  Alcotest.(check bool) "early < mid" true (early < mid);
  Alcotest.(check bool) "mid < late" true (mid < late);
  Alcotest.(check (float 1e-9)) "early gain is 1.02^20" (1.02 ** 20.0) early;
  Alcotest.(check (float 1e-9)) "late gain is 1.15^20" (1.15 ** 20.0) late

let test_moves_undo_restores () =
  let p = compile_suite "simple-ota" in
  let ctx = Core.Moves.make p in
  let st = Core.State.snapshot p.Core.Problem.state0 in
  let rng = Anneal.Rng.create 2 in
  let reference = Core.State.snapshot st in
  for k = 0 to Array.length Core.Moves.classes - 1 do
    for _ = 1 to 20 do
      match Core.Moves.propose ctx st k rng with
      | Some undo ->
          undo ();
          Alcotest.(check bool)
            (Printf.sprintf "undo of class %d restores values" k)
            true
            (st.Core.State.values = reference.Core.State.values
            && st.grid_index = reference.grid_index)
      | None -> ()
    done
  done

let test_oblx_short_run_deterministic () =
  let p = compile_suite "simple-ota" in
  let r1 = Core.Oblx.synthesize ~seed:4 ~moves:800 p in
  let r2 = Core.Oblx.synthesize ~seed:4 ~moves:800 p in
  Alcotest.(check (float 0.0)) "same seed, same result" r1.Core.Oblx.best_cost r2.best_cost;
  let r3 = Core.Oblx.synthesize ~seed:5 ~moves:800 p in
  Alcotest.(check bool) "different seed differs" true (r1.best_cost <> r3.Core.Oblx.best_cost)

let test_oblx_trace_collected () =
  let p = compile_suite "simple-ota" in
  let r = Core.Oblx.synthesize ~seed:6 ~moves:8000 p in
  Alcotest.(check bool) "trace nonempty" true (List.length r.Core.Oblx.trace > 2);
  (* Fig. 2 shape: the final KCL discrepancy sits well below the worst
     seen during optimization (individual stage samples are noisy, so
     compare the end against the peak, not point to point). *)
  let worst =
    List.fold_left (fun acc tp -> Float.max acc tp.Core.Oblx.tp_max_kcl_abs) 0.0 r.trace
  in
  (match List.rev r.trace with
  | last :: _ ->
      Alcotest.(check bool) "kcl ends below a tenth of its peak" true
        (last.Core.Oblx.tp_max_kcl_abs < 0.1 *. worst)
  | [] -> Alcotest.fail "trace");
  (* The NR-polished best design is dc-correct outright. *)
  match Core.Verify.kcl_abs_error p r.final with
  | Ok e -> Alcotest.(check bool) "polished KCL tiny" true (e < 1e-9)
  | Error msg -> Alcotest.failf "kcl: %s" msg

let test_report_eng () =
  Alcotest.(check string) "meg" "73.7meg" (Core.Report.eng 73.7e6);
  Alcotest.(check string) "micro" "2.5u" (Core.Report.eng 2.5e-6);
  Alcotest.(check string) "zero" "0" (Core.Report.eng 0.0)


let test_devregion_any_disables_penalty () =
  (* A .devregion card switching a device to "any" removes its region
     terms from the cost. *)
  let base = Suite.Simple_ota.source in
  let with_any = base ^ ".devregion xamp.m5 any\n" in
  match (Core.Compile.compile_source base, Core.Compile.compile_source with_any) with
  | Ok p0, Ok p1 ->
      Alcotest.(check int) "one fewer cost term"
        (p0.Core.Problem.analysis.Core.Problem.n_cost_terms - 1)
        p1.Core.Problem.analysis.Core.Problem.n_cost_terms
  | _, _ -> Alcotest.fail "compile"

let test_corner_compile_changes_prediction () =
  (* Compiling the same problem at a slow corner shifts measured specs. *)
  let slow = List.nth Core.Corners.standard 1 in
  match
    ( Core.Compile.compile_source Suite.Simple_ota.source,
      Core.Compile.compile_source ~corner:slow Suite.Simple_ota.source )
  with
  | Ok p0, Ok p1 ->
      let measure p =
        let st = Core.State.snapshot p.Core.Problem.state0 in
        ignore (Core.Moves.newton_global p st);
        let m = Core.Eval.measure p st in
        List.assoc "pwr" m.Core.Eval.spec_values
      in
      (match (measure p0, measure p1) with
      | Some a, Some b ->
          Alcotest.(check bool) "corner changes power" true
            (Float.abs (a -. b) > 1e-3 *. Float.abs a)
      | _, _ -> Alcotest.fail "measurement failed")
  | _, _ -> Alcotest.fail "compile"


let test_sized_netlist_roundtrip () =
  (* The exported deck parses back and simulates to the same bias point. *)
  let p = compile_suite "simple-ota" in
  let st = Core.State.snapshot p.Core.Problem.state0 in
  Alcotest.(check bool) "bias solves" true (Core.Moves.newton_global p st);
  let deck = Core.Report.sized_netlist p st in
  let element_lines =
    String.split_on_char '\n' deck
    |> List.filter (fun l -> String.length l > 0 && l.[0] <> '*' && l.[0] <> '.')
    |> String.concat "\n"
  in
  let elems = Netlist.Parser.parse_elements element_lines in
  let c = Netlist.Elab.flatten ~subckts:[] elems in
  let reg = p.Core.Problem.registry in
  let value e =
    Netlist.Expr.eval
      { Netlist.Expr.lookup = (fun _ -> raise Not_found); call = (fun _ _ -> nan) }
      e
  in
  match Mna.Dc.solve ~value ~registry:reg c with
  | Error e -> Alcotest.failf "re-simulation: %s" e
  | Ok sol ->
      (* The re-simulated output voltage matches the relaxed-dc state. *)
      let out = Netlist.Circuit.find_node c "out" in
      let orig_out = Netlist.Circuit.find_node p.Core.Problem.bias "out" in
      let v_orig = (Core.Eval.node_voltages p st).(orig_out) in
      Alcotest.(check bool) "output voltage within 50 mV" true
        (Float.abs (Mna.Dc.node_voltage sol out -. v_orig) < 0.05)

let () =
  Alcotest.run "core"
    [
      ( "treelink",
        [
          Alcotest.test_case "fixed and free" `Quick test_treelink_fixed_and_free;
          Alcotest.test_case "chained sources" `Quick test_treelink_chained_sources;
          Alcotest.test_case "supernode" `Quick test_treelink_supernode;
        ] );
      ("template", [ Alcotest.test_case "internal nodes" `Quick test_template_adds_internal_nodes ]);
      ( "compile",
        [
          Alcotest.test_case "whole suite compiles" `Quick test_compile_all_suite;
          Alcotest.test_case "simple-ota analysis" `Quick test_compile_simple_ota_analysis;
          Alcotest.test_case "errors" `Quick test_compile_errors;
        ] );
      ("state", [ Alcotest.test_case "grids and clamps" `Quick test_state_grid ]);
      ( "eval",
        [
          Alcotest.test_case "newton drives KCL to zero" `Quick test_eval_kcl_zero_after_newton;
          Alcotest.test_case "cost decomposition" `Quick test_eval_cost_decomposition;
          Alcotest.test_case "area function" `Quick test_eval_area_function;
        ] );
      ( "weights",
        [
          Alcotest.test_case "ratchet" `Quick test_weights_ratchet;
          Alcotest.test_case "relax when satisfied" `Quick test_weights_relax_when_satisfied;
          Alcotest.test_case "gain accelerates" `Quick test_weights_gain_accelerates_with_progress;
        ] );
      ( "oblx",
        [
          Alcotest.test_case "moves undo" `Quick test_moves_undo_restores;
          Alcotest.test_case "determinism" `Slow test_oblx_short_run_deterministic;
          Alcotest.test_case "trace (fig 2)" `Slow test_oblx_trace_collected;
        ] );
      ("report", [ Alcotest.test_case "eng format" `Quick test_report_eng ]);
      ( "features",
        [
          Alcotest.test_case "devregion any" `Quick test_devregion_any_disables_penalty;
          Alcotest.test_case "sized netlist roundtrip" `Quick test_sized_netlist_roundtrip;
          Alcotest.test_case "corner compile" `Quick test_corner_compile_changes_prediction;
        ] );
    ]
