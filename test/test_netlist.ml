(* Tests for the card parser and subcircuit elaboration. *)

let parse_one s =
  match Netlist.Parser.parse_elements s with
  | [ e ] -> e
  | _ -> Alcotest.failf "expected one element from %S" s

let test_parse_rlc () =
  (match parse_one "r1 a b 1k" with
  | Netlist.Ast.Resistor { name; n1; n2; _ } ->
      Alcotest.(check string) "name" "r1" name;
      Alcotest.(check string) "n1" "a" n1;
      Alcotest.(check string) "n2" "b" n2
  | _ -> Alcotest.fail "not a resistor");
  (match parse_one "c2 out 0 'cl'" with
  | Netlist.Ast.Capacitor { value = Netlist.Expr.Ref [ "cl" ]; _ } -> ()
  | _ -> Alcotest.fail "capacitor with expression value");
  match parse_one "l1 a b 1u" with
  | Netlist.Ast.Inductor _ -> ()
  | _ -> Alcotest.fail "inductor"

let test_parse_sources () =
  (match parse_one "v1 p n 5 ac 1" with
  | Netlist.Ast.Vsource { ac; _ } -> Alcotest.(check (float 0.0)) "ac" 1.0 ac
  | _ -> Alcotest.fail "vsource");
  (match parse_one "ib vdd bp '2*i'" with
  | Netlist.Ast.Isource { dc = Netlist.Expr.Mul _; _ } -> ()
  | _ -> Alcotest.fail "isource with expr");
  (match parse_one "e1 a b c d 10" with
  | Netlist.Ast.Vcvs _ -> ()
  | _ -> Alcotest.fail "vcvs");
  (match parse_one "g1 a b c d 1m" with
  | Netlist.Ast.Vccs _ -> ()
  | _ -> Alcotest.fail "vccs");
  (match parse_one "f1 a b vsense 2" with
  | Netlist.Ast.Cccs { vsrc; _ } -> Alcotest.(check string) "vsrc" "vsense" vsrc
  | _ -> Alcotest.fail "cccs");
  match parse_one "h1 a b vsense 50" with
  | Netlist.Ast.Ccvs _ -> ()
  | _ -> Alcotest.fail "ccvs"

let test_parse_devices () =
  (match parse_one "m1 d g s b nmos w='w1' l=2u m=2" with
  | Netlist.Ast.Mosfet { model; w = Netlist.Expr.Ref [ "w1" ]; _ } ->
      Alcotest.(check string) "model" "nmos" model
  | _ -> Alcotest.fail "mosfet");
  match parse_one "q1 c b e npn 2" with
  | Netlist.Ast.Bjt { area = Netlist.Expr.Const 2.0; _ } -> ()
  | _ -> Alcotest.fail "bjt"

let test_parse_mosfet_missing_w () =
  match Netlist.Parser.parse_elements "m1 d g s b nmos l=2u" with
  | exception Netlist.Parser.Error (_, _) -> ()
  | _ -> Alcotest.fail "expected error for missing w="

let test_continuation_and_comments () =
  let src = "* a comment\nr1 a b\n+ 1k ; trailing comment\nr2 b 0 2k\n" in
  Alcotest.(check int) "two elements" 2 (List.length (Netlist.Parser.parse_elements src))

let test_case_insensitive () =
  match parse_one "R1 A B 1K" with
  | Netlist.Ast.Resistor { name; n1; _ } ->
      Alcotest.(check string) "lowered name" "r1" name;
      Alcotest.(check string) "lowered node" "a" n1
  | _ -> Alcotest.fail "resistor"

let small_problem =
  {|.title test
.process p1u2
.param cl=1p
.subckt amp in out vdd
m1 out in 0 0 nmos w='w' l='l'
r1 vdd out 10k
.ends
.var w min=2u max=100u steps=10
.var l min=1u max=10u
.jig main
xa in out nvdd amp
vdd nvdd 0 5
vin in 0 2.5 ac 1
cl1 out 0 'cl'
.pz tf v(out) vin
.endjig
.bias
xa in out nvdd amp
vdd nvdd 0 5
vin in 0 2.5
.endbias
.obj gain 'db(dc_gain(tf))' good=20 bad=0
.spec ugf 'ugf(tf)' good=1meg bad=10k
|}

let test_parse_problem () =
  let p = Netlist.Parser.parse_problem small_problem in
  Alcotest.(check int) "subckts" 1 (List.length p.Netlist.Ast.subckts);
  Alcotest.(check int) "vars" 2 (List.length p.vars);
  Alcotest.(check int) "jigs" 1 (List.length p.jigs);
  Alcotest.(check int) "specs" 2 (List.length p.specs);
  Alcotest.(check (option string)) "process" (Some "p1u2") p.process;
  (match p.vars with
  | [ w; l ] ->
      Alcotest.(check (option int)) "w discrete" (Some 10) w.Netlist.Ast.steps;
      Alcotest.(check (option int)) "l continuous" None l.Netlist.Ast.steps
  | _ -> Alcotest.fail "vars");
  match p.specs with
  | [ gain; ugf ] ->
      Alcotest.(check bool) "obj kind" true (gain.Netlist.Ast.kind = Netlist.Ast.Objective_max);
      Alcotest.(check bool) "spec kind" true (ugf.Netlist.Ast.kind = Netlist.Ast.Constraint_ge)
  | _ -> Alcotest.fail "specs"

let test_pz_differential () =
  let p =
    Netlist.Parser.parse_problem
      ".jig j\nvin a 0 0 ac 1\nr1 a b 1k\nr2 b 0 1k\n.pz t v(a,b) vin\n.endjig\n.bias\nr9 x 0 1\n.endbias\n.obj o 'dc_gain(t)' good=1 bad=0\n"
  in
  match p.Netlist.Ast.jigs with
  | [ { pzs = [ pz ]; _ } ] ->
      Alcotest.(check string) "pos" "a" pz.Netlist.Ast.out_pos;
      Alcotest.(check (option string)) "neg" (Some "b") pz.out_neg
  | _ -> Alcotest.fail "jig"

let test_parse_problem_errors () =
  let bad src =
    match Netlist.Parser.parse_problem src with
    | exception Netlist.Parser.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" src
  in
  bad ".subckt a\n";
  (* missing ports *)
  bad ".jig j\n";
  (* unterminated *)
  bad ".var x max=1\n";
  (* missing min *)
  bad ".spec s 'x'\n";
  (* missing good/bad *)
  bad ".frobnicate\n";
  bad "r1 a b 1k\n" (* element at top level *)

let test_line_counts () =
  let p = Netlist.Parser.parse_problem small_problem in
  (* netlist-ish: .title .process .subckt(2 elems+ends=4 lines) .jig(6) .pz .endjig .bias(4) .endbias *)
  Alcotest.(check bool) "netlist lines counted" true (p.Netlist.Ast.counts.netlist_lines >= 15);
  Alcotest.(check int) "synth lines" 5 p.counts.synth_lines
(* .param + 2 .var + .obj + .spec *)

(* --- Elaboration --- *)

let test_elab_flat () =
  let elems = Netlist.Parser.parse_elements "r1 a b 1k\nr2 b 0 1k\n" in
  let c = Netlist.Elab.flatten ~subckts:[] elems in
  Alcotest.(check int) "nodes (gnd + a + b)" 3 (Netlist.Circuit.node_count c);
  Alcotest.(check int) "elements" 2 (Netlist.Circuit.element_count c)

let test_elab_subckt () =
  let p = Netlist.Parser.parse_problem small_problem in
  let jig = List.hd p.Netlist.Ast.jigs in
  let c = Netlist.Elab.flatten ~subckts:p.subckts jig.jig_body in
  (* xa.m1 and xa.r1 present with prefixed names *)
  (match Netlist.Circuit.find_element c "xa.m1" with
  | Netlist.Circuit.Mosfet _ -> ()
  | _ -> Alcotest.fail "xa.m1 not a mosfet"
  | exception Not_found -> Alcotest.fail "xa.m1 missing");
  (* port mapping: the subckt 'out' port is the jig's 'out' node *)
  match Netlist.Circuit.find_node c "out" with
  | _ -> ()
  | exception Not_found -> Alcotest.fail "port node missing"

let test_elab_param_subst () =
  let subckts =
    (Netlist.Parser.parse_problem ".subckt dub a b\nr1 a b 'r0*2'\n.ends\n.bias\nr9 x 0 1\n.endbias\n.obj o 'area()' good=1 bad=2\n")
      .Netlist.Ast.subckts
  in
  let elems = Netlist.Parser.parse_elements "x1 p q dub r0=500\n" in
  let c = Netlist.Elab.flatten ~subckts elems in
  match Netlist.Circuit.find_element c "x1.r1" with
  | Netlist.Circuit.Resistor { value; _ } ->
      let v =
        Netlist.Expr.eval
          { Netlist.Expr.lookup = (fun _ -> raise Not_found); call = (fun _ _ -> nan) }
          value
      in
      Alcotest.(check (float 1e-9)) "substituted" 1000.0 v
  | _ -> Alcotest.fail "x1.r1"

let test_elab_unknown_subckt () =
  match Netlist.Elab.flatten ~subckts:[] (Netlist.Parser.parse_elements "x1 a b nosuch\n") with
  | exception Netlist.Elab.Error _ -> ()
  | _ -> Alcotest.fail "expected elaboration error"

let test_elab_port_arity () =
  let subckts =
    [ { Netlist.Ast.sub_name = "two"; ports = [ "a"; "b" ]; body = [] } ]
  in
  match Netlist.Elab.flatten ~subckts (Netlist.Parser.parse_elements "x1 a two\n") with
  | exception Netlist.Elab.Error _ -> ()
  | _ -> Alcotest.fail "expected arity error"


let test_elab_nested_subckts () =
  (* Two levels of nesting with parameter substitution through both. *)
  let p =
    Netlist.Parser.parse_problem
      (".subckt inner a b\nr1 a b 'rv'\n.ends\n"
      ^ ".subckt outer x y\nxi x y inner rv='rtop*2'\n.ends\n"
      ^ ".bias\nr9 z 0 1\n.endbias\n.obj o 'area()' good=1 bad=2\n")
  in
  let elems = Netlist.Parser.parse_elements "xo p q outer rtop=100\n" in
  let c = Netlist.Elab.flatten ~subckts:p.Netlist.Ast.subckts elems in
  match Netlist.Circuit.find_element c "xo.xi.r1" with
  | Netlist.Circuit.Resistor { value; _ } ->
      let v =
        Netlist.Expr.eval
          { Netlist.Expr.lookup = (fun _ -> raise Not_found); call = (fun _ _ -> nan) }
          value
      in
      Alcotest.(check (float 1e-9)) "param through two levels" 200.0 v
  | _ -> Alcotest.fail "xo.xi.r1"

let test_elab_ground_aliases () =
  (* "0" and "gnd" are the same node. *)
  let c = Netlist.Elab.flatten ~subckts:[] (Netlist.Parser.parse_elements "r1 a 0 1k\nr2 a gnd 1k\n") in
  Alcotest.(check int) "two nodes only" 2 (Netlist.Circuit.node_count c)

(* --- Canonical hashing (the serve-layer compile-cache key) --- *)

let hash_src s = Netlist.Canon.problem_hash (Netlist.Parser.parse_problem s)

let test_canon_circuit_element_order () =
  let flat s = Netlist.Elab.flatten ~subckts:[] (Netlist.Parser.parse_elements s) in
  (* Element order also permutes node-interning order; both must cancel. *)
  let a = flat "r1 a b 1k\nr2 b 0 2k\nc1 a 0 1p\n" in
  let b = flat "c1 a 0 1p\nr2 b 0 2k\nr1 a b 1k\n" in
  Alcotest.(check string) "reordered elements hash alike" (Netlist.Canon.circuit_hash a)
    (Netlist.Canon.circuit_hash b);
  let changed = flat "r1 a b 1k\nr2 b 0 2k\nc1 a 0 2p\n" in
  Alcotest.(check bool) "changed value hashes differently" true
    (Netlist.Canon.circuit_hash a <> Netlist.Canon.circuit_hash changed)

let test_canon_problem_invariances () =
  let base = hash_src small_problem in
  (* Same facts: jig and bias element lines permuted, subckt body permuted,
     a comment added, the title changed. *)
  let permuted =
    {|.title something else entirely
* a cosmetic comment
.process p1u2
.param cl=1p
.subckt amp in out vdd
r1 vdd out 10k
m1 out in 0 0 nmos w='w' l='l'
.ends
.var w min=2u max=100u steps=10
.var l min=1u max=10u
.jig main
cl1 out 0 'cl'
vin in 0 2.5 ac 1
vdd nvdd 0 5
xa in out nvdd amp
.pz tf v(out) vin
.endjig
.bias
vin in 0 2.5
vdd nvdd 0 5
xa in out nvdd amp
.endbias
.obj gain 'db(dc_gain(tf))' good=20 bad=0
.spec ugf 'ugf(tf)' good=1meg bad=10k
|}
  in
  Alcotest.(check string) "order/comments/title canonicalized away" base (hash_src permuted)

let test_canon_subckt_inst_order () =
  let mk body =
    ".subckt d a b\nr1 a b 1k\n.ends\n.jig j\n" ^ body
    ^ "vin p 0 1 ac 1\n.pz t v(q) vin\n.endjig\n.bias\nr9 x 0 1\n.endbias\n\
       .obj o 'dc_gain(t)' good=1 bad=0\n"
  in
  Alcotest.(check string) "instantiation order canonicalized away"
    (hash_src (mk "x1 p q d\nx2 q 0 d\n"))
    (hash_src (mk "x2 q 0 d\nx1 p q d\n"))

let replace_once sub by s =
  let n = String.length s and m = String.length sub in
  let rec find i =
    if i + m > n then Alcotest.failf "pattern %S not found" sub
    else if String.sub s i m = sub then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)

let test_canon_problem_sensitivity () =
  let base = hash_src small_problem in
  let tweaked replace_what with_what =
    let s = replace_once replace_what with_what small_problem in
    Alcotest.(check bool)
      (Printf.sprintf "hash moves when %S -> %S" replace_what with_what)
      true
      (hash_src s <> base)
  in
  tweaked "10k" "11k";
  (* an element value inside the subckt body *)
  tweaked "max=100u" "max=90u";
  (* a variable range *)
  tweaked "good=20" "good=21";
  (* a spec bound *)
  tweaked ".param cl=1p" ".param cl=2p";
  (* a shared parameter *)
  tweaked ".process p1u2" ".process p2u"
(* the process card *)

let test_canon_shape_hash () =
  (* The winner-corpus key ("shape:v1"): spec good/bad targets are
     canonicalized away, so "same circuit, tweaked targets" collides by
     design, while the compile-cache key still separates — and anything
     moving the variable space or cost structure separates both. *)
  let shape s = Netlist.Canon.problem_shape_hash (Netlist.Parser.parse_problem s) in
  let base = shape small_problem in
  Alcotest.(check bool) "shape and compile keys are distinct spaces" true
    (base <> hash_src small_problem);
  let ugf_moved = replace_once "good=1meg" "good=2meg" small_problem in
  Alcotest.(check string) "spec target canonicalized away" base (shape ugf_moved);
  Alcotest.(check bool) "compile key still moves on the same tweak" true
    (hash_src ugf_moved <> hash_src small_problem);
  let obj_moved = replace_once "bad=0" "bad=5" small_problem in
  Alcotest.(check string) "objective target canonicalized away" base (shape obj_moved);
  List.iter
    (fun (what, with_) ->
      Alcotest.(check bool)
        (Printf.sprintf "shape moves when %S -> %S" what with_)
        true
        (shape (replace_once what with_ small_problem) <> base))
    [
      ("10k", "11k") (* element value *);
      ("max=100u" (* variable range *), "max=90u");
      (".process p1u2", ".process p2u") (* process card *);
      ("'ugf(tf)'", "'2 * ugf(tf)'") (* spec expression, not its targets *);
    ]

let () =
  Alcotest.run "netlist"
    [
      ( "parser",
        [
          Alcotest.test_case "rlc" `Quick test_parse_rlc;
          Alcotest.test_case "sources" `Quick test_parse_sources;
          Alcotest.test_case "devices" `Quick test_parse_devices;
          Alcotest.test_case "missing w" `Quick test_parse_mosfet_missing_w;
          Alcotest.test_case "continuation/comments" `Quick test_continuation_and_comments;
          Alcotest.test_case "case insensitive" `Quick test_case_insensitive;
          Alcotest.test_case "full problem" `Quick test_parse_problem;
          Alcotest.test_case "differential pz" `Quick test_pz_differential;
          Alcotest.test_case "errors" `Quick test_parse_problem_errors;
          Alcotest.test_case "line counts" `Quick test_line_counts;
        ] );
      ( "elab",
        [
          Alcotest.test_case "flat" `Quick test_elab_flat;
          Alcotest.test_case "subckt expansion" `Quick test_elab_subckt;
          Alcotest.test_case "param substitution" `Quick test_elab_param_subst;
          Alcotest.test_case "unknown subckt" `Quick test_elab_unknown_subckt;
          Alcotest.test_case "port arity" `Quick test_elab_port_arity;
          Alcotest.test_case "nested subckts" `Quick test_elab_nested_subckts;
          Alcotest.test_case "ground aliases" `Quick test_elab_ground_aliases;
        ] );
      ( "canon",
        [
          Alcotest.test_case "circuit element order" `Quick test_canon_circuit_element_order;
          Alcotest.test_case "problem invariances" `Quick test_canon_problem_invariances;
          Alcotest.test_case "subckt instantiation order" `Quick test_canon_subckt_inst_order;
          Alcotest.test_case "problem sensitivity" `Quick test_canon_problem_sensitivity;
          Alcotest.test_case "shape hash (warm-start corpus key)" `Quick
            test_canon_shape_hash;
        ] );
    ]
