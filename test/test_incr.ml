(* Incremental evaluation (Eval.Incr) must be bit-identical to the full
   evaluator. Random 1k-move walks over every synthesizable suite circuit
   compare the complete breakdown after every step — including the
   rejected/undone ones, which exercise the diff-based dirtying both
   ways. *)

let compile name =
  let e = Option.get (Suite.Ckts.find name) in
  match Core.Compile.compile_source e.Suite.Ckts.source with
  | Ok p -> p
  | Error msg -> Alcotest.failf "%s: %s" name msg

let check_bits name what a b =
  if not (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)) then
    Alcotest.failf "%s: %s differs: full %h vs incr %h" name what a b

let check_breakdown name (full : Core.Eval.breakdown) (incr : Core.Eval.breakdown) =
  check_bits name "total" full.Core.Eval.total incr.Core.Eval.total;
  check_bits name "c_obj" full.Core.Eval.c_obj incr.Core.Eval.c_obj;
  check_bits name "c_perf" full.Core.Eval.c_perf incr.Core.Eval.c_perf;
  check_bits name "c_dev" full.Core.Eval.c_dev incr.Core.Eval.c_dev;
  check_bits name "c_dc" full.Core.Eval.c_dc incr.Core.Eval.c_dc

(* A move: perturb one variable (or a couple), sometimes undo the previous
   move, sometimes mutate a weight — everything the annealer does to a
   session between evaluations. *)
let random_walk ?(moves = 1000) ?(resync_every = 128) name =
  let p = compile name in
  let st = Core.State.snapshot p.Core.Problem.state0 in
  let rng = Anneal.Rng.create 42 in
  let w = ref (Core.Weights.create ()) in
  let ss = Core.Eval.Incr.create ~resync_every p in
  let n = Core.State.n_vars st in
  let snapshot = ref (Core.State.snapshot st) in
  for step = 1 to moves do
    (match Anneal.Rng.int rng 10 with
    | 0 ->
        (* undo: jump back to the last snapshot *)
        Core.State.restore ~from:!snapshot st
    | 1 | 2 ->
        (* multi-variable move *)
        snapshot := Core.State.snapshot st;
        for _ = 0 to 1 + Anneal.Rng.int rng 2 do
          let v = Anneal.Rng.int rng n in
          let cur = st.Core.State.values.(v) in
          st.Core.State.values.(v) <-
            Core.State.clamp st v
              (cur +. ((Anneal.Rng.float rng -. 0.5) *. (Float.abs cur +. 0.1)))
        done
    | _ ->
        (* single-variable move, the annealer's common case *)
        snapshot := Core.State.snapshot st;
        let v = Anneal.Rng.int rng n in
        let cur = st.Core.State.values.(v) in
        st.Core.State.values.(v) <-
          Core.State.clamp st v
            (cur +. ((Anneal.Rng.float rng -. 0.5) *. (Float.abs cur +. 0.1))));
    if step mod 97 = 0 then
      (* the annealer re-weights between stages; caches must not care *)
      w :=
        {
          Core.Weights.w_perf = 1.0 +. Anneal.Rng.float rng;
          w_dev = 1.0 +. Anneal.Rng.float rng;
          w_dc = 1.0 +. Anneal.Rng.float rng;
        };
    Core.Eval.Incr.set_class ss (if step mod 2 = 0 then "even" else "odd");
    let incr = Core.Eval.Incr.cost ss !w st in
    let full = Core.Eval.cost p !w st in
    check_breakdown name full incr;
    (* the quick residual path must match the full one bitwise too *)
    if step mod 37 = 0 then begin
      let rq_full = Core.Eval.residuals_quick p st in
      let rq_incr = Core.Eval.Incr.residuals_quick ss st in
      Alcotest.(check int) "residual length" (Array.length rq_full) (Array.length rq_incr);
      Array.iteri (fun i v -> check_bits name (Printf.sprintf "residual %d" i) v rq_incr.(i)) rq_full
    end
  done;
  let s = Core.Eval.Incr.stats ss in
  Alcotest.(check int) (name ^ ": no resync mismatches") 0 s.Core.Eval.Incr.resync_mismatches;
  Alcotest.(check bool)
    (name ^ ": incremental path actually used")
    true
    (s.Core.Eval.Incr.incr_evals > moves / 2);
  Alcotest.(check bool)
    (name ^ ": specs reused")
    true
    (s.Core.Eval.Incr.spec_reuses > 0 || s.Core.Eval.Incr.rom_reuses > 0)

let walk_case name =
  Alcotest.test_case ("walk " ^ name) `Slow (fun () -> random_walk name)

(* Batched screening must probe without perturbing: a fuzz walk that
   screens k candidate perturbations per step with [probe_cost] (the
   approximate low-rank path) and then confirms the chosen one exactly
   must leave [Incr.cost] bit-identical to the full evaluator at every
   confirmation — probing never writes the exact caches. *)
let probe_walk ?(moves = 400) name =
  let p = compile name in
  let st = Core.State.snapshot p.Core.Problem.state0 in
  let rng = Anneal.Rng.create 1234 in
  let w = Core.Weights.create () in
  let ss = Core.Eval.Incr.create p in
  let n = Core.State.n_vars st in
  (* prime the session: probing needs retained factorizations *)
  ignore (Core.Eval.Incr.cost ss w st);
  for _step = 1 to moves do
    let base = Core.State.snapshot st in
    let k = 1 + Anneal.Rng.int rng 4 in
    let best = ref None in
    for _ = 1 to k do
      Core.State.restore ~from:base st;
      for _ = 0 to Anneal.Rng.int rng 2 do
        let v = Anneal.Rng.int rng n in
        let cur = st.Core.State.values.(v) in
        st.Core.State.values.(v) <-
          Core.State.clamp st v
            (cur +. ((Anneal.Rng.float rng -. 0.5) *. (Float.abs cur +. 0.1)))
      done;
      let c = Core.Eval.Incr.probe_cost ss w st in
      match !best with
      | Some (bc, _) when bc <= c -> ()
      | _ -> best := Some (c, Core.State.snapshot st)
    done;
    (* confirm the tournament winner — or reject the whole batch — through
       the exact path, and it must still match the full evaluator bitwise *)
    (match !best with
    | Some (_, winner) when Anneal.Rng.int rng 4 > 0 -> Core.State.restore ~from:winner st
    | _ -> Core.State.restore ~from:base st);
    let incr = Core.Eval.Incr.cost ss w st in
    let full = Core.Eval.cost p w st in
    check_breakdown name full incr
  done;
  let s = Core.Eval.Incr.stats ss in
  Alcotest.(check int) (name ^ ": no resync mismatches") 0 s.Core.Eval.Incr.resync_mismatches;
  Alcotest.(check bool) (name ^ ": probes ran") true (s.Core.Eval.Incr.probes > 0);
  Alcotest.(check bool)
    (name ^ ": probe path refit jigs")
    true
    (s.Core.Eval.Incr.probe_rom_builds > 0)

let probe_walk_case name =
  Alcotest.test_case ("probe walk " ^ name) `Slow (fun () -> probe_walk name)

(* The measured view itself (ops, roms, spec values) must round-trip. *)
let test_measure_identical () =
  let p = compile "simple-ota" in
  let st = Core.State.snapshot p.Core.Problem.state0 in
  let ss = Core.Eval.Incr.create p in
  let rng = Anneal.Rng.create 7 in
  let n = Core.State.n_vars st in
  for _ = 1 to 50 do
    let v = Anneal.Rng.int rng n in
    st.Core.State.values.(v) <-
      Core.State.clamp st v (st.Core.State.values.(v) *. (1.0 +. (0.01 *. Anneal.Rng.float rng)));
    let mi = Core.Eval.Incr.measure_with ss st in
    let mf = Core.Eval.measure p st in
    List.iter2
      (fun (sn_f, vf) (sn_i, vi) ->
        Alcotest.(check string) "spec order" sn_f sn_i;
        match (vf, vi) with
        | None, None -> ()
        | Some a, Some b -> check_bits "simple-ota" ("spec " ^ sn_f) a b
        | Some _, None | None, Some _ -> Alcotest.failf "spec %s: presence differs" sn_f)
      mf.Core.Eval.spec_values mi.Core.Eval.spec_values;
    List.iter2
      (fun (en_f, _) (en_i, _) -> Alcotest.(check string) "ops order" en_f en_i)
      mf.Core.Eval.bias.Core.Eval.ops mi.Core.Eval.bias.Core.Eval.ops;
    Array.iteri
      (fun i v -> check_bits "simple-ota" (Printf.sprintf "node %d" i) v mi.Core.Eval.bias.Core.Eval.node_v.(i))
      mf.Core.Eval.bias.Core.Eval.node_v
  done

(* Resync must be able to recover a poisoned session: invalidate drops all
   caches and the next eval runs full. *)
let test_invalidate_recovers () =
  let p = compile "simple-ota" in
  let st = Core.State.snapshot p.Core.Problem.state0 in
  let w = Core.Weights.create () in
  let ss = Core.Eval.Incr.create p in
  let a = Core.Eval.Incr.cost ss w st in
  Core.Eval.Incr.invalidate ss;
  let b = Core.Eval.Incr.cost ss w st in
  check_breakdown "simple-ota" a b;
  let s = Core.Eval.Incr.stats ss in
  Alcotest.(check int) "both were full evals" 2 s.Core.Eval.Incr.full_evals

(* Same recovery story for the probe-side retention (factorizations and
   recorded moment vectors): poisoning the session must not leave stale
   moment caches behind — the next exact eval rebuilds them, and probing
   keeps screening against fresh retained state. *)
let test_probe_invalidate_recovers () =
  let p = compile "simple-ota" in
  let st = Core.State.snapshot p.Core.Problem.state0 in
  let w = Core.Weights.create () in
  let ss = Core.Eval.Incr.create p in
  let full = Core.Eval.cost p w st in
  ignore (Core.Eval.Incr.cost ss w st);
  let v0 = st.Core.State.values.(0) in
  let perturb () = st.Core.State.values.(0) <- Core.State.clamp st 0 (v0 *. 1.01) in
  perturb ();
  let pc1 = Core.Eval.Incr.probe_cost ss w st in
  st.Core.State.values.(0) <- v0;
  Core.Eval.Incr.invalidate ss;
  (* recovery: full re-eval repopulates every cache, bit-identically *)
  let b = Core.Eval.Incr.cost ss w st in
  check_breakdown "simple-ota" full b;
  (* and the rebuilt moment caches serve the same screen again *)
  perturb ();
  let pc2 = Core.Eval.Incr.probe_cost ss w st in
  check_bits "simple-ota" "probe cost across invalidate" pc1 pc2;
  st.Core.State.values.(0) <- v0;
  let c = Core.Eval.Incr.cost ss w st in
  check_breakdown "simple-ota" full c;
  let s = Core.Eval.Incr.stats ss in
  Alcotest.(check int) "probes" 2 s.Core.Eval.Incr.probes

(* The whole point: an annealing run with the incremental evaluator must
   produce the same trajectory as one without — same accepted count, same
   winner, bit-identical best cost and final design point. Batched probing
   deliberately changes the trajectory (k candidates per decision instead
   of one), so the unbatched incremental run ([probe_batch:1]) is the one
   that must match the full evaluator move for move. *)
let test_synthesize_equivalent name =
  let p = compile name in
  let run incremental =
    Core.Oblx.synthesize ~seed:3 ~moves:800 ~incremental ~probe_batch:1 p
  in
  let a = run false in
  let b = run true in
  Alcotest.(check int) "moves" a.Core.Oblx.moves b.Core.Oblx.moves;
  Alcotest.(check int) "accepted" a.Core.Oblx.accepted b.Core.Oblx.accepted;
  check_bits name "best cost" a.Core.Oblx.best_cost b.Core.Oblx.best_cost;
  Array.iteri
    (fun i v -> check_bits name (Printf.sprintf "final var %d" i) v b.Core.Oblx.final.Core.State.values.(i))
    a.Core.Oblx.final.Core.State.values;
  List.iter2
    (fun (sn, va) (_, vb) ->
      match (va, vb) with
      | None, None -> ()
      | Some x, Some y -> check_bits name ("predicted " ^ sn) x y
      | Some _, None | None, Some _ -> Alcotest.failf "prediction presence differs for %s" sn)
    a.Core.Oblx.predicted b.Core.Oblx.predicted;
  match b.Core.Oblx.eval_stats with
  | None -> Alcotest.fail "incremental run reports no eval stats"
  | Some s ->
      Alcotest.(check int) "no resync mismatches" 0 s.Core.Eval.Incr.resync_mismatches;
      Alcotest.(check bool) "incremental evals dominate" true (s.Core.Eval.Incr.incr_evals > 0)

(* With batched probing ON (the default), the screen orders candidates
   approximately — but every ACCEPTED state must still carry the exact
   cost. Record a probed run at move granularity and replay every accepted
   state against the full evaluator with zero tolerance. *)
let test_batched_accepted_exact name =
  let p = compile name in
  let ring = Obs.Sink.Ring.create ~capacity:200_000 in
  let trace = Obs.Trace.make ~level:Obs.Event.Moves [ Obs.Sink.Ring.sink ring ] in
  let r = Core.Oblx.synthesize ~seed:5 ~moves:800 ~obs:trace p in
  Obs.Trace.close trace;
  (match r.Core.Oblx.eval_stats with
  | None -> Alcotest.fail "probed run reports no eval stats"
  | Some s ->
      Alcotest.(check bool) (name ^ ": probes ran") true (s.Core.Eval.Incr.probes > 0);
      Alcotest.(check int) (name ^ ": no resync mismatches") 0 s.Core.Eval.Incr.resync_mismatches);
  match Core.Oblx.replay ~tol:0.0 p (Obs.Sink.Ring.contents ring) with
  | Ok stats ->
      Alcotest.(check bool)
        (name ^ ": accepted states replayed")
        true
        (stats.Obs.Replay.rs_checked > 0)
  | Error (ms, _) ->
      Alcotest.failf "%s: %d accepted states do not re-evaluate exactly" name (List.length ms)

let () =
  let walks =
    List.filter_map
      (fun (e : Suite.Ckts.entry) ->
        if e.Suite.Ckts.synthesized then Some (walk_case e.Suite.Ckts.name) else None)
      Suite.Ckts.all
  in
  let probe_walks =
    List.filter_map
      (fun (e : Suite.Ckts.entry) ->
        if e.Suite.Ckts.synthesized then Some (probe_walk_case e.Suite.Ckts.name) else None)
      Suite.Ckts.all
  in
  Alcotest.run "incr"
    [
      ("bit-identity walks", walks);
      ("probe-then-confirm walks", probe_walks);
      ( "measured view",
        [
          Alcotest.test_case "measure identical" `Quick test_measure_identical;
          Alcotest.test_case "invalidate recovers" `Quick test_invalidate_recovers;
          Alcotest.test_case "probe invalidate recovers" `Quick test_probe_invalidate_recovers;
        ] );
      ( "synthesis equivalence",
        [
          Alcotest.test_case "simple-ota" `Slow (fun () ->
              test_synthesize_equivalent "simple-ota");
          Alcotest.test_case "two-stage" `Slow (fun () ->
              test_synthesize_equivalent "two-stage");
          Alcotest.test_case "batched accepted exact simple-ota" `Slow (fun () ->
              test_batched_accepted_exact "simple-ota");
          Alcotest.test_case "batched accepted exact two-stage" `Slow (fun () ->
              test_batched_accepted_exact "two-stage");
        ] );
    ]
