(* Regression tests for the transient/corner measurement path: the
   fixed-step backward-Euler simulator's grid clamping, the shared
   window-overlap predicate behind every slew measurement, corner-keyed
   compile caching, Corners.worst_case's missing-row handling, the
   .tran/.noise/.psrr/corner= card validation, and the end-to-end
   determinism of a transient-dominant synthesis across job counts. *)

let value e =
  Netlist.Expr.eval
    { Netlist.Expr.lookup = (fun _ -> raise Not_found); call = (fun _ _ -> nan) }
    e

let registry = Result.get_ok (Devices.Registry.build ~process:"p1u2" [])

let circuit src = Netlist.Elab.flatten ~subckts:[] (Netlist.Parser.parse_elements src)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- Backward-Euler fixed-step integration --- *)

let test_rc_step_golden () =
  (* RC step response against the analytic 1 - exp(-t/RC) pointwise.
     Backward Euler is first-order, so with dt = tau/1000 every sample
     must track the exact curve to a fraction of a percent. *)
  let c = circuit "vin in 0 0\nr1 in out 1k\nc1 out 0 1n\n" in
  let tau = 1e-6 in
  let stim = [ ("vin", fun t -> if t > 0.0 then 1.0 else 0.0) ] in
  match Mna.Tran.simulate ~value ~registry ~tstop:5e-6 ~dt:1e-9 ~stimulus:stim c with
  | Error e -> Alcotest.failf "tran: %s" e
  | Ok r ->
      let out = Netlist.Circuit.find_node c "out" in
      let v = Mna.Tran.node_waveform r out in
      let worst = ref 0.0 in
      Array.iteri
        (fun i t ->
          let exact = if t <= 0.0 then 0.0 else 1.0 -. exp (-.t /. tau) in
          worst := Float.max !worst (Float.abs (v.(i) -. exact)))
        r.Mna.Tran.times;
      Alcotest.(check bool) "pointwise within 0.5%" true (!worst < 5e-3)

let test_tstop_clamp () =
  (* Regression: with tstop not a multiple of dt, the last grid point used
     to land past tstop and sample the stimulus outside its declared
     horizon. The final point must now be clamped to exactly tstop, and
     the stimulus must never be asked for t > tstop. *)
  let c = circuit "vin in 0 0\nr1 in out 1k\nc1 out 0 1n\n" in
  let tstop = 1.05e-6 and dt = 0.2e-6 in
  let overshoot = ref 0.0 in
  let stim =
    [
      ("vin",
       fun t ->
         if t > tstop then overshoot := Float.max !overshoot (t -. tstop);
         1.0);
    ]
  in
  (match Mna.Tran.simulate ~value ~registry ~tstop ~dt ~stimulus:stim c with
  | Error e -> Alcotest.failf "tran: %s" e
  | Ok r ->
      let times = r.Mna.Tran.times in
      let n = Array.length times in
      Alcotest.(check bool) "last point is exactly tstop" true
        (times.(n - 1) = tstop);
      Alcotest.(check bool) "grid is strictly increasing" true
        (Array.for_all (fun ok -> ok)
           (Array.init (n - 1) (fun i -> times.(i) < times.(i + 1)))));
  Alcotest.(check (float 0.0)) "stimulus never sampled past tstop" 0.0 !overshoot

let test_peak_slew_window_edge () =
  (* Regression: the old predicate kept only intervals fully inside the
     window, so a transition straddling the window edge — exactly where a
     step onset between samples lands — was silently dropped. The shared
     overlap predicate must count every interval overlapping (t_from,
     t_to). *)
  let times = [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  let v = [| 0.0; 0.0; 10.0; 10.0; 10.0 |] in
  (* The 10 V/s transition lives in (1, 2). A window starting inside that
     interval must still see it. *)
  let s = Mna.Tran.peak_slew ~times v ~t_from:1.5 ~t_to:4.0 in
  Alcotest.(check (float 1e-9)) "straddling interval counted" 10.0 s;
  (* Same for a window ending inside the transition interval. *)
  let s = Mna.Tran.peak_slew ~times v ~t_from:0.0 ~t_to:1.2 in
  Alcotest.(check (float 1e-9)) "edge at the far end counted" 10.0 s;
  (* Intervals fully outside the window stay excluded. *)
  let s = Mna.Tran.peak_slew ~times v ~t_from:2.0 ~t_to:4.0 in
  Alcotest.(check (float 1e-9)) "flat tail only" 0.0 s

let test_settling_time () =
  let times = Array.init 101 (fun i -> float_of_int i *. 1e-8) in
  let tau = 1e-7 in
  let v = Array.map (fun t -> 1.0 -. exp (-.t /. tau)) times in
  let ts = Mna.Tran.settling_time ~times v ~t_from:0.0 ~tol:0.01 in
  (* 1% settling of a single pole is ~4.6 tau. *)
  Alcotest.(check bool) "about 4.6 tau" true
    (ts > 4.0 *. tau && ts < 5.2 *. tau)

(* --- Corner-qualified compile cache --- *)

let ota_source = (Option.get (Suite.Ckts.find "simple-ota")).Suite.Ckts.source
let corner name = Option.get (Devices.Registry.find_corner name)

let cok = function
  | Ok v -> v
  | Error (e, _) -> Alcotest.failf "unexpected compile error: %s" e

let test_corner_cache_keys () =
  (* Regression: the cache key used to ignore the device corner, so a
     slow-corner compile could serve a nominal request. Distinct corners
     must produce distinct keys; the nominal corner keeps the bare hash. *)
  let bare = Result.get_ok (Core.Compile_cache.key_of_source ota_source) in
  let nominal =
    Result.get_ok (Core.Compile_cache.key_of_source ~corner:(corner "nominal") ota_source)
  in
  let slow =
    Result.get_ok (Core.Compile_cache.key_of_source ~corner:(corner "slow") ota_source)
  in
  let fast =
    Result.get_ok (Core.Compile_cache.key_of_source ~corner:(corner "fast") ota_source)
  in
  Alcotest.(check string) "nominal keeps the bare hash" bare nominal;
  Alcotest.(check bool) "slow is corner-qualified" true (slow <> bare);
  Alcotest.(check bool) "corners are distinct" true (slow <> fast);
  Alcotest.(check bool) "qualifier is the corner name" true (contains slow "@slow")

let test_corner_cache_hit_miss () =
  let cache = Core.Compile_cache.create ~capacity:8 () in
  let _, o1 = cok (Core.Compile_cache.compile cache ~source:ota_source ()) in
  let _, o2 =
    cok (Core.Compile_cache.compile cache ~corner:(corner "slow") ~source:ota_source ())
  in
  let _, o3 =
    cok (Core.Compile_cache.compile cache ~corner:(corner "slow") ~source:ota_source ())
  in
  let _, o4 =
    cok (Core.Compile_cache.compile cache ~corner:(corner "nominal") ~source:ota_source ())
  in
  Alcotest.(check bool) "nominal miss" true (o1 = Core.Compile_cache.Miss);
  Alcotest.(check bool) "slow is a fresh key" true (o2 = Core.Compile_cache.Miss);
  Alcotest.(check bool) "slow again hits" true (o3 = Core.Compile_cache.Hit);
  Alcotest.(check bool) "explicit nominal shares the bare key" true
    (o4 = Core.Compile_cache.Hit);
  let st = Core.Compile_cache.stats cache in
  Alcotest.(check int) "two distinct entries" 2 st.Core.Compile_cache.entries

(* --- Corners.worst_case --- *)

let test_worst_case_missing_row () =
  let p =
    match Core.Compile.compile_source ota_source with
    | Ok p -> p
    | Error e -> Alcotest.failf "compile: %s" e
  in
  let full name v =
    {
      Core.Corners.sc_corner = name;
      sc_values =
        List.map (fun (s : Core.Problem.spec) -> (s.Core.Problem.spec_name, Ok v))
          p.Core.Problem.specs;
    }
  in
  (* A corner result missing one spec row entirely (say, produced by an
     older description revision). This used to raise Not_found and take
     the whole table down; it must now be a per-spec Error. *)
  let missing =
    {
      Core.Corners.sc_corner = "slow";
      sc_values =
        List.filter_map
          (fun (s : Core.Problem.spec) ->
            if s.Core.Problem.spec_name = "ugf" then None
            else Some (s.Core.Problem.spec_name, Ok 2.0))
          p.Core.Problem.specs;
    }
  in
  let table = Core.Corners.worst_case p [ full "nominal" 1.0; missing ] in
  Alcotest.(check int) "one row per spec" (List.length p.Core.Problem.specs)
    (List.length table);
  (match List.assoc "ugf" table with
  | Error e ->
      Alcotest.(check bool) "error names the corner and spec" true
        (contains e "slow" && contains e "ugf")
  | Ok _ -> Alcotest.fail "missing row must be a per-spec error");
  (* The other rows still fold to the pessimistic direction. *)
  let ugf_spec = Option.get (Core.Problem.find_spec p "ugf") in
  ignore ugf_spec;
  (match List.assoc "pwr" table with
  | Ok v ->
      (* pwr is minimized: worst case is the larger value. *)
      Alcotest.(check (float 1e-12)) "le-spec folds to max" 2.0 v
  | Error e -> Alcotest.failf "pwr: %s" e);
  (match List.assoc "adm" table with
  | Ok v -> Alcotest.(check (float 1e-12)) "ge-spec folds to min" 1.0 v
  | Error e -> Alcotest.failf "adm: %s" e)

(* --- .tran / .noise / .psrr / corner= card validation --- *)

let tran_source = (Option.get (Suite.Ckts.find "tran-buffer")).Suite.Ckts.source

let replace_line ~matching ~with_ src =
  String.split_on_char '\n' src
  |> List.map (fun l -> if contains l matching then with_ else l)
  |> String.concat "\n"

let expect_compile_error ~what ~needle src =
  match Core.Compile.compile_source src with
  | Ok _ -> Alcotest.failf "%s: expected a compile error" what
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: error mentions %S (got %S)" what needle e)
        true (contains e needle)

let test_card_validation () =
  (* Removing the .tran card strands the slew/settle specs. *)
  expect_compile_error ~what:"missing .tran" ~needle:".tran"
    (replace_line ~matching:".tran " ~with_:"" tran_source);
  (* A zero step amplitude cannot excite anything. *)
  expect_compile_error ~what:"vstep=0" ~needle:"vstep"
    (replace_line ~matching:".tran "
       ~with_:".tran tstop=1u dt=1n dtloop=10n vstep=0" tran_source);
  (* Two .tran cards in one jig are ambiguous. *)
  expect_compile_error ~what:"duplicate .tran" ~needle:".tran"
    (replace_line ~matching:".tran "
       ~with_:".tran tstop=1u dt=1n vstep=10m\n.tran tstop=2u dt=1n vstep=10m"
       tran_source);
  (* corner= must name a standard corner. *)
  expect_compile_error ~what:"unknown corner" ~needle:"corner"
    (replace_line ~matching:"corner=slow"
       ~with_:".spec ugf_slow 'ugf(tf)' good=3meg bad=300k corner=sideways"
       tran_source);
  (* psrr_db takes two transfer functions. *)
  expect_compile_error ~what:"psrr arity" ~needle:"psrr_db"
    (replace_line ~matching:"psrr_db(tf, tfdd)"
       ~with_:".spec psrr 'psrr_db(tf)' good=30 bad=5" tran_source)

let test_tran_card_parsed () =
  match Core.Compile.compile_source tran_source with
  | Error e -> Alcotest.failf "compile: %s" e
  | Ok p ->
      let jig = List.hd p.Core.Problem.jigs in
      (match jig.Core.Problem.jig_tran with
      | None -> Alcotest.fail "jig lost its .tran card"
      | Some tc ->
          Alcotest.(check (float 1e-12)) "tstop" 1e-6 tc.Netlist.Ast.tr_tstop;
          Alcotest.(check (float 1e-15)) "dt" 1e-9 tc.Netlist.Ast.tr_dt;
          Alcotest.(check (option (float 1e-14))) "dtloop" (Some 1e-8)
            tc.Netlist.Ast.tr_dtloop;
          Alcotest.(check (float 1e-6)) "vstep" 10e-3 tc.Netlist.Ast.tr_vstep);
      (* The corner row compiled its registry ahead of time. *)
      Alcotest.(check bool) "slow corner registry resolved" true
        (List.mem_assoc "slow" p.Core.Problem.corner_regs)

(* --- End-to-end: transient-dominant synthesis, jobs=1 vs jobs=8 --- *)

let test_tran_synthesis_determinism () =
  let p =
    match Core.Compile.compile_source tran_source with
    | Ok p -> p
    | Error e -> Alcotest.failf "compile: %s" e
  in
  let moves = 200 and seed = 3 and runs = 2 in
  let b1, _ = Core.Oblx.best_of ~seed ~moves ~jobs:1 ~runs p in
  let b8, _ = Core.Oblx.best_of ~seed ~moves ~jobs:8 ~runs p in
  Alcotest.(check bool) "winner bit-identical across job counts" true
    (Int64.bits_of_float b1.Core.Oblx.best_cost
    = Int64.bits_of_float b8.Core.Oblx.best_cost);
  List.iter2
    (fun (n1, v1) (n8, v8) ->
      Alcotest.(check string) "prediction row order" n1 n8;
      match (v1, v8) with
      | Some a, Some b ->
          Alcotest.(check bool) (n1 ^ " prediction bit-identical") true
            (Int64.bits_of_float a = Int64.bits_of_float b)
      | None, None -> ()
      | _ -> Alcotest.failf "%s: predictions disagree on availability" n1)
    b1.Core.Oblx.predicted b8.Core.Oblx.predicted;
  (* The winner re-verifies through the exact-grid transient: slew and
     settling both measurable, slew strictly positive. *)
  let jig = List.hd p.Core.Problem.jigs in
  let tc = Option.get jig.Core.Problem.jig_tran in
  let vstep = tc.Netlist.Ast.tr_vstep
  and tstop = tc.Netlist.Ast.tr_tstop
  and dt = tc.Netlist.Ast.tr_dt in
  (match Core.Verify.transient_slew p b1.Core.Oblx.final ~tf:"tf" ~vstep ~tstop ~dt with
  | Ok sr -> Alcotest.(check bool) "exact-grid slew positive" true (sr > 0.0)
  | Error e -> Alcotest.failf "transient_slew: %s" e);
  match
    Core.Verify.transient_settle p b1.Core.Oblx.final ~tf:"tf" ~tol:0.02 ~vstep ~tstop
      ~dt
  with
  | Ok ts -> Alcotest.(check bool) "settling within the horizon" true (ts <= tstop)
  | Error e -> Alcotest.failf "transient_settle: %s" e

let () =
  Alcotest.run "transient"
    [
      ( "tran",
        [
          Alcotest.test_case "rc step golden" `Quick test_rc_step_golden;
          Alcotest.test_case "tstop clamp" `Quick test_tstop_clamp;
          Alcotest.test_case "window-edge slew" `Quick test_peak_slew_window_edge;
          Alcotest.test_case "settling time" `Quick test_settling_time;
        ] );
      ( "corner-cache",
        [
          Alcotest.test_case "keys" `Quick test_corner_cache_keys;
          Alcotest.test_case "hit/miss" `Quick test_corner_cache_hit_miss;
        ] );
      ( "corners",
        [ Alcotest.test_case "worst-case missing row" `Quick test_worst_case_missing_row ] );
      ( "cards",
        [
          Alcotest.test_case "validation errors" `Quick test_card_validation;
          Alcotest.test_case "tran card fields" `Quick test_tran_card_parsed;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "jobs determinism + exact verify" `Slow
            test_tran_synthesis_determinism;
        ] );
    ]
