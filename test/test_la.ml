(* Unit and property tests for the dense linear-algebra substrate. *)

let approx ?(tol = 1e-9) a b = Float.abs (a -. b) <= tol *. (1.0 +. Float.abs a +. Float.abs b)

let check_approx ?tol msg a b =
  if not (approx ?tol a b) then Alcotest.failf "%s: %.17g vs %.17g" msg a b

(* --- Vec --- *)

let test_vec_ops () =
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 4.0; 5.0; 6.0 |] in
  check_approx "dot" (La.Vec.dot x y) 32.0;
  check_approx "norm2" (La.Vec.norm2 x) (Float.sqrt 14.0);
  check_approx "norm_inf" (La.Vec.norm_inf [| -5.0; 2.0 |]) 5.0;
  let z = La.Vec.copy y in
  La.Vec.axpy 2.0 x z;
  check_approx "axpy" z.(2) 12.0;
  Alcotest.(check int) "max_abs_index" 0 (La.Vec.max_abs_index [| -9.0; 2.0; 8.0 |])

let test_vec_errors () =
  Alcotest.check_raises "dot mismatch" (Invalid_argument "Vec.dot: dim mismatch") (fun () ->
      ignore (La.Vec.dot [| 1.0 |] [| 1.0; 2.0 |]));
  Alcotest.check_raises "empty max_abs" (Invalid_argument "Vec.max_abs_index: empty") (fun () ->
      ignore (La.Vec.max_abs_index [||]))

(* --- Mat --- *)

let test_mat_mul () =
  let a = La.Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = La.Mat.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = La.Mat.mul a b in
  check_approx "c00" (La.Mat.get c 0 0) 19.0;
  check_approx "c11" (La.Mat.get c 1 1) 50.0;
  let x = La.Mat.mul_vec a [| 1.0; 1.0 |] in
  check_approx "mv" x.(1) 7.0

let test_mat_transpose_identity () =
  let a = La.Mat.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let at = La.Mat.transpose a in
  Alcotest.(check int) "rows" 3 (La.Mat.rows at);
  check_approx "t" (La.Mat.get at 2 1) 6.0;
  let i3 = La.Mat.identity 3 in
  let prod = La.Mat.mul i3 at in
  check_approx "I*a" (La.Mat.get prod 0 1) (La.Mat.get at 0 1)

(* --- LU --- *)

let random_matrix rng n =
  La.Mat.init n n (fun _ _ -> QCheck.Gen.float_range (-10.0) 10.0 rng)

let prop_lu_solve =
  QCheck.Test.make ~name:"lu: A x = b residual small" ~count:120
    QCheck.(pair (int_range 1 12) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let a = random_matrix rng n in
      (* Make it diagonally dominant so it is comfortably nonsingular. *)
      for k = 0 to n - 1 do
        La.Mat.add_to a k k (30.0 *. float_of_int n)
      done;
      let b = Array.init n (fun _ -> QCheck.Gen.float_range (-5.0) 5.0 rng) in
      let lu = La.Lu.factor a in
      let x = La.Lu.solve lu b in
      let r = La.Vec.sub (La.Mat.mul_vec a x) b in
      La.Vec.norm_inf r < 1e-8)

let prop_lu_transposed =
  QCheck.Test.make ~name:"lu: A^T x = b via solve_transposed" ~count:80
    QCheck.(pair (int_range 1 10) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed + 77 |] in
      let a = random_matrix rng n in
      for k = 0 to n - 1 do
        La.Mat.add_to a k k (30.0 *. float_of_int n)
      done;
      let b = Array.init n (fun _ -> QCheck.Gen.float_range (-5.0) 5.0 rng) in
      let lu = La.Lu.factor a in
      let x = La.Lu.solve_transposed lu b in
      let r = La.Vec.sub (La.Mat.mul_vec (La.Mat.transpose a) x) b in
      La.Vec.norm_inf r < 1e-8)

let test_lu_singular () =
  let a = La.Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  match La.Lu.factor a with
  | exception La.Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular"

let test_lu_rcond () =
  (* Well-conditioned: the identity reports a reciprocal condition in (0, 1]. *)
  let i4 = La.Mat.identity 4 in
  let lu_i = La.Lu.factor i4 in
  let rc_i = La.Lu.rcond_estimate lu_i i4 in
  Alcotest.(check bool) "identity rcond positive" true (rc_i > 0.0 && rc_i <= 1.0);
  (* Near-singular: a tiny-pivot direction must report a tiny estimate. *)
  let ns = La.Mat.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 1e-12 |] |] in
  let rc_ns = La.Lu.rcond_estimate (La.Lu.factor ns) ns in
  Alcotest.(check bool) "near-singular rcond tiny" true (rc_ns > 0.0 && rc_ns < 1e-10);
  (* Degenerate-norm regression: a zero matrix norm (or a zero solve norm,
     unreachable through factor/solve since the probe entries are +-1) is a
     singular-direction hit and must report 0.0 — the worst conditioning —
     not the old 1.0 (the best). *)
  Alcotest.(check (float 0.0)) "degenerate norm reports 0" 0.0
    (La.Lu.rcond_estimate lu_i (La.Mat.create 4 4));
  (* Empty system stays perfectly conditioned by convention. *)
  let e = La.Mat.create 0 0 in
  Alcotest.(check (float 0.0)) "empty matrix" 1.0 (La.Lu.rcond_estimate (La.Lu.factor e) e)

let test_lu_det () =
  let a = La.Mat.of_arrays [| [| 2.0; 0.0 |]; [| 1.0; 3.0 |] |] in
  check_approx "det" (La.Lu.det (La.Lu.factor a)) 6.0;
  (* Pivoting flips the sign bookkeeping, not the determinant. *)
  let b = La.Mat.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  check_approx "perm det" (La.Lu.det (La.Lu.factor b)) (-1.0)

(* --- Complex --- *)

let test_cpx () =
  let z = La.Cpx.make 3.0 4.0 in
  check_approx "abs" (La.Cpx.abs z) 5.0;
  let w = La.Cpx.div z z in
  check_approx "z/z re" w.La.Cpx.re 1.0;
  check_approx "z/z im" w.La.Cpx.im 0.0;
  Alcotest.(check bool) "finite" true (La.Cpx.is_finite z);
  Alcotest.(check bool) "nan not finite" false (La.Cpx.is_finite (La.Cpx.make nan 0.0))

(* --- Zmat --- *)

let test_zmat_solve () =
  (* (G + jwC) for a 1-node RC: (1/R + jwC) v = i *)
  let g = La.Mat.of_arrays [| [| 1e-3 |] |] in
  let c = La.Mat.of_arrays [| [| 1e-9 |] |] in
  let w = 1e6 in
  let z = La.Zmat.of_real_pair g c w in
  let x = La.Zmat.solve z [| La.Cpx.one |] in
  let expect = La.Cpx.inv (La.Cpx.make 1e-3 (w *. 1e-9)) in
  check_approx "re" x.(0).La.Cpx.re expect.La.Cpx.re;
  check_approx "im" x.(0).La.Cpx.im expect.La.Cpx.im

(* --- Poly --- *)

let test_poly_eval () =
  let p = [| 1.0; -3.0; 2.0 |] in
  (* 2x^2 - 3x + 1 = (2x-1)(x-1) *)
  check_approx "at 1" (La.Poly.eval p 1.0) 0.0;
  check_approx "at 0.5" (La.Poly.eval p 0.5) 0.0;
  check_approx "at 2" (La.Poly.eval p 2.0) 3.0;
  let d = La.Poly.derivative p in
  check_approx "d at 0" (La.Poly.eval d 0.0) (-3.0)

let test_poly_mul_from_roots () =
  let p = La.Poly.from_roots [| La.Cpx.of_float 1.0; La.Cpx.of_float (-2.0) |] in
  (* (s-1)(s+2) = s^2 + s - 2 *)
  check_approx "c0" p.(0) (-2.0);
  check_approx "c1" p.(1) 1.0;
  check_approx "c2" p.(2) 1.0;
  let q = La.Poly.mul [| -1.0; 1.0 |] [| 2.0; 1.0 |] in
  Array.iteri (fun k c -> check_approx "mul agrees" c q.(k)) p

let prop_roots_roundtrip =
  QCheck.Test.make ~name:"roots: from_roots . find recovers roots" ~count:80
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n_real = 1 + Random.State.int rng 3 in
      let n_pair = Random.State.int rng 2 in
      let reals =
        List.init n_real (fun _ -> La.Cpx.of_float (QCheck.Gen.float_range (-8.0) (-0.2) rng))
      in
      let pairs =
        List.concat_map
          (fun _ ->
            let re = QCheck.Gen.float_range (-6.0) (-0.5) rng in
            let im = QCheck.Gen.float_range 0.5 5.0 rng in
            [ La.Cpx.make re im; La.Cpx.make re (-.im) ])
          (List.init n_pair Fun.id)
      in
      let roots = Array.of_list (reals @ pairs) in
      let poly = La.Poly.from_roots roots in
      let found = La.Roots.find poly in
      (* every true root is matched by a found root *)
      Array.for_all
        (fun r ->
          Array.exists (fun f -> La.Cpx.dist r f < 1e-5 *. (1.0 +. La.Cpx.abs r)) found)
        roots)

let test_roots_scaling () =
  (* Widely scaled roots, as AWE produces: 1e3 and 1e9 rad/s. *)
  let poly = La.Poly.from_roots [| La.Cpx.of_float (-1e3); La.Cpx.of_float (-1e9) |] in
  let found = La.Roots.find poly in
  let near v = Array.exists (fun f -> Float.abs (f.La.Cpx.re -. v) < 1e-3 *. Float.abs v) found in
  Alcotest.(check bool) "found 1e3" true (near (-1e3));
  Alcotest.(check bool) "found 1e9" true (near (-1e9))

(* --- Sparse --- *)

let test_sparse_basic () =
  let t = La.Sparse.triplets () in
  La.Sparse.add t 0 0 2.0;
  La.Sparse.add t 0 1 1.0;
  La.Sparse.add t 1 1 3.0;
  La.Sparse.add t 0 0 0.5;
  (* duplicate: summed *)
  let s = La.Sparse.compress ~rows:2 ~cols:2 t in
  Alcotest.(check int) "nnz" 3 (La.Sparse.nnz s);
  let y = La.Sparse.mul_vec s [| 1.0; 2.0 |] in
  Alcotest.(check (float 1e-12)) "y0" 4.5 y.(0);
  Alcotest.(check (float 1e-12)) "y1" 6.0 y.(1)

let prop_sparse_matches_dense =
  QCheck.Test.make ~name:"sparse: mul_vec agrees with dense" ~count:100
    QCheck.(pair (int_range 1 15) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let dm =
        La.Mat.init n n (fun _ _ ->
            if Random.State.int rng 3 = 0 then QCheck.Gen.float_range (-5.0) 5.0 rng else 0.0)
      in
      let sp = La.Sparse.of_dense dm in
      let x = Array.init n (fun _ -> QCheck.Gen.float_range (-2.0) 2.0 rng) in
      let yd = La.Mat.mul_vec dm x in
      let ys = La.Sparse.mul_vec sp x in
      let ok = ref true in
      for k = 0 to n - 1 do
        if Float.abs (yd.(k) -. ys.(k)) > 1e-12 then ok := false
      done;
      (* round trip *)
      let back = La.Sparse.to_dense sp in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if La.Mat.get back i j <> La.Mat.get dm i j then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "la"
    [
      ( "vec",
        [
          Alcotest.test_case "ops" `Quick test_vec_ops;
          Alcotest.test_case "errors" `Quick test_vec_errors;
        ] );
      ( "mat",
        [
          Alcotest.test_case "mul" `Quick test_mat_mul;
          Alcotest.test_case "transpose/identity" `Quick test_mat_transpose_identity;
        ] );
      ( "lu",
        [
          QCheck_alcotest.to_alcotest prop_lu_solve;
          QCheck_alcotest.to_alcotest prop_lu_transposed;
          Alcotest.test_case "singular" `Quick test_lu_singular;
          Alcotest.test_case "rcond degenerate reporting" `Quick test_lu_rcond;
          Alcotest.test_case "det" `Quick test_lu_det;
        ] );
      ("cpx", [ Alcotest.test_case "basics" `Quick test_cpx ]);
      ("zmat", [ Alcotest.test_case "solve" `Quick test_zmat_solve ]);
      ( "poly",
        [
          Alcotest.test_case "eval" `Quick test_poly_eval;
          Alcotest.test_case "mul/from_roots" `Quick test_poly_mul_from_roots;
        ] );
      ( "roots",
        [
          QCheck_alcotest.to_alcotest prop_roots_roundtrip;
          Alcotest.test_case "wide scaling" `Quick test_roots_scaling;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "assembly and matvec" `Quick test_sparse_basic;
          QCheck_alcotest.to_alcotest prop_sparse_matches_dense;
        ] );
    ]
