(* Tests for the synthesis service: protocol codec, compile cache, pool
   queue discipline (backpressure, priorities, cancellation, deadlines),
   and the socket daemon end to end. *)

let ota_source = (Option.get (Suite.Ckts.find "simple-ota")).Suite.Ckts.source

let submission ?(name = "simple-ota") ?(source = ota_source) ?(seed = 1) ?moves ?(runs = 1)
    ?(priority = 0) ?deadline_s ?(trace = false) ?shard () =
  {
    Serve.Proto.sb_name = name;
    sb_source = source;
    sb_seed = seed;
    sb_moves = moves;
    sb_runs = runs;
    sb_priority = priority;
    sb_deadline_s = deadline_s;
    sb_trace = trace;
    sb_shard = shard;
    sb_sweep = [];
    sb_warm = [];
    sb_spec_overrides = [];
  }

let jnum j k =
  match Obs.Json.mem_opt k j with Some (Obs.Json.Num v) -> Some v | _ -> None

let jstr j k =
  match Obs.Json.mem_opt k j with Some (Obs.Json.Str s) -> Some s | _ -> None

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- Protocol --- *)

let test_proto_round_trip () =
  let requests =
    [
      Serve.Proto.Submit
        (submission ~name:"x" ~source:"src" ~seed:7 ~moves:123 ~runs:3 ~priority:2
           ~deadline_s:1.5 ~trace:true ());
      Serve.Proto.Submit (submission ~source:"s" ());
      Serve.Proto.Status 4;
      Serve.Proto.Result 0;
      Serve.Proto.Cancel 91;
      Serve.Proto.Stats;
      Serve.Proto.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      match Serve.Proto.request_of_json (Serve.Proto.request_to_json req) with
      | Ok req' -> Alcotest.(check bool) "request survives the wire" true (req = req')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    requests

let test_proto_lenient_defaults () =
  let decode s =
    match Obs.Json.of_string s with
    | Ok j -> Serve.Proto.request_of_json j
    | Error e -> Alcotest.failf "json: %s" e
  in
  (match decode {|{"op":"submit","source":"body"}|} with
  | Ok (Serve.Proto.Submit s) ->
      Alcotest.(check int) "default seed" 1 s.Serve.Proto.sb_seed;
      Alcotest.(check int) "default runs" 1 s.sb_runs;
      Alcotest.(check int) "default priority" 0 s.sb_priority;
      Alcotest.(check bool) "default moves" true (s.sb_moves = None);
      Alcotest.(check bool) "default deadline" true (s.sb_deadline_s = None);
      Alcotest.(check bool) "default trace" false s.sb_trace
  | Ok _ -> Alcotest.fail "wrong request"
  | Error e -> Alcotest.failf "decode: %s" e);
  (* Shape errors are decode errors, never exceptions. *)
  List.iter
    (fun s ->
      match decode s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected decode error for %s" s)
    [
      {|{"op":"submit"}|};
      {|{"op":"status"}|};
      {|{"op":"cancel","id":"three"}|};
      {|{"op":"frobnicate"}|};
      {|{"op":"submit","source":"s","seed":"high"}|};
    ]

(* --- Compile cache --- *)

(* [compile] failures carry the cache outcome too; unwrap successes. *)
let cok = function
  | Ok v -> v
  | Error (e, _) -> Alcotest.failf "unexpected compile error: %s" e

let test_cache_hit_miss () =
  let cache = Core.Compile_cache.create ~capacity:4 () in
  let _, o1 = cok (Core.Compile_cache.compile cache ~source:ota_source ()) in
  let _, o2 = cok (Core.Compile_cache.compile cache ~source:ota_source ()) in
  Alcotest.(check bool) "first is a miss" true (o1 = Core.Compile_cache.Miss);
  Alcotest.(check bool) "second is a hit" true (o2 = Core.Compile_cache.Hit);
  (* Cosmetic edits (comment, title) hit the same entry. *)
  let _, o3 =
    cok (Core.Compile_cache.compile cache ~source:("* cosmetic comment\n" ^ ota_source) ())
  in
  Alcotest.(check bool) "comment-only edit hits" true (o3 = Core.Compile_cache.Hit);
  let st = Core.Compile_cache.stats cache in
  Alcotest.(check int) "hits" 2 st.Core.Compile_cache.hits;
  Alcotest.(check int) "misses" 1 st.Core.Compile_cache.misses;
  Alcotest.(check int) "entries" 1 st.Core.Compile_cache.entries

let test_cache_remembers_failures () =
  (* Parses fine but fails semantic compilation: unknown model. *)
  let broken =
    ".jig j\nm1 d g 0 0 nosuchmodel w=10u l=1u\nvin d 0 1 ac 1\n.pz t v(d) vin\n.endjig\n\
     .bias\nr1 x 0 1\n.endbias\n.obj o 'dc_gain(t)' good=1 bad=0\n"
  in
  let cache = Core.Compile_cache.create ~capacity:4 () in
  let r1 = Core.Compile_cache.compile cache ~source:broken () in
  let r2 = Core.Compile_cache.compile cache ~source:broken () in
  (match (r1, r2) with
  | Error (e1, o1), Error (e2, o2) ->
      Alcotest.(check string) "same error replayed" e1 e2;
      (* Regression: the error branch reports the true cache outcome — a
         replayed failure is a hit, not a miss. *)
      Alcotest.(check bool) "first failure is a miss" true (o1 = Core.Compile_cache.Miss);
      Alcotest.(check bool) "replayed failure is a hit" true (o2 = Core.Compile_cache.Hit)
  | _ -> Alcotest.fail "expected compile errors");
  let st = Core.Compile_cache.stats cache in
  Alcotest.(check int) "second lookup hit the cached failure" 1 st.Core.Compile_cache.hits;
  Alcotest.(check int) "compiled once" 1 st.Core.Compile_cache.misses;
  (* A parse error is not cacheable (no canonical form to key on). *)
  match Core.Compile_cache.compile cache ~source:".frobnicate\n" () with
  | Error (_, Core.Compile_cache.Miss) -> ()
  | Error (_, Core.Compile_cache.Hit) -> Alcotest.fail "parse errors must never report a hit"
  | Ok _ -> Alcotest.fail "expected parse error"

let test_cache_lru_eviction () =
  let cache = Core.Compile_cache.create ~capacity:1 () in
  let other = (Option.get (Suite.Ckts.find "ota")).Suite.Ckts.source in
  let _ = cok (Core.Compile_cache.compile cache ~source:ota_source ()) in
  let _ = cok (Core.Compile_cache.compile cache ~source:other ()) in
  let _, o3 = cok (Core.Compile_cache.compile cache ~source:ota_source ()) in
  Alcotest.(check bool) "evicted entry misses again" true (o3 = Core.Compile_cache.Miss);
  let st = Core.Compile_cache.stats cache in
  Alcotest.(check int) "evictions" 2 st.Core.Compile_cache.evictions;
  Alcotest.(check int) "capacity bound holds" 1 st.Core.Compile_cache.entries

(* --- Pool --- *)

(* workers = 0: jobs stay queued, so queue discipline is observable without
   racing real synthesis. *)
let frozen_pool ?(queue_capacity = 2) () =
  Serve.Pool.create
    {
      Serve.Pool.default_config with
      workers = 0;
      queue_capacity;
      state_dir = None;
    }

let test_pool_backpressure () =
  let pool = frozen_pool ~queue_capacity:2 () in
  let id0 = ok (Serve.Pool.submit pool (submission ())) in
  let _ = ok (Serve.Pool.submit pool (submission ())) in
  (match Serve.Pool.submit pool (submission ()) with
  | Error reason ->
      Alcotest.(check bool) "rejection explains itself" true
        (String.length reason > 0
        && String.sub reason 0 (String.length "queue full") = "queue full")
  | Ok _ -> Alcotest.fail "third submission must be rejected");
  (* Draining one queued job frees a slot. *)
  ok (Serve.Pool.cancel pool id0);
  let _ = ok (Serve.Pool.submit pool (submission ())) in
  (* Invalid submissions are rejected up front, not enqueued. *)
  (match Serve.Pool.submit pool (submission ~runs:0 ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "runs=0 must be rejected");
  (match Serve.Pool.submit pool (submission ~source:"  " ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty source must be rejected");
  Serve.Pool.shutdown pool

let test_pool_priority_order () =
  let pool = frozen_pool ~queue_capacity:8 () in
  let low = ok (Serve.Pool.submit pool (submission ~priority:0 ())) in
  let high = ok (Serve.Pool.submit pool (submission ~priority:5 ())) in
  let mid = ok (Serve.Pool.submit pool (submission ~priority:3 ())) in
  let pos id =
    match jnum (ok (Serve.Pool.status_json pool id)) "queue_position" with
    | Some p -> int_of_float p
    | None -> Alcotest.failf "job %d not queued" id
  in
  Alcotest.(check int) "high first" 0 (pos high);
  Alcotest.(check int) "mid second" 1 (pos mid);
  Alcotest.(check int) "low last" 2 (pos low);
  Serve.Pool.shutdown pool

let test_pool_cancel_queued () =
  let pool = frozen_pool ~queue_capacity:4 () in
  let id = ok (Serve.Pool.submit pool (submission ())) in
  ok (Serve.Pool.cancel pool id);
  let j = ok (Serve.Pool.result_json pool id) in
  Alcotest.(check (option string)) "state" (Some "cancelled") (jstr j "state");
  (* Cancelling twice is an error (already cancelled), as is an unknown id. *)
  (match Serve.Pool.cancel pool id with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double cancel must fail");
  (match Serve.Pool.cancel pool 999 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown id must fail");
  Serve.Pool.shutdown pool

let running_pool () =
  Serve.Pool.create
    { Serve.Pool.default_config with workers = 1; queue_capacity = 16; state_dir = None }

let rec wait_done pool id =
  let j = ok (Serve.Pool.status_json pool id) in
  match jstr j "state" with
  | Some ("queued" | "running") ->
      Unix.sleepf 0.02;
      wait_done pool id
  | Some s -> s
  | None -> Alcotest.fail "no state"

let test_pool_deadline_cut () =
  let pool = running_pool () in
  (* A move budget far beyond what 0.2 s allows: the deadline must cut it,
     and the record must say so. *)
  let id =
    ok (Serve.Pool.submit pool (submission ~moves:10_000_000 ~deadline_s:0.2 ()))
  in
  let state = wait_done pool id in
  let j = ok (Serve.Pool.result_json pool id) in
  Alcotest.(check string) "finished" "done" state;
  Alcotest.(check (option string)) "cut by the deadline"
    (Some Core.Oblx.deadline_reason) (jstr j "cut_reason");
  Alcotest.(check bool) "still reports a best design" true (jnum j "best_cost" <> None);
  Serve.Pool.shutdown pool

let test_pool_determinism_and_trace () =
  let pool = running_pool () in
  let moves = 400 in
  let id = ok (Serve.Pool.submit pool (submission ~seed:5 ~moves ~trace:true ())) in
  let state = wait_done pool id in
  Alcotest.(check string) "finished" "done" state;
  let j = ok (Serve.Pool.result_json pool id) in
  (* Bit-for-bit against the CLI path: the service's abort plumbing must not
     perturb a run it never cuts. *)
  let p =
    match Core.Compile.compile_source ota_source with
    | Ok p -> p
    | Error e -> Alcotest.failf "compile: %s" e
  in
  let local, _ = Core.Oblx.best_of ~seed:5 ~moves ~jobs:1 ~runs:1 p in
  (match jnum j "best_cost" with
  | Some served ->
      Alcotest.(check bool) "served = local, bit for bit" true
        (Int64.bits_of_float served = Int64.bits_of_float local.Core.Oblx.best_cost)
  | None -> Alcotest.fail "no best_cost");
  (* trace:true attaches the stage-event ring to the record. *)
  (match Obs.Json.mem_opt "events" j with
  | Some (Obs.Json.Arr evs) -> Alcotest.(check bool) "events captured" true (evs <> [])
  | _ -> Alcotest.fail "no events array");
  Serve.Pool.shutdown pool

let test_pool_shutdown_cancels_queued () =
  let pool = frozen_pool ~queue_capacity:4 () in
  let id = ok (Serve.Pool.submit pool (submission ())) in
  Serve.Pool.shutdown pool;
  let j = ok (Serve.Pool.result_json pool id) in
  Alcotest.(check (option string)) "queued job cancelled" (Some "cancelled")
    (jstr j "state");
  (match Serve.Pool.submit pool (submission ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "submissions after shutdown must be rejected");
  (* Idempotent. *)
  Serve.Pool.shutdown pool

let test_pool_wait_s_on_cancelled_queued () =
  let pool = frozen_pool ~queue_capacity:4 () in
  let id = ok (Serve.Pool.submit pool (submission ())) in
  Unix.sleepf 0.05;
  ok (Serve.Pool.cancel pool id);
  let j = ok (Serve.Pool.result_json pool id) in
  Alcotest.(check (option string)) "cancelled" (Some "cancelled") (jstr j "state");
  (* Regression: a job cancelled while still queued spent real time
     waiting; its record must report that wait, not 0. *)
  (match jnum j "wait_s" with
  | Some w -> Alcotest.(check bool) "wait_s covers the queue time" true (w >= 0.04 && w < 10.0)
  | None -> Alcotest.fail "no wait_s");
  Serve.Pool.shutdown pool

(* Parses fine but fails semantic compilation (unknown model) — the shape
   of failure the compile cache replays. *)
let broken_source =
  ".jig j\nm1 d g 0 0 nosuchmodel w=10u l=1u\nvin d 0 1 ac 1\n.pz t v(d) vin\n.endjig\n\
   .bias\nr1 x 0 1\n.endbias\n.obj o 'dc_gain(t)' good=1 bad=0\n"

let test_pool_failed_job_cache_outcome () =
  let pool = running_pool () in
  let id1 = ok (Serve.Pool.submit pool (submission ~source:broken_source ())) in
  Alcotest.(check string) "first failed" "failed" (wait_done pool id1);
  let id2 = ok (Serve.Pool.submit pool (submission ~source:broken_source ())) in
  Alcotest.(check string) "second failed" "failed" (wait_done pool id2);
  let j1 = ok (Serve.Pool.result_json pool id1) in
  let j2 = ok (Serve.Pool.result_json pool id2) in
  (* Regression: the compile-failure path records the real cache outcome
     instead of unconditionally claiming a miss. *)
  Alcotest.(check (option string)) "first failure missed the cache" (Some "miss")
    (jstr j1 "cache");
  Alcotest.(check (option string)) "replayed failure hit the cache" (Some "hit")
    (jstr j2 "cache");
  Alcotest.(check bool) "error preserved" true (jstr j2 "error" <> None);
  Serve.Pool.shutdown pool

(* --- Durable job log: restart replay --- *)

let dir_counter = ref 0

let temp_state_dir tag =
  incr dir_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "oblxd-%s-%d-%d" tag (Unix.getpid ()) !dir_counter)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let test_pool_restart_replay () =
  let dir = temp_state_dir "replay" in
  rm_rf dir;
  let cfg workers =
    { Serve.Pool.default_config with workers; queue_capacity = 8; state_dir = Some dir }
  in
  let pool_a = Serve.Pool.create (cfg 1) in
  let id = ok (Serve.Pool.submit pool_a (submission ~moves:300 ())) in
  Alcotest.(check string) "job finished" "done" (wait_done pool_a id);
  let ja = ok (Serve.Pool.result_json pool_a id) in
  let cost_a =
    match jnum ja "best_cost" with
    | Some c -> c
    | None -> Alcotest.fail "no best_cost before restart"
  in
  Serve.Pool.shutdown pool_a;
  (* Restart over the same state_dir: the journal replays the finished
     job, so its id still answers — with the same result, bit for bit. *)
  let pool_b = Serve.Pool.create (cfg 0) in
  let jb = ok (Serve.Pool.result_json pool_b id) in
  Alcotest.(check (option string)) "replayed state" (Some "done") (jstr jb "state");
  (match jnum jb "best_cost" with
  | Some c ->
      Alcotest.(check bool) "replayed cost bit-identical" true
        (Int64.bits_of_float c = Int64.bits_of_float cost_a)
  | None -> Alcotest.fail "replayed record lost best_cost");
  Alcotest.(check (option string)) "cache outcome survives" (jstr ja "cache")
    (jstr jb "cache");
  let stats = Serve.Pool.stats_json pool_b in
  Alcotest.(check (option (float 0.0))) "restored counter" (Some 1.0)
    (jnum stats "restored_jobs");
  (* Fresh ids continue past the replayed ones — no ambiguity. *)
  let id2 = ok (Serve.Pool.submit pool_b (submission ())) in
  Alcotest.(check bool) "ids continue past replayed ones" true (id2 > id);
  Serve.Pool.shutdown pool_b;
  rm_rf dir

let test_pool_restart_interrupted () =
  let dir = temp_state_dir "interrupted" in
  rm_rf dir;
  let cfg () =
    { Serve.Pool.default_config with workers = 0; queue_capacity = 8; state_dir = Some dir }
  in
  (* A frozen pool leaves the job queued; abandoning it without shutdown
     simulates a daemon crash mid-queue. *)
  let crashed = Serve.Pool.create (cfg ()) in
  let id = ok (Serve.Pool.submit crashed (submission ())) in
  let pool = Serve.Pool.create (cfg ()) in
  let j = ok (Serve.Pool.result_json pool id) in
  Alcotest.(check (option string)) "interrupted job failed" (Some "failed")
    (jstr j "state");
  Alcotest.(check (option string)) "blames the restart" (Some "daemon restarted")
    (jstr j "error");
  (match jnum (Serve.Pool.stats_json pool) "restored_jobs" with
  | Some n -> Alcotest.(check bool) "restored counted" true (n >= 1.0)
  | None -> Alcotest.fail "no restored_jobs in stats");
  Serve.Pool.shutdown pool;
  (* The verdict is itself journaled: a second restart still answers. *)
  let pool2 = Serve.Pool.create (cfg ()) in
  let j2 = ok (Serve.Pool.result_json pool2 id) in
  Alcotest.(check (option string)) "verdict survives a second restart" (Some "failed")
    (jstr j2 "state");
  Serve.Pool.shutdown pool2;
  rm_rf dir

(* --- Daemon over the socket --- *)

let test_server_end_to_end () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "oblxd-test-%d.sock" (Unix.getpid ()))
  in
  let cfg =
    {
      Serve.Server.socket_path = socket;
      tcp = None;
      auth_token = None;
      max_connections = Serve.Server.default_max_connections;
      idle_timeout_s = Serve.Server.default_idle_timeout_s;
      pool =
        { Serve.Pool.default_config with workers = 1; queue_capacity = 8; state_dir = None };
    }
  in
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let ready = ref false in
  let server =
    Domain.spawn (fun () ->
        Serve.Server.run
          ~ready:(fun () ->
            Mutex.lock ready_m;
            ready := true;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          cfg)
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  (* Submit twice: the second compile must hit the cache. *)
  let id1 = ok (Serve.Client.submit ~socket (submission ~moves:300 ())) in
  let j1 = ok (Serve.Client.wait ~socket id1) in
  Alcotest.(check (option string)) "first done" (Some "done") (jstr j1 "state");
  Alcotest.(check (option string)) "first missed the cache" (Some "miss") (jstr j1 "cache");
  let id2 = ok (Serve.Client.submit ~socket (submission ~moves:300 ~seed:2 ())) in
  let j2 = ok (Serve.Client.wait ~socket id2) in
  Alcotest.(check (option string)) "second hit the cache" (Some "hit") (jstr j2 "cache");
  (* Malformed and protocol-error requests answer with ok:false, and the
     connection-per-request model survives them. *)
  (match Serve.Client.request ~socket (Obs.Json.Str "not a request") with
  | Ok resp -> Alcotest.(check bool) "error response" true (Serve.Proto.response_error resp <> None)
  | Error e -> Alcotest.failf "transport error: %s" e);
  (match Serve.Client.status ~socket 999 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown id must be an error");
  (* Stats reflect the two finished jobs and the cache hit. *)
  let stats = ok (Serve.Client.stats ~socket ()) in
  let jobs = Option.get (Obs.Json.mem_opt "jobs" stats) in
  Alcotest.(check (option (float 0.0))) "two done" (Some 2.0) (jnum jobs "done");
  let cache = Option.get (Obs.Json.mem_opt "cache" stats) in
  Alcotest.(check bool) "hit rate > 0"
    true
    (match jnum cache "hit_rate" with Some r -> r > 0.0 | None -> false);
  ok (Serve.Client.shutdown ~socket ());
  Domain.join server;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket);
  (* A client against a dead daemon gets a clear error, not a hang. *)
  match Serve.Client.stats ~socket () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dead daemon must be an error"

(* Boot a daemon on a fresh socket, run [f socket], always drain it. *)
let sock_counter = ref 0

let with_server ?(workers = 0) ?(max_connections = Serve.Server.default_max_connections)
    ?(idle_timeout_s = Serve.Server.default_idle_timeout_s) f =
  incr sock_counter;
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "oblxd-t%d-%d.sock" (Unix.getpid ()) !sock_counter)
  in
  let cfg =
    {
      Serve.Server.socket_path = socket;
      tcp = None;
      auth_token = None;
      max_connections;
      idle_timeout_s;
      pool =
        { Serve.Pool.default_config with workers; queue_capacity = 8; state_dir = None };
    }
  in
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let ready = ref false in
  let server =
    Domain.spawn (fun () ->
        Serve.Server.run
          ~ready:(fun () ->
            Mutex.lock ready_m;
            ready := true;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          cfg)
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  Fun.protect
    ~finally:(fun () ->
      ignore (Serve.Client.shutdown ~socket ());
      Domain.join server)
    (fun () -> f socket)

let connect_raw socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let raw_response reader =
  match Serve.Proto.read_line reader with
  | Some line -> (
      match Obs.Json.of_string line with
      | Ok j -> j
      | Error e -> Alcotest.failf "bad response json: %s" e)
  | None -> Alcotest.fail "connection closed before a response"

let test_server_concurrent_clients () =
  with_server (fun socket ->
      (* An idle connection holds a slot but must not block other clients —
         the serial accept loop this server replaced would hang here. *)
      let idle = connect_raw socket in
      let stats = ok (Serve.Client.stats ~socket ~timeout_s:2.0 ()) in
      Alcotest.(check bool) "stats answered while another client idles" true
        (Obs.Json.mem_opt "jobs" stats <> None);
      (* Two simultaneous connections, both answered on their own socket. *)
      let a = connect_raw socket and b = connect_raw socket in
      let ra = Serve.Proto.line_reader a and rb = Serve.Proto.line_reader b in
      Serve.Proto.write_line a (Serve.Proto.request_to_json Serve.Proto.Stats);
      Serve.Proto.write_line b (Serve.Proto.request_to_json Serve.Proto.Stats);
      Alcotest.(check bool) "first connection answered" true
        (Serve.Proto.response_error (raw_response ra) = None);
      Alcotest.(check bool) "second connection answered" true
        (Serve.Proto.response_error (raw_response rb) = None);
      (* A connection serves several requests back to back. *)
      Serve.Proto.write_line a (Serve.Proto.request_to_json (Serve.Proto.Status 999));
      Alcotest.(check bool) "second request on the same connection" true
        (Serve.Proto.response_error (raw_response ra) <> None);
      List.iter Unix.close [ idle; a; b ])

let test_server_connection_cap () =
  with_server ~max_connections:2 (fun socket ->
      let a = connect_raw socket in
      let b = connect_raw socket in
      (* The listener registers connections in accept order, so by the time
         a third connect is accepted both slots are held. *)
      (match Serve.Client.stats ~socket ~timeout_s:2.0 () with
      | Error e ->
          Alcotest.(check bool) "busy error names the cap" true
            (contains e "connection capacity")
      | Ok _ -> Alcotest.fail "over-cap connection must be refused");
      (* Closing a held connection frees its slot. *)
      Unix.close a;
      let rec retry n =
        match Serve.Client.stats ~socket ~timeout_s:2.0 () with
        | Ok _ -> ()
        | Error _ when n > 0 ->
            Unix.sleepf 0.05;
            retry (n - 1)
        | Error e -> Alcotest.failf "slot never freed: %s" e
      in
      retry 40;
      Unix.close b)

let test_server_idle_timeout () =
  with_server ~idle_timeout_s:0.3 (fun socket ->
      let fd = connect_raw socket in
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
      let t0 = Unix.gettimeofday () in
      let reader = Serve.Proto.line_reader fd in
      (match Serve.Proto.read_line reader with
      | None -> ()
      | Some _ -> Alcotest.fail "idle connection must be closed, not answered");
      let dt = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool) "closed after roughly the idle timeout" true
        (dt >= 0.2 && dt < 4.0);
      Unix.close fd;
      (* The slot is back and the daemon keeps serving. *)
      ignore (ok (Serve.Client.stats ~socket ())))

let test_client_error_attribution () =
  (* Connect failure: daemon not running / wrong path. *)
  (match Serve.Client.stats ~socket:"/nonexistent-dir/oblxd.sock" () with
  | Error e ->
      Alcotest.(check bool) "connect failure says cannot reach" true
        (contains e "cannot reach")
  | Ok _ -> Alcotest.fail "connect must fail");
  (* Regression: a socket that accepts (kernel backlog) but never answers
     is a response timeout — "did not respond" — not a reachability
     problem. *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "oblxd-mute-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 4;
  (match Serve.Client.stats ~socket:path ~timeout_s:0.3 () with
  | Error e ->
      Alcotest.(check bool) "timeout says did not respond" true
        (contains e "did not respond");
      Alcotest.(check bool) "timeout not misattributed to reachability" false
        (contains e "cannot reach")
  | Ok _ -> Alcotest.fail "mute daemon must time out");
  Unix.close listener;
  Unix.unlink path

(* --- TCP transport, auth, fleet, rotation --- *)

(* Boot a daemon with a TCP listener on an ephemeral loopback port (plus
   its Unix socket). Returns both endpoints and a shutdown closure. *)
type daemon = {
  d_unix : string;
  d_tcp : string;  (** "tcp:127.0.0.1:PORT" client endpoint *)
  d_pool : Serve.Pool.t;
  d_stop : unit -> unit;
}

let boot_daemon ?(workers = 1) ?auth_token ?fleet () =
  incr sock_counter;
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "oblxd-tcp%d-%d.sock" (Unix.getpid ()) !sock_counter)
  in
  let pool =
    Serve.Pool.create
      { Serve.Pool.default_config with workers; queue_capacity = 16; state_dir = None; fleet }
  in
  let cfg =
    {
      Serve.Server.socket_path = socket;
      tcp = Some ("127.0.0.1", 0);
      auth_token;
      max_connections = Serve.Server.default_max_connections;
      idle_timeout_s = Serve.Server.default_idle_timeout_s;
      pool = { Serve.Pool.default_config with workers; state_dir = None };
    }
  in
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let ready = ref false in
  let port = ref 0 in
  let server =
    Domain.spawn (fun () ->
        Serve.Server.run
          ~tcp_port:(fun p -> port := p)
          ~ready:(fun () ->
            Mutex.lock ready_m;
            ready := true;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          ~pool cfg)
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  let stopped = ref false in
  {
    d_unix = socket;
    d_tcp = Printf.sprintf "tcp:127.0.0.1:%d" !port;
    d_pool = pool;
    d_stop =
      (fun () ->
        if not !stopped then begin
          stopped := true;
          ignore (Serve.Client.shutdown ~socket ?auth:auth_token ());
          Domain.join server
        end);
  }

let test_proto_new_verbs_round_trip () =
  let requests =
    [
      Serve.Proto.Submit (submission ~runs:8 ~shard:(2, 5) ());
      Serve.Proto.Cache_lookup "deadbeef";
      Serve.Proto.Cache_push { Serve.Proto.cp_hash = "deadbeef"; cp_error = None };
      Serve.Proto.Cache_push { Serve.Proto.cp_hash = "cafe"; cp_error = Some "no such model" };
      Serve.Proto.Ping;
    ]
  in
  List.iter
    (fun req ->
      match Serve.Proto.request_of_json (Serve.Proto.request_to_json req) with
      | Ok req' -> Alcotest.(check bool) "request survives the wire" true (req = req')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    requests;
  (* A half-specified shard is a decode error, not a silent default. *)
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | Error e -> Alcotest.failf "json: %s" e
      | Ok j -> (
          match Serve.Proto.request_of_json j with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "expected decode error for %s" s))
    [
      {|{"op":"submit","source":"s","shard_lo":1}|};
      {|{"op":"submit","source":"s","shard_hi":3}|};
      {|{"op":"cache_lookup"}|};
      {|{"op":"cache_push"}|};
    ]

let test_fleet_split_shards () =
  List.iter
    (fun (runs, parts, expect) ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "split %d over %d" runs parts)
        expect
        (Serve.Fleet.split_shards ~runs ~parts))
    [
      (6, 3, [ (0, 2); (2, 4); (4, 6) ]);
      (7, 3, [ (0, 3); (3, 5); (5, 7) ]);
      (2, 5, [ (0, 1); (1, 2) ]);
      (1, 1, [ (0, 1) ]);
      (5, 1, [ (0, 5) ]);
    ];
  (* Property: shards tile [0, runs) in ascending order, for any shape. *)
  for runs = 1 to 12 do
    for parts = 1 to 5 do
      let shards = Serve.Fleet.split_shards ~runs ~parts in
      let covered =
        List.fold_left
          (fun expect (lo, hi) ->
            Alcotest.(check int) "contiguous" expect lo;
            Alcotest.(check bool) "non-empty" true (hi > lo);
            hi)
          0 shards
      in
      Alcotest.(check int) "covers the budget" runs covered
    done
  done

let compiled_ota =
  lazy
    (match Core.Compile.compile_source ota_source with
    | Ok p -> p
    | Error e -> Alcotest.failf "compile: %s" e)

let test_pool_shard_execution () =
  (* A sharded submit runs exactly its restart range: same bits as asking
     Oblx for that range directly. *)
  let p = Lazy.force compiled_ota in
  let moves = 250 and seed = 11 and runs = 5 in
  let ref_best, ref_all =
    Core.Oblx.best_of ~seed ~moves ~jobs:1 ~runs ~restarts:(1, 4) p
  in
  let pool = running_pool () in
  let id = ok (Serve.Pool.submit pool (submission ~seed ~moves ~runs ~shard:(1, 4) ())) in
  Alcotest.(check string) "shard finished" "done" (wait_done pool id);
  let j = ok (Serve.Pool.result_json pool id) in
  (match jnum j "best_cost" with
  | Some c ->
      Alcotest.(check bool) "shard cost bit-identical to direct range" true
        (Int64.bits_of_float c = Int64.bits_of_float ref_best.Core.Oblx.best_cost)
  | None -> Alcotest.fail "no best_cost");
  (* The winner index is global (shard-offset), not shard-relative. *)
  let ref_winner =
    1
    + (let rec go i = function
         | [] -> 0
         | r :: rest -> if r == ref_best then i else go (i + 1) rest
       in
       go 0 ref_all)
  in
  Alcotest.(check (option (float 0.0))) "global winner index"
    (Some (float_of_int ref_winner))
    (jnum j "winner_restart");
  (* Shard bounds are validated up front. *)
  List.iter
    (fun shard ->
      match Serve.Pool.submit pool (submission ~runs:4 ~shard ()) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bad shard bounds must be rejected")
    [ (-1, 2); (2, 2); (3, 2); (0, 5) ];
  Serve.Pool.shutdown pool

let test_tcp_round_trip () =
  let d = boot_daemon () in
  Fun.protect ~finally:d.d_stop (fun () ->
      let socket = d.d_tcp in
      (* Every verb over loopback TCP, through the same client. *)
      ok (Serve.Client.ping ~socket ());
      let id = ok (Serve.Client.submit ~socket (submission ~moves:200 ())) in
      let j = ok (Serve.Client.wait ~socket id) in
      Alcotest.(check (option string)) "job done over tcp" (Some "done") (jstr j "state");
      let st = ok (Serve.Client.status ~socket id) in
      Alcotest.(check (option string)) "status over tcp" (Some "done") (jstr st "state");
      ignore (ok (Serve.Client.result ~socket id));
      ignore (ok (Serve.Client.stats ~socket ()));
      (match Serve.Client.cancel ~socket id with
      | Error _ -> () (* already finished; the point is the verb's transit *)
      | Ok () -> Alcotest.fail "cancel of a done job must be an error");
      (* cache_lookup answers from the daemon's compile cache. *)
      let hash =
        match Core.Compile_cache.key_of_source ota_source with
        | Ok k -> k
        | Error e -> Alcotest.failf "canon: %s" e
      in
      (match ok (Serve.Client.cache_lookup ~socket hash) with
      | Some (Ok ()) -> ()
      | Some (Error e) -> Alcotest.failf "good source reported bad: %s" e
      | None -> Alcotest.fail "compiled hash must be known");
      Alcotest.(check bool) "unknown hash unknown" true
        (ok (Serve.Client.cache_lookup ~socket "0000") = None);
      (* cache_push of a failure verdict is visible to the next lookup. *)
      ok
        (Serve.Client.cache_push ~socket
           { Serve.Proto.cp_hash = "feedface"; cp_error = Some "boom" });
      (match ok (Serve.Client.cache_lookup ~socket "feedface") with
      | Some (Error "boom") -> ()
      | _ -> Alcotest.fail "pushed verdict must be served back");
      (* The Unix socket serves the same daemon. *)
      let st2 = ok (Serve.Client.stats ~socket:d.d_unix ()) in
      Alcotest.(check bool) "both transports, one daemon" true
        (Obs.Json.mem_opt "jobs" st2 <> None))

let test_tcp_partial_line_writes () =
  let d = boot_daemon ~workers:0 () in
  Fun.protect ~finally:d.d_stop (fun () ->
      (* A request dribbled out a few bytes at a time is still one line. *)
      let port =
        match Serve.Client.parse_endpoint d.d_tcp with
        | Ok (Serve.Client.Tcp (_, p)) -> p
        | _ -> Alcotest.fail "tcp endpoint did not parse"
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let line = Obs.Json.to_string (Serve.Proto.request_to_json Serve.Proto.Stats) ^ "\n" in
      String.iter
        (fun c ->
          ignore (Unix.write_substring fd (String.make 1 c) 0 1);
          if c = ',' then Unix.sleepf 0.002)
        line;
      let reader = Serve.Proto.line_reader fd in
      Alcotest.(check bool) "dribbled request answered" true
        (Serve.Proto.response_error (raw_response reader) = None);
      (* Two requests in one write: both answered, in order. *)
      let two =
        Obs.Json.to_string (Serve.Proto.request_to_json Serve.Proto.Ping)
        ^ "\n"
        ^ Obs.Json.to_string (Serve.Proto.request_to_json (Serve.Proto.Status 999))
        ^ "\n"
      in
      ignore (Unix.write_substring fd two 0 (String.length two));
      Alcotest.(check bool) "first of pipelined pair" true
        (Serve.Proto.response_error (raw_response reader) = None);
      Alcotest.(check bool) "second of pipelined pair" true
        (Serve.Proto.response_error (raw_response reader) <> None);
      Unix.close fd)

let test_tcp_error_attribution () =
  (* Nobody listening: reachability. *)
  (match Serve.Client.stats ~socket:"tcp:127.0.0.1:1" ~timeout_s:0.5 () with
  | Error e ->
      Alcotest.(check bool) "refused connect says cannot reach" true
        (contains e "cannot reach")
  | Ok _ -> Alcotest.fail "closed port must fail");
  (* Accepts but never answers: a response timeout, as on the Unix path. *)
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listener 4;
  let port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "no port"
  in
  (match
     Serve.Client.stats ~socket:(Printf.sprintf "tcp:127.0.0.1:%d" port) ~timeout_s:0.3 ()
   with
  | Error e ->
      Alcotest.(check bool) "mute tcp daemon says did not respond" true
        (contains e "did not respond");
      Alcotest.(check bool) "not misattributed to reachability" false
        (contains e "cannot reach")
  | Ok _ -> Alcotest.fail "mute daemon must time out");
  Unix.close listener

let test_auth_required () =
  let d = boot_daemon ~workers:0 ~auth_token:"sekrit" () in
  Fun.protect ~finally:d.d_stop (fun () ->
      (* The right token, pipelined: business as usual on both transports. *)
      ignore (ok (Serve.Client.stats ~socket:d.d_tcp ~auth:"sekrit" ()));
      ignore (ok (Serve.Client.stats ~socket:d.d_unix ~auth:"sekrit" ()));
      (* No token: the first line is a request, which is an auth failure —
         exactly one ok:false line, then the connection closes. *)
      let expect_one_refusal fd =
        let reader = Serve.Proto.line_reader fd in
        Serve.Proto.write_line fd (Serve.Proto.request_to_json Serve.Proto.Stats);
        (match Serve.Proto.read_line reader with
        | Some line -> (
            match Obs.Json.of_string line with
            | Ok j -> (
                match Serve.Proto.response_error j with
                | Some e ->
                    Alcotest.(check string) "names the failure"
                      Serve.Proto.auth_failed_message e
                | None -> Alcotest.fail "refusal must be ok:false")
            | Error e -> Alcotest.failf "bad refusal json: %s" e)
        | None -> Alcotest.fail "expected one refusal line");
        (* ...and nothing after it: the daemon hung up. *)
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
        (match Serve.Proto.read_line reader with
        | None -> ()
        | Some _ -> Alcotest.fail "connection must close after the refusal");
        Unix.close fd
      in
      expect_one_refusal (connect_raw d.d_unix);
      (* Wrong token over TCP: same single refusal. *)
      let port =
        match Serve.Client.parse_endpoint d.d_tcp with
        | Ok (Serve.Client.Tcp (_, p)) -> p
        | _ -> Alcotest.fail "tcp endpoint did not parse"
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Serve.Proto.write_line fd (Serve.Proto.auth_to_json "wrong");
      let reader = Serve.Proto.line_reader fd in
      (match Serve.Proto.read_line reader with
      | Some line ->
          Alcotest.(check bool) "wrong token refused" true
            (match Obs.Json.of_string line with
            | Ok j -> Serve.Proto.response_error j <> None
            | Error _ -> false)
      | None -> Alcotest.fail "expected a refusal line");
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
      (match Serve.Proto.read_line reader with
      | None -> ()
      | Some _ -> Alcotest.fail "connection must close after wrong token");
      Unix.close fd;
      (* The client surfaces the refusal as the request's error. *)
      (match Serve.Client.stats ~socket:d.d_tcp ~auth:"wrong" () with
      | Error e ->
          Alcotest.(check bool) "client surfaces auth failure" true
            (contains e Serve.Proto.auth_failed_message)
      | Ok _ -> Alcotest.fail "wrong token must fail");
      (* Failures are counted. *)
      let st = ok (Serve.Client.stats ~socket:d.d_tcp ~auth:"sekrit" ()) in
      let conns = Option.get (Obs.Json.mem_opt "connections" st) in
      match jnum conns "auth_failures" with
      | Some n -> Alcotest.(check bool) "auth failures counted" true (n >= 3.0)
      | None -> Alcotest.fail "no auth_failures counter")

let test_drain_closes_tcp () =
  let d = boot_daemon ~workers:0 () in
  let port =
    match Serve.Client.parse_endpoint d.d_tcp with
    | Ok (Serve.Client.Tcp (_, p)) -> p
    | _ -> Alcotest.fail "tcp endpoint did not parse"
  in
  ok (Serve.Client.ping ~socket:d.d_tcp ());
  d.d_stop ();
  (* Both listeners are gone: TCP connects are refused, the socket file is
     unlinked. *)
  (match Serve.Client.ping ~socket:d.d_tcp ~timeout_s:1.0 () with
  | Error e -> Alcotest.(check bool) "tcp listener closed" true (contains e "cannot reach")
  | Ok () -> Alcotest.fail "drained daemon must not answer tcp");
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists d.d_unix);
  ignore port

(* --- Fleet: scatter/steal/merge determinism, cache replication --- *)

let fleet_config ?(peers = []) ?(steal_timeout_s = 30.0) ?(rpc_timeout_s = 5.0) () =
  Serve.Fleet.create
    { Serve.Fleet.default_config with peers; steal_timeout_s; rpc_timeout_s }

(* A coordinator pool wired to [peers]; runs shard 0 itself. *)
let coordinator ?fleet () =
  Serve.Pool.create
    {
      Serve.Pool.default_config with
      workers = 1;
      queue_capacity = 16;
      state_dir = None;
      fleet;
    }

let test_fleet_determinism () =
  let moves = 250 and seed = 9 and runs = 6 in
  (* The single-box reference: one daemon, whole budget. *)
  let p = Lazy.force compiled_ota in
  let ref_best, ref_all = Core.Oblx.best_of ~seed ~moves ~jobs:1 ~runs p in
  let ref_winner =
    let rec go i = function
      | [] -> 0
      | r :: rest -> if r == ref_best then i else go (i + 1) rest
    in
    go 0 ref_all
  in
  (* Three daemons: a coordinator pool scattering over two TCP peers. *)
  let b = boot_daemon () and c = boot_daemon () in
  let fleet = fleet_config ~peers:[ b.d_tcp; c.d_tcp ] () in
  let pool = coordinator ~fleet () in
  Fun.protect
    ~finally:(fun () ->
      Serve.Pool.shutdown pool;
      b.d_stop ();
      c.d_stop ())
    (fun () ->
      let id = ok (Serve.Pool.submit pool (submission ~seed ~moves ~runs ())) in
      Alcotest.(check string) "fleet job done" "done" (wait_done pool id);
      let j = ok (Serve.Pool.result_json pool id) in
      (match jnum j "best_cost" with
      | Some c ->
          Alcotest.(check bool) "fleet = one box, bit for bit" true
            (Int64.bits_of_float c = Int64.bits_of_float ref_best.Core.Oblx.best_cost)
      | None -> Alcotest.fail "no best_cost");
      Alcotest.(check (option (float 0.0))) "winner restart preserved"
        (Some (float_of_int ref_winner))
        (jnum j "winner_restart");
      (* Every restart ran exactly once, somewhere. *)
      let total_moves =
        List.fold_left (fun a (r : Core.Oblx.result) -> a + r.Core.Oblx.moves) 0 ref_all
      in
      Alcotest.(check (option (float 0.0))) "move total matches the flat run"
        (Some (float_of_int total_moves))
        (jnum j "moves");
      let fs = Serve.Fleet.stats_json fleet in
      Alcotest.(check (option (float 0.0))) "one scatter" (Some 1.0) (jnum fs "scatters");
      Alcotest.(check (option (float 0.0))) "two remote shards" (Some 2.0)
        (jnum fs "remote_shards"))

let test_fleet_steal_recovers () =
  let moves = 250 and seed = 9 and runs = 6 in
  let p = Lazy.force compiled_ota in
  let ref_best, _ = Core.Oblx.best_of ~seed ~moves ~jobs:1 ~runs p in
  (* One live peer, one "peer" that accepts and never answers — a daemon
     that died mid-job. Its shard must be stolen and re-run locally, and
     the merged answer must not change. *)
  let b = boot_daemon () in
  let dead = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt dead Unix.SO_REUSEADDR true;
  Unix.bind dead (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen dead 4;
  let dead_ep =
    match Unix.getsockname dead with
    | Unix.ADDR_INET (_, p) -> Printf.sprintf "tcp:127.0.0.1:%d" p
    | _ -> Alcotest.fail "no port"
  in
  let fleet = fleet_config ~peers:[ b.d_tcp; dead_ep ] ~rpc_timeout_s:0.4 () in
  let pool = coordinator ~fleet () in
  Fun.protect
    ~finally:(fun () ->
      Serve.Pool.shutdown pool;
      b.d_stop ();
      Unix.close dead)
    (fun () ->
      let id = ok (Serve.Pool.submit pool (submission ~seed ~moves ~runs ())) in
      Alcotest.(check string) "job survives the dead peer" "done" (wait_done pool id);
      let j = ok (Serve.Pool.result_json pool id) in
      (match jnum j "best_cost" with
      | Some c ->
          Alcotest.(check bool) "stolen shard changes nothing, bit for bit" true
            (Int64.bits_of_float c = Int64.bits_of_float ref_best.Core.Oblx.best_cost)
      | None -> Alcotest.fail "no best_cost");
      let fs = Serve.Fleet.stats_json fleet in
      (match jnum fs "steals" with
      | Some n -> Alcotest.(check bool) "the steal was counted" true (n >= 1.0)
      | None -> Alcotest.fail "no steals counter"))

let test_fleet_cache_replication () =
  (* Two fleet-aware daemons pointing at each other. Compiling on one
     pushes the verdict to the other; the other's first compile of the
     same source is then a remote hit (it still compiles — closures don't
     travel — but the fleet knew). *)
  let fb = fleet_config () and fc = fleet_config () in
  let b = boot_daemon ~fleet:fb () and c = boot_daemon ~fleet:fc () in
  Serve.Fleet.set_peers fb [ c.d_tcp ];
  Serve.Fleet.set_peers fc [ b.d_tcp ];
  Fun.protect
    ~finally:(fun () ->
      b.d_stop ();
      c.d_stop ())
    (fun () ->
      let id = ok (Serve.Client.submit ~socket:b.d_tcp (submission ~moves:200 ())) in
      let j = ok (Serve.Client.wait ~socket:b.d_tcp id) in
      Alcotest.(check (option string)) "first daemon compiled" (Some "miss")
        (jstr j "cache");
      (* The push landed in C's directory before B's job finished (push
         happens at compile time, before annealing). *)
      let id2 = ok (Serve.Client.submit ~socket:c.d_tcp (submission ~moves:200 ())) in
      let j2 = ok (Serve.Client.wait ~socket:c.d_tcp id2) in
      Alcotest.(check (option string)) "second daemon still compiles locally"
        (Some "miss") (jstr j2 "cache");
      Alcotest.(check (option string)) "and still finishes" (Some "done")
        (jstr j2 "state");
      let st = ok (Serve.Client.stats ~socket:c.d_tcp ()) in
      let cache = Option.get (Obs.Json.mem_opt "cache" st) in
      (match jnum cache "remote_hits" with
      | Some n -> Alcotest.(check bool) "remote hit counted in stats" true (n >= 1.0)
      | None -> Alcotest.fail "no remote_hits in cache stats");
      (* A compile *failure* verdict replicates too — and fails fast. *)
      let idb = ok (Serve.Client.submit ~socket:b.d_tcp (submission ~source:broken_source ())) in
      let jb = ok (Serve.Client.wait ~socket:b.d_tcp idb) in
      Alcotest.(check (option string)) "broken failed at the source" (Some "failed")
        (jstr jb "state");
      let idc = ok (Serve.Client.submit ~socket:c.d_tcp (submission ~source:broken_source ())) in
      let jc = ok (Serve.Client.wait ~socket:c.d_tcp idc) in
      Alcotest.(check (option string)) "replicated verdict fails fast" (Some "failed")
        (jstr jc "state");
      Alcotest.(check (option string)) "with the same error" (jstr jb "error")
        (jstr jc "error"))

(* --- Journal rotation --- *)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_log_rotation_compacts_and_replays () =
  let dir = temp_state_dir "rotate" in
  rm_rf dir;
  let cfg workers =
    {
      Serve.Pool.default_config with
      workers;
      queue_capacity = 16;
      state_dir = Some dir;
      log_rotate_bytes = Some 2_000;
    }
  in
  let pool = Serve.Pool.create (cfg 1) in
  let ids =
    List.init 5 (fun i ->
        ok (Serve.Pool.submit pool (submission ~seed:(i + 1) ~moves:150 ())))
  in
  List.iter (fun id -> Alcotest.(check string) "finished" "done" (wait_done pool id)) ids;
  let costs =
    List.map
      (fun id ->
        match jnum (ok (Serve.Pool.result_json pool id)) "best_cost" with
        | Some c -> (id, c)
        | None -> Alcotest.failf "job %d has no best_cost" id)
      ids
  in
  let stats = Serve.Pool.stats_json pool in
  let journal = Option.get (Obs.Json.mem_opt "journal" stats) in
  (match jnum journal "rotations" with
  | Some n -> Alcotest.(check bool) "rotated at least once" true (n >= 1.0)
  | None -> Alcotest.fail "no rotations counter");
  (* The compacted journal holds one terminal line per finished job. *)
  let lines = read_lines (Filename.concat dir "jobs.log") in
  Alcotest.(check bool) "compaction shrank the journal" true
    (List.length lines <= 2 * List.length ids);
  Serve.Pool.shutdown pool;
  (* A leftover tmp from a rotation killed mid-write must be ignored:
     replay reads jobs.log only. *)
  let tmp_oc = open_out (Filename.concat dir "jobs.log.tmp") in
  output_string tmp_oc "{\"log\":\"submit\",\"torn";
  close_out tmp_oc;
  let pool2 = Serve.Pool.create (cfg 0) in
  List.iter
    (fun (id, cost) ->
      let j = ok (Serve.Pool.result_json pool2 id) in
      Alcotest.(check (option string))
        (Printf.sprintf "job %d replayed done" id)
        (Some "done") (jstr j "state");
      match jnum j "best_cost" with
      | Some c ->
          Alcotest.(check bool)
            (Printf.sprintf "job %d cost bit-identical" id)
            true
            (Int64.bits_of_float c = Int64.bits_of_float cost)
      | None -> Alcotest.failf "job %d lost best_cost" id)
    costs;
  Serve.Pool.shutdown pool2;
  rm_rf dir

let test_log_rotation_keeps_live_jobs () =
  let dir = temp_state_dir "rotate-live" in
  rm_rf dir;
  (* A frozen pool with queued jobs: rotation must preserve their submit
     lines so a restart still knows about them. Tiny threshold so the
     queued submits themselves trip rotation. *)
  let cfg =
    {
      Serve.Pool.default_config with
      workers = 0;
      queue_capacity = 16;
      state_dir = Some dir;
      log_rotate_bytes = Some 200;
    }
  in
  let pool = Serve.Pool.create cfg in
  let ids = List.init 3 (fun i -> ok (Serve.Pool.submit pool (submission ~seed:(i + 1) ()))) in
  let stats = Serve.Pool.stats_json pool in
  let journal = Option.get (Obs.Json.mem_opt "journal" stats) in
  (match jnum journal "rotations" with
  | Some n -> Alcotest.(check bool) "queued submits tripped rotation" true (n >= 1.0)
  | None -> Alcotest.fail "no rotations counter");
  (* Abandon without shutdown (simulated crash): the rotated journal must
     still replay every queued id, as failed-by-restart. *)
  let pool2 = Serve.Pool.create { cfg with log_rotate_bytes = None } in
  List.iter
    (fun id ->
      let j = ok (Serve.Pool.result_json pool2 id) in
      Alcotest.(check (option string))
        (Printf.sprintf "queued job %d survived rotation" id)
        (Some "failed") (jstr j "state"))
    ids;
  Serve.Pool.shutdown pool2;
  Serve.Pool.shutdown pool;
  rm_rf dir

(* --- Sweep jobs --- *)

let sweep_variants =
  [
    { Serve.Proto.vr_name = "nominal/base"; vr_corner = None; vr_specs = [] };
    { Serve.Proto.vr_name = "slow/base"; vr_corner = Some "slow"; vr_specs = [] };
    {
      Serve.Proto.vr_name = "nominal/tight-ugf";
      vr_corner = None;
      vr_specs = [ ("ugf", 80e6, 1e6) ];
    };
  ]

let test_proto_sweep_round_trip () =
  let req =
    Serve.Proto.Sweep { (submission ()) with Serve.Proto.sb_sweep = sweep_variants }
  in
  (match Serve.Proto.request_of_json (Serve.Proto.request_to_json req) with
  | Ok req' -> Alcotest.(check bool) "sweep survives the wire" true (req = req')
  | Error e -> Alcotest.failf "decode failed: %s" e);
  (* A sweep with no variants is a shape error on decode. *)
  let empty = Serve.Proto.Sweep (submission ()) in
  match Serve.Proto.request_of_json (Serve.Proto.request_to_json empty) with
  | Error e -> Alcotest.(check bool) "empty sweep rejected" true (contains e "variant")
  | Ok _ -> Alcotest.fail "empty sweep must not decode"

let test_pool_sweep_validation () =
  let pool = frozen_pool ~queue_capacity:4 () in
  (* Sweep jobs are never scattered: a sharded sweep is rejected up front. *)
  (match
     Serve.Pool.submit pool
       { (submission ~shard:(0, 1) ()) with Serve.Proto.sb_sweep = sweep_variants }
   with
  | Error e -> Alcotest.(check bool) "sharded sweep rejected" true (contains e "shard")
  | Ok _ -> Alcotest.fail "sharded sweep must be rejected");
  (* Variant rows need names — they key the verdict table. *)
  (match
     Serve.Pool.submit pool
       {
         (submission ()) with
         Serve.Proto.sb_sweep =
           [ { Serve.Proto.vr_name = "  "; vr_corner = None; vr_specs = [] } ];
       }
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unnamed variant must be rejected");
  Serve.Pool.shutdown pool

let run_sweep_on ~workers =
  let pool =
    Serve.Pool.create
      { Serve.Pool.default_config with workers; queue_capacity = 8; state_dir = None }
  in
  Fun.protect
    ~finally:(fun () -> Serve.Pool.shutdown pool)
    (fun () ->
      let id =
        ok
          (Serve.Pool.submit pool
             { (submission ~seed:7 ~moves:150 ()) with Serve.Proto.sb_sweep = sweep_variants })
      in
      Alcotest.(check string) "sweep finished" "done" (wait_done pool id);
      let j = ok (Serve.Pool.result_json pool id) in
      match Obs.Json.mem_opt "sweep" j with
      | Some (Obs.Json.Arr rows) -> (rows, Serve.Pool.stats_json pool)
      | _ -> Alcotest.fail "no sweep array in the result")

let test_pool_sweep_verdict_table () =
  let rows, stats = run_sweep_on ~workers:1 in
  Alcotest.(check int) "one row per variant" (List.length sweep_variants)
    (List.length rows);
  let cache_of r = jstr r "cache" in
  (match List.map cache_of rows with
  | [ Some "miss"; Some "miss"; Some "hit" ] -> ()
  | other ->
      Alcotest.failf "cache outcomes: expected miss/miss/hit, got %s"
        (String.concat "/"
           (List.map (function Some s -> s | None -> "?") other)));
  List.iter
    (fun r ->
      Alcotest.(check bool) "row has a verdict" true (Obs.Json.mem_opt "ok" r <> None);
      Alcotest.(check bool) "row has a best cost" true (jnum r "best_cost" <> None);
      Alcotest.(check bool) "row carries predictions" true
        (Obs.Json.mem_opt "predicted" r <> None))
    rows;
  (* The pool-level cache counters agree: 2 distinct (canon, corner) keys
     compiled, the third variant reused the nominal compile. *)
  match Obs.Json.mem_opt "cache" stats with
  | Some c ->
      Alcotest.(check (option (float 0.0))) "two compiles" (Some 2.0) (jnum c "misses");
      Alcotest.(check (option (float 0.0))) "one reuse" (Some 1.0) (jnum c "hits")
  | None -> Alcotest.fail "no cache stats"

let test_pool_sweep_determinism_vs_workers () =
  (* The verdict table is a function of (source, variants, seed) only:
     each variant runs jobs=1 on a single worker, so a 4-worker pool must
     reproduce the 1-worker table byte for byte. *)
  let rows1, _ = run_sweep_on ~workers:1 in
  let rows4, _ = run_sweep_on ~workers:4 in
  Alcotest.(check string) "verdict tables byte-identical"
    (Obs.Json.to_string (Obs.Json.Arr rows1))
    (Obs.Json.to_string (Obs.Json.Arr rows4))

(* --- Warm starts: corpus, seeded submits, resynthesize --- *)

let corpus_entry =
  {
    Serve.Corpus.en_shape = "shapehash";
    en_canon = "canonhash";
    en_job = 3;
    en_name = "circuit";
    en_cost = 1.5;
    en_values = [| 1.0; -2.5e-6; 0.0 |];
    en_grid = [| 0; 7; 3 |];
    en_probs = [| 0.25; 0.75 |];
  }

let test_proto_warm_round_trip () =
  let requests =
    [
      Serve.Proto.Submit
        {
          (submission ()) with
          Serve.Proto.sb_warm = [ corpus_entry ];
          sb_spec_overrides = [ ("ugf", 4.5e7, 1e6) ];
        };
      Serve.Proto.Resynthesize
        {
          Serve.Proto.rz_id = 9;
          rz_specs = [ ("ugf", 4.5e7, None); ("pm", 50.0, Some 10.0) ];
          rz_runs = Some 2;
          rz_moves = None;
          rz_deadline_s = Some 3.0;
          rz_trace = true;
        };
      Serve.Proto.Corpus_lookup "shapehash";
      Serve.Proto.Corpus_push corpus_entry;
    ]
  in
  List.iter
    (fun req ->
      match Serve.Proto.request_of_json (Serve.Proto.request_to_json req) with
      | Ok req' -> Alcotest.(check bool) "warm request survives the wire" true (req = req')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    requests

let test_pool_warm_validation () =
  let pool = frozen_pool ~queue_capacity:4 () in
  (match
     Serve.Pool.submit pool
       { (submission ~runs:1 ()) with Serve.Proto.sb_warm = [ corpus_entry; corpus_entry ] }
   with
  | Error e -> Alcotest.(check bool) "seeds > runs rejected" true (contains e "warm")
  | Ok _ -> Alcotest.fail "more warm seeds than runs must be rejected");
  (match
     Serve.Pool.submit pool
       {
         (submission ()) with
         Serve.Proto.sb_sweep = sweep_variants;
         sb_warm = [ corpus_entry ];
       }
   with
  | Error e -> Alcotest.(check bool) "warm sweep rejected" true (contains e "warm")
  | Ok _ -> Alcotest.fail "a warm-seeded sweep must be rejected");
  (* A queued job never finishes on a frozen pool, so resynthesizing it
     must name the only-done rule (no race against a worker). *)
  let queued = ok (Serve.Pool.submit pool (submission ())) in
  (match
     Serve.Pool.resynthesize pool
       {
         Serve.Proto.rz_id = queued;
         rz_specs = [];
         rz_runs = None;
         rz_moves = None;
         rz_deadline_s = None;
         rz_trace = false;
       }
   with
  | Error e ->
      Alcotest.(check bool) "unfinished parent refused" true (contains e "only done")
  | Ok _ -> Alcotest.fail "resynthesizing an unfinished job must fail");
  (match
     Serve.Pool.resynthesize pool
       {
         Serve.Proto.rz_id = 9999;
         rz_specs = [];
         rz_runs = None;
         rz_moves = None;
         rz_deadline_s = None;
         rz_trace = false;
       }
   with
  | Error e -> Alcotest.(check bool) "unknown parent refused" true (contains e "unknown job")
  | Ok _ -> Alcotest.fail "resynthesizing an unknown job must fail");
  Serve.Pool.shutdown pool

let warm_pool ?state_dir () =
  Serve.Pool.create
    {
      Serve.Pool.default_config with
      workers = 1;
      queue_capacity = 16;
      state_dir;
      warm = true;
      warm_fraction = 1.0;
    }

let test_pool_corpus_records_and_seeds () =
  let pool = warm_pool () in
  Fun.protect
    ~finally:(fun () -> Serve.Pool.shutdown pool)
    (fun () ->
      let parent = ok (Serve.Pool.submit pool (submission ~seed:3 ~moves:300 ())) in
      Alcotest.(check string) "parent finished" "done" (wait_done pool parent);
      (* Recording is passive and always on: the winner is in the corpus
         under the problem's shape hash. *)
      let shape =
        match Serve.Corpus.shape_of_source ota_source with
        | Some s -> s
        | None -> Alcotest.fail "source does not shape-hash"
      in
      (match Serve.Pool.corpus_lookup pool ~shape with
      | [ e ] ->
          Alcotest.(check int) "entry names the parent job" parent e.Serve.Corpus.en_job;
          Alcotest.(check bool) "entry carries the winning vector" true
            (Array.length e.Serve.Corpus.en_values > 0);
          Alcotest.(check bool) "entry carries the Hustin distribution" true
            (Array.length e.Serve.Corpus.en_probs > 0)
      | other -> Alcotest.failf "expected 1 corpus entry, got %d" (List.length other));
      (* warm = true, fraction 1.0, runs = 1: the child's only restart is
         seeded, so the winner must record the corpus label. *)
      let child = ok (Serve.Pool.submit pool (submission ~seed:4 ~moves:300 ())) in
      Alcotest.(check string) "child finished" "done" (wait_done pool child);
      let j = ok (Serve.Pool.result_json pool child) in
      Alcotest.(check (option string)) "winner records its corpus seed"
        (Some (Printf.sprintf "corpus:job%d:simple-ota" parent))
        (jstr j "warm"))

let test_pool_corpus_crash_durability () =
  let dir = temp_state_dir "corpus" in
  rm_rf dir;
  (* Pool A records a winner, then is abandoned without shutdown — the
     crash case. The corpus journal is flushed per add, so pool B over the
     same state_dir must replay the identical entry, and a warm job
     submitted to either pool must synthesize bit-identically: the
     journaled snapshot, not the daemon's lifetime, owns the seeds. *)
  let cfg = { Serve.Pool.default_config with workers = 1; queue_capacity = 8;
              state_dir = Some dir; warm = true; warm_fraction = 1.0 } in
  let pool_a = Serve.Pool.create cfg in
  let parent = ok (Serve.Pool.submit pool_a (submission ~seed:5 ~moves:300 ())) in
  Alcotest.(check string) "parent finished" "done" (wait_done pool_a parent);
  let shape = Option.get (Serve.Corpus.shape_of_source ota_source) in
  let entry_a =
    match Serve.Pool.corpus_lookup pool_a ~shape with
    | [ e ] -> e
    | other -> Alcotest.failf "pool A: expected 1 entry, got %d" (List.length other)
  in
  (* No shutdown: pool B replays the journal a crashed daemon left. *)
  let pool_b = Serve.Pool.create cfg in
  let entry_b =
    match Serve.Pool.corpus_lookup pool_b ~shape with
    | [ e ] -> e
    | other -> Alcotest.failf "pool B: expected 1 entry, got %d" (List.length other)
  in
  Alcotest.(check int) "same job id" entry_a.Serve.Corpus.en_job entry_b.Serve.Corpus.en_job;
  Alcotest.(check bool) "replayed cost bit-identical" true
    (Int64.bits_of_float entry_a.Serve.Corpus.en_cost
    = Int64.bits_of_float entry_b.Serve.Corpus.en_cost);
  Alcotest.(check bool) "replayed vector bit-identical" true
    (Array.for_all2
       (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
       entry_a.Serve.Corpus.en_values entry_b.Serve.Corpus.en_values);
  (match Obs.Json.mem_opt "corpus" (Serve.Pool.stats_json pool_b) with
  | Some c ->
      Alcotest.(check bool) "replay counted" true
        (match jnum c "replayed" with Some n -> n >= 1.0 | None -> false)
  | None -> Alcotest.fail "no corpus stats block");
  let warm_cost pool =
    let id = ok (Serve.Pool.submit pool (submission ~seed:6 ~moves:300 ())) in
    Alcotest.(check string) "warm job finished" "done" (wait_done pool id);
    let j = ok (Serve.Pool.result_json pool id) in
    Alcotest.(check (option string)) "warm job was seeded"
      (Some (Printf.sprintf "corpus:job%d:simple-ota" parent))
      (jstr j "warm");
    match jnum j "best_cost" with
    | Some c -> c
    | None -> Alcotest.fail "warm job has no best_cost"
  in
  let cost_a = warm_cost pool_a in
  let cost_b = warm_cost pool_b in
  Alcotest.(check bool) "warm rerun bit-identical across the crash" true
    (Int64.bits_of_float cost_a = Int64.bits_of_float cost_b);
  Serve.Pool.shutdown pool_a;
  Serve.Pool.shutdown pool_b;
  rm_rf dir

let test_pool_resynthesize () =
  (* Warm consumption off (the default): resynthesize still works — the
     parent's recorded winner, not the corpus gate, provides the seed. *)
  let pool = running_pool () in
  Fun.protect
    ~finally:(fun () -> Serve.Pool.shutdown pool)
    (fun () ->
      let parent = ok (Serve.Pool.submit pool (submission ~seed:9 ~moves:400 ~runs:2 ())) in
      Alcotest.(check string) "parent finished" "done" (wait_done pool parent);
      (match
         Serve.Pool.resynthesize pool
           {
             Serve.Proto.rz_id = parent;
             rz_specs = [ ("no-such-spec", 1.0, None) ];
             rz_runs = None;
             rz_moves = None;
             rz_deadline_s = None;
             rz_trace = false;
           }
       with
      | Error e -> Alcotest.(check bool) "unknown spec named" true (contains e "no-such-spec")
      | Ok _ -> Alcotest.fail "an unknown spec must be rejected");
      let child =
        ok
          (Serve.Pool.resynthesize pool
             {
               Serve.Proto.rz_id = parent;
               rz_specs = [ ("ugf", 4.5e7, None) ];
               rz_runs = None;
               rz_moves = None;
               rz_deadline_s = None;
               rz_trace = false;
             })
      in
      Alcotest.(check string) "child finished" "done" (wait_done pool child);
      let j = ok (Serve.Pool.result_json pool child) in
      Alcotest.(check (option string)) "child names its parent"
        (Some (Printf.sprintf "simple-ota#resynth:%d" parent))
        (jstr j "name");
      (* Half the parent's restarts: 2 -> 1, so the single restart is the
         warm one and the winner records the parent seed. *)
      Alcotest.(check (option (float 0.0))) "reduced schedule" (Some 1.0) (jnum j "runs");
      Alcotest.(check (option string)) "warm-started from the parent winner"
        (Some (Printf.sprintf "corpus:job%d:simple-ota" parent))
        (jstr j "warm");
      (* Same source, so the child's compile is a cache hit — the point of
         the fast path. *)
      Alcotest.(check (option string)) "cached compile" (Some "hit") (jstr j "cache");
      Alcotest.(check bool) "child reports a best design" true (jnum j "best_cost" <> None))

let () =
  Alcotest.run "serve"
    [
      ( "proto",
        [
          Alcotest.test_case "request round-trip" `Quick test_proto_round_trip;
          Alcotest.test_case "lenient defaults + shape errors" `Quick
            test_proto_lenient_defaults;
          Alcotest.test_case "fleet verbs + shard round-trip" `Quick
            test_proto_new_verbs_round_trip;
          Alcotest.test_case "sweep round-trip + empty rejection" `Quick
            test_proto_sweep_round_trip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "failures cached" `Quick test_cache_remembers_failures;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
        ] );
      ( "pool",
        [
          Alcotest.test_case "backpressure" `Quick test_pool_backpressure;
          Alcotest.test_case "priority order" `Quick test_pool_priority_order;
          Alcotest.test_case "cancel queued" `Quick test_pool_cancel_queued;
          Alcotest.test_case "deadline cut" `Slow test_pool_deadline_cut;
          Alcotest.test_case "determinism + trace" `Slow test_pool_determinism_and_trace;
          Alcotest.test_case "shutdown cancels queued" `Quick
            test_pool_shutdown_cancels_queued;
          Alcotest.test_case "wait_s on cancelled queued job" `Quick
            test_pool_wait_s_on_cancelled_queued;
          Alcotest.test_case "failed job cache outcome" `Slow
            test_pool_failed_job_cache_outcome;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "validation" `Quick test_pool_sweep_validation;
          Alcotest.test_case "verdict table + one compile per key" `Slow
            test_pool_sweep_verdict_table;
          Alcotest.test_case "byte-identical across worker counts" `Slow
            test_pool_sweep_determinism_vs_workers;
        ] );
      ( "replay",
        [
          Alcotest.test_case "restart replays finished jobs" `Slow test_pool_restart_replay;
          Alcotest.test_case "restart fails interrupted jobs" `Quick
            test_pool_restart_interrupted;
        ] );
      ( "server",
        [
          Alcotest.test_case "end to end over the socket" `Slow test_server_end_to_end;
          Alcotest.test_case "concurrent clients" `Quick test_server_concurrent_clients;
          Alcotest.test_case "connection cap" `Quick test_server_connection_cap;
          Alcotest.test_case "idle timeout" `Quick test_server_idle_timeout;
          Alcotest.test_case "client error attribution" `Quick
            test_client_error_attribution;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "every verb over loopback" `Slow test_tcp_round_trip;
          Alcotest.test_case "partial-line writes" `Quick test_tcp_partial_line_writes;
          Alcotest.test_case "error attribution" `Quick test_tcp_error_attribution;
          Alcotest.test_case "auth gate" `Quick test_auth_required;
          Alcotest.test_case "drain closes the tcp listener" `Quick test_drain_closes_tcp;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "split_shards tiles the budget" `Quick test_fleet_split_shards;
          Alcotest.test_case "sharded submit runs its range" `Slow test_pool_shard_execution;
          Alcotest.test_case "scatter/merge = one box, bit for bit" `Slow
            test_fleet_determinism;
          Alcotest.test_case "dead peer stolen, bits unchanged" `Slow
            test_fleet_steal_recovers;
          Alcotest.test_case "compile verdicts replicate" `Slow test_fleet_cache_replication;
        ] );
      ( "rotation",
        [
          Alcotest.test_case "compacts and replays bit-identically" `Slow
            test_log_rotation_compacts_and_replays;
          Alcotest.test_case "live jobs survive rotation" `Quick
            test_log_rotation_keeps_live_jobs;
        ] );
      ( "warm-start",
        [
          Alcotest.test_case "protocol round-trips" `Quick test_proto_warm_round_trip;
          Alcotest.test_case "validation" `Quick test_pool_warm_validation;
          Alcotest.test_case "corpus records and seeds" `Slow
            test_pool_corpus_records_and_seeds;
          Alcotest.test_case "corpus survives a crash, bits unchanged" `Slow
            test_pool_corpus_crash_durability;
          Alcotest.test_case "resynthesize fast path" `Slow test_pool_resynthesize;
        ] );
    ]
