(* Tests for the synthesis service: protocol codec, compile cache, pool
   queue discipline (backpressure, priorities, cancellation, deadlines),
   and the socket daemon end to end. *)

let ota_source = (Option.get (Suite.Ckts.find "simple-ota")).Suite.Ckts.source

let submission ?(name = "simple-ota") ?(source = ota_source) ?(seed = 1) ?moves ?(runs = 1)
    ?(priority = 0) ?deadline_s ?(trace = false) () =
  {
    Serve.Proto.sb_name = name;
    sb_source = source;
    sb_seed = seed;
    sb_moves = moves;
    sb_runs = runs;
    sb_priority = priority;
    sb_deadline_s = deadline_s;
    sb_trace = trace;
  }

let jnum j k =
  match Obs.Json.mem_opt k j with Some (Obs.Json.Num v) -> Some v | _ -> None

let jstr j k =
  match Obs.Json.mem_opt k j with Some (Obs.Json.Str s) -> Some s | _ -> None

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

(* --- Protocol --- *)

let test_proto_round_trip () =
  let requests =
    [
      Serve.Proto.Submit
        (submission ~name:"x" ~source:"src" ~seed:7 ~moves:123 ~runs:3 ~priority:2
           ~deadline_s:1.5 ~trace:true ());
      Serve.Proto.Submit (submission ~source:"s" ());
      Serve.Proto.Status 4;
      Serve.Proto.Result 0;
      Serve.Proto.Cancel 91;
      Serve.Proto.Stats;
      Serve.Proto.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      match Serve.Proto.request_of_json (Serve.Proto.request_to_json req) with
      | Ok req' -> Alcotest.(check bool) "request survives the wire" true (req = req')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    requests

let test_proto_lenient_defaults () =
  let decode s =
    match Obs.Json.of_string s with
    | Ok j -> Serve.Proto.request_of_json j
    | Error e -> Alcotest.failf "json: %s" e
  in
  (match decode {|{"op":"submit","source":"body"}|} with
  | Ok (Serve.Proto.Submit s) ->
      Alcotest.(check int) "default seed" 1 s.Serve.Proto.sb_seed;
      Alcotest.(check int) "default runs" 1 s.sb_runs;
      Alcotest.(check int) "default priority" 0 s.sb_priority;
      Alcotest.(check bool) "default moves" true (s.sb_moves = None);
      Alcotest.(check bool) "default deadline" true (s.sb_deadline_s = None);
      Alcotest.(check bool) "default trace" false s.sb_trace
  | Ok _ -> Alcotest.fail "wrong request"
  | Error e -> Alcotest.failf "decode: %s" e);
  (* Shape errors are decode errors, never exceptions. *)
  List.iter
    (fun s ->
      match decode s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected decode error for %s" s)
    [
      {|{"op":"submit"}|};
      {|{"op":"status"}|};
      {|{"op":"cancel","id":"three"}|};
      {|{"op":"frobnicate"}|};
      {|{"op":"submit","source":"s","seed":"high"}|};
    ]

(* --- Compile cache --- *)

let test_cache_hit_miss () =
  let cache = Core.Compile_cache.create ~capacity:4 () in
  let _, o1 = ok (Core.Compile_cache.compile cache ~source:ota_source) in
  let _, o2 = ok (Core.Compile_cache.compile cache ~source:ota_source) in
  Alcotest.(check bool) "first is a miss" true (o1 = Core.Compile_cache.Miss);
  Alcotest.(check bool) "second is a hit" true (o2 = Core.Compile_cache.Hit);
  (* Cosmetic edits (comment, title) hit the same entry. *)
  let _, o3 =
    ok (Core.Compile_cache.compile cache ~source:("* cosmetic comment\n" ^ ota_source))
  in
  Alcotest.(check bool) "comment-only edit hits" true (o3 = Core.Compile_cache.Hit);
  let st = Core.Compile_cache.stats cache in
  Alcotest.(check int) "hits" 2 st.Core.Compile_cache.hits;
  Alcotest.(check int) "misses" 1 st.Core.Compile_cache.misses;
  Alcotest.(check int) "entries" 1 st.Core.Compile_cache.entries

let test_cache_remembers_failures () =
  (* Parses fine but fails semantic compilation: unknown model. *)
  let broken =
    ".jig j\nm1 d g 0 0 nosuchmodel w=10u l=1u\nvin d 0 1 ac 1\n.pz t v(d) vin\n.endjig\n\
     .bias\nr1 x 0 1\n.endbias\n.obj o 'dc_gain(t)' good=1 bad=0\n"
  in
  let cache = Core.Compile_cache.create ~capacity:4 () in
  let r1 = Core.Compile_cache.compile cache ~source:broken in
  let r2 = Core.Compile_cache.compile cache ~source:broken in
  (match (r1, r2) with
  | Error e1, Error e2 -> Alcotest.(check string) "same error replayed" e1 e2
  | _ -> Alcotest.fail "expected compile errors");
  let st = Core.Compile_cache.stats cache in
  Alcotest.(check int) "second lookup hit the cached failure" 1 st.Core.Compile_cache.hits;
  Alcotest.(check int) "compiled once" 1 st.Core.Compile_cache.misses;
  (* A parse error is not cacheable (no canonical form to key on). *)
  match Core.Compile_cache.compile cache ~source:".frobnicate\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

let test_cache_lru_eviction () =
  let cache = Core.Compile_cache.create ~capacity:1 () in
  let other = (Option.get (Suite.Ckts.find "ota")).Suite.Ckts.source in
  let _ = ok (Core.Compile_cache.compile cache ~source:ota_source) in
  let _ = ok (Core.Compile_cache.compile cache ~source:other) in
  let _, o3 = ok (Core.Compile_cache.compile cache ~source:ota_source) in
  Alcotest.(check bool) "evicted entry misses again" true (o3 = Core.Compile_cache.Miss);
  let st = Core.Compile_cache.stats cache in
  Alcotest.(check int) "evictions" 2 st.Core.Compile_cache.evictions;
  Alcotest.(check int) "capacity bound holds" 1 st.Core.Compile_cache.entries

(* --- Pool --- *)

(* workers = 0: jobs stay queued, so queue discipline is observable without
   racing real synthesis. *)
let frozen_pool ?(queue_capacity = 2) () =
  Serve.Pool.create
    {
      Serve.Pool.default_config with
      workers = 0;
      queue_capacity;
      state_dir = None;
    }

let test_pool_backpressure () =
  let pool = frozen_pool ~queue_capacity:2 () in
  let id0 = ok (Serve.Pool.submit pool (submission ())) in
  let _ = ok (Serve.Pool.submit pool (submission ())) in
  (match Serve.Pool.submit pool (submission ()) with
  | Error reason ->
      Alcotest.(check bool) "rejection explains itself" true
        (String.length reason > 0
        && String.sub reason 0 (String.length "queue full") = "queue full")
  | Ok _ -> Alcotest.fail "third submission must be rejected");
  (* Draining one queued job frees a slot. *)
  ok (Serve.Pool.cancel pool id0);
  let _ = ok (Serve.Pool.submit pool (submission ())) in
  (* Invalid submissions are rejected up front, not enqueued. *)
  (match Serve.Pool.submit pool (submission ~runs:0 ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "runs=0 must be rejected");
  (match Serve.Pool.submit pool (submission ~source:"  " ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty source must be rejected");
  Serve.Pool.shutdown pool

let test_pool_priority_order () =
  let pool = frozen_pool ~queue_capacity:8 () in
  let low = ok (Serve.Pool.submit pool (submission ~priority:0 ())) in
  let high = ok (Serve.Pool.submit pool (submission ~priority:5 ())) in
  let mid = ok (Serve.Pool.submit pool (submission ~priority:3 ())) in
  let pos id =
    match jnum (ok (Serve.Pool.status_json pool id)) "queue_position" with
    | Some p -> int_of_float p
    | None -> Alcotest.failf "job %d not queued" id
  in
  Alcotest.(check int) "high first" 0 (pos high);
  Alcotest.(check int) "mid second" 1 (pos mid);
  Alcotest.(check int) "low last" 2 (pos low);
  Serve.Pool.shutdown pool

let test_pool_cancel_queued () =
  let pool = frozen_pool ~queue_capacity:4 () in
  let id = ok (Serve.Pool.submit pool (submission ())) in
  ok (Serve.Pool.cancel pool id);
  let j = ok (Serve.Pool.result_json pool id) in
  Alcotest.(check (option string)) "state" (Some "cancelled") (jstr j "state");
  (* Cancelling twice is an error (already cancelled), as is an unknown id. *)
  (match Serve.Pool.cancel pool id with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double cancel must fail");
  (match Serve.Pool.cancel pool 999 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown id must fail");
  Serve.Pool.shutdown pool

let running_pool () =
  Serve.Pool.create
    { Serve.Pool.default_config with workers = 1; queue_capacity = 16; state_dir = None }

let rec wait_done pool id =
  let j = ok (Serve.Pool.status_json pool id) in
  match jstr j "state" with
  | Some ("queued" | "running") ->
      Unix.sleepf 0.02;
      wait_done pool id
  | Some s -> s
  | None -> Alcotest.fail "no state"

let test_pool_deadline_cut () =
  let pool = running_pool () in
  (* A move budget far beyond what 0.2 s allows: the deadline must cut it,
     and the record must say so. *)
  let id =
    ok (Serve.Pool.submit pool (submission ~moves:10_000_000 ~deadline_s:0.2 ()))
  in
  let state = wait_done pool id in
  let j = ok (Serve.Pool.result_json pool id) in
  Alcotest.(check string) "finished" "done" state;
  Alcotest.(check (option string)) "cut by the deadline"
    (Some Core.Oblx.deadline_reason) (jstr j "cut_reason");
  Alcotest.(check bool) "still reports a best design" true (jnum j "best_cost" <> None);
  Serve.Pool.shutdown pool

let test_pool_determinism_and_trace () =
  let pool = running_pool () in
  let moves = 400 in
  let id = ok (Serve.Pool.submit pool (submission ~seed:5 ~moves ~trace:true ())) in
  let state = wait_done pool id in
  Alcotest.(check string) "finished" "done" state;
  let j = ok (Serve.Pool.result_json pool id) in
  (* Bit-for-bit against the CLI path: the service's abort plumbing must not
     perturb a run it never cuts. *)
  let p =
    match Core.Compile.compile_source ota_source with
    | Ok p -> p
    | Error e -> Alcotest.failf "compile: %s" e
  in
  let local, _ = Core.Oblx.best_of ~seed:5 ~moves ~jobs:1 ~runs:1 p in
  (match jnum j "best_cost" with
  | Some served ->
      Alcotest.(check bool) "served = local, bit for bit" true
        (Int64.bits_of_float served = Int64.bits_of_float local.Core.Oblx.best_cost)
  | None -> Alcotest.fail "no best_cost");
  (* trace:true attaches the stage-event ring to the record. *)
  (match Obs.Json.mem_opt "events" j with
  | Some (Obs.Json.Arr evs) -> Alcotest.(check bool) "events captured" true (evs <> [])
  | _ -> Alcotest.fail "no events array");
  Serve.Pool.shutdown pool

let test_pool_shutdown_cancels_queued () =
  let pool = frozen_pool ~queue_capacity:4 () in
  let id = ok (Serve.Pool.submit pool (submission ())) in
  Serve.Pool.shutdown pool;
  let j = ok (Serve.Pool.result_json pool id) in
  Alcotest.(check (option string)) "queued job cancelled" (Some "cancelled")
    (jstr j "state");
  (match Serve.Pool.submit pool (submission ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "submissions after shutdown must be rejected");
  (* Idempotent. *)
  Serve.Pool.shutdown pool

(* --- Daemon over the socket --- *)

let test_server_end_to_end () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "oblxd-test-%d.sock" (Unix.getpid ()))
  in
  let cfg =
    {
      Serve.Server.socket_path = socket;
      pool =
        { Serve.Pool.default_config with workers = 1; queue_capacity = 8; state_dir = None };
    }
  in
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let ready = ref false in
  let server =
    Domain.spawn (fun () ->
        Serve.Server.run
          ~ready:(fun () ->
            Mutex.lock ready_m;
            ready := true;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          cfg)
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  (* Submit twice: the second compile must hit the cache. *)
  let id1 = ok (Serve.Client.submit ~socket (submission ~moves:300 ())) in
  let j1 = ok (Serve.Client.wait ~socket id1) in
  Alcotest.(check (option string)) "first done" (Some "done") (jstr j1 "state");
  Alcotest.(check (option string)) "first missed the cache" (Some "miss") (jstr j1 "cache");
  let id2 = ok (Serve.Client.submit ~socket (submission ~moves:300 ~seed:2 ())) in
  let j2 = ok (Serve.Client.wait ~socket id2) in
  Alcotest.(check (option string)) "second hit the cache" (Some "hit") (jstr j2 "cache");
  (* Malformed and protocol-error requests answer with ok:false, and the
     connection-per-request model survives them. *)
  (match Serve.Client.request ~socket (Obs.Json.Str "not a request") with
  | Ok resp -> Alcotest.(check bool) "error response" true (Serve.Proto.response_error resp <> None)
  | Error e -> Alcotest.failf "transport error: %s" e);
  (match Serve.Client.status ~socket 999 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown id must be an error");
  (* Stats reflect the two finished jobs and the cache hit. *)
  let stats = ok (Serve.Client.stats ~socket ()) in
  let jobs = Option.get (Obs.Json.mem_opt "jobs" stats) in
  Alcotest.(check (option (float 0.0))) "two done" (Some 2.0) (jnum jobs "done");
  let cache = Option.get (Obs.Json.mem_opt "cache" stats) in
  Alcotest.(check bool) "hit rate > 0"
    true
    (match jnum cache "hit_rate" with Some r -> r > 0.0 | None -> false);
  ok (Serve.Client.shutdown ~socket ());
  Domain.join server;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket);
  (* A client against a dead daemon gets a clear error, not a hang. *)
  match Serve.Client.stats ~socket () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dead daemon must be an error"

let () =
  Alcotest.run "serve"
    [
      ( "proto",
        [
          Alcotest.test_case "request round-trip" `Quick test_proto_round_trip;
          Alcotest.test_case "lenient defaults + shape errors" `Quick
            test_proto_lenient_defaults;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "failures cached" `Quick test_cache_remembers_failures;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
        ] );
      ( "pool",
        [
          Alcotest.test_case "backpressure" `Quick test_pool_backpressure;
          Alcotest.test_case "priority order" `Quick test_pool_priority_order;
          Alcotest.test_case "cancel queued" `Quick test_pool_cancel_queued;
          Alcotest.test_case "deadline cut" `Slow test_pool_deadline_cut;
          Alcotest.test_case "determinism + trace" `Slow test_pool_determinism_and_trace;
          Alcotest.test_case "shutdown cancels queued" `Quick
            test_pool_shutdown_cancels_queued;
        ] );
      ( "server",
        [ Alcotest.test_case "end to end over the socket" `Slow test_server_end_to_end ] );
    ]
