(* Regenerate the committed golden trace used by test_obs.ml:

     dune exec test/gen_golden.exe -- test/golden/simple_ota.jsonl

   The parameters here (circuit, seed, move budget, trace level) are the
   contract with the golden test — change them in both places or the diff
   will flag every event. A small budget keeps the committed file small
   while still exercising every event kind. *)

let circuit = "simple-ota"
let seed = 11
let moves = 600

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden/simple_ota.jsonl" in
  let e =
    match Suite.Ckts.find circuit with
    | Some e -> e
    | None -> failwith ("unknown circuit " ^ circuit)
  in
  let p =
    match Core.Compile.compile_source e.Suite.Ckts.source with
    | Ok p -> p
    | Error msg -> failwith msg
  in
  let sink = Obs.Sink.jsonl_file path in
  let obs = Obs.Trace.make ~level:Obs.Event.Moves [ sink ] in
  let r = Core.Oblx.synthesize ~seed ~moves ~obs p in
  Obs.Trace.close obs;
  Printf.printf "wrote %s (best cost %.17g, %d moves, %d accepted)\n" path r.Core.Oblx.best_cost
    r.moves r.accepted
