#!/usr/bin/env bash
# End-to-end smoke test of the oblxd daemon (docs/SERVER.md): boot it,
# prove the compile cache hits on a repeated topology, prove cancellation
# propagates cut_reason, serve two clients at once, survive a kill -9 with
# the job log answering for pre-restart ids, and shut down cleanly. CI
# runs this as the serve-smoke job; locally it is `make serve-smoke`.
# Everything lives in a temp dir, nothing is left behind.
set -euo pipefail

cd "$(dirname "$0")/.."
dune build bin/oblxd.exe bin/astrx.exe

OBLXD=_build/default/bin/oblxd.exe
ASTRX=_build/default/bin/astrx.exe
DIR=$(mktemp -d)
SOCK="$DIR/oblxd.sock"

fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }
cleanup() {
  if [ -n "${DAEMON_PID:-}" ]; then kill "$DAEMON_PID" 2>/dev/null || true; fi
  rm -rf "$DIR"
}
trap cleanup EXIT

"$OBLXD" --socket "$SOCK" --workers 1 --state-dir "$DIR/state" &
DAEMON_PID=$!

for _ in $(seq 1 50); do
  if [ -S "$SOCK" ]; then break; fi
  sleep 0.1
done
if [ ! -S "$SOCK" ]; then fail "daemon socket never appeared"; fi

echo "== first submission (compile miss) =="
OUT1=$("$ASTRX" submit simple-ota --socket "$SOCK" --moves 500 --wait --json)
echo "$OUT1"
echo "$OUT1" | grep -q '"state":"done"' || fail "first job did not finish"
echo "$OUT1" | grep -q '"cache":"miss"' || fail "first job should miss the cache"

echo "== second submission (cache hit) =="
OUT2=$("$ASTRX" submit simple-ota --socket "$SOCK" --seed 2 --moves 500 --wait --json)
echo "$OUT2" | grep -q '"state":"done"' || fail "second job did not finish"
echo "$OUT2" | grep -q '"cache":"hit"' || fail "second submission should hit the compile cache"

echo "== cancellation propagates cut_reason =="
ID=$("$ASTRX" submit simple-ota --socket "$SOCK" --moves 20000000 --json | sed 's/[^0-9]//g')
sleep 0.5
"$ASTRX" cancel "$ID" --socket "$SOCK"
RES=""
for _ in $(seq 1 100); do
  RES=$("$ASTRX" result "$ID" --socket "$SOCK" --json)
  if echo "$RES" | grep -q '"state":"cancelled"'; then break; fi
  sleep 0.1
done
echo "$RES" | grep -q '"state":"cancelled"' || fail "cancelled job never reached state=cancelled"
echo "$RES" | grep -q '"cut_reason":"cancelled"' || fail "cut_reason not propagated to the job record"

echo "== stats =="
"$ASTRX" stats --socket "$SOCK"
"$ASTRX" stats --socket "$SOCK" --json | grep -q '"hit_rate"' || fail "stats carry no cache hit rate"
"$ASTRX" stats --socket "$SOCK" --json | grep -q '"connections"' || fail "stats carry no connection counters"

echo "== two concurrent clients =="
"$ASTRX" submit simple-ota --socket "$SOCK" --seed 11 --moves 4000 --wait --json > "$DIR/c1.json" &
C1=$!
"$ASTRX" submit simple-ota --socket "$SOCK" --seed 12 --moves 4000 --wait --json > "$DIR/c2.json" &
C2=$!
# A third client must be answered while both waiters are in flight.
"$ASTRX" stats --socket "$SOCK" --json >/dev/null || fail "stats blocked behind in-flight clients"
wait "$C1" || fail "first concurrent client failed"
wait "$C2" || fail "second concurrent client failed"
grep -q '"state":"done"' "$DIR/c1.json" || fail "first concurrent job did not finish"
grep -q '"state":"done"' "$DIR/c2.json" || fail "second concurrent job did not finish"

echo "== kill -9, restart, job-log replay =="
DONE_ID=$(grep -o '"id":[0-9]*' "$DIR/c1.json" | head -1 | sed 's/[^0-9]//g')
# Leave a job running when the daemon dies: it cannot be resumed and must
# be replayed as failed("daemon restarted").
ORPHAN_ID=$("$ASTRX" submit simple-ota --socket "$SOCK" --moves 20000000 --json | sed 's/[^0-9]//g')
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
"$OBLXD" --socket "$SOCK" --workers 1 --state-dir "$DIR/state" &
DAEMON_PID=$!
for _ in $(seq 1 50); do
  if "$ASTRX" stats --socket "$SOCK" --json >/dev/null 2>&1; then break; fi
  sleep 0.1
done
RES=$("$ASTRX" result "$DONE_ID" --socket "$SOCK" --json) || fail "restarted daemon does not know job $DONE_ID"
echo "$RES" | grep -q '"state":"done"' || fail "replayed job $DONE_ID lost its result"
echo "$RES" | grep -q '"best_cost"' || fail "replayed job $DONE_ID lost its best cost"
ORES=$("$ASTRX" result "$ORPHAN_ID" --socket "$SOCK" --json) || fail "restarted daemon does not know job $ORPHAN_ID"
echo "$ORES" | grep -q '"state":"failed"' || fail "interrupted job $ORPHAN_ID not failed on replay"
echo "$ORES" | grep -q 'daemon restarted' || fail "interrupted job $ORPHAN_ID lacks the restart verdict"
"$ASTRX" stats --socket "$SOCK" --json | grep -q '"restored_jobs"' || fail "stats carry no restored_jobs"

echo "== clean shutdown =="
"$ASTRX" shutdown --socket "$SOCK"
for _ in $(seq 1 100); do
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then break; fi
  sleep 0.1
done
if kill -0 "$DAEMON_PID" 2>/dev/null; then fail "daemon still alive after shutdown"; fi
if [ -S "$SOCK" ]; then fail "socket file not removed on shutdown"; fi
DAEMON_PID=
ls "$DIR/state" | grep -q '^job-' || fail "no job records in the state dir"

echo "serve-smoke: OK"
