#!/usr/bin/env bash
# Diff the working tree's bench/results/<name>-latest.json artifacts
# against the committed baselines (git show HEAD:...): one line per
# numeric metric that moved, with the relative change. Informational —
# always exits 0; the pass/fail floors live in the bench gates themselves
# (PERF_FLOOR, PERF_INCR_FLOOR, WARM_FLOOR). Locally: `make bench-compare`
# after any bench target; CI runs it so a perf regression is visible in
# the log next to the gate verdict.
set -euo pipefail

cd "$(dirname "$0")/.."

base=$(mktemp)
trap 'rm -f "$base"' EXIT

found=0
for path in bench/results/*-latest.json; do
  [ -f "$path" ] || continue
  if ! git show "HEAD:$path" > "$base" 2>/dev/null; then
    echo "== $path: no committed baseline (new artifact)"
    continue
  fi
  found=1
  echo "== $path vs HEAD"
  python3 - "$base" "$path" <<'EOF'
import json, sys

def leaves(node, prefix=""):
    # Scalar numeric leaves by dotted path; arrays index by position, but
    # wall-clock metrics are skipped — they move on every run and would
    # drown the signal.
    if isinstance(node, dict):
        for k, v in node.items():
            if "wall" in k or k.endswith("_s") or k.endswith("_ms") \
               or "per_s" in k or "latency" in k or k == "baseline":
                continue
            yield from leaves(v, f"{prefix}{k}.")
    elif isinstance(node, list):
        for i, v in enumerate(node):
            name = None
            if isinstance(v, dict):
                name = v.get("name") or v.get("variant")
            key = name if name is not None else str(i)
            yield from leaves(v, f"{prefix}{key}.")
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        yield prefix.rstrip("."), float(node)
    elif isinstance(node, bool):
        yield prefix.rstrip("."), node

old = dict(leaves(json.load(open(sys.argv[1]))))
new = dict(leaves(json.load(open(sys.argv[2]))))
moved = 0
for key in sorted(set(old) | set(new)):
    a, b = old.get(key), new.get(key)
    if a == b:
        continue
    moved += 1
    if a is None or b is None:
        print(f"   {key}: {'added' if a is None else 'removed'} ({a if b is None else b})")
    elif isinstance(a, bool) or isinstance(b, bool):
        print(f"   {key}: {a} -> {b}")
    elif a != 0:
        print(f"   {key}: {a:g} -> {b:g} ({100.0 * (b - a) / abs(a):+.1f}%)")
    else:
        print(f"   {key}: {a:g} -> {b:g}")
if moved == 0:
    print("   no metric moved")
EOF
done

if [ "$found" = 0 ]; then
  echo "bench-compare: no artifacts with committed baselines under bench/results/"
fi
