#!/usr/bin/env bash
# End-to-end smoke test of the synthesis fleet (docs/SERVER.md, "Fleet"):
# three oblxd daemons on loopback TCP behind a shared auth token, plus a
# standalone reference daemon. Proves the token gate, scatters a restart
# budget through the coordinator and checks the merged winner against the
# single-daemon run bit for bit, kills a peer mid-job and checks the
# stolen shard changes nothing, and checks compile verdicts replicated
# between peers. CI runs this next to serve-smoke; locally it is
# `make fleet-smoke`. Everything lives in a temp dir.
set -euo pipefail

cd "$(dirname "$0")/.."
dune build bin/oblxd.exe bin/astrx.exe

OBLXD=_build/default/bin/oblxd.exe
ASTRX=_build/default/bin/astrx.exe
DIR=$(mktemp -d)

fail() { echo "fleet-smoke: FAIL: $*" >&2; exit 1; }
cleanup() {
  for f in "$DIR"/*.pid; do
    [ -f "$f" ] && kill "$(cat "$f")" 2>/dev/null || true
  done
  rm -rf "$DIR"
}
trap cleanup EXIT

echo fleet-smoke-secret > "$DIR/token"
echo wrong-secret > "$DIR/bad-token"
AUTH=(--auth-token-file "$DIR/token")

# Boot a daemon on an ephemeral TCP port and scrape the port from its
# banner. $1 = tag, rest = extra oblxd flags. Runs inside a command
# substitution, so the pid goes to a file, not a shell variable.
boot() {
  local tag=$1; shift
  "$OBLXD" --socket "$DIR/$tag.sock" --tcp 127.0.0.1:0 "${AUTH[@]}" \
    --workers 1 --no-state --queue 64 "$@" > "$DIR/$tag.log" 2>&1 &
  echo $! > "$DIR/$tag.pid"
  local port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^oblxd: tcp on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$DIR/$tag.log" | head -1)
    if [ -n "$port" ] && [ -S "$DIR/$tag.sock" ]; then break; fi
    sleep 0.1
  done
  [ -n "$port" ] || fail "daemon $tag never reported its TCP port"
  echo "$port"
}

# Peers B and C replicate compile verdicts to each other; the coordinator
# A scatters restart budgets over both; D is the single-box reference.
PORT_B=$(boot b)
PORT_C=$(boot c)
# Rebooting B/C with each other as peers would lose their ports, so the
# mesh is wired through A only; B->C replication gets its own pass below.
PORT_A=$(boot a --peer "tcp:127.0.0.1:$PORT_B" --peer "tcp:127.0.0.1:$PORT_C")
PID_C=$(cat "$DIR/c.pid")
"$OBLXD" --socket "$DIR/d.sock" --workers 1 --no-state --queue 64 > "$DIR/d.log" 2>&1 &
echo $! > "$DIR/d.pid"
for _ in $(seq 1 50); do [ -S "$DIR/d.sock" ] && break; sleep 0.1; done
[ -S "$DIR/d.sock" ] || fail "reference daemon never came up"

best_cost() { grep -o '"best_cost":[^,}]*' <<<"$1" | head -1; }

echo "== auth gate =="
"$ASTRX" stats --socket "tcp:127.0.0.1:$PORT_A" "${AUTH[@]}" --json >/dev/null \
  || fail "correct token refused"
if "$ASTRX" stats --socket "tcp:127.0.0.1:$PORT_A" --auth-token-file "$DIR/bad-token" --json \
    > "$DIR/bad.out" 2>&1; then
  fail "wrong token accepted"
fi
grep -q "authentication failed" "$DIR/bad.out" || fail "refusal does not name auth"

echo "== scatter/merge vs single box =="
REF=$("$ASTRX" submit simple-ota --socket "$DIR/d.sock" --seed 7 --moves 600 --runs 6 --wait --json)
grep -q '"state":"done"' <<<"$REF" || fail "reference job did not finish"
FLEET=$("$ASTRX" submit simple-ota --socket "$DIR/a.sock" "${AUTH[@]}" --seed 7 --moves 600 --runs 6 --wait --json)
grep -q '"state":"done"' <<<"$FLEET" || fail "fleet job did not finish"
[ -n "$(best_cost "$REF")" ] || fail "reference job carries no best_cost"
if [ "$(best_cost "$REF")" != "$(best_cost "$FLEET")" ]; then
  fail "fleet winner $(best_cost "$FLEET") != single box $(best_cost "$REF")"
fi
"$ASTRX" stats --socket "$DIR/a.sock" "${AUTH[@]}" --json | grep -q '"remote_shards":2' \
  || fail "both peers should have run a shard"
echo "fleet == one box: $(best_cost "$FLEET")"

echo "== compile-verdict replication A -> peers =="
# A's scatter compiled simple-ota on B and C; each pushed nothing (the
# verdict came from their own compile), but A compiled it too and pushed
# to both. A fresh topology through A must land verdicts on the peers.
"$ASTRX" submit ota --socket "$DIR/a.sock" "${AUTH[@]}" --moves 300 --runs 3 --wait --json >/dev/null \
  || fail "ota scatter failed"
STATS_B=$("$ASTRX" stats --socket "tcp:127.0.0.1:$PORT_B" "${AUTH[@]}" --json)
grep -qE '"(inbound_pushes|served_lookups)":[1-9]' <<<"$STATS_B" \
  || fail "peer B never saw replication traffic"

echo "== kill a peer mid-job; steal must not change the bits =="
REF2=$("$ASTRX" submit simple-ota --socket "$DIR/d.sock" --seed 9 --moves 2500 --runs 6 --wait --json)
grep -q '"state":"done"' <<<"$REF2" || fail "second reference job did not finish"
ID=$("$ASTRX" submit simple-ota --socket "$DIR/a.sock" "${AUTH[@]}" --seed 9 --moves 2500 --runs 6 --json \
  | sed 's/[^0-9]//g')
sleep 1.5
kill -9 "$PID_C" 2>/dev/null || true
RES=""
for _ in $(seq 1 600); do
  RES=$("$ASTRX" result "$ID" --socket "$DIR/a.sock" "${AUTH[@]}" --json)
  grep -q '"state":"\(done\|failed\)"' <<<"$RES" && break
  sleep 0.2
done
grep -q '"state":"done"' <<<"$RES" || fail "fleet job did not survive the dead peer: $RES"
if [ "$(best_cost "$REF2")" != "$(best_cost "$RES")" ]; then
  fail "post-steal winner $(best_cost "$RES") != single box $(best_cost "$REF2")"
fi
"$ASTRX" stats --socket "$DIR/a.sock" "${AUTH[@]}" --json | grep -qE '"steals":[1-9]' \
  || fail "no steal recorded"
echo "steal == one box: $(best_cost "$RES")"

echo "== winner-corpus replication and resynthesize =="
# Recording into the winner corpus is always on (consumption is what
# --warm-start gates), so the coordinator's merged winners are already in
# its corpus and pushed to the surviving peer.
SHAPE=$("$ASTRX" hash simple-ota | sed -n 's/^shape //p')
[ -n "$SHAPE" ] || fail "astrx hash printed no shape"
CORPUS_A=$("$ASTRX" corpus "$SHAPE" --socket "$DIR/a.sock" "${AUTH[@]}" --json)
grep -q '"shape"' <<<"$CORPUS_A" || fail "coordinator corpus is empty for shape $SHAPE"
CORPUS_B=""
for _ in $(seq 1 50); do
  CORPUS_B=$("$ASTRX" corpus "$SHAPE" --socket "tcp:127.0.0.1:$PORT_B" "${AUTH[@]}" --json)
  grep -q '"shape"' <<<"$CORPUS_B" && break
  sleep 0.1
done
grep -q '"shape"' <<<"$CORPUS_B" || fail "winner never replicated to peer B"
echo "corpus for $SHAPE on coordinator and peer B"
# The fast path: rerun the reference job with a tweaked ugf target, warm
# from its recorded winner, on the reduced schedule.
REF_ID=$(grep -o '"id":[0-9]*' <<<"$REF2" | head -1 | sed 's/[^0-9]//g')
[ -n "$REF_ID" ] || fail "reference job record carries no id"
# --runs 1: the single restart is the warm-seeded one, so the winner's
# recorded seed label is deterministic.
RZ=$("$ASTRX" resynthesize "$REF_ID" --socket "$DIR/d.sock" --set ugf=45meg --runs 1 --wait --json)
grep -q '"state":"done"' <<<"$RZ" || fail "resynthesize job did not finish: $RZ"
grep -q '"warm":' <<<"$RZ" || fail "resynthesize result records no warm seed"
grep -q '#resynth:'"$REF_ID" <<<"$RZ" || fail "resynthesize job does not name its parent"
echo "resynthesize of job $REF_ID: done, warm-seeded"

echo "== drain =="
"$ASTRX" shutdown --socket "$DIR/a.sock" "${AUTH[@]}"
"$ASTRX" shutdown --socket "tcp:127.0.0.1:$PORT_B" "${AUTH[@]}"
"$ASTRX" shutdown --socket "$DIR/d.sock"
sleep 1
for tag in a b d; do
  [ -S "$DIR/$tag.sock" ] && fail "daemon $tag left its socket behind"
done
if "$ASTRX" stats --socket "tcp:127.0.0.1:$PORT_A" "${AUTH[@]}" --json >/dev/null 2>&1; then
  fail "coordinator TCP listener survived the drain"
fi
rm -f "$DIR"/*.pid

echo "fleet-smoke: OK"
