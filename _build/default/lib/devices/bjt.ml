type params = {
  pol : Sig.polarity;
  is_ : float;
  bf : float;
  br : float;
  vaf : float;
  var_ : float;
  ikf : float;
  tf : float;
  cje : float;
  vje : float;
  mje : float;
  cjc : float;
  vjc : float;
  mjc : float;
  ccs0 : float;
}

let default_npn =
  {
    pol = Sig.N;
    is_ = 1e-16;
    bf = 100.0;
    br = 2.0;
    vaf = 80.0;
    var_ = 15.0;
    ikf = 5e-3;
    tf = 20e-12;
    cje = 50e-15;
    vje = 0.8;
    mje = 0.33;
    cjc = 30e-15;
    vjc = 0.7;
    mjc = 0.4;
    ccs0 = 80e-15;
  }

let with_param p key v =
  match key with
  | "is" -> Some { p with is_ = v }
  | "bf" -> Some { p with bf = v }
  | "br" -> Some { p with br = v }
  | "vaf" -> Some { p with vaf = v }
  | "var" -> Some { p with var_ = v }
  | "ikf" -> Some { p with ikf = v }
  | "tf" -> Some { p with tf = v }
  | "cje" -> Some { p with cje = v }
  | "vje" -> Some { p with vje = v }
  | "mje" -> Some { p with mje = v }
  | "cjc" -> Some { p with cjc = v }
  | "vjc" -> Some { p with vjc = v }
  | "mjc" -> Some { p with mjc = v }
  | "ccs" -> Some { p with ccs0 = v }
  | _ -> None

let vt = Mos_common.vt_thermal

(* exp with linearization above 40 thermal voltages. *)
let limited_exp x =
  if x > 40.0 then Float.exp 40.0 *. (1.0 +. (x -. 40.0)) else Float.exp x

(* Device-frame (npn) collector and base currents. *)
let currents p ~area ~vbe ~vbc =
  let is_ = p.is_ *. area in
  let ifwd = is_ *. (limited_exp (vbe /. vt) -. 1.0) in
  let irev = is_ *. (limited_exp (vbc /. vt) -. 1.0) in
  let q1 = 1.0 /. Float.max (1.0 -. (vbc /. p.vaf) -. (vbe /. p.var_)) 0.05 in
  let q2 = ifwd /. (p.ikf *. area) in
  let qb = q1 /. 2.0 *. (1.0 +. Float.sqrt (1.0 +. (4.0 *. Float.max q2 0.0))) in
  let ict = (ifwd -. irev) /. qb in
  let ib = (ifwd /. p.bf) +. (irev /. p.br) in
  let ic = ict -. (irev /. p.br) in
  (ic, ib)

let make p : Sig.bjt_eval =
 fun ~area ~vc ~vb ~ve ->
  let sign = match p.pol with Sig.N -> 1.0 | Sig.P -> -1.0 in
  let frame ~vc ~vb ~ve =
    let vbe = sign *. (vb -. ve) and vbc = sign *. (vb -. vc) in
    let ic, ib = currents p ~area ~vbe ~vbc in
    (sign *. ic, sign *. ib)
  in
  let ic0, ib0 = frame ~vc ~vb ~ve in
  let h = 1e-6 in
  let dc_dvb =
    let icp, _ = frame ~vc ~vb:(vb +. h) ~ve and icm, _ = frame ~vc ~vb:(vb -. h) ~ve in
    (icp -. icm) /. (2.0 *. h)
  in
  let db_dvb =
    let _, ibp = frame ~vc ~vb:(vb +. h) ~ve and _, ibm = frame ~vc ~vb:(vb -. h) ~ve in
    (ibp -. ibm) /. (2.0 *. h)
  in
  let dc_dvc =
    let icp, _ = frame ~vc:(vc +. h) ~vb ~ve and icm, _ = frame ~vc:(vc -. h) ~vb ~ve in
    (icp -. icm) /. (2.0 *. h)
  in
  let db_dvc =
    let _, ibp = frame ~vc:(vc +. h) ~vb ~ve and _, ibm = frame ~vc:(vc -. h) ~vb ~ve in
    (ibp -. ibm) /. (2.0 *. h)
  in
  let vbe_f = sign *. (vb -. ve) and vbc_f = sign *. (vb -. vc) in
  let cje_dep = Mos_common.junction_cap (p.cje *. area) p.vje p.mje vbe_f in
  let cjc_dep = Mos_common.junction_cap (p.cjc *. area) p.vjc p.mjc vbc_f in
  let cdiff = p.tf *. Float.max dc_dvb 0.0 in
  let region =
    if vbe_f < 0.4 then Sig.Off
    else if vbc_f > 0.3 then Sig.Linear (* saturated bipolar ~ "linear" MOS *)
    else Sig.Saturation (* forward active *)
  in
  {
    Sig.ic = ic0;
    ib = ib0;
    bjt_gm = dc_dvb;
    gpi = Float.max db_dvb 1e-12;
    go = Float.max dc_dvc 1e-12;
    gmu = db_dvc;
    cpi = cje_dep +. cdiff;
    cmu = cjc_dep;
    ccs = p.ccs0 *. area;
    vbe_f;
    bjt_region = region;
  }
