lib/devices/registry.ml: Bjt List Mos_common Mos_params Option Printf Process Sig
