lib/devices/mos_params.ml: Sig
