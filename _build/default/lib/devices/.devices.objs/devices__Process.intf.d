lib/devices/process.mli: Bjt Mos_params Sig
