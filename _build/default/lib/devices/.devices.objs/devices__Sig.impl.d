lib/devices/sig.ml:
