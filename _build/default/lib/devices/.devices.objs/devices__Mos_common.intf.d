lib/devices/mos_common.mli: Mos_params Sig
