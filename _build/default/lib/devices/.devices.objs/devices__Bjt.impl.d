lib/devices/bjt.ml: Float Mos_common Sig
