lib/devices/mos_common.ml: Float Mos_params Sig
