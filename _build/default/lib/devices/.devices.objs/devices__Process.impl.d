lib/devices/process.ml: Bjt Mos_params Sig
