lib/devices/registry.mli: Sig
