lib/devices/bjt.mli: Sig
