(** Simplified Gummel-Poon bipolar transistor evaluator: forward/reverse
    transport with Early effect and high-injection rolloff, junction and
    diffusion capacitances, smooth exponent limiting. *)

type params = {
  pol : Sig.polarity;  (** [N] = npn, [P] = pnp *)
  is_ : float;  (** transport saturation current, A *)
  bf : float;  (** forward beta *)
  br : float;  (** reverse beta *)
  vaf : float;  (** forward Early voltage, V *)
  var_ : float;  (** reverse Early voltage, V *)
  ikf : float;  (** high-injection corner current, A *)
  tf : float;  (** forward transit time, s *)
  cje : float;  (** B-E zero-bias depletion cap, F *)
  vje : float;
  mje : float;
  cjc : float;  (** B-C zero-bias depletion cap, F *)
  vjc : float;
  mjc : float;
  ccs0 : float;  (** collector-substrate cap, F *)
}

val default_npn : params

(** [with_param p key v] overrides one named parameter ([is], [bf], ...).
    [None] when the key is unknown. *)
val with_param : params -> string -> float -> params option

val make : params -> Sig.bjt_eval
