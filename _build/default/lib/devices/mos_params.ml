(* Parameter record shared by the three MOS models. Each model reads the
   subset it needs; unused fields are simply ignored, mirroring how SPICE
   model cards carry a superset of parameters. SI units. *)

type level = Level1 | Level3 | Bsim

type t = {
  pol : Sig.polarity;
  level : level;
  vto : float;  (** zero-bias threshold, V (positive for both polarities) *)
  kp : float;  (** transconductance u0*cox, A/V^2 *)
  gamma : float;  (** body-effect coefficient, sqrt(V) *)
  phi : float;  (** surface potential, V *)
  lambda : float;  (** channel-length modulation, 1/V (level 1) *)
  ld : float;  (** lateral diffusion, m *)
  cox : float;  (** gate oxide capacitance, F/m^2 *)
  (* level 3 *)
  theta : float;  (** mobility degradation, 1/V *)
  vmax : float;  (** carrier saturation velocity, m/s *)
  eta : float;  (** DIBL coefficient *)
  kappa : float;  (** saturation-region slope factor *)
  (* BSIM-flavour short-channel terms *)
  k1 : float;
  k2 : float;
  ua : float;  (** first-order mobility degradation, m/V *)
  ub : float;  (** second-order mobility degradation, (m/V)^2 *)
  dvt0 : float;  (** short-channel vth rolloff amplitude, V *)
  dvt1 : float;  (** short-channel vth rolloff length scale, m *)
  nfactor : float;  (** subthreshold swing factor *)
  (* parasitics *)
  cgso : float;  (** gate-source overlap, F/m *)
  cgdo : float;
  cgbo : float;
  cj : float;  (** junction area cap, F/m^2 *)
  mj : float;
  pb : float;
  cjsw : float;  (** junction sidewall cap, F/m *)
  mjsw : float;
  js : float;  (** junction saturation current, A/m^2 *)
  ldiff : float;  (** drain/source diffusion extent, m *)
  rsh : float;  (** diffusion sheet resistance, ohm/square *)
  subth_n : float;  (** subthreshold slope factor for level 1/3 *)
}

let default_nmos =
  {
    pol = Sig.N;
    level = Level1;
    vto = 0.75;
    kp = 60e-6;
    gamma = 0.6;
    phi = 0.7;
    lambda = 0.03;
    ld = 0.15e-6;
    cox = 1.7e-3;
    theta = 0.06;
    vmax = 1.6e5;
    eta = 0.02;
    kappa = 0.4;
    k1 = 0.65;
    k2 = 0.02;
    ua = 1.2e-9;
    ub = 2.0e-18;
    dvt0 = 0.18;
    dvt1 = 0.45e-6;
    nfactor = 1.3;
    cgso = 2.6e-10;
    cgdo = 2.6e-10;
    cgbo = 1.5e-10;
    cj = 3.0e-4;
    mj = 0.5;
    pb = 0.8;
    cjsw = 2.5e-10;
    mjsw = 0.33;
    js = 1e-4;
    ldiff = 2.5e-6;
    rsh = 25.0;
    subth_n = 1.5;
  }

(* Field-by-name update used when .model cards override parameters. *)
let with_param t key v =
  match key with
  | "vto" -> Some { t with vto = v }
  | "kp" -> Some { t with kp = v }
  | "gamma" -> Some { t with gamma = v }
  | "phi" -> Some { t with phi = v }
  | "lambda" -> Some { t with lambda = v }
  | "ld" -> Some { t with ld = v }
  | "cox" -> Some { t with cox = v }
  | "theta" -> Some { t with theta = v }
  | "vmax" -> Some { t with vmax = v }
  | "eta" -> Some { t with eta = v }
  | "kappa" -> Some { t with kappa = v }
  | "k1" -> Some { t with k1 = v }
  | "k2" -> Some { t with k2 = v }
  | "ua" -> Some { t with ua = v }
  | "ub" -> Some { t with ub = v }
  | "dvt0" -> Some { t with dvt0 = v }
  | "dvt1" -> Some { t with dvt1 = v }
  | "nfactor" -> Some { t with nfactor = v }
  | "cgso" -> Some { t with cgso = v }
  | "cgdo" -> Some { t with cgdo = v }
  | "cgbo" -> Some { t with cgbo = v }
  | "cj" -> Some { t with cj = v }
  | "mj" -> Some { t with mj = v }
  | "pb" -> Some { t with pb = v }
  | "cjsw" -> Some { t with cjsw = v }
  | "mjsw" -> Some { t with mjsw = v }
  | "js" -> Some { t with js = v }
  | "ldiff" -> Some { t with ldiff = v }
  | "rsh" -> Some { t with rsh = v }
  | "n" | "subth_n" -> Some { t with subth_n = v }
  | _ -> None
