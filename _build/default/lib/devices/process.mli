(** Built-in fabrication processes. A process supplies default device
    models under the conventional names [nmos], [pmos], [npn], [pnp].

    Two synthetic-but-plausible CMOS generations are provided, standing in
    for the industrial 2u and 1.2u decks of the paper (see DESIGN.md):
    - ["p2u"]  — 2 micron, thick oxide, long-channel friendly;
    - ["p1u2"] — 1.2 micron, thinner oxide, stronger short-channel effects.

    Each exists in three model flavours selected by the model [level]:
    ["1"], ["3"], ["bsim"]. *)

(** [mos ~process ~level ~pol] is the parameter set, or [None] when the
    process name is unknown. *)
val mos :
  process:string -> level:string -> pol:Sig.polarity -> Mos_params.t option

(** [bjt ~process ~pol] is the BJT parameter set for BiCMOS processes. *)
val bjt : process:string -> pol:Sig.polarity -> Bjt.params option

(** [known] lists the built-in process names. *)
val known : string list
