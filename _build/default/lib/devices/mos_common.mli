(** Shared MOS evaluator skeleton. The three supported models (level 1,
    level 3, BSIM-flavour) differ in their threshold, mobility and
    saturation-voltage physics but share the same smooth channel-current
    formulation, polarity/terminal-swap handling, junction diodes and
    charge model.

    All formulations are C1-smooth in the terminal voltages (softplus
    subthreshold blending, smooth linear/saturation transition), which keeps
    both OBLX's annealer and the Newton-Raphson bias solver well-behaved. *)

(** [make params] builds the encapsulated evaluator for a parameter set. *)
val make : Mos_params.t -> Sig.mos_eval

(** Thermal voltage kT/q at room temperature, volts. *)
val vt_thermal : float

(** [channel_current params ~weff ~leff ~vds ~vgs ~vbs] is the drain-source
    channel current in the device frame (vds >= 0 expected), exposed for
    unit tests of the model physics. *)
val channel_current :
  Mos_params.t -> weff:float -> leff:float -> vds:float -> vgs:float -> vbs:float -> float

(** [junction_cap c0 pb mj v] is the depletion capacitance of a junction
    with zero-bias cap [c0], built-in potential [pb] and grading [mj] at
    forward voltage [v]; linearized above [0.5*pb]. Shared with the BJT
    evaluator. *)
val junction_cap : float -> float -> float -> float -> float
