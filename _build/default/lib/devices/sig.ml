(* Types shared by all encapsulated device evaluators.

   Conventions: all electrical quantities are in the *external* frame (no
   polarity flip visible to callers): currents are into the named terminal,
   small-signal parameters are the Jacobian entries of those currents with
   respect to terminal voltages. This makes MNA stamping identical for NMOS
   and PMOS. SI units throughout (A, V, F, m). *)

type region = Off | Subthreshold | Linear | Saturation

let region_to_string = function
  | Off -> "off"
  | Subthreshold -> "subth"
  | Linear -> "linear"
  | Saturation -> "sat"

(* Operating-point record for a MOS device. [id_] is the current into the
   drain terminal (negative for a conducting PMOS). *)
type mos_op = {
  id_ : float;
  ibd_ : float;  (** bulk-drain junction current, positive out of bulk into drain *)
  ibs_ : float;  (** bulk-source junction current, positive out of bulk into source *)
  gm : float;  (** d(id)/d(vg) *)
  gds : float;  (** d(id)/d(vd) *)
  gmbs : float;  (** d(id)/d(vb) *)
  gbd : float;  (** bulk-drain junction conductance *)
  gbs : float;  (** bulk-source junction conductance *)
  cgs : float;
  cgd : float;
  cgb : float;
  cbd : float;
  cbs : float;
  vth : float;  (** threshold in the device's own frame (positive number) *)
  vdsat : float;  (** saturation voltage in the device frame *)
  vgst : float;  (** effective (softplus-smoothed) gate overdrive *)
  vgst_raw : float;  (** raw vgs - vth in the device frame; negative when off *)
  vds_mag : float;  (** |vds| in the device frame *)
  region : region;
}

type bjt_op = {
  ic : float;  (** current into collector *)
  ib : float;  (** current into base *)
  bjt_gm : float;  (** d(ic)/d(vb) *)
  gpi : float;  (** d(ib)/d(vb) *)
  go : float;  (** d(ic)/d(vc) *)
  gmu : float;  (** d(ib)/d(vc) — reverse-junction feedback *)
  cpi : float;  (** base-emitter capacitance *)
  cmu : float;  (** base-collector capacitance *)
  ccs : float;  (** collector-substrate capacitance *)
  vbe_f : float;  (** forward base-emitter voltage (device frame) *)
  bjt_region : region;  (** Saturation = forward active here *)
}

type polarity = N | P

(* The encapsulated evaluator interface: geometry + terminal voltages in,
   operating point out. Everything about the model is behind this. *)
type mos_eval = w:float -> l:float -> m:float -> vd:float -> vg:float -> vs:float -> vb:float -> mos_op

type bjt_eval = area:float -> vc:float -> vb:float -> ve:float -> bjt_op

type resolved =
  | Mos of { model_name : string; pol : polarity; eval : mos_eval; rd_ohm_m : float }
      (** [rd_ohm_m]: drain/source series resistance as ohm*meter — divide
          by W to get the template's internal-node resistor. *)
  | Bjt of { model_name : string; pol : polarity; eval : bjt_eval }
