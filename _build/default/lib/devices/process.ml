(* Two synthetic CMOS generations. Numbers are chosen to be physically
   plausible (oxide scales with feature size, PMOS mobility ~1/3 of NMOS)
   and, deliberately, to make the level-3 and BSIM flavours of the same
   process disagree — which is the point of the paper's model-comparison
   experiment. *)

let base = Mos_params.default_nmos

let level_of_string = function
  | "1" -> Some Mos_params.Level1
  | "3" -> Some Mos_params.Level3
  | "bsim" -> Some Mos_params.Bsim
  | _ -> None

(* 2u process: tox ~ 40nm -> cox ~ 8.6e-4 F/m^2. *)
let p2u_nmos =
  {
    base with
    Mos_params.vto = 0.8;
    kp = 50e-6;
    gamma = 0.7;
    phi = 0.7;
    lambda = 0.02;
    ld = 0.25e-6;
    cox = 8.6e-4;
    theta = 0.04;
    vmax = 1.8e5;
    eta = 0.015;
    k1 = 0.75;
    k2 = 0.025;
    ua = 1.0e-9;
    ub = 1.5e-18;
    dvt0 = 0.12;
    dvt1 = 0.8e-6;
    cgso = 3.5e-10;
    cgdo = 3.5e-10;
    cj = 2.4e-4;
    cjsw = 3.0e-10;
    rsh = 30.0;
    ldiff = 3.0e-6;
  }

let p2u_pmos =
  {
    p2u_nmos with
    Mos_params.pol = Sig.P;
    vto = 0.9;
    kp = 17e-6;
    gamma = 0.55;
    lambda = 0.035;
    theta = 0.08;
    vmax = 0.9e5;
    eta = 0.02;
    k1 = 0.6;
  }

(* 1.2u process: tox ~ 20nm -> cox ~ 1.7e-3 F/m^2, stronger short-channel. *)
let p1u2_nmos =
  {
    base with
    Mos_params.vto = 0.72;
    kp = 95e-6;
    gamma = 0.55;
    phi = 0.72;
    lambda = 0.04;
    ld = 0.15e-6;
    cox = 1.7e-3;
    theta = 0.08;
    vmax = 1.5e5;
    eta = 0.03;
    k1 = 0.6;
    k2 = 0.03;
    ua = 1.6e-9;
    ub = 2.5e-18;
    dvt0 = 0.22;
    dvt1 = 0.45e-6;
    cgso = 2.4e-10;
    cgdo = 2.4e-10;
    cj = 3.2e-4;
    cjsw = 2.6e-10;
    rsh = 25.0;
    ldiff = 2.2e-6;
  }

let p1u2_pmos =
  {
    p1u2_nmos with
    Mos_params.pol = Sig.P;
    vto = 0.82;
    kp = 32e-6;
    gamma = 0.48;
    lambda = 0.06;
    theta = 0.12;
    vmax = 0.8e5;
    eta = 0.04;
    k1 = 0.5;
  }

let mos ~process ~level ~pol =
  match level_of_string level with
  | None -> None
  | Some lv -> begin
      let pick n p = match pol with Sig.N -> n | Sig.P -> p in
      let base =
        match process with
        | "p2u" -> Some { (pick p2u_nmos p2u_pmos) with Mos_params.level = lv; pol }
        | "p1u2" -> Some { (pick p1u2_nmos p1u2_pmos) with Mos_params.level = lv; pol }
        | _ -> None
      in
      (* The BSIM extraction of a process never coincides with its level-3
         fit: different optimizers, different data weighting. Reflect that
         with a deliberately different kp/vto pair — this disagreement is
         what the paper's model-comparison experiment measures. *)
      match (base, lv) with
      | Some p, Mos_params.Bsim ->
          Some { p with Mos_params.kp = p.Mos_params.kp *. 1.18; vto = p.Mos_params.vto -. 0.06 }
      | Some _, (Mos_params.Level1 | Mos_params.Level3) | None, _ -> base
    end

let bjt ~process ~pol =
  let npn = Bjt.default_npn in
  let pnp = { npn with Bjt.pol = Sig.P; bf = 50.0; vaf = 50.0; tf = 60e-12 } in
  match process with
  | "p2u" | "p1u2" -> Some (match pol with Sig.N -> npn | Sig.P -> pnp)
  | _ -> None

let known = [ "p2u"; "p1u2" ]
