let vt_thermal = 0.02585

(* Smooth max(x, 0) with scale [nvt]; equals x for x >> nvt and decays
   exponentially for x << 0 — the subthreshold blending. *)
let softplus nvt x = if x > 30.0 *. nvt then x else nvt *. Float.log1p (Float.exp (x /. nvt))

(* Smooth minimum that is exactly 0 at a = 0 (so the channel current
   vanishes identically at vds = 0) and approaches b for a >> b:
   a*b / (a^4 + b^4)^(1/4). At a = b it gives 0.84*b, a gentle knee. *)
let smooth_min a b =
  let a4 = a *. a *. a *. a and b4 = b *. b *. b *. b in
  let denom = (a4 +. b4 +. 1e-300) ** 0.25 in
  a *. b /. denom

(* Smoothly clamped (phi - vbs), always positive. *)
let phi_minus_vbs p vbs =
  let x = p.Mos_params.phi -. vbs in
  0.5 *. (x +. Float.sqrt ((x *. x) +. 0.04))

let threshold p ~leff ~vbs ~vds =
  let open Mos_params in
  let ph = phi_minus_vbs p vbs in
  let sqrt_phi = Float.sqrt p.phi in
  match p.level with
  | Level1 -> p.vto +. (p.gamma *. (Float.sqrt ph -. sqrt_phi))
  | Level3 ->
      (* Body effect + level-3 style DIBL term 8.14e-22 * eta / (cox*leff^3). *)
      let sigma = 8.14e-22 *. p.eta /. (p.cox *. (leff ** 3.0)) in
      p.vto +. (p.gamma *. (Float.sqrt ph -. sqrt_phi)) -. (sigma *. vds)
  | Bsim ->
      let sce = p.dvt0 *. Float.exp (-.leff /. p.dvt1) in
      let dibl = p.eta *. Float.exp (-.leff /. (2.0 *. p.dvt1)) *. vds in
      p.vto
      +. (p.k1 *. (Float.sqrt ph -. sqrt_phi))
      -. (p.k2 *. (ph -. p.phi))
      -. sce -. dibl

let mobility_factor p vgst =
  let open Mos_params in
  match p.level with
  | Level1 -> 1.0
  | Level3 -> 1.0 /. (1.0 +. (p.theta *. vgst))
  | Bsim ->
      let tox = 3.45e-11 /. p.cox in
      let x = vgst /. tox in
      1.0 /. (1.0 +. (p.ua *. x) +. (p.ub *. x *. x))

(* Saturation voltage. Level 1 is the long-channel pinch-off; the others
   include velocity saturation through the critical field. *)
let vdsat_of p ~leff vgst =
  let open Mos_params in
  match p.level with
  | Level1 -> vgst
  | Level3 | Bsim ->
      let u0 = p.kp /. p.cox in
      let esat_v = 2.0 *. p.vmax /. u0 *. leff in
      vgst *. esat_v /. (vgst +. esat_v +. 1e-9)

let lambda_eff p ~leff =
  let open Mos_params in
  match p.level with
  | Level1 -> p.lambda
  | Level3 | Bsim ->
      (* Output conductance worsens at short channel. *)
      p.lambda *. Float.sqrt (1e-6 /. Float.max leff 0.05e-6) *. p.kappa /. 0.4

let channel_current p ~weff ~leff ~vds ~vgs ~vbs =
  let open Mos_params in
  let vth = threshold p ~leff ~vbs ~vds in
  let nvt = p.subth_n *. vt_thermal in
  let vgst = softplus nvt (vgs -. vth) in
  let uf = mobility_factor p vgst in
  let beta = p.kp *. uf *. weff /. leff in
  let vdsat = vdsat_of p ~leff vgst in
  let vde = smooth_min vds vdsat in
  beta *. ((vgst -. (0.5 *. vde)) *. vde) *. (1.0 +. (lambda_eff p ~leff *. vds))

(* Junction diode with exponent clamping: above [vmax_arg] thermal voltages
   the exponential is linearized so NR never sees infinities. *)
let junction_current isat v =
  let x = v /. vt_thermal in
  if x > 40.0 then isat *. (Float.exp 40.0 *. (1.0 +. (x -. 40.0)) -. 1.0)
  else isat *. (Float.exp x -. 1.0)

let junction_conductance isat v =
  let x = v /. vt_thermal in
  let g =
    if x > 40.0 then isat *. Float.exp 40.0 /. vt_thermal
    else isat *. Float.exp x /. vt_thermal
  in
  g +. 1e-12 (* gmin keeps the Jacobian nonsingular when fully off *)

(* Depletion capacitance with forward-bias clamping at fc*pb. *)
let junction_cap c0 pb mj v =
  let fc = 0.5 in
  if v < fc *. pb then c0 /. ((1.0 -. (v /. pb)) ** mj)
  else begin
    let cfc = c0 /. ((1.0 -. fc) ** mj) in
    let slope = c0 *. mj /. pb /. ((1.0 -. fc) ** (mj +. 1.0)) in
    cfc +. (slope *. (v -. (fc *. pb)))
  end

type frame = { vds : float; vgs : float; vbs : float; swapped : bool }

(* Map external voltages into the NMOS-like device frame: flip polarity for
   PMOS, swap drain/source when the channel is reverse-biased. *)
let to_frame pol ~vd ~vg ~vs ~vb =
  let sign = match pol with Sig.N -> 1.0 | Sig.P -> -1.0 in
  let vd = sign *. vd and vg = sign *. vg and vs = sign *. vs and vb = sign *. vb in
  if vd >= vs then { vds = vd -. vs; vgs = vg -. vs; vbs = vb -. vs; swapped = false }
  else { vds = vs -. vd; vgs = vg -. vd; vbs = vb -. vd; swapped = true }

let make p : Sig.mos_eval =
 fun ~w ~l ~m ~vd ~vg ~vs ~vb ->
  let open Mos_params in
  let weff = Float.max w 0.1e-6 in
  let leff = Float.max (l -. (2.0 *. p.ld)) 0.05e-6 in
  let sign = match p.pol with Sig.N -> 1.0 | Sig.P -> -1.0 in
  (* External-frame channel current into the drain terminal. *)
  let id_ext ~vd ~vg ~vs ~vb =
    let f = to_frame p.pol ~vd ~vg ~vs ~vb in
    let ids = channel_current p ~weff ~leff ~vds:f.vds ~vgs:f.vgs ~vbs:f.vbs in
    let dir = if f.swapped then -1.0 else 1.0 in
    sign *. dir *. m *. ids
  in
  let id0 = id_ext ~vd ~vg ~vs ~vb in
  (* Central finite differences give the channel Jacobian; the formulation
     is smooth so a fixed 10uV step is accurate and robust. *)
  let h = 1e-5 in
  let gm = (id_ext ~vd ~vg:(vg +. h) ~vs ~vb -. id_ext ~vd ~vg:(vg -. h) ~vs ~vb) /. (2.0 *. h) in
  let gds = (id_ext ~vd:(vd +. h) ~vg ~vs ~vb -. id_ext ~vd:(vd -. h) ~vg ~vs ~vb) /. (2.0 *. h) in
  let gmbs = (id_ext ~vd ~vg ~vs ~vb:(vb +. h) -. id_ext ~vd ~vg ~vs ~vb:(vb -. h)) /. (2.0 *. h) in
  (* Junction diodes bulk-drain and bulk-source (reverse biased in normal
     operation). Forward voltage in the device frame is vbd' = sign*(vb-vd). *)
  let aj = weff *. p.ldiff *. m in
  let isat = Float.max (p.js *. aj) 1e-18 in
  let vbd_f = sign *. (vb -. vd) in
  let vbs_f = sign *. (vb -. vs) in
  let ibd = junction_current isat vbd_f in
  let ibs = junction_current isat vbs_f in
  let gbd = junction_conductance isat vbd_f in
  let gbs = junction_conductance isat vbs_f in
  (* External-frame junction currents, positive flowing out of the bulk
     terminal into the diffusion. *)
  let ibd_ = sign *. ibd and ibs_ = sign *. ibs in
  (* Region bookkeeping in the device frame. *)
  let f = to_frame p.pol ~vd ~vg ~vs ~vb in
  let vth = threshold p ~leff ~vbs:f.vbs ~vds:f.vds in
  let nvt = p.subth_n *. vt_thermal in
  let vgst_raw = f.vgs -. vth in
  let vgst = softplus nvt vgst_raw in
  let vdsat = vdsat_of p ~leff vgst in
  let region =
    if vgst_raw < -6.0 *. nvt then Sig.Off
    else if vgst_raw < 2.0 *. nvt then Sig.Subthreshold
    else if f.vds >= 0.95 *. vdsat then Sig.Saturation
    else Sig.Linear
  in
  (* Meyer gate capacitances (region-wise) plus overlaps, in the device
     frame; swap maps cgs/cgd when drain and source are exchanged. *)
  let coxt = p.cox *. weff *. leff *. m in
  let ov_s = p.cgso *. weff *. m and ov_d = p.cgdo *. weff *. m in
  let ov_b = p.cgbo *. leff *. m in
  let cgs_i, cgd_i, cgb_i =
    match region with
    | Sig.Off -> (0.0, 0.0, coxt)
    | Sig.Subthreshold -> (coxt /. 3.0, 0.0, 2.0 *. coxt /. 3.0)
    | Sig.Saturation -> (2.0 *. coxt /. 3.0, 0.0, 0.0)
    | Sig.Linear -> (coxt /. 2.0, coxt /. 2.0, 0.0)
  in
  let cgs_f, cgd_f = if f.swapped then (cgd_i, cgs_i) else (cgs_i, cgd_i) in
  let cj0 = p.cj *. aj and cjsw0 = p.cjsw *. ((2.0 *. p.ldiff) +. weff) *. m in
  let cbd = junction_cap cj0 p.pb p.mj vbd_f +. junction_cap cjsw0 p.pb p.mjsw vbd_f in
  let cbs = junction_cap cj0 p.pb p.mj vbs_f +. junction_cap cjsw0 p.pb p.mjsw vbs_f in
  {
    Sig.id_ = id0;
    ibd_;
    ibs_;
    gm;
    gds;
    gmbs;
    gbd;
    gbs;
    cgs = cgs_f +. ov_s;
    cgd = cgd_f +. ov_d;
    cgb = cgb_i +. ov_b;
    cbd;
    cbs;
    vth;
    vdsat;
    vgst;
    vgst_raw;
    vds_mag = f.vds;
    region;
  }
