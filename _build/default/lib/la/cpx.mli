(** Complex arithmetic helpers on top of [Stdlib.Complex].

    Nomenclature: [z] is a complex number, [x] a real number. *)

type t = Complex.t = { re : float; im : float }

val zero : t
val one : t
val i : t

(** [make re im] builds a complex number. *)
val make : float -> float -> t

(** [of_float x] is the real number [x] as a complex value. *)
val of_float : float -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val conj : t -> t
val inv : t -> t
val scale : float -> t -> t

(** [abs z] is the modulus |z|. *)
val abs : t -> float

(** [arg z] is the argument of [z] in radians, in (-pi, pi]. *)
val arg : t -> float

val sqrt : t -> t
val exp : t -> t

(** [is_finite z] is false if either part is nan or infinite. *)
val is_finite : t -> bool

(** [dist z1 z2] is |z1 - z2|. *)
val dist : t -> t -> float

val pp : Format.formatter -> t -> unit

(* Infix operators, prefixed with [~] to avoid clashing with float ops. *)
val ( +~ ) : t -> t -> t
val ( -~ ) : t -> t -> t
val ( *~ ) : t -> t -> t
val ( /~ ) : t -> t -> t
