type t = { m : int; n : int; a : float array }

let create m n =
  if m < 0 || n < 0 then invalid_arg "Mat.create: negative dimension";
  { m; n; a = Array.make (m * n) 0.0 }

let init m n f =
  let a = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      a.((i * n) + j) <- f i j
    done
  done;
  { m; n; a }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)
let rows t = t.m
let cols t = t.n
let get t i j = t.a.((i * t.n) + j)
let set t i j v = t.a.((i * t.n) + j) <- v
let add_to t i j v = t.a.((i * t.n) + j) <- t.a.((i * t.n) + j) +. v
let copy t = { t with a = Array.copy t.a }
let fill t v = Array.fill t.a 0 (Array.length t.a) v
let transpose t = init t.n t.m (fun i j -> get t j i)

let map2 f t1 t2 =
  if t1.m <> t2.m || t1.n <> t2.n then invalid_arg "Mat: shape mismatch";
  { t1 with a = Array.init (Array.length t1.a) (fun k -> f t1.a.(k) t2.a.(k)) }

let add = map2 ( +. )
let sub = map2 ( -. )
let scale k t = { t with a = Array.map (fun v -> k *. v) t.a }

let mul t1 t2 =
  if t1.n <> t2.m then invalid_arg "Mat.mul: inner dims mismatch";
  let r = create t1.m t2.n in
  for i = 0 to t1.m - 1 do
    for k = 0 to t1.n - 1 do
      let v = get t1 i k in
      if v <> 0.0 then
        for j = 0 to t2.n - 1 do
          add_to r i j (v *. get t2 k j)
        done
    done
  done;
  r

let mul_vec t x =
  if t.n <> Array.length x then invalid_arg "Mat.mul_vec: dim mismatch";
  Array.init t.m (fun i ->
      let s = ref 0.0 in
      for j = 0 to t.n - 1 do
        s := !s +. (get t i j *. x.(j))
      done;
      !s)

let norm_inf t =
  let best = ref 0.0 in
  for i = 0 to t.m - 1 do
    let s = ref 0.0 in
    for j = 0 to t.n - 1 do
      s := !s +. Float.abs (get t i j)
    done;
    if !s > !best then best := !s
  done;
  !best

let of_arrays rows_ =
  let m = Array.length rows_ in
  if m = 0 then create 0 0
  else begin
    let n = Array.length rows_.(0) in
    Array.iter (fun r -> if Array.length r <> n then invalid_arg "Mat.of_arrays: ragged") rows_;
    init m n (fun i j -> rows_.(i).(j))
  end

let to_arrays t = Array.init t.m (fun i -> Array.init t.n (fun j -> get t i j))

let pp ppf t =
  for i = 0 to t.m - 1 do
    Format.fprintf ppf "[";
    for j = 0 to t.n - 1 do
      Format.fprintf ppf (if j = 0 then "%10.4g" else " %10.4g") (get t i j)
    done;
    Format.fprintf ppf "]@\n"
  done
