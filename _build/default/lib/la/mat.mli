(** Dense row-major matrices of floats.

    Nomenclature: [a] is a matrix, [x], [y], [b] are vectors, [i] a row
    index, [j] a column index. *)

type t

(** [create m n] is an [m] x [n] zero matrix. *)
val create : int -> int -> t

val init : int -> int -> (int -> int -> float) -> t
val identity : int -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

(** [add_to a i j v] adds [v] to entry (i, j) — the stamping primitive
    used by MNA assembly. *)
val add_to : t -> int -> int -> float -> unit

val copy : t -> t
val fill : t -> float -> unit
val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

(** [mul a b] is the matrix product. *)
val mul : t -> t -> t

(** [mul_vec a x] is [a * x]. *)
val mul_vec : t -> Vec.t -> Vec.t

(** [norm_inf a] is the max row-sum norm. *)
val norm_inf : t -> float

(** [of_arrays rows] builds a matrix from row arrays of equal length. *)
val of_arrays : float array array -> t

val to_arrays : t -> float array array
val pp : Format.formatter -> t -> unit
