type t = Complex.t = { re : float; im : float }

let zero = Complex.zero
let one = Complex.one
let i = Complex.i
let make re im = { re; im }
let of_float x = { re = x; im = 0.0 }
let add = Complex.add
let sub = Complex.sub
let mul = Complex.mul
let div = Complex.div
let neg = Complex.neg
let conj = Complex.conj
let inv = Complex.inv
let scale k z = { re = k *. z.re; im = k *. z.im }
let abs = Complex.norm
let arg = Complex.arg
let sqrt = Complex.sqrt
let exp = Complex.exp

let is_finite z =
  let ok x = Float.is_finite x in
  ok z.re && ok z.im

let dist z1 z2 = abs (sub z1 z2)
let pp ppf z = Format.fprintf ppf "(%.6g%+.6gi)" z.re z.im
let ( +~ ) = add
let ( -~ ) = sub
let ( *~ ) = mul
let ( /~ ) = div
