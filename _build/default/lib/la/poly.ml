type t = float array

let degree c =
  let rec scan k = if k <= 0 then 0 else if c.(k) <> 0.0 then k else scan (k - 1) in
  scan (Array.length c - 1)

let trim c =
  let d = degree c in
  Array.sub c 0 (d + 1)

let eval c x =
  let acc = ref 0.0 in
  for k = Array.length c - 1 downto 0 do
    acc := (!acc *. x) +. c.(k)
  done;
  !acc

let eval_cpx c z =
  let acc = ref Cpx.zero in
  for k = Array.length c - 1 downto 0 do
    acc := Cpx.add (Cpx.mul !acc z) (Cpx.of_float c.(k))
  done;
  !acc

let derivative c =
  let n = Array.length c in
  if n <= 1 then [| 0.0 |] else Array.init (n - 1) (fun k -> float_of_int (k + 1) *. c.(k + 1))

let mul c1 c2 =
  let n1 = Array.length c1 and n2 = Array.length c2 in
  let r = Array.make (n1 + n2 - 1) 0.0 in
  for i = 0 to n1 - 1 do
    if c1.(i) <> 0.0 then
      for j = 0 to n2 - 1 do
        r.(i + j) <- r.(i + j) +. (c1.(i) *. c2.(j))
      done
  done;
  r

let add c1 c2 =
  let n = Int.max (Array.length c1) (Array.length c2) in
  let at c k = if k < Array.length c then c.(k) else 0.0 in
  Array.init n (fun k -> at c1 k +. at c2 k)

let scale k c = Array.map (fun v -> k *. v) c

let from_roots roots =
  (* Multiply out in complex arithmetic, then take real parts. *)
  let acc = ref [| Cpx.one |] in
  let mul_linear r =
    let c = !acc in
    let n = Array.length c in
    let out = Array.make (n + 1) Cpx.zero in
    for k = 0 to n - 1 do
      out.(k) <- Cpx.sub out.(k) (Cpx.mul r c.(k));
      out.(k + 1) <- Cpx.add out.(k + 1) c.(k)
    done;
    acc := out
  in
  Array.iter mul_linear roots;
  Array.map (fun z -> z.Cpx.re) !acc

let normalize c =
  let d = degree c in
  let lead = c.(d) in
  if lead = 0.0 then invalid_arg "Poly.normalize: zero polynomial";
  Array.init (d + 1) (fun k -> c.(k) /. lead)

let pp ppf c =
  let d = degree c in
  for k = 0 to d do
    if k = 0 then Format.fprintf ppf "%.6g" c.(k)
    else Format.fprintf ppf " %+.6g s^%d" c.(k) k
  done
