(* Durand-Kerner with variable rescaling. For polynomial p(s) of degree d we
   substitute s = r*t with r the Cauchy-bound radius so the roots of the
   rescaled polynomial are O(1), which keeps the simultaneous iteration
   well-behaved for AWE's widely spread pole magnitudes. *)

let cauchy_radius c =
  let d = Poly.degree c in
  let lead = c.(d) in
  let m = ref 0.0 in
  for k = 0 to d - 1 do
    m := Float.max !m (Float.abs (c.(k) /. lead))
  done;
  1.0 +. !m

let rescale c r =
  let d = Poly.degree c in
  Array.init (d + 1) (fun k -> c.(k) *. (r ** float_of_int k))

let find ?(max_iter = 120) ?(tol = 1e-12) c =
  let c = Poly.trim c in
  let d = Poly.degree c in
  if d = 0 then [||]
  else begin
    let r = cauchy_radius c in
    let cs = Poly.normalize (rescale c r) in
    (* Initial guesses on a spiral that is not a root-of-unity pattern. *)
    let seed = Cpx.make 0.4 0.9 in
    let z = Array.make d Cpx.one in
    let () =
      let cur = ref seed in
      for k = 0 to d - 1 do
        z.(k) <- !cur;
        cur := Cpx.mul !cur seed
      done
    in
    let converged = ref false in
    let iter = ref 0 in
    while (not !converged) && !iter < max_iter do
      incr iter;
      let worst = ref 0.0 in
      for i = 0 to d - 1 do
        let p = Poly.eval_cpx cs z.(i) in
        let denom = ref Cpx.one in
        for j = 0 to d - 1 do
          if j <> i then denom := Cpx.mul !denom (Cpx.sub z.(i) z.(j))
        done;
        let step =
          if Cpx.abs !denom < 1e-30 then Cpx.make 1e-6 1e-6 else Cpx.div p !denom
        in
        z.(i) <- Cpx.sub z.(i) step;
        worst := Float.max !worst (Cpx.abs step)
      done;
      if !worst < tol then converged := true
    done;
    if not (Array.for_all Cpx.is_finite z) then failwith "Roots.find: diverged";
    (* Newton polish on the original (unscaled) polynomial. *)
    let out = Array.map (fun t -> Cpx.scale r t) z in
    let dc = Poly.derivative c in
    for i = 0 to d - 1 do
      for _ = 1 to 3 do
        let p = Poly.eval_cpx c out.(i) and dp = Poly.eval_cpx dc out.(i) in
        if Cpx.abs dp > 1e-30 then begin
          let step = Cpx.div p dp in
          if Cpx.is_finite step && Cpx.abs step < 0.5 *. (1.0 +. Cpx.abs out.(i)) then
            out.(i) <- Cpx.sub out.(i) step
        end
      done
    done;
    (* Enforce conjugate symmetry: snap near-real roots to the axis, average
       conjugate pairs. *)
    let snapped =
      Array.map
        (fun zr ->
          if Float.abs zr.Cpx.im <= 1e-9 *. (1.0 +. Float.abs zr.Cpx.re) then
            { zr with Cpx.im = 0.0 }
          else zr)
        out
    in
    let used = Array.make d false in
    for i = 0 to d - 1 do
      if (not used.(i)) && snapped.(i).Cpx.im <> 0.0 then begin
        let target = Cpx.conj snapped.(i) in
        let best = ref (-1) and bestd = ref infinity in
        for j = 0 to d - 1 do
          if j <> i && not used.(j) then begin
            let dd = Cpx.dist snapped.(j) target in
            if dd < !bestd then begin
              bestd := dd;
              best := j
            end
          end
        done;
        if !best >= 0 && !bestd < 1e-6 *. (1.0 +. Cpx.abs target) then begin
          let a = snapped.(i) and b = snapped.(!best) in
          let re = 0.5 *. (a.Cpx.re +. b.Cpx.re) in
          let im = 0.5 *. (Float.abs a.Cpx.im +. Float.abs b.Cpx.im) in
          let s = if a.Cpx.im >= 0.0 then 1.0 else -1.0 in
          snapped.(i) <- Cpx.make re (s *. im);
          snapped.(!best) <- Cpx.make re (-.s *. im);
          used.(i) <- true;
          used.(!best) <- true
        end
      end
    done;
    snapped
  end

let residual c roots =
  let c = Poly.trim c in
  let scale = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 c in
  if scale = 0.0 then 0.0
  else
    Array.fold_left
      (fun acc zr ->
        let m = Cpx.abs zr in
        (* Normalize by the polynomial magnitude at comparable argument size
           to avoid penalizing huge roots. *)
        let denom = Float.max scale (scale *. (m ** float_of_int (Poly.degree c))) in
        Float.max acc (Cpx.abs (Poly.eval_cpx c zr) /. denom))
      0.0 roots
