lib/la/cpx.ml: Complex Float Format
