lib/la/lu.mli: Mat Vec
