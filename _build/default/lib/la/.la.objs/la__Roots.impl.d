lib/la/roots.ml: Array Cpx Float Poly
