lib/la/sparse.mli: Mat Vec
