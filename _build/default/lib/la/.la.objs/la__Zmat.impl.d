lib/la/zmat.ml: Array Cpx Mat
