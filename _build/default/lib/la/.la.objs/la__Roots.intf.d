lib/la/roots.mli: Cpx Poly
