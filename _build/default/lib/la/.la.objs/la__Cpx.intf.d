lib/la/cpx.mli: Complex Format
