lib/la/lu.ml: Array Float Mat Vec
