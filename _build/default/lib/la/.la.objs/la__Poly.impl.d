lib/la/poly.ml: Array Cpx Format Int
