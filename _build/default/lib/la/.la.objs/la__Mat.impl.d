lib/la/mat.ml: Array Float Format
