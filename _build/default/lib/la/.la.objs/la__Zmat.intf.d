lib/la/zmat.mli: Cpx Mat
