lib/la/poly.mli: Cpx Format
