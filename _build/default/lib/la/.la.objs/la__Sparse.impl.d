lib/la/sparse.ml: Array List Mat Seq
