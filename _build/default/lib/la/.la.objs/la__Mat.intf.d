lib/la/mat.mli: Format Vec
