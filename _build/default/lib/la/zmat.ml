type t = { m : int; n : int; a : Cpx.t array }

let create m n = { m; n; a = Array.make (m * n) Cpx.zero }
let rows t = t.m
let cols t = t.n
let get t i j = t.a.((i * t.n) + j)
let set t i j v = t.a.((i * t.n) + j) <- v
let add_to t i j v = t.a.((i * t.n) + j) <- Cpx.add t.a.((i * t.n) + j) v

let of_real_pair g c w =
  let m = Mat.rows g and n = Mat.cols g in
  if m <> Mat.rows c || n <> Mat.cols c then invalid_arg "Zmat.of_real_pair: shape mismatch";
  let t = create m n in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      set t i j { Cpx.re = Mat.get g i j; im = w *. Mat.get c i j }
    done
  done;
  t

let mul_vec t x =
  if t.n <> Array.length x then invalid_arg "Zmat.mul_vec: dim mismatch";
  Array.init t.m (fun i ->
      let s = ref Cpx.zero in
      for j = 0 to t.n - 1 do
        s := Cpx.add !s (Cpx.mul (get t i j) x.(j))
      done;
      !s)

exception Singular of int

let solve t b =
  let n = t.m in
  if n <> t.n then invalid_arg "Zmat.solve: not square";
  if Array.length b <> n then invalid_arg "Zmat.solve: dim mismatch";
  let x = Array.copy b in
  for k = 0 to n - 1 do
    let p = ref k in
    for i = k + 1 to n - 1 do
      if Cpx.abs (get t i k) > Cpx.abs (get t !p k) then p := i
    done;
    if !p <> k then begin
      for j = 0 to n - 1 do
        let tmp = get t k j in
        set t k j (get t !p j);
        set t !p j tmp
      done;
      let tmp = x.(k) in
      x.(k) <- x.(!p);
      x.(!p) <- tmp
    end;
    let pivot = get t k k in
    if Cpx.abs pivot < 1e-300 || not (Cpx.is_finite pivot) then raise (Singular k);
    for i = k + 1 to n - 1 do
      let f = Cpx.div (get t i k) pivot in
      if Cpx.abs f <> 0.0 then begin
        for j = k + 1 to n - 1 do
          set t i j (Cpx.sub (get t i j) (Cpx.mul f (get t k j)))
        done;
        x.(i) <- Cpx.sub x.(i) (Cpx.mul f x.(k))
      end
    done
  done;
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- Cpx.sub x.(i) (Cpx.mul (get t i j) x.(j))
    done;
    x.(i) <- Cpx.div x.(i) (get t i i)
  done;
  x
