(** Real-coefficient polynomials in ascending order: [c.(k)] multiplies s^k.

    These carry the AWE characteristic polynomials; roots are complex, so
    complex evaluation is provided. *)

type t = float array

(** [degree c] ignores trailing (numerically zero) high coefficients. *)
val degree : t -> int

(** [trim c] drops trailing zero coefficients (keeps at least one). *)
val trim : t -> t

val eval : t -> float -> float
val eval_cpx : t -> Cpx.t -> Cpx.t
val derivative : t -> t
val mul : t -> t -> t
val add : t -> t -> t
val scale : float -> t -> t

(** [from_roots roots] expands prod (s - r_k). Complex roots must come in
    conjugate pairs for the result to be (numerically) real; the imaginary
    residue is discarded. *)
val from_roots : Cpx.t array -> t

(** [normalize c] divides by the leading coefficient, making it monic.
    @raise Invalid_argument on the zero polynomial. *)
val normalize : t -> t

val pp : Format.formatter -> t -> unit
