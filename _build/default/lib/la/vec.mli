(** Dense vectors of floats. Thin wrappers over [float array] chosen for
    clarity at call sites in the numerical code. *)

type t = float array

val create : int -> t
val init : int -> (int -> float) -> t
val copy : t -> t
val dim : t -> int
val fill : t -> float -> unit

(** [axpy a x y] computes [y <- a*x + y] in place. Dimensions must agree. *)
val axpy : float -> t -> t -> unit

val dot : t -> t -> float
val scale : float -> t -> t

(** [add x y] and [sub x y] allocate a fresh result. *)
val add : t -> t -> t

val sub : t -> t -> t

(** [norm2 x] is the Euclidean norm. *)
val norm2 : t -> float

(** [norm_inf x] is the max-abs norm; 0 for the empty vector. *)
val norm_inf : t -> float

(** [max_abs_index x] is the index of the entry with largest magnitude.
    @raise Invalid_argument on the empty vector. *)
val max_abs_index : t -> int

val pp : Format.formatter -> t -> unit
