type triplets = { mutable entries : (int * int * float) list; mutable count : int }

let triplets () = { entries = []; count = 0 }

let add t i j v =
  if v <> 0.0 then begin
    t.entries <- (i, j, v) :: t.entries;
    t.count <- t.count + 1
  end

type t = {
  m : int;
  n : int;
  row_start : int array;  (** length m+1 *)
  col_index : int array;
  values : float array;
}

let compress ~rows ~cols t =
  (* Sort by (row, col), then merge duplicates. *)
  let arr = Array.of_list t.entries in
  Array.sort (fun (i1, j1, _) (i2, j2, _) -> if i1 <> i2 then compare i1 i2 else compare j1 j2) arr;
  let merged = ref [] in
  let nm = ref 0 in
  Array.iter
    (fun (i, j, v) ->
      match !merged with
      | (i', j', v') :: rest when i' = i && j' = j -> merged := (i, j, v +. v') :: rest
      | _ ->
          merged := (i, j, v) :: !merged;
          incr nm)
    arr;
  let entries = Array.of_list (List.rev !merged) in
  let entries = Array.of_seq (Seq.filter (fun (_, _, v) -> v <> 0.0) (Array.to_seq entries)) in
  let nnz = Array.length entries in
  let row_start = Array.make (rows + 1) 0 in
  Array.iter (fun (i, _, _) -> row_start.(i + 1) <- row_start.(i + 1) + 1) entries;
  for i = 1 to rows do
    row_start.(i) <- row_start.(i) + row_start.(i - 1)
  done;
  let col_index = Array.make nnz 0 and values = Array.make nnz 0.0 in
  Array.iteri
    (fun k (_, j, v) ->
      col_index.(k) <- j;
      values.(k) <- v)
    entries;
  { m = rows; n = cols; row_start; col_index; values }

let of_dense dm =
  let t = triplets () in
  for i = 0 to Mat.rows dm - 1 do
    for j = 0 to Mat.cols dm - 1 do
      let v = Mat.get dm i j in
      if v <> 0.0 then add t i j v
    done
  done;
  compress ~rows:(Mat.rows dm) ~cols:(Mat.cols dm) t

let rows t = t.m
let cols t = t.n
let nnz t = Array.length t.values

let mul_vec_into t x y =
  if Array.length x <> t.n || Array.length y <> t.m then invalid_arg "Sparse.mul_vec: dim";
  for i = 0 to t.m - 1 do
    let acc = ref 0.0 in
    for k = t.row_start.(i) to t.row_start.(i + 1) - 1 do
      acc := !acc +. (t.values.(k) *. x.(t.col_index.(k)))
    done;
    y.(i) <- !acc
  done

let mul_vec t x =
  let y = Array.make t.m 0.0 in
  mul_vec_into t x y;
  y

let to_dense t =
  let dm = Mat.create t.m t.n in
  for i = 0 to t.m - 1 do
    for k = t.row_start.(i) to t.row_start.(i + 1) - 1 do
      Mat.add_to dm i t.col_index.(k) t.values.(k)
    done
  done;
  dm
