(** Complex roots of real-coefficient polynomials via the Durand-Kerner
    (Weierstrass) simultaneous iteration, with Newton polishing.

    AWE characteristic polynomials are small (degree <= ~10) and can be very
    badly scaled, so coefficients are rescaled internally. *)

(** [find ?max_iter ?tol c] returns the [degree c] roots of [c].
    Roots of nearly-zero polynomials or non-convergent iterations raise
    [Failure]. Conjugate symmetry is enforced on output (pairs within
    tolerance are averaged), so downstream code can rely on it. *)
val find : ?max_iter:int -> ?tol:float -> Poly.t -> Cpx.t array

(** [residual c roots] is max_k |c(root_k)| / scale, a quality measure used
    by tests and by AWE order-escalation. *)
val residual : Poly.t -> Cpx.t array -> float
