(** Compressed-sparse-row matrices.

    MNA capacitance matrices are extremely sparse (a handful of entries
    per device); the AWE moment recursion multiplies by C once per moment,
    so a CSR matvec replaces the dense O(n^2) product there. Assembly goes
    through a triplet buffer (duplicate entries are summed, as stamping
    produces them). *)

type triplets

(** [triplets ()] is an empty assembly buffer. *)
val triplets : unit -> triplets

(** [add t i j v] accumulates [v] at (i, j). *)
val add : triplets -> int -> int -> float -> unit

type t

(** [compress ~rows ~cols t] builds the CSR form; duplicates summed,
    explicit zeros dropped. *)
val compress : rows:int -> cols:int -> triplets -> t

(** [of_dense m] converts a dense matrix (zeros dropped). *)
val of_dense : Mat.t -> t

val rows : t -> int
val cols : t -> int

(** [nnz t] is the stored entry count. *)
val nnz : t -> int

(** [mul_vec t x] is [t * x]. *)
val mul_vec : t -> Vec.t -> Vec.t

(** [mul_vec_into t x y] writes [t * x] into [y] without allocating. *)
val mul_vec_into : t -> Vec.t -> Vec.t -> unit

(** [to_dense t] expands back (for tests). *)
val to_dense : t -> Mat.t
