(** Dense complex matrices and LU solve, used by the direct AC analysis
    (G + jwC) x = b that serves as the reference against AWE. *)

type t

val create : int -> int -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Cpx.t
val set : t -> int -> int -> Cpx.t -> unit
val add_to : t -> int -> int -> Cpx.t -> unit

(** [of_real_pair g c w] builds G + jwC from real matrices of equal shape. *)
val of_real_pair : Mat.t -> Mat.t -> float -> t

val mul_vec : t -> Cpx.t array -> Cpx.t array

exception Singular of int

(** [solve a b] solves A x = b by LU with partial pivoting. [a] is
    destroyed. @raise Singular on numerically singular systems. *)
val solve : t -> Cpx.t array -> Cpx.t array
