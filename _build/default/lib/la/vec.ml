type t = float array

let create n = Array.make n 0.0
let init = Array.init
let copy = Array.copy
let dim = Array.length
let fill x v = Array.fill x 0 (Array.length x) v

let axpy a x y =
  if Array.length x <> Array.length y then invalid_arg "Vec.axpy: dim mismatch";
  for k = 0 to Array.length x - 1 do
    y.(k) <- y.(k) +. (a *. x.(k))
  done

let dot x y =
  if Array.length x <> Array.length y then invalid_arg "Vec.dot: dim mismatch";
  let s = ref 0.0 in
  for k = 0 to Array.length x - 1 do
    s := !s +. (x.(k) *. y.(k))
  done;
  !s

let scale a x = Array.map (fun v -> a *. v) x

let add x y =
  if Array.length x <> Array.length y then invalid_arg "Vec.add: dim mismatch";
  Array.init (Array.length x) (fun k -> x.(k) +. y.(k))

let sub x y =
  if Array.length x <> Array.length y then invalid_arg "Vec.sub: dim mismatch";
  Array.init (Array.length x) (fun k -> x.(k) -. y.(k))

let norm2 x = Stdlib.sqrt (dot x x)

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 x

let max_abs_index x =
  if Array.length x = 0 then invalid_arg "Vec.max_abs_index: empty";
  let best = ref 0 in
  for k = 1 to Array.length x - 1 do
    if Float.abs x.(k) > Float.abs x.(!best) then best := k
  done;
  !best

let pp ppf x =
  Format.fprintf ppf "[|";
  Array.iteri (fun k v -> Format.fprintf ppf (if k = 0 then "%.6g" else "; %.6g") v) x;
  Format.fprintf ppf "|]"
