lib/anneal/lam.ml: Int
