lib/anneal/rng.ml: Array Float Int64
