lib/anneal/lam.mli:
