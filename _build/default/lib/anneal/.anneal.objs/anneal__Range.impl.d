lib/anneal/range.ml: Array Float
