lib/anneal/annealer.mli: Rng
