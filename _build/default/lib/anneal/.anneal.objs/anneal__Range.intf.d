lib/anneal/range.mli:
