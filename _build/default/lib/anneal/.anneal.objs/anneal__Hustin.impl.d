lib/anneal/hustin.ml: Array Float Rng
