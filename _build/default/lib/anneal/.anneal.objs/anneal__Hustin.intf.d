lib/anneal/hustin.mli: Rng
