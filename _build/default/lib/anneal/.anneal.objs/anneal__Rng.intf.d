lib/anneal/rng.mli:
