lib/anneal/annealer.ml: Array Float Hustin Int Lam Rng
