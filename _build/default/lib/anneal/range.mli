(** Per-variable move-range limiting (Swartz-style): each continuous
    variable carries a step scale that grows on accepted moves and shrinks
    on rejections, steering per-variable acceptance toward the schedule's
    setpoint. This is how OBLX explores volts early and converges to
    microvolts at freeze without problem-specific step constants. *)

type t

(** [create ~n ~initial ~min_step ~max_step] — one scale per variable. *)
val create : n:int -> initial:float array -> min_step:float array -> max_step:float array -> t

val step : t -> int -> float

(** [record t i ~accepted] multiplicatively adapts variable [i]'s scale. *)
val record : t -> int -> accepted:bool -> unit

(** [max_relative_step t] is max_i step_i / max_step_i — OBLX's freezing
    test on continuous variables watches this collapse. *)
val max_relative_step : t -> float
