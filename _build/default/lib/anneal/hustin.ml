type t = {
  names : string array;
  attempts : float array;
  gain : float array;  (** sum of |delta cost| over accepted moves *)
  mutable since_decay : int;
}

let create ~classes =
  let n = Array.length classes in
  if n = 0 then invalid_arg "Hustin.create: no classes";
  { names = classes; attempts = Array.make n 0.0; gain = Array.make n 0.0; since_decay = 0 }

let n_classes t = Array.length t.names
let class_name t k = t.names.(k)
let floor_prob = 0.02
let decay_every = 2000
let decay_factor = 0.5

let probabilities t =
  let n = n_classes t in
  let quality = Array.init n (fun k -> if t.attempts.(k) > 0.0 then t.gain.(k) /. t.attempts.(k) else 0.0) in
  let total = Array.fold_left ( +. ) 0.0 quality in
  if total <= 0.0 then Array.make n (1.0 /. float_of_int n)
  else begin
    let head = 1.0 -. (floor_prob *. float_of_int n) in
    Array.map (fun q -> floor_prob +. (head *. q /. total)) quality
  end

let pick t rng =
  let probs = probabilities t in
  let r = Rng.float rng in
  let rec scan k acc =
    if k >= Array.length probs - 1 then k
    else begin
      let acc = acc +. probs.(k) in
      if r < acc then k else scan (k + 1) acc
    end
  in
  scan 0 0.0

let record t k ~accepted ~delta_cost =
  t.attempts.(k) <- t.attempts.(k) +. 1.0;
  if accepted then t.gain.(k) <- t.gain.(k) +. Float.abs delta_cost;
  t.since_decay <- t.since_decay + 1;
  if t.since_decay >= decay_every then begin
    t.since_decay <- 0;
    for i = 0 to n_classes t - 1 do
      t.attempts.(i) <- t.attempts.(i) *. decay_factor;
      t.gain.(i) <- t.gain.(i) *. decay_factor
    done
  end
