type t = { scale : float array; min_step : float array; max_step : float array }

let create ~n ~initial ~min_step ~max_step =
  if Array.length initial <> n || Array.length min_step <> n || Array.length max_step <> n then
    invalid_arg "Range.create: dimension mismatch";
  { scale = Array.copy initial; min_step; max_step }

let step t i = t.scale.(i)

(* Asymmetric gains biased so the equilibrium acceptance sits near 0.44:
   0.44 * log(grow) + 0.56 * log(shrink) = 0. *)
let grow = 1.06
let shrink = 0.956

let record t i ~accepted =
  let s = t.scale.(i) *. (if accepted then grow else shrink) in
  t.scale.(i) <- Float.max t.min_step.(i) (Float.min t.max_step.(i) s)

let max_relative_step t =
  let best = ref 0.0 in
  for i = 0 to Array.length t.scale - 1 do
    if t.max_step.(i) > 0.0 then best := Float.max !best (t.scale.(i) /. t.max_step.(i))
  done;
  !best
