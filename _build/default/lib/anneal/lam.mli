(** The Lam-Delosme cooling schedule in its practical feedback form (as
    modified by Swartz): instead of a fixed temperature decrement, the
    schedule tracks a target acceptance-rate trajectory — ramp down to the
    theoretically optimal 0.44, hold, then quench — and continuously
    adjusts the temperature so the measured (exponentially averaged)
    acceptance rate follows it. No problem-specific constants. *)

type t

(** [create ~total_moves ~t0] — [t0] is only a starting point; feedback
    takes over immediately. *)
val create : total_moves:int -> t0:float -> t

val temperature : t -> float

(** [target_ratio t] is the acceptance-rate setpoint at the current
    progress (exposed for tests: 1 -> 0.44 -> 0). *)
val target_ratio : t -> float

(** [measured_ratio t] is the exponentially weighted acceptance rate. *)
val measured_ratio : t -> float

(** [record t ~accepted] updates statistics and adjusts the temperature;
    call once per proposed move. *)
val record : t -> accepted:bool -> unit

(** [progress t] is the fraction of the move budget consumed, in [0, 1]. *)
val progress : t -> float

(** [finished t] when the move budget is exhausted. *)
val finished : t -> bool
