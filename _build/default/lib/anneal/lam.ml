type t = {
  total_moves : int;
  mutable moves : int;
  mutable temp : float;
  mutable ratio : float;  (** EWMA of acceptance *)
}

let create ~total_moves ~t0 =
  { total_moves = Int.max 1 total_moves; moves = 0; temp = t0; ratio = 1.0 }

let temperature t = t.temp
let progress t = float_of_int t.moves /. float_of_int t.total_moves
let finished t = t.moves >= t.total_moves

(* Lam's optimal-rate trajectory, in the standard piecewise practical form:
   exponential descent from ~1.0 to 0.44 over the first 15% of the run, a
   0.44 plateau until 65%, then exponential quench. *)
let target_at f =
  if f < 0.15 then 0.44 +. (0.56 *. (560.0 ** (-.f /. 0.15)))
  else if f < 0.65 then 0.44
  else 0.44 *. (440.0 ** (-.(f -. 0.65) /. 0.35))

let target_ratio t = target_at (progress t)
let measured_ratio t = t.ratio

(* EWMA weight and feedback gain; these are schedule-internal constants
   (problem-independent), per Lam's derivation. *)
let ewma_weight = 1.0 /. 500.0
let feedback = 0.999

let record t ~accepted =
  t.moves <- t.moves + 1;
  let a = if accepted then 1.0 else 0.0 in
  t.ratio <- ((1.0 -. ewma_weight) *. t.ratio) +. (ewma_weight *. a);
  let target = target_ratio t in
  if t.ratio > target then t.temp <- t.temp *. feedback
  else t.temp <- t.temp /. feedback;
  (* Keep the temperature in a sane numeric range. *)
  if t.temp < 1e-12 then t.temp <- 1e-12;
  if t.temp > 1e12 then t.temp <- 1e12
