(** Hustin's adaptive move-class selection (from the TIM placement tool,
    adopted by OBLX): each move class accumulates a quality statistic —
    the cost change it produces on accepted moves per attempt — and classes
    are then drawn with probability proportional to quality, with a floor
    probability so no class starves. Statistics decay periodically so the
    mix tracks the phase of the anneal (random moves early,
    gradient/Newton moves near convergence). *)

type t

val create : classes:string array -> t
val n_classes : t -> int
val class_name : t -> int -> string

(** [pick t rng] draws a class index. *)
val pick : t -> Rng.t -> int

(** [record t k ~accepted ~delta_cost] — call after each attempted move of
    class [k]. *)
val record : t -> int -> accepted:bool -> delta_cost:float -> unit

(** [probabilities t] is the current selection distribution (sums to 1). *)
val probabilities : t -> float array
