(** Nonlinear transient analysis with fixed-step backward-Euler integration
    and a Newton solve per timestep. Used as the reference measurement for
    large-signal specifications (slew rate) that AWE cannot predict.

    Time-varying stimulus is supplied per source name; sources without an
    override keep their DC value. *)

type t = {
  index : Sysmat.t;
  times : float array;
  states : float array array;  (** [step][unknown] *)
}

(** [node_waveform r node] extracts one node's voltage trace. *)
val node_waveform : t -> int -> float array

(** [slew_rate r node ~t_from ~t_to] is the peak |dv/dt| of the node
    voltage inside the window, V/s. *)
val slew_rate : t -> int -> t_from:float -> t_to:float -> float

val simulate :
  value:(Netlist.Expr.t -> float) ->
  registry:Devices.Registry.t ->
  tstop:float ->
  dt:float ->
  stimulus:(string * (float -> float)) list ->
  Netlist.Circuit.t ->
  (t, string) result
