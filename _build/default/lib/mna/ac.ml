let solve_at lin ~b ~w =
  let zm = La.Zmat.of_real_pair lin.Linearize.g lin.Linearize.c w in
  let zb = Array.map La.Cpx.of_float b in
  La.Zmat.solve zm zb

let transfer lin ~b ~sel ~w =
  let x = solve_at lin ~b ~w in
  let acc = ref La.Cpx.zero in
  Array.iteri (fun k s -> if s <> 0.0 then acc := La.Cpx.add !acc (La.Cpx.scale s x.(k))) sel;
  !acc

let sweep lin ~b ~sel freqs =
  Array.map (fun f -> transfer lin ~b ~sel ~w:(2.0 *. Float.pi *. f)) freqs

let dc_gain lin ~b ~sel = (transfer lin ~b ~sel ~w:0.0).La.Cpx.re

let mag lin ~b ~sel f = La.Cpx.abs (transfer lin ~b ~sel ~w:(2.0 *. Float.pi *. f))

(* Scan a log grid for the unity crossing, then bisect in log frequency. *)
let unity_gain_freq lin ~b ~sel =
  let fmin = 1.0 and fmax = 1e11 in
  let points = 221 in
  let fk k =
    fmin *. ((fmax /. fmin) ** (float_of_int k /. float_of_int (points - 1)))
  in
  let rec scan k prev =
    if k >= points then None
    else begin
      let f = fk k in
      let m = mag lin ~b ~sel f in
      match prev with
      | Some (fp, mp) when (mp -. 1.0) *. (m -. 1.0) <= 0.0 && mp > m ->
          (* Falling crossing: bisect. *)
          let rec bisect lo hi n =
            if n = 0 then Some (Float.sqrt (lo *. hi))
            else begin
              let mid = Float.sqrt (lo *. hi) in
              if mag lin ~b ~sel mid >= 1.0 then bisect mid hi (n - 1) else bisect lo mid (n - 1)
            end
          in
          bisect fp f 60
      | Some _ | None -> scan (k + 1) (Some (f, m))
    end
  in
  scan 0 None

(* Phase margin with phase unwrapping: track the phase continuously from
   1 Hz up to the unity-gain frequency (principal-value arg alone wraps for
   3+ pole systems). The response is sign-normalized so that inverting
   amplifiers measure the same margin as their differential equivalents. *)
let phase_margin lin ~b ~sel =
  match unity_gain_freq lin ~b ~sel with
  | None -> None
  | Some fu ->
      let sgn = if dc_gain lin ~b ~sel >= 0.0 then 1.0 else -1.0 in
      let h f =
        La.Cpx.scale sgn (transfer lin ~b ~sel ~w:(2.0 *. Float.pi *. f))
      in
      let steps = 120 in
      let phase = ref (La.Cpx.arg (h 1.0)) in
      let prev = ref (h 1.0) in
      for k = 1 to steps do
        let f = fu ** (float_of_int k /. float_of_int steps) in
        let cur = h f in
        phase := !phase +. La.Cpx.arg (La.Cpx.div cur !prev);
        prev := cur
      done;
      Some (180.0 +. (!phase *. 180.0 /. Float.pi))
