(** Nonlinear DC operating-point analysis by Newton-Raphson with gmin
    stepping, per-step voltage damping, and a source-stepping fallback —
    this is the "detailed circuit simulator" half of the reproduction's
    reference simulator.

    Capacitors are open, inductors are 0 V branches. *)

type op_info = Mos_op of Devices.Sig.mos_op | Bjt_op of Devices.Sig.bjt_op

type solution = {
  index : Sysmat.t;
  x : float array;  (** full unknown vector (node voltages then branches) *)
  ops : (string * op_info) list;  (** per nonlinear device, by element name *)
  iterations : int;
}

(** [node_voltage sol node] — ground returns 0. *)
val node_voltage : solution -> int -> float

(** [branch_current sol name] is the current through a voltage-defined
    element, positive from its + node to its - node through the element. *)
val branch_current : solution -> string -> float option

(** [supply_power sol ~value] is the total power delivered by independent
    voltage sources, watts. *)
val supply_power : solution -> value:(Netlist.Expr.t -> float) -> float

(** [solve ~value ~registry circuit] computes the operating point.
    [value] evaluates element-value expressions (design variables bound by
    the caller). [x0] warm-starts the Newton iteration. *)
val solve :
  ?max_iter:int ->
  ?x0:float array ->
  value:(Netlist.Expr.t -> float) ->
  registry:Devices.Registry.t ->
  Netlist.Circuit.t ->
  (solution, string) result

(** Low-level hooks shared with the transient engine. *)

(** [assemble idx ~value ~registry ~gmin ~srcscale x] stamps the Newton
    Jacobian and right-hand side at the linearization point [x]. *)
val assemble :
  Sysmat.t ->
  value:(Netlist.Expr.t -> float) ->
  registry:Devices.Registry.t ->
  gmin:float ->
  srcscale:float ->
  float array ->
  La.Mat.t * La.Vec.t

(** [collect_ops idx ~value ~registry x] evaluates every nonlinear device at
    the state [x]. *)
val collect_ops :
  Sysmat.t ->
  value:(Netlist.Expr.t -> float) ->
  registry:Devices.Registry.t ->
  float array ->
  (string * op_info) list
