lib/mna/linearize.ml: Array Dc Devices Float La Netlist Sysmat
