lib/mna/linearize.mli: Dc La Netlist Sysmat
