lib/mna/dc.mli: Devices La Netlist Sysmat
