lib/mna/ac.mli: La Linearize
