lib/mna/dc.ml: Array Devices Float La List Netlist Option Seq Sysmat
