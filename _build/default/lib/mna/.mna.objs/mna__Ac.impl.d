lib/mna/ac.ml: Array Float La Linearize
