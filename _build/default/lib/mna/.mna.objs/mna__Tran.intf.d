lib/mna/tran.mli: Devices Netlist Sysmat
