lib/mna/sysmat.ml: Array La List Netlist String
