lib/mna/tran.ml: Array Dc Devices Float La List Netlist Result Sysmat
