type op_info = Mos_op of Devices.Sig.mos_op | Bjt_op of Devices.Sig.bjt_op

type solution = {
  index : Sysmat.t;
  x : float array;
  ops : (string * op_info) list;
  iterations : int;
}

let node_voltage sol node = if node = 0 then 0.0 else sol.x.(Sysmat.node_row sol.index node)

let branch_current sol name =
  Option.map (fun row -> sol.x.(row)) (Sysmat.branch_of_name sol.index name)

let supply_power sol ~value =
  Array.fold_left
    (fun acc e ->
      match e with
      | Netlist.Circuit.Vsource { name; dc; _ } -> begin
          match branch_current sol name with
          | Some i -> acc +. Float.abs (value dc *. i)
          | None -> acc
        end
      | Netlist.Circuit.Resistor _ | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Inductor _
      | Netlist.Circuit.Isource _ | Netlist.Circuit.Vcvs _ | Netlist.Circuit.Vccs _
      | Netlist.Circuit.Cccs _ | Netlist.Circuit.Ccvs _ | Netlist.Circuit.Mosfet _
      | Netlist.Circuit.Bjt _ ->
          acc)
    0.0 sol.index.Sysmat.circuit.Netlist.Circuit.elements

(* One Newton iteration: assemble J and RHS at the linearization point [x],
   with sources scaled by [srcscale] and [gmin] to ground on every node. *)
let assemble idx ~value ~registry ~gmin ~srcscale (x : float array) =
  let t = idx in
  let n = t.Sysmat.size in
  let j = La.Mat.create n n in
  let b = La.Vec.create n in
  let v node = if node = 0 then 0.0 else x.(Sysmat.node_row t node) in
  let add_j = Sysmat.add_g t j in
  let nrow = Sysmat.node_row t in
  let brow name =
    match Sysmat.branch_of_name t name with
    | Some r -> r
    | None -> failwith ("reference to unknown voltage-defined element " ^ name)
  in
  (* gmin from every non-ground node to ground. *)
  for node = 1 to t.Sysmat.n_nodes - 1 do
    La.Mat.add_to j (nrow node) (nrow node) gmin
  done;
  let stamp_mos name d g s bb model w l m =
    let resolved = Devices.Registry.find_exn registry model in
    match resolved with
    | Devices.Sig.Bjt _ -> failwith (name ^ ": MOS element with BJT model")
    | Devices.Sig.Mos { eval; _ } ->
        let op = eval ~w ~l ~m ~vd:(v d) ~vg:(v g) ~vs:(v s) ~vb:(v bb) in
        let open Devices.Sig in
        (* Channel current: i_d = id0 + gm dvg + gds dvd + gmbs dvb
           - (gm+gds+gmbs) dvs ; rows d (+) and s (-). *)
        let gsum = op.gm +. op.gds +. op.gmbs in
        let ieq =
          op.id_ -. (op.gm *. v g) -. (op.gds *. v d) -. (op.gmbs *. v bb) +. (gsum *. v s)
        in
        let rd = nrow d and rs = nrow s in
        add_j rd (nrow g) op.gm;
        add_j rd (nrow d) op.gds;
        add_j rd (nrow bb) op.gmbs;
        add_j rd (nrow s) (-.gsum);
        add_j rs (nrow g) (-.op.gm);
        add_j rs (nrow d) (-.op.gds);
        add_j rs (nrow bb) (-.op.gmbs);
        add_j rs (nrow s) gsum;
        Sysmat.add_vec rd (-.ieq) b;
        Sysmat.add_vec rs ieq b;
        (* Bulk junctions: each is a nonlinear conductance between the bulk
           and a diffusion node — conductance plus equivalent source. *)
        let stamp_junction nd g_j i_now =
          let ieq_j = i_now -. (g_j *. (v bb -. v nd)) in
          Sysmat.stamp_conductance t j bb nd g_j;
          Sysmat.add_vec (nrow bb) (-.ieq_j) b;
          Sysmat.add_vec (nrow nd) ieq_j b
        in
        stamp_junction d op.gbd op.ibd_;
        stamp_junction s op.gbs op.ibs_
  in
  let stamp_bjt name c bb e model area =
    match Devices.Registry.find_exn registry model with
    | Devices.Sig.Mos _ -> failwith (name ^ ": BJT element with MOS model")
    | Devices.Sig.Bjt { eval; _ } ->
        let op = eval ~area ~vc:(v c) ~vb:(v bb) ~ve:(v e) in
        let open Devices.Sig in
        (* ic(vc,vb,ve), ib(vc,vb,ve); d/dve = -(d/dvc + d/dvb). *)
        let rc = nrow c and rb = nrow bb and re_ = nrow e in
        let dic_dvc = op.go and dic_dvb = op.bjt_gm in
        let dic_dve = -.(dic_dvc +. dic_dvb) in
        let dib_dvc = op.gmu and dib_dvb = op.gpi in
        let dib_dve = -.(dib_dvc +. dib_dvb) in
        add_j rc (nrow c) dic_dvc;
        add_j rc (nrow bb) dic_dvb;
        add_j rc (nrow e) dic_dve;
        add_j rb (nrow c) dib_dvc;
        add_j rb (nrow bb) dib_dvb;
        add_j rb (nrow e) dib_dve;
        (* Emitter row gets minus the sum (ie = -(ic+ib)). *)
        add_j re_ (nrow c) (-.(dic_dvc +. dib_dvc));
        add_j re_ (nrow bb) (-.(dic_dvb +. dib_dvb));
        add_j re_ (nrow e) (-.(dic_dve +. dib_dve));
        let ieq_c = op.ic -. (dic_dvc *. v c) -. (dic_dvb *. v bb) -. (dic_dve *. v e) in
        let ieq_b = op.ib -. (dib_dvc *. v c) -. (dib_dvb *. v bb) -. (dib_dve *. v e) in
        Sysmat.add_vec rc (-.ieq_c) b;
        Sysmat.add_vec rb (-.ieq_b) b;
        Sysmat.add_vec re_ (ieq_c +. ieq_b) b
  in
  let handle (e : Netlist.Circuit.element) =
    match e with
    | Netlist.Circuit.Resistor { name; n1; n2; value = ve } ->
        let r = value ve in
        if r <= 0.0 then failwith (name ^ ": non-positive resistance");
        Sysmat.stamp_conductance t j n1 n2 (1.0 /. r)
    | Netlist.Circuit.Capacitor _ -> ()
    | Netlist.Circuit.Inductor { name; n1; n2; _ } ->
        let row = brow name in
        add_j row (nrow n1) 1.0;
        add_j row (nrow n2) (-1.0);
        add_j (nrow n1) row 1.0;
        add_j (nrow n2) row (-1.0)
    | Netlist.Circuit.Vsource { name; np; nn; dc; _ } ->
        let row = brow name in
        add_j row (nrow np) 1.0;
        add_j row (nrow nn) (-1.0);
        add_j (nrow np) row 1.0;
        add_j (nrow nn) row (-1.0);
        Sysmat.add_vec row (srcscale *. value dc) b
    | Netlist.Circuit.Isource { np; nn; dc; _ } ->
        let i = srcscale *. value dc in
        Sysmat.add_vec (nrow np) (-.i) b;
        Sysmat.add_vec (nrow nn) i b
    | Netlist.Circuit.Vcvs { name; np; nn; ncp; ncn; gain } ->
        let row = brow name in
        let g = value gain in
        add_j row (nrow np) 1.0;
        add_j row (nrow nn) (-1.0);
        add_j row (nrow ncp) (-.g);
        add_j row (nrow ncn) g;
        add_j (nrow np) row 1.0;
        add_j (nrow nn) row (-1.0)
    | Netlist.Circuit.Vccs { np; nn; ncp; ncn; gm; _ } ->
        Sysmat.stamp_vccs t j np nn ncp ncn (value gm)
    | Netlist.Circuit.Cccs { np; nn; vsrc; gain; _ } ->
        let col = brow vsrc in
        add_j (nrow np) col (value gain);
        add_j (nrow nn) col (-.value gain)
    | Netlist.Circuit.Ccvs { name; np; nn; vsrc; r } ->
        let row = brow name in
        let col = brow vsrc in
        add_j row (nrow np) 1.0;
        add_j row (nrow nn) (-1.0);
        add_j row col (-.value r);
        add_j (nrow np) row 1.0;
        add_j (nrow nn) row (-1.0)
    | Netlist.Circuit.Mosfet { name; d; g; s; b = bb; model; w; l; mult } ->
        stamp_mos name d g s bb model (value w) (value l) (value mult)
    | Netlist.Circuit.Bjt { name; c; b = bb; e; model; area } ->
        stamp_bjt name c bb e model (value area)
  in
  Array.iter handle t.Sysmat.circuit.Netlist.Circuit.elements;
  (j, b)

let collect_ops idx ~value ~registry (x : float array) =
  let v node = if node = 0 then 0.0 else x.(Sysmat.node_row idx node) in
  Array.to_list
    (Array.of_seq
       (Seq.filter_map
          (fun (e : Netlist.Circuit.element) ->
            match e with
            | Netlist.Circuit.Mosfet { name; d; g; s; b; model; w; l; mult } -> begin
                match Devices.Registry.find_exn registry model with
                | Devices.Sig.Mos { eval; _ } ->
                    let op =
                      eval ~w:(value w) ~l:(value l) ~m:(value mult) ~vd:(v d) ~vg:(v g)
                        ~vs:(v s) ~vb:(v b)
                    in
                    Some (name, Mos_op op)
                | Devices.Sig.Bjt _ -> None
              end
            | Netlist.Circuit.Bjt { name; c; b; e = ne; model; area } -> begin
                match Devices.Registry.find_exn registry model with
                | Devices.Sig.Bjt { eval; _ } ->
                    let op = eval ~area:(value area) ~vc:(v c) ~vb:(v b) ~ve:(v ne) in
                    Some (name, Bjt_op op)
                | Devices.Sig.Mos _ -> None
              end
            | Netlist.Circuit.Resistor _ | Netlist.Circuit.Capacitor _
            | Netlist.Circuit.Inductor _ | Netlist.Circuit.Vsource _ | Netlist.Circuit.Isource _
            | Netlist.Circuit.Vcvs _ | Netlist.Circuit.Vccs _ | Netlist.Circuit.Cccs _
            | Netlist.Circuit.Ccvs _ ->
                None)
          (Array.to_seq idx.Sysmat.circuit.Netlist.Circuit.elements)))

(* Newton loop at fixed gmin/srcscale, warm-started from [x]. Returns the
   iterate and whether it converged. *)
let newton idx ~value ~registry ~gmin ~srcscale ~max_iter x =
  let n = idx.Sysmat.size in
  let x = Array.copy x in
  let vstep_limit = 0.5 in
  let rec loop it =
    if it >= max_iter then (x, false, it)
    else begin
      let j, b = assemble idx ~value ~registry ~gmin ~srcscale x in
      match La.Lu.factor j with
      | exception La.Lu.Singular _ -> (x, false, it)
      | lu ->
          let xnew = La.Lu.solve lu b in
          let maxdv = ref 0.0 in
          for k = 0 to n - 1 do
            let dv = xnew.(k) -. x.(k) in
            let limited =
              if k < idx.Sysmat.n_nodes - 1 then
                Float.max (-.vstep_limit) (Float.min vstep_limit dv)
              else dv
            in
            if k < idx.Sysmat.n_nodes - 1 then maxdv := Float.max !maxdv (Float.abs dv);
            x.(k) <- x.(k) +. limited
          done;
          if !maxdv < 1e-9 +. 1e-6 then (x, true, it + 1) else loop (it + 1)
    end
  in
  loop 0

let solve ?(max_iter = 200) ?x0 ~value ~registry circuit =
  let idx = Sysmat.of_circuit circuit in
  let x = match x0 with Some v -> Array.copy v | None -> Array.make idx.Sysmat.size 0.0 in
  try
    (* gmin stepping: solve a heavily damped system first, then relax. *)
    let gmins = [ 1e-3; 1e-6; 1e-9; 1e-12 ] in
    let total_iters = ref 0 in
    let run_schedule x =
      List.fold_left
        (fun (x, ok_all) gmin ->
          let x', ok, it =
            newton idx ~value ~registry ~gmin ~srcscale:1.0 ~max_iter x
          in
          total_iters := !total_iters + it;
          (x', ok_all && ok))
        (x, true) gmins
    in
    let x_final, ok = run_schedule x in
    let x_final, ok =
      if ok then (x_final, ok)
      else begin
        (* Source stepping fallback: ramp sources from 10% with gmin help. *)
        let x = Array.make idx.Sysmat.size 0.0 in
        let x =
          List.fold_left
            (fun x scale ->
              let x', _, it =
                newton idx ~value ~registry ~gmin:1e-9 ~srcscale:scale ~max_iter x
              in
              total_iters := !total_iters + it;
              x')
            x
            [ 0.1; 0.3; 0.5; 0.7; 0.9; 1.0 ]
        in
        let x', ok, it = newton idx ~value ~registry ~gmin:1e-12 ~srcscale:1.0 ~max_iter x in
        total_iters := !total_iters + it;
        (x', ok)
      end
    in
    if not ok then Error "dc: Newton-Raphson failed to converge"
    else
      Ok
        {
          index = idx;
          x = x_final;
          ops = collect_ops idx ~value ~registry x_final;
          iterations = !total_iters;
        }
  with
  | Failure msg -> Error ("dc: " ^ msg)
  | Netlist.Expr.Eval_error msg -> Error ("dc: " ^ msg)
