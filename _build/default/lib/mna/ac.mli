(** Direct (non-AWE) AC analysis: solve (G + jwC) x = b frequency by
    frequency. This is the independent reference that AWE's reduced-order
    answers are compared against (the "Simulation" columns of Tables 2-3). *)

(** [solve_at lin ~b ~w] solves the linearized system at angular frequency
    [w] rad/s for the given excitation. *)
val solve_at : Linearize.t -> b:La.Vec.t -> w:float -> La.Cpx.t array
  (** full complex unknown vector *)

(** [transfer lin ~b ~sel ~w] is sel . x(jw) — one point of a transfer
    function. *)
val transfer : Linearize.t -> b:La.Vec.t -> sel:La.Vec.t -> w:float -> La.Cpx.t

(** [sweep lin ~b ~sel freqs] evaluates the transfer function at the given
    frequencies (hertz). *)
val sweep : Linearize.t -> b:La.Vec.t -> sel:La.Vec.t -> float array -> La.Cpx.t array

(** [dc_gain lin ~b ~sel] is the zero-frequency transfer value. *)
val dc_gain : Linearize.t -> b:La.Vec.t -> sel:La.Vec.t -> float

(** [unity_gain_freq lin ~b ~sel] finds the frequency (Hz) where
    |H(jw)| = 1 by bisection on a log-frequency grid; [None] if |H| never
    crosses unity in [1 Hz, 100 GHz]. *)
val unity_gain_freq : Linearize.t -> b:La.Vec.t -> sel:La.Vec.t -> float option

(** [phase_margin lin ~b ~sel] is 180 + arg H(j w_ugf) in degrees. *)
val phase_margin : Linearize.t -> b:La.Vec.t -> sel:La.Vec.t -> float option

