(* Unknown-vector layout for modified nodal analysis.

   Unknowns: node voltages for nodes 1..n-1 (ground eliminated), then one
   branch current per voltage-defined element (independent V source,
   inductor, VCVS, CCVS). *)

type t = {
  circuit : Netlist.Circuit.t;
  n_nodes : int;  (** including ground *)
  branches : (string * int) list;  (** element name -> branch slot *)
  size : int;  (** total unknown count *)
}

let needs_branch (e : Netlist.Circuit.element) =
  match e with
  | Netlist.Circuit.Vsource _ | Netlist.Circuit.Inductor _ | Netlist.Circuit.Vcvs _
  | Netlist.Circuit.Ccvs _ ->
      true
  | Netlist.Circuit.Resistor _ | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Isource _
  | Netlist.Circuit.Vccs _ | Netlist.Circuit.Cccs _ | Netlist.Circuit.Mosfet _
  | Netlist.Circuit.Bjt _ ->
      false

let of_circuit circuit =
  let n_nodes = Netlist.Circuit.node_count circuit in
  let branches = ref [] in
  let next = ref 0 in
  Array.iter
    (fun e ->
      if needs_branch e then begin
        branches := (Netlist.Circuit.element_name e, !next) :: !branches;
        incr next
      end)
    circuit.Netlist.Circuit.elements;
  { circuit; n_nodes; branches = List.rev !branches; size = n_nodes - 1 + !next }

(* Row/column of a node: ground maps to -1 (meaning: drop the stamp). *)
let node_row _t node = node - 1
let branch_row t slot = t.n_nodes - 1 + slot

let branch_of_name t name =
  match List.assoc_opt name t.branches with
  | Some slot -> Some (branch_row t slot)
  | None ->
      (* F/H cards written inside a subcircuit refer to sources by their
         local name; after elaboration both carry the same prefix, but a
         reference from the top level to an inner source arrives bare. *)
      let suffix = "." ^ name in
      List.find_map
        (fun (n, slot) ->
          if
            String.length n > String.length suffix
            && String.sub n (String.length n - String.length suffix) (String.length suffix)
               = suffix
          then Some (branch_row t slot)
          else None)
        t.branches

(* Stamping helpers: silently drop contributions touching ground. *)
let add_g t m i j v =
  if i >= 0 && j >= 0 then La.Mat.add_to m i j v;
  ignore t

let add_vec i v (b : La.Vec.t) = if i >= 0 then b.(i) <- b.(i) +. v

(* Conductance [g] between nodes [n1] and [n2]. *)
let stamp_conductance t m n1 n2 g =
  let i = node_row t n1 and j = node_row t n2 in
  add_g t m i i g;
  add_g t m j j g;
  add_g t m i j (-.g);
  add_g t m j i (-.g)

(* Transconductance: current [gm * (v_ncp - v_ncn)] flowing np -> nn. *)
let stamp_vccs t m np nn ncp ncn gm =
  let ip = node_row t np and in_ = node_row t nn in
  let jcp = node_row t ncp and jcn = node_row t ncn in
  add_g t m ip jcp gm;
  add_g t m ip jcn (-.gm);
  add_g t m in_ jcp (-.gm);
  add_g t m in_ jcn gm
