(* Symmetric OTA: NMOS differential pair into PMOS diode loads, mirrored
   with gain k to the output branches, NMOS mirror closing the loop —
   second column of Tables 1 and 2. *)

let name = "ota"

let source =
  {|.title symmetric OTA
.process p1u2
.param vddval=5
.param vcmval=2.5
.param cl=1p

.subckt amp inp inm out vdd vss
m1 n3 inp ntail vss nmos w='w1' l='l1'
m2 n4 inm ntail vss nmos w='w1' l='l1'
m3 n3 n3 vdd vdd pmos w='w3' l='l3'
m4 n4 n4 vdd vdd pmos w='w3' l='l3'
m5 n5 n3 vdd vdd pmos w='wm' l='l3'
m6 out n4 vdd vdd pmos w='wm' l='l3'
m7 n5 n5 vss vss nmos w='w7' l='l7'
m8 out n5 vss vss nmos w='w7' l='l7'
m9 ntail bp vss vss nmos w='w9' l='l9'
m10 bp bp vss vss nmos w='w9' l='l9'
iref vdd bp 'ib'
.ends

.var w1 min=2u max=400u steps=120
.var l1 min=1.2u max=20u steps=60
.var w3 min=2u max=400u steps=120
.var l3 min=1.2u max=20u steps=60
.var wm min=2u max=600u steps=120
.var w7 min=2u max=400u steps=120
.var l7 min=1.2u max=20u steps=60
.var w9 min=2u max=400u steps=120
.var l9 min=1.2u max=20u steps=60
.var ib min=2u max=1m grid=log

.jig main
xamp inp inm out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vcm inm 0 'vcmval'
vin inp 0 'vcmval' ac 1
cl1 out 0 'cl'
.pz tf v(out) vin
.pz tfdd v(out) vdd
.pz tfss v(out) vss
.endjig

.bias
xamp inp inm out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vcm inm 0 'vcmval'
vin inp 0 'vcmval'
cl1 out 0 'cl'
.endbias

.obj adm 'db(dc_gain(tf))' good=40 bad=6
.obj area 'area()' good=500 bad=20000
.spec ugf 'ugf(tf)' good=25meg bad=500k
.spec pm 'phase_margin(tf)' good=45 bad=15
.spec psrr_vss 'db(dc_gain(tf)) - db(dc_gain(tfss))' good=40 bad=5
.spec psrr_vdd 'db(dc_gain(tf)) - db(dc_gain(tfdd))' good=40 bad=5
.spec swing 'vddval - xamp.m6.vdsat - xamp.m8.vdsat' good=2.5 bad=1
.spec sr 'ib / (cl + xamp.m6.cd + xamp.m8.cd)' good=10e6 bad=1e6
.spec pwr 'power()' good=1m bad=10m
|}

let paper_table2 =
  [
    ("adm", "maximize", 40.4, 40.2);
    ("ugf", ">=25Meg", 25.0e6, 25.4e6);
    ("pm", ">=45", 57.9, 57.8);
    ("psrr_vss", ">=40", 42.1, 42.0);
    ("psrr_vdd", ">=40", 52.8, 52.8);
    ("swing", ">=2.5", 4.0, 4.0);
    ("sr", ">=10V/us", 51.6e6, 48.2e6);
    ("area", "minimize", 900.0, 900.0);
    ("pwr", "<=1mW", 0.33e-3, 0.34e-3);
  ]
