(* Folded-cascode op-amp: NMOS input pair folded into PMOS cascodes with a
   cascoded NMOS mirror load. The cascode bias voltages are independent
   design variables, as in the paper's formulation. Fourth column of
   Tables 1 and 2. *)

let name = "folded-cascode"

let source =
  {|.title folded cascode op-amp
.process p1u2
.param vddval=5
.param vcmval=2.5
.param cl=1.25p

.subckt amp inp inm out vdd vss
* input pair and tail mirror
m1 f1 inp ntail vss nmos w='w1' l='l1'
m2 f2 inm ntail vss nmos w='w1' l='l1'
m0 ntail bp vss vss nmos w='w0' l='l0'
m11 bp bp vss vss nmos w='w0' l='l0'
iref vdd bp 'ib'
* top PMOS current sources
m3 f1 nbp vdd vdd pmos w='w3' l='l3'
m4 f2 nbp vdd vdd pmos w='w3' l='l3'
vbp vdd nbp 'vbp'
* PMOS cascodes
m5 o1 ncp f1 vdd pmos w='w5' l='l5'
m6 out ncp f2 vdd pmos w='w5' l='l5'
vcp vdd ncp 'vcp'
* cascoded NMOS mirror load
m7 o1 ncn n9 vss nmos w='w7' l='l7'
m8 out ncn n10 vss nmos w='w7' l='l7'
m9 n9 o1 vss vss nmos w='w9' l='l9'
m10 n10 o1 vss vss nmos w='w9' l='l9'
vcn ncn 0 'vcn'
.ends

.var w1 min=4u max=600u steps=120
.var l1 min=1.2u max=10u steps=50
.var w0 min=4u max=600u steps=120
.var l0 min=1.2u max=10u steps=50
.var w3 min=4u max=800u steps=120
.var l3 min=1.2u max=10u steps=50
.var w5 min=4u max=800u steps=120
.var l5 min=1.2u max=10u steps=50
.var w7 min=4u max=600u steps=120
.var l7 min=1.2u max=10u steps=50
.var w9 min=4u max=600u steps=120
.var l9 min=1.2u max=10u steps=50
.var ib min=5u max=2m grid=log
.var vbp min=0.3 max=2.5
.var vcp min=0.8 max=3.5
.var vcn min=0.8 max=3.5

.jig main
xamp inp inm out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vcm inm 0 'vcmval'
vin inp 0 'vcmval' ac 1
cl1 out 0 'cl'
.pz tf v(out) vin
.pz tfdd v(out) vdd
.pz tfss v(out) vss
.endjig

.bias
xamp inp inm out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vcm inm 0 'vcmval'
vin inp 0 'vcmval'
cl1 out 0 'cl'
.endbias

.obj ugf 'ugf(tf)' good=80meg bad=1meg
.obj area 'area()' good=5000 bad=100000
.spec adm 'db(dc_gain(tf))' good=70 bad=30
.spec pm 'phase_margin(tf)' good=60 bad=20
.spec psrr_vss 'db(dc_gain(tf)) - db(dc_gain(tfss))' good=65 bad=20
.spec psrr_vdd 'db(dc_gain(tf)) - db(dc_gain(tfdd))' good=90 bad=20
.spec swing 'vddval - xamp.m4.vdsat - xamp.m6.vdsat - xamp.m8.vdsat - xamp.m10.vdsat' good=2 bad=0.5
.spec sr 'ib / (cl + xamp.m6.cd + xamp.m8.cd)' good=50e6 bad=5e6
.spec pwr 'power()' good=15m bad=60m
|}

let paper_table2 =
  [
    ("adm", ">=70", 70.1, 70.1);
    ("ugf", "maximize", 72.4e6, 72.1e6);
    ("pm", ">=60", 80.0, 80.0);
    ("psrr_vss", ">=105", 107.0, 107.0);
    ("psrr_vdd", ">=105", 125.0, 125.0);
    ("swing", ">=+-1.0", 1.5, 1.5);
    ("sr", ">=50V/us", 67e6, 57e6);
    ("area", "minimize", 46000.0, 46000.0);
    ("pwr", "<=15mW", 10e-3, 10e-3);
  ]
