(* "Novel" fully differential folded-cascode op-amp with current-based
   cascode bootstrapping (after Nakamura & Carley [25]) and a resistive
   common-mode feedback network. This is the paper's hardest benchmark:
   a just-published topology whose performance equations cannot be looked
   up, with up to six poles/zeros near the unity-gain point. Table 1 last
   column and Table 3. *)

let name = "novel-folded-cascode"

let source =
  {|.title novel fully differential folded cascode
.process p2u
.param vddval=5
.param vcmval=2.5
.param cl=1p

.subckt amp inp inm outp outm vdd vss
* input pair + tail
m1 f1 inp ntail vss nmos w='w1' l='l1'
m2 f2 inm ntail vss nmos w='w1' l='l1'
m0 ntail bp vss vss nmos w='w0' l='l0'
m12 bp bp vss vss nmos w='w0' l='l0'
iref vdd bp 'ib'
* top PMOS current sources
m3 f1 nbp vdd vdd pmos w='w3' l='l3'
m4 f2 nbp vdd vdd pmos w='w3' l='l3'
vbp vdd nbp 'vbp'
* PMOS cascodes with bootstrap helpers: NMOS source followers sense each
* folding node and drive its cascode gate, so the cascode's gate-source
* bias rides on the folding node (the current-based bootstrapping of
* [25], with follower loop gain < 1 for stability)
m5 outm ncp1 f1 vdd pmos w='w5' l='l5'
m6 outp ncp2 f2 vdd pmos w='w5' l='l5'
mb1 vdd f1 ncp1 vss nmos w='wb' l='lb'
mb2 vdd f2 ncp2 vss nmos w='wb' l='lb'
ibb1 ncp1 0 'ibb'
ibb2 ncp2 0 'ibb'
* cascoded NMOS loads, gates at a common bias
m7 outm ncn n9 vss nmos w='w7' l='l7'
m8 outp ncn n10 vss nmos w='w7' l='l7'
m9 n9 ncm vss vss nmos w='w9' l='l9'
m10 n10 ncm vss vss nmos w='w9' l='l9'
vcn ncn 0 'vcn'
* resistive common-mode sense driving the load mirror gates
rc1 outp ncm 'rcm'
rc2 outm ncm 'rcm'
ccm ncm 0 200f
.ends

.var w1 min=4u max=800u steps=120
.var l1 min=2u max=10u steps=40
.var w0 min=4u max=800u steps=120
.var l0 min=2u max=10u steps=40
.var w3 min=4u max=800u steps=120
.var l3 min=2u max=10u steps=40
.var w5 min=4u max=800u steps=120
.var l5 min=2u max=10u steps=40
.var wb min=2u max=200u steps=100
.var lb min=2u max=10u steps=40
.var w7 min=4u max=800u steps=120
.var l7 min=2u max=10u steps=40
.var w9 min=4u max=800u steps=120
.var l9 min=2u max=10u steps=40
.var ib min=10u max=3m grid=log
.var ibb min=2u max=500u grid=log
.var vbp min=0.3 max=2.5
.var vcn min=0.8 max=3.5
.var rcm min=10k max=10meg grid=log

.jig main
xamp inp inm outp outm nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vcm inm 0 'vcmval'
vin inp 0 'vcmval' ac 1
cl1 outp 0 'cl'
cl2 outm 0 'cl'
.pz tf v(outp,outm) vin
.pz tfdd v(outp,outm) vdd
.pz tfss v(outp,outm) vss
.endjig

.bias
xamp inp inm outp outm nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vcm inm 0 'vcmval'
vin inp 0 'vcmval'
cl1 outp 0 'cl'
cl2 outm 0 'cl'
.endbias

.obj ugf 'ugf(tf)' good=90meg bad=1meg
.obj area 'area()' good=20000 bad=200000
.spec adm 'db(dc_gain(tf))' good=71.2 bad=30
.spec pm 'phase_margin(tf)' good=60 bad=20
.spec psrr_vss 'db(dc_gain(tf)) - db(dc_gain(tfss))' good=93 bad=30
.spec psrr_vdd 'db(dc_gain(tf)) - db(dc_gain(tfdd))' good=73 bad=20
.spec swing 'vddval - xamp.m4.vdsat - xamp.m6.vdsat - xamp.m8.vdsat - xamp.m10.vdsat' good=1.4 bad=0.4
.spec sr 'ib / (cl + xamp.m6.cd + xamp.m8.cd)' good=76e6 bad=7e6
.spec pwr 'power()' good=25m bad=100m
|}

(* The paper's Table 3 compares against a highly optimized manual design
   of the same topology in the same 2u process. We cannot rerun that
   design, so the "manual" reference here is a hand-sized instance of our
   topology (values picked by classical square-law hand analysis),
   evaluated through the reference simulator — see DESIGN.md. *)
let manual_sizing =
  [
    ("w1", 220e-6); ("l1", 2e-6); ("w0", 300e-6); ("l0", 3e-6); ("w3", 400e-6);
    ("l3", 3e-6); ("w5", 300e-6); ("l5", 2e-6); ("wb", 20e-6); ("lb", 2e-6);
    ("w7", 200e-6); ("l7", 2e-6); ("w9", 250e-6); ("l9", 3e-6); ("ib", 800e-6);
    ("ibb", 40e-6); ("vbp", 1.6); ("vcn", 1.6); ("rcm", 400e3);
  ]

let paper_table3 =
  [
    ("adm", 71.2, 82.0, 82.0);
    ("ugf", 47.8e6, 89e6, 89e6);
    ("pm", 77.4, 91.0, 91.0);
    ("psrr_vss", 92.6, 112.0, 112.0);
    ("psrr_vdd", 72.3, 77.0, 77.0);
    ("swing", 1.4, 1.4, 1.3);
    ("sr", 76.8e6, 92e6, 87e6);
    ("area", 68700.0, 56000.0, 56000.0);
    ("pwr", 9.0e-3, 12e-3, 12e-3);
  ]
