(* BiCMOS two-stage amplifier: MOS differential first stage with an npn
   common-emitter second stage — exercises mixed MOS/BJT synthesis
   (Table 2, last column). *)

let name = "bicmos-two-stage"

let source =
  {|.title BiCMOS two-stage amplifier
.process p1u2
.param vddval=5
.param vcmval=2.5
.param cl=1p

.subckt amp inp inm out vdd vss
* PMOS input pair with NMOS mirror load: the first-stage output sits a
* vgs above vss, which directly biases the npn base of the second stage
m1 n1 inp ntail vdd pmos w='w1' l='l1'
m2 n2 inm ntail vdd pmos w='w1' l='l1'
m3 n1 n1 vss vss nmos w='w3' l='l3'
m4 n2 n1 vss vss nmos w='w3' l='l3'
m5 ntail bp vdd vdd pmos w='w5' l='l5'
m8 bp bp vdd vdd pmos w='w5' l='l5'
iref bp vss 'ib'
* npn common-emitter second stage with PMOS current-source load
q1 out n2 vss npn 'qarea'
m6 out nbp vdd vdd pmos w='w6' l='l6'
vbp vdd nbp 'vb'
cc n2 out 'ccomp'
.ends

.var w1 min=2u max=400u steps=120
.var l1 min=1.2u max=20u steps=60
.var w3 min=2u max=400u steps=120
.var l3 min=1.2u max=20u steps=60
.var w5 min=2u max=400u steps=120
.var l5 min=1.2u max=20u steps=60
.var w6 min=2u max=800u steps=120
.var l6 min=1.2u max=20u steps=60
.var qarea min=0.5 max=20 grid=log
.var ib min=2u max=1m grid=log
.var vb min=0.3 max=2.5
.var ccomp min=50f max=20p grid=log

.jig main
xamp inp inm out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vcm inm 0 'vcmval'
vin inp 0 'vcmval' ac 1
cl1 out 0 'cl'
.pz tf v(out) vin
.pz tfdd v(out) vdd
.pz tfss v(out) vss
.endjig

.bias
xamp inp inm out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vcm inm 0 'vcmval'
vin inp 0 'vcmval'
cl1 out 0 'cl'
.endbias

.obj adm 'db(dc_gain(tf))' good=100 bad=40
.obj area 'area()' good=2000 bad=50000
.spec ugf 'ugf(tf)' good=50meg bad=1meg
.spec pm 'phase_margin(tf)' good=45 bad=15
.spec psrr_vss 'db(dc_gain(tf)) - db(dc_gain(tfss))' good=60 bad=10
.spec psrr_vdd 'db(dc_gain(tf)) - db(dc_gain(tfdd))' good=40 bad=5
.spec swing 'vddval - xamp.m6.vdsat - 0.3' good=2 bad=0.8
.spec sr 'ib / (ccomp + xamp.m2.cd + xamp.m4.cd)' good=10e6 bad=1e6
.spec pwr 'power()' good=20m bad=100m
|}

let paper_table2 =
  [
    ("adm", "maximize", 99.1, 99.1);
    ("ugf", ">=50Meg", 73.7e6, 75.1e6);
    ("pm", ">=45", 45.2, 49.6);
    ("psrr_vss", ">=60", 78.9, 79.0);
    ("psrr_vdd", ">=40", 52.2, 52.2);
    ("swing", ">=2", 3.3, 4.0);
    ("sr", ">=10V/us", 10e6, 9.5e6);
    ("area", "minimize", 11900.0, 11900.0);
    ("pwr", "<=20mW", 1.3e-3, 1.5e-3);
  ]
