(* Clocked comparator (preamp + gain stage + output stage), analysis-only
   benchmark: the paper presents its ASTRX analysis in Table 1 and defers
   synthesis results to the CICC'94 companion paper [22], so we do the
   same — Table 1 numbers come from compiling this problem; it is not part
   of the Table 2 synthesis sweep. Three test jigs give the three AWE
   circuits of the paper's Table 1 column. *)

let name = "comparator"

let source =
  {|.title latching comparator front-end
.process p1u2
.param vddval=5
.param vcmval=2.5

.subckt preamp inp inm outp outm vdd vss
m1 outm inp ntail vss nmos w='w1' l='l1'
m2 outp inm ntail vss nmos w='w1' l='l1'
m3 outm nbp vdd vdd pmos w='w3' l='l3'
m4 outp nbp vdd vdd pmos w='w3' l='l3'
m5 ntail bp vss vss nmos w='w5' l='l5'
m6 bp bp vss vss nmos w='w5' l='l5'
iref vdd bp 'ib1'
vbp vdd nbp 'vb1'
.ends

.subckt gainstage inp inm outp outm vdd vss
m1 outm inp ntail vss nmos w='w7' l='l7'
m2 outp inm ntail vss nmos w='w7' l='l7'
m3 outm outm vdd vdd pmos w='w8' l='l8'
m4 outp outp vdd vdd pmos w='w8' l='l8'
m5 ntail bp vss vss nmos w='w9' l='l9'
m6 bp bp vss vss nmos w='w9' l='l9'
iref vdd bp 'ib2'
.ends

.subckt outstage in out vdd vss
m1 out in vss vss nmos w='w10' l='l10'
m2 out nbp vdd vdd pmos w='w11' l='l11'
vbp vdd nbp 'vb2'
.ends

.var w1 min=2u max=400u steps=120
.var l1 min=1.2u max=10u steps=50
.var w3 min=2u max=400u steps=120
.var l3 min=1.2u max=10u steps=50
.var w5 min=2u max=400u steps=120
.var l5 min=1.2u max=10u steps=50
.var w7 min=2u max=400u steps=120
.var l7 min=1.2u max=10u steps=50
.var w8 min=2u max=400u steps=120
.var l8 min=1.2u max=10u steps=50
.var w9 min=2u max=400u steps=120
.var l9 min=1.2u max=10u steps=50
.var w10 min=2u max=400u steps=120
.var l10 min=1.2u max=10u steps=50
.var w11 min=2u max=400u steps=120
.var l11 min=1.2u max=10u steps=50
.var ib1 min=2u max=1m grid=log
.var ib2 min=2u max=1m grid=log
.var vb1 min=0.3 max=2.5
.var vb2 min=0.3 max=2.5

.jig chain
xpre inp inm p1 p2 nvdd nvss preamp
xgs p1 p2 g1 g2 nvdd nvss gainstage
xout g1 o1 nvdd nvss outstage
vdd nvdd 0 'vddval'
vss nvss 0 0
vcm inm 0 'vcmval'
vin inp 0 'vcmval' ac 1
cl1 o1 0 200f
.pz tfc v(o1) vin
.endjig

.jig pre
xpre inp inm p1 p2 nvdd nvss preamp
vdd nvdd 0 'vddval'
vss nvss 0 0
vcm inm 0 'vcmval'
vin inp 0 'vcmval' ac 1
cp1 p1 0 100f
cp2 p2 0 100f
.pz tfp v(p2,p1) vin
.endjig

.jig psr
xpre inp inm p1 p2 nvdd nvss preamp
xgs p1 p2 g1 g2 nvdd nvss gainstage
xout g1 o1 nvdd nvss outstage
vdd nvdd 0 'vddval'
vss nvss 0 0
vcm inm 0 'vcmval'
vin inp 0 'vcmval'
cl1 o1 0 200f
.pz tfdd v(o1) vdd
.endjig

.bias
xpre inp inm p1 p2 nvdd nvss preamp
xgs p1 p2 g1 g2 nvdd nvss gainstage
xout g1 o1 nvdd nvss outstage
vdd nvdd 0 'vddval'
vss nvss 0 0
vcm inm 0 'vcmval'
vin inp 0 'vcmval'
cl1 o1 0 200f
.endbias

.obj speed 'bw3db(tfc)' good=100meg bad=1meg
.obj area 'area()' good=2000 bad=50000
.spec again 'db(dc_gain(tfc))' good=50 bad=20
.spec pregain 'db(dc_gain(tfp))' good=20 bad=5
.spec psr 'db(dc_gain(tfc)) - db(dc_gain(tfdd))' good=30 bad=5
.spec pwr 'power()' good=5m bad=30m
|}
