(* Simple OTA: the classic 5-transistor operational transconductance
   amplifier (differential NMOS pair, PMOS current-mirror load, mirrored
   tail current source). First column of Tables 1 and 2. *)

let name = "simple-ota"

(* The same topology parameterized by the process/model names so the
   Section-VI model-comparison experiment (BSIM/2u vs BSIM/1.2u vs
   MOS3/1.2u) reuses it verbatim. *)
let source_with ~process ~nmos ~pmos =
  Printf.sprintf
    {|.title simple OTA (5T)
.process %s
.param vddval=5
.param vcmval=2.5
.param cl=1p

.subckt amp inp inm out vdd vss
m1 n1 inp ntail vss %s w='w1' l='l1'
m2 out inm ntail vss %s w='w1' l='l1'
m3 n1 n1 vdd vdd %s w='w3' l='l3'
m4 out n1 vdd vdd %s w='w3' l='l3'
m5 ntail bp vss vss %s w='w5' l='l5'
m6 bp bp vss vss %s w='w5' l='l5'
iref vdd bp 'ib'
.ends

.var w1 min=2u max=400u steps=120
.var l1 min=1.2u max=20u steps=60
.var w3 min=2u max=400u steps=120
.var l3 min=1.2u max=20u steps=60
.var w5 min=2u max=400u steps=120
.var l5 min=1.2u max=20u steps=60
.var ib min=2u max=2m grid=log

.jig main
xamp inp inm out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vcm inm 0 'vcmval'
vin inp 0 'vcmval' ac 1
cl1 out 0 'cl'
.pz tf v(out) vin
.pz tfdd v(out) vdd
.pz tfss v(out) vss
.endjig

.bias
xamp inp inm out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vcm inm 0 'vcmval'
vin inp 0 'vcmval'
cl1 out 0 'cl'
.endbias

.obj adm 'db(dc_gain(tf))' good=40 bad=6
.obj area 'area()' good=500 bad=20000
.spec ugf 'ugf(tf)' good=50meg bad=1meg
.spec pm 'phase_margin(tf)' good=60 bad=20
.spec psrr_vss 'db(dc_gain(tf)) - db(dc_gain(tfss))' good=20 bad=0
.spec psrr_vdd 'db(dc_gain(tf)) - db(dc_gain(tfdd))' good=20 bad=0
.spec swing 'vddval - xamp.m4.vdsat - xamp.m2.vdsat - xamp.m5.vdsat' good=2.3 bad=1
.spec sr 'ib / (cl + xamp.m2.cd + xamp.m4.cd)' good=10e6 bad=1e6
.spec pwr 'power()' good=1m bad=10m
|}
    process nmos nmos pmos pmos nmos nmos

let source = source_with ~process:"p1u2" ~nmos:"nmos" ~pmos:"pmos"

(* Paper values for EXPERIMENTS.md side-by-side comparison (Table 2 col 1). *)
let paper_table2 =
  [
    ("adm", "maximize", 36.6, 36.6);
    ("ugf", ">=50Meg", 50.1e6, 50.6e6);
    ("pm", ">=60", 71.4, 74.8);
    ("psrr_vss", ">=20", 21.9, 21.9);
    ("psrr_vdd", ">=20", 36.8, 36.8);
    ("swing", ">=2.3", 3.7, 3.6);
    ("sr", ">=10V/us", 130e6, 131e6);
    ("area", "minimize", 2800.0, 2800.0);
    ("pwr", "<=1mW", 0.72e-3, 0.72e-3);
  ]
