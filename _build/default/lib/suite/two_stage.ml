(* Two-stage Miller-compensated op-amp: 5T first stage, common-source PMOS
   second stage, compensation capacitor with nulling resistor. Third
   column of Tables 1 and 2. *)

let name = "two-stage"

let source =
  {|.title two-stage miller op-amp
.process p1u2
.param vddval=5
.param vcmval=2.5
.param cl=1p

.subckt amp inp inm out vdd vss
m1 n1 inp ntail vss nmos w='w1' l='l1'
m2 n2 inm ntail vss nmos w='w1' l='l1'
m3 n1 n1 vdd vdd pmos w='w3' l='l3'
m4 n2 n1 vdd vdd pmos w='w3' l='l3'
m5 ntail bp vss vss nmos w='w5' l='l5'
m6 out n2 vdd vdd pmos w='w6' l='l6'
m7 out bp vss vss nmos w='w7' l='l5'
m8 bp bp vss vss nmos w='w5' l='l5'
iref vdd bp 'ib'
rz n2 nz 'rz'
cc nz out 'ccomp'
.ends

.var w1 min=2u max=400u steps=120
.var l1 min=1.2u max=20u steps=60
.var w3 min=2u max=400u steps=120
.var l3 min=1.2u max=20u steps=60
.var w5 min=2u max=400u steps=120
.var l5 min=1.2u max=20u steps=60
.var w6 min=2u max=800u steps=120
.var l6 min=1.2u max=20u steps=60
.var w7 min=2u max=800u steps=120
.var ib min=2u max=1m grid=log
.var ccomp min=50f max=20p grid=log
.var rz min=100 max=100k grid=log

.jig main
xamp inp inm out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vcm inm 0 'vcmval'
vin inp 0 'vcmval' ac 1
cl1 out 0 'cl'
.pz tf v(out) vin
.pz tfdd v(out) vdd
.pz tfss v(out) vss
.endjig

.bias
xamp inp inm out nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 0
vcm inm 0 'vcmval'
vin inp 0 'vcmval'
cl1 out 0 'cl'
.endbias

.obj area 'area()' good=800 bad=30000
.spec adm 'db(dc_gain(tf))' good=60 bad=20
.spec ugf 'ugf(tf)' good=10meg bad=200k
.spec pm 'phase_margin(tf)' good=45 bad=15
.spec psrr_vss 'db(dc_gain(tf)) - db(dc_gain(tfss))' good=20 bad=0
.spec psrr_vdd 'db(dc_gain(tf)) - db(dc_gain(tfdd))' good=40 bad=5
.spec swing 'vddval - xamp.m6.vdsat - xamp.m7.vdsat' good=2 bad=0.8
.spec sr 'ib / (ccomp + xamp.m2.cd + xamp.m4.cd)' good=2e6 bad=2e5
.spec pwr 'power()' good=1m bad=10m
|}

let paper_table2 =
  [
    ("adm", ">=60", 66.4, 66.4);
    ("ugf", ">=10Meg", 10.6e6, 10.6e6);
    ("pm", ">=45", 87.3, 86.5);
    ("psrr_vss", ">=20", 31.0, 30.9);
    ("psrr_vdd", ">=40", 45.8, 45.8);
    ("swing", ">=2", 2.7, 2.8);
    ("sr", ">=2V/us", 3.8e6, 4.0e6);
    ("area", "minimize", 2100.0, 2100.0);
    ("pwr", "<=1mW", 0.16e-3, 0.16e-3);
  ]
