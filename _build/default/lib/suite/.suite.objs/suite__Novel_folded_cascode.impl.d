lib/suite/novel_folded_cascode.ml:
