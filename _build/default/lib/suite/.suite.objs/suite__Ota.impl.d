lib/suite/ota.ml:
