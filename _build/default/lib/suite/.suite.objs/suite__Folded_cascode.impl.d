lib/suite/folded_cascode.ml:
