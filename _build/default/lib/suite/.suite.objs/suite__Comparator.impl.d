lib/suite/comparator.ml:
