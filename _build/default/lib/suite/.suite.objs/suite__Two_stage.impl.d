lib/suite/two_stage.ml:
