lib/suite/bicmos_two_stage.ml:
