lib/suite/simple_ota.ml: Printf
