lib/suite/ckts.ml: Bicmos_two_stage Comparator Folded_cascode List Novel_folded_cascode Ota Simple_ota Two_stage
