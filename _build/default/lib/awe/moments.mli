(** AWE moment generation.

    For the linearized system (G + sC) x(s) = b and output y = sel . x, the
    transfer function's Maclaurin coefficients ("moments") are
    m_k = sel . r_k with r_0 = G^-1 b and r_(k+1) = -G^-1 C r_k.

    G is LU-factored once; each further moment costs one matrix-vector
    product and one back-substitution — this is why AWE is orders of
    magnitude faster than frequency-by-frequency simulation. *)

(** [compute lin ~b ~sel ~count] returns the first [count] moments.
    A tiny diagonal regularization (1e-12 S) keeps G factorable when a node
    has no DC path (capacitor-only nodes).
    @raise Failure if G is singular beyond that. *)
val compute : Mna.Linearize.t -> b:La.Vec.t -> sel:La.Vec.t -> count:int -> float array

(** [factored lin] exposes the one-time factorization so callers evaluating
    many outputs against the same G can share it. *)
type factored

val factor : Mna.Linearize.t -> factored
val compute_with : factored -> b:La.Vec.t -> sel:La.Vec.t -> count:int -> float array
