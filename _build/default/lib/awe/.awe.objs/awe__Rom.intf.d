lib/awe/rom.mli: La Mna Moments Pade
