lib/awe/rom.ml: Array Float La List Moments Pade
