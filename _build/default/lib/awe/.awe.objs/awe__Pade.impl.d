lib/awe/pade.ml: Array Float Int La
