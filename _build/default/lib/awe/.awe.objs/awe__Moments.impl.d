lib/awe/moments.ml: Array La Mna
