lib/awe/pade.mli: La
