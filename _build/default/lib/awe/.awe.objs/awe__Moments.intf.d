lib/awe/moments.mli: La Mna
