type factored = { lu : La.Lu.t; c_sparse : La.Sparse.t }

let factor lin =
  let g = La.Mat.copy lin.Mna.Linearize.g in
  let n = La.Mat.rows g in
  for k = 0 to n - 1 do
    La.Mat.add_to g k k 1e-12
  done;
  (* The susceptance matrix is a few entries per device: the moment loop
     multiplies by it once per moment, so keep it in CSR. *)
  { lu = La.Lu.factor g; c_sparse = La.Sparse.of_dense lin.Mna.Linearize.c }

let compute_with f ~b ~sel ~count =
  let moments = Array.make count 0.0 in
  let r = La.Lu.solve f.lu b in
  moments.(0) <- La.Vec.dot sel r;
  let cur = ref r in
  let tmp = La.Vec.create (Array.length r) in
  for k = 1 to count - 1 do
    (* r_(k+1) = -G^-1 C r_k *)
    La.Sparse.mul_vec_into f.c_sparse !cur tmp;
    La.Lu.solve_in_place f.lu tmp;
    for i = 0 to Array.length tmp - 1 do
      tmp.(i) <- -.tmp.(i)
    done;
    moments.(k) <- La.Vec.dot sel tmp;
    Array.blit tmp 0 !cur 0 (Array.length tmp)
  done;
  moments

let compute lin ~b ~sel ~count = compute_with (factor lin) ~b ~sel ~count
