(** Padé approximation of a moment series: fit a strictly proper q-pole
    model H(s) = sum_i k_i / (s - p_i) whose first 2q Maclaurin
    coefficients match the given moments.

    Moments are rescaled internally (s -> s/w0) before the Hankel solve;
    AWE moments for MHz-range circuits otherwise span hundreds of orders of
    magnitude and destroy the conditioning. *)

type rom = {
  poles : La.Cpx.t array;
  residues : La.Cpx.t array;
  q : int;
  scale : float;  (** the frequency scale w0 used internally, rad/s *)
}

(** [fit ~q moments] requires [Array.length moments >= 2q].
    Errors: singular Hankel system, degenerate root-finding. *)
val fit : q:int -> float array -> (rom, string) result

(** Numerator/denominator coefficients in the internally rescaled domain —
    the cheap first phase of [fit], before any root finding. *)
type coeffs = { qpoly : La.Poly.t; ppoly : La.Poly.t; w0 : float }

val fit_coeffs : q:int -> float array -> (coeffs, string) result

(** [series_matches c moments ~q ~tol] checks by power-series division
    (no roots needed) that P/Q reproduces the first 2q scaled moments. *)
val series_matches : coeffs -> float array -> q:int -> tol:float -> bool

(** [routh_stable qpoly] is the Routh-Hurwitz left-half-plane test on a
    denominator polynomial (ascending coefficients) — stability screening
    with no root finding. Degenerate Routh arrays report unstable. *)
val routh_stable : La.Poly.t -> bool

(** [rom_of_coeffs c ~q] finds poles and residues for a verified fit. *)
val rom_of_coeffs : coeffs -> q:int -> (rom, string) result

(** [moment rom k] is the k-th Maclaurin coefficient of the fitted model —
    used to verify the fit against the input moments. *)
val moment : rom -> int -> float

(** [eval rom ~w] is H(jw). *)
val eval : rom -> w:float -> La.Cpx.t

(** [stable rom] is true when every pole has a negative real part. *)
val stable : rom -> bool
