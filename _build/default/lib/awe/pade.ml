type rom = { poles : La.Cpx.t array; residues : La.Cpx.t array; q : int; scale : float }

(* Fit in a rescaled frequency domain: with s = w0 * s', the scaled moments
   are m'_k = m_k * w0^k and are O(1) near the dominant pole. *)
let pick_scale moments =
  if Array.length moments >= 2 && moments.(1) <> 0.0 && moments.(0) <> 0.0 then
    Float.abs (moments.(0) /. moments.(1))
  else 1.0

type coeffs = { qpoly : La.Poly.t; ppoly : La.Poly.t; w0 : float }

let fit_coeffs ~q moments =
  if Array.length moments < 2 * q then Error "pade: not enough moments"
  else if q < 1 then Error "pade: order must be >= 1"
  else begin
    let w0 = pick_scale moments in
    let m = Array.mapi (fun k v -> v *. (w0 ** float_of_int k)) moments in
    (* Solve for denominator coefficients a_1..a_q of
       Q(s) = 1 + a1 s + ... + aq s^q from the moment-cancellation rows. *)
    let a_mat = La.Mat.init q q (fun r c -> m.(q + r - (c + 1))) in
    let rhs = Array.init q (fun r -> -.m.(q + r)) in
    match La.Lu.factor a_mat with
    | exception La.Lu.Singular _ -> Error "pade: singular Hankel system"
    | lu ->
        let a = La.Lu.solve lu rhs in
        if not (Array.for_all Float.is_finite a) then Error "pade: non-finite fit"
        else begin
          let qpoly = Array.make (q + 1) 0.0 in
          qpoly.(0) <- 1.0;
          for j = 1 to q do
            qpoly.(j) <- a.(j - 1)
          done;
          (* Numerator: p_t = sum_{j=0..t} a_j m_(t-j), t < q, a_0 = 1. *)
          let ppoly =
            Array.init q (fun t ->
                let acc = ref m.(t) in
                for j = 1 to Int.min t q do
                  acc := !acc +. (qpoly.(j) *. m.(t - j))
                done;
                !acc)
          in
          Ok { qpoly; ppoly; w0 }
        end
  end

(* Power-series division: c_k of P/Q, compared against the scaled input
   moments — validates the fit without any root finding. *)
let series_matches c moments ~q ~tol =
  let n = 2 * q in
  let m = Array.init n (fun k -> moments.(k) *. (c.w0 ** float_of_int k)) in
  let coef = Array.make n 0.0 in
  let ok = ref true in
  for k = 0 to n - 1 do
    let p_k = if k < Array.length c.ppoly then c.ppoly.(k) else 0.0 in
    let acc = ref p_k in
    for j = 1 to Int.min k (Array.length c.qpoly - 1) do
      acc := !acc -. (c.qpoly.(j) *. coef.(k - j))
    done;
    coef.(k) <- !acc;
    let scale = Float.abs m.(k) +. (1e-12 *. Float.abs m.(0)) +. 1e-300 in
    if Float.abs (coef.(k) -. m.(k)) /. scale > tol then ok := false
  done;
  !ok

(* Routh-Hurwitz stability test on the denominator — decides left-half-
   plane pole placement from the coefficients alone, so unstable candidate
   orders can be rejected without any root finding. Degenerate rows are
   reported as unstable (the caller just tries a lower order). *)
let routh_stable qpoly =
  let d = La.Poly.degree qpoly in
  if d < 1 then true
  else begin
    (* Normalize sign so the leading coefficient is positive. *)
    let s = if qpoly.(d) > 0.0 then 1.0 else -1.0 in
    (* All coefficients must be strictly positive (necessary condition). *)
    let all_pos = ref true in
    for k = 0 to d do
      if s *. qpoly.(k) <= 0.0 then all_pos := false
    done;
    if not !all_pos then false
    else begin
      (* Rows are indexed by descending powers: row0 = d, d-2, ...;
         row1 = d-1, d-3, ... *)
      let width = (d / 2) + 1 in
      let row0 = Array.make width 0.0 and row1 = Array.make width 0.0 in
      for j = 0 to width - 1 do
        let k0 = d - (2 * j) in
        if k0 >= 0 then row0.(j) <- s *. qpoly.(k0);
        let k1 = d - 1 - (2 * j) in
        if k1 >= 0 then row1.(j) <- s *. qpoly.(k1)
      done;
      let rec step prev cur rows_left ok =
        if (not ok) || rows_left = 0 then ok
        else begin
          let pivot = cur.(0) in
          if pivot <= 0.0 || not (Float.is_finite pivot) then false
          else begin
            let next = Array.make width 0.0 in
            for j = 0 to width - 2 do
              next.(j) <- ((cur.(0) *. prev.(j + 1)) -. (prev.(0) *. cur.(j + 1))) /. cur.(0)
            done;
            step cur next (rows_left - 1) ok
          end
        end
      in
      step row0 row1 (d - 1) true
    end
  end

let rom_of_coeffs c ~q =
  match La.Roots.find c.qpoly with
  | exception Failure msg -> Error ("pade: " ^ msg)
  | poles_scaled ->
      if Array.length poles_scaled <> q then Error "pade: wrong root count"
      else if not (Array.for_all La.Cpx.is_finite poles_scaled) then
        Error "pade: non-finite poles"
      else begin
        let dq = La.Poly.derivative c.qpoly in
        let residues_scaled =
          Array.map
            (fun p ->
              let num = La.Poly.eval_cpx c.ppoly p in
              let den = La.Poly.eval_cpx dq p in
              if La.Cpx.abs den < 1e-30 then La.Cpx.zero else La.Cpx.div num den)
            poles_scaled
        in
        let poles = Array.map (fun p -> La.Cpx.scale c.w0 p) poles_scaled in
        let residues = Array.map (fun k -> La.Cpx.scale c.w0 k) residues_scaled in
        if Array.for_all La.Cpx.is_finite residues then Ok { poles; residues; q; scale = c.w0 }
        else Error "pade: non-finite residues"
      end

let fit ~q moments =
  match fit_coeffs ~q moments with
  | Error e -> Error e
  | Ok c -> rom_of_coeffs c ~q

let moment rom k =
  (* m_k = - sum_i k_i / p_i^(k+1) *)
  let acc = ref La.Cpx.zero in
  Array.iteri
    (fun i p ->
      let pk = ref La.Cpx.one in
      for _ = 0 to k do
        pk := La.Cpx.mul !pk p
      done;
      acc := La.Cpx.sub !acc (La.Cpx.div rom.residues.(i) !pk))
    rom.poles;
  !acc.La.Cpx.re

let eval rom ~w =
  let jw = La.Cpx.make 0.0 w in
  let acc = ref La.Cpx.zero in
  Array.iteri
    (fun i p -> acc := La.Cpx.add !acc (La.Cpx.div rom.residues.(i) (La.Cpx.sub jw p)))
    rom.poles;
  !acc

let stable rom = Array.for_all (fun p -> p.La.Cpx.re < 0.0) rom.poles
