(** The cost-function evaluator ASTRX compiles: given a design state x it
    produces the bias point (device operating points + KCL residuals of the
    relaxed-dc formulation), the AWE reduced-order models of every test-jig
    transfer function, the measured specification values, and the scalar
    cost C(x) of paper eq. (5):

    C(x) = C_obj + C_perf + C_dev + C_dc *)

type bias_point = {
  node_v : float array;  (** absolute voltage per bias-circuit node *)
  ops : (string * Mna.Dc.op_info) list;
  residuals : float array;  (** KCL residual (A) per free variable *)
  res_scale : float array;  (** sum of |branch currents| per free variable *)
  node_leaving : float array;
      (** per node, total current leaving into non-source elements — used
          by the [supply_current] spec function *)
}

(** [value_env p st] evaluates element-value expressions: user variables,
    parameters, and built-in math. *)
val value_env : Problem.t -> State.t -> Netlist.Expr.env

(** [node_voltages p st] maps the tree-link assignment onto the state. *)
val node_voltages : Problem.t -> State.t -> float array

val bias_point : Problem.t -> State.t -> bias_point

(** [residuals_quick p st] recomputes only the KCL residual vector — the
    inner loop of Newton-Raphson moves. *)
val residuals_quick : Problem.t -> State.t -> float array

exception Measurement_failed of string

(** [op_field op name] reads one named quantity ([gm], [cd], [vdsat], ...)
    from a device operating point — the resolution of dotted references
    like [xamp.m1.cd] in specification expressions. *)
val op_field : Mna.Dc.op_info -> string -> float

(** [active_area_um2 p st] is the summed device area of the circuit under
    design, square microns. *)
val active_area_um2 : Problem.t -> State.t -> float

type measured = {
  bias : bias_point;
  roms : (string * (Awe.Rom.t, string) result) list;  (** per transfer function *)
  spec_values : (string * float option) list;  (** None = measurement failed *)
}

val measure : Problem.t -> State.t -> measured

type breakdown = {
  c_obj : float;
  c_perf : float;
  c_dev : float;
  c_dc : float;
  total : float;
  measured : measured;
}

(** [cost p w st] — the full evaluation, with [w] the current adaptive
    weights. *)
val cost : Problem.t -> Weights.t -> State.t -> breakdown

(** [cost_scalar] is [cost] without keeping the breakdown. *)
val cost_scalar : Problem.t -> Weights.t -> State.t -> float

(** Normalized spec terms, exposed for the adaptive-weight controller:
    objective contributions and penalty contributions before weighting. *)
val raw_terms : Problem.t -> State.t -> measured -> float * float * float * float

(** [cost_of_spec_values p vals] is the (objective, penalty) pair from the
    good/bad normalization alone — shared with the simulation-based
    baseline optimizer, which has no relaxed-dc or device-region terms. *)
val cost_of_spec_values :
  Problem.t -> (string * float option) list -> float * float
