let eng v =
  if Float.abs v >= 0.9995e9 then Printf.sprintf "%.3gg" (v /. 1e9)
  else if Float.abs v >= 0.9995e6 then Printf.sprintf "%.3gmeg" (v /. 1e6)
  else if Float.abs v >= 0.9995e3 then Printf.sprintf "%.3gk" (v /. 1e3)
  else if v = 0.0 then "0"
  else if Float.abs v >= 1.0 then Printf.sprintf "%.4g" v
  else if Float.abs v >= 1e-3 then Printf.sprintf "%.3gm" (v *. 1e3)
  else if Float.abs v >= 1e-6 then Printf.sprintf "%.3gu" (v *. 1e6)
  else if Float.abs v >= 1e-9 then Printf.sprintf "%.3gn" (v *. 1e9)
  else if Float.abs v >= 1e-12 then Printf.sprintf "%.3gp" (v *. 1e12)
  else Printf.sprintf "%.3g" v

let goal_text (s : Problem.spec) =
  match s.kind with
  | Netlist.Ast.Objective_max -> "maximize"
  | Netlist.Ast.Objective_min -> "minimize"
  | Netlist.Ast.Constraint_ge -> ">=" ^ eng s.good
  | Netlist.Ast.Constraint_le -> "<=" ^ eng s.good

let spec_row (s : Problem.spec) ~predicted ~simulated =
  let p = match predicted with Some v -> eng v | None -> "fail" in
  let m =
    match simulated with
    | Some (Ok v) -> eng v
    | Some (Error _) -> "fail"
    | None -> "-"
  in
  Printf.sprintf "%-10s %-12s %10s / %-10s" s.spec_name (goal_text s) p m

let sizes (p : Problem.t) (st : State.t) =
  let n = Problem.n_user_vars p in
  List.init n (fun i ->
      match st.State.info.(i) with
      | State.User { name; _ } -> (name, st.State.values.(i))
      | State.Node_voltage _ -> assert false)

let print_sizes ppf p st =
  List.iter (fun (name, v) -> Format.fprintf ppf "  %-8s = %s@\n" name (eng v)) (sizes p st)

let analysis_row name (a : Problem.analysis) =
  Printf.sprintf "%-22s %4d %4d %5d %5d %5d %6d %4d %4d  %s" name a.input_netlist_lines
    a.input_synth_lines a.n_user_vars a.n_node_vars a.n_cost_terms a.lines_of_c a.bias_nodes
    a.bias_elements
    (String.concat " "
       (List.map (fun (j, n_, e) -> Printf.sprintf "%s:(%d,%d)" j n_ e) a.awe_circuits))

let sized_netlist (p : Problem.t) (st : State.t) =
  let env = Eval.value_env p st in
  let value e = Netlist.Expr.eval env e in
  let c = p.Problem.bias in
  let node n = c.Netlist.Circuit.node_names.(n) in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "* %s -- sized by OBLX" p.Problem.title;
  (* Internal template nodes look like "name#d"; the channel device behind
     them is emitted at its *external* nodes, and the template resistors
     are dropped: they are part of the device model. *)
  let is_template_node n = String.contains (node n) '#' in
  let external_of n =
    if not (is_template_node n) then n
    else begin
      (* name#d connects through resistor name#rd to the external node *)
      let target = node n in
      let rec scan k =
        if k >= Array.length c.Netlist.Circuit.elements then n
        else
          match c.Netlist.Circuit.elements.(k) with
          | Netlist.Circuit.Resistor { name; n1; n2; _ }
            when String.contains name '#' && (n1 = n || n2 = n) ->
              ignore target;
              if n1 = n then n2 else n1
          | Netlist.Circuit.Resistor _ | Netlist.Circuit.Capacitor _
          | Netlist.Circuit.Inductor _ | Netlist.Circuit.Vsource _ | Netlist.Circuit.Isource _
          | Netlist.Circuit.Vcvs _ | Netlist.Circuit.Vccs _ | Netlist.Circuit.Cccs _
          | Netlist.Circuit.Ccvs _ | Netlist.Circuit.Mosfet _ | Netlist.Circuit.Bjt _ ->
              scan (k + 1)
      in
      scan 0
    end
  in
  Array.iter
    (fun (e : Netlist.Circuit.element) ->
      match e with
      | Netlist.Circuit.Resistor { name; n1; n2; value = ve } ->
          if not (String.contains name '#') then
            add "r%s %s %s %s" name (node n1) (node n2) (eng (value ve))
      | Netlist.Circuit.Capacitor { name; n1; n2; value = ve } ->
          add "c%s %s %s %s" name (node n1) (node n2) (eng (value ve))
      | Netlist.Circuit.Inductor { name; n1; n2; value = ve } ->
          add "l%s %s %s %s" name (node n1) (node n2) (eng (value ve))
      | Netlist.Circuit.Vsource { name; np; nn; dc; _ } ->
          add "v%s %s %s %s" name (node np) (node nn) (eng (value dc))
      | Netlist.Circuit.Isource { name; np; nn; dc; _ } ->
          add "i%s %s %s %s" name (node np) (node nn) (eng (value dc))
      | Netlist.Circuit.Vcvs { name; np; nn; ncp; ncn; gain } ->
          add "e%s %s %s %s %s %g" name (node np) (node nn) (node ncp) (node ncn) (value gain)
      | Netlist.Circuit.Vccs { name; np; nn; ncp; ncn; gm } ->
          add "g%s %s %s %s %s %g" name (node np) (node nn) (node ncp) (node ncn) (value gm)
      | Netlist.Circuit.Cccs { name; np; nn; vsrc; gain } ->
          add "f%s %s %s %s %g" name (node np) (node nn) vsrc (value gain)
      | Netlist.Circuit.Ccvs { name; np; nn; vsrc; r } ->
          add "h%s %s %s %s %g" name (node np) (node nn) vsrc (value r)
      | Netlist.Circuit.Mosfet { name; d; g; s; b; model; w; l; mult } ->
          add "m%s %s %s %s %s %s w=%s l=%s m=%g" name
            (node (external_of d)) (node g) (node (external_of s)) (node b) model
            (eng (value w)) (eng (value l)) (value mult)
      | Netlist.Circuit.Bjt { name; c = nc; b; e = ne; model; area } ->
          add "q%s %s %s %s %s %g" name (node nc) (node b) (node ne) model (value area))
    c.Netlist.Circuit.elements;
  add ".end";
  Buffer.contents buf
