(** Post-synthesis sensitivity analysis: how much each specification moves
    per fractional change of each design variable, at a finished design
    point. Useful for judging robustness (a companion to {!Corners}) and
    for spotting which device dominates a failing margin.

    Sensitivities are normalized logarithmic derivatives
    S = (dSpec/Spec) / (dVar/Var), estimated by central differences with
    the bias network re-solved at each perturbed point. *)

type t = {
  spec_names : string array;
  var_names : string array;
  matrix : float array array;  (** [spec][var], nan when unmeasurable *)
}

(** [compute ?rel_step p st] — [rel_step] is the fractional perturbation
    (default 2%). Discrete variables are perturbed by whole grid steps. *)
val compute : ?rel_step:float -> Problem.t -> State.t -> t

(** [dominant t ~spec n] lists the [n] variables with the largest
    |sensitivity| for a spec. *)
val dominant : t -> spec:string -> int -> (string * float) list

val pp : Format.formatter -> t -> unit
