type bias_point = {
  node_v : float array;
  ops : (string * Mna.Dc.op_info) list;
  residuals : float array;
  res_scale : float array;
  node_leaving : float array;
      (* per bias node: total current leaving into non-source elements *)
}

exception Measurement_failed of string

(* --- Element-value environment: state variables, parameters, math. --- *)

let value_env (p : Problem.t) (st : State.t) =
  let rec lookup seen path =
    match path with
    | [ name ] -> begin
        match State.lookup_value st name with
        | v -> v
        | exception Not_found -> begin
            match List.assoc_opt name p.Problem.params with
            | Some e ->
                if List.mem name seen then
                  raise (Netlist.Expr.Eval_error ("parameter cycle at " ^ name))
                else
                  Netlist.Expr.eval
                    { Netlist.Expr.lookup = lookup (name :: seen); call = Builtin.math_call }
                    e
            | None -> raise Not_found
          end
      end
    | _ -> raise Not_found
  in
  { Netlist.Expr.lookup = lookup []; call = Builtin.math_call }

(* --- Node voltages from the tree-link assignment. --- *)

let node_voltages (p : Problem.t) (st : State.t) =
  let env = value_env p st in
  let base = Problem.node_var_base p in
  Array.map
    (fun a ->
      match a with
      | Treelink.Fixed e -> Netlist.Expr.eval env e
      | Treelink.Free (k, off) -> st.State.values.(base + k) +. Netlist.Expr.eval env off)
    p.Problem.tl.Treelink.of_node

(* --- KCL currents over the bias network. ---

   [currents] accumulates, per node, the sum of currents leaving the node
   into elements (voltage sources excluded: inside a supernode they cancel)
   and the sum of magnitudes (the normalization scale). Device operating
   points fall out of the same sweep. *)

let sweep_bias (p : Problem.t) (st : State.t) ~want_ops =
  let env = value_env p st in
  let value e = Netlist.Expr.eval env e in
  let nv = node_voltages p st in
  let n = Array.length nv in
  let cur = Array.make n 0.0 in
  let mag = Array.make n 0.0 in
  let ops = ref [] in
  let flow node i =
    cur.(node) <- cur.(node) +. i;
    mag.(node) <- mag.(node) +. Float.abs i
  in
  Array.iter
    (fun (e : Netlist.Circuit.element) ->
      match e with
      | Netlist.Circuit.Resistor { n1; n2; value = ve; _ } ->
          let i = (nv.(n1) -. nv.(n2)) /. value ve in
          flow n1 i;
          flow n2 (-.i)
      | Netlist.Circuit.Capacitor _ -> ()
      | Netlist.Circuit.Vsource _ -> ()
      | Netlist.Circuit.Isource { np; nn; dc; _ } ->
          let i = value dc in
          flow np i;
          flow nn (-.i)
      | Netlist.Circuit.Vccs { np; nn; ncp; ncn; gm; _ } ->
          let i = value gm *. (nv.(ncp) -. nv.(ncn)) in
          flow np i;
          flow nn (-.i)
      | Netlist.Circuit.Mosfet { name; d; g; s; b; model; w; l; mult } -> begin
          match Devices.Registry.find_exn p.Problem.registry model with
          | Devices.Sig.Mos { eval; _ } ->
              let op =
                eval ~w:(value w) ~l:(value l) ~m:(value mult) ~vd:nv.(d) ~vg:nv.(g)
                  ~vs:nv.(s) ~vb:nv.(b)
              in
              let open Devices.Sig in
              flow d op.id_;
              flow s (-.op.id_);
              flow b (op.ibd_ +. op.ibs_);
              flow d (-.op.ibd_);
              flow s (-.op.ibs_);
              if want_ops then ops := (name, Mna.Dc.Mos_op op) :: !ops
          | Devices.Sig.Bjt _ -> failwith (name ^ ": MOS element with BJT model")
        end
      | Netlist.Circuit.Bjt { name; c; b; e = ne; model; area } -> begin
          match Devices.Registry.find_exn p.Problem.registry model with
          | Devices.Sig.Bjt { eval; _ } ->
              let op = eval ~area:(value area) ~vc:nv.(c) ~vb:nv.(b) ~ve:nv.(ne) in
              let open Devices.Sig in
              flow c op.ic;
              flow b op.ib;
              flow ne (-.(op.ic +. op.ib));
              if want_ops then ops := (name, Mna.Dc.Bjt_op op) :: !ops
          | Devices.Sig.Mos _ -> failwith (name ^ ": BJT element with MOS model")
        end
      | Netlist.Circuit.Inductor { name; _ }
      | Netlist.Circuit.Vcvs { name; _ }
      | Netlist.Circuit.Cccs { name; _ }
      | Netlist.Circuit.Ccvs { name; _ } ->
          failwith (name ^ ": unsupported element in bias network"))
    p.Problem.bias.Netlist.Circuit.elements;
  (nv, cur, mag, List.rev !ops)

let group_residuals (p : Problem.t) cur mag =
  let tl = p.Problem.tl in
  let residuals = Array.make tl.Treelink.n_free 0.0 in
  let scale = Array.make tl.Treelink.n_free 0.0 in
  Array.iteri
    (fun k members ->
      List.iter
        (fun node ->
          residuals.(k) <- residuals.(k) +. cur.(node);
          scale.(k) <- scale.(k) +. mag.(node))
        members)
    tl.Treelink.members;
  (residuals, scale)

let bias_point p st =
  let nv, cur, mag, ops = sweep_bias p st ~want_ops:true in
  let residuals, res_scale = group_residuals p cur mag in
  { node_v = nv; ops; residuals; res_scale; node_leaving = cur }

let residuals_quick p st =
  let _, cur, mag, _ = sweep_bias p st ~want_ops:false in
  let residuals, _ = group_residuals p cur mag in
  residuals

(* --- Measurements over the AWE circuits. --- *)

type measured = {
  bias : bias_point;
  roms : (string * (Awe.Rom.t, string) result) list;
  spec_values : (string * float option) list;
}

(* Fields of a device operating point addressable from spec expressions. *)
let op_field (op : Mna.Dc.op_info) field =
  match (op, field) with
  | Mna.Dc.Mos_op o, "id" -> Float.abs o.Devices.Sig.id_
  | Mna.Dc.Mos_op o, "gm" -> o.Devices.Sig.gm
  | Mna.Dc.Mos_op o, "gds" -> o.Devices.Sig.gds
  | Mna.Dc.Mos_op o, "gmbs" -> o.Devices.Sig.gmbs
  | Mna.Dc.Mos_op o, "vth" -> o.Devices.Sig.vth
  | Mna.Dc.Mos_op o, "vdsat" -> o.Devices.Sig.vdsat
  | Mna.Dc.Mos_op o, "vgst" -> o.Devices.Sig.vgst
  | Mna.Dc.Mos_op o, "vds" -> o.Devices.Sig.vds_mag
  | Mna.Dc.Mos_op o, "cgs" -> o.Devices.Sig.cgs
  | Mna.Dc.Mos_op o, "cgd" -> o.Devices.Sig.cgd
  | Mna.Dc.Mos_op o, "cgb" -> o.Devices.Sig.cgb
  | Mna.Dc.Mos_op o, "cbd" -> o.Devices.Sig.cbd
  | Mna.Dc.Mos_op o, "cbs" -> o.Devices.Sig.cbs
  | Mna.Dc.Mos_op o, "cd" -> o.Devices.Sig.cgd +. o.Devices.Sig.cbd
  | Mna.Dc.Mos_op o, "cs" -> o.Devices.Sig.cgs +. o.Devices.Sig.cbs
  | Mna.Dc.Mos_op o, "cg" -> o.Devices.Sig.cgs +. o.Devices.Sig.cgd +. o.Devices.Sig.cgb
  | Mna.Dc.Bjt_op o, "ic" -> Float.abs o.Devices.Sig.ic
  | Mna.Dc.Bjt_op o, "ib" -> Float.abs o.Devices.Sig.ib
  | Mna.Dc.Bjt_op o, "gm" -> o.Devices.Sig.bjt_gm
  | Mna.Dc.Bjt_op o, "gpi" -> o.Devices.Sig.gpi
  | Mna.Dc.Bjt_op o, "go" -> o.Devices.Sig.go
  | Mna.Dc.Bjt_op o, "cpi" -> o.Devices.Sig.cpi
  | Mna.Dc.Bjt_op o, "cmu" -> o.Devices.Sig.cmu
  | Mna.Dc.Bjt_op o, "ccs" -> o.Devices.Sig.ccs
  | Mna.Dc.Bjt_op o, "vbe" -> o.Devices.Sig.vbe_f
  | (Mna.Dc.Mos_op _ | Mna.Dc.Bjt_op _), f -> raise (Measurement_failed ("unknown op field " ^ f))

(* Active area of the circuit under design, reported in square microns:
   W*L*m per MOS plus a nominal per-unit-area footprint for BJTs. *)
let bjt_unit_area_um2 = 400.0

let active_area_um2 (p : Problem.t) (st : State.t) =
  let env = value_env p st in
  let value e = Netlist.Expr.eval env e in
  Array.fold_left
    (fun acc (e : Netlist.Circuit.element) ->
      match e with
      | Netlist.Circuit.Mosfet { w; l; mult; _ } ->
          acc +. (value w *. value l *. value mult *. 1e12)
      | Netlist.Circuit.Bjt { area; _ } -> acc +. (value area *. bjt_unit_area_um2)
      | Netlist.Circuit.Resistor _ | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Inductor _
      | Netlist.Circuit.Vsource _ | Netlist.Circuit.Isource _ | Netlist.Circuit.Vcvs _
      | Netlist.Circuit.Vccs _ | Netlist.Circuit.Cccs _ | Netlist.Circuit.Ccvs _ ->
          acc)
    0.0 p.Problem.bias.Netlist.Circuit.elements

(* Static power: total dissipation over the bias network, which equals the
   supply-delivered power once KCL holds. *)
let static_power (p : Problem.t) (st : State.t) (bp : bias_point) =
  let env = value_env p st in
  let value e = Netlist.Expr.eval env e in
  let nv = bp.node_v in
  Array.fold_left
    (fun acc (e : Netlist.Circuit.element) ->
      match e with
      | Netlist.Circuit.Resistor { n1; n2; value = ve; _ } ->
          let dv = nv.(n1) -. nv.(n2) in
          acc +. (dv *. dv /. value ve)
      | Netlist.Circuit.Mosfet { name; d; s; _ } -> begin
          match List.assoc_opt name bp.ops with
          | Some (Mna.Dc.Mos_op o) -> acc +. Float.abs (o.Devices.Sig.id_ *. (nv.(d) -. nv.(s)))
          | Some (Mna.Dc.Bjt_op _) | None -> acc
        end
      | Netlist.Circuit.Bjt { name; c; b; e = ne; _ } -> begin
          match List.assoc_opt name bp.ops with
          | Some (Mna.Dc.Bjt_op o) ->
              acc
              +. Float.abs (o.Devices.Sig.ic *. (nv.(c) -. nv.(ne)))
              +. Float.abs (o.Devices.Sig.ib *. (nv.(b) -. nv.(ne)))
          | Some (Mna.Dc.Mos_op _) | None -> acc
        end
      | Netlist.Circuit.Isource { np; nn; dc; _ } ->
          acc +. Float.abs (value dc *. (nv.(np) -. nv.(nn)))
      | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Inductor _ | Netlist.Circuit.Vsource _
      | Netlist.Circuit.Vcvs _ | Netlist.Circuit.Vccs _ | Netlist.Circuit.Cccs _
      | Netlist.Circuit.Ccvs _ ->
          acc)
    0.0 p.Problem.bias.Netlist.Circuit.elements

let build_roms (p : Problem.t) (st : State.t) (bp : bias_point) =
  let env = value_env p st in
  let value e = Netlist.Expr.eval env e in
  let ops name = List.assoc_opt name bp.ops in
  List.concat_map
    (fun (j : Problem.jig) ->
      match Mna.Linearize.build ~value ~ops j.jig_circuit with
      | lin ->
          let fac = Awe.Moments.factor lin in
          List.map
            (fun (tfname, (tf : Problem.tf)) ->
              let rom =
                try
                  let b = Mna.Linearize.excitation_of lin ~src:tf.src in
                  let sel =
                    Mna.Linearize.output_vector lin ~pos:tf.out_pos ~neg:tf.out_neg
                  in
                  Awe.Rom.build_with fac ~b ~sel
                with
                | Failure m -> Error m
                | La.Lu.Singular _ -> Error "singular AWE system"
              in
              (tfname, rom))
            j.tfs
      | exception Failure m ->
          List.map (fun (tfname, _) -> (tfname, Error m)) j.tfs)
    p.Problem.jigs

let rom_of roms tfname =
  match List.assoc_opt tfname roms with
  | Some (Ok r) -> r
  | Some (Error m) -> raise (Measurement_failed (tfname ^ ": " ^ m))
  | None -> raise (Measurement_failed ("unknown transfer function " ^ tfname))

(* Spec-expression environment: element values plus device operating-point
   references plus the AWE measurement functions. *)
let spec_env (p : Problem.t) (st : State.t) (bp : bias_point) roms =
  let base = value_env p st in
  let lookup path =
    match path with
    | [ _ ] -> base.Netlist.Expr.lookup path
    | [] -> raise Not_found
    | parts -> begin
        (* device ref: all but the last segment name the element *)
        let rec split_last acc = function
          | [ last ] -> (List.rev acc, last)
          | x :: rest -> split_last (x :: acc) rest
          | [] -> assert false
        in
        let devparts, field = split_last [] parts in
        let devname = String.concat "." devparts in
        match List.assoc_opt devname bp.ops with
        | Some op -> op_field op field
        | None -> raise Not_found
      end
  in
  let call name args =
    let tfarg = function
      | Netlist.Expr.Name n -> n
      | Netlist.Expr.Num _ ->
          raise (Measurement_failed (name ^ ": expected a transfer-function name"))
    in
    let numarg = function
      | Netlist.Expr.Num v -> v
      | Netlist.Expr.Name n -> raise (Measurement_failed (name ^ ": unexpected name " ^ n))
    in
    match (name, args) with
    | "dc_gain", [ tf ] -> Awe.Rom.dc_gain (rom_of roms (tfarg tf))
    | "ugf", [ tf ] -> Option.value ~default:0.0 (Awe.Rom.unity_gain_freq (rom_of roms (tfarg tf)))
    | ("phase_margin" | "pm"), [ tf ] ->
        Option.value ~default:180.0 (Awe.Rom.phase_margin (rom_of roms (tfarg tf)))
    | "gain_at", [ tf; f ] -> Awe.Rom.magnitude_at (rom_of roms (tfarg tf)) ~f:(numarg f)
    | "bw3db", [ tf ] -> Option.value ~default:0.0 (Awe.Rom.bandwidth_3db (rom_of roms (tfarg tf)))
    | "pole1", [ tf ] ->
        Option.value ~default:0.0 (Awe.Rom.dominant_pole_hz (rom_of roms (tfarg tf)))
    | "gain_margin_db", [ tf ] ->
        Option.value ~default:60.0 (Awe.Rom.gain_margin_db (rom_of roms (tfarg tf)))
    | "area", [] -> active_area_um2 p st
    | "power", [] -> static_power p st bp
    | "supply_current", [ src ] -> begin
        (* Current delivered by a bias-network voltage source: by KCL the
           source carries minus the sum of the other currents leaving its
           + node (approximate if several sources share the node). *)
        let srcname =
          match src with
          | Netlist.Expr.Name n -> n
          | Netlist.Expr.Num _ ->
              raise (Measurement_failed "supply_current: expected a source name")
        in
        match Netlist.Circuit.find_element p.Problem.bias srcname with
        | Netlist.Circuit.Vsource { np; _ } -> Float.abs bp.node_leaving.(np)
        | Netlist.Circuit.Resistor _ | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Inductor _
        | Netlist.Circuit.Isource _ | Netlist.Circuit.Vcvs _ | Netlist.Circuit.Vccs _
        | Netlist.Circuit.Cccs _ | Netlist.Circuit.Ccvs _ | Netlist.Circuit.Mosfet _
        | Netlist.Circuit.Bjt _ ->
            raise (Measurement_failed ("supply_current: " ^ srcname ^ " is not a V source"))
        | exception Not_found ->
            raise (Measurement_failed ("supply_current: unknown source " ^ srcname))
      end
    | _ -> begin
        try Builtin.math_call name args
        with Builtin.Unknown_function f -> raise (Measurement_failed ("unknown function " ^ f))
      end
  in
  { Netlist.Expr.lookup; call }

let measure (p : Problem.t) (st : State.t) =
  let bp = bias_point p st in
  let roms = build_roms p st bp in
  let env = spec_env p st bp roms in
  let spec_values =
    List.map
      (fun (s : Problem.spec) ->
        let v =
          try Some (Netlist.Expr.eval env s.expr) with
          | Measurement_failed _ -> None
          | Netlist.Expr.Eval_error _ -> None
        in
        let v = match v with Some x when not (Float.is_finite x) -> None | other -> other in
        (s.spec_name, v))
      p.Problem.specs
  in
  { bias = bp; roms; spec_values }

(* --- Cost assembly (paper eq. (5)). --- *)

(* Penalty charged for a failed measurement: several times worse than a
   "bad" outcome so the annealer backs away from degenerate regions. *)
let failed_measurement_penalty = 5.0

let cost_of_spec_values (p : Problem.t) spec_values =
  List.fold_left
    (fun (obj, perf) (s : Problem.spec) ->
      let v = match List.assoc_opt s.spec_name spec_values with Some v -> v | None -> None in
      let normalized =
        match v with
        | Some value -> (s.good -. value) /. (s.good -. s.bad)
        | None -> failed_measurement_penalty
      in
      match s.kind with
      | Netlist.Ast.Objective_max | Netlist.Ast.Objective_min ->
          (* Exceeding "good" keeps paying, but boundedly: without the
             clamp the annealer can ride a measurement artifact (e.g. a
             barely-valid ROM reporting absurd bandwidth) to a bottomless
             objective that drowns every penalty term. *)
          (obj +. Float.max normalized (-2.0), perf)
      | Netlist.Ast.Constraint_ge | Netlist.Ast.Constraint_le ->
          (obj, perf +. Float.max 0.0 normalized))
    (0.0, 0.0) p.Problem.specs

let spec_terms (p : Problem.t) (m : measured) = cost_of_spec_values p m.spec_values

(* Region-of-operation penalties (C_dev): saturation margin for MOS devices
   and forward-active margin for BJTs, unless overridden by .devregion. *)
let sat_margin = 0.03

let dev_terms (p : Problem.t) (m : measured) =
  List.fold_left
    (fun acc (name, op) ->
      let req =
        Option.value ~default:Netlist.Ast.Region_sat (List.assoc_opt name p.Problem.regions)
      in
      match (req, op) with
      | Netlist.Ast.Region_any, (Mna.Dc.Mos_op _ | Mna.Dc.Bjt_op _) -> acc
      | Netlist.Ast.Region_sat, Mna.Dc.Mos_op o ->
          (* "on" uses the raw overdrive so a hard-off device pays in
             proportion to how far below threshold its gate sits. *)
          let on = Float.max 0.0 (0.05 -. o.Devices.Sig.vgst_raw) in
          let sat =
            Float.max 0.0 (o.Devices.Sig.vdsat +. sat_margin -. o.Devices.Sig.vds_mag)
          in
          acc +. on +. sat
      | Netlist.Ast.Region_linear, Mna.Dc.Mos_op o ->
          let on = Float.max 0.0 (0.05 -. o.Devices.Sig.vgst_raw) in
          let lin =
            Float.max 0.0 (o.Devices.Sig.vds_mag -. o.Devices.Sig.vdsat +. sat_margin)
          in
          acc +. on +. lin
      | Netlist.Ast.Region_off, Mna.Dc.Mos_op o ->
          acc +. Float.max 0.0 (o.Devices.Sig.vgst_raw +. 0.05)
      | Netlist.Ast.Region_sat, Mna.Dc.Bjt_op o ->
          (* forward active: vbe >= ~0.55, vbc <= ~0.2 *)
          let on = Float.max 0.0 (0.55 -. o.Devices.Sig.vbe_f) in
          let fwd =
            match o.Devices.Sig.bjt_region with
            | Devices.Sig.Linear -> 0.5 (* saturated *)
            | Devices.Sig.Off | Devices.Sig.Subthreshold | Devices.Sig.Saturation -> 0.0
          in
          acc +. on +. fwd
      | (Netlist.Ast.Region_linear | Netlist.Ast.Region_off), Mna.Dc.Bjt_op o ->
          acc +. Float.max 0.0 (o.Devices.Sig.vbe_f -. 0.4))
    0.0 m.bias.ops

(* Relaxed-dc penalties (C_dc): relative KCL violation per free variable. *)
let dc_tau_rel = 1e-6

let dc_terms (m : measured) =
  let acc = ref 0.0 in
  Array.iteri
    (fun k r ->
      let scale = m.bias.res_scale.(k) +. 1e-9 in
      let rel = Float.abs r /. scale in
      acc := !acc +. Float.max 0.0 (rel -. dc_tau_rel))
    m.bias.residuals;
  !acc

let raw_terms p _st m =
  let obj, perf = spec_terms p m in
  let dev = dev_terms p m in
  let dc = dc_terms m in
  (obj, perf, dev, dc)

type breakdown = {
  c_obj : float;
  c_perf : float;
  c_dev : float;
  c_dc : float;
  total : float;
  measured : measured;
}

let cost (p : Problem.t) (w : Weights.t) (st : State.t) =
  let m = measure p st in
  let obj, perf, dev, dc = raw_terms p st m in
  let c_obj = obj in
  let c_perf = w.Weights.w_perf *. perf in
  let c_dev = w.Weights.w_dev *. dev in
  let c_dc = w.Weights.w_dc *. dc in
  { c_obj; c_perf; c_dev; c_dc; total = c_obj +. c_perf +. c_dev +. c_dc; measured = m }

let cost_scalar p w st = (cost p w st).total
