(** ASTRX — compilation of a problem description into the cost function
    OBLX minimizes.

    The pipeline mirrors the paper's Section V.A: (a) determine the
    independent variables x (user variables plus, via {!Treelink}, the
    bias-network node voltages of the relaxed-dc formulation), (b) generate
    the large-signal bias network with device templates expanded,
    (c) derive the KCL constraints, (d) generate the small-signal AWE
    circuits for every test jig, (e) generate cost terms for each
    performance specification, and (f) emit the cost-function evaluator
    (an OCaml closure graph here; the original emitted C — see DESIGN.md),
    whose size is reported in the analysis record. *)

exception Error of string

(** [compile ?corner ast] runs the whole pipeline. The optional process
    corner skews every device model (see {!Corners}). *)
val compile : ?corner:Devices.Registry.corner -> Netlist.Ast.problem -> (Problem.t, string) result

(** [compile_source ?corner src] parses then compiles. *)
val compile_source : ?corner:Devices.Registry.corner -> string -> (Problem.t, string) result
